// Package sts is a Go implementation of STS — the Spatial-Temporal
// Similarity measure for trajectories with location noise and sporadic
// sampling (Li et al., ICDE 2021) — together with every substrate the
// paper's evaluation depends on: the grid partitioning, the personalized
// kernel-density speed model, the spatial-temporal probability estimator,
// the six published baselines (CATS, EDwP, APM, KF, WGM, SST), synthetic
// generators for the paper's two workloads, and the full experiment
// harness of Section VI.
//
// # Quick start
//
//	grid, _ := sts.NewGrid(sts.NewRect(sts.Point{}, sts.Point{X: 200, Y: 150}), 3)
//	measure, _ := sts.NewMeasure(sts.MeasureOptions{Grid: grid, NoiseSigma: 3})
//	score, _ := measure.Similarity(tra1, tra2)
//
// A score near 1 means the two trajectories almost surely describe
// co-located objects; independent movement scores near 0.
//
// # How it works
//
// STS models each observed location as a probability distribution over
// grid cells (the sensing system's noise model), estimates each object's
// personalized speed distribution from its own trajectory with kernel
// density estimation, interpolates a spatial-temporal probability
// distribution of the object's position at any time, and averages the
// resulting co-location probabilities over the timestamps of the two
// trajectories' merged timeline.
//
// The deeper machinery lives in the internal packages; this package
// re-exports the stable public surface.
package sts
