package sts_test

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	sts "github.com/stslib/sts"
)

// corridorWalk observes a west-to-east walk through a venue sporadically
// with Gaussian noise.
func corridorWalk(id string, offsetY, meanGap, noise float64, rng *rand.Rand) sts.Trajectory {
	tr := sts.Trajectory{ID: id}
	for t := 0.0; t < 300; t += meanGap * (0.5 + rng.Float64()) {
		tr.Samples = append(tr.Samples, sts.Sample{
			Loc: sts.Point{
				X: 1.2*t + noise*rng.NormFloat64(),
				Y: 50 + offsetY + noise*rng.NormFloat64(),
			},
			T: t,
		})
	}
	return tr
}

func venueGrid(t *testing.T) *sts.Grid {
	t.Helper()
	g, err := sts.NewGrid(sts.NewRect(sts.Point{X: -20, Y: 0}, sts.Point{X: 400, Y: 120}), 3)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPublicAPISimilarity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := corridorWalk("a", 0, 12, 3, rng)
	b := corridorWalk("b", 0.5, 18, 3, rng)
	c := corridorWalk("c", 45, 18, 3, rng)

	m, err := sts.NewMeasure(sts.MeasureOptions{Grid: venueGrid(t), NoiseSigma: 3})
	if err != nil {
		t.Fatal(err)
	}
	same, err := m.Similarity(a, b)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := m.Similarity(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if same <= diff {
		t.Errorf("co-located %v <= separated %v", same, diff)
	}
}

func TestPublicAPIVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := corridorWalk("a", 0, 12, 3, rng)
	b := corridorWalk("b", 0.5, 18, 3, rng)
	ds := sts.Dataset{a, b}
	g := venueGrid(t)

	noNoise, err := sts.NewMeasureNoNoise(g)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := sts.NewPooledSpeedModel(ds)
	if err != nil {
		t.Fatal(err)
	}
	global, err := sts.NewMeasureGlobalSpeed(g, 3, pooled)
	if err != nil {
		t.Fatal(err)
	}
	freq, err := sts.NewMeasureFrequency(g, 3, ds, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []*sts.Measure{noNoise, global, freq} {
		v, err := m.Similarity(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if v < 0 || v > 1 {
			t.Errorf("similarity %v out of range", v)
		}
	}
}

func TestPublicAPIMatchingPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base := sts.GenerateTaxi(8, 5)
	var d1, d2 sts.Dataset
	for _, tr := range base {
		a, b := sts.AlternateSplit(tr)
		d1 = append(d1, a)
		d2 = append(d2, sts.Downsample(b, 0.5, rng))
	}
	bounds, ok := base.Bounds()
	if !ok {
		t.Fatal("no bounds")
	}
	g, err := sts.NewGrid(bounds.Expand(140), 100)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sts.NewMeasure(sts.MeasureOptions{Grid: g, NoiseSigma: 10})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sts.Match(d1, d2, sts.NewScorer("STS", m), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Precision < 0.8 {
		t.Errorf("precision %v on clean split data", res.Precision)
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := corridorWalk("a", 0, 12, 1, rng)
	b := corridorWalk("b", 0.5, 18, 1, rng)
	c := corridorWalk("c", 45, 18, 1, rng)
	if sts.DTW(a, b) >= sts.DTW(a, c) {
		t.Error("DTW does not discriminate")
	}
	if sts.EDwP(a, b) >= sts.EDwP(a, c) {
		t.Error("EDwP does not discriminate")
	}
	if sts.CATS(a, b, 12, 60) <= sts.CATS(a, c, 12, 60) {
		t.Error("CATS does not discriminate")
	}
}

func TestPublicAPINoiseInjection(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := corridorWalk("a", 0, 12, 0, rng)
	noisy := sts.AddNoise(a, 10, rng)
	var moved float64
	for i := range a.Samples {
		moved += noisy.Samples[i].Loc.Dist(a.Samples[i].Loc)
	}
	avg := moved / float64(a.Len())
	// Mean displacement of an isotropic Gaussian with beta=10 is
	// 10·√(π/2) ≈ 12.5; allow generous slack.
	if avg < 5 || avg > 25 {
		t.Errorf("average displacement %v", avg)
	}
}

func TestPublicAPIDatasetIO(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ds := sts.Dataset{corridorWalk("a", 0, 12, 3, rng)}
	path := filepath.Join(t.TempDir(), "ds.csv")
	if err := sts.WriteDataset(path, ds); err != nil {
		t.Fatal(err)
	}
	got, err := sts.ReadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Len() != ds[0].Len() {
		t.Errorf("round trip lost data")
	}
}

func TestPublicAPIGenerateMall(t *testing.T) {
	ds := sts.GenerateMall(5, 9)
	if len(ds) != 5 {
		t.Fatalf("got %d pedestrians", len(ds))
	}
	for _, tr := range ds {
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPublicAPIExactOption(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := corridorWalk("a", 0, 25, 2, rng)
	b := corridorWalk("b", 1, 30, 2, rng)
	// Coarse grid to keep the exact mode affordable.
	g, err := sts.NewGrid(sts.NewRect(sts.Point{X: -20, Y: 0}, sts.Point{X: 400, Y: 120}), 20)
	if err != nil {
		t.Fatal(err)
	}
	// Disable the speed-quantization slack so both measures evaluate the
	// same textbook formula and only the support truncation differs.
	fast, err := sts.NewMeasure(sts.MeasureOptions{Grid: g, NoiseSigma: 5, SpeedSlack: -1})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := sts.NewMeasure(sts.MeasureOptions{Grid: g, NoiseSigma: 5, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	vf, err := fast.Similarity(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ve, err := exact.Similarity(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if ve > 0 && math.Abs(vf-ve)/ve > 0.15 {
		t.Errorf("truncated %v vs exact %v", vf, ve)
	}
}
