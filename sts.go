package sts

import (
	"math/rand"

	"github.com/stslib/sts/internal/baseline"
	"github.com/stslib/sts/internal/core"
	"github.com/stslib/sts/internal/datagen"
	"github.com/stslib/sts/internal/dataset"
	"github.com/stslib/sts/internal/eval"
	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/kde"
	"github.com/stslib/sts/internal/markov"
	"github.com/stslib/sts/internal/model"
	"github.com/stslib/sts/internal/stprob"
)

// Geometry re-exports.
type (
	// Point is a planar location in meters.
	Point = geo.Point
	// Rect is an axis-aligned rectangle.
	Rect = geo.Rect
	// Grid partitions an area of interest into equal-sized square cells.
	Grid = geo.Grid
)

// NewRect returns the rectangle spanning two corner points in any order.
func NewRect(a, b Point) Rect { return geo.NewRect(a, b) }

// NewGrid partitions bounds into square cells of the given size in meters.
func NewGrid(bounds Rect, cellSize float64) (*Grid, error) { return geo.NewGrid(bounds, cellSize) }

// Trajectory re-exports.
type (
	// Sample is one observed position: a location and its timestamp.
	Sample = model.Sample
	// Trajectory is a time-ordered sequence of samples for one object.
	Trajectory = model.Trajectory
	// Dataset is an ordered collection of trajectories.
	Dataset = model.Dataset
)

// AlternateSplit splits a trajectory into two interleaved halves, the
// ground-truth construction for trajectory matching (Figure 3).
func AlternateSplit(tr Trajectory) (a, b Trajectory) { return model.AlternateSplit(tr) }

// Downsample returns a random order-preserving sub-trajectory at the given
// sampling rate in (0, 1].
func Downsample(tr Trajectory, rate float64, rng *rand.Rand) Trajectory {
	return model.Downsample(tr, rate, rng)
}

// AddNoise distorts every sample with isotropic Gaussian noise of radius
// beta meters (Eq. 14 of the paper).
func AddNoise(tr Trajectory, beta float64, rng *rand.Rand) Trajectory {
	return model.AddNoise(tr, beta, rng)
}

// Measure re-exports.
type (
	// Measure computes the spatial-temporal similarity STS of Eq. 10.
	Measure = core.Measure
	// PreparedTrajectory caches per-trajectory state for repeated scoring.
	PreparedTrajectory = core.Prepared
	// NoiseModel describes a sensing system's location-noise distribution.
	NoiseModel = stprob.NoiseModel
	// GaussianNoise is the Gaussian noise model of Eq. 3.
	GaussianNoise = stprob.GaussianNoise
	// SpeedModel is a personalized kernel-density speed distribution.
	SpeedModel = kde.SpeedModel
)

// MeasureOptions configures NewMeasure.
type MeasureOptions struct {
	// Grid is the spatial partitioning (required).
	Grid *Grid
	// NoiseSigma is the sensing system's Gaussian location error in
	// meters. Zero selects the grid cell size, following the paper's
	// guidance that the grid should match the location error.
	NoiseSigma float64
	// Noise overrides the noise model entirely (takes precedence over
	// NoiseSigma).
	Noise NoiseModel
	// Exact disables support truncation, evaluating Eq. 4's sums over the
	// entire grid.
	Exact bool
	// SpeedSlack compensates for the grid's quantization of speeds when
	// evaluating transitions. 0 selects half the grid cell size; negative
	// disables it, recovering the textbook evaluation where cell centers
	// are the only realizable locations.
	SpeedSlack float64
}

// NewMeasure builds the full STS measure: Gaussian location noise and a
// personalized KDE speed model per trajectory.
func NewMeasure(opts MeasureOptions) (*Measure, error) {
	o := core.Options{Grid: opts.Grid, Exact: opts.Exact, SpeedSlack: opts.SpeedSlack}
	switch {
	case opts.Noise != nil:
		o.Noise = opts.Noise
	case opts.NoiseSigma > 0:
		o.Noise = stprob.GaussianNoise{Sigma: opts.NoiseSigma}
	}
	return core.New(o)
}

// NewSpeedModel estimates a trajectory's personalized speed distribution.
func NewSpeedModel(tr Trajectory) (*SpeedModel, error) { return kde.NewSpeedModel(tr) }

// NewPooledSpeedModel estimates a single global speed distribution from a
// dataset (the STS-G ablation's model).
func NewPooledSpeedModel(ds Dataset) (*SpeedModel, error) { return kde.NewPooledSpeedModel(ds) }

// Variant constructors for the ablations of Section VI-C.

// NewMeasureNoNoise returns STS-N: observations are deterministic points.
func NewMeasureNoNoise(grid *Grid) (*Measure, error) { return core.NewSTSN(grid) }

// NewMeasureGlobalSpeed returns STS-G: a pooled speed model shared by all
// objects.
func NewMeasureGlobalSpeed(grid *Grid, sigma float64, pooled *SpeedModel) (*Measure, error) {
	return core.NewSTSG(grid, sigma, pooled)
}

// NewMeasureFrequency returns STS-F: frequency-based grid transitions
// trained on historical data with markov.Train.
func NewMeasureFrequency(grid *Grid, sigma float64, train Dataset, maxSpeed float64) (*Measure, error) {
	tm, err := markov.Train(grid, train, 1)
	if err != nil {
		return nil, err
	}
	return core.NewSTSF(grid, sigma, tm, maxSpeed)
}

// Baseline distances (smaller = more similar), re-exported for
// side-by-side comparisons.

// DTW is the Dynamic Time Warping distance.
func DTW(a, b Trajectory) float64 { return baseline.DTW(a, b) }

// EDwP is the Edit Distance with Projections.
func EDwP(a, b Trajectory) float64 { return baseline.EDwP(a, b) }

// CATS is the Clue-Aware Trajectory Similarity (a similarity in [0,1]).
func CATS(a, b Trajectory, eps, tau float64) float64 {
	return baseline.CATS(a, b, baseline.CATSParams{Eps: eps, Tau: tau})
}

// LIP is the (approximated) Locality In-between Polylines area distance.
func LIP(a, b Trajectory) float64 { return baseline.LIP(a, b, 0) }

// STLIP is LIP with a multiplicative temporal penalty of weight w.
func STLIP(a, b Trajectory, w float64) float64 {
	return baseline.STLIP(a, b, baseline.STLIPParams{TemporalWeight: w})
}

// Evaluation re-exports.
type (
	// Scorer scores trajectory pairs; higher means more similar.
	Scorer = eval.Scorer
	// MatchResult reports a trajectory-matching run.
	MatchResult = eval.MatchResult
)

// NewScorer wraps a Measure as a Scorer for the evaluation harness, with
// per-trajectory preparation caching.
func NewScorer(name string, m *Measure) Scorer { return eval.NewSTSScorer(name, m) }

// Profile re-exports.
type (
	// ProfileOptions configures the bucketed S-T profile approximation:
	// BucketSeconds is the accuracy ↔ speed knob (0 selects the default
	// of 30 s; scores converge to the exact Eq. 10 values as it shrinks).
	ProfileOptions = core.ProfileOptions
	// TrajectoryProfile is a trajectory's precomputed sparse profile: one
	// location distribution per time bucket of its active span.
	TrajectoryProfile = core.Profile
)

// DefaultProfileBucketSeconds is the default profile bucket width.
const DefaultProfileBucketSeconds = core.DefaultProfileBucketSeconds

// NewProfiledScorer wraps a Measure as a Scorer that evaluates the
// bucketed S-T profile approximation of STS: each trajectory's sparse
// profile is built once and every pair score is a sparse dot-product
// merge over the shared time buckets. On N×N matrix and top-k workloads
// this amortizes the per-trajectory interpolation work (the dominant cost
// of exact scoring) from O(N) evaluations down to one.
func NewProfiledScorer(name string, m *Measure, opts ProfileOptions) Scorer {
	return eval.NewSTSScorerProfiled(name, m, opts)
}

// Match runs the trajectory-matching experiment of Section VI-B: d1[i]
// and d2[i] must observe the same object; precision and mean rank of the
// true twin are reported.
func Match(d1, d2 Dataset, s Scorer, workers int) (MatchResult, error) {
	return eval.Matching(d1, d2, s, workers)
}

// Synthetic workloads.

// GenerateMall synthesizes the shopping-mall pedestrian workload.
func GenerateMall(n int, seed int64) Dataset {
	cfg := datagen.DefaultMallConfig(n)
	cfg.Seed = seed
	ds, _ := datagen.GenerateMall(cfg)
	return ds
}

// GenerateTaxi synthesizes the city taxi workload.
func GenerateTaxi(n int, seed int64) Dataset {
	cfg := datagen.DefaultTaxiConfig(n)
	cfg.Seed = seed
	ds, _ := datagen.GenerateTaxi(cfg)
	return ds
}

// Dataset IO.

// ReadDataset reads a trajectory dataset from a CSV file (columns
// id,t,x,y).
func ReadDataset(path string) (Dataset, error) { return dataset.ReadFile(path) }

// WriteDataset writes a trajectory dataset to a CSV file.
func WriteDataset(path string, ds Dataset) error { return dataset.WriteFile(path, ds) }

// ReadDatasetJSON reads a trajectory dataset from a JSON file
// ([{id, samples:[[t,x,y]…]}]).
func ReadDatasetJSON(path string) (Dataset, error) { return dataset.ReadJSONFile(path) }

// WriteDatasetJSON writes a trajectory dataset to a JSON file.
func WriteDatasetJSON(path string, ds Dataset) error { return dataset.WriteJSONFile(path, ds) }
