package sts

import (
	"github.com/stslib/sts/internal/server"
)

// Server is the HTTP/JSON serving subsystem over an Engine: a long-lived
// process boundary for trajectory ingestion, pairwise similarity, top-k
// co-location search, greedy linking, and engine introspection, with
// admission control (429 + Retry-After under overload), per-route request
// timeouts propagated into the engine's cancellable executor, structured
// request logging, Prometheus-text /metrics, and graceful drain on
// shutdown.
//
// The wire contract lives in the api package, the typed Go caller in the
// client package, and the stsserved command wires a Server to flags and
// signals. Server implements http.Handler, so it can also be mounted on an
// existing mux.
type Server = server.Server

// ServeOptions configures NewServer; the zero value serves with production
// defaults (30s query timeout, 64 in-flight requests, 32 MiB bodies).
type ServeOptions = server.Options

// NewServer builds a Server over eng — a single Engine or the sharded
// coordinator, anything satisfying EngineService. Serve it with
// Server.ListenAndServe (managed listener, graceful drain) or mount it as
// an http.Handler. A sharded engine additionally surfaces per-shard
// sections in /v1/stats and shard-labeled series in /metrics.
func NewServer(eng EngineService, opts ServeOptions) (*Server, error) {
	return server.New(eng, opts)
}
