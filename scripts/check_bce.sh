#!/usr/bin/env bash
# check_bce.sh — gate the bounds-check count of the hot scoring kernels.
#
# The inner-loop kernels (sparse dot products, profile bucket merge, radial
# accumulation) are shaped so the compiler's prove pass eliminates the
# bounds checks their loop guards already imply. Zero checks is not
# achievable — the radial accumulator's memo gathers are data-dependent,
# and Go's prove pass cannot track conditionally-advanced merge cursors —
# so this script compares the per-file `-d=ssa/check_bce` counts against
# the committed baseline (scripts/bce_baseline.txt) and fails when any
# gated file GAINS checks. Fewer checks than baseline is reported as a
# reminder to tighten the baseline.
#
# Usage: scripts/check_bce.sh            # gate against the baseline
#        scripts/check_bce.sh -update    # rewrite the baseline

set -euo pipefail
cd "$(dirname "$0")/.."

GATED='internal/stprob/dot\.go|internal/stprob/estimator\.go|internal/core/merge\.go'
BASELINE=scripts/bce_baseline.txt

counts=$(go build -gcflags=-d=ssa/check_bce ./internal/stprob/ ./internal/core/ 2>&1 |
	grep -oE "($GATED)" | sort | uniq -c | awk '{print $2, $1}' | sort)

if [[ "${1:-}" == "-update" ]]; then
	printf '%s\n' "$counts" > "$BASELINE"
	echo "updated $BASELINE:"
	cat "$BASELINE"
	exit 0
fi

if [[ ! -f "$BASELINE" ]]; then
	echo "check_bce: missing $BASELINE (run scripts/check_bce.sh -update)" >&2
	exit 1
fi

status=0
while read -r file count; do
	base=$(awk -v f="$file" '$1 == f {print $2}' "$BASELINE")
	base=${base:-0}
	if (( count > base )); then
		echo "check_bce: $file has $count bounds checks, baseline $base — new checks in a shaped kernel" >&2
		go build -gcflags=-d=ssa/check_bce ./internal/stprob/ ./internal/core/ 2>&1 |
			grep -E "$file" >&2 || true
		status=1
	elif (( count < base )); then
		echo "check_bce: $file improved to $count checks (baseline $base); consider scripts/check_bce.sh -update"
	fi
done <<< "$counts"

if (( status == 0 )); then
	echo "check_bce: ok ($(printf '%s\n' "$counts" | awk '{printf "%s=%s ", $1, $2}'))"
fi
exit $status
