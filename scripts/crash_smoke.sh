#!/usr/bin/env bash
# Crash-recovery smoke: generate a synthetic corpus, serve it from a
# durable (optionally sharded) data directory, take a top-k answer, kill -9
# the server, restart it against the same directory, and require (a) the
# recovered corpus to serve the identical top-k, (b) recovery to fit a time
# budget, (c) the store/persistence metrics to be live, and (d) with
# SHARDS > 1, every shard store to recover in parallel (one "shard
# recovered" log each) behind shard-labeled metrics.
#
# A second kill -9 cycle then drills the warm path: after the cold restart's
# first query has rebuilt the profile cache, a forced snapshot persists it
# into the derived-state sidecar, and the next restart must (e) report
# warm-loaded profiles in its logs, stats, and metrics, (f) serve a top-k
# byte-identical to the cold path's, and (g) beat the cold restart's
# time-to-first-query.
#
#   N=100000 ./scripts/crash_smoke.sh       # corpus size (default 100000)
#   SHARDS=4 ...                            # engine partitions (default 4)
#   RECOVERY_BUDGET_SECONDS=10 ...          # recovery_seconds ceiling
set -euo pipefail
cd "$(dirname "$0")/.."

N="${N:-100000}"
SHARDS="${SHARDS:-4}"
ADDR="${ADDR:-127.0.0.1:18095}"
BUDGET="${RECOVERY_BUDGET_SECONDS:-10}"
WORK="$(mktemp -d)"
SRV=""
trap '[ -n "$SRV" ] && kill -9 "$SRV" 2>/dev/null; rm -rf "$WORK"' EXIT

go build -o "$WORK/" ./cmd/stsgen ./cmd/stsserved
"$WORK/stsgen" -kind synth -n "$N" -o "$WORK/synth.csv"

# boot starts stsserved against the durable dir and waits for /healthz —
# which only answers once recovery and any -dataset ingest are complete.
boot() {
  # -timeout is raised because the smoke's top-k is a cold exhaustive scan
  # of the whole corpus — worst case by construction, not a serving posture;
  # -ingest-timeout covers the forced full-corpus snapshot of the warm drill.
  "$WORK/stsserved" -addr "$ADDR" -data-dir "$WORK/data" -shards "$SHARDS" \
    -grid 50 -sigma 50 -coord-step -1 -timeout 300s -ingest-timeout 300s "$@" 2>>"$WORK/serve.log" &
  SRV=$!
  for _ in $(seq 1 900); do
    if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then return 0; fi
    if ! kill -0 "$SRV" 2>/dev/null; then
      echo "crash_smoke: server exited during boot" >&2
      tail -5 "$WORK/serve.log" >&2
      exit 1
    fi
    sleep 0.2
  done
  echo "crash_smoke: server did not come up" >&2
  exit 1
}

echo "crash_smoke: cold boot + ingest of $N trajectories"
boot -dataset "$WORK/synth.csv"
curl -fsS "http://$ADDR/v1/topk?id=synth-0042&k=10" >"$WORK/topk_pre.json"
grep -q '"matches"' "$WORK/topk_pre.json"
curl -fsS "http://$ADDR/metrics" >"$WORK/metrics_pre.txt"
grep -q "^sts_corpus_size $N\$" "$WORK/metrics_pre.txt"
grep -q '^sts_store_resident_bytes [1-9]' "$WORK/metrics_pre.txt"
grep -q '^sts_wal_bytes' "$WORK/metrics_pre.txt"
grep -q '^sts_snapshot_total' "$WORK/metrics_pre.txt"

if [ "$SHARDS" -gt 1 ]; then
  for i in $(seq 0 $((SHARDS - 1))); do
    dir="$(printf '%s/data/shard-%03d' "$WORK" "$i")"
    [ -d "$dir" ] || { echo "crash_smoke: missing shard store $dir" >&2; exit 1; }
  done
  grep -q '^sts_store_resident_bytes{shard="0"} [1-9]' "$WORK/metrics_pre.txt"
fi

echo "crash_smoke: kill -9"
kill -9 "$SRV"
wait "$SRV" 2>/dev/null || true

echo "crash_smoke: restart from $WORK/data"
: >"$WORK/serve.log" # so the per-shard recovery assertions see only this boot
boot
if [ "$SHARDS" -gt 1 ]; then
  for i in $(seq 0 $((SHARDS - 1))); do
    if ! grep -q "msg=\"shard recovered\" shard=$i " "$WORK/serve.log"; then
      echo "crash_smoke: shard $i logged no recovery after restart" >&2
      tail -20 "$WORK/serve.log" >&2
      exit 1
    fi
  done
fi
COLD_T0=$(date +%s%N)
curl -fsS "http://$ADDR/v1/topk?id=synth-0042&k=10" >"$WORK/topk_post.json"
COLD_NS=$(( $(date +%s%N) - COLD_T0 ))
# The result set (IDs, in rank order) must be identical. Scores are allowed
# the store's documented quantization budget (1e-9): the restarted process
# derives its grid bounds from the quantized store rather than the raw CSV,
# shifting the grid origin by at most half a coordinate step.
ids() { grep -o '"id":"[^"]*"' "$1"; }
scores() { grep -o '"score":[0-9eE.+-]*' "$1" | cut -d: -f2; }
if ! diff <(ids "$WORK/topk_pre.json") <(ids "$WORK/topk_post.json"); then
  echo "crash_smoke: top-k result set changed across kill -9 + recovery" >&2
  exit 1
fi
paste <(scores "$WORK/topk_pre.json") <(scores "$WORK/topk_post.json") |
  awk '{ d = $1 - $2; if (d < 0) d = -d; if (!(d <= 1e-9)) { print "crash_smoke: score drift " d " at rank " NR > "/dev/stderr"; exit 1 } }'
curl -fsS "http://$ADDR/metrics" >"$WORK/metrics_post.txt"
grep -q "^sts_corpus_size $N\$" "$WORK/metrics_post.txt"

RECOVERY="$(awk '/^sts_recovery_seconds /{print $2}' "$WORK/metrics_post.txt")"
awk -v r="$RECOVERY" -v b="$BUDGET" 'BEGIN { exit !(r > 0 && r < b) }' || {
  echo "crash_smoke: recovery_seconds=$RECOVERY outside (0, $BUDGET)" >&2
  exit 1
}

echo "crash_smoke: snapshot (persists the warm profile cache), then kill -9 again"
curl -fsS -X POST "http://$ADDR/v1/snapshot" >"$WORK/snap.json"
grep -q '"sidecar_writes":[1-9]' "$WORK/snap.json"
kill -9 "$SRV"
wait "$SRV" 2>/dev/null || true

echo "crash_smoke: warm restart from $WORK/data"
: >"$WORK/serve.log"
boot
if ! grep -Eq 'warm_profiles=[1-9]|msg="profile cache warm-loaded"' "$WORK/serve.log"; then
  echo "crash_smoke: warm restart logged no warm-loaded profiles" >&2
  tail -20 "$WORK/serve.log" >&2
  exit 1
fi
curl -fsS "http://$ADDR/v1/stats" >"$WORK/stats_warm.json"
grep -q '"warm_profiles":[1-9]' "$WORK/stats_warm.json"
WARM_T0=$(date +%s%N)
curl -fsS "http://$ADDR/v1/topk?id=synth-0042&k=10" >"$WORK/topk_warm.json"
WARM_NS=$(( $(date +%s%N) - WARM_T0 ))
# Warm-loaded profiles are revalidated bit-exact sidecar round-trips of the
# ones the cold path built, so the answer must match byte for byte.
if ! cmp -s "$WORK/topk_post.json" "$WORK/topk_warm.json"; then
  echo "crash_smoke: warm top-k differs from the cold path's" >&2
  diff <(ids "$WORK/topk_post.json") <(ids "$WORK/topk_warm.json") >&2 || true
  exit 1
fi
curl -fsS "http://$ADDR/metrics" >"$WORK/metrics_warm.txt"
grep -q '^sts_cache_warm_loaded_total [1-9]' "$WORK/metrics_warm.txt"
grep -q '^sts_recovery_warm_seconds [0-9]' "$WORK/metrics_warm.txt"
if [ "$WARM_NS" -ge "$COLD_NS" ]; then
  echo "crash_smoke: warm first query (${WARM_NS}ns) not faster than cold (${COLD_NS}ns)" >&2
  exit 1
fi

kill -TERM "$SRV"
wait "$SRV" 2>/dev/null || true
SRV=""
awk -v c="$COLD_NS" -v w="$WARM_NS" 'BEGIN { printf "crash_smoke: warm first query %.2fs vs cold %.2fs (%.1fx)\n", w/1e9, c/1e9, c/w }'
echo "crash_smoke: ok — $N trajectories, identical top-k, recovery ${RECOVERY}s"
