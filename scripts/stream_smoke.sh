#!/usr/bin/env bash
# Streaming smoke: generate a time-ordered append stream, serve a durable
# corpus, register a standing co-location query pointed at a local webhook
# sink, replay the stream, and require (a) the server's streaming alerts to
# exactly equal an independent offline re-evaluation at the same theta,
# (b) every alert to reach the webhook sink, (c) the streaming metrics
# families to be live, and (d) the watchlist and the appended corpus to
# survive kill -9 + restart.
#
#   N=20 ./scripts/stream_smoke.sh            # stream trajectories (default 20)
#   THETA=0.2 ...                             # standing-query threshold
#   SHARDS=4 ...                              # engine partitions (default 4)
set -euo pipefail
cd "$(dirname "$0")/.."

N="${N:-20}"
THETA="${THETA:-0.2}"
SHARDS="${SHARDS:-4}"
ADDR="${ADDR:-127.0.0.1:18096}"
WORK="$(mktemp -d)"
SRV=""
trap '[ -n "$SRV" ] && kill -9 "$SRV" 2>/dev/null; rm -rf "$WORK"' EXIT

go build -o "$WORK/" ./cmd/stsgen ./cmd/stsserved ./cmd/stsstream
"$WORK/stsgen" -kind synth -n "$N" -stream -o "$WORK/stream.jsonl"

boot() {
  "$WORK/stsserved" -addr "$ADDR" -data-dir "$WORK/data" -shards "$SHARDS" \
    -grid 50 -sigma 25 2>>"$WORK/serve.log" &
  SRV=$!
  for _ in $(seq 1 300); do
    if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then return 0; fi
    if ! kill -0 "$SRV" 2>/dev/null; then
      echo "stream_smoke: server exited during boot" >&2
      tail -5 "$WORK/serve.log" >&2
      exit 1
    fi
    sleep 0.2
  done
  echo "stream_smoke: server did not come up" >&2
  exit 1
}

echo "stream_smoke: replaying $N mirrored trajectories, theta=$THETA"
boot
# stsstream registers the watch, replays the stream, and fails hard unless
# streamed alerts == offline re-evaluation == webhook deliveries.
"$WORK/stsstream" -addr "http://$ADDR" -file "$WORK/stream.jsonl" \
  -grid 50 -sigma 25 -watch smoke -theta "$THETA" -members 3 -mirror

curl -fsS "http://$ADDR/metrics" >"$WORK/metrics.txt"
grep -q '^sts_append_total [1-9]' "$WORK/metrics.txt"
grep -q '^sts_standing_evals_total [1-9]' "$WORK/metrics.txt"
grep -q '^sts_alerts_total{watch="smoke"} [1-9]' "$WORK/metrics.txt"
grep -q '^sts_alert_delivered_total [1-9]' "$WORK/metrics.txt"
grep -q '^sts_standing_eval_seconds_count [1-9]' "$WORK/metrics.txt"
grep -q '^sts_watches 1$' "$WORK/metrics.txt"

# A grown trajectory must be resident in full (put batch + every append).
curl -fsS "http://$ADDR/v1/watch" >"$WORK/watch_pre.json"
grep -q '"name":"smoke"' "$WORK/watch_pre.json"
curl -fsS "http://$ADDR/v1/trajectories/synth-0000" >"$WORK/tr_pre.json"

echo "stream_smoke: kill -9"
kill -9 "$SRV"
wait "$SRV" 2>/dev/null || true

echo "stream_smoke: restart from $WORK/data"
boot
# The watchlist persists next to the corpus; the appended samples were
# WAL-framed, so the grown trajectory recovers bit-identically (modulo the
# store's documented quantization, disabled here).
curl -fsS "http://$ADDR/v1/watch" >"$WORK/watch_post.json"
grep -q '"name":"smoke"' "$WORK/watch_post.json"
if ! diff "$WORK/tr_pre.json" <(curl -fsS "http://$ADDR/v1/trajectories/synth-0000"); then
  echo "stream_smoke: appended trajectory changed across kill -9 + recovery" >&2
  exit 1
fi

kill -TERM "$SRV"
wait "$SRV" 2>/dev/null || true
SRV=""
echo "stream_smoke: ok — streaming alerts match offline re-eval; watchlist and appends survived kill -9"
