package sts

import (
	"github.com/stslib/sts/internal/core"
	"github.com/stslib/sts/internal/eval"
	"github.com/stslib/sts/internal/index"
	"github.com/stslib/sts/internal/linking"
	"github.com/stslib/sts/internal/model"
)

// Trajectory linking — deciding which trajectories from two sensing
// systems belong to the same objects (the application of Section II).

// Link is one matched pair produced by LinkDatasets: d1[I] ↔ d2[J] with
// the similarity Score that linked them.
type Link = linking.Link

// LinkOptions configures LinkDatasets. MinScore rejects weak links;
// MaxSpeed (m/s), when positive, enables the FTL-style velocity
// feasibility pre-filter on the merged trajectory.
type LinkOptions = linking.Options

// LinkDatasets links two trajectory sets one-to-one, best-similarity
// first. See the linking package for the algorithm.
func LinkDatasets(d1, d2 Dataset, scorer Scorer, opts LinkOptions) ([]Link, error) {
	return linking.GreedyLink(d1, d2, scorer, opts)
}

// LinkDatasetsOptimal links two trajectory sets one-to-one maximizing
// the total similarity of the assignment (Hungarian algorithm). Slower
// than LinkDatasets but immune to greedy lock-in.
func LinkDatasetsOptimal(d1, d2 Dataset, scorer Scorer, opts LinkOptions) ([]Link, error) {
	return linking.OptimalLink(d1, d2, scorer, opts)
}

// Feasible reports whether two trajectories could belong to one object
// whose speed never exceeds maxSpeed — the global-velocity-threshold
// compatibility test of FTL. Sample pairs closer than minGap seconds are
// exempt (noise makes instantaneous speed unbounded as Δt → 0).
func Feasible(a, b Trajectory, maxSpeed, minGap float64) bool {
	return linking.Feasible(a, b, maxSpeed, minGap)
}

// MergeByTime interleaves two trajectories into one time-sorted sequence
// — the merged trajectory of Eq. 10 and of the FTL compatibility test.
func MergeByTime(a, b Trajectory) Trajectory { return linking.MergeByTime(a, b) }

// Top-k similarity search over an indexed corpus.

// IndexOptions configures NewIndex: the index grid, the temporal bucket
// in seconds, and the spatial/temporal slack used when probing.
type IndexOptions = index.Options

// IndexMatch is one result of a top-k query: the trajectory's position
// in the indexed dataset and its similarity to the query.
type IndexMatch = index.Match

// Index prunes similarity search: only trajectories sharing a dilated
// spatio-temporal key with the query are scored.
type Index = index.Index

// NewIndex builds a spatial-temporal inverted index over ds.
func NewIndex(ds Dataset, opts IndexOptions) (*Index, error) { return index.Build(ds, opts) }

// Contact episodes.

// Episode is a maximal interval during which two objects' co-location
// probability stayed at or above a threshold.
type Episode = core.Episode

// ContactEpisodes scans the overlap of two prepared trajectories on a
// uniform time step and returns the intervals where the co-location
// probability is at least threshold — the contact-tracing view of STS.
// Prepare the trajectories once with Measure.Prepare.
func ContactEpisodes(a, b *PreparedTrajectory, step, threshold float64) ([]Episode, error) {
	return core.ContactEpisodes(a, b, step, threshold)
}

// compile-time interface conformance checks for the facade's aliases.
var (
	_ eval.Scorer   = eval.FuncScorer{}
	_ model.Dataset = Dataset{}
)
