package sts_test

import (
	"math/rand"
	"testing"

	sts "github.com/stslib/sts"
)

func TestFacadeLinkDatasets(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	base := sts.GenerateTaxi(6, 21)
	var d1, d2 sts.Dataset
	for _, tr := range base {
		a, b := sts.AlternateSplit(tr)
		d1 = append(d1, a)
		d2 = append(d2, sts.Downsample(b, 0.5, rng))
	}
	bounds, _ := base.Bounds()
	g, err := sts.NewGrid(bounds.Expand(140), 100)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sts.NewMeasure(sts.MeasureOptions{Grid: g, NoiseSigma: 10})
	if err != nil {
		t.Fatal(err)
	}
	scorer := sts.NewScorer("STS", m)
	for name, link := range map[string]func(sts.Dataset, sts.Dataset, sts.Scorer, sts.LinkOptions) ([]sts.Link, error){
		"greedy":  sts.LinkDatasets,
		"optimal": sts.LinkDatasetsOptimal,
	} {
		links, err := link(d1, d2, scorer, sts.LinkOptions{MinScore: 1e-9, MaxSpeed: 40, Workers: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		correct := 0
		for _, l := range links {
			if l.I == l.J {
				correct++
			}
		}
		if correct < len(base)-1 {
			t.Errorf("%s: only %d/%d correct links", name, correct, len(base))
		}
	}
}

func TestFacadeIndexTopK(t *testing.T) {
	base := sts.GenerateTaxi(10, 22)
	bounds, _ := base.Bounds()
	g, err := sts.NewGrid(bounds.Expand(140), 100)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := sts.NewIndex(base, sts.IndexOptions{Grid: g, TimeBucket: 120, SpatialSlack: 300, TimeSlack: 120})
	if err != nil {
		t.Fatal(err)
	}
	m, err := sts.NewMeasure(sts.MeasureOptions{Grid: g, NoiseSigma: 10})
	if err != nil {
		t.Fatal(err)
	}
	// The indexed copy of a trajectory must be its own best match.
	matches, err := ix.TopK(base[3], sts.NewScorer("STS", m), 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 || matches[0].Index != 3 {
		t.Errorf("self not retrieved first: %+v", matches)
	}
}

func TestFacadeContactEpisodes(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := corridorWalk("a", 0, 12, 2, rng)
	b := corridorWalk("b", 0.5, 15, 2, rng)
	c := corridorWalk("c", 55, 15, 2, rng)
	m, err := sts.NewMeasure(sts.MeasureOptions{Grid: venueGrid(t), NoiseSigma: 3})
	if err != nil {
		t.Fatal(err)
	}
	pa, err := m.Prepare(a)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := m.Prepare(b)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := m.Prepare(c)
	if err != nil {
		t.Fatal(err)
	}
	together, err := sts.ContactEpisodes(pa, pb, 5, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if len(together) == 0 {
		t.Error("no episodes for co-moving pair")
	}
	apart, err := sts.ContactEpisodes(pa, pc, 5, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if len(apart) != 0 {
		t.Errorf("episodes for separated pair: %+v", apart)
	}
}

func TestFacadeSTLIP(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	a := corridorWalk("a", 0, 12, 1, rng)
	b := corridorWalk("b", 2, 15, 1, rng)
	c := corridorWalk("c", 55, 15, 1, rng)
	if sts.LIP(a, b) >= sts.LIP(a, c) {
		t.Error("LIP does not discriminate")
	}
	if sts.STLIP(a, b, 0.5) >= sts.STLIP(a, c, 0.5) {
		t.Error("STLIP does not discriminate")
	}
}
