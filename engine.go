package sts

import (
	"context"
	"time"

	"github.com/stslib/sts/internal/engine"
	"github.com/stslib/sts/internal/eval"
	"github.com/stslib/sts/internal/index"
	"github.com/stslib/sts/internal/linking"
	"github.com/stslib/sts/internal/store"
)

// Engine is the long-lived execution layer for serving similarity
// workloads over a mutating corpus: it binds a scorer to a corpus of
// trajectories and owns the prepared-trajectory LRU cache, the candidate-
// pruning index (kept incrementally up to date under Add/Remove/Replace),
// and the cancellable worker pool every query runs on.
//
// Use it instead of the one-shot functions when the corpus outlives a
// single call — repeated queries reuse cached per-trajectory preparation
// (speed models, observed-timestamp distributions) instead of rebuilding
// it per request.
type Engine = engine.Engine

// EngineService is the corpus-and-query surface NewEngine returns: the
// single Engine and the sharded coordinator (EngineOptions.Shards > 1)
// both implement it, so callers — including NewServer — are agnostic to
// whether the corpus is partitioned. See engine.Service for the ordering
// and determinism contracts.
type EngineService = engine.Service

// ShardedEngine is the single-process partitioned engine NewEngine builds
// when EngineOptions.Shards > 1: trajectories are routed to independent
// engine shards by FNV-1a hash of their ID, mutations touch only the
// owning shard, and top-k queries scatter-gather with the running global
// k-th-best score forwarded as each wave's pruning floor.
type ShardedEngine = engine.Sharded

// EngineShardStats is one shard's observability snapshot (see
// ShardedEngine.ShardStats).
type EngineShardStats = engine.ShardStat

// EngineMatch is one result of Engine.TopK: the matched trajectory's ID,
// its corpus slot, and its similarity to the query.
type EngineMatch = engine.Match

// CacheStats reports the engine's prepared-trajectory cache counters.
type CacheStats = engine.CacheStats

// TopKOptions parameterizes Engine.TopKOpts: result size, an optional
// score floor (which also feeds the filter-and-refine pruning), and a
// forced-exhaustive switch for equivalence checking.
type TopKOptions = engine.TopKOptions

// EnginePruneStats reports the engine's cumulative filter-and-refine
// counters (see Engine.PruneStats).
type EnginePruneStats = engine.PruneStats

// StoreStats reports the columnar corpus store's footprint and persistence
// counters (see Engine.StoreStats).
type StoreStats = store.Stats

// RecoveryInfo reports what a persistent engine's boot-time recovery did:
// snapshot load, WAL replay, and torn-tail truncation (see
// Engine.Recovery).
type RecoveryInfo = store.RecoveryInfo

// StoreOptions configures the engine's columnar corpus store.
type StoreOptions struct {
	// Dir, when non-empty, makes the corpus durable: mutations are written
	// ahead to a CRC-framed log in this directory and periodically
	// compacted into snapshots, and NewEngine recovers the directory's
	// content into the corpus (truncating torn WAL tails after a crash).
	// Empty keeps the corpus in memory.
	Dir string
	// CoordStep quantizes stored coordinates to fixed-point multiples of
	// this step in meters (0 = lossless). Records are self-describing, so
	// the step may change across restarts. Keep it far below the measure's
	// noise sigma; sigma*1e-9 bounds the score deviation at ≤1e-9.
	CoordStep float64
	// FsyncInterval batches WAL fsyncs: positive syncs at most that often,
	// 0 selects the 50ms default, negative never syncs explicitly. Ignored
	// without Dir.
	FsyncInterval time.Duration
	// SnapshotEvery triggers an automatic snapshot once the WAL has grown
	// this many bytes (0 selects the 64MiB default, negative disables).
	// Ignored without Dir.
	SnapshotEvery int64
}

// EngineOptions configures NewEngine.
type EngineOptions struct {
	// Workers bounds query parallelism (0 selects GOMAXPROCS).
	Workers int
	// CacheSize bounds the prepared-trajectory LRU cache (0 selects the
	// default of 4096 entries; negative means unbounded).
	CacheSize int
	// Index, when set, maintains a spatial-temporal inverted index over
	// the corpus so TopK scores only candidates that plausibly overlap
	// the query in space-time. Without it, TopK scans the whole corpus.
	Index *IndexOptions
	// Profile, when set, switches measure-backed scoring to the bucketed
	// S-T profile approximation: each corpus trajectory's sparse profile
	// is built once (cached in a second LRU with its own hit/miss stats,
	// see Engine.ProfileCacheStats) and every pair evaluation becomes a
	// sparse dot-product merge — trading a bounded, BucketSeconds-
	// controlled score deviation for an O(N)→O(1) amortization of the
	// per-trajectory interpolation work across pairs. Requires a
	// measure-backed scorer (NewScorer / NewProfiledScorer).
	Profile *ProfileOptions
	// DisablePruning forces TopK and thresholded queries down the
	// exhaustive path, bypassing the filter-and-refine bounds (the pruned
	// path returns identical results; this switch exists for baselines and
	// debugging).
	DisablePruning bool
	// PruneBucketSeconds sets the bound-profile bucket width used by the
	// filter-and-refine path on exact (non-profiled) engines; 0 selects
	// the default profile width. Profiled engines derive bounds from their
	// scoring profiles.
	PruneBucketSeconds float64
	// Store configures the columnar corpus store backing the engine; nil
	// selects an in-memory lossless store. Set Store.Dir for durability
	// (WAL + snapshot recovery). Call Engine.Close when done with a
	// persistent engine.
	Store *StoreOptions
	// Shards partitions the corpus across this many independent engine
	// shards (0 or 1 keeps the single engine). Each shard owns its own
	// store (under Store.Dir/shard-NNN when persistent), index, and
	// derived-state caches — CacheSize and Workers are split across
	// shards — and mutations route to one shard by ID hash, so concurrent
	// writes stop contending on a global lock. Queries scatter-gather with
	// bit-identical scores; see EngineService.
	Shards int
	// FanOut bounds how many shards one query scatters to concurrently
	// (0 selects the engine default of 4; clamped to Shards). Only
	// meaningful with Shards > 1.
	FanOut int
}

// NewEngine builds an engine around a scorer (use NewScorer to wrap a
// Measure — measure-backed scorers get the prepared-cache fast path).
// Populate the corpus with Add/Replace; query with TopK and ScoreBatch.
// With EngineOptions.Shards > 1 the returned service is a ShardedEngine
// partitioning the corpus across independent shards; otherwise it is a
// single *Engine. Both satisfy EngineService with identical results.
func NewEngine(scorer Scorer, opts EngineOptions) (EngineService, error) {
	if opts.Shards > 1 {
		return newShardedEngine(scorer, opts)
	}
	shardOpts, err := engineShardOptions(scorer, opts, -1)
	if err != nil {
		return nil, err
	}
	return engine.New(scorer, shardOpts)
}

// newShardedEngine builds the partitioned engine: CacheSize is split
// evenly across shards, per-shard worker budgets are sized so one
// saturating query uses ~Workers goroutines across a scatter wave, and
// persistent shards open (and recover) concurrently under
// Store.Dir/shard-NNN.
func newShardedEngine(scorer Scorer, opts EngineOptions) (EngineService, error) {
	return engine.NewSharded(scorer, engine.ShardedOptions{
		Shards:  opts.Shards,
		FanOut:  opts.FanOut,
		Workers: opts.Workers,
		ShardOptions: func(shard int) (engine.Options, error) {
			return engineShardOptions(scorer, opts, shard)
		},
	})
}

// engineShardOptions resolves EngineOptions into one engine.Options —
// for the single engine (shard < 0) or for one shard of a partitioned
// engine (per-shard cache split, worker split, and store subdirectory).
func engineShardOptions(scorer Scorer, opts EngineOptions, shard int) (engine.Options, error) {
	out := engine.Options{
		Workers:            opts.Workers,
		CacheSize:          opts.CacheSize,
		Profile:            opts.Profile,
		DisablePruning:     opts.DisablePruning,
		PruneBucketSeconds: opts.PruneBucketSeconds,
	}
	if shard >= 0 {
		out.Workers = engine.SplitWorkers(opts.Workers, opts.FanOut)
		cache := opts.CacheSize
		if cache == 0 {
			cache = engine.DefaultCacheSize
		}
		if cache > 0 {
			cache = (cache + opts.Shards - 1) / opts.Shards
		}
		out.CacheSize = cache
	}
	if opts.Index != nil {
		ix, err := index.New(*opts.Index)
		if err != nil {
			return engine.Options{}, err
		}
		out.Pruner = ix
	}
	if opts.Store != nil {
		stOpts := store.Options{
			CoordStep:     opts.Store.CoordStep,
			FsyncInterval: opts.Store.FsyncInterval,
			SnapshotEvery: opts.Store.SnapshotEvery,
		}
		if opts.Store.Dir != "" {
			dir := opts.Store.Dir
			if shard >= 0 {
				dir = store.ShardDir(dir, shard)
			}
			st, err := store.Open(dir, stOpts)
			if err != nil {
				return engine.Options{}, err
			}
			out.Corpus = st
		} else {
			out.Corpus = store.New(stOpts)
		}
	}
	return out, nil
}

// MatchContext is Match with cancellation: the full-matrix scoring runs on
// the engine executor and aborts promptly when ctx is cancelled or its
// deadline passes.
func MatchContext(ctx context.Context, d1, d2 Dataset, s Scorer, workers int) (MatchResult, error) {
	return eval.MatchingContext(ctx, d1, d2, s, workers)
}

// LinkDatasetsContext is LinkDatasets with cancellation.
func LinkDatasetsContext(ctx context.Context, d1, d2 Dataset, scorer Scorer, opts LinkOptions) ([]Link, error) {
	return linking.GreedyLinkContext(ctx, d1, d2, scorer, opts)
}

// LinkDatasetsOptimalContext is LinkDatasetsOptimal with cancellation.
func LinkDatasetsOptimalContext(ctx context.Context, d1, d2 Dataset, scorer Scorer, opts LinkOptions) ([]Link, error) {
	return linking.OptimalLinkContext(ctx, d1, d2, scorer, opts)
}

// ScoreMatrixContext scores rows × cols with cancellation; see
// eval.ScoreMatrixContext for the masked/unmasked semantics.
func ScoreMatrixContext(ctx context.Context, rows, cols Dataset, s Scorer, workers int) ([][]float64, error) {
	return eval.ScoreMatrixContext(ctx, rows, cols, s, workers)
}
