package sts_test

import (
	"fmt"

	sts "github.com/stslib/sts"
)

// Two objects walk the same corridor, observed at different times; a
// third walks a corridor 60 m away. STS scores the co-located pair far
// above the unrelated one even though no timestamps coincide.
func ExampleMeasure_Similarity() {
	walk := func(id string, offsetY, phase float64) sts.Trajectory {
		tr := sts.Trajectory{ID: id}
		for t := phase; t < 300; t += 15 {
			tr.Samples = append(tr.Samples, sts.Sample{
				Loc: sts.Point{X: 1.2 * t, Y: 50 + offsetY},
				T:   t,
			})
		}
		return tr
	}
	a := walk("a", 0, 0)
	b := walk("b", 1, 7) // same corridor, asynchronous sampling
	c := walk("c", 60, 7)

	grid, _ := sts.NewGrid(sts.NewRect(sts.Point{}, sts.Point{X: 400, Y: 150}), 3)
	m, _ := sts.NewMeasure(sts.MeasureOptions{Grid: grid, NoiseSigma: 3})

	same, _ := m.Similarity(a, b)
	diff, _ := m.Similarity(a, c)
	fmt.Println("co-located pair scores higher:", same > diff)
	fmt.Println("unrelated pair is near zero:", diff < 1e-6)
	// Output:
	// co-located pair scores higher: true
	// unrelated pair is near zero: true
}

// AlternateSplit builds the paired matching datasets of the paper's
// evaluation: even-indexed samples to one half, odd-indexed to the other.
func ExampleAlternateSplit() {
	tr := sts.Trajectory{ID: "obj"}
	for i := 0; i < 6; i++ {
		tr.Samples = append(tr.Samples, sts.Sample{
			Loc: sts.Point{X: float64(i)},
			T:   float64(i * 10),
		})
	}
	a, b := sts.AlternateSplit(tr)
	fmt.Println("first half times: ", a.Timestamps())
	fmt.Println("second half times:", b.Timestamps())
	// Output:
	// first half times:  [0 20 40]
	// second half times: [10 30 50]
}

// MergeByTime interleaves two trajectories — the merged trajectory whose
// timestamps STS averages over (Eq. 10).
func ExampleMergeByTime() {
	mk := func(id string, times ...float64) sts.Trajectory {
		tr := sts.Trajectory{ID: id}
		for _, t := range times {
			tr.Samples = append(tr.Samples, sts.Sample{T: t})
		}
		return tr
	}
	m := sts.MergeByTime(mk("a", 0, 20), mk("b", 10, 30))
	fmt.Println(m.Timestamps())
	// Output:
	// [0 10 20 30]
}

// Feasible is the FTL-style velocity compatibility pre-filter: two
// trajectories can only belong to one object if linking them never
// requires impossible speeds.
func ExampleFeasible() {
	a := sts.Trajectory{ID: "a", Samples: []sts.Sample{
		{Loc: sts.Point{X: 0}, T: 0},
		{Loc: sts.Point{X: 100}, T: 100}, // 1 m/s
	}}
	tooFar := sts.Trajectory{ID: "b", Samples: []sts.Sample{
		{Loc: sts.Point{X: 5000}, T: 50}, // needs 100 m/s from a's start
	}}
	fmt.Println(sts.Feasible(a, tooFar, 2.0, 1))
	// Output:
	// false
}

// ContactEpisodes turns the continuous co-location probability into
// "when were they together" intervals.
func ExampleContactEpisodes() {
	walk := func(id string, phase float64) sts.Trajectory {
		tr := sts.Trajectory{ID: id}
		for t := phase; t < 200; t += 12 {
			tr.Samples = append(tr.Samples, sts.Sample{
				Loc: sts.Point{X: 1.2 * t, Y: 50},
				T:   t,
			})
		}
		return tr
	}
	grid, _ := sts.NewGrid(sts.NewRect(sts.Point{}, sts.Point{X: 300, Y: 100}), 3)
	m, _ := sts.NewMeasure(sts.MeasureOptions{Grid: grid, NoiseSigma: 3})
	pa, _ := m.Prepare(walk("a", 0))
	pb, _ := m.Prepare(walk("b", 5))
	episodes, _ := sts.ContactEpisodes(pa, pb, 5, 1e-4)
	fmt.Println("in contact:", len(episodes) > 0)
	// Output:
	// in contact: true
}
