package client_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/stslib/sts/api"
	"github.com/stslib/sts/client"
	"github.com/stslib/sts/internal/server"
)

// flakyServer answers 429 (with a Retry-After hint) for the first fail
// requests, then succeeds with the given JSON body.
func flakyServer(t *testing.T, fail int, body string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= int64(fail) {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"overloaded"}`, http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(body))
	}))
	t.Cleanup(ts.Close)
	return ts, &hits
}

// TestClientRetries429 checks the default policy rides out transient
// load-shedding: two 429s then success resolves without surfacing an
// error, honoring the server's Retry-After hint between attempts.
func TestClientRetries429(t *testing.T) {
	ts, hits := flakyServer(t, 2, `{"ids":["a"],"count":1}`)
	c, err := client.NewWithOptions(ts.URL, client.Options{
		HTTPClient: ts.Client(),
		// Keep the test fast: the Retry-After hint of 1s is the floor the
		// server imposes, so only shrink the computed backoff.
		BaseBackoff: time.Millisecond,
		MaxBackoff:  2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	ids, err := c.IDs(context.Background())
	if err != nil {
		t.Fatalf("IDs after transient 429s: %v", err)
	}
	if len(ids) != 1 || ids[0] != "a" {
		t.Fatalf("IDs = %v, want [a]", ids)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (2 rejected + 1 served)", got)
	}
	// Two waits, each the 1s Retry-After hint.
	if elapsed := time.Since(start); elapsed < 2*time.Second {
		t.Fatalf("resolved in %s, want >= 2s (Retry-After honored twice)", elapsed)
	}
}

// TestClientNoRetry checks the opt-out: the first 429 is final.
func TestClientNoRetry(t *testing.T) {
	ts, hits := flakyServer(t, 1, `{"ids":[],"count":0}`)
	c, err := client.NewWithOptions(ts.URL, client.Options{HTTPClient: ts.Client(), NoRetry: true})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.IDs(context.Background())
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want APIError 429", err)
	}
	if ae.RetryAfter != time.Second {
		t.Fatalf("RetryAfter = %s, want 1s", ae.RetryAfter)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want exactly 1", got)
	}
}

// TestClientRetryBudgetExhausted checks that a server that never stops
// shedding eventually surfaces the 429 instead of retrying forever.
func TestClientRetryBudgetExhausted(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		// No Retry-After header, so the client falls back to its own
		// (shrunk) backoff and the test stays fast.
		http.Error(w, `{"error":"overloaded"}`, http.StatusTooManyRequests)
	}))
	t.Cleanup(ts.Close)
	c, err := client.NewWithOptions(ts.URL, client.Options{
		HTTPClient:  ts.Client(),
		MaxRetries:  2,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.IDs(context.Background())
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want APIError 429", err)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (1 + 2 retries)", got)
	}
}

// TestClientRetryRespectsContext checks that cancellation wins over the
// backoff wait.
func TestClientRetryRespectsContext(t *testing.T) {
	ts, _ := flakyServer(t, 1000, `{}`)
	c, err := client.NewWithOptions(ts.URL, client.Options{HTTPClient: ts.Client()})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.IDs(ctx)
	if err == nil {
		t.Fatal("IDs succeeded under a doomed context")
	}
	// The 1s Retry-After hint must not outlive the 50ms context.
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("gave up after %s, want prompt cancellation", elapsed)
	}
}

// TestClientAppendAndWatches round-trips the streaming endpoints through
// the typed client against a real in-process server.
func TestClientAppendAndWatches(t *testing.T) {
	c, ds := newWorld(t, server.Options{})
	ctx := context.Background()
	if _, err := c.PutBatch(ctx, api.FromDataset(ds)); err != nil {
		t.Fatalf("PutBatch: %v", err)
	}
	// Shadow copy of ds[0]: the grown original must alert against it.
	shadow := api.FromTrajectory(ds[0])
	shadow.ID = "shadow"
	if _, err := c.Put(ctx, shadow); err != nil {
		t.Fatalf("Put shadow: %v", err)
	}
	echoed, err := c.WatchPut(ctx, api.Watch{Name: "pals", Members: []string{"shadow"}, Theta: 0.001})
	if err != nil {
		t.Fatalf("WatchPut: %v", err)
	}
	if echoed.Name != "pals" || echoed.Theta != 0.001 {
		t.Fatalf("WatchPut echoed %+v", echoed)
	}

	tr, err := c.Get(ctx, ds[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	last := tr.Samples[len(tr.Samples)-1]
	ar, err := c.Append(ctx, ds[0].ID, [][3]float64{{last[0] + 5, last[1], last[2]}})
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if ar.N != len(tr.Samples)+1 || ar.Alerts != 1 {
		t.Fatalf("Append response %+v, want n=%d alerts=1", ar, len(tr.Samples)+1)
	}

	wl, err := c.Watches(ctx)
	if err != nil {
		t.Fatalf("Watches: %v", err)
	}
	if wl.Count != 1 || wl.Watches[0].Alerts != 1 {
		t.Fatalf("Watches = %+v, want one watch with one alert", wl)
	}

	if err := c.WatchDelete(ctx, "pals"); err != nil {
		t.Fatalf("WatchDelete: %v", err)
	}
	err = c.WatchDelete(ctx, "pals")
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusNotFound {
		t.Fatalf("double WatchDelete err = %v, want 404", err)
	}

	if _, err := c.Append(ctx, "", nil); err == nil {
		t.Fatal("Append with empty ID succeeded")
	}
	if _, err := c.WatchPut(ctx, api.Watch{Members: []string{"x"}, Theta: 0.5}); err == nil {
		t.Fatal("WatchPut without a name succeeded")
	}
}
