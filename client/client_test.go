package client_test

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"math"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/stslib/sts/api"
	"github.com/stslib/sts/client"
	"github.com/stslib/sts/internal/core"
	"github.com/stslib/sts/internal/engine"
	"github.com/stslib/sts/internal/eval"
	"github.com/stslib/sts/internal/experiments"
	"github.com/stslib/sts/internal/model"
	"github.com/stslib/sts/internal/server"
)

// newWorld boots an in-process server over a mall-scenario engine and
// returns a client pointed at it plus the source dataset.
func newWorld(t *testing.T, opts server.Options) (*client.Client, model.Dataset) {
	t.Helper()
	sc := experiments.Mall(6, 1)
	grid, err := sc.Grid(sc.GridSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewSTS(grid, sc.Sigma(0))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(eval.NewSTSScorer("STS", m), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if opts.Logger == nil {
		opts.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	srv, err := server.New(eng, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	c, err := client.New(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	return c, sc.Base
}

func TestClientRoundTrip(t *testing.T) {
	c, ds := newWorld(t, server.Options{})
	ctx := context.Background()

	batch, err := c.PutBatch(ctx, api.FromDataset(ds))
	if err != nil {
		t.Fatalf("PutBatch: %v", err)
	}
	if batch.Ingested != len(ds) || batch.CorpusSize != len(ds) {
		t.Fatalf("PutBatch: %+v, want %d ingested", batch, len(ds))
	}

	ids, err := c.IDs(ctx)
	if err != nil {
		t.Fatalf("IDs: %v", err)
	}
	if len(ids) != len(ds) {
		t.Fatalf("IDs: %d, want %d", len(ids), len(ds))
	}

	sim, err := c.Similarity(ctx, ds[0].ID, ds[1].ID)
	if err != nil {
		t.Fatalf("Similarity: %v", err)
	}
	if sim.Score == nil || math.IsNaN(*sim.Score) {
		t.Fatalf("Similarity: no finite score in %+v", sim)
	}

	top, err := c.TopK(ctx, ds[0].ID, 3)
	if err != nil {
		t.Fatalf("TopK: %v", err)
	}
	if len(top.Matches) != 3 {
		t.Fatalf("TopK: %d matches, want 3", len(top.Matches))
	}
	for _, m := range top.Matches {
		if m.ID == ds[0].ID {
			t.Fatalf("TopK: query %q in its own results", ds[0].ID)
		}
	}

	got, err := c.Get(ctx, ds[0].ID)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if got.ID != ds[0].ID || len(got.Samples) != len(ds[0].Samples) {
		t.Fatalf("Get: %q with %d samples, want %q with %d",
			got.ID, len(got.Samples), ds[0].ID, len(ds[0].Samples))
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.CorpusSize != len(ds) || st.Version == "" {
		t.Fatalf("Stats: %+v", st)
	}

	links, err := c.Link(ctx, api.LinkRequest{A: ids[:3], B: ids[3:]})
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	if len(links.Links) == 0 {
		t.Fatal("Link: no links between corpus halves")
	}

	if err := c.Delete(ctx, ds[0].ID); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := c.Get(ctx, ds[0].ID); err == nil {
		t.Fatal("Get after Delete: want error")
	}
}

// TestClientAPIError checks that server-side failures surface as *APIError
// with the status and message intact.
func TestClientAPIError(t *testing.T) {
	c, _ := newWorld(t, server.Options{})
	ctx := context.Background()

	_, err := c.Get(ctx, "nobody")
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("Get: err %v, want *APIError", err)
	}
	if apiErr.StatusCode != 404 || apiErr.Message == "" {
		t.Fatalf("Get: %+v, want a 404 with a message", apiErr)
	}

	if _, err := c.Put(ctx, api.Trajectory{}); err == nil {
		t.Fatal("Put without ID: want error")
	}
}

// TestClientContext checks that a client-side deadline aborts the request.
func TestClientContext(t *testing.T) {
	c, ds := newWorld(t, server.Options{})
	if _, err := c.PutBatch(context.Background(), api.FromDataset(ds)); err != nil {
		t.Fatalf("PutBatch: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	if _, err := c.TopK(ctx, ds[0].ID, 3); err == nil {
		t.Fatal("TopK under expired deadline: want error")
	}
}

func TestClientBadBaseURL(t *testing.T) {
	for _, bad := range []string{"", "not a url at all\x00", "localhost:8080", "/just/a/path"} {
		if _, err := client.New(bad, nil); err == nil {
			t.Errorf("New(%q): want error", bad)
		}
	}
}
