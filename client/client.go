// Package client is the typed Go caller for an stsserved instance. Every
// method takes a context — deadline and cancellation propagate through the
// server into the engine's cancellable executor — and non-2xx responses
// surface as *APIError carrying the HTTP status and, for 429s, the
// server's Retry-After hint.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"github.com/stslib/sts/api"
)

// Client calls one stsserved base URL.
type Client struct {
	base string
	http *http.Client
}

// New builds a Client for the server at baseURL (e.g. "http://localhost:8080").
// httpClient may be nil to use http.DefaultClient; pass one to control
// transport-level timeouts and connection pooling.
func New(baseURL string, httpClient *http.Client) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: bad base URL %q: %w", baseURL, err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("client: base URL %q needs a scheme and host", baseURL)
	}
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), http: httpClient}, nil
}

// APIError is a non-2xx response from the server.
type APIError struct {
	// StatusCode is the HTTP status.
	StatusCode int
	// Message is the server's error body.
	Message string
	// RetryAfter is the backoff hint of a 429 (zero otherwise).
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("client: server returned %d: %s (retry after %s)", e.StatusCode, e.Message, e.RetryAfter)
	}
	return fmt.Sprintf("client: server returned %d: %s", e.StatusCode, e.Message)
}

// Put upserts one trajectory. The trajectory's ID names it in the corpus.
func (c *Client) Put(ctx context.Context, tr api.Trajectory) (api.PutResponse, error) {
	var resp api.PutResponse
	if tr.ID == "" {
		return resp, fmt.Errorf("client: trajectory needs an ID")
	}
	err := c.do(ctx, http.MethodPut, "/v1/trajectories/"+url.PathEscape(tr.ID), tr, &resp)
	return resp, err
}

// Get fetches one trajectory from the corpus.
func (c *Client) Get(ctx context.Context, id string) (api.Trajectory, error) {
	var resp api.Trajectory
	err := c.do(ctx, http.MethodGet, "/v1/trajectories/"+url.PathEscape(id), nil, &resp)
	return resp, err
}

// Delete removes one trajectory from the corpus.
func (c *Client) Delete(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/trajectories/"+url.PathEscape(id), nil, nil)
}

// PutBatch upserts many trajectories in one request; the server validates
// the whole batch before applying any of it.
func (c *Client) PutBatch(ctx context.Context, trs []api.Trajectory) (api.BatchResponse, error) {
	var resp api.BatchResponse
	err := c.do(ctx, http.MethodPost, "/v1/trajectories:batch", api.BatchRequest{Trajectories: trs}, &resp)
	return resp, err
}

// IDs lists the corpus trajectory IDs in sorted order.
func (c *Client) IDs(ctx context.Context) ([]string, error) {
	var resp api.ListResponse
	if err := c.do(ctx, http.MethodGet, "/v1/trajectories", nil, &resp); err != nil {
		return nil, err
	}
	return resp.IDs, nil
}

// Similarity scores one corpus pair. A nil Score in the response means the
// pair's similarity has no finite value.
func (c *Client) Similarity(ctx context.Context, a, b string) (api.SimilarityResponse, error) {
	var resp api.SimilarityResponse
	q := url.Values{"a": {a}, "b": {b}}
	err := c.do(ctx, http.MethodGet, "/v1/similarity?"+q.Encode(), nil, &resp)
	return resp, err
}

// TopK ranks the corpus against the corpus trajectory id, excluding the
// query itself; k <= 0 selects the server's default.
func (c *Client) TopK(ctx context.Context, id string, k int) (api.TopKResponse, error) {
	var resp api.TopKResponse
	q := url.Values{"id": {id}}
	if k > 0 {
		q.Set("k", strconv.Itoa(k))
	}
	err := c.do(ctx, http.MethodGet, "/v1/topk?"+q.Encode(), nil, &resp)
	return resp, err
}

// TopKMinScore is TopK with a score floor: the server returns the best k
// matches scoring at least minScore, pruning sub-threshold candidates
// server-side through the engine's filter-and-refine path.
func (c *Client) TopKMinScore(ctx context.Context, id string, k int, minScore float64) (api.TopKResponse, error) {
	var resp api.TopKResponse
	q := url.Values{"id": {id}}
	if k > 0 {
		q.Set("k", strconv.Itoa(k))
	}
	q.Set("min_score", strconv.FormatFloat(minScore, 'g', -1, 64))
	err := c.do(ctx, http.MethodGet, "/v1/topk?"+q.Encode(), nil, &resp)
	return resp, err
}

// Link greedily links two corpus subsets one-to-one (empty sides mean the
// whole corpus).
func (c *Client) Link(ctx context.Context, req api.LinkRequest) (api.LinkResponse, error) {
	var resp api.LinkResponse
	err := c.do(ctx, http.MethodPost, "/v1/link", req, &resp)
	return resp, err
}

// Stats reads the server's engine introspection.
func (c *Client) Stats(ctx context.Context) (api.StatsResponse, error) {
	var resp api.StatsResponse
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &resp)
	return resp, err
}

// do runs one request: marshal body, send, map non-2xx to *APIError,
// decode the response into out when given.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("client: encode request: %w", err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return apiError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode response: %w", err)
	}
	return nil
}

// apiError builds the *APIError for a non-2xx response, preferring the
// server's structured error body.
func apiError(resp *http.Response) error {
	e := &APIError{StatusCode: resp.StatusCode}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		e.RetryAfter = time.Duration(secs) * time.Second
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var body api.ErrorResponse
	if err := json.Unmarshal(raw, &body); err == nil && body.Error != "" {
		e.Message = body.Error
	} else {
		e.Message = strings.TrimSpace(string(raw))
	}
	if e.Message == "" {
		e.Message = http.StatusText(resp.StatusCode)
	}
	return e
}
