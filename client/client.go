// Package client is the typed Go caller for an stsserved instance. Every
// method takes a context — deadline and cancellation propagate through the
// server into the engine's cancellable executor — and non-2xx responses
// surface as *APIError carrying the HTTP status and, for 429s, the
// server's Retry-After hint.
//
// By default the client absorbs the server's load-shedding posture:
// 429 rejections (which the server issues before doing any work, so a
// retry never double-applies) and connection-level transport failures are
// retried with capped, jittered exponential backoff, honoring the
// server's Retry-After hint when one is present. Options.NoRetry opts out
// for callers that run their own retry policy.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/stslib/sts/api"
)

// Default retry knobs, overridable through Options.
const (
	// DefaultMaxRetries bounds re-sends after the first attempt.
	DefaultMaxRetries = 3
	// DefaultBaseBackoff seeds the exponential backoff between attempts.
	DefaultBaseBackoff = 100 * time.Millisecond
	// DefaultMaxBackoff caps the backoff growth.
	DefaultMaxBackoff = 2 * time.Second
)

// Options configures a Client. The zero value retries with the defaults
// above over http.DefaultClient.
type Options struct {
	// HTTPClient is the transport (nil selects http.DefaultClient); pass one
	// to control transport-level timeouts and connection pooling.
	HTTPClient *http.Client
	// NoRetry disables retries entirely: every attempt is final.
	NoRetry bool
	// MaxRetries bounds re-sends after the first attempt (0 selects
	// DefaultMaxRetries; NoRetry is the way to ask for none).
	MaxRetries int
	// BaseBackoff and MaxBackoff shape the jittered exponential backoff
	// between attempts (0 selects the defaults). A 429's Retry-After hint,
	// when present, overrides the computed backoff for that wait.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
}

// Client calls one stsserved base URL.
type Client struct {
	base string
	http *http.Client
	opts Options
}

// New builds a Client for the server at baseURL (e.g. "http://localhost:8080")
// with the default retry policy. httpClient may be nil to use
// http.DefaultClient.
func New(baseURL string, httpClient *http.Client) (*Client, error) {
	return NewWithOptions(baseURL, Options{HTTPClient: httpClient})
}

// NewWithOptions is New with explicit retry and transport options.
func NewWithOptions(baseURL string, opts Options) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: bad base URL %q: %w", baseURL, err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("client: base URL %q needs a scheme and host", baseURL)
	}
	if opts.HTTPClient == nil {
		opts.HTTPClient = http.DefaultClient
	}
	if opts.MaxRetries <= 0 {
		opts.MaxRetries = DefaultMaxRetries
	}
	if opts.BaseBackoff <= 0 {
		opts.BaseBackoff = DefaultBaseBackoff
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = DefaultMaxBackoff
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), http: opts.HTTPClient, opts: opts}, nil
}

// APIError is a non-2xx response from the server.
type APIError struct {
	// StatusCode is the HTTP status.
	StatusCode int
	// Message is the server's error body.
	Message string
	// RetryAfter is the backoff hint of a 429 (zero otherwise).
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("client: server returned %d: %s (retry after %s)", e.StatusCode, e.Message, e.RetryAfter)
	}
	return fmt.Sprintf("client: server returned %d: %s", e.StatusCode, e.Message)
}

// Put upserts one trajectory. The trajectory's ID names it in the corpus.
func (c *Client) Put(ctx context.Context, tr api.Trajectory) (api.PutResponse, error) {
	var resp api.PutResponse
	if tr.ID == "" {
		return resp, fmt.Errorf("client: trajectory needs an ID")
	}
	err := c.do(ctx, http.MethodPut, "/v1/trajectories/"+url.PathEscape(tr.ID), tr, &resp)
	return resp, err
}

// Get fetches one trajectory from the corpus.
func (c *Client) Get(ctx context.Context, id string) (api.Trajectory, error) {
	var resp api.Trajectory
	err := c.do(ctx, http.MethodGet, "/v1/trajectories/"+url.PathEscape(id), nil, &resp)
	return resp, err
}

// Delete removes one trajectory from the corpus.
func (c *Client) Delete(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/trajectories/"+url.PathEscape(id), nil, nil)
}

// PutBatch upserts many trajectories in one request; the server validates
// the whole batch before applying any of it.
func (c *Client) PutBatch(ctx context.Context, trs []api.Trajectory) (api.BatchResponse, error) {
	var resp api.BatchResponse
	err := c.do(ctx, http.MethodPost, "/v1/trajectories:batch", api.BatchRequest{Trajectories: trs}, &resp)
	return resp, err
}

// IDs lists the corpus trajectory IDs in sorted order.
func (c *Client) IDs(ctx context.Context) ([]string, error) {
	var resp api.ListResponse
	if err := c.do(ctx, http.MethodGet, "/v1/trajectories", nil, &resp); err != nil {
		return nil, err
	}
	return resp.IDs, nil
}

// Similarity scores one corpus pair. A nil Score in the response means the
// pair's similarity has no finite value.
func (c *Client) Similarity(ctx context.Context, a, b string) (api.SimilarityResponse, error) {
	var resp api.SimilarityResponse
	q := url.Values{"a": {a}, "b": {b}}
	err := c.do(ctx, http.MethodGet, "/v1/similarity?"+q.Encode(), nil, &resp)
	return resp, err
}

// TopK ranks the corpus against the corpus trajectory id, excluding the
// query itself; k <= 0 selects the server's default.
func (c *Client) TopK(ctx context.Context, id string, k int) (api.TopKResponse, error) {
	var resp api.TopKResponse
	q := url.Values{"id": {id}}
	if k > 0 {
		q.Set("k", strconv.Itoa(k))
	}
	err := c.do(ctx, http.MethodGet, "/v1/topk?"+q.Encode(), nil, &resp)
	return resp, err
}

// TopKMinScore is TopK with a score floor: the server returns the best k
// matches scoring at least minScore, pruning sub-threshold candidates
// server-side through the engine's filter-and-refine path.
func (c *Client) TopKMinScore(ctx context.Context, id string, k int, minScore float64) (api.TopKResponse, error) {
	var resp api.TopKResponse
	q := url.Values{"id": {id}}
	if k > 0 {
		q.Set("k", strconv.Itoa(k))
	}
	q.Set("min_score", strconv.FormatFloat(minScore, 'g', -1, 64))
	err := c.do(ctx, http.MethodGet, "/v1/topk?"+q.Encode(), nil, &resp)
	return resp, err
}

// Link greedily links two corpus subsets one-to-one (empty sides mean the
// whole corpus).
func (c *Client) Link(ctx context.Context, req api.LinkRequest) (api.LinkResponse, error) {
	var resp api.LinkResponse
	err := c.do(ctx, http.MethodPost, "/v1/link", req, &resp)
	return resp, err
}

// Append extends a resident trajectory with samples strictly past its
// current last timestamp (samples are [t, x, y] triples). The response
// reports the grown sample count and how many standing-query alerts the
// append fired.
func (c *Client) Append(ctx context.Context, id string, samples [][3]float64) (api.AppendResponse, error) {
	var resp api.AppendResponse
	if id == "" {
		return resp, fmt.Errorf("client: append needs a trajectory ID")
	}
	err := c.do(ctx, http.MethodPost, "/v1/trajectories/"+url.PathEscape(id)+":append",
		api.AppendRequest{Samples: samples}, &resp)
	return resp, err
}

// WatchPut registers or replaces the standing co-location query w.Name.
func (c *Client) WatchPut(ctx context.Context, w api.Watch) (api.Watch, error) {
	var resp api.Watch
	if w.Name == "" {
		return resp, fmt.Errorf("client: watch needs a name")
	}
	err := c.do(ctx, http.MethodPut, "/v1/watch/"+url.PathEscape(w.Name), w, &resp)
	return resp, err
}

// WatchDelete removes one standing query.
func (c *Client) WatchDelete(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, "/v1/watch/"+url.PathEscape(name), nil, nil)
}

// Watches lists every standing query with its evaluation and delivery
// counters.
func (c *Client) Watches(ctx context.Context) (api.WatchListResponse, error) {
	var resp api.WatchListResponse
	err := c.do(ctx, http.MethodGet, "/v1/watch", nil, &resp)
	return resp, err
}

// Stats reads the server's engine introspection.
func (c *Client) Stats(ctx context.Context) (api.StatsResponse, error) {
	var resp api.StatsResponse
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &resp)
	return resp, err
}

// do runs one request under the retry policy: marshal the body once, then
// attempt until success, a non-retryable failure, the retry budget runs
// out, or the context ends. Between attempts it waits the server's
// Retry-After hint when one came back, else a jittered exponential
// backoff.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var buf []byte
	if body != nil {
		var err error
		buf, err = json.Marshal(body)
		if err != nil {
			return fmt.Errorf("client: encode request: %w", err)
		}
	}
	attempts := 1
	if !c.opts.NoRetry {
		attempts = c.opts.MaxRetries + 1
	}
	backoff := c.opts.BaseBackoff
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			delay := backoff/2 + rand.N(backoff/2+1)
			var ae *APIError
			if errors.As(lastErr, &ae) && ae.RetryAfter > 0 {
				delay = ae.RetryAfter
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(delay):
			}
			if backoff *= 2; backoff > c.opts.MaxBackoff {
				backoff = c.opts.MaxBackoff
			}
		}
		err := c.once(ctx, method, path, buf, body != nil, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable(err) || ctx.Err() != nil {
			return err
		}
	}
	return lastErr
}

// once is a single request attempt: send, map non-2xx to *APIError,
// decode the response into out when given.
func (c *Client) once(ctx context.Context, method, path string, buf []byte, hasBody bool, out any) error {
	var rd io.Reader
	if hasBody {
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	if hasBody {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return apiError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode response: %w", err)
	}
	return nil
}

// retryable reports whether an attempt's failure is worth re-sending: the
// server's 429 load-shed (rejected before any work) or a connection-level
// transport failure (reset, refusal, or a torn connection surfacing as an
// unexpected EOF).
func retryable(err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.StatusCode == http.StatusTooManyRequests
	}
	return errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF)
}

// apiError builds the *APIError for a non-2xx response, preferring the
// server's structured error body.
func apiError(resp *http.Response) error {
	e := &APIError{StatusCode: resp.StatusCode}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		e.RetryAfter = time.Duration(secs) * time.Second
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var body api.ErrorResponse
	if err := json.Unmarshal(raw, &body); err == nil && body.Error != "" {
		e.Message = body.Error
	} else {
		e.Message = strings.TrimSpace(string(raw))
	}
	if e.Message == "" {
		e.Message = http.StatusText(resp.StatusCode)
	}
	return e
}
