// Command stsbench regenerates the evaluation artifacts of the STS paper
// (ICDE 2021): every figure of Section VI, as formatted tables of the same
// series the paper plots.
//
// Usage:
//
//	stsbench -figure 4               # one figure, both datasets
//	stsbench -figure 4+5             # a shared sweep, both panels
//	stsbench -figure complexity      # the Section V-C cost-model check
//	stsbench -all                    # everything (tens of minutes)
//	stsbench -figure 8 -n 40         # bigger datasets
//	stsbench -figure 11 -format csv  # machine-readable output
//
// Dataset sizes default to a laptop-friendly 20 mall objects / 60 taxis;
// the paper's absolute numbers used far larger corpora (and hours of
// Python runtime), so expect the same shapes, not the same decimals.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/stslib/sts/internal/experiments"
)

func main() {
	var (
		figure    = flag.String("figure", "", "figure to regenerate: 4..14, or 4+5, 6+7, 8+9, 12+13+14")
		all       = flag.Bool("all", false, "regenerate every figure")
		n         = flag.Int("n", 0, "mall objects (default 20; taxis default to 3x)")
		seed      = flag.Int64("seed", 0, "random seed (default 1)")
		workers   = flag.Int("workers", 0, "scoring goroutines (default GOMAXPROCS)")
		pairs     = flag.Int("pairs", 0, "pairs for the cross-similarity experiment (default 100)")
		format    = flag.String("format", "text", "output format: text or csv")
		bench     = flag.Bool("bench", false, "run the perf-regression suite instead of a figure")
		benchOut  = flag.String("benchout", "BENCH_1.json", "output path of the -bench JSON report")
		baseline  = flag.String("baseline", "", "previous -bench report to compute speedups against")
		benchTime = flag.Duration("benchtime", time.Second, "minimum measured time per -bench benchmark")
	)
	flag.Parse()

	cfg := experiments.Config{N: *n, Seed: *seed, Workers: *workers, Pairs: *pairs}
	start := time.Now()
	var err error
	switch {
	case *bench:
		err = experiments.RunPerf(cfg, experiments.PerfOptions{
			MinTime:      *benchTime,
			Workers:      *workers,
			BaselinePath: *baseline,
		}, *benchOut, os.Stdout)
	case *all:
		err = experiments.RunAll(cfg, os.Stdout)
	case *figure != "":
		err = experiments.RunFormat(*figure, cfg, os.Stdout, *format)
	default:
		fmt.Fprintln(os.Stderr, "stsbench: specify -figure <id>, -all or -bench")
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "stsbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("done in %.1fs\n", time.Since(start).Seconds())
}
