// Command stsbench regenerates the evaluation artifacts of the STS paper
// (ICDE 2021): every figure of Section VI, as formatted tables of the same
// series the paper plots.
//
// Usage:
//
//	stsbench -figure 4               # one figure, both datasets
//	stsbench -figure 4+5             # a shared sweep, both panels
//	stsbench -figure complexity      # the Section V-C cost-model check
//	stsbench -all                    # everything (tens of minutes)
//	stsbench -figure 8 -n 40         # bigger datasets
//	stsbench -figure 11 -format csv  # machine-readable output
//
// The -bench mode runs the perf-regression suite instead; it supports
// pprof capture and a regression gate for CI:
//
//	stsbench -bench -benchout BENCH.json                  # fresh baseline
//	stsbench -bench -baseline BENCH_3.json -gate 20       # fail on >20% slowdown
//	stsbench -bench -cpuprofile cpu.out -memprofile mem.out
//
// Dataset sizes default to a laptop-friendly 20 mall objects / 60 taxis;
// the paper's absolute numbers used far larger corpora (and hours of
// Python runtime), so expect the same shapes, not the same decimals.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"github.com/stslib/sts/internal/experiments"
	"github.com/stslib/sts/internal/version"
)

func main() {
	var (
		figure    = flag.String("figure", "", "figure to regenerate: 4..14, or 4+5, 6+7, 8+9, 12+13+14")
		all       = flag.Bool("all", false, "regenerate every figure")
		n         = flag.Int("n", 0, "mall objects (default 20; taxis default to 3x)")
		seed      = flag.Int64("seed", 0, "random seed (default 1)")
		workers   = flag.Int("workers", 0, "scoring goroutines (default GOMAXPROCS)")
		pairs     = flag.Int("pairs", 0, "pairs for the cross-similarity experiment (default 100)")
		format    = flag.String("format", "text", "output format: text or csv")
		bench     = flag.Bool("bench", false, "run the perf-regression suite instead of a figure")
		benchOut  = flag.String("benchout", "BENCH_1.json", "output path of the -bench JSON report")
		baseline  = flag.String("baseline", "", "previous -bench report to compute speedups against")
		benchTime = flag.Duration("benchtime", time.Second, "minimum measured time per -bench benchmark")
		repeat    = flag.Int("repeat", 1, "measure each -bench benchmark this many times and report the median run (damps box noise for baseline gates)")
		profBkt   = flag.Float64("profile-bucket", 0, "bucket width in seconds of the -bench profile_* benches (0 = library default)")
		gate      = flag.Float64("gate", 0, "with -baseline: exit non-zero if any shared benchmark slowed by more than this percent")
		wAxis     = flag.String("workers-axis", "", "comma-separated worker counts of the -bench parallel-scaling rows (default 1,NumCPU/2,NumCPU)")
		shAxis    = flag.String("shards-axis", "", "comma-separated partition counts of the -bench sharded-scaling rows (default 1,2,4,8)")
		cpuProf   = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf   = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
		showVer   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()

	if *showVer {
		fmt.Println("stsbench", version.String())
		return
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	cfg := experiments.Config{N: *n, Seed: *seed, Workers: *workers, Pairs: *pairs}
	start := time.Now()
	var err error
	switch {
	case *bench:
		axis, aerr := parseAxis("-workers-axis", *wAxis)
		if aerr != nil {
			fatal(aerr)
		}
		sAxis, aerr := parseAxis("-shards-axis", *shAxis)
		if aerr != nil {
			fatal(aerr)
		}
		err = experiments.RunPerf(cfg, experiments.PerfOptions{
			MinTime:       *benchTime,
			Workers:       *workers,
			BaselinePath:  *baseline,
			ProfileBucket: *profBkt,
			GatePercent:   *gate,
			WorkersAxis:   axis,
			ShardsAxis:    sAxis,
			Repeat:        *repeat,
		}, *benchOut, os.Stdout)
	case *all:
		err = experiments.RunAll(cfg, os.Stdout)
	case *figure != "":
		err = experiments.RunFormat(*figure, cfg, os.Stdout, *format)
	default:
		fmt.Fprintln(os.Stderr, "stsbench: specify -figure <id>, -all or -bench")
		flag.Usage()
		os.Exit(2)
	}
	if *memProf != "" {
		f, merr := os.Create(*memProf)
		if merr != nil {
			fatal(merr)
		}
		runtime.GC() // settle live heap before the snapshot
		if merr := pprof.WriteHeapProfile(f); merr != nil {
			fatal(merr)
		}
		f.Close()
	}
	if err != nil {
		if *cpuProf != "" {
			pprof.StopCPUProfile()
		}
		fmt.Fprintf(os.Stderr, "stsbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("done in %.1fs\n", time.Since(start).Seconds())
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "stsbench: %v\n", err)
	os.Exit(1)
}

// parseAxis parses a comma-separated count list ("1,2,4"). Empty selects
// the library default.
func parseAxis(name, s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var axis []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("%s: %q is not a positive count", name, part)
		}
		axis = append(axis, n)
	}
	return axis, nil
}
