// Command stsserved serves a trajectory corpus over HTTP/JSON: ingestion,
// pairwise STS similarity, top-k co-location search, greedy linking, and
// Prometheus-text metrics — the engine behind a long-lived process
// boundary.
//
// Usage:
//
//	stsserved -addr :8080 -sigma 3 -grid 3                 # empty corpus
//	stsserved -addr :8080 -dataset mall.csv                # preloaded corpus
//	stsserved -dataset mall.csv -profile-bucket 30         # bucketed profiles
//	stsserved -dataset mall.csv -max-inflight 16 -timeout 5s
//	stsserved -data-dir /var/lib/sts -sigma 3              # durable corpus
//
// The spatial scales (-grid, -sigma) default from the preloaded corpus the
// same way stsmatch derives them; with no corpus they must be given. With
// -data-dir the corpus is durable: every mutation is written ahead to a
// CRC-framed log and periodically compacted into snapshots, and a restart
// recovers the corpus (including after kill -9 — torn WAL tails are
// truncated to the last durable record). A recovered corpus takes
// precedence over -dataset; preloading streams the CSV one trajectory at a
// time, so peak ingestion memory is one trajectory, not the dataset. The
// process serves until SIGINT/SIGTERM, then drains in-flight requests for
// up to -drain before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/stslib/sts/internal/core"
	"github.com/stslib/sts/internal/dataset"
	"github.com/stslib/sts/internal/engine"
	"github.com/stslib/sts/internal/eval"
	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/model"
	"github.com/stslib/sts/internal/server"
	"github.com/stslib/sts/internal/store"
	"github.com/stslib/sts/internal/version"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		dataPath  = flag.String("dataset", "", "CSV dataset to preload into the corpus (skipped when -data-dir recovers a non-empty corpus)")
		dataDir   = flag.String("data-dir", "", "durable data directory (WAL + snapshots); empty serves an in-memory corpus")
		snapEvery = flag.Int64("snapshot-every", 0, "snapshot the corpus once the WAL grows this many bytes (0 = 64MiB default, negative = disable automatic snapshots)")
		fsyncIv   = flag.Duration("fsync-interval", 0, "batch WAL fsyncs at most this often (0 = 50ms default, negative = never fsync, 1ns = fsync every record)")
		coordStep = flag.Float64("coord-step", 0, "fixed-point coordinate quantization step in meters for stored records (0 = lossless, negative = derive from sigma: sigma*1e-9)")
		gridSz    = flag.Float64("grid", 0, "grid cell size in meters (default: sigma, or 1/100 of the corpus extent)")
		sigma     = flag.Float64("sigma", 0, "location noise sigma in meters (default: grid size)")
		profile   = flag.Float64("profile-bucket", 0, "bucketed-profile scoring with this bucket width in seconds (0 = exact; -1 = default width)")
		timeout   = flag.Duration("timeout", server.DefaultQueryTimeout, "per-request budget for scoring routes (negative = unbounded)")
		ingestTO  = flag.Duration("ingest-timeout", server.DefaultIngestTimeout, "per-request budget for ingestion routes (negative = unbounded)")
		inflight  = flag.Int("max-inflight", server.DefaultMaxInFlight, "max concurrently admitted /v1 requests; excess get 429 (negative = unbounded)")
		drain     = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget for in-flight requests")
		cacheSz   = flag.Int("cache", 0, "prepared-trajectory LRU capacity (0 = engine default; negative = unbounded)")
		workers   = flag.Int("workers", 0, "scoring worker pool size (0 = GOMAXPROCS)")
		strict    = flag.Bool("strict", false, "reject ingested trajectories with out-of-order samples instead of sorting them")
		showVer   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Println("stsserved", version.String())
		return
	}

	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	slog.SetDefault(log)

	readOpts := dataset.ReadOptions{RejectUnsorted: *strict}
	stOpts := store.Options{
		FsyncInterval: *fsyncIv,
		SnapshotEvery: *snapEvery,
		Logger:        log,
	}
	if *coordStep > 0 {
		stOpts.CoordStep = *coordStep
	}

	var st *store.Store
	if *dataDir != "" {
		var err error
		st, err = store.Open(*dataDir, stOpts)
		check(err)
		if info, ok := st.Recovery(); ok {
			log.Info("store recovered",
				"dir", *dataDir,
				"records", st.Len(),
				"recovery_seconds", info.Duration.Seconds(),
				"snapshot_seq", info.SnapshotSeq,
				"snapshot_records", info.SnapshotRecords,
				"wal_segments", info.WALSegments,
				"wal_records", info.WALRecords,
				"truncated_bytes", info.TruncatedBytes)
		}
	} else {
		st = store.New(stOpts)
	}

	// Spatial scales come from whatever corpus exists at boot: the recovered
	// store when non-empty, otherwise a streaming bounds pass over -dataset
	// (nothing is retained), otherwise the explicit flags.
	var (
		bounds     geo.Rect
		haveBounds bool
	)
	if st.Len() > 0 {
		bounds, haveBounds = st.Bounds()
		if *dataPath != "" {
			log.Info("recovered corpus is non-empty; skipping -dataset preload", "path", *dataPath, "records", st.Len())
			*dataPath = ""
		}
	} else if *dataPath != "" {
		n := 0
		check(dataset.StreamFile(*dataPath, readOpts, func(tr model.Trajectory) error {
			b := tr.Bounds()
			if !haveBounds {
				bounds, haveBounds = b, true
			} else {
				bounds = bounds.Union(b)
			}
			n++
			return nil
		}))
		log.Info("dataset scanned for scales", "path", *dataPath, "trajectories", n)
	}

	scorer, sigmaUsed, err := buildScorer(bounds, haveBounds, *gridSz, *sigma, *profile)
	check(err)
	if *coordStep < 0 {
		step := store.StepForSigma(sigmaUsed)
		st.SetCoordStep(step)
		log.Info("coordinate quantization derived from sigma", "sigma", sigmaUsed, "coord_step", step)
	}

	eng, err := engine.New(scorer, engine.Options{Workers: *workers, CacheSize: *cacheSz, Corpus: st})
	check(err)

	if *dataPath != "" {
		// Streaming ingestion: each trajectory is encoded into the columnar
		// store as soon as its rows end, so peak memory is O(1 trajectory)
		// instead of a boxed copy of the whole dataset.
		n := 0
		check(dataset.StreamFile(*dataPath, readOpts, func(tr model.Trajectory) error {
			if _, err := eng.Add(tr); err != nil {
				return err
			}
			n++
			return nil
		}))
		log.Info("dataset ingested", "path", *dataPath, "trajectories", n)
	}

	ss := st.Stats()
	log.Info("store ready",
		"records", ss.Records,
		"live_bytes", ss.LiveBytes,
		"resident_bytes", ss.ArenaBytes,
		"coord_step", ss.CoordStep,
		"persistent", ss.Persistent,
		"wal_bytes", ss.WALBytes)

	srv, err := server.New(eng, server.Options{
		QueryTimeout:  *timeout,
		IngestTimeout: *ingestTO,
		MaxInFlight:   *inflight,
		Strict:        *strict,
		Logger:        log,
	})
	check(err)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	check(srv.ListenAndServe(ctx, *addr, *drain))
	check(eng.Close())
}

// buildScorer assembles the STS scorer with scales derived from the boot
// corpus bounds when not given explicitly. With no corpus the scales cannot
// be derived, so -grid or -sigma is required — the grid must cover
// everything ingested later, so it is padded generously (the serving corpus
// is mutable, unlike stsmatch's fixed datasets). It returns the resolved
// sigma alongside the scorer so the store's quantization step can be
// derived from it.
func buildScorer(bounds geo.Rect, haveBounds bool, gridSize, sigma, profileBucket float64) (eval.Scorer, float64, error) {
	if !haveBounds {
		// No corpus to derive scales from: require explicit scales and
		// center a large grid on the origin.
		if gridSize <= 0 && sigma <= 0 {
			return nil, 0, fmt.Errorf("with no preloaded corpus, -grid or -sigma is required")
		}
		if gridSize <= 0 {
			gridSize = sigma
		}
		if sigma <= 0 {
			sigma = gridSize
		}
		half := 1000 * gridSize
		bounds = geo.Rect{Min: geo.Point{X: -half, Y: -half}, Max: geo.Point{X: half, Y: half}}
	} else {
		extent := bounds.Width()
		if bounds.Height() > extent {
			extent = bounds.Height()
		}
		if gridSize <= 0 {
			if sigma > 0 {
				gridSize = sigma
			} else {
				gridSize = extent / 100
			}
		}
		if sigma <= 0 {
			sigma = gridSize
		}
		// Pad beyond the blur halo so trajectories ingested later near the
		// corpus's edge still land on the grid.
		bounds = bounds.Expand(extent / 2)
	}
	grid, err := geo.NewGrid(bounds.Expand(4*sigma+gridSize), gridSize)
	if err != nil {
		return nil, 0, err
	}
	m, err := core.NewSTS(grid, sigma)
	if err != nil {
		return nil, 0, err
	}
	if profileBucket != 0 {
		popts := core.ProfileOptions{}
		if profileBucket > 0 {
			popts.BucketSeconds = profileBucket
		}
		return eval.NewSTSScorerProfiled("STS-P", m, popts), sigma, nil
	}
	return eval.NewSTSScorer("STS", m), sigma, nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "stsserved: %v\n", err)
		os.Exit(1)
	}
}
