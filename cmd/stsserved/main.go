// Command stsserved serves a trajectory corpus over HTTP/JSON: ingestion,
// pairwise STS similarity, top-k co-location search, greedy linking, and
// Prometheus-text metrics — the engine behind a long-lived process
// boundary.
//
// Usage:
//
//	stsserved -addr :8080 -sigma 3 -grid 3                 # empty corpus
//	stsserved -addr :8080 -dataset mall.csv                # preloaded corpus
//	stsserved -dataset mall.csv -profile-bucket 30         # bucketed profiles
//	stsserved -dataset mall.csv -max-inflight 16 -timeout 5s
//	stsserved -data-dir /var/lib/sts -sigma 3              # durable corpus
//	stsserved -data-dir /var/lib/sts -shards 8 -sigma 3    # partitioned corpus
//	stsserved -data-dir /var/lib/sts -retention 1h         # sliding-window stream
//
// The spatial scales (-grid, -sigma) default from the preloaded corpus the
// same way stsmatch derives them; with no corpus they must be given. With
// -data-dir the corpus is durable: every mutation is written ahead to a
// CRC-framed log and periodically compacted into snapshots, and a restart
// recovers the corpus (including after kill -9 — torn WAL tails are
// truncated to the last durable record). A recovered corpus takes
// precedence over -dataset; preloading streams the CSV one trajectory at a
// time, so peak ingestion memory is one trajectory, not the dataset.
//
// With -shards N (default min(8, NumCPU)) the corpus partitions across N
// independent engine shards by trajectory-ID hash: each shard owns its own
// store (data-dir/shard-NNN), caches, and locks, so concurrent ingestion
// and queries scale across cores; shard WALs recover in parallel at boot.
// Query results are bit-identical to a single engine over the same corpus.
// A sharded data directory must be reopened with the same -shards count.
//
// The server is also a live stream sink: POST {id}:append grows resident
// trajectories sample-by-sample, and standing co-location queries
// (PUT /v1/watch/{name}) are re-evaluated against every append, firing
// webhook alerts when a watched pair crosses its threshold. With -data-dir
// the watchlist persists next to the corpus and survives restarts. With
// -retention the corpus becomes a sliding window over stream time: samples
// older than the window behind the newest appended sample are periodically
// trimmed away (and compacted out at the next snapshot).
//
// The process serves until SIGINT/SIGTERM, then drains in-flight requests
// for up to -drain before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"github.com/stslib/sts/internal/core"
	"github.com/stslib/sts/internal/dataset"
	"github.com/stslib/sts/internal/engine"
	"github.com/stslib/sts/internal/eval"
	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/model"
	"github.com/stslib/sts/internal/server"
	"github.com/stslib/sts/internal/store"
	"github.com/stslib/sts/internal/stream"
	"github.com/stslib/sts/internal/version"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		dataPath  = flag.String("dataset", "", "CSV dataset to preload into the corpus (skipped when -data-dir recovers a non-empty corpus)")
		dataDir   = flag.String("data-dir", "", "durable data directory (WAL + snapshots); empty serves an in-memory corpus")
		snapEvery = flag.Int64("snapshot-every", 0, "snapshot the corpus once the WAL grows this many bytes (0 = 64MiB default, negative = disable automatic snapshots)")
		fsyncIv   = flag.Duration("fsync-interval", 0, "batch WAL fsyncs at most this often (0 = 50ms default, negative = never fsync, 1ns = fsync every record)")
		coordStep = flag.Float64("coord-step", 0, "fixed-point coordinate quantization step in meters for stored records (0 = lossless, negative = derive from sigma: sigma*1e-9)")
		gridSz    = flag.Float64("grid", 0, "grid cell size in meters (default: sigma, or 1/100 of the corpus extent)")
		sigma     = flag.Float64("sigma", 0, "location noise sigma in meters (default: grid size)")
		profile   = flag.Float64("profile-bucket", 0, "bucketed-profile scoring with this bucket width in seconds (0 = exact; -1 = default width)")
		timeout   = flag.Duration("timeout", server.DefaultQueryTimeout, "per-request budget for scoring routes (negative = unbounded)")
		ingestTO  = flag.Duration("ingest-timeout", server.DefaultIngestTimeout, "per-request budget for ingestion routes (negative = unbounded)")
		inflight  = flag.Int("max-inflight", server.DefaultMaxInFlight, "max concurrently admitted /v1 requests; excess get 429 (negative = unbounded)")
		drain     = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget for in-flight requests")
		cacheSz   = flag.Int("cache", 0, "prepared-trajectory LRU capacity (0 = engine default; negative = unbounded)")
		workers   = flag.Int("workers", 0, "scoring worker pool size (0 = GOMAXPROCS)")
		shards    = flag.Int("shards", 0, "engine shard count: trajectories partition across this many independent engines by ID hash (0 = min(8, NumCPU); 1 = single engine)")
		strict    = flag.Bool("strict", false, "reject ingested trajectories with out-of-order samples instead of sorting them")
		retention = flag.Duration("retention", 0, "sliding time-window retention: periodically drop samples older than this much stream time behind the newest appended sample (0 = keep everything)")
		warmCache = flag.Bool("warm-cache", true, "persist the profile cache to a derived-state sidecar at snapshots and warm-load it at recovery (needs -data-dir)")
		debounce  = flag.Duration("alert-debounce", 0, "per-pair standing-alert debounce window in stream time: a (trajectory, member) pair that alerted stays silent until its stream clock advances this far (0 = alert on every crossing; per-watch debounce_seconds overrides)")
		webhookTO = flag.Duration("webhook-timeout", 0, "per-attempt budget for standing-query webhook deliveries (0 = 5s default)")
		showVer   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Println("stsserved", version.String())
		return
	}

	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	slog.SetDefault(log)

	readOpts := dataset.ReadOptions{RejectUnsorted: *strict}
	stOpts := store.Options{
		FsyncInterval:  *fsyncIv,
		SnapshotEvery:  *snapEvery,
		DisableSidecar: !*warmCache,
		Logger:         log,
	}
	if *coordStep > 0 {
		stOpts.CoordStep = *coordStep
	}

	nShards := *shards
	if nShards <= 0 {
		nShards = runtime.NumCPU()
		if nShards > 8 {
			nShards = 8
		}
	}
	if *dataDir != "" {
		check(checkShardLayout(*dataDir, nShards))
	}

	// Open one store per shard. Persistent shards open — and replay their
	// WALs — concurrently, so cold-start recovery time is the slowest
	// shard's, not the sum.
	stores := make([]*store.Store, nShards)
	if *dataDir != "" {
		check(engine.ForEach(context.Background(), nShards, nShards, func(i int) error {
			dir := *dataDir
			if nShards > 1 {
				dir = store.ShardDir(*dataDir, i)
			}
			st, err := store.Open(dir, stOpts)
			if err != nil {
				return err
			}
			stores[i] = st
			if info, ok := st.Recovery(); ok && nShards > 1 {
				log.Info("shard recovered",
					"shard", i,
					"dir", dir,
					"records", st.Len(),
					"recovery_seconds", info.Duration.Seconds(),
					"snapshot_records", info.SnapshotRecords,
					"wal_records", info.WALRecords,
					"truncated_bytes", info.TruncatedBytes,
					"warm_profiles", info.WarmProfiles,
					"warm_seconds", info.WarmDuration.Seconds())
			}
			return nil
		}))
		if info, ok := stores[0].Recovery(); ok && nShards == 1 {
			log.Info("store recovered",
				"dir", *dataDir,
				"records", stores[0].Len(),
				"recovery_seconds", info.Duration.Seconds(),
				"snapshot_seq", info.SnapshotSeq,
				"snapshot_records", info.SnapshotRecords,
				"wal_segments", info.WALSegments,
				"wal_records", info.WALRecords,
				"truncated_bytes", info.TruncatedBytes,
				"warm_profiles", info.WarmProfiles,
				"warm_seconds", info.WarmDuration.Seconds())
		}
		if nShards > 1 {
			records, maxRecovery := 0, 0.0
			for _, st := range stores {
				records += st.Len()
				if info, ok := st.Recovery(); ok && info.Duration.Seconds() > maxRecovery {
					maxRecovery = info.Duration.Seconds()
				}
			}
			log.Info("store recovered", "dir", *dataDir, "shards", nShards, "records", records, "recovery_seconds", maxRecovery)
		}
	} else {
		for i := range stores {
			stores[i] = store.New(stOpts)
		}
	}
	corpusLen := 0
	for _, st := range stores {
		corpusLen += st.Len()
	}

	// Spatial scales come from whatever corpus exists at boot: the recovered
	// store when non-empty (shard bounds are unioned), otherwise a streaming
	// bounds pass over -dataset (nothing is retained), otherwise the
	// explicit flags.
	var (
		bounds     geo.Rect
		haveBounds bool
	)
	if corpusLen > 0 {
		for _, st := range stores {
			if b, ok := st.Bounds(); ok {
				if !haveBounds {
					bounds, haveBounds = b, true
				} else {
					bounds = bounds.Union(b)
				}
			}
		}
		if *dataPath != "" {
			log.Info("recovered corpus is non-empty; skipping -dataset preload", "path", *dataPath, "records", corpusLen)
			*dataPath = ""
		}
	} else if *dataPath != "" {
		n := 0
		check(dataset.StreamFile(*dataPath, readOpts, func(tr model.Trajectory) error {
			b := tr.Bounds()
			if !haveBounds {
				bounds, haveBounds = b, true
			} else {
				bounds = bounds.Union(b)
			}
			n++
			return nil
		}))
		log.Info("dataset scanned for scales", "path", *dataPath, "trajectories", n)
	}

	scorer, sigmaUsed, err := buildScorer(bounds, haveBounds, *gridSz, *sigma, *profile)
	check(err)
	if *coordStep < 0 {
		step := store.StepForSigma(sigmaUsed)
		for _, st := range stores {
			st.SetCoordStep(step)
		}
		log.Info("coordinate quantization derived from sigma", "sigma", sigmaUsed, "coord_step", step)
	}

	var eng engine.Service
	if nShards == 1 {
		eng, err = engine.New(scorer, engine.Options{Workers: *workers, CacheSize: *cacheSz, Corpus: stores[0]})
	} else {
		perCache := *cacheSz
		if perCache == 0 {
			perCache = engine.DefaultCacheSize
		}
		if perCache > 0 {
			perCache = (perCache + nShards - 1) / nShards
		}
		eng, err = engine.NewSharded(scorer, engine.ShardedOptions{
			Shards:  nShards,
			Workers: *workers,
			ShardOptions: func(i int) (engine.Options, error) {
				return engine.Options{
					Workers:   engine.SplitWorkers(*workers, engine.DefaultFanOut),
					CacheSize: perCache,
					Corpus:    stores[i],
				}, nil
			},
		})
	}
	check(err)

	if *dataPath != "" {
		// Streaming ingestion: each trajectory is encoded into the columnar
		// store as soon as its rows end, so peak memory is O(1 trajectory)
		// instead of a boxed copy of the whole dataset. With a sharded
		// engine the stream fans out to one writer per shard — writes to
		// different shards share no lock, so preload scales with shards.
		n := 0
		check(ingest(eng, nShards, *dataPath, readOpts, &n))
		log.Info("dataset ingested", "path", *dataPath, "trajectories", n, "shards", nShards)
	}

	ss := eng.StoreStats()
	log.Info("store ready",
		"records", eng.Len(),
		"live_bytes", ss.LiveBytes,
		"resident_bytes", ss.ArenaBytes,
		"coord_step", ss.CoordStep,
		"persistent", ss.Persistent,
		"wal_bytes", ss.WALBytes,
		"shards", nShards)
	if n := eng.WarmLoaded(); n > 0 {
		log.Info("profile cache warm-loaded", "profiles", n, "warm_seconds", ss.WarmSeconds)
	}

	// The standing-query registry persists its watchlist next to the corpus
	// when -data-dir is set, so registered watches survive restarts the same
	// way the corpus does.
	watches, err := stream.NewRegistry(eng, stream.Options{
		Dir:                  *dataDir,
		WebhookTimeout:       *webhookTO,
		AlertDebounceSeconds: debounce.Seconds(),
	})
	check(err)
	if n := len(watches.List()); n > 0 {
		log.Info("watchlist recovered", "dir", *dataDir, "watches", n)
	}

	srv, err := server.New(eng, server.Options{
		QueryTimeout:  *timeout,
		IngestTimeout: *ingestTO,
		MaxInFlight:   *inflight,
		Strict:        *strict,
		Logger:        log,
		Watches:       watches,
	})
	check(err)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *retention > 0 {
		go retainLoop(ctx, eng, watches, *retention, log)
	}

	check(srv.ListenAndServe(ctx, *addr, *drain))
	watches.Close()
	check(eng.Close())
}

// retainLoop enforces the sliding retention window: every tick it drops
// samples older than the window measured from the stream high-water mark —
// the newest appended sample's timestamp, not wall time, so replayed or
// simulated streams age out on their own clock and an idle corpus is never
// eroded.
func retainLoop(ctx context.Context, eng engine.Service, watches *stream.Registry, retention time.Duration, log *slog.Logger) {
	period := retention / 10
	if period < time.Second {
		period = time.Second
	}
	if period > time.Minute {
		period = time.Minute
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		hw, ok := watches.HighWater()
		if !ok {
			continue // nothing appended yet: no stream clock to cut against
		}
		st, err := eng.TrimBefore(hw - retention.Seconds())
		if err != nil {
			log.Warn("retention sweep failed", "err", err)
			continue
		}
		if st != (engine.TrimStats{}) {
			log.Info("retention sweep",
				"cutoff", hw-retention.Seconds(),
				"removed", st.Removed,
				"trimmed", st.Trimmed,
				"dropped_samples", st.DroppedSamples,
				"decoded", st.Decoded)
		}
	}
}

// buildScorer assembles the STS scorer with scales derived from the boot
// corpus bounds when not given explicitly. With no corpus the scales cannot
// be derived, so -grid or -sigma is required — the grid must cover
// everything ingested later, so it is padded generously (the serving corpus
// is mutable, unlike stsmatch's fixed datasets). It returns the resolved
// sigma alongside the scorer so the store's quantization step can be
// derived from it.
func buildScorer(bounds geo.Rect, haveBounds bool, gridSize, sigma, profileBucket float64) (eval.Scorer, float64, error) {
	if !haveBounds {
		// No corpus to derive scales from: require explicit scales and
		// center a large grid on the origin.
		if gridSize <= 0 && sigma <= 0 {
			return nil, 0, fmt.Errorf("with no preloaded corpus, -grid or -sigma is required")
		}
		if gridSize <= 0 {
			gridSize = sigma
		}
		if sigma <= 0 {
			sigma = gridSize
		}
		half := 1000 * gridSize
		bounds = geo.Rect{Min: geo.Point{X: -half, Y: -half}, Max: geo.Point{X: half, Y: half}}
	} else {
		extent := bounds.Width()
		if bounds.Height() > extent {
			extent = bounds.Height()
		}
		if gridSize <= 0 {
			if sigma > 0 {
				gridSize = sigma
			} else {
				gridSize = extent / 100
			}
		}
		if sigma <= 0 {
			sigma = gridSize
		}
		// Pad beyond the blur halo so trajectories ingested later near the
		// corpus's edge still land on the grid.
		bounds = bounds.Expand(extent / 2)
	}
	grid, err := geo.NewGrid(bounds.Expand(4*sigma+gridSize), gridSize)
	if err != nil {
		return nil, 0, err
	}
	m, err := core.NewSTS(grid, sigma)
	if err != nil {
		return nil, 0, err
	}
	if profileBucket != 0 {
		popts := core.ProfileOptions{}
		if profileBucket > 0 {
			popts.BucketSeconds = profileBucket
		}
		return eval.NewSTSScorerProfiled("STS-P", m, popts), sigma, nil
	}
	return eval.NewSTSScorer("STS", m), sigma, nil
}

// ingest streams the CSV into the engine. With one shard the stream adds
// inline (preserving the O(1-trajectory) memory posture); with more it
// feeds one writer goroutine per shard, so concurrent Adds land on
// different shard locks and preload throughput scales with the partition
// count. n receives the number of trajectories ingested.
func ingest(eng engine.Service, nShards int, path string, readOpts dataset.ReadOptions, n *int) error {
	if nShards == 1 {
		return dataset.StreamFile(path, readOpts, func(tr model.Trajectory) error {
			if _, err := eng.Add(tr); err != nil {
				return err
			}
			*n++
			return nil
		})
	}
	ch := make(chan model.Trajectory, 4*nShards)
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		ingestErr error
	)
	for w := 0; w < nShards; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tr := range ch {
				if _, err := eng.Add(tr); err != nil {
					mu.Lock()
					if ingestErr == nil {
						ingestErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	err := dataset.StreamFile(path, readOpts, func(tr model.Trajectory) error {
		mu.Lock()
		failed := ingestErr
		mu.Unlock()
		if failed != nil {
			return failed
		}
		ch <- tr
		*n++
		return nil
	})
	close(ch)
	wg.Wait()
	if err == nil {
		err = ingestErr
	}
	return err
}

// checkShardLayout guards the data directory's on-disk layout: a corpus
// partitioned into N shard-NNN subdirectories must be reopened with
// -shards N (records do not migrate between shard stores), and a
// single-engine store must not be reopened sharded (its records would be
// invisible to every shard).
func checkShardLayout(dir string, nShards int) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil // not created yet: any layout is fine
	}
	shardDirs, other := 0, 0
	for _, e := range ents {
		if e.IsDir() && strings.HasPrefix(e.Name(), "shard-") {
			shardDirs++
		} else {
			other++
		}
	}
	switch {
	case shardDirs > 0 && shardDirs != nShards:
		return fmt.Errorf("data dir %s holds %d shard stores; pass -shards %d (resharding is not supported in place)", dir, shardDirs, shardDirs)
	case shardDirs == 0 && other > 0 && nShards > 1:
		return fmt.Errorf("data dir %s holds a single-engine store; pass -shards 1 or use a fresh directory", dir)
	}
	return nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "stsserved: %v\n", err)
		os.Exit(1)
	}
}
