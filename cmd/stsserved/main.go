// Command stsserved serves a trajectory corpus over HTTP/JSON: ingestion,
// pairwise STS similarity, top-k co-location search, greedy linking, and
// Prometheus-text metrics — the engine behind a long-lived process
// boundary.
//
// Usage:
//
//	stsserved -addr :8080 -sigma 3 -grid 3                 # empty corpus
//	stsserved -addr :8080 -dataset mall.csv                # preloaded corpus
//	stsserved -dataset mall.csv -profile-bucket 30         # bucketed profiles
//	stsserved -dataset mall.csv -max-inflight 16 -timeout 5s
//
// The spatial scales (-grid, -sigma) default from the preloaded dataset the
// same way stsmatch derives them; with no dataset they must be given. The
// process serves until SIGINT/SIGTERM, then drains in-flight requests for
// up to -drain before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/stslib/sts/internal/core"
	"github.com/stslib/sts/internal/dataset"
	"github.com/stslib/sts/internal/engine"
	"github.com/stslib/sts/internal/eval"
	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/model"
	"github.com/stslib/sts/internal/server"
	"github.com/stslib/sts/internal/version"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		dataPath = flag.String("dataset", "", "CSV dataset to preload into the corpus")
		gridSz   = flag.Float64("grid", 0, "grid cell size in meters (default: sigma, or 1/100 of the dataset extent)")
		sigma    = flag.Float64("sigma", 0, "location noise sigma in meters (default: grid size)")
		profile  = flag.Float64("profile-bucket", 0, "bucketed-profile scoring with this bucket width in seconds (0 = exact; -1 = default width)")
		timeout  = flag.Duration("timeout", server.DefaultQueryTimeout, "per-request budget for scoring routes (negative = unbounded)")
		ingestTO = flag.Duration("ingest-timeout", server.DefaultIngestTimeout, "per-request budget for ingestion routes (negative = unbounded)")
		inflight = flag.Int("max-inflight", server.DefaultMaxInFlight, "max concurrently admitted /v1 requests; excess get 429 (negative = unbounded)")
		drain    = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget for in-flight requests")
		cacheSz  = flag.Int("cache", 0, "prepared-trajectory LRU capacity (0 = engine default; negative = unbounded)")
		workers  = flag.Int("workers", 0, "scoring worker pool size (0 = GOMAXPROCS)")
		strict   = flag.Bool("strict", false, "reject ingested trajectories with out-of-order samples instead of sorting them")
		showVer  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Println("stsserved", version.String())
		return
	}

	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	slog.SetDefault(log)

	var ds model.Dataset
	if *dataPath != "" {
		var err error
		ds, err = dataset.ReadFileWith(*dataPath, dataset.ReadOptions{RejectUnsorted: *strict})
		check(err)
		log.Info("dataset loaded", "path", *dataPath, "trajectories", len(ds))
	}

	scorer, err := buildScorer(ds, *gridSz, *sigma, *profile)
	check(err)

	eng, err := engine.New(scorer, engine.Options{Workers: *workers, CacheSize: *cacheSz})
	check(err)
	for _, tr := range ds {
		_, err := eng.Add(tr)
		check(err)
	}

	srv, err := server.New(eng, server.Options{
		QueryTimeout:  *timeout,
		IngestTimeout: *ingestTO,
		MaxInFlight:   *inflight,
		Strict:        *strict,
		Logger:        log,
	})
	check(err)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	check(srv.ListenAndServe(ctx, *addr, *drain))
}

// buildScorer assembles the STS scorer with scales derived from the
// preloaded dataset when not given explicitly. With an empty corpus the
// scales cannot be derived, so -grid or -sigma is required — the grid must
// cover everything ingested later, so it is padded generously (the serving
// corpus is mutable, unlike stsmatch's fixed datasets).
func buildScorer(ds model.Dataset, gridSize, sigma, profileBucket float64) (eval.Scorer, error) {
	bounds, ok := ds.Bounds()
	if !ok {
		// No dataset to derive scales from: require explicit scales and
		// center a large grid on the origin.
		if gridSize <= 0 && sigma <= 0 {
			return nil, fmt.Errorf("with no -dataset, -grid or -sigma is required")
		}
		if gridSize <= 0 {
			gridSize = sigma
		}
		if sigma <= 0 {
			sigma = gridSize
		}
		half := 1000 * gridSize
		bounds = geo.Rect{Min: geo.Point{X: -half, Y: -half}, Max: geo.Point{X: half, Y: half}}
	} else {
		extent := bounds.Width()
		if bounds.Height() > extent {
			extent = bounds.Height()
		}
		if gridSize <= 0 {
			if sigma > 0 {
				gridSize = sigma
			} else {
				gridSize = extent / 100
			}
		}
		if sigma <= 0 {
			sigma = gridSize
		}
		// Pad beyond the blur halo so trajectories ingested later near the
		// dataset's edge still land on the grid.
		bounds = bounds.Expand(extent / 2)
	}
	grid, err := geo.NewGrid(bounds.Expand(4*sigma+gridSize), gridSize)
	if err != nil {
		return nil, err
	}
	m, err := core.NewSTS(grid, sigma)
	if err != nil {
		return nil, err
	}
	if profileBucket != 0 {
		popts := core.ProfileOptions{}
		if profileBucket > 0 {
			popts.BucketSeconds = profileBucket
		}
		return eval.NewSTSScorerProfiled("STS-P", m, popts), nil
	}
	return eval.NewSTSScorer("STS", m), nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "stsserved: %v\n", err)
		os.Exit(1)
	}
}
