// Command stsstream replays a JSONL append stream (stsgen -stream) against
// a running stsserved instance and verifies the server's streaming alerts
// against an independent offline re-evaluation — the end-to-end drill
// behind the CI stream smoke step.
//
// Usage:
//
//	stsgen -kind synth -n 20 -stream -o s.jsonl
//	stsserved -addr :8080 -grid 50 -sigma 25 &
//	stsstream -addr http://localhost:8080 -file s.jsonl -grid 50 -sigma 25 \
//	    -watch tail -theta 0.2 -mirror
//
// The tool registers one standing query pointed at a local webhook sink,
// replays the stream line-by-line through the typed client (put →
// PUT /v1/trajectories/{id}, append → POST {id}:append), and sums the
// alert counts the server reports per append. It then re-evaluates the
// whole stream offline: a fresh in-process engine built with the same
// spatial scales as the server replays the same events, scoring each
// grown trajectory against the watch members through the same
// filter-and-refine floor the server uses. The two alert counts must be
// equal — the streamed evaluation path and the offline batch path are the
// same measure — and every streamed alert must reach the webhook sink.
//
// Synth trajectories are temporally disjoint, so a plain replay scores
// nothing against anything. -mirror replays every event twice, the second
// time under "<id>~b": each mirrored pair shares its whole timeline, so
// appends reliably cross any reasonable theta and the drill exercises
// real alert traffic. The watch members are the first -members mirrored
// IDs.
//
// The spatial scales (-grid, -sigma) must match the flags the server was
// started with: alert equality is bit-exact scoring equality, which needs
// the identical measure on both sides.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"github.com/stslib/sts/api"
	"github.com/stslib/sts/client"
	"github.com/stslib/sts/internal/core"
	"github.com/stslib/sts/internal/engine"
	"github.com/stslib/sts/internal/eval"
	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/model"
	"github.com/stslib/sts/internal/version"
)

type streamEvent struct {
	Op      string       `json:"op"`
	ID      string       `json:"id"`
	Samples [][3]float64 `json:"samples"`
}

func main() {
	var (
		addr    = flag.String("addr", "http://localhost:8080", "stsserved base URL")
		file    = flag.String("file", "", "JSONL append stream to replay (stsgen -stream)")
		gridSz  = flag.Float64("grid", 0, "grid cell size in meters; must match the server's -grid")
		sigma   = flag.Float64("sigma", 0, "location noise sigma in meters; must match the server's -sigma")
		watch   = flag.String("watch", "smoke", "standing-query name to register")
		theta   = flag.Float64("theta", 0.2, "standing-query similarity threshold")
		members = flag.Int("members", 3, "watch the mirrors of the first this-many trajectories")
		mirror  = flag.Bool("mirror", false, "replay every event twice, the second under <id>~b, so identical pairs cross theta")
		wait    = flag.Duration("wait", 30*time.Second, "budget for webhook deliveries to drain after the replay")
		ver     = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *ver {
		fmt.Println("stsstream", version.String())
		return
	}
	if *file == "" {
		fatal(fmt.Errorf("-file is required"))
	}
	if *gridSz <= 0 && *sigma <= 0 {
		fatal(fmt.Errorf("-grid or -sigma is required (must match the server)"))
	}

	events, err := readStream(*file)
	check(err)
	if *mirror {
		mirrored := make([]streamEvent, 0, 2*len(events))
		for _, ev := range events {
			mirrored = append(mirrored, ev, streamEvent{Op: ev.Op, ID: ev.ID + "~b", Samples: ev.Samples})
		}
		events = mirrored
	}
	watchMembers := pickMembers(events, *members, *mirror)
	if len(watchMembers) == 0 {
		fatal(fmt.Errorf("stream %s has no trajectories to watch", *file))
	}

	// Local webhook sink: every delivered alert is one POST.
	var delivered atomic.Int64
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	sink := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		delivered.Add(1)
	})}
	go sink.Serve(ln)
	defer sink.Close()

	ctx := context.Background()
	c, err := client.New(*addr, nil)
	check(err)
	_, err = c.WatchPut(ctx, api.Watch{
		Name:    *watch,
		Members: watchMembers,
		Theta:   *theta,
		Webhook: "http://" + ln.Addr().String() + "/alert",
	})
	check(err)

	// Replay. The server reports per-append alert counts; their sum is the
	// streamed total the offline pass must reproduce.
	streamed := 0
	appends := 0
	for _, ev := range events {
		switch ev.Op {
		case "put":
			_, err = c.Put(ctx, api.Trajectory{ID: ev.ID, Samples: ev.Samples})
		case "append":
			var ar api.AppendResponse
			ar, err = c.Append(ctx, ev.ID, ev.Samples)
			streamed += ar.Alerts
			appends++
		default:
			err = fmt.Errorf("unknown stream op %q", ev.Op)
		}
		check(err)
	}

	offline, err := offlineAlerts(ctx, events, watchMembers, *gridSz, *sigma, *theta)
	check(err)

	// Deliveries are asynchronous; give the queue time to drain.
	deadline := time.Now().Add(*wait)
	for delivered.Load() < int64(streamed) && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}

	fmt.Printf("replayed %d events (%d appends): streamed alerts %d, offline re-eval %d, delivered %d\n",
		len(events), appends, streamed, offline, delivered.Load())
	if streamed != offline {
		fatal(fmt.Errorf("streamed alerts %d != offline re-evaluation %d", streamed, offline))
	}
	if got := delivered.Load(); got != int64(streamed) {
		fatal(fmt.Errorf("webhook sink received %d alerts, want %d", got, streamed))
	}
}

// readStream decodes the JSONL stream file.
func readStream(path string) ([]streamEvent, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var events []streamEvent
	dec := json.NewDecoder(f)
	for dec.More() {
		var ev streamEvent
		if err := dec.Decode(&ev); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		events = append(events, ev)
	}
	return events, nil
}

// pickMembers selects the watch members: the first n distinct trajectory
// IDs in stream order — their mirrors when mirroring, so the watched pair
// of every member is its identical original.
func pickMembers(events []streamEvent, n int, mirror bool) []string {
	var out []string
	seen := make(map[string]bool)
	for _, ev := range events {
		if ev.Op != "put" || seen[ev.ID] {
			continue
		}
		seen[ev.ID] = true
		if mirror != isMirror(ev.ID) {
			continue
		}
		out = append(out, ev.ID)
		if len(out) == n {
			break
		}
	}
	return out
}

func isMirror(id string) bool {
	return len(id) >= 2 && id[len(id)-2:] == "~b"
}

// offlineAlerts is the independent re-evaluation: a fresh engine with the
// server's exact spatial scales replays the stream, and every append is
// scored against the resident watch members through ScoreBatchMin at
// theta — the same floor the server's standing evaluation uses — counting
// finite scores at or above it.
func offlineAlerts(ctx context.Context, events []streamEvent, members []string, gridSize, sigma, theta float64) (int, error) {
	scorer, err := buildScorer(gridSize, sigma)
	if err != nil {
		return 0, err
	}
	eng, err := engine.New(scorer, engine.Options{})
	if err != nil {
		return 0, err
	}
	defer eng.Close()
	alerts := 0
	for _, ev := range events {
		tr := model.Trajectory{ID: ev.ID, Samples: make([]model.Sample, len(ev.Samples))}
		for i, s := range ev.Samples {
			tr.Samples[i] = model.Sample{T: s[0], Loc: geo.Point{X: s[1], Y: s[2]}}
		}
		if ev.Op == "put" {
			if _, err := eng.Replace(tr); err != nil {
				return 0, err
			}
			continue
		}
		if _, err := eng.Append(ev.ID, tr.Samples); err != nil {
			return 0, err
		}
		grown, ok := eng.Get(ev.ID)
		if !ok {
			return 0, fmt.Errorf("appended %q not resident", ev.ID)
		}
		var cols model.Dataset
		for _, m := range members {
			if m == ev.ID {
				continue
			}
			if mt, ok := eng.Get(m); ok {
				cols = append(cols, mt)
			}
		}
		if len(cols) == 0 {
			continue
		}
		scores, err := eng.ScoreBatchMin(ctx, model.Dataset{grown}, cols, nil, theta)
		if err != nil {
			return 0, err
		}
		for _, v := range scores[0] {
			if !math.IsInf(v, 0) && !math.IsNaN(v) && v >= theta {
				alerts++
			}
		}
	}
	return alerts, nil
}

// buildScorer mirrors stsserved's empty-corpus scorer construction: the
// same explicit scales must yield the bit-identical measure, or alert
// equality is meaningless.
func buildScorer(gridSize, sigma float64) (eval.Scorer, error) {
	if gridSize <= 0 {
		gridSize = sigma
	}
	if sigma <= 0 {
		sigma = gridSize
	}
	half := 1000 * gridSize
	bounds := geo.Rect{Min: geo.Point{X: -half, Y: -half}, Max: geo.Point{X: half, Y: half}}
	grid, err := geo.NewGrid(bounds.Expand(4*sigma+gridSize), gridSize)
	if err != nil {
		return nil, err
	}
	m, err := core.NewSTS(grid, sigma)
	if err != nil {
		return nil, err
	}
	return eval.NewSTSScorer("STS", m), nil
}

func check(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "stsstream: %v\n", err)
	os.Exit(1)
}
