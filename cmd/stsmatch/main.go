// Command stsmatch ranks the trajectories of one dataset against another
// by a chosen similarity measure — the trajectory-matching application of
// Section VI-B — or scores a single pair.
//
// Usage:
//
//	stsmatch -d1 a.csv -d2 b.csv -grid 3 -sigma 3          # full matching, STS
//	stsmatch -d1 a.csv -d2 b.csv -method CATS              # baseline measure
//	stsmatch -d1 a.csv -d2 b.csv -id1 ped-0001 -id2 ped-0002  # one pair
//	stsmatch -d1 q.csv -d2 corpus.csv -top 5 -timeout 30s  # top-5, bounded
//
// When the two datasets are paired (row i of each observes the same
// object), the tool reports precision and mean rank; otherwise use -top to
// list the best matches per trajectory. The -top path runs through the
// engine: d2 becomes a corpus queried per d1 trajectory, with cached
// per-trajectory preparation shared across queries.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"

	"github.com/stslib/sts/internal/baseline"
	"github.com/stslib/sts/internal/core"
	"github.com/stslib/sts/internal/dataset"
	"github.com/stslib/sts/internal/engine"
	"github.com/stslib/sts/internal/eval"
	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/model"
	"github.com/stslib/sts/internal/version"
)

func main() {
	var (
		d1Path  = flag.String("d1", "", "first dataset CSV (required)")
		d2Path  = flag.String("d2", "", "second dataset CSV (required)")
		method  = flag.String("method", "STS", "measure: STS, CATS, SST, WGM, APM, EDwP, KF, DTW")
		gridSz  = flag.Float64("grid", 0, "grid cell size in meters (default: sigma, or a 1/100 of the extent)")
		sigma   = flag.Float64("sigma", 0, "location noise sigma in meters (default: grid size)")
		id1     = flag.String("id1", "", "score a single pair: trajectory id in d1")
		id2     = flag.String("id2", "", "score a single pair: trajectory id in d2")
		top     = flag.Int("top", 0, "list the top-K matches for every trajectory of d1")
		paired  = flag.Bool("paired", true, "datasets are index-paired (report precision and mean rank)")
		strict  = flag.Bool("strict", false, "reject datasets with out-of-order samples instead of sorting them")
		timeout = flag.Duration("timeout", 0, "abort scoring after this duration (0 = no limit)")
		profile = flag.Float64("profile-bucket", 0, "STS only: bucketed-profile scoring with this bucket width in seconds (0 = exact; -1 = default width)")
		minSc   = flag.Float64("min-score", math.Inf(-1), "with -top: keep only matches scoring at least this, pruning weaker candidates via filter-and-refine")
		showVer = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Println("stsmatch", version.String())
		return
	}
	if *d1Path == "" || *d2Path == "" {
		fmt.Fprintln(os.Stderr, "stsmatch: -d1 and -d2 are required")
		flag.Usage()
		os.Exit(2)
	}
	ropts := dataset.ReadOptions{RejectUnsorted: *strict}
	d1, err := dataset.ReadFileWith(*d1Path, ropts)
	check(err)
	d2, err := dataset.ReadFileWith(*d2Path, ropts)
	check(err)

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	scorer, err := buildScorer(*method, d1, d2, *gridSz, *sigma, *profile)
	check(err)

	if *id1 != "" || *id2 != "" {
		a, ok := byID(d1, *id1)
		if !ok {
			check(fmt.Errorf("id %q not found in %s", *id1, *d1Path))
		}
		b, ok := byID(d2, *id2)
		if !ok {
			check(fmt.Errorf("id %q not found in %s", *id2, *d2Path))
		}
		v, err := scorer.Score(a, b)
		check(err)
		fmt.Printf("%s(%s, %s) = %.6g\n", scorer.Name(), a.ID, b.ID, v)
		return
	}

	if *top > 0 {
		// d2 is the corpus; every d1 trajectory queries it through one
		// engine, so per-trajectory preparation is cached across queries.
		eng, err := engine.New(scorer, engine.Options{})
		check(err)
		for _, tr := range d2 {
			_, err := eng.Add(tr)
			check(err)
		}
		for _, q := range d1 {
			matches, err := eng.TopKOpts(ctx, q, engine.TopKOptions{K: *top, MinScore: *minSc})
			check(err)
			fmt.Printf("%s:", q.ID)
			for _, m := range matches {
				fmt.Printf("  %s=%.4g", m.ID, m.Score)
			}
			fmt.Println()
		}
		stats := eng.CacheStats()
		fmt.Printf("# prepared cache: %d hits / %d misses (%.0f%% hit rate)\n",
			stats.Hits, stats.Misses, 100*stats.HitRate())
		if ps := eng.ProfileCacheStats(); ps.Hits+ps.Misses > 0 {
			fmt.Printf("# profile cache:  %d hits / %d misses (%.0f%% hit rate)\n",
				ps.Hits, ps.Misses, 100*ps.HitRate())
		}
		if pr := eng.PruneStats(); pr.Considered > 0 {
			fmt.Printf("# pruning: %d considered, %d bound-pruned, %d early-exited, %d refined\n",
				pr.Considered, pr.BoundPruned, pr.EarlyExited, pr.Refined)
		}
		return
	}

	if !*paired {
		check(fmt.Errorf("nothing to do: pass -top K, or -id1/-id2, or leave -paired=true"))
	}
	res, err := eval.MatchingContext(ctx, d1, d2, scorer, 0)
	check(err)
	fmt.Printf("method=%s  n=%d  precision=%.4f  mean_rank=%.4f  elapsed=%s\n",
		scorer.Name(), len(d1), res.Precision, res.MeanRank, res.Elapsed)
}

// buildScorer assembles the requested measure with scales derived from
// the data when not given explicitly. profileBucket > 0 switches STS to
// bucketed-profile scoring with that bucket width; negative selects the
// default width.
func buildScorer(method string, d1, d2 model.Dataset, gridSize, sigma, profileBucket float64) (eval.Scorer, error) {
	all := append(append(model.Dataset{}, d1...), d2...)
	bounds, ok := all.Bounds()
	if !ok {
		return nil, fmt.Errorf("datasets contain no samples")
	}
	extent := bounds.Width()
	if bounds.Height() > extent {
		extent = bounds.Height()
	}
	if gridSize <= 0 {
		if sigma > 0 {
			gridSize = sigma
		} else {
			gridSize = extent / 100
		}
	}
	if sigma <= 0 {
		sigma = gridSize
	}
	medGap := baseline.MedianSamplingGap(all)
	if medGap <= 0 {
		medGap = 1
	}
	grid, err := geo.NewGrid(bounds.Expand(4*sigma+gridSize), gridSize)
	if err != nil {
		return nil, err
	}
	switch method {
	case "STS":
		m, err := core.NewSTS(grid, sigma)
		if err != nil {
			return nil, err
		}
		if profileBucket != 0 {
			popts := core.ProfileOptions{}
			if profileBucket > 0 {
				popts.BucketSeconds = profileBucket
			}
			return eval.NewSTSScorerProfiled("STS-P", m, popts), nil
		}
		return eval.NewSTSScorer("STS", m), nil
	case "CATS":
		p := baseline.CATSParams{Eps: 4 * sigma, Tau: 4 * medGap}
		return eval.FuncScorer{N: "CATS", F: func(a, b model.Trajectory) (float64, error) {
			return baseline.CATS(a, b, p), nil
		}}, nil
	case "SST":
		p := baseline.SSTParams{SpatialScale: 2*sigma + gridSize, TemporalScale: 2 * medGap}
		return eval.FuncScorer{N: "SST", F: func(a, b model.Trajectory) (float64, error) {
			return baseline.SST(a, b, p), nil
		}}, nil
	case "WGM":
		p := baseline.DefaultWGMParams(extent/10, 600)
		return eval.FuncScorer{N: "WGM", F: func(a, b model.Trajectory) (float64, error) {
			return baseline.WGM(a, b, p), nil
		}}, nil
	case "APM":
		return eval.FromDistance("APM", func(a, b model.Trajectory) float64 {
			return baseline.APM(a, b, grid)
		}), nil
	case "EDwP":
		return eval.FromDistance("EDwP", baseline.EDwP), nil
	case "KF":
		p := baseline.DefaultKalmanParams(sigma)
		return eval.FromDistance("KF", func(a, b model.Trajectory) float64 {
			return baseline.KF(a, b, p)
		}), nil
	case "DTW":
		return eval.FromDistance("DTW", baseline.DTW), nil
	default:
		return nil, fmt.Errorf("unknown method %q", method)
	}
}

func byID(ds model.Dataset, id string) (model.Trajectory, bool) {
	for _, tr := range ds {
		if tr.ID == id {
			return tr, true
		}
	}
	return model.Trajectory{}, false
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "stsmatch: %v\n", err)
		os.Exit(1)
	}
}
