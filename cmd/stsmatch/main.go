// Command stsmatch ranks the trajectories of one dataset against another
// by a chosen similarity measure — the trajectory-matching application of
// Section VI-B — or scores a single pair.
//
// Usage:
//
//	stsmatch -d1 a.csv -d2 b.csv -grid 3 -sigma 3          # full matching, STS
//	stsmatch -d1 a.csv -d2 b.csv -method CATS              # baseline measure
//	stsmatch -d1 a.csv -d2 b.csv -id1 ped-0001 -id2 ped-0002  # one pair
//
// When the two datasets are paired (row i of each observes the same
// object), the tool reports precision and mean rank; otherwise use -top to
// list the best matches per trajectory.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/stslib/sts/internal/baseline"
	"github.com/stslib/sts/internal/core"
	"github.com/stslib/sts/internal/dataset"
	"github.com/stslib/sts/internal/eval"
	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/model"
)

func main() {
	var (
		d1Path = flag.String("d1", "", "first dataset CSV (required)")
		d2Path = flag.String("d2", "", "second dataset CSV (required)")
		method = flag.String("method", "STS", "measure: STS, CATS, SST, WGM, APM, EDwP, KF, DTW")
		gridSz = flag.Float64("grid", 0, "grid cell size in meters (default: sigma, or a 1/100 of the extent)")
		sigma  = flag.Float64("sigma", 0, "location noise sigma in meters (default: grid size)")
		id1    = flag.String("id1", "", "score a single pair: trajectory id in d1")
		id2    = flag.String("id2", "", "score a single pair: trajectory id in d2")
		top    = flag.Int("top", 0, "list the top-K matches for every trajectory of d1")
		paired = flag.Bool("paired", true, "datasets are index-paired (report precision and mean rank)")
	)
	flag.Parse()
	if *d1Path == "" || *d2Path == "" {
		fmt.Fprintln(os.Stderr, "stsmatch: -d1 and -d2 are required")
		flag.Usage()
		os.Exit(2)
	}
	d1, err := dataset.ReadFile(*d1Path)
	check(err)
	d2, err := dataset.ReadFile(*d2Path)
	check(err)

	scorer, err := buildScorer(*method, d1, d2, *gridSz, *sigma)
	check(err)

	if *id1 != "" || *id2 != "" {
		a, ok := byID(d1, *id1)
		if !ok {
			check(fmt.Errorf("id %q not found in %s", *id1, *d1Path))
		}
		b, ok := byID(d2, *id2)
		if !ok {
			check(fmt.Errorf("id %q not found in %s", *id2, *d2Path))
		}
		v, err := scorer.Score(a, b)
		check(err)
		fmt.Printf("%s(%s, %s) = %.6g\n", scorer.Name(), a.ID, b.ID, v)
		return
	}

	if *top > 0 {
		scores, err := eval.ScoreMatrix(d1, d2, scorer, 0)
		check(err)
		for i, row := range scores {
			type m struct {
				j int
				v float64
			}
			ms := make([]m, len(row))
			for j, v := range row {
				ms[j] = m{j, v}
			}
			sort.Slice(ms, func(a, b int) bool { return ms[a].v > ms[b].v })
			fmt.Printf("%s:", d1[i].ID)
			for k := 0; k < *top && k < len(ms); k++ {
				fmt.Printf("  %s=%.4g", d2[ms[k].j].ID, ms[k].v)
			}
			fmt.Println()
		}
		return
	}

	if !*paired {
		check(fmt.Errorf("nothing to do: pass -top K, or -id1/-id2, or leave -paired=true"))
	}
	res, err := eval.Matching(d1, d2, scorer, 0)
	check(err)
	fmt.Printf("method=%s  n=%d  precision=%.4f  mean_rank=%.4f  elapsed=%s\n",
		scorer.Name(), len(d1), res.Precision, res.MeanRank, res.Elapsed)
}

// buildScorer assembles the requested measure with scales derived from
// the data when not given explicitly.
func buildScorer(method string, d1, d2 model.Dataset, gridSize, sigma float64) (eval.Scorer, error) {
	all := append(append(model.Dataset{}, d1...), d2...)
	bounds, ok := all.Bounds()
	if !ok {
		return nil, fmt.Errorf("datasets contain no samples")
	}
	extent := bounds.Width()
	if bounds.Height() > extent {
		extent = bounds.Height()
	}
	if gridSize <= 0 {
		if sigma > 0 {
			gridSize = sigma
		} else {
			gridSize = extent / 100
		}
	}
	if sigma <= 0 {
		sigma = gridSize
	}
	medGap := baseline.MedianSamplingGap(all)
	if medGap <= 0 {
		medGap = 1
	}
	grid, err := geo.NewGrid(bounds.Expand(4*sigma+gridSize), gridSize)
	if err != nil {
		return nil, err
	}
	switch method {
	case "STS":
		m, err := core.NewSTS(grid, sigma)
		if err != nil {
			return nil, err
		}
		return eval.NewSTSScorer("STS", m), nil
	case "CATS":
		p := baseline.CATSParams{Eps: 4 * sigma, Tau: 4 * medGap}
		return eval.FuncScorer{N: "CATS", F: func(a, b model.Trajectory) (float64, error) {
			return baseline.CATS(a, b, p), nil
		}}, nil
	case "SST":
		p := baseline.SSTParams{SpatialScale: 2*sigma + gridSize, TemporalScale: 2 * medGap}
		return eval.FuncScorer{N: "SST", F: func(a, b model.Trajectory) (float64, error) {
			return baseline.SST(a, b, p), nil
		}}, nil
	case "WGM":
		p := baseline.DefaultWGMParams(extent/10, 600)
		return eval.FuncScorer{N: "WGM", F: func(a, b model.Trajectory) (float64, error) {
			return baseline.WGM(a, b, p), nil
		}}, nil
	case "APM":
		return eval.FromDistance("APM", func(a, b model.Trajectory) float64 {
			return baseline.APM(a, b, grid)
		}), nil
	case "EDwP":
		return eval.FromDistance("EDwP", baseline.EDwP), nil
	case "KF":
		p := baseline.DefaultKalmanParams(sigma)
		return eval.FromDistance("KF", func(a, b model.Trajectory) float64 {
			return baseline.KF(a, b, p)
		}), nil
	case "DTW":
		return eval.FromDistance("DTW", baseline.DTW), nil
	default:
		return nil, fmt.Errorf("unknown method %q", method)
	}
}

func byID(ds model.Dataset, id string) (model.Trajectory, bool) {
	for _, tr := range ds {
		if tr.ID == id {
			return tr, true
		}
	}
	return model.Trajectory{}, false
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "stsmatch: %v\n", err)
		os.Exit(1)
	}
}
