// Command stsgen generates the synthetic trajectory workloads that stand
// in for the paper's taxi and shopping-mall datasets, writing them as CSV
// (columns id,t,x,y).
//
// Usage:
//
//	stsgen -kind mall -n 100 -seed 7 -o mall.csv
//	stsgen -kind taxi -n 200 -o taxi.csv
//	stsgen -kind mall -n 50 -split -o mall    # writes mall.d1.csv, mall.d2.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/stslib/sts/internal/datagen"
	"github.com/stslib/sts/internal/dataset"
	"github.com/stslib/sts/internal/model"
	"github.com/stslib/sts/internal/version"
)

func main() {
	var (
		kind  = flag.String("kind", "mall", "workload: mall or taxi")
		n     = flag.Int("n", 100, "number of objects")
		seed  = flag.Int64("seed", 1, "random seed")
		out   = flag.String("o", "", "output file (default stdout); with -split, the prefix for <prefix>.d1.csv and <prefix>.d2.csv")
		split = flag.Bool("split", false, "also perform the alternating split into paired matching datasets")
		min   = flag.Int("minlen", 20, "drop trajectories shorter than this many samples")
		ver   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()

	if *ver {
		fmt.Println("stsgen", version.String())
		return
	}

	var ds model.Dataset
	switch *kind {
	case "mall":
		cfg := datagen.DefaultMallConfig(*n)
		cfg.Seed = *seed
		ds, _ = datagen.GenerateMall(cfg)
	case "taxi":
		cfg := datagen.DefaultTaxiConfig(*n)
		cfg.Seed = *seed
		ds, _ = datagen.GenerateTaxi(cfg)
	default:
		fatal(fmt.Errorf("unknown kind %q (want mall or taxi)", *kind))
	}
	ds = ds.FilterMinLen(*min)

	if *split {
		if *out == "" {
			fatal(fmt.Errorf("-split requires -o <prefix>"))
		}
		d1, d2 := model.SplitDataset(ds)
		if err := dataset.WriteFile(*out+".d1.csv", d1); err != nil {
			fatal(err)
		}
		if err := dataset.WriteFile(*out+".d2.csv", d2); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d paired trajectories to %s.d1.csv and %s.d2.csv\n", len(d1), *out, *out)
		return
	}
	if *out == "" {
		if err := dataset.Write(os.Stdout, ds); err != nil {
			fatal(err)
		}
		return
	}
	if err := dataset.WriteFile(*out, ds); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d trajectories to %s\n", len(ds), *out)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "stsgen: %v\n", err)
	os.Exit(1)
}
