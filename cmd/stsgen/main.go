// Command stsgen generates the synthetic trajectory workloads that stand
// in for the paper's taxi and shopping-mall datasets, writing them as CSV
// (columns id,t,x,y).
//
// Usage:
//
//	stsgen -kind mall -n 100 -seed 7 -o mall.csv
//	stsgen -kind taxi -n 200 -o taxi.csv
//	stsgen -kind mall -n 50 -split -o mall    # writes mall.d1.csv, mall.d2.csv
//	stsgen -kind synth -n 100000 -o big.csv   # streamed, O(1) memory
//	stsgen -kind synth -n 50 -stream -o s.jsonl  # time-ordered append stream
//
// The synth kind is a capacity workload: independent random-walk
// trajectories generated per index and streamed straight to the output, so
// corpus size is bounded by disk, not memory. It backs the persistence and
// crash-recovery drills; mall and taxi remain the paper-shaped workloads.
//
// With -stream the synth workload is cut into a live-ingestion replay
// instead of a static CSV: each trajectory is split into batches of -batch
// samples, and the batches of all trajectories are emitted as one globally
// time-ordered JSON-Lines stream — each line {"op","id","samples"} with op
// "put" for a trajectory's first batch and "append" for the rest — which
// maps one-to-one onto the serving API (PUT /v1/trajectories/{id}, then
// POST {id}:append). The stream drives the streaming smoke drill and the
// append_ingest bench family.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"github.com/stslib/sts/internal/datagen"
	"github.com/stslib/sts/internal/dataset"
	"github.com/stslib/sts/internal/model"
	"github.com/stslib/sts/internal/version"
)

func main() {
	var (
		kind    = flag.String("kind", "mall", "workload: mall, taxi, or synth (streamed)")
		n       = flag.Int("n", 100, "number of objects")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("o", "", "output file (default stdout); with -split, the prefix for <prefix>.d1.csv and <prefix>.d2.csv")
		split   = flag.Bool("split", false, "also perform the alternating split into paired matching datasets (mall and taxi only)")
		min     = flag.Int("minlen", 20, "drop trajectories shorter than this many samples")
		samples = flag.Int("samples", 0, "samples per trajectory for -kind synth (0 = default 30)")
		strm    = flag.Bool("stream", false, "emit a time-ordered JSONL append stream instead of CSV (synth only)")
		batch   = flag.Int("batch", 5, "samples per append batch with -stream")
		ver     = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()

	if *ver {
		fmt.Println("stsgen", version.String())
		return
	}

	if *kind == "synth" {
		if *split {
			fatal(fmt.Errorf("-split is not supported with -kind synth"))
		}
		if *strm {
			if err := writeStream(*out, *n, *seed, *samples, *batch); err != nil {
				fatal(err)
			}
			return
		}
		if err := writeSynth(*out, *n, *seed, *samples); err != nil {
			fatal(err)
		}
		return
	}
	if *strm {
		fatal(fmt.Errorf("-stream is only supported with -kind synth"))
	}

	var ds model.Dataset
	switch *kind {
	case "mall":
		cfg := datagen.DefaultMallConfig(*n)
		cfg.Seed = *seed
		ds, _ = datagen.GenerateMall(cfg)
	case "taxi":
		cfg := datagen.DefaultTaxiConfig(*n)
		cfg.Seed = *seed
		ds, _ = datagen.GenerateTaxi(cfg)
	default:
		fatal(fmt.Errorf("unknown kind %q (want mall, taxi, or synth)", *kind))
	}
	ds = ds.FilterMinLen(*min)

	if *split {
		if *out == "" {
			fatal(fmt.Errorf("-split requires -o <prefix>"))
		}
		d1, d2 := model.SplitDataset(ds)
		if err := dataset.WriteFile(*out+".d1.csv", d1); err != nil {
			fatal(err)
		}
		if err := dataset.WriteFile(*out+".d2.csv", d2); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d paired trajectories to %s.d1.csv and %s.d2.csv\n", len(d1), *out, *out)
		return
	}
	if *out == "" {
		if err := dataset.Write(os.Stdout, ds); err != nil {
			fatal(err)
		}
		return
	}
	if err := dataset.WriteFile(*out, ds); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d trajectories to %s\n", len(ds), *out)
}

// writeSynth streams n synthetic trajectories to path (stdout when empty),
// one at a time — nothing but the current trajectory is ever resident.
func writeSynth(path string, n int, seed int64, samples int) error {
	cfg := datagen.DefaultSynthConfig(n)
	cfg.Seed = seed
	if samples > 0 {
		cfg.Samples = samples
	}
	var sink io.Writer = os.Stdout
	var f *os.File
	if path != "" {
		var err error
		if f, err = os.Create(path); err != nil {
			return err
		}
	}
	if f != nil {
		sink = f
	}
	bw := bufio.NewWriterSize(sink, 1<<20)
	w := dataset.NewWriter(bw)
	for i := 0; i < n; i++ {
		if err := w.Write(datagen.SynthTrajectory(cfg, i)); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if f != nil {
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d trajectories to %s\n", n, path)
	}
	return nil
}

// streamEvent is one line of the -stream output: a trajectory's first
// batch travels as op "put" (the serving API requires the trajectory to
// exist before it can be appended to), every later batch as op "append".
type streamEvent struct {
	Op      string       `json:"op"`
	ID      string       `json:"id"`
	Samples [][3]float64 `json:"samples"`
}

// writeStream cuts n synth trajectories into batches of batch samples and
// emits them as one JSONL stream ordered by each batch's first timestamp,
// so replaying the lines in order is a faithful live-ingestion simulation:
// every append lands strictly after the samples already resident for its
// trajectory, and concurrent objects interleave the way their timelines
// do.
func writeStream(path string, n int, seed int64, samples, batch int) error {
	if batch <= 0 {
		return fmt.Errorf("-batch must be positive, got %d", batch)
	}
	cfg := datagen.DefaultSynthConfig(n)
	cfg.Seed = seed
	if samples > 0 {
		cfg.Samples = samples
	}
	var events []streamEvent
	for i := 0; i < n; i++ {
		tr := datagen.SynthTrajectory(cfg, i)
		for lo := 0; lo < len(tr.Samples); lo += batch {
			hi := lo + batch
			if hi > len(tr.Samples) {
				hi = len(tr.Samples)
			}
			ev := streamEvent{Op: "append", ID: tr.ID, Samples: make([][3]float64, hi-lo)}
			if lo == 0 {
				ev.Op = "put"
			}
			for j, s := range tr.Samples[lo:hi] {
				ev.Samples[j] = [3]float64{s.T, s.Loc.X, s.Loc.Y}
			}
			events = append(events, ev)
		}
	}
	// Stable sort on the first timestamp keeps each trajectory's batches in
	// generation order (their times strictly increase), so a put always
	// precedes its appends.
	sort.SliceStable(events, func(i, j int) bool {
		return events[i].Samples[0][0] < events[j].Samples[0][0]
	})

	var sink io.Writer = os.Stdout
	var f *os.File
	if path != "" {
		var err error
		if f, err = os.Create(path); err != nil {
			return err
		}
		sink = f
	}
	bw := bufio.NewWriterSize(sink, 1<<20)
	enc := json.NewEncoder(bw)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if f != nil {
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d stream events (%d trajectories) to %s\n", len(events), n, path)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "stsgen: %v\n", err)
	os.Exit(1)
}
