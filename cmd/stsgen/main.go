// Command stsgen generates the synthetic trajectory workloads that stand
// in for the paper's taxi and shopping-mall datasets, writing them as CSV
// (columns id,t,x,y).
//
// Usage:
//
//	stsgen -kind mall -n 100 -seed 7 -o mall.csv
//	stsgen -kind taxi -n 200 -o taxi.csv
//	stsgen -kind mall -n 50 -split -o mall    # writes mall.d1.csv, mall.d2.csv
//	stsgen -kind synth -n 100000 -o big.csv   # streamed, O(1) memory
//
// The synth kind is a capacity workload: independent random-walk
// trajectories generated per index and streamed straight to the output, so
// corpus size is bounded by disk, not memory. It backs the persistence and
// crash-recovery drills; mall and taxi remain the paper-shaped workloads.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/stslib/sts/internal/datagen"
	"github.com/stslib/sts/internal/dataset"
	"github.com/stslib/sts/internal/model"
	"github.com/stslib/sts/internal/version"
)

func main() {
	var (
		kind    = flag.String("kind", "mall", "workload: mall, taxi, or synth (streamed)")
		n       = flag.Int("n", 100, "number of objects")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("o", "", "output file (default stdout); with -split, the prefix for <prefix>.d1.csv and <prefix>.d2.csv")
		split   = flag.Bool("split", false, "also perform the alternating split into paired matching datasets (mall and taxi only)")
		min     = flag.Int("minlen", 20, "drop trajectories shorter than this many samples")
		samples = flag.Int("samples", 0, "samples per trajectory for -kind synth (0 = default 30)")
		ver     = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()

	if *ver {
		fmt.Println("stsgen", version.String())
		return
	}

	if *kind == "synth" {
		if *split {
			fatal(fmt.Errorf("-split is not supported with -kind synth"))
		}
		if err := writeSynth(*out, *n, *seed, *samples); err != nil {
			fatal(err)
		}
		return
	}

	var ds model.Dataset
	switch *kind {
	case "mall":
		cfg := datagen.DefaultMallConfig(*n)
		cfg.Seed = *seed
		ds, _ = datagen.GenerateMall(cfg)
	case "taxi":
		cfg := datagen.DefaultTaxiConfig(*n)
		cfg.Seed = *seed
		ds, _ = datagen.GenerateTaxi(cfg)
	default:
		fatal(fmt.Errorf("unknown kind %q (want mall, taxi, or synth)", *kind))
	}
	ds = ds.FilterMinLen(*min)

	if *split {
		if *out == "" {
			fatal(fmt.Errorf("-split requires -o <prefix>"))
		}
		d1, d2 := model.SplitDataset(ds)
		if err := dataset.WriteFile(*out+".d1.csv", d1); err != nil {
			fatal(err)
		}
		if err := dataset.WriteFile(*out+".d2.csv", d2); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d paired trajectories to %s.d1.csv and %s.d2.csv\n", len(d1), *out, *out)
		return
	}
	if *out == "" {
		if err := dataset.Write(os.Stdout, ds); err != nil {
			fatal(err)
		}
		return
	}
	if err := dataset.WriteFile(*out, ds); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d trajectories to %s\n", len(ds), *out)
}

// writeSynth streams n synthetic trajectories to path (stdout when empty),
// one at a time — nothing but the current trajectory is ever resident.
func writeSynth(path string, n int, seed int64, samples int) error {
	cfg := datagen.DefaultSynthConfig(n)
	cfg.Seed = seed
	if samples > 0 {
		cfg.Samples = samples
	}
	var sink io.Writer = os.Stdout
	var f *os.File
	if path != "" {
		var err error
		if f, err = os.Create(path); err != nil {
			return err
		}
	}
	if f != nil {
		sink = f
	}
	bw := bufio.NewWriterSize(sink, 1<<20)
	w := dataset.NewWriter(bw)
	for i := 0; i < n; i++ {
		if err := w.Write(datagen.SynthTrajectory(cfg, i)); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if f != nil {
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d trajectories to %s\n", n, path)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "stsgen: %v\n", err)
	os.Exit(1)
}
