package sts_test

import (
	"math"
	"testing"

	"github.com/stslib/sts/internal/eval"
	"github.com/stslib/sts/internal/experiments"
	"github.com/stslib/sts/internal/index"
	"github.com/stslib/sts/internal/linking"
	"github.com/stslib/sts/internal/model"
)

// cheapScorer is a fast stand-in similarity for harness benches whose
// subject is the surrounding machinery, not the measure.
var cheapScorer = eval.FuncScorer{N: "cheap", F: func(a, b model.Trajectory) (float64, error) {
	lo := math.Max(a.Start(), b.Start())
	hi := math.Min(a.End(), b.End())
	if lo >= hi {
		return 0, nil
	}
	pa, _ := a.InterpolateAt((lo + hi) / 2)
	pb, _ := b.InterpolateAt((lo + hi) / 2)
	return 1 / (1 + pa.Dist(pb)), nil
}}

// BenchmarkIndexTopK compares a pruned top-k query against exhaustive
// scoring over the taxi corpus, reporting the surviving candidate
// fraction.
func BenchmarkIndexTopK(b *testing.B) {
	_, taxi := benchScenarios(b)
	grid, err := taxi.Grid(taxi.GridSize, 0)
	if err != nil {
		b.Fatal(err)
	}
	ix, err := index.Build(taxi.D2, index.Options{
		Grid:         grid,
		TimeBucket:   120,
		SpatialSlack: 400,
		TimeSlack:    120,
	})
	if err != nil {
		b.Fatal(err)
	}
	query := taxi.D1[0]
	b.Run("pruned", func(b *testing.B) {
		var survived int
		for i := 0; i < b.N; i++ {
			if _, err := ix.TopK(query, cheapScorer, 5, 1); err != nil {
				b.Fatal(err)
			}
			survived = len(ix.Candidates(query))
		}
		b.ReportMetric(float64(survived)/float64(len(taxi.D2)), "candidate-fraction")
	})
	b.Run("exhaustive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eval.ScoreMatrix(model.Dataset{query}, taxi.D2, cheapScorer, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLinking compares the greedy and Hungarian linkers on the taxi
// split, reporting their linking precision.
func BenchmarkLinking(b *testing.B) {
	_, taxi := benchScenarios(b)
	scorer := pairScorers(b, taxi, []string{experiments.MethodSTS})[0]
	opts := linking.Options{MinScore: 1e-9, Workers: 1}
	for _, tc := range []struct {
		name string
		f    func(d1, d2 model.Dataset, s eval.Scorer, o linking.Options) ([]linking.Link, error)
	}{
		{"greedy", linking.GreedyLink},
		{"optimal", linking.OptimalLink},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var precision float64
			for i := 0; i < b.N; i++ {
				links, err := tc.f(taxi.D1, taxi.D2, scorer, opts)
				if err != nil {
					b.Fatal(err)
				}
				correct := 0
				for _, l := range links {
					if l.I == l.J {
						correct++
					}
				}
				if len(links) > 0 {
					precision = float64(correct) / float64(len(links))
				}
			}
			b.ReportMetric(precision, "link-precision")
		})
	}
}
