// Benchmarks regenerating, at reduced scale, every evaluation artifact of
// the paper (Figures 4–14), plus micro-benchmarks of the hot paths and
// ablation benches for the implementation's own design choices.
//
// The figure benches each run one reduced sweep per iteration and report
// the headline metric (precision, mean rank, deviation, or runtime) via
// b.ReportMetric, so `go test -bench=.` both times the harness and
// surfaces the reproduced numbers. cmd/stsbench runs the same sweeps at
// full scale.
package sts_test

import (
	"sync"
	"testing"

	"github.com/stslib/sts/internal/baseline"
	"github.com/stslib/sts/internal/core"
	"github.com/stslib/sts/internal/eval"
	"github.com/stslib/sts/internal/experiments"
	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/kde"
	"github.com/stslib/sts/internal/markov"
	"github.com/stslib/sts/internal/stprob"
)

// benchCfg is the reduced configuration every figure bench runs under:
// small datasets and a thinned sweep so one iteration stays in seconds.
var benchCfg = experiments.Config{
	N:     8,
	Seed:  1,
	Rates: []float64{0.2, 0.5, 0.8},
	Pairs: 20,
}

var (
	scOnce sync.Once
	scMall experiments.Scenario
	scTaxi experiments.Scenario
)

func benchScenarios(b *testing.B) (mall, taxi experiments.Scenario) {
	b.Helper()
	scOnce.Do(func() {
		scMall = experiments.Mall(benchCfg.N, benchCfg.Seed)
		scTaxi = experiments.Taxi(benchCfg.N, benchCfg.Seed)
	})
	return scMall, scTaxi
}

// --- Figure benches: one per evaluation artifact ---

func BenchmarkFig4PrecisionVsSamplingRate(b *testing.B) {
	mall, taxi := benchScenarios(b)
	for _, sc := range []experiments.Scenario{mall, taxi} {
		b.Run(sc.Name, func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				prec, _, err := experiments.SamplingRateSweep(sc, benchCfg)
				if err != nil {
					b.Fatal(err)
				}
				col, _ := prec.Column(experiments.MethodSTS)
				last = col[len(col)-1]
			}
			b.ReportMetric(last, "STS-precision@0.8")
		})
	}
}

func BenchmarkFig5MeanRankVsSamplingRate(b *testing.B) {
	mall, _ := benchScenarios(b)
	var last float64
	for i := 0; i < b.N; i++ {
		_, rank, err := experiments.SamplingRateSweep(mall, benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		col, _ := rank.Column(experiments.MethodSTS)
		last = col[0]
	}
	b.ReportMetric(last, "STS-meanrank@0.2")
}

func BenchmarkFig6PrecisionVsHeterogeneous(b *testing.B) {
	mall, _ := benchScenarios(b)
	var last float64
	for i := 0; i < b.N; i++ {
		prec, _, err := experiments.HeterogeneousSweep(mall, benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		col, _ := prec.Column(experiments.MethodSTS)
		last = col[0]
	}
	b.ReportMetric(last, "STS-precision@0.2")
}

func BenchmarkFig7MeanRankVsHeterogeneous(b *testing.B) {
	_, taxi := benchScenarios(b)
	var last float64
	for i := 0; i < b.N; i++ {
		_, rank, err := experiments.HeterogeneousSweep(taxi, benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		col, _ := rank.Column(experiments.MethodSTS)
		last = col[0]
	}
	b.ReportMetric(last, "STS-meanrank@0.2")
}

func BenchmarkFig8PrecisionVsNoise(b *testing.B) {
	mall, taxi := benchScenarios(b)
	for _, sc := range []experiments.Scenario{mall, taxi} {
		// Thin the noise sweep to its extremes for the bench.
		thin := sc
		thin.NoiseLevels = []float64{sc.NoiseLevels[0], sc.NoiseLevels[len(sc.NoiseLevels)-1]}
		b.Run(sc.Name, func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				prec, _, err := experiments.NoiseSweep(thin, benchCfg)
				if err != nil {
					b.Fatal(err)
				}
				col, _ := prec.Column(experiments.MethodSTS)
				last = col[len(col)-1]
			}
			b.ReportMetric(last, "STS-precision@maxnoise")
		})
	}
}

func BenchmarkFig9MeanRankVsNoise(b *testing.B) {
	mall, _ := benchScenarios(b)
	thin := mall
	thin.NoiseLevels = []float64{mall.NoiseLevels[len(mall.NoiseLevels)-1]}
	var last float64
	for i := 0; i < b.N; i++ {
		_, rank, err := experiments.NoiseSweep(thin, benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		col, _ := rank.Column(experiments.MethodSTS)
		last = col[0]
	}
	b.ReportMetric(last, "STS-meanrank@maxnoise")
}

func BenchmarkFig10Ablation(b *testing.B) {
	mall, taxi := benchScenarios(b)
	for _, sc := range []experiments.Scenario{mall, taxi} {
		b.Run(sc.Name, func(b *testing.B) {
			var full, noNoise float64
			for i := 0; i < b.N; i++ {
				prec, _, err := experiments.Ablation(sc, benchCfg)
				if err != nil {
					b.Fatal(err)
				}
				f, _ := prec.Column("STS")
				n, _ := prec.Column("STS-N")
				full, noNoise = f[0], n[0]
			}
			b.ReportMetric(full, "STS-precision")
			b.ReportMetric(noNoise, "STSN-precision")
		})
	}
}

func BenchmarkFig11CrossSimilarity(b *testing.B) {
	mall, _ := benchScenarios(b)
	var dev float64
	for i := 0; i < b.N; i++ {
		tab, err := experiments.CrossSim(mall, benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		col, _ := tab.Column(experiments.MethodSTS)
		dev = col[0]
	}
	b.ReportMetric(dev, "STS-deviation@0.2")
}

func BenchmarkFig12GridSizeTime(b *testing.B) {
	_, taxi := benchScenarios(b)
	thin := taxi
	thin.GridSizes = []float64{100, 250}
	var fine, coarse float64
	for i := 0; i < b.N; i++ {
		timing, _, _, err := experiments.GridSweep(thin, benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		col, _ := timing.Column("time(s)")
		fine, coarse = col[0], col[1]
	}
	b.ReportMetric(fine, "s@100m")
	b.ReportMetric(coarse, "s@250m")
}

func BenchmarkFig13GridSizePrecision(b *testing.B) {
	_, taxi := benchScenarios(b)
	thin := taxi
	thin.GridSizes = []float64{100, 250}
	var p float64
	for i := 0; i < b.N; i++ {
		_, prec, _, err := experiments.GridSweep(thin, benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		col, _ := prec.Column("precision")
		p = col[0]
	}
	b.ReportMetric(p, "precision@100m")
}

func BenchmarkFig14GridSizeMeanRank(b *testing.B) {
	_, taxi := benchScenarios(b)
	thin := taxi
	thin.GridSizes = []float64{100, 250}
	var r float64
	for i := 0; i < b.N; i++ {
		_, _, rank, err := experiments.GridSweep(thin, benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		col, _ := rank.Column("mean rank")
		r = col[0]
	}
	b.ReportMetric(r, "meanrank@100m")
}

// --- Micro-benchmarks of the hot paths ---

func pairScorers(b *testing.B, sc experiments.Scenario, methods []string) []eval.Scorer {
	b.Helper()
	scorers, err := experiments.BuildScorers(sc, sc.GridSize, 0, methods)
	if err != nil {
		b.Fatal(err)
	}
	return scorers
}

func BenchmarkSTSPairMall(b *testing.B) {
	mall, _ := benchScenarios(b)
	s := pairScorers(b, mall, []string{experiments.MethodSTS})[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Score(mall.D1[0], mall.D2[1]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSTSPairTaxi(b *testing.B) {
	_, taxi := benchScenarios(b)
	s := pairScorers(b, taxi, []string{experiments.MethodSTS})[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Score(taxi.D1[0], taxi.D2[1]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSTSPrepare(b *testing.B) {
	mall, _ := benchScenarios(b)
	grid, err := mall.Grid(mall.GridSize, 0)
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.NewSTS(grid, mall.Sigma(0))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Prepare(mall.D1[0]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKDEMassFast(b *testing.B) {
	mall, _ := benchScenarios(b)
	sm, err := kde.NewSpeedModel(mall.Base[0])
	if err != nil {
		b.Fatal(err)
	}
	est := sm.Estimator()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += est.MassFast(1.0 + float64(i%100)/50)
	}
	_ = sink
}

func BenchmarkBaselinePairs(b *testing.B) {
	mall, _ := benchScenarios(b)
	for _, name := range []string{
		experiments.MethodCATS, experiments.MethodSST, experiments.MethodWGM,
		experiments.MethodAPM, experiments.MethodEDwP, experiments.MethodKF,
	} {
		s := pairScorers(b, mall, []string{name})[0]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.Score(mall.D1[0], mall.D2[1]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDTWPair(b *testing.B) {
	mall, _ := benchScenarios(b)
	for i := 0; i < b.N; i++ {
		baseline.DTW(mall.D1[0], mall.D2[1])
	}
}

// --- Ablation benches for this implementation's design choices ---

// BenchmarkAblationSupportTruncation quantifies the support-truncation
// optimization: the same similarity under the truncated evaluator vs the
// exact full-grid sums of Eq. 4, on a coarse grid where the exact mode is
// affordable. The reported metrics show the two agree while the exact
// mode costs orders of magnitude more.
func BenchmarkAblationSupportTruncation(b *testing.B) {
	g, err := geo.NewGrid(geo.NewRect(geo.Point{X: -50, Y: -50}, geo.Point{X: 250, Y: 200}), 10)
	if err != nil {
		b.Fatal(err)
	}
	mall, _ := benchScenarios(b)
	a, t2 := mall.D1[0], mall.D2[0]
	for _, mode := range []struct {
		name  string
		exact bool
	}{{"truncated", false}, {"exact", true}} {
		b.Run(mode.name, func(b *testing.B) {
			m, err := core.New(core.Options{
				Grid:  g,
				Noise: stprob.GaussianNoise{Sigma: mall.Sigma(0)},
				Exact: mode.exact,
			})
			if err != nil {
				b.Fatal(err)
			}
			var v float64
			for i := 0; i < b.N; i++ {
				v, err = m.Similarity(a, t2)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(v, "similarity")
		})
	}
}

// BenchmarkAblationBandwidth compares Silverman's rule against fixed
// bandwidths for the speed KDE: the metric reported is the twin-vs-other
// separation ratio, showing the measure is not overly sensitive to the
// bandwidth rule.
func BenchmarkAblationBandwidth(b *testing.B) {
	mall, _ := benchScenarios(b)
	speeds := mall.Base[0].Speeds()
	for _, tc := range []struct {
		name string
		h    float64 // 0 = Silverman
	}{{"silverman", 0}, {"fixed-0.1", 0.1}, {"fixed-0.5", 0.5}} {
		b.Run(tc.name, func(b *testing.B) {
			var est *kde.Estimator
			var err error
			for i := 0; i < b.N; i++ {
				if tc.h == 0 {
					est, err = kde.New(speeds)
				} else {
					est, err = kde.NewWithBandwidth(speeds, tc.h)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(est.Bandwidth(), "bandwidth")
			b.ReportMetric(est.Mass(est.Mean()), "mass-at-mean")
		})
	}
}

// BenchmarkAblationTransitionModels compares the cost of one similarity
// under each transition estimator: personalized KDE (STS), pooled KDE
// (STS-G), frequency Markov (STS-F), and the Brownian random walk the
// related work uses.
func BenchmarkAblationTransitionModels(b *testing.B) {
	mall, _ := benchScenarios(b)
	grid, err := mall.Grid(mall.GridSize, 0)
	if err != nil {
		b.Fatal(err)
	}
	sigma := mall.Sigma(0)
	pooled, err := kde.NewPooledSpeedModel(mall.Base)
	if err != nil {
		b.Fatal(err)
	}
	freq, err := markov.Train(grid, mall.Base, 1)
	if err != nil {
		b.Fatal(err)
	}
	brownian := stprob.BrownianTransition(1.5)
	measures := []struct {
		name string
		m    *core.Measure
	}{}
	add := func(name string, m *core.Measure, err error) {
		if err != nil {
			b.Fatal(err)
		}
		measures = append(measures, struct {
			name string
			m    *core.Measure
		}{name, m})
	}
	m1, err := core.NewSTS(grid, sigma)
	add("personalized", m1, err)
	m2, err := core.NewSTSG(grid, sigma, pooled)
	add("global", m2, err)
	m3, err := core.NewSTSF(grid, sigma, freq, pooled.MaxSpeed())
	add("frequency", m3, err)
	m4, err := core.New(core.Options{
		Grid:     grid,
		Noise:    stprob.GaussianNoise{Sigma: sigma},
		Provider: core.FixedTransition{Trans: brownian, MaxSpeed: pooled.MaxSpeed()},
	})
	add("brownian", m4, err)

	for _, tc := range measures {
		b.Run(tc.name, func(b *testing.B) {
			var v float64
			for i := 0; i < b.N; i++ {
				var err error
				v, err = tc.m.Similarity(mall.D1[0], mall.D2[0])
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(v, "twin-similarity")
		})
	}
}
