package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/stslib/sts/api"
	"github.com/stslib/sts/internal/core"
	"github.com/stslib/sts/internal/engine"
	"github.com/stslib/sts/internal/eval"
	"github.com/stslib/sts/internal/experiments"
	"github.com/stslib/sts/internal/model"
	"github.com/stslib/sts/internal/server"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// mallWorld builds the standard serving fixture: the mall scenario's noisy
// dataset, an exact STS measure over its grid, and an engine bound to an
// STS scorer. Nothing is ingested yet.
func mallWorld(t *testing.T, n int) (*core.Measure, *engine.Engine, model.Dataset) {
	t.Helper()
	sc := experiments.Mall(n, 1)
	grid, err := sc.Grid(sc.GridSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewSTS(grid, sc.Sigma(0))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(eval.NewSTSScorer("STS", m), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return m, eng, sc.Base
}

func newTestServer(t *testing.T, eng *engine.Engine, opts server.Options) *httptest.Server {
	t.Helper()
	if opts.Logger == nil {
		opts.Logger = quietLogger()
	}
	srv, err := server.New(eng, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

// doJSON issues a request with a JSON body and decodes a JSON response.
func doJSON(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 && resp.StatusCode != http.StatusNoContent {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// TestRoundTripMall is the acceptance round-trip: batch-ingest the mall
// dataset over HTTP, then check that served similarity and top-k scores
// equal the sts library's own scores to ≤ 1e-12.
func TestRoundTripMall(t *testing.T) {
	m, eng, ds := mallWorld(t, 8)
	ts := newTestServer(t, eng, server.Options{})

	var br api.BatchResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/trajectories:batch",
		api.BatchRequest{Trajectories: api.FromDataset(ds)}, &br); code != http.StatusOK {
		t.Fatalf("batch ingest: code %d", code)
	}
	if br.Ingested != len(ds) || br.CorpusSize != len(ds) {
		t.Fatalf("batch response %+v, want ingested=corpus=%d", br, len(ds))
	}

	// Listing is the sorted ID set.
	var lr api.ListResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/trajectories", nil, &lr); code != http.StatusOK {
		t.Fatalf("list: code %d", code)
	}
	if lr.Count != len(ds) || !sort.StringsAreSorted(lr.IDs) {
		t.Fatalf("list response count=%d sorted=%v", lr.Count, sort.StringsAreSorted(lr.IDs))
	}

	// Served pairwise scores match direct library scores.
	pairs := 0
	for i := 0; i < len(ds) && pairs < 6; i++ {
		for j := i + 1; j < len(ds) && pairs < 6; j++ {
			pairs++
			var sr api.SimilarityResponse
			url := fmt.Sprintf("%s/v1/similarity?a=%s&b=%s", ts.URL, ds[i].ID, ds[j].ID)
			if code := doJSON(t, http.MethodGet, url, nil, &sr); code != http.StatusOK {
				t.Fatalf("similarity %s-%s: code %d", ds[i].ID, ds[j].ID, code)
			}
			want, err := m.Similarity(ds[i], ds[j])
			if err != nil {
				t.Fatal(err)
			}
			if sr.Score == nil {
				t.Fatalf("similarity %s-%s: null score, want %g", ds[i].ID, ds[j].ID, want)
			}
			if diff := math.Abs(*sr.Score - want); diff > 1e-12 {
				t.Fatalf("similarity %s-%s: served %g, library %g (|Δ|=%g > 1e-12)",
					ds[i].ID, ds[j].ID, *sr.Score, want, diff)
			}
		}
	}

	// Top-k excludes the query, ranks by descending score, and each served
	// score matches the library score of that pair.
	q := ds[0]
	var tr api.TopKResponse
	url := fmt.Sprintf("%s/v1/topk?id=%s&k=3", ts.URL, q.ID)
	if code := doJSON(t, http.MethodGet, url, nil, &tr); code != http.StatusOK {
		t.Fatalf("topk: code %d", code)
	}
	if len(tr.Matches) == 0 || len(tr.Matches) > 3 {
		t.Fatalf("topk returned %d matches", len(tr.Matches))
	}
	byID := make(map[string]model.Trajectory, len(ds))
	for _, tj := range ds {
		byID[tj.ID] = tj
	}
	for i, match := range tr.Matches {
		if match.ID == q.ID {
			t.Fatalf("topk match %d is the query itself", i)
		}
		if i > 0 && match.Score > tr.Matches[i-1].Score {
			t.Fatalf("topk not sorted: %v", tr.Matches)
		}
		want, err := m.Similarity(q, byID[match.ID])
		if err != nil {
			t.Fatal(err)
		}
		if diff := math.Abs(match.Score - want); diff > 1e-12 {
			t.Fatalf("topk %s: served %g, library %g (|Δ|=%g > 1e-12)", match.ID, match.Score, want, diff)
		}
	}

	// Stats reflect the corpus and the build stamp.
	var st api.StatsResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil, &st); code != http.StatusOK {
		t.Fatalf("stats: code %d", code)
	}
	if st.CorpusSize != len(ds) || st.Version == "" || st.Profiled {
		t.Fatalf("stats %+v, want corpus=%d, version set, exact scoring", st, len(ds))
	}
	if st.Prepared.Hits+st.Prepared.Misses == 0 {
		t.Fatal("stats report no prepared-cache traffic after scoring")
	}

	// Delete shrinks the corpus; the deleted ID then 404s.
	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/trajectories/"+q.ID, nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: code %d", code)
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/trajectories/"+q.ID, nil, nil); code != http.StatusNotFound {
		t.Fatalf("get after delete: code %d", code)
	}
}

// TestServedProfiledEngine runs the round-trip against a profiled engine:
// served scores must equal the profiled library scorer's scores exactly.
func TestServedProfiledEngine(t *testing.T) {
	m, _, ds := mallWorld(t, 6)
	popts := core.ProfileOptions{BucketSeconds: 30}
	eng, err := engine.New(eval.NewSTSScorerProfiled("STS-P", m, popts), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, eng, server.Options{})
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/trajectories:batch",
		api.BatchRequest{Trajectories: api.FromDataset(ds)}, nil); code != http.StatusOK {
		t.Fatalf("batch ingest: code %d", code)
	}
	scorer := eval.NewSTSScorerProfiled("STS-P", m, popts)
	var sr api.SimilarityResponse
	url := fmt.Sprintf("%s/v1/similarity?a=%s&b=%s", ts.URL, ds[0].ID, ds[1].ID)
	if code := doJSON(t, http.MethodGet, url, nil, &sr); code != http.StatusOK {
		t.Fatalf("similarity: code %d", code)
	}
	want, err := scorer.Score(ds[0], ds[1])
	if err != nil {
		t.Fatal(err)
	}
	if sr.Score == nil || math.Abs(*sr.Score-want) > 1e-12 {
		t.Fatalf("profiled similarity: served %v, library %g", sr.Score, want)
	}
	var st api.StatsResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil, &st); code != http.StatusOK || !st.Profiled {
		t.Fatalf("stats: code %d, %+v — want profiled", code, st)
	}
	if st.Profile == nil || st.Profile.Misses == 0 {
		t.Fatalf("profiled engine reports no profile-cache traffic: %+v", st.Profile)
	}
}

// TestLinkEndpoint links the mall's alternating-split halves over HTTP and
// checks the result against the library's engine-batch linker.
func TestLinkEndpoint(t *testing.T) {
	_, eng, _ := mallWorld(t, 6)
	sc := experiments.Mall(6, 1)
	// Ingest both halves under distinguishable IDs.
	var all []api.Trajectory
	var aIDs, bIDs []string
	for i, tj := range sc.D1 {
		w := api.FromTrajectory(tj)
		w.ID = fmt.Sprintf("a-%02d-%s", i, tj.ID)
		aIDs = append(aIDs, w.ID)
		all = append(all, w)
	}
	for i, tj := range sc.D2 {
		w := api.FromTrajectory(tj)
		w.ID = fmt.Sprintf("b-%02d-%s", i, tj.ID)
		bIDs = append(bIDs, w.ID)
		all = append(all, w)
	}
	ts := newTestServer(t, eng, server.Options{})
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/trajectories:batch",
		api.BatchRequest{Trajectories: all}, nil); code != http.StatusOK {
		t.Fatalf("batch ingest: code %d", code)
	}
	var lr api.LinkResponse
	req := api.LinkRequest{A: aIDs, B: bIDs, MaxSpeed: 10}
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/link", req, &lr); code != http.StatusOK {
		t.Fatalf("link: code %d", code)
	}
	if len(lr.Links) == 0 {
		t.Fatal("link produced no pairs")
	}
	// Ground truth: a-i should link to b-i (same underlying pedestrian).
	correct := 0
	for _, l := range lr.Links {
		if strings.TrimPrefix(l.A, "a-")[:2] == strings.TrimPrefix(l.B, "b-")[:2] {
			correct++
		}
		if l.Score < 0 {
			t.Fatalf("link %+v has negative score", l)
		}
	}
	if correct*2 < len(lr.Links) {
		t.Fatalf("only %d/%d links correct", correct, len(lr.Links))
	}
}

// TestMalformedRequests covers the 4xx surface, including the strict
// RejectUnsorted ingestion semantics.
func TestMalformedRequests(t *testing.T) {
	_, eng, ds := mallWorld(t, 6)
	ts := newTestServer(t, eng, server.Options{Strict: true})

	put := func(id string, body string) int {
		req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/trajectories/"+id, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	// Malformed JSON.
	if code := put("x", "{nope"); code != http.StatusBadRequest {
		t.Errorf("malformed JSON: code %d, want 400", code)
	}
	// Unknown field.
	if code := put("x", `{"samples": [[0,1,2]], "extra": true}`); code != http.StatusBadRequest {
		t.Errorf("unknown field: code %d, want 400", code)
	}
	// Out-of-order samples under strict ingestion.
	if code := put("x", `{"samples": [[10,0,0],[5,1,1]]}`); code != http.StatusBadRequest {
		t.Errorf("strict unsorted: code %d, want 400", code)
	}
	// Duplicate timestamps are rejected even without strict.
	if code := put("x", `{"samples": [[5,0,0],[5,1,1]]}`); code != http.StatusBadRequest {
		t.Errorf("duplicate timestamp: code %d, want 400", code)
	}
	// Empty trajectory.
	if code := put("x", `{"samples": []}`); code != http.StatusBadRequest {
		t.Errorf("empty trajectory: code %d, want 400", code)
	}
	// Non-finite coordinate survives JSON syntax but fails validation.
	if code := put("x", `{"samples": [[0,1e999,0]]}`); code != http.StatusBadRequest {
		t.Errorf("non-finite coordinate: code %d, want 400", code)
	}
	// Body/path ID mismatch.
	if code := put("x", `{"id": "y", "samples": [[0,1,2]]}`); code != http.StatusBadRequest {
		t.Errorf("id mismatch: code %d, want 400", code)
	}
	// Batch with a repeated ID.
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/trajectories:batch", api.BatchRequest{
		Trajectories: []api.Trajectory{
			{ID: "dup", Samples: [][3]float64{{0, 1, 2}}},
			{ID: "dup", Samples: [][3]float64{{1, 2, 3}}},
		},
	}, nil); code != http.StatusBadRequest {
		t.Errorf("batch repeated id: code %d, want 400", code)
	}
	// Unknown IDs 404.
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/similarity?a=nope&b=nada", nil, nil); code != http.StatusNotFound {
		t.Errorf("similarity unknown ids: code %d, want 404", code)
	}
	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/trajectories/nope", nil, nil); code != http.StatusNotFound {
		t.Errorf("delete unknown: code %d, want 404", code)
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/topk?id=nope", nil, nil); code != http.StatusNotFound {
		t.Errorf("topk unknown: code %d, want 404", code)
	}
	// Parameter validation.
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/similarity?a=only", nil, nil); code != http.StatusBadRequest {
		t.Errorf("similarity missing b: code %d, want 400", code)
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/topk", nil, nil); code != http.StatusBadRequest {
		t.Errorf("topk missing id: code %d, want 400", code)
	}
	// Linking an empty subset against an empty corpus.
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/link", api.LinkRequest{}, nil); code != http.StatusBadRequest {
		t.Errorf("link empty corpus: code %d, want 400", code)
	}
	// Sorted-by-default: the non-strict server accepts unsorted samples.
	lax := newTestServer(t, eng, server.Options{})
	req, err := http.NewRequest(http.MethodPut, lax.URL+"/v1/trajectories/lax",
		strings.NewReader(`{"samples": [[10,0,0],[5,1,1]]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("lax unsorted ingest: code %d, want 200", resp.StatusCode)
	}
	got, ok := eng.Get("lax")
	if !ok || got.Samples[0].T != 5 {
		t.Errorf("lax ingest not sorted: %+v", got.Samples)
	}
	// A bad k is caught before the engine runs.
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/topk?id="+ds[0].ID+"&k=-2", nil, nil); code != http.StatusBadRequest {
		t.Errorf("bad k: code %d, want 400", code)
	}
}

func newLocalListener() (net.Listener, error) {
	return net.Listen("tcp", "127.0.0.1:0")
}

// blockScorer blocks every Score call until release is closed, and counts
// calls — the instrument for the cancellation and backpressure tests.
type blockScorer struct {
	once    sync.Once
	started chan struct{}
	release chan struct{}
	calls   atomic.Int64
}

func newBlockScorer() *blockScorer {
	return &blockScorer{started: make(chan struct{}), release: make(chan struct{})}
}

func (b *blockScorer) Name() string { return "block" }

func (b *blockScorer) Score(_, _ model.Trajectory) (float64, error) {
	b.calls.Add(1)
	b.once.Do(func() { close(b.started) })
	<-b.release
	return 1, nil
}

func walkTraj(id string, x0 float64, n int) model.Trajectory {
	tr := model.Trajectory{ID: id, Samples: make([]model.Sample, n)}
	for i := range tr.Samples {
		tr.Samples[i] = model.Sample{T: float64(10 * i)}
		tr.Samples[i].Loc.X = x0 + float64(i)
	}
	return tr
}

// TestClientDisconnectAbortsQuery checks mid-request cancellation: when
// the client goes away, the request context aborts the engine executor —
// most of the corpus is never scored — and the request is accounted as a
// 499.
func TestClientDisconnectAbortsQuery(t *testing.T) {
	const corpus = 256
	bs := newBlockScorer()
	eng, err := engine.New(bs, engine.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < corpus; i++ {
		if _, err := eng.Add(walkTraj(fmt.Sprintf("w-%03d", i), float64(i), 4)); err != nil {
			t.Fatal(err)
		}
	}
	ts := newTestServer(t, eng, server.Options{})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/topk?id=w-000&k=5", nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()

	<-bs.started // scoring is in flight
	cancel()     // client disconnects
	if err := <-done; err == nil {
		t.Fatal("client request did not observe its own cancellation")
	}
	// Give the server's background connection read time to notice the
	// disconnect and cancel the request context, then unblock the workers.
	time.Sleep(250 * time.Millisecond)
	close(bs.release)

	// The executor must stop claiming work: with the context cancelled
	// before any worker came back, only the in-flight calls complete.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if body := fetch(t, ts.URL+"/metrics"); strings.Contains(body, `sts_requests_total{route="topk",code="499"} 1`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("499 never surfaced in /metrics; metrics:\n%s", fetch(t, ts.URL+"/metrics"))
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n := bs.calls.Load(); n > corpus/2 {
		t.Fatalf("cancellation did not abort the executor: %d/%d pairs scored", n, corpus)
	}
}

// TestBackpressure checks the 429 path: with one admission slot held by a
// blocked query, further queries are shed immediately with Retry-After,
// while observability routes stay reachable.
func TestBackpressure(t *testing.T) {
	bs := newBlockScorer()
	eng, err := engine.New(bs, engine.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := eng.Add(walkTraj(fmt.Sprintf("w-%d", i), float64(i), 4)); err != nil {
			t.Fatal(err)
		}
	}
	ts := newTestServer(t, eng, server.Options{MaxInFlight: 1, RetryAfter: 3 * time.Second})

	first := make(chan int, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/similarity?a=w-0&b=w-1")
		if err != nil {
			first <- -1
			return
		}
		resp.Body.Close()
		first <- resp.StatusCode
	}()
	<-bs.started // the only slot is now held

	resp, err := http.Get(ts.URL + "/v1/similarity?a=w-2&b=w-3")
	if err != nil {
		t.Fatal(err)
	}
	var apiErr api.ErrorResponse
	_ = json.NewDecoder(resp.Body).Decode(&apiErr)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload request: code %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", ra)
	}
	if apiErr.Error == "" {
		t.Fatal("429 carried no error body")
	}
	// Observability is exempt from admission control.
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil, nil); code != http.StatusOK {
		t.Fatalf("stats under overload: code %d", code)
	}
	if body := fetch(t, ts.URL+"/metrics"); !strings.Contains(body, "sts_rejected_total 1") {
		t.Fatalf("metrics under overload missing rejection count:\n%s", body)
	}

	close(bs.release)
	if code := <-first; code != http.StatusOK {
		t.Fatalf("blocked request finished with %d, want 200", code)
	}
}

// TestGracefulDrain checks Serve's shutdown path: cancelling the serve
// context stops accepting but drains the in-flight request to completion.
func TestGracefulDrain(t *testing.T) {
	bs := newBlockScorer()
	eng, err := engine.New(bs, engine.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := eng.Add(walkTraj(fmt.Sprintf("w-%d", i), float64(i), 4)); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := server.New(eng, server.Options{Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := newLocalListener()
	if err != nil {
		t.Fatal(err)
	}
	ctx, stop := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, ln, 5*time.Second) }()

	url := "http://" + ln.Addr().String()
	inflight := make(chan int, 1)
	go func() {
		resp, err := http.Get(url + "/v1/similarity?a=w-0&b=w-1")
		if err != nil {
			inflight <- -1
			return
		}
		resp.Body.Close()
		inflight <- resp.StatusCode
	}()
	<-bs.started
	stop() // SIGTERM equivalent: drain begins with one request in flight
	time.Sleep(50 * time.Millisecond)
	close(bs.release)

	if code := <-inflight; code != http.StatusOK {
		t.Fatalf("in-flight request during drain: code %d, want 200", code)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v after drain, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
}

// TestConcurrentIngestAndQuery hammers the server from many goroutines —
// ingest, delete, query, stats — and fails on any 5xx. Run under -race.
func TestConcurrentIngestAndQuery(t *testing.T) {
	_, eng, ds := mallWorld(t, 6)
	ts := newTestServer(t, eng, server.Options{MaxInFlight: -1})
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/trajectories:batch",
		api.BatchRequest{Trajectories: api.FromDataset(ds)}, nil); code != http.StatusOK {
		t.Fatalf("seed ingest: code %d", code)
	}

	workers, iters := 6, 20
	if testing.Short() {
		iters = 5
	}
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			myID := fmt.Sprintf("stress-%d", g)
			mine := api.FromTrajectory(ds[g%len(ds)])
			mine.ID = myID
			for i := 0; i < iters; i++ {
				var code int
				switch i % 5 {
				case 0:
					code = doJSON(t, http.MethodPut, ts.URL+"/v1/trajectories/"+myID, mine, nil)
				case 1:
					code = doJSON(t, http.MethodGet,
						fmt.Sprintf("%s/v1/similarity?a=%s&b=%s", ts.URL, ds[0].ID, ds[1].ID), nil, nil)
				case 2:
					code = doJSON(t, http.MethodGet,
						fmt.Sprintf("%s/v1/topk?id=%s&k=3", ts.URL, ds[(g+i)%len(ds)].ID), nil, nil)
				case 3:
					code = doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil, nil)
				case 4:
					code = doJSON(t, http.MethodDelete, ts.URL+"/v1/trajectories/"+myID, nil, nil)
				}
				if code >= 500 {
					t.Errorf("goroutine %d iter %d: code %d", g, i, code)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	// The base corpus must have survived the churn.
	var lr api.ListResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/trajectories", nil, &lr); code != http.StatusOK {
		t.Fatalf("final list: code %d", code)
	}
	for _, tj := range ds {
		found := false
		for _, id := range lr.IDs {
			if id == tj.ID {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("base trajectory %s lost during stress", tj.ID)
		}
	}
}

func fetch(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
