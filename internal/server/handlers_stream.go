package server

import (
	"errors"
	"math"
	"net/http"
	"strings"

	"github.com/stslib/sts/api"
	"github.com/stslib/sts/internal/engine"
	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/model"
	"github.com/stslib/sts/internal/stream"
)

// handleAppend extends one resident trajectory with strictly-later samples
// (POST /v1/trajectories/{id}:append — the custom-method suffix keeps the
// route distinct from the whole-trajectory PUT) and evaluates every
// standing query against the grown trajectory before answering, so the
// response can report how many alerts the append fired.
func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) error {
	raw := r.PathValue("idop")
	// Split on the LAST colon: the operation suffix cannot contain one,
	// but a trajectory ID may.
	cut := strings.LastIndex(raw, ":")
	if cut < 0 || raw[cut+1:] != "append" {
		return httpErrorf(http.StatusNotFound, "unknown trajectory operation in %q (want {id}:append)", raw)
	}
	id := raw[:cut]
	if id == "" {
		return httpErrorf(http.StatusBadRequest, "append needs a trajectory id before :append")
	}
	var req api.AppendRequest
	if err := s.readJSON(w, r, &req); err != nil {
		return err
	}
	if len(req.Samples) == 0 {
		return httpErrorf(http.StatusBadRequest, "append to %q has no samples", id)
	}
	tail := make([]model.Sample, len(req.Samples))
	for i, sm := range req.Samples {
		tail[i] = model.Sample{T: sm[0], Loc: geo.Point{X: sm[1], Y: sm[2]}}
	}
	if _, err := s.eng.Append(id, tail); err != nil {
		if errors.Is(err, engine.ErrNotFound) {
			return httpErrorf(http.StatusNotFound, "%v", err)
		}
		// Everything else the append path rejects is a tail-validation
		// failure (non-monotonic times, samples not past the resident
		// trajectory, non-finite coordinates).
		return httpErrorf(http.StatusBadRequest, "%v", err)
	}
	grown, ok := s.eng.Get(id)
	if !ok {
		// Only reachable if a concurrent DELETE won the race after our
		// append landed; the append itself succeeded.
		return httpErrorf(http.StatusConflict, "trajectory %q removed concurrently", id)
	}
	alerts, err := s.watches.OnAppend(r.Context(), grown, len(tail))
	if err != nil {
		return err
	}
	return writeJSON(w, http.StatusOK, api.AppendResponse{
		ID:         id,
		N:          len(grown.Samples),
		CorpusSize: s.eng.Len(),
		Alerts:     len(alerts),
	})
}

// handleWatchPut upserts one standing query. The path name is
// authoritative; a body name, when present, must agree.
func (s *Server) handleWatchPut(w http.ResponseWriter, r *http.Request) error {
	name := r.PathValue("name")
	var wire api.Watch
	if err := s.readJSON(w, r, &wire); err != nil {
		return err
	}
	if wire.Name != "" && wire.Name != name {
		return httpErrorf(http.StatusBadRequest, "body name %q does not match path name %q", wire.Name, name)
	}
	if math.IsNaN(wire.Theta) {
		return httpErrorf(http.StatusBadRequest, "watch %q theta is not a number", name)
	}
	err := s.watches.Set(stream.Watch{
		Name:            name,
		Members:         wire.Members,
		Theta:           wire.Theta,
		Webhook:         wire.Webhook,
		DebounceSeconds: wire.DebounceSeconds,
	})
	if err != nil {
		return httpErrorf(http.StatusBadRequest, "%v", err)
	}
	wire.Name = name
	return writeJSON(w, http.StatusOK, wire)
}

func (s *Server) handleWatchDelete(w http.ResponseWriter, r *http.Request) error {
	if err := s.watches.Delete(r.PathValue("name")); err != nil {
		if errors.Is(err, stream.ErrNotFound) {
			return httpErrorf(http.StatusNotFound, "%v", err)
		}
		return err
	}
	w.WriteHeader(http.StatusNoContent)
	return nil
}

// handleWatchList lists every standing query with its evaluation and
// delivery counters.
func (s *Server) handleWatchList(w http.ResponseWriter, r *http.Request) error {
	watches := s.watches.List()
	resp := api.WatchListResponse{Watches: make([]api.WatchStats, len(watches)), Count: len(watches)}
	for i, ws := range watches {
		resp.Watches[i] = api.WatchStats{
			Name:         ws.Name,
			Members:      ws.Members,
			Theta:        ws.Theta,
			Webhook:      ws.Webhook,
			Evals:        ws.Evals,
			Pairs:        ws.Pairs,
			Subthreshold: ws.Subthreshold,
			Alerts:       ws.Alerts,
			Suppressed:   ws.Suppressed,
			Delivered:    ws.Delivered,
			Retries:      ws.Retries,
			DeadLettered: ws.DeadLettered,
			Dropped:      ws.Dropped,
			QueueLen:     ws.QueueLen,
		}
	}
	return writeJSON(w, http.StatusOK, resp)
}
