package server_test

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"github.com/stslib/sts/api"
	"github.com/stslib/sts/internal/server"
)

// TestAppendEndpoint covers POST /v1/trajectories/{id}:append: the happy
// path grows the resident trajectory and reports the new sample count, and
// each rejection class maps to the right status.
func TestAppendEndpoint(t *testing.T) {
	_, eng, ds := mallWorld(t, 6)
	ts := newTestServer(t, eng, server.Options{})

	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/trajectories:batch",
		api.BatchRequest{Trajectories: api.FromDataset(ds)}, nil); code != http.StatusOK {
		t.Fatalf("batch ingest: code %d", code)
	}
	id := ds[0].ID
	var tr api.Trajectory
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/trajectories/"+id, nil, &tr); code != http.StatusOK {
		t.Fatalf("get %q: code %d", id, code)
	}
	last := tr.Samples[len(tr.Samples)-1]

	var ar api.AppendResponse
	tail := api.AppendRequest{Samples: [][3]float64{
		{last[0] + 5, last[1], last[2]},
		{last[0] + 10, last[1] + 1, last[2]},
	}}
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/trajectories/"+id+":append", tail, &ar); code != http.StatusOK {
		t.Fatalf("append: code %d", code)
	}
	if ar.ID != id || ar.N != len(tr.Samples)+2 || ar.CorpusSize != len(ds) {
		t.Fatalf("append response %+v, want id=%s n=%d corpus=%d", ar, id, len(tr.Samples)+2, len(ds))
	}

	// The grown trajectory is served back with the appended tail.
	var grown api.Trajectory
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/trajectories/"+id, nil, &grown); code != http.StatusOK {
		t.Fatalf("get grown: code %d", code)
	}
	if len(grown.Samples) != ar.N {
		t.Fatalf("grown has %d samples, append reported %d", len(grown.Samples), ar.N)
	}

	rejects := []struct {
		name string
		url  string
		body any
		want int
	}{
		{"unknown op", ts.URL + "/v1/trajectories/" + id + ":compact", tail, http.StatusNotFound},
		{"no id", ts.URL + "/v1/trajectories/:append", tail, http.StatusBadRequest},
		{"missing trajectory", ts.URL + "/v1/trajectories/nobody:append", tail, http.StatusNotFound},
		{"empty tail", ts.URL + "/v1/trajectories/" + id + ":append", api.AppendRequest{}, http.StatusBadRequest},
		{"stale tail", ts.URL + "/v1/trajectories/" + id + ":append",
			api.AppendRequest{Samples: [][3]float64{{last[0] - 1, last[1], last[2]}}}, http.StatusBadRequest},
	}
	for _, rj := range rejects {
		if code := doJSON(t, http.MethodPost, rj.url, rj.body, nil); code != rj.want {
			t.Errorf("%s: code %d, want %d", rj.name, code, rj.want)
		}
	}
}

// TestWatchEndpointsAndAlerts drives the standing-query lifecycle over
// HTTP: register a watch on a shadow copy of a trajectory, append to the
// original so the pair crosses theta, and check the alert shows up in the
// append response, the per-watch stats, and /metrics.
func TestWatchEndpointsAndAlerts(t *testing.T) {
	_, eng, ds := mallWorld(t, 6)
	ts := newTestServer(t, eng, server.Options{})

	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/trajectories:batch",
		api.BatchRequest{Trajectories: api.FromDataset(ds)}, nil); code != http.StatusOK {
		t.Fatalf("batch ingest: code %d", code)
	}
	// Shadow is a bit-identical copy of ds[0] under another ID, so the
	// grown ds[0] scores high against it and a tiny theta must alert.
	shadow := ds[0]
	shadow.ID = "shadow"
	if code := doJSON(t, http.MethodPut, ts.URL+"/v1/trajectories/shadow",
		api.FromTrajectory(shadow), nil); code != http.StatusOK {
		t.Fatalf("put shadow: code %d", code)
	}

	for _, bad := range []struct {
		name string
		w    api.Watch
	}{
		{"no members", api.Watch{Theta: 0.5}},
		{"zero theta", api.Watch{Members: []string{"shadow"}}},
		{"theta above one", api.Watch{Members: []string{"shadow"}, Theta: 1.5}},
		{"name mismatch", api.Watch{Name: "other", Members: []string{"shadow"}, Theta: 0.5}},
	} {
		if code := doJSON(t, http.MethodPut, ts.URL+"/v1/watch/pals", bad.w, nil); code != http.StatusBadRequest {
			t.Errorf("%s: code %d, want 400", bad.name, code)
		}
	}

	var echoed api.Watch
	if code := doJSON(t, http.MethodPut, ts.URL+"/v1/watch/pals",
		api.Watch{Members: []string{"shadow"}, Theta: 0.001}, &echoed); code != http.StatusOK {
		t.Fatalf("put watch: code %d", code)
	}
	if echoed.Name != "pals" {
		t.Fatalf("echoed watch name %q, want pals", echoed.Name)
	}

	id := ds[0].ID
	var tr api.Trajectory
	doJSON(t, http.MethodGet, ts.URL+"/v1/trajectories/"+id, nil, &tr)
	last := tr.Samples[len(tr.Samples)-1]
	var ar api.AppendResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/trajectories/"+id+":append",
		api.AppendRequest{Samples: [][3]float64{{last[0] + 5, last[1], last[2]}}}, &ar); code != http.StatusOK {
		t.Fatalf("append: code %d", code)
	}
	if ar.Alerts != 1 {
		t.Fatalf("append fired %d alerts, want 1 (grown %s vs identical shadow)", ar.Alerts, id)
	}

	var wl api.WatchListResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/watch", nil, &wl); code != http.StatusOK {
		t.Fatalf("watch list: code %d", code)
	}
	if wl.Count != 1 || len(wl.Watches) != 1 {
		t.Fatalf("watch list %+v, want exactly the one watch", wl)
	}
	ws := wl.Watches[0]
	if ws.Name != "pals" || ws.Members != 1 || ws.Evals != 1 || ws.Alerts != 1 {
		t.Fatalf("watch stats %+v, want pals members=1 evals=1 alerts=1", ws)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"sts_append_total 1",
		"sts_append_samples_total 1",
		"sts_watches 1",
		"sts_standing_evals_total 1",
		`sts_alerts_total{watch="pals"} 1`,
		"sts_standing_eval_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/watch/pals", nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete watch: code %d", code)
	}
	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/watch/pals", nil, nil); code != http.StatusNotFound {
		t.Fatalf("double delete: code %d, want 404", code)
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/watch", nil, &wl); code != http.StatusOK || wl.Count != 0 {
		t.Fatalf("watch list after delete: code %d count %d", code, wl.Count)
	}
}
