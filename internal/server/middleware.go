package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"github.com/stslib/sts/api"
)

// routeOpts is the per-route middleware configuration.
type routeOpts struct {
	// limited routes pass through the in-flight admission semaphore.
	limited bool
	// timeout bounds the request (0 = none); it becomes the deadline of
	// the context handed to the engine.
	timeout time.Duration
	// quiet routes log at Debug (health and metrics probes would otherwise
	// dominate the request log).
	quiet bool
}

// httpError carries a status code with a client-safe message. Handlers
// return it (wrapped or not) to pick the response code; any other error is
// a 500.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func httpErrorf(status int, format string, args ...any) *httpError {
	return &httpError{status: status, msg: fmt.Sprintf(format, args...)}
}

// statusCode499 is the nginx convention for "client closed request": the
// client went away before a response was written. Never sent on the wire —
// it only labels logs and metrics.
const statusCode499 = 499

// statusRecorder captures the response code for logs and metrics.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.code = code
		r.wrote = true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if !r.wrote {
		r.code = http.StatusOK
		r.wrote = true
	}
	return r.ResponseWriter.Write(b)
}

// handle mounts fn on the mux behind the middleware stack: panic
// recovery, in-flight accounting, admission control, the per-route
// timeout, error mapping, metrics, and the structured request log.
func (s *Server) handle(pattern, name string, o routeOpts, fn func(w http.ResponseWriter, r *http.Request) error) {
	s.metrics.register(name)
	s.mux.Handle(pattern, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.metrics.inflight.Add(1)
		defer s.metrics.inflight.Add(-1)

		rec := &statusRecorder{ResponseWriter: w}
		if o.limited && !s.limiter.tryAcquire() {
			s.metrics.rejected.Add(1)
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.opts.RetryAfter)))
			writeError(rec, http.StatusTooManyRequests, "server at capacity, retry later")
			s.finish(name, o, r, rec.code, start, errors.New("admission limit reached"))
			return
		}
		if o.limited {
			defer s.limiter.release()
		}

		ctx := r.Context()
		if o.timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, o.timeout)
			defer cancel()
		}

		var err error
		func() {
			defer func() {
				if p := recover(); p != nil {
					err = fmt.Errorf("panic: %v", p)
				}
			}()
			err = fn(rec, r.WithContext(ctx))
		}()

		if err != nil {
			s.writeErrorFor(rec, r, err)
		}
		s.finish(name, o, r, rec.code, start, err)
	}))
}

// writeErrorFor maps a handler error to a response: *httpError keeps its
// status, an expired request budget is 504, a vanished client is logged as
// 499 with nothing written, anything else is a 500 with a generic body (the
// detail goes to the log, not the wire).
func (s *Server) writeErrorFor(rec *statusRecorder, r *http.Request, err error) {
	if rec.wrote {
		return // too late to change the response; the log carries the error
	}
	var he *httpError
	switch {
	case errors.As(err, &he):
		writeError(rec, he.status, he.msg)
	case errors.Is(err, context.DeadlineExceeded):
		writeError(rec, http.StatusGatewayTimeout, "request timed out")
	case errors.Is(err, context.Canceled) && r.Context().Err() != nil:
		rec.code = statusCode499 // client closed request; nobody to answer
	default:
		writeError(rec, http.StatusInternalServerError, "internal error")
	}
}

// finish records metrics and the request log line.
func (s *Server) finish(route string, o routeOpts, r *http.Request, code int, start time.Time, err error) {
	if code == 0 {
		code = http.StatusOK // handler wrote nothing: empty 200
	}
	elapsed := time.Since(start)
	s.metrics.observe(route, code, elapsed)
	level := slog.LevelInfo
	switch {
	case code >= 500:
		level = slog.LevelError
	case code >= 400:
		level = slog.LevelWarn
	case o.quiet:
		level = slog.LevelDebug
	}
	attrs := []any{
		"route", route,
		"method", r.Method,
		"path", r.URL.Path,
		"code", code,
		"elapsed", elapsed,
	}
	if err != nil {
		attrs = append(attrs, "err", err)
	}
	s.log.Log(r.Context(), level, "request", attrs...)
}

func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// writeJSON marshals v before touching the ResponseWriter so an encoding
// failure can still become a clean 500 instead of a torn body.
func writeJSON(w http.ResponseWriter, status int, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("encode response: %w", err)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(append(b, '\n'))
	return nil
}

func writeError(w http.ResponseWriter, status int, msg string) {
	_ = writeJSON(w, status, api.ErrorResponse{Error: msg})
}

// readJSON decodes a request body into v under the server's size cap,
// rejecting unknown fields so typos in client payloads fail loudly.
func (s *Server) readJSON(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return httpErrorf(http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
		}
		return httpErrorf(http.StatusBadRequest, "malformed JSON body: %v", err)
	}
	return nil
}
