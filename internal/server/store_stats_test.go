package server_test

import (
	"fmt"
	"net/http"
	"sync"
	"testing"

	"github.com/stslib/sts/api"
	"github.com/stslib/sts/internal/server"
)

// TestStatsCorpusSizeUnderConcurrentIngest pins the single-source-of-truth
// property of the store-backed corpus: /v1/stats reports the store's count,
// so while writers race, every observed corpus_size is a value the corpus
// actually passed through (monotonically non-decreasing under pure ingest),
// and once the writers are done it equals both Engine.Len and the number of
// trajectories ingested.
func TestStatsCorpusSizeUnderConcurrentIngest(t *testing.T) {
	_, eng, ds := mallWorld(t, 12)
	ts := newTestServer(t, eng, server.Options{MaxInFlight: -1})

	var wg sync.WaitGroup
	const writers = 4
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(ds); i += writers {
				url := fmt.Sprintf("%s/v1/trajectories/%s", ts.URL, ds[i].ID)
				if code := doJSON(t, http.MethodPut, url, api.FromTrajectory(ds[i]), nil); code != http.StatusOK {
					t.Errorf("put %s: code %d", ds[i].ID, code)
					return
				}
			}
		}(w)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	last := 0
	for {
		var sr api.StatsResponse
		if code := doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil, &sr); code != http.StatusOK {
			t.Fatalf("stats: code %d", code)
		}
		if sr.CorpusSize < last || sr.CorpusSize > len(ds) {
			t.Fatalf("stats corpus_size went %d -> %d (corpus holds at most %d)", last, sr.CorpusSize, len(ds))
		}
		last = sr.CorpusSize
		select {
		case <-done:
			var final api.StatsResponse
			if code := doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil, &final); code != http.StatusOK {
				t.Fatalf("final stats: code %d", code)
			}
			if final.CorpusSize != eng.Len() || final.CorpusSize != len(ds) {
				t.Fatalf("final stats corpus_size=%d, engine Len=%d, ingested=%d — must all agree",
					final.CorpusSize, eng.Len(), len(ds))
			}
			if final.Store.LiveBytes <= 0 {
				t.Fatalf("final stats store.live_bytes=%d, want > 0 after ingest", final.Store.LiveBytes)
			}
			return
		default:
		}
	}
}
