package server

import (
	"errors"
	"math"
	"net/http"
	"strconv"

	"github.com/stslib/sts/api"
	"github.com/stslib/sts/internal/dataset"
	"github.com/stslib/sts/internal/engine"
	"github.com/stslib/sts/internal/linking"
	"github.com/stslib/sts/internal/model"
	"github.com/stslib/sts/internal/store"
)

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) error {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, err := w.Write([]byte("ok\n"))
	return err
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) error {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.render(w, s.eng, s.watches)
	return nil
}

// handleSnapshot forces an immediate store snapshot — corpus plus the
// derived-state sidecar — instead of waiting for the WAL-growth trigger;
// the ops hook warm-restart drills use to persist cache warmth before a
// crash. It answers with the post-snapshot store stats.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) error {
	if err := s.eng.Snapshot(); err != nil {
		return httpErrorf(http.StatusConflict, "%v", err)
	}
	return writeJSON(w, http.StatusOK, wireStoreStats(s.eng.StoreStats()))
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) error {
	ps := s.eng.PruneStats()
	resp := api.StatsResponse{
		Version:    s.opts.Version,
		CorpusSize: s.eng.Len(),
		Profiled:   s.eng.Profiled(),
		Workers:    s.eng.Workers(),
		Prepared:   wireCacheStats(s.eng.CacheStats()),
		Prune: api.PruneStats{
			Considered:  ps.Considered,
			BoundPruned: ps.BoundPruned,
			EarlyExited: ps.EarlyExited,
			Refined:     ps.Refined,
		},
	}
	if resp.Profiled {
		ps := wireCacheStats(s.eng.ProfileCacheStats())
		resp.Profile = &ps
	}
	resp.Store = wireStoreStats(s.eng.StoreStats())
	if st, ok := s.eng.(engine.ShardStater); ok {
		shards := st.ShardStats()
		resp.Shards = make([]api.ShardStats, len(shards))
		for i, sh := range shards {
			ws := api.ShardStats{
				Shard:      sh.Shard,
				CorpusSize: sh.Len,
				Prepared:   wireCacheStats(sh.Cache),
				Prune: api.PruneStats{
					Considered:  sh.Prune.Considered,
					BoundPruned: sh.Prune.BoundPruned,
					EarlyExited: sh.Prune.EarlyExited,
					Refined:     sh.Prune.Refined,
				},
				Store: wireStoreStats(sh.Store),
			}
			if resp.Profiled {
				pc := wireCacheStats(sh.ProfileCache)
				ws.Profile = &pc
			}
			resp.Shards[i] = ws
		}
	}
	return writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) error {
	ids := s.eng.IDs()
	return writeJSON(w, http.StatusOK, api.ListResponse{IDs: ids, Count: len(ids)})
}

// handlePut upserts one trajectory. The path ID is authoritative; a body
// ID, when present, must agree.
func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) error {
	id := r.PathValue("id")
	var wire api.Trajectory
	if err := s.readJSON(w, r, &wire); err != nil {
		return err
	}
	if wire.ID != "" && wire.ID != id {
		return httpErrorf(http.StatusBadRequest, "body id %q does not match path id %q", wire.ID, id)
	}
	tr := wire.Model()
	tr.ID = id
	if err := s.normalizeIngest(&tr); err != nil {
		return err
	}
	if _, err := s.eng.Replace(tr); err != nil {
		return httpErrorf(http.StatusBadRequest, "ingest %q: %v", id, err)
	}
	return writeJSON(w, http.StatusOK, api.PutResponse{ID: id, CorpusSize: s.eng.Len()})
}

func (s *Server) handleGetTrajectory(w http.ResponseWriter, r *http.Request) error {
	id := r.PathValue("id")
	tr, ok := s.eng.Get(id)
	if !ok {
		return httpErrorf(http.StatusNotFound, "trajectory %q not in corpus", id)
	}
	return writeJSON(w, http.StatusOK, api.FromTrajectory(tr))
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) error {
	if err := s.eng.Remove(r.PathValue("id")); err != nil {
		return mapEngineErr(err)
	}
	w.WriteHeader(http.StatusNoContent)
	return nil
}

// handleBatch ingests many trajectories in one request. Validation runs
// over the whole batch before the first corpus write, so a malformed
// payload is rejected atomically instead of half-applied.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) error {
	var req api.BatchRequest
	if err := s.readJSON(w, r, &req); err != nil {
		return err
	}
	if len(req.Trajectories) == 0 {
		return httpErrorf(http.StatusBadRequest, "batch has no trajectories")
	}
	ds := make(model.Dataset, len(req.Trajectories))
	seen := make(map[string]bool, len(req.Trajectories))
	for i, wire := range req.Trajectories {
		if wire.ID == "" {
			return httpErrorf(http.StatusBadRequest, "batch trajectory %d has no id", i)
		}
		if seen[wire.ID] {
			return httpErrorf(http.StatusBadRequest, "batch repeats id %q", wire.ID)
		}
		seen[wire.ID] = true
		tr := wire.Model()
		if err := s.normalizeIngest(&tr); err != nil {
			return err
		}
		ds[i] = tr
	}
	for _, tr := range ds {
		if err := r.Context().Err(); err != nil {
			return err
		}
		if _, err := s.eng.Replace(tr); err != nil {
			return httpErrorf(http.StatusBadRequest, "ingest %q: %v", tr.ID, err)
		}
	}
	return writeJSON(w, http.StatusOK, api.BatchResponse{Ingested: len(ds), CorpusSize: s.eng.Len()})
}

// handleSimilarity scores one corpus pair through the engine (and thus
// through its prepared/profile caches and worker pool), honoring the
// request context.
func (s *Server) handleSimilarity(w http.ResponseWriter, r *http.Request) error {
	aID := r.URL.Query().Get("a")
	bID := r.URL.Query().Get("b")
	if aID == "" || bID == "" {
		return httpErrorf(http.StatusBadRequest, "similarity needs both ?a= and ?b= trajectory ids")
	}
	a, ok := s.eng.Get(aID)
	if !ok {
		return httpErrorf(http.StatusNotFound, "trajectory %q not in corpus", aID)
	}
	b, ok := s.eng.Get(bID)
	if !ok {
		return httpErrorf(http.StatusNotFound, "trajectory %q not in corpus", bID)
	}
	scores, err := s.eng.ScoreBatch(r.Context(), model.Dataset{a}, model.Dataset{b}, nil)
	if err != nil {
		return err
	}
	resp := api.SimilarityResponse{A: aID, B: bID}
	if v := scores[0][0]; !math.IsInf(v, 0) && !math.IsNaN(v) {
		resp.Score = &v
	}
	return writeJSON(w, http.StatusOK, resp)
}

// handleTopK ranks the corpus against one of its trajectories. The query
// itself is excluded from the results (it would trivially rank first);
// pass ?self=true to keep it. An optional ?min_score= floor drops weaker
// matches and feeds the engine's filter-and-refine pruning from the first
// wave on.
func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) error {
	q := r.URL.Query()
	id := q.Get("id")
	if id == "" {
		return httpErrorf(http.StatusBadRequest, "topk needs an ?id= query trajectory")
	}
	k := s.opts.DefaultK
	if raw := q.Get("k"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v <= 0 {
			return httpErrorf(http.StatusBadRequest, "bad k %q: want a positive integer", raw)
		}
		k = v
	}
	includeSelf := q.Get("self") == "true"
	minScore := math.Inf(-1)
	if raw := q.Get("min_score"); raw != "" {
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil || math.IsNaN(v) {
			return httpErrorf(http.StatusBadRequest, "bad min_score %q: want a number", raw)
		}
		minScore = v
	}
	query, ok := s.eng.Get(id)
	if !ok {
		return httpErrorf(http.StatusNotFound, "trajectory %q not in corpus", id)
	}
	want := k
	if !includeSelf {
		want = k + 1 // room to drop the query's own entry
	}
	matches, err := s.eng.TopKOpts(r.Context(), query, engine.TopKOptions{K: want, MinScore: minScore})
	if err != nil {
		return mapEngineErr(err)
	}
	resp := api.TopKResponse{Query: id, K: k, Matches: make([]api.Match, 0, k)}
	for _, m := range matches {
		if len(resp.Matches) == k {
			break
		}
		if !includeSelf && m.ID == id {
			continue
		}
		if math.IsInf(m.Score, 0) || math.IsNaN(m.Score) {
			continue // sanitized non-matches have no JSON representation
		}
		resp.Matches = append(resp.Matches, api.Match{ID: m.ID, Score: m.Score})
	}
	return writeJSON(w, http.StatusOK, resp)
}

// handleLink greedily links two corpus subsets one-to-one through the
// engine's batch scorer, so repeated link queries reuse cached
// per-trajectory preparation.
func (s *Server) handleLink(w http.ResponseWriter, r *http.Request) error {
	var req api.LinkRequest
	if err := s.readJSON(w, r, &req); err != nil {
		return err
	}
	d1, err := s.eng.Subset(req.A)
	if err != nil {
		return mapEngineErr(err)
	}
	d2, err := s.eng.Subset(req.B)
	if err != nil {
		return mapEngineErr(err)
	}
	links, err := linking.GreedyLinkBatch(r.Context(), s.eng, d1, d2, linking.Options{
		MinScore: req.MinScore,
		MaxSpeed: req.MaxSpeed,
		MinGap:   req.MinGap,
		Workers:  s.eng.Workers(),
	})
	if errors.Is(err, linking.ErrEmptyInput) {
		return httpErrorf(http.StatusBadRequest, "link needs non-empty subsets on both sides (corpus holds %d trajectories)", s.eng.Len())
	}
	if err != nil {
		return err
	}
	resp := api.LinkResponse{Links: make([]api.LinkedPair, len(links))}
	for i, l := range links {
		resp.Links[i] = api.LinkedPair{A: d1[l.I].ID, B: d2[l.J].ID, Score: l.Score}
	}
	return writeJSON(w, http.StatusOK, resp)
}

// normalizeIngest applies the shared ingestion policy — dataset.Normalize,
// so the server's Strict option means exactly what the readers'
// RejectUnsorted means — and maps violations to 400s.
func (s *Server) normalizeIngest(tr *model.Trajectory) error {
	if err := dataset.Normalize(tr, dataset.ReadOptions{RejectUnsorted: s.opts.Strict}); err != nil {
		return httpErrorf(http.StatusBadRequest, "%v", err)
	}
	return nil
}

// mapEngineErr translates engine sentinel errors to HTTP statuses.
func mapEngineErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, engine.ErrNotFound):
		return &httpError{status: http.StatusNotFound, msg: err.Error()}
	case errors.Is(err, engine.ErrNoQuery):
		return &httpError{status: http.StatusBadRequest, msg: err.Error()}
	default:
		return err
	}
}

func wireCacheStats(cs engine.CacheStats) api.CacheStats {
	return api.CacheStats{
		Hits:      cs.Hits,
		Misses:    cs.Misses,
		Evictions: cs.Evictions,
		Size:      cs.Size,
		Cap:       cs.Cap,
		HitRate:   cs.HitRate(),
		Bytes:     cs.Bytes,
	}
}

func wireStoreStats(st store.Stats) api.StoreStats {
	return api.StoreStats{
		LiveBytes:       st.LiveBytes,
		ArenaBytes:      st.ArenaBytes,
		CoordStep:       st.CoordStep,
		Persistent:      st.Persistent,
		WALBytes:        st.WALBytes,
		WALSeq:          st.WALSeq,
		Snapshots:       st.Snapshots,
		SnapshotErrors:  st.SnapshotErrors,
		RecoverySeconds: st.RecoverySeconds,
		WarmProfiles:    st.WarmProfiles,
		WarmSeconds:     st.WarmSeconds,
		SidecarWrites:   st.SidecarWrites,
		SidecarErrors:   st.SidecarErrors,
	}
}
