package server

// limiter is the admission-control semaphore: at most cap requests hold a
// slot at once, and acquisition never blocks — under overload the right
// answer is an immediate 429 with a Retry-After hint, not a queue that
// grows until every request times out.
type limiter struct {
	slots chan struct{} // nil = unbounded
}

// newLimiter builds a limiter admitting n concurrent requests; n < 0
// disables the bound.
func newLimiter(n int) *limiter {
	if n < 0 {
		return &limiter{}
	}
	return &limiter{slots: make(chan struct{}, n)}
}

// tryAcquire claims a slot, reporting false when the server is at
// capacity.
func (l *limiter) tryAcquire() bool {
	if l.slots == nil {
		return true
	}
	select {
	case l.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// release returns a slot claimed by tryAcquire.
func (l *limiter) release() {
	if l.slots != nil {
		<-l.slots
	}
}

// inFlight reports the currently held slots (0 when unbounded).
func (l *limiter) inFlight() int {
	if l.slots == nil {
		return 0
	}
	return len(l.slots)
}
