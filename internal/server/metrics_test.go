package server

import (
	"math"
	"strings"
	"testing"
	"time"

	"github.com/stslib/sts/internal/engine"
	"github.com/stslib/sts/internal/eval"
	"github.com/stslib/sts/internal/model"
)

func renderToString(t *testing.T, m *metrics) string {
	t.Helper()
	eng, err := engine.New(eval.FuncScorer{N: "noop", F: func(a, b model.Trajectory) (float64, error) {
		return 0, nil
	}}, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	m.render(&sb, eng, nil)
	return sb.String()
}

// TestHistogramCumulative checks the Prometheus exposition invariants:
// bucket counts are cumulative, +Inf equals the observation count, and the
// sum matches the observed latencies.
func TestHistogramCumulative(t *testing.T) {
	m := newMetrics()
	m.register("topk")
	m.observe("topk", 200, 500*time.Microsecond) // le=0.001
	m.observe("topk", 200, 30*time.Millisecond)  // le=0.05
	m.observe("topk", 404, 30*time.Millisecond)  // le=0.05
	m.observe("topk", 200, time.Minute)          // +Inf overflow

	out := renderToString(t, m)
	wants := []string{
		`sts_requests_total{route="topk",code="200"} 3`,
		`sts_requests_total{route="topk",code="404"} 1`,
		`sts_request_seconds_bucket{route="topk",le="0.001"} 1`,
		`sts_request_seconds_bucket{route="topk",le="0.05"} 3`,
		`sts_request_seconds_bucket{route="topk",le="10"} 3`,
		`sts_request_seconds_bucket{route="topk",le="+Inf"} 4`,
		`sts_request_seconds_count{route="topk"} 4`,
		`sts_corpus_size 0`,
		`sts_inflight_requests 0`,
		`sts_rejected_total 0`,
		`sts_cache_hit_ratio{cache="prepared"} 0`,
	}
	for _, want := range wants {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// The latency sum is 0.0005 + 0.03 + 0.03 + 60 seconds.
	rm := m.route("topk")
	wantSum := (500*time.Microsecond + 60*time.Millisecond + time.Minute).Seconds()
	if got := float64(rm.sumNs) / 1e9; math.Abs(got-wantSum) > 1e-9 {
		t.Errorf("latency sum %g, want %g", got, wantSum)
	}
}

// TestRegisteredRoutesExportZeroSeries checks that a route that served
// nothing still appears in the histogram exposition, so dashboards see a
// stable series set from the first scrape.
func TestRegisteredRoutesExportZeroSeries(t *testing.T) {
	m := newMetrics()
	m.register("similarity")
	out := renderToString(t, m)
	if !strings.Contains(out, `sts_request_seconds_count{route="similarity"} 0`) {
		t.Errorf("zero series missing:\n%s", out)
	}
}

// TestLimiter covers the admission semaphore directly.
func TestLimiter(t *testing.T) {
	l := newLimiter(2)
	if !l.tryAcquire() || !l.tryAcquire() {
		t.Fatal("limiter refused admission below capacity")
	}
	if l.tryAcquire() {
		t.Fatal("limiter admitted above capacity")
	}
	if l.inFlight() != 2 {
		t.Fatalf("inFlight = %d, want 2", l.inFlight())
	}
	l.release()
	if !l.tryAcquire() {
		t.Fatal("limiter refused admission after release")
	}
	un := newLimiter(-1)
	for i := 0; i < 100; i++ {
		if !un.tryAcquire() {
			t.Fatal("unbounded limiter refused admission")
		}
	}
	un.release() // must not panic or block
	zero := newLimiter(0)
	if zero.tryAcquire() {
		t.Fatal("zero-capacity limiter admitted a request")
	}
}
