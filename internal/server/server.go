// Package server is the HTTP/JSON serving subsystem over the engine: a
// long-lived process boundary for trajectory ingestion, pairwise
// similarity, top-k co-location search, greedy linking, and engine
// introspection. The wire contract lives in the api package; the stsserved
// command wires a Server to flags and signals, and the client package is
// the typed Go caller.
//
// Production posture, in order of the request lifecycle:
//
//   - a bounded in-flight semaphore sheds load with 429 + Retry-After
//     before any work happens (observability routes are exempt, so /metrics
//     and /v1/stats stay readable under overload);
//   - every route runs under a per-route timeout propagated as a
//     context.Context into the engine's cancellable executor, so an
//     expired budget or a disconnected client aborts scoring mid-matrix
//     instead of burning the worker pool;
//   - structured request logging (log/slog) and per-route Prometheus-text
//     metrics (request counts by code, latency histograms, in-flight
//     gauge, engine cache hit ratios) are recorded for every request;
//   - Serve drains in-flight requests on shutdown before returning.
package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"time"

	"github.com/stslib/sts/internal/engine"
	"github.com/stslib/sts/internal/stream"
	"github.com/stslib/sts/internal/version"
)

// Default serving knobs, overridable through Options.
const (
	// DefaultQueryTimeout bounds similarity/top-k/link requests.
	DefaultQueryTimeout = 30 * time.Second
	// DefaultIngestTimeout bounds ingestion and introspection requests.
	DefaultIngestTimeout = 10 * time.Second
	// DefaultMaxInFlight bounds concurrently admitted /v1 requests.
	DefaultMaxInFlight = 64
	// DefaultRetryAfter is the backoff hint attached to 429 responses.
	DefaultRetryAfter = time.Second
	// DefaultMaxBodyBytes caps request bodies (trajectory payloads).
	DefaultMaxBodyBytes = 32 << 20
	// DefaultTopK is the k used when a top-k query does not pass one.
	DefaultTopK = 10
)

// Options configures a Server. The zero value serves with the defaults
// above.
type Options struct {
	// QueryTimeout is the per-request budget of the scoring routes
	// (similarity, topk, link); 0 selects DefaultQueryTimeout, negative
	// disables the timeout.
	QueryTimeout time.Duration
	// IngestTimeout is the per-request budget of ingestion and
	// introspection routes; 0 selects DefaultIngestTimeout, negative
	// disables the timeout.
	IngestTimeout time.Duration
	// MaxInFlight bounds the number of /v1 requests admitted concurrently;
	// excess requests are rejected immediately with 429 and a Retry-After
	// hint rather than queued (queueing under overload only moves the
	// collapse later). 0 selects DefaultMaxInFlight, negative disables the
	// bound.
	MaxInFlight int
	// RetryAfter is the hint attached to 429 responses (0 selects
	// DefaultRetryAfter).
	RetryAfter time.Duration
	// MaxBodyBytes caps request bodies (0 selects DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// Strict applies dataset.ReadOptions.RejectUnsorted semantics to
	// ingested trajectories: out-of-time-order samples are rejected with
	// 400 instead of sorted.
	Strict bool
	// DefaultK is the k of top-k queries that do not pass one (0 selects
	// DefaultTopK).
	DefaultK int
	// Logger receives structured request logs (nil selects slog.Default).
	Logger *slog.Logger
	// Version is surfaced in /v1/stats (empty selects the build stamp of
	// the running binary).
	Version string
	// Watches is the standing-query registry behind the append and watch
	// routes (nil builds a fresh in-memory registry over the engine, so
	// the routes always exist; pass one to persist watch configurations or
	// tune webhook delivery).
	Watches *stream.Registry
}

// Server serves one engine's corpus over HTTP. It implements http.Handler;
// use Serve/ListenAndServe for the managed listener with graceful drain,
// or mount it on any mux. The engine is any engine.Service — a single
// *engine.Engine or the sharded coordinator; when the service also
// implements engine.ShardStater, /v1/stats grows per-shard sections and
// /metrics grows shard-labeled series.
type Server struct {
	eng     engine.Service
	opts    Options
	log     *slog.Logger
	metrics *metrics
	limiter *limiter
	watches *stream.Registry
	mux     *http.ServeMux
}

// New builds a Server over eng.
func New(eng engine.Service, opts Options) (*Server, error) {
	if eng == nil {
		return nil, errors.New("server: engine is required")
	}
	if opts.QueryTimeout == 0 {
		opts.QueryTimeout = DefaultQueryTimeout
	}
	if opts.IngestTimeout == 0 {
		opts.IngestTimeout = DefaultIngestTimeout
	}
	if opts.MaxInFlight == 0 {
		opts.MaxInFlight = DefaultMaxInFlight
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = DefaultRetryAfter
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if opts.DefaultK <= 0 {
		opts.DefaultK = DefaultTopK
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	if opts.Version == "" {
		opts.Version = version.String()
	}
	if opts.Watches == nil {
		reg, err := stream.NewRegistry(eng, stream.Options{})
		if err != nil {
			return nil, err
		}
		opts.Watches = reg
	}
	s := &Server{
		eng:     eng,
		opts:    opts,
		log:     opts.Logger,
		metrics: newMetrics(),
		limiter: newLimiter(opts.MaxInFlight),
		watches: opts.Watches,
		mux:     http.NewServeMux(),
	}
	s.routes()
	return s, nil
}

// routes binds every endpoint to the middleware stack. Route names are the
// metrics labels; scoring routes are admission-limited and run under the
// query timeout, ingestion/introspection routes under the ingest timeout,
// and observability routes bypass the limiter so they stay readable under
// overload.
func (s *Server) routes() {
	query := routeOpts{limited: true, timeout: s.opts.QueryTimeout}
	ingest := routeOpts{limited: true, timeout: s.opts.IngestTimeout}
	observe := routeOpts{quiet: true}

	s.handle("GET /healthz", "healthz", observe, s.handleHealthz)
	s.handle("GET /metrics", "metrics", observe, s.handleMetrics)
	s.handle("GET /v1/stats", "stats", routeOpts{}, s.handleStats)
	s.handle("POST /v1/snapshot", "snapshot", ingest, s.handleSnapshot)

	s.handle("GET /v1/trajectories", "list", ingest, s.handleList)
	s.handle("PUT /v1/trajectories/{id}", "put", ingest, s.handlePut)
	s.handle("GET /v1/trajectories/{id}", "get", ingest, s.handleGetTrajectory)
	s.handle("DELETE /v1/trajectories/{id}", "delete", ingest, s.handleDelete)
	s.handle("POST /v1/trajectories:batch", "batch", ingest, s.handleBatch)
	s.handle("POST /v1/trajectories/{idop}", "append", ingest, s.handleAppend)

	s.handle("GET /v1/watch", "watch_list", ingest, s.handleWatchList)
	s.handle("PUT /v1/watch/{name}", "watch_put", ingest, s.handleWatchPut)
	s.handle("DELETE /v1/watch/{name}", "watch_delete", ingest, s.handleWatchDelete)

	s.handle("GET /v1/similarity", "similarity", query, s.handleSimilarity)
	s.handle("GET /v1/topk", "topk", query, s.handleTopK)
	s.handle("POST /v1/link", "link", query, s.handleLink)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Serve accepts connections on ln until ctx is cancelled, then gracefully
// drains in-flight requests for up to drain (non-positive waits without
// bound) before returning. A clean drain returns nil.
func (s *Server) Serve(ctx context.Context, ln net.Listener, drain time.Duration) error {
	srv := &http.Server{
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
		ErrorLog:          slog.NewLogLogger(s.log.Handler(), slog.LevelWarn),
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	s.log.Info("serving", "addr", ln.Addr().String(), "version", s.opts.Version)
	select {
	case err := <-errc:
		return fmt.Errorf("server: %w", err)
	case <-ctx.Done():
	}
	s.log.Info("shutting down, draining in-flight requests", "drain", drain)
	sctx := context.Background()
	if drain > 0 {
		var cancel context.CancelFunc
		sctx, cancel = context.WithTimeout(sctx, drain)
		defer cancel()
	}
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("server: drain: %w", err)
	}
	s.log.Info("drained")
	return nil
}

// ListenAndServe is Serve on a fresh TCP listener bound to addr.
func (s *Server) ListenAndServe(ctx context.Context, addr string, drain time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	return s.Serve(ctx, ln, drain)
}
