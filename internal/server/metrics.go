package server

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/stslib/sts/internal/engine"
	"github.com/stslib/sts/internal/stream"
)

// latencyBuckets are the histogram upper bounds in seconds, spanning
// sub-millisecond cache hits through multi-second cold matrix queries.
var latencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// routeMetrics accumulates one route's counters. The mutex spans only
// counter bumps — nanoseconds against the milliseconds a scored request
// costs — so a finer atomic layout would buy nothing measurable.
type routeMetrics struct {
	mu      sync.Mutex
	codes   map[int]uint64 // responses by status code
	buckets []uint64       // latency histogram, one per latencyBuckets bound
	overflw uint64         // observations above the last bound (+Inf bucket)
	sumNs   uint64         // total latency in nanoseconds
	count   uint64         // total observations
}

// metrics is the server-wide registry. Routes register up front so the
// /metrics exposition is stable from the first scrape (a route that has
// served nothing still exports zeroed series).
type metrics struct {
	inflight atomic.Int64  // requests currently being served
	rejected atomic.Uint64 // requests shed by the admission limiter

	mu     sync.Mutex
	routes map[string]*routeMetrics
}

func newMetrics() *metrics {
	return &metrics{routes: make(map[string]*routeMetrics)}
}

func (m *metrics) register(route string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.routes[route]; !ok {
		m.routes[route] = &routeMetrics{
			codes:   make(map[int]uint64),
			buckets: make([]uint64, len(latencyBuckets)),
		}
	}
}

// observe records one finished request.
func (m *metrics) observe(route string, code int, elapsed time.Duration) {
	m.mu.Lock()
	rm := m.routes[route]
	m.mu.Unlock()
	if rm == nil {
		return // unregistered route; nothing to record against
	}
	secs := elapsed.Seconds()
	rm.mu.Lock()
	rm.codes[code]++
	placed := false
	for i, le := range latencyBuckets {
		if secs <= le {
			rm.buckets[i]++
			placed = true
			break
		}
	}
	if !placed {
		rm.overflw++
	}
	rm.sumNs += uint64(elapsed.Nanoseconds())
	rm.count++
	rm.mu.Unlock()
}

// render writes the Prometheus text exposition: request counters and
// latency histograms per route, the in-flight gauge and rejection counter,
// and — read live from the engine — corpus size and per-kind cache
// counters with hit ratios. On a sharded engine, store residency and the
// prune counters additionally export one shard-labeled series per
// partition next to the unlabeled rollup (sum the labeled series, not the
// family, when aggregating). The streaming registry contributes the
// append/standing-query/alert-delivery families (watch-labeled where a
// per-watch breakdown helps), rendered by renderStream below.
func (m *metrics) render(w io.Writer, eng engine.Service, reg *stream.Registry) {
	var shards []engine.ShardStat
	if st, ok := eng.(engine.ShardStater); ok {
		shards = st.ShardStats()
	}
	m.mu.Lock()
	names := make([]string, 0, len(m.routes))
	for name := range m.routes {
		names = append(names, name)
	}
	m.mu.Unlock()
	sort.Strings(names)

	fmt.Fprint(w, "# HELP sts_requests_total Requests served, by route and status code.\n# TYPE sts_requests_total counter\n")
	for _, name := range names {
		rm := m.route(name)
		rm.mu.Lock()
		codes := make([]int, 0, len(rm.codes))
		for c := range rm.codes {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "sts_requests_total{route=%q,code=%q} %d\n", name, strconv.Itoa(c), rm.codes[c])
		}
		rm.mu.Unlock()
	}

	fmt.Fprint(w, "# HELP sts_request_seconds Request latency, by route.\n# TYPE sts_request_seconds histogram\n")
	for _, name := range names {
		rm := m.route(name)
		rm.mu.Lock()
		cum := uint64(0)
		for i, le := range latencyBuckets {
			cum += rm.buckets[i]
			fmt.Fprintf(w, "sts_request_seconds_bucket{route=%q,le=%q} %d\n", name, formatFloat(le), cum)
		}
		cum += rm.overflw
		fmt.Fprintf(w, "sts_request_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(w, "sts_request_seconds_sum{route=%q} %s\n", name, formatFloat(float64(rm.sumNs)/1e9))
		fmt.Fprintf(w, "sts_request_seconds_count{route=%q} %d\n", name, rm.count)
		rm.mu.Unlock()
	}

	fmt.Fprint(w, "# HELP sts_inflight_requests Requests currently being served.\n# TYPE sts_inflight_requests gauge\n")
	fmt.Fprintf(w, "sts_inflight_requests %d\n", m.inflight.Load())
	fmt.Fprint(w, "# HELP sts_rejected_total Requests shed by the admission limiter (429s).\n# TYPE sts_rejected_total counter\n")
	fmt.Fprintf(w, "sts_rejected_total %d\n", m.rejected.Load())

	fmt.Fprint(w, "# HELP sts_corpus_size Trajectories in the engine corpus.\n# TYPE sts_corpus_size gauge\n")
	fmt.Fprintf(w, "sts_corpus_size %d\n", eng.Len())

	ss := eng.StoreStats()
	fmt.Fprint(w, "# HELP sts_store_resident_bytes Arena bytes resident in the columnar corpus store (live records plus dead slack awaiting GC).\n# TYPE sts_store_resident_bytes gauge\n")
	fmt.Fprintf(w, "sts_store_resident_bytes %d\n", ss.ArenaBytes)
	for _, sh := range shards {
		fmt.Fprintf(w, "sts_store_resident_bytes{shard=%q} %d\n", strconv.Itoa(sh.Shard), sh.Store.ArenaBytes)
	}
	fmt.Fprint(w, "# HELP sts_store_live_bytes Live encoded-record bytes in the columnar corpus store.\n# TYPE sts_store_live_bytes gauge\n")
	fmt.Fprintf(w, "sts_store_live_bytes %d\n", ss.LiveBytes)
	fmt.Fprint(w, "# HELP sts_wal_bytes Current write-ahead-log segment size (0 without persistence).\n# TYPE sts_wal_bytes gauge\n")
	fmt.Fprintf(w, "sts_wal_bytes %d\n", ss.WALBytes)
	fmt.Fprint(w, "# HELP sts_snapshot_total Store snapshots taken since open.\n# TYPE sts_snapshot_total counter\n")
	fmt.Fprintf(w, "sts_snapshot_total %d\n", ss.Snapshots)
	fmt.Fprint(w, "# HELP sts_snapshot_errors_total Store snapshot attempts that failed.\n# TYPE sts_snapshot_errors_total counter\n")
	fmt.Fprintf(w, "sts_snapshot_errors_total %d\n", ss.SnapshotErrors)
	fmt.Fprint(w, "# HELP sts_recovery_seconds Duration of the boot-time recovery (snapshot load + WAL replay).\n# TYPE sts_recovery_seconds gauge\n")
	fmt.Fprintf(w, "sts_recovery_seconds %s\n", formatFloat(ss.RecoverySeconds))
	fmt.Fprint(w, "# HELP sts_cache_warm_loaded_total Profiles warm-loaded from the derived-state sidecar at recovery.\n# TYPE sts_cache_warm_loaded_total counter\n")
	fmt.Fprintf(w, "sts_cache_warm_loaded_total %d\n", ss.WarmProfiles)
	fmt.Fprint(w, "# HELP sts_recovery_warm_seconds Duration of the sidecar warm load during recovery.\n# TYPE sts_recovery_warm_seconds gauge\n")
	fmt.Fprintf(w, "sts_recovery_warm_seconds %s\n", formatFloat(ss.WarmSeconds))
	fmt.Fprint(w, "# HELP sts_sidecar_writes_total Derived-state sidecar files written at snapshots.\n# TYPE sts_sidecar_writes_total counter\n")
	fmt.Fprintf(w, "sts_sidecar_writes_total %d\n", ss.SidecarWrites)
	fmt.Fprint(w, "# HELP sts_sidecar_errors_total Derived-state sidecar write attempts that failed.\n# TYPE sts_sidecar_errors_total counter\n")
	fmt.Fprintf(w, "sts_sidecar_errors_total %d\n", ss.SidecarErrors)

	ps := eng.PruneStats()
	fmt.Fprint(w, "# HELP sts_prune_considered_total Candidate pairs entering pruned (filter-and-refine) queries.\n# TYPE sts_prune_considered_total counter\n")
	fmt.Fprintf(w, "sts_prune_considered_total %d\n", ps.Considered)
	for _, sh := range shards {
		fmt.Fprintf(w, "sts_prune_considered_total{shard=%q} %d\n", strconv.Itoa(sh.Shard), sh.Prune.Considered)
	}
	fmt.Fprint(w, "# HELP sts_prune_ub_pruned_total Candidates decided by the admissible upper bound alone.\n# TYPE sts_prune_ub_pruned_total counter\n")
	fmt.Fprintf(w, "sts_prune_ub_pruned_total %d\n", ps.BoundPruned)
	for _, sh := range shards {
		fmt.Fprintf(w, "sts_prune_ub_pruned_total{shard=%q} %d\n", strconv.Itoa(sh.Shard), sh.Prune.BoundPruned)
	}
	fmt.Fprint(w, "# HELP sts_prune_early_exit_total Refinements abandoned once the threshold became unreachable.\n# TYPE sts_prune_early_exit_total counter\n")
	fmt.Fprintf(w, "sts_prune_early_exit_total %d\n", ps.EarlyExited)
	for _, sh := range shards {
		fmt.Fprintf(w, "sts_prune_early_exit_total{shard=%q} %d\n", strconv.Itoa(sh.Shard), sh.Prune.EarlyExited)
	}
	fmt.Fprint(w, "# HELP sts_prune_refined_total Refinements scored to completion.\n# TYPE sts_prune_refined_total counter\n")
	fmt.Fprintf(w, "sts_prune_refined_total %d\n", ps.Refined)
	for _, sh := range shards {
		fmt.Fprintf(w, "sts_prune_refined_total{shard=%q} %d\n", strconv.Itoa(sh.Shard), sh.Prune.Refined)
	}

	kinds := []struct {
		name  string
		stats engine.CacheStats
	}{{"prepared", eng.CacheStats()}}
	if eng.Profiled() {
		kinds = append(kinds, struct {
			name  string
			stats engine.CacheStats
		}{"profile", eng.ProfileCacheStats()})
	}
	fmt.Fprint(w, "# HELP sts_cache_hits_total Derived-state cache hits, by cache kind.\n# TYPE sts_cache_hits_total counter\n")
	for _, k := range kinds {
		fmt.Fprintf(w, "sts_cache_hits_total{cache=%q} %d\n", k.name, k.stats.Hits)
	}
	fmt.Fprint(w, "# HELP sts_cache_misses_total Derived-state cache misses, by cache kind.\n# TYPE sts_cache_misses_total counter\n")
	for _, k := range kinds {
		fmt.Fprintf(w, "sts_cache_misses_total{cache=%q} %d\n", k.name, k.stats.Misses)
	}
	fmt.Fprint(w, "# HELP sts_cache_evictions_total Derived-state cache evictions, by cache kind.\n# TYPE sts_cache_evictions_total counter\n")
	for _, k := range kinds {
		fmt.Fprintf(w, "sts_cache_evictions_total{cache=%q} %d\n", k.name, k.stats.Evictions)
	}
	fmt.Fprint(w, "# HELP sts_cache_size Cached derived-state entries, by cache kind.\n# TYPE sts_cache_size gauge\n")
	for _, k := range kinds {
		fmt.Fprintf(w, "sts_cache_size{cache=%q} %d\n", k.name, k.stats.Size)
	}
	fmt.Fprint(w, "# HELP sts_cache_hit_ratio Cache hit ratio since process start, by cache kind.\n# TYPE sts_cache_hit_ratio gauge\n")
	for _, k := range kinds {
		fmt.Fprintf(w, "sts_cache_hit_ratio{cache=%q} %s\n", k.name, formatFloat(k.stats.HitRate()))
	}
	fmt.Fprint(w, "# HELP sts_cache_resident_bytes Estimated heap bytes held by cached derived state, by cache kind.\n# TYPE sts_cache_resident_bytes gauge\n")
	for _, k := range kinds {
		fmt.Fprintf(w, "sts_cache_resident_bytes{cache=%q} %d\n", k.name, k.stats.Bytes)
	}

	if reg != nil {
		renderStream(w, reg.Stats())
	}
}

// renderStream writes the streaming subsystem's families: append ingest
// counters, standing-query evaluation counters with the per-append
// evaluation latency histogram, and webhook delivery outcomes. Alert and
// delivery counters additionally export one watch-labeled series per
// standing query next to the unlabeled rollup.
func renderStream(w io.Writer, st stream.Stats) {
	fmt.Fprint(w, "# HELP sts_append_total Sample-level trajectory appends evaluated by the streaming subsystem.\n# TYPE sts_append_total counter\n")
	fmt.Fprintf(w, "sts_append_total %d\n", st.Appends)
	fmt.Fprint(w, "# HELP sts_append_samples_total Samples ingested through appends.\n# TYPE sts_append_samples_total counter\n")
	fmt.Fprintf(w, "sts_append_samples_total %d\n", st.AppendedSamples)

	fmt.Fprint(w, "# HELP sts_watches Standing co-location queries registered.\n# TYPE sts_watches gauge\n")
	fmt.Fprintf(w, "sts_watches %d\n", len(st.Watches))
	fmt.Fprint(w, "# HELP sts_standing_evals_total Standing-query evaluations run against appended trajectories.\n# TYPE sts_standing_evals_total counter\n")
	fmt.Fprintf(w, "sts_standing_evals_total %d\n", st.Evals)
	fmt.Fprint(w, "# HELP sts_standing_pairs_total Candidate pairs scored by standing evaluations.\n# TYPE sts_standing_pairs_total counter\n")
	fmt.Fprintf(w, "sts_standing_pairs_total %d\n", st.Pairs)
	fmt.Fprint(w, "# HELP sts_standing_subthreshold_total Standing-query pairs disposed of below theta (upper-bound pruned or refined under it).\n# TYPE sts_standing_subthreshold_total counter\n")
	fmt.Fprintf(w, "sts_standing_subthreshold_total %d\n", st.Subthreshold)

	fmt.Fprint(w, "# HELP sts_alerts_total Standing-query alerts fired, by watch.\n# TYPE sts_alerts_total counter\n")
	fmt.Fprintf(w, "sts_alerts_total %d\n", st.Alerts)
	for _, ws := range st.Watches {
		fmt.Fprintf(w, "sts_alerts_total{watch=%q} %d\n", ws.Name, ws.Alerts)
	}
	fmt.Fprint(w, "# HELP sts_alerts_suppressed_total Threshold crossings silenced by the per-pair alert debounce, by watch.\n# TYPE sts_alerts_suppressed_total counter\n")
	fmt.Fprintf(w, "sts_alerts_suppressed_total %d\n", st.Suppressed)
	for _, ws := range st.Watches {
		fmt.Fprintf(w, "sts_alerts_suppressed_total{watch=%q} %d\n", ws.Name, ws.Suppressed)
	}
	fmt.Fprint(w, "# HELP sts_alert_delivered_total Alerts delivered to their webhook, by watch.\n# TYPE sts_alert_delivered_total counter\n")
	fmt.Fprintf(w, "sts_alert_delivered_total %d\n", st.Delivered)
	for _, ws := range st.Watches {
		fmt.Fprintf(w, "sts_alert_delivered_total{watch=%q} %d\n", ws.Name, ws.Delivered)
	}
	fmt.Fprint(w, "# HELP sts_alert_retries_total Webhook delivery retries.\n# TYPE sts_alert_retries_total counter\n")
	fmt.Fprintf(w, "sts_alert_retries_total %d\n", st.Retries)
	fmt.Fprint(w, "# HELP sts_alert_dead_letter_total Alerts abandoned after exhausting delivery attempts, by watch.\n# TYPE sts_alert_dead_letter_total counter\n")
	fmt.Fprintf(w, "sts_alert_dead_letter_total %d\n", st.DeadLettered)
	for _, ws := range st.Watches {
		fmt.Fprintf(w, "sts_alert_dead_letter_total{watch=%q} %d\n", ws.Name, ws.DeadLettered)
	}
	fmt.Fprint(w, "# HELP sts_alert_dropped_total Alerts shed because a delivery queue was full.\n# TYPE sts_alert_dropped_total counter\n")
	fmt.Fprintf(w, "sts_alert_dropped_total %d\n", st.Dropped)

	fmt.Fprint(w, "# HELP sts_standing_eval_seconds Standing-query evaluation latency per append.\n# TYPE sts_standing_eval_seconds histogram\n")
	h := st.EvalSeconds
	cum := uint64(0)
	for i, le := range h.Bounds {
		cum += h.Counts[i]
		fmt.Fprintf(w, "sts_standing_eval_seconds_bucket{le=%q} %d\n", formatFloat(le), cum)
	}
	cum += h.Overflow
	fmt.Fprintf(w, "sts_standing_eval_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "sts_standing_eval_seconds_sum %s\n", formatFloat(h.Sum))
	fmt.Fprintf(w, "sts_standing_eval_seconds_count %d\n", h.Count)
}

func (m *metrics) route(name string) *routeMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.routes[name]
}

// formatFloat renders a float the shortest way that round-trips, matching
// Prometheus exposition conventions.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
