package server_test

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"

	"github.com/stslib/sts/api"
	"github.com/stslib/sts/internal/server"
)

// TestTopKMinScoreRoundTrip pins the served min_score behavior against the
// plain top-k: the thresholded response is exactly the unthresholded one
// with sub-floor matches dropped, and serving it leaves the engine's prune
// counters visible in /v1/stats and /metrics.
func TestTopKMinScoreRoundTrip(t *testing.T) {
	_, eng, ds := mallWorld(t, 8)
	ts := newTestServer(t, eng, server.Options{})

	var br api.BatchResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/trajectories:batch",
		api.BatchRequest{Trajectories: api.FromDataset(ds)}, &br); code != http.StatusOK {
		t.Fatalf("batch ingest: code %d", code)
	}

	q := ds[0]
	var full api.TopKResponse
	url := fmt.Sprintf("%s/v1/topk?id=%s&k=%d", ts.URL, q.ID, len(ds))
	if code := doJSON(t, http.MethodGet, url, nil, &full); code != http.StatusOK {
		t.Fatalf("topk: code %d", code)
	}
	if len(full.Matches) == 0 {
		t.Fatal("plain topk returned no matches")
	}

	for _, floor := range []float64{0, 0.01, 0.1} {
		var thr api.TopKResponse
		url := fmt.Sprintf("%s/v1/topk?id=%s&k=%d&min_score=%g", ts.URL, q.ID, len(ds), floor)
		if code := doJSON(t, http.MethodGet, url, nil, &thr); code != http.StatusOK {
			t.Fatalf("topk min_score=%g: code %d", floor, code)
		}
		var want []api.Match
		for _, m := range full.Matches {
			if m.Score >= floor {
				want = append(want, m)
			}
		}
		if len(thr.Matches) != len(want) {
			t.Fatalf("min_score=%g: %d matches, want %d", floor, len(thr.Matches), len(want))
		}
		for i := range want {
			if thr.Matches[i].ID != want[i].ID {
				t.Fatalf("min_score=%g rank %d: %s, want %s", floor, i, thr.Matches[i].ID, want[i].ID)
			}
			if d := math.Abs(thr.Matches[i].Score - want[i].Score); d > 1e-12 {
				t.Fatalf("min_score=%g rank %d (%s): score %g, want %g",
					floor, i, thr.Matches[i].ID, thr.Matches[i].Score, want[i].Score)
			}
		}
	}

	// A malformed floor is a client error, not a silent default.
	for _, bad := range []string{"abc", "NaN"} {
		url := fmt.Sprintf("%s/v1/topk?id=%s&k=3&min_score=%s", ts.URL, q.ID, bad)
		if code := doJSON(t, http.MethodGet, url, nil, nil); code != http.StatusBadRequest {
			t.Fatalf("min_score=%s: code %d, want 400", bad, code)
		}
	}

	// The queries above ran the filter-and-refine path; its counters must
	// surface in the stats response...
	var st api.StatsResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil, &st); code != http.StatusOK {
		t.Fatalf("stats: code %d", code)
	}
	if st.Prune.Considered == 0 {
		t.Fatalf("stats report no prune traffic: %+v", st.Prune)
	}
	if st.Prune.BoundPruned+st.Prune.EarlyExited+st.Prune.Refined > st.Prune.Considered {
		t.Fatalf("inconsistent prune stats: %+v", st.Prune)
	}

	// ...and in the Prometheus exposition.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, metric := range []string{
		"sts_prune_considered_total",
		"sts_prune_ub_pruned_total",
		"sts_prune_early_exit_total",
		"sts_prune_refined_total",
	} {
		if !strings.Contains(text, "\n"+metric+" ") && !strings.HasPrefix(text, metric+" ") {
			t.Errorf("/metrics is missing %s", metric)
		}
	}
	if !strings.Contains(text, fmt.Sprintf("sts_prune_considered_total %d", st.Prune.Considered)) {
		// The counter may have advanced between the two reads only if more
		// queries ran; none did, so the values must agree.
		t.Errorf("/metrics sts_prune_considered_total does not match stats value %d", st.Prune.Considered)
	}
}
