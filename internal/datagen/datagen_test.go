package datagen

import (
	"math/rand"
	"testing"

	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/model"
)

func TestPeriodicTimes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	times := PeriodicTimes(0, 100, 10, 0, rng)
	if len(times) != 11 {
		t.Fatalf("got %d times", len(times))
	}
	for i, tt := range times {
		if tt != float64(i*10) {
			t.Fatalf("times[%d]=%v", i, tt)
		}
	}
	if got := PeriodicTimes(0, 100, 0, 0, rng); got != nil {
		t.Error("zero period should yield nil")
	}
	if got := PeriodicTimes(100, 0, 10, 0, rng); got != nil {
		t.Error("inverted range should yield nil")
	}
}

func TestPeriodicTimesJitterStaysOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	times := PeriodicTimes(0, 1000, 10, 3, rng)
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			t.Fatalf("jittered times out of order at %d", i)
		}
	}
}

func TestSporadicTimes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	times := SporadicTimes(0, 3600, 25, 5, 90, rng)
	if len(times) < 20 {
		t.Fatalf("only %d times over an hour", len(times))
	}
	for i := 1; i < len(times); i++ {
		gap := times[i] - times[i-1]
		if gap < 5-1e-9 || gap > 90+1e-9 {
			t.Fatalf("gap %v outside [5,90]", gap)
		}
	}
	if got := SporadicTimes(0, 100, 0, 1, 10, rng); got != nil {
		t.Error("zero mean gap should yield nil")
	}
}

func TestPathAtAndSample(t *testing.T) {
	p := Path{ID: "p", Waypoints: []model.Sample{
		{Loc: geo.Point{X: 0}, T: 0},
		{Loc: geo.Point{X: 10}, T: 10},
	}}
	if got := p.At(5); got != (geo.Point{X: 5}) {
		t.Errorf("At(5)=%v", got)
	}
	if got := p.At(-5); got != (geo.Point{X: 0}) {
		t.Errorf("At before start=%v", got)
	}
	if got := p.At(50); got != (geo.Point{X: 10}) {
		t.Errorf("At after end=%v", got)
	}
	tr := p.Sample([]float64{0, 2.5, 10})
	if tr.Len() != 3 || tr.Samples[1].Loc != (geo.Point{X: 2.5}) {
		t.Errorf("Sample=%v", tr)
	}
	if p.Duration() != 10 {
		t.Errorf("Duration=%v", p.Duration())
	}
}

func TestGenerateTaxiDeterministic(t *testing.T) {
	cfg := DefaultTaxiConfig(5)
	a, _ := GenerateTaxi(cfg)
	b, _ := GenerateTaxi(cfg)
	if len(a) != 5 || len(b) != 5 {
		t.Fatalf("lengths %d,%d", len(a), len(b))
	}
	for i := range a {
		if a[i].Len() != b[i].Len() {
			t.Fatalf("taxi %d: non-deterministic lengths", i)
		}
		for j := range a[i].Samples {
			if a[i].Samples[j] != b[i].Samples[j] {
				t.Fatalf("taxi %d sample %d differs", i, j)
			}
		}
	}
}

func TestGenerateTaxiProperties(t *testing.T) {
	cfg := DefaultTaxiConfig(8)
	ds, paths := GenerateTaxi(cfg)
	if len(ds) != 8 || len(paths) != 8 {
		t.Fatalf("counts %d,%d", len(ds), len(paths))
	}
	for i, tr := range ds {
		if err := tr.Validate(); err != nil {
			t.Fatalf("taxi %d invalid: %v", i, err)
		}
		if tr.Len() < 20 {
			t.Errorf("taxi %d too short: %d samples", i, tr.Len())
		}
		// 15-second reporting (floating-point accumulation tolerated).
		for j := 1; j < tr.Len(); j++ {
			if gap := tr.Samples[j].T - tr.Samples[j-1].T; gap < cfg.ReportPeriod-1e-6 || gap > cfg.ReportPeriod+1e-6 {
				t.Fatalf("taxi %d gap %v", i, gap)
			}
		}
		// Locations inside (or at the edge of) the city.
		for _, s := range tr.Samples {
			if s.Loc.X < -1 || s.Loc.X > cfg.CitySize+1 || s.Loc.Y < -1 || s.Loc.Y > cfg.CitySize+1 {
				t.Fatalf("taxi %d left the city: %v", i, s.Loc)
			}
		}
		// Speeds plausible for vehicles.
		for _, v := range tr.Speeds() {
			if v < 0 || v > 60 {
				t.Fatalf("taxi %d speed %v m/s", i, v)
			}
		}
	}
}

func TestGenerateMallProperties(t *testing.T) {
	cfg := DefaultMallConfig(8)
	ds, paths := GenerateMall(cfg)
	if len(ds) != 8 || len(paths) != 8 {
		t.Fatalf("counts %d,%d", len(ds), len(paths))
	}
	for i, tr := range ds {
		if err := tr.Validate(); err != nil {
			t.Fatalf("pedestrian %d invalid: %v", i, err)
		}
		if tr.Len() < 15 {
			t.Errorf("pedestrian %d too short: %d samples", i, tr.Len())
		}
		for _, s := range tr.Samples {
			if s.Loc.X < -1 || s.Loc.X > cfg.Width+1 || s.Loc.Y < -1 || s.Loc.Y > cfg.Height+1 {
				t.Fatalf("pedestrian %d left the mall: %v", i, s.Loc)
			}
		}
		// Walking speeds (dwells give 0).
		for _, v := range tr.Speeds() {
			if v < 0 || v > 4 {
				t.Fatalf("pedestrian %d speed %v m/s", i, v)
			}
		}
	}
}

func TestGenerateMallDeterministic(t *testing.T) {
	cfg := DefaultMallConfig(3)
	a, _ := GenerateMall(cfg)
	b, _ := GenerateMall(cfg)
	for i := range a {
		if a[i].Len() != b[i].Len() {
			t.Fatalf("pedestrian %d: non-deterministic", i)
		}
	}
	cfg2 := cfg
	cfg2.Seed = cfg.Seed + 1
	c, _ := GenerateMall(cfg2)
	same := true
	for i := range a {
		if a[i].Len() != c[i].Len() {
			same = false
			break
		}
	}
	if same {
		// Extremely unlikely all lengths coincide under a different seed
		// unless the seed is ignored.
		for i := range a {
			for j := range a[i].Samples {
				if a[i].Samples[j] != c[i].Samples[j] {
					same = false
					break
				}
			}
		}
		if same {
			t.Error("different seeds produced identical datasets")
		}
	}
}

func TestCompanionStaysClose(t *testing.T) {
	cfg := DefaultMallConfig(1)
	_, paths := GenerateMall(cfg)
	rng := rand.New(rand.NewSource(5))
	comp := Companion(paths[0], "buddy", DefaultCompanionConfig(), rng)
	if err := comp.Validate(); err != nil {
		t.Fatalf("companion invalid: %v", err)
	}
	if comp.Len() < 10 {
		t.Fatalf("companion too short: %d", comp.Len())
	}
	// Every companion sample must be near the leader's path position at
	// that time (lag 2 s, wobble 1.5 m, walking ≤ ~2 m/s ⇒ within ~12 m).
	for _, s := range comp.Samples {
		lead := paths[0].At(s.T)
		if s.Loc.Dist(lead) > 12 {
			t.Fatalf("companion strayed %v m at t=%v", s.Loc.Dist(lead), s.T)
		}
	}
	if got := Companion(Path{}, "x", DefaultCompanionConfig(), rng); got.Len() != 0 {
		t.Error("companion of empty path should be empty")
	}
}

func TestBurstyTimes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	times := BurstyTimes(0, 7200, 600, 4, 20, rng)
	if len(times) < 5 {
		t.Fatalf("only %d bursty times over two hours", len(times))
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			t.Fatalf("times out of order at %d", i)
		}
	}
	if times[len(times)-1] > 7200 {
		t.Error("time beyond the window")
	}
	// Bursts exist: some consecutive gaps are short, some long.
	short, long := 0, 0
	for i := 1; i < len(times); i++ {
		if g := times[i] - times[i-1]; g < 45 {
			short++
		} else if g > 200 {
			long++
		}
	}
	if short == 0 || long == 0 {
		t.Errorf("no burst structure: %d short, %d long gaps", short, long)
	}
	if got := BurstyTimes(0, 100, 0, 3, 5, rng); got != nil {
		t.Error("invalid params accepted")
	}
}
