package datagen

import (
	"math/rand"

	"github.com/stslib/sts/internal/model"
)

// CompanionConfig controls the synthesis of a companion: a second object
// following (almost) the same continuous path — two people walking
// together, the scenario behind the paper's contact-tracing and companion
// -detection motivation (Figure 1(b)).
type CompanionConfig struct {
	// Lag is the time offset of the companion along the path in seconds
	// (a friend half a step behind).
	Lag float64
	// Wobble is the standard deviation in meters of the companion's
	// independent positional deviation from the shared path (walking side
	// by side, not in lockstep).
	Wobble float64
	// MeanGap, MinGap, MaxGap shape the companion's own independent
	// sporadic sampling process; its observation times are asynchronous
	// with the first object's, exactly as in Figure 1(b).
	MeanGap, MinGap, MaxGap float64
}

// DefaultCompanionConfig returns a plausible walking-together setting.
func DefaultCompanionConfig() CompanionConfig {
	return CompanionConfig{Lag: 2, Wobble: 1.5, MeanGap: 25, MinGap: 5, MaxGap: 90}
}

// Companion samples a companion trajectory from path p: the same
// continuous movement, time-shifted by Lag, perturbed by Wobble, and
// observed at its own independent sporadic times.
func Companion(p Path, id string, cfg CompanionConfig, rng *rand.Rand) model.Trajectory {
	if len(p.Waypoints) == 0 {
		return model.Trajectory{ID: id}
	}
	start := p.Waypoints[0].T
	end := p.Waypoints[len(p.Waypoints)-1].T
	times := SporadicTimes(start, end, cfg.MeanGap, cfg.MinGap, cfg.MaxGap, rng)
	tr := model.Trajectory{ID: id, Samples: make([]model.Sample, 0, len(times))}
	for _, t := range times {
		loc := p.At(t - cfg.Lag)
		loc.X += cfg.Wobble * rng.NormFloat64()
		loc.Y += cfg.Wobble * rng.NormFloat64()
		tr.Samples = append(tr.Samples, model.Sample{Loc: loc, T: t})
	}
	return tr
}
