package datagen

import (
	"math"
	"math/rand"

	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/model"
)

// SynthConfig parameterizes the streaming synthetic workload: a large
// corpus of correlated-random-walk trajectories for capacity, persistence,
// and recovery testing (not a stand-in for the paper's datasets — mall and
// taxi are). Unlike GenerateMall/GenerateTaxi, trajectories are generated
// independently per index, so a million-trajectory corpus streams to disk
// without ever being resident.
type SynthConfig struct {
	// N is the number of trajectories.
	N int
	// AreaSize is the side length of the square area in meters.
	AreaSize float64
	// MeanSpeed is the walk speed in m/s.
	MeanSpeed float64
	// ReportPeriod is the sampling period in seconds.
	ReportPeriod float64
	// Samples is the number of samples per trajectory.
	Samples int
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultSynthConfig sizes the workload for recovery drills: short
// trajectories (30 samples) over a city-scale area.
func DefaultSynthConfig(n int) SynthConfig {
	return SynthConfig{
		N:            n,
		AreaSize:     10000,
		MeanSpeed:    5,
		ReportPeriod: 15,
		Samples:      30,
		Seed:         1,
	}
}

// SynthTrajectory generates the i-th trajectory of the workload. Each
// index seeds its own generator, so the result depends only on (cfg, i) —
// callers can generate any subset, in any order, in parallel, in O(1)
// memory.
func SynthTrajectory(cfg SynthConfig, i int) model.Trajectory {
	// splitmix64 over (Seed, i) decorrelates the per-index streams; adjacent
	// rand.NewSource seeds produce visibly correlated first draws.
	z := uint64(cfg.Seed)*0x9E3779B97F4A7C15 + uint64(i)*0xBF58476D1CE4E5B9
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	rng := rand.New(rand.NewSource(int64(z)))

	tr := model.Trajectory{ID: pathID("synth", i), Samples: make([]model.Sample, cfg.Samples)}
	loc := geo.Point{X: rng.Float64() * cfg.AreaSize, Y: rng.Float64() * cfg.AreaSize}
	heading := rng.Float64() * 2 * math.Pi
	t := rng.Float64() * 3600
	for k := range tr.Samples {
		tr.Samples[k] = model.Sample{Loc: loc, T: t}
		// Correlated walk: the heading drifts, so trajectories wander
		// instead of jittering in place.
		heading += (rng.Float64() - 0.5) * math.Pi / 2
		step := cfg.MeanSpeed * cfg.ReportPeriod * (0.5 + rng.Float64())
		loc.X += step * math.Cos(heading)
		loc.Y += step * math.Sin(heading)
		// Reflect at the area boundary.
		loc.X = reflect(loc.X, cfg.AreaSize)
		loc.Y = reflect(loc.Y, cfg.AreaSize)
		t += cfg.ReportPeriod * (0.8 + 0.4*rng.Float64())
	}
	return tr
}

// reflect folds v back into [0, size].
func reflect(v, size float64) float64 {
	if v < 0 {
		return -v
	}
	if v > size {
		return 2*size - v
	}
	return v
}
