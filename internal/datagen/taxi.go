package datagen

import (
	"math/rand"

	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/model"
)

// TaxiConfig parameterizes the synthetic city taxi workload standing in
// for the Porto taxi dataset.
type TaxiConfig struct {
	// N is the number of taxis (= trajectories).
	N int
	// CitySize is the side length of the square city in meters.
	CitySize float64
	// RoadSpacing is the distance between parallel roads of the grid
	// street network in meters.
	RoadSpacing float64
	// MedianSpeed is the median cruise speed across taxis in m/s; each
	// taxi draws a personal base speed log-normally around it.
	MedianSpeed float64
	// SpeedShape is the log-normal shape of the across-taxi speed spread.
	SpeedShape float64
	// MinDuration and MaxDuration bound trip durations in seconds.
	MinDuration, MaxDuration float64
	// ReportPeriod is the location reporting period in seconds (the Porto
	// terminals report every 15 s).
	ReportPeriod float64
	// StopProb is the probability of pausing at an intersection (traffic
	// lights, pickups); StopMin/StopMax bound the pause in seconds.
	// Constant-speed straight-line movement would make linear
	// interpolation exact, which no real taxi trace is.
	StopProb         float64
	StopMin, StopMax float64
	// SpeedJitter is the per-step multiplicative speed fluctuation
	// (traffic): each ~100 m of road is driven at base speed times a
	// uniform factor in [1-SpeedJitter, 1+SpeedJitter].
	SpeedJitter float64
	// Hotspots is the number of popular destinations (stations, malls,
	// airport). Real taxi corpora concentrate on a few attractors, which
	// is what makes trajectories confusable; without it every trip is
	// trivially distinct.
	Hotspots int
	// HotspotBias is the probability that a waypoint is drawn from the
	// hotspot set rather than uniformly.
	HotspotBias float64
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultTaxiConfig mirrors the scale of the paper's taxi setting: a
// city-sized area, 15-second reporting, and trips long enough to keep ≥ 20
// samples after filtering.
func DefaultTaxiConfig(n int) TaxiConfig {
	return TaxiConfig{
		N:            n,
		CitySize:     6000,
		RoadSpacing:  250,
		MedianSpeed:  10,
		SpeedShape:   0.25,
		MinDuration:  1200,
		MaxDuration:  2400,
		ReportPeriod: 15,
		StopProb:     0.4,
		StopMin:      5,
		StopMax:      45,
		SpeedJitter:  0.5,
		Hotspots:     6,
		HotspotBias:  0.65,
		Seed:         1,
	}
}

// GenerateTaxi synthesizes cfg.N taxi trajectories. Each taxi drives
// Manhattan routes between random intersections of a grid street network
// at a personalized speed (log-normal base speed with ±20% per-segment
// jitter) and reports its position periodically.
func GenerateTaxi(cfg TaxiConfig) (model.Dataset, []Path) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	cols := int(cfg.CitySize/cfg.RoadSpacing) + 1
	hotspots := make([]geo.Point, cfg.Hotspots)
	for i := range hotspots {
		hotspots[i] = geo.Point{
			X: float64(rng.Intn(cols)) * cfg.RoadSpacing,
			Y: float64(rng.Intn(cols)) * cfg.RoadSpacing,
		}
	}
	ds := make(model.Dataset, 0, cfg.N)
	paths := make([]Path, 0, cfg.N)
	for i := 0; i < cfg.N; i++ {
		p := taxiPath(cfg, pathID("taxi", i), hotspots, rng)
		times := PeriodicTimes(p.Waypoints[0].T, p.Waypoints[len(p.Waypoints)-1].T,
			cfg.ReportPeriod, 0, rng)
		ds = append(ds, p.Sample(times))
		paths = append(paths, p)
	}
	return ds, paths
}

// taxiPath builds one taxi's continuous path.
func taxiPath(cfg TaxiConfig, id string, hotspots []geo.Point, rng *rand.Rand) Path {
	cols := int(cfg.CitySize/cfg.RoadSpacing) + 1
	intersection := func() geo.Point {
		if len(hotspots) > 0 && rng.Float64() < cfg.HotspotBias {
			return hotspots[rng.Intn(len(hotspots))]
		}
		return geo.Point{
			X: float64(rng.Intn(cols)) * cfg.RoadSpacing,
			Y: float64(rng.Intn(cols)) * cfg.RoadSpacing,
		}
	}
	baseSpeed := lognormal(rng, cfg.MedianSpeed, cfg.SpeedShape)
	duration := cfg.MinDuration + rng.Float64()*(cfg.MaxDuration-cfg.MinDuration)
	start := rng.Float64() * 3600 // trips start within an hour-long window

	p := Path{ID: id}
	cur := intersection()
	t := start
	p.Waypoints = append(p.Waypoints, model.Sample{Loc: cur, T: t})
	for t-start < duration {
		dest := intersection()
		if dest == cur {
			continue
		}
		// Manhattan route: first along x, then along y (or the reverse),
		// broken at the corner.
		corner := geo.Point{X: dest.X, Y: cur.Y}
		if rng.Intn(2) == 0 {
			corner = geo.Point{X: cur.X, Y: dest.Y}
		}
		for _, wp := range []geo.Point{corner, dest} {
			d := cur.Dist(wp)
			if d == 0 {
				continue
			}
			// Drive the leg in ~100 m steps, each at its own speed, so
			// the position between reports is not a linear function of
			// time.
			steps := int(d/100) + 1
			from := cur
			for k := 1; k <= steps; k++ {
				next := from.Lerp(wp, float64(k)/float64(steps))
				jitter := 1 + cfg.SpeedJitter*(2*rng.Float64()-1)
				speed := baseSpeed * jitter
				if speed < 1 {
					speed = 1
				}
				t += cur.Dist(next) / speed
				cur = next
				p.Waypoints = append(p.Waypoints, model.Sample{Loc: cur, T: t})
			}
			// Pause at the intersection with some probability.
			if rng.Float64() < cfg.StopProb {
				t += cfg.StopMin + rng.Float64()*(cfg.StopMax-cfg.StopMin)
				p.Waypoints = append(p.Waypoints, model.Sample{Loc: cur, T: t})
			}
		}
	}
	return p
}
