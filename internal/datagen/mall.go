package datagen

import (
	"math/rand"

	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/model"
)

// MallConfig parameterizes the synthetic shopping-mall pedestrian workload
// standing in for the paper's WiFi-fingerprint dataset.
type MallConfig struct {
	// N is the number of pedestrians (= trajectories).
	N int
	// Width and Height are the floorplan extent in meters.
	Width, Height float64
	// CorridorSpacing is the grid pitch of the corridor network in meters.
	CorridorSpacing float64
	// MedianSpeed is the median walking speed across pedestrians (m/s);
	// each pedestrian draws a personal base speed log-normally around it,
	// matching the observation (paper's reference [26]) that walking
	// speed distributions differ per person.
	MedianSpeed float64
	// SpeedShape is the log-normal shape of the across-person spread.
	SpeedShape float64
	// Wobble is the lateral standard deviation in meters of the walker's
	// deviation from the straight corridor line. Real pedestrians weave,
	// cut corners and drift in open spaces; perfectly straight synthetic
	// paths would make linear-interpolation measures unrealistically
	// exact.
	Wobble float64
	// DwellProb is the probability of pausing at a corridor node (window
	// shopping / entering a store).
	DwellProb float64
	// DwellMin and DwellMax bound pause durations in seconds.
	DwellMin, DwellMax float64
	// MinDuration and MaxDuration bound a visit's duration in seconds.
	MinDuration, MaxDuration float64
	// MeanGap, MinGap and MaxGap shape the sporadic sampling process in
	// seconds: WiFi sightings arrive with independent clipped-exponential
	// gaps, heterogeneous across people and time.
	MeanGap, MinGap, MaxGap float64
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultMallConfig mirrors the paper's mall setting: a large floorplan,
// slow personalized walking speeds with dwell stops, and sporadic
// asynchronous sampling.
func DefaultMallConfig(n int) MallConfig {
	return MallConfig{
		N:               n,
		Width:           200,
		Height:          150,
		CorridorSpacing: 12,
		MedianSpeed:     1.1,
		SpeedShape:      0.2,
		Wobble:          1.2,
		DwellProb:       0.3,
		DwellMin:        20,
		DwellMax:        120,
		MinDuration:     1800,
		MaxDuration:     3600,
		MeanGap:         25,
		MinGap:          5,
		MaxGap:          90,
		Seed:            2,
	}
}

// GenerateMall synthesizes cfg.N pedestrian trajectories: random walks on
// a corridor grid with dwell stops, observed sporadically.
func GenerateMall(cfg MallConfig) (model.Dataset, []Path) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := make(model.Dataset, 0, cfg.N)
	paths := make([]Path, 0, cfg.N)
	for i := 0; i < cfg.N; i++ {
		p := mallPath(cfg, pathID("ped", i), rng)
		times := SporadicTimes(p.Waypoints[0].T, p.Waypoints[len(p.Waypoints)-1].T,
			cfg.MeanGap, cfg.MinGap, cfg.MaxGap, rng)
		tr := p.Sample(times)
		ds = append(ds, tr)
		paths = append(paths, p)
	}
	return ds, paths
}

// mallPath builds one pedestrian's continuous path: a random walk over
// the corridor grid with occasional dwell stops.
func mallPath(cfg MallConfig, id string, rng *rand.Rand) Path {
	cols := int(cfg.Width/cfg.CorridorSpacing) + 1
	rows := int(cfg.Height/cfg.CorridorSpacing) + 1
	node := func(c, r int) geo.Point {
		return geo.Point{X: float64(c) * cfg.CorridorSpacing, Y: float64(r) * cfg.CorridorSpacing}
	}
	bounds := geo.NewRect(geo.Point{}, geo.Point{X: cfg.Width, Y: cfg.Height})
	c, r := rng.Intn(cols), rng.Intn(rows)
	baseSpeed := lognormal(rng, cfg.MedianSpeed, cfg.SpeedShape)
	duration := cfg.MinDuration + rng.Float64()*(cfg.MaxDuration-cfg.MinDuration)
	start := rng.Float64() * 3600

	p := Path{ID: id}
	t := start
	cur := node(c, r)
	p.Waypoints = append(p.Waypoints, model.Sample{Loc: cur, T: t})
	// Biased random walk: keep a heading to avoid unrealistic jitter.
	dirs := [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}
	heading := rng.Intn(4)
	for t-start < duration {
		// Mostly continue straight; sometimes turn.
		if rng.Float64() < 0.4 {
			heading = rng.Intn(4)
		}
		nc, nr := c+dirs[heading][0], r+dirs[heading][1]
		if nc < 0 || nc >= cols || nr < 0 || nr >= rows {
			heading = rng.Intn(4)
			continue
		}
		c, r = nc, nr
		next := node(c, r)
		// Walk the corridor in short steps with lateral wobble so the
		// true path is not a perfect straight line.
		segLen := cur.Dist(next)
		steps := int(segLen/3) + 1
		dir := next.Sub(cur).Scale(1 / segLen)
		perp := geo.Point{X: -dir.Y, Y: dir.X}
		for k := 1; k <= steps; k++ {
			wp := cur.Lerp(next, float64(k)/float64(steps))
			if k < steps && cfg.Wobble > 0 {
				wp = wp.Add(perp.Scale(cfg.Wobble * rng.NormFloat64()))
				wp = bounds.Clamp(wp)
			}
			speed := baseSpeed * (0.85 + 0.3*rng.Float64())
			last := p.Waypoints[len(p.Waypoints)-1].Loc
			t += last.Dist(wp) / speed
			p.Waypoints = append(p.Waypoints, model.Sample{Loc: wp, T: t})
		}
		cur = next
		if rng.Float64() < cfg.DwellProb {
			dwell := cfg.DwellMin + rng.Float64()*(cfg.DwellMax-cfg.DwellMin)
			t += dwell
			p.Waypoints = append(p.Waypoints, model.Sample{Loc: cur, T: t})
		}
	}
	return p
}
