// Package datagen synthesizes the two evaluation workloads of Section VI-A.
//
// The paper evaluates on two proprietary datasets: GPS traces of the 442
// taxis of Porto (15-second reporting period) and WiFi-fingerprint
// positions of pedestrians in a large shopping mall (~3 m location error,
// sporadic sampling). Neither is shippable here, so this package generates
// synthetic equivalents that preserve the properties the experiments
// exercise:
//
//   - continuous ground-truth paths with per-object personalized speed
//     profiles (the property STS's KDE speed model exploits);
//   - realistic geometry: a road grid for the city, a corridor/store graph
//     for the mall;
//   - the same sampling protocols: periodic 15 s reports for taxis,
//     sporadic heterogeneous gaps for mall pedestrians;
//   - trajectories long enough (≥ 20 samples) to survive the paper's
//     filtering and sub-sampling protocols.
//
// All generation is deterministic given the seed.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/model"
)

// Path is a continuous ground-truth object path (Definition 1),
// represented densely as a time-stamped polyline. Sampling a Path at a set
// of times produces a Trajectory (Definition 2).
type Path struct {
	ID        string
	Waypoints []model.Sample
}

// Duration returns the path's time span.
func (p Path) Duration() float64 {
	if len(p.Waypoints) < 2 {
		return 0
	}
	return p.Waypoints[len(p.Waypoints)-1].T - p.Waypoints[0].T
}

// At returns the position on the path at time t, clamped to the path's
// time span.
func (p Path) At(t float64) geo.Point {
	tr := model.Trajectory{Samples: p.Waypoints}
	if t <= tr.Start() {
		return p.Waypoints[0].Loc
	}
	if t >= tr.End() {
		return p.Waypoints[len(p.Waypoints)-1].Loc
	}
	loc, _ := tr.InterpolateAt(t)
	return loc
}

// Sample observes the path at the given times, producing a trajectory.
// Times outside the path's span are clamped to its endpoints.
func (p Path) Sample(times []float64) model.Trajectory {
	tr := model.Trajectory{ID: p.ID, Samples: make([]model.Sample, 0, len(times))}
	for _, t := range times {
		tr.Samples = append(tr.Samples, model.Sample{Loc: p.At(t), T: t})
	}
	return tr
}

// PeriodicTimes returns sampling times start, start+period, ... ≤ end,
// with optional uniform jitter of ±jitter seconds per tick (timestamps
// stay strictly increasing for jitter < period/2).
func PeriodicTimes(start, end, period, jitter float64, rng *rand.Rand) []float64 {
	if period <= 0 || end < start {
		return nil
	}
	var out []float64
	for t := start; t <= end; t += period {
		tt := t
		if jitter > 0 {
			tt += (rng.Float64()*2 - 1) * jitter
		}
		out = append(out, tt)
	}
	return out
}

// SporadicTimes returns sampling times with independent exponential gaps
// of the given mean, clipped to [minGap, maxGap] — the sporadic,
// heterogeneous-rate observation process of CDR-like sensing systems.
func SporadicTimes(start, end, meanGap, minGap, maxGap float64, rng *rand.Rand) []float64 {
	if meanGap <= 0 || end < start {
		return nil
	}
	var out []float64
	t := start + rng.Float64()*minGap
	for t <= end {
		out = append(out, t)
		gap := rng.ExpFloat64() * meanGap
		if gap < minGap {
			gap = minGap
		}
		if gap > maxGap {
			gap = maxGap
		}
		t += gap
	}
	return out
}

// lognormal draws a log-normal variate with the given median and shape.
func lognormal(rng *rand.Rand, median, shape float64) float64 {
	return median * math.Exp(shape*rng.NormFloat64())
}

// pathID formats a stable object identifier.
func pathID(prefix string, i int) string { return fmt.Sprintf("%s-%04d", prefix, i) }

// BurstyTimes returns sampling times in bursts: activity windows arrive
// with exponential gaps of meanQuiet seconds, and within each window a
// handful of observations land close together — the call-detail-record
// (CDR) and mobile-payment sensing regime the paper's introduction
// motivates, far sparser and burstier than WiFi or GPS.
func BurstyTimes(start, end, meanQuiet float64, burstLen int, burstGap float64, rng *rand.Rand) []float64 {
	if meanQuiet <= 0 || burstLen < 1 || burstGap <= 0 || end < start {
		return nil
	}
	var out []float64
	t := start + rng.ExpFloat64()*meanQuiet/2
	for t <= end {
		n := 1 + rng.Intn(burstLen)
		for k := 0; k < n && t <= end; k++ {
			out = append(out, t)
			t += burstGap * (0.5 + rng.Float64())
		}
		t += rng.ExpFloat64() * meanQuiet
	}
	return out
}
