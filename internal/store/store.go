// Package store is the compact columnar trajectory corpus under the
// engine: per-trajectory records with delta-encoded varint timestamps and
// fixed-point (or lossless) coordinates, packed into shard-local arena
// blocks, optionally made durable by a write-ahead log plus periodic
// snapshots (Open). The engine consumes it through the Corpus interface
// and decodes records on demand into its prepared-state caches, so a
// resident trajectory costs tens of bytes per sample instead of a boxed
// []model.Sample.
package store

import (
	"errors"
	"fmt"
	"log/slog"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/model"
)

// Defaults of Options fields left zero.
const (
	DefaultShards      = 16
	DefaultBlockBytes  = 128 << 10
	DefaultDecodeCache = 1024
	// DefaultSnapshotEvery is the WAL growth between automatic snapshots.
	DefaultSnapshotEvery = 64 << 20
	// DefaultFsyncInterval batches WAL fsyncs.
	DefaultFsyncInterval = 50 * time.Millisecond
)

// StepForSigma derives the default coordinate quantization step from the
// measure's location-noise sigma: nine orders of magnitude below the noise,
// so the quantization error is far outside anything the similarity measure
// can resolve (the goldens in internal/experiments pin the resulting score
// deviation at ≤1e-9 against lossless storage).
func StepForSigma(sigma float64) float64 {
	if !(sigma > 0) || math.IsInf(sigma, 0) {
		return 0
	}
	return sigma * 1e-9
}

// Options configures a Store.
type Options struct {
	// CoordStep is the fixed-point coordinate quantization step in meters
	// applied to newly encoded records; 0 stores coordinates losslessly.
	// Records embed their step, so it can change across restarts without
	// invalidating existing data. Choose a step well below the measure's
	// noise sigma (StepForSigma).
	CoordStep float64
	// Shards is the number of independently locked shards (0 selects
	// DefaultShards).
	Shards int
	// BlockBytes is the arena block size (0 selects DefaultBlockBytes).
	BlockBytes int
	// DecodeCache bounds the decoded-trajectory LRU backing Get (0 selects
	// DefaultDecodeCache, negative disables caching).
	DecodeCache int
	// FsyncInterval batches WAL fsyncs: positive syncs at most that often
	// from a background loop, 0 selects DefaultFsyncInterval, and negative
	// never syncs explicitly (the OS decides). Use ExactFsync for
	// per-record durability. Only meaningful with Open.
	FsyncInterval time.Duration
	// SnapshotEvery triggers an automatic snapshot once the WAL has grown
	// by this many bytes (0 selects DefaultSnapshotEvery, negative disables
	// automatic snapshots). Only meaningful with Open.
	SnapshotEvery int64
	// Logger reports recovery and background-snapshot events (nil selects
	// slog.Default).
	Logger *slog.Logger
	// DisableSidecar turns off the derived-state sidecar (profiles.snap):
	// neither written during snapshots nor loaded during recovery. The
	// default (zero) keeps warm restarts on. Only meaningful with Open.
	DisableSidecar bool
}

// ExactFsync as Options.FsyncInterval syncs the WAL after every record.
const ExactFsync = time.Duration(1)

// ErrClosed reports a mutation against a closed store.
var ErrClosed = errors.New("store: closed")

// ErrNotFound reports a lookup of an unknown trajectory ID.
var ErrNotFound = errors.New("store: trajectory not found")

// Ref is a handle to one immutable encoded record. It embeds the record
// bytes, so decoding never consults mutable store state: a query holding a
// Ref snapshot observes the trajectory as of the snapshot even if the store
// mutates underneath. Gen is a store-wide monotone generation, unique per
// (re)encoded record and never zero — {ID, Gen} identifies a record version
// across the engine's derived-state caches.
type Ref struct {
	ID   string
	Gen  uint64
	N    int
	blob []byte
}

// IsZero reports whether r is the zero Ref.
func (r Ref) IsZero() bool { return r.Gen == 0 }

// EncodedBytes returns the size of the encoded record.
func (r Ref) EncodedBytes() int { return len(r.blob) }

// FirstTime returns the record's first (oldest) timestamp without
// decoding it — a handful of header bytes. Retention sweeps use it to
// skip trajectories whose head is already past the cutoff.
func (r Ref) FirstTime() (float64, error) {
	return recordFirstTime(r.blob)
}

// Decode materializes the record into a freshly allocated trajectory.
func (r Ref) Decode() (model.Trajectory, error) {
	samples, err := decodeInto(r.blob, nil)
	if err != nil {
		return model.Trajectory{}, fmt.Errorf("store: decode %q: %w", r.ID, err)
	}
	return model.Trajectory{ID: r.ID, Samples: samples}, nil
}

// Corpus is the engine-facing contract of a Store: corpus mutation, record
// resolution and decoding, and observability. *Store implements it.
type Corpus interface {
	Add(tr model.Trajectory) (Ref, error)
	Replace(tr model.Trajectory) (Ref, error)
	Append(id string, tail []model.Sample) (Ref, error)
	Remove(id string) error
	Get(id string) (model.Trajectory, bool)
	Len() int
	IDs() []string
	ForEach(fn func(Ref) error) error
	Bounds() (geo.Rect, bool)
	Stats() Stats
	Recovery() (RecoveryInfo, bool)
	Close() error
}

// Stats is a point-in-time snapshot of the store's footprint and
// persistence counters.
type Stats struct {
	// Records is the number of resident trajectories.
	Records int
	// LiveBytes is the sum of live encoded-record sizes.
	LiveBytes int64
	// ArenaBytes is the capacity of every arena block still referenced by
	// at least one live record (or open for appending) — the store's
	// resident footprint including dead record slack awaiting GC.
	ArenaBytes int64
	// CoordStep is the quantization step applied to new records (0 =
	// lossless).
	CoordStep float64
	// Persistent reports whether the store was opened on a data directory.
	Persistent bool
	// WALBytes is the current WAL segment's size; WALSeq its sequence
	// number. Zero on in-memory stores.
	WALBytes int64
	WALSeq   uint64
	// Snapshots and SnapshotErrors count snapshot attempts since open.
	Snapshots      uint64
	SnapshotErrors uint64
	// RecoverySeconds is the duration of the Open-time recovery (0 for
	// in-memory stores).
	RecoverySeconds float64
	// WarmProfiles is the number of derived-state sidecar entries
	// revalidated during recovery; WarmSeconds the sidecar load's duration.
	WarmProfiles int
	WarmSeconds  float64
	// SidecarWrites and SidecarErrors count sidecar write attempts since
	// open.
	SidecarWrites uint64
	SidecarErrors uint64
}

// block is one arena allocation; records are immutable subslices of buf.
// Blocks are never compacted: once live drops to zero (and the block is no
// longer the shard's append target) the accounting releases it and the GC
// reclaims it when the last snapshot Ref dies.
type block struct {
	buf  []byte
	live int
}

// rec is one resident record.
type rec struct {
	ref Ref
	blk *block
}

// shard is one independently locked slice of the store.
type shard struct {
	mu       sync.Mutex
	recs     map[string]*rec
	cur      *block
	scratch  []byte
	scratch2 []byte // second encode buffer for append frames
}

// Store is a sharded columnar trajectory corpus. All methods are safe for
// concurrent use.
type Store struct {
	blockBytes int
	coordStep  atomic.Uint64 // float64 bits
	gen        atomic.Uint64
	count      atomic.Int64
	liveBytes  atomic.Int64
	arenaBytes atomic.Int64
	shards     []shard
	dcache     *decodeCache
	log        *slog.Logger

	pers     *persistence // nil on in-memory stores
	snapMu   sync.Mutex   // serializes snapshots and Close
	snapping atomic.Bool
	recovery *RecoveryInfo

	// Derived-state sidecar plumbing (see sidecar.go).
	sidecarOff bool
	sideMu     sync.Mutex
	sideSrc    func() []SidecarEntry
	warm       []SidecarEntry
}

// New builds an in-memory store (no durability). See Open for a persistent
// one.
func New(opts Options) *Store {
	if opts.Shards <= 0 {
		opts.Shards = DefaultShards
	}
	if opts.BlockBytes <= 0 {
		opts.BlockBytes = DefaultBlockBytes
	}
	s := &Store{
		blockBytes: opts.BlockBytes,
		shards:     make([]shard, opts.Shards),
		log:        opts.Logger,
		sidecarOff: opts.DisableSidecar,
	}
	if s.log == nil {
		s.log = slog.Default()
	}
	for i := range s.shards {
		s.shards[i].recs = make(map[string]*rec)
	}
	s.SetCoordStep(opts.CoordStep)
	dcap := opts.DecodeCache
	if dcap == 0 {
		dcap = DefaultDecodeCache
	}
	if dcap > 0 {
		s.dcache = newDecodeCache(dcap)
	}
	return s
}

// SetCoordStep changes the quantization step applied to records encoded
// from now on (existing records are self-describing and unaffected).
// Steps that are not positive finite numbers select lossless storage.
func (s *Store) SetCoordStep(step float64) {
	if !(step > 0) || math.IsInf(step, 0) {
		step = 0
	}
	s.coordStep.Store(math.Float64bits(step))
}

// CoordStep returns the step applied to newly encoded records.
func (s *Store) CoordStep() float64 {
	return math.Float64frombits(s.coordStep.Load())
}

func (s *Store) shardOf(id string) *shard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return &s.shards[h%uint64(len(s.shards))]
}

// Add encodes and stores tr; the ID must not be resident yet.
func (s *Store) Add(tr model.Trajectory) (Ref, error) {
	return s.put(tr, opAdd, false)
}

// Replace encodes and stores tr, superseding any resident record with the
// same ID.
func (s *Store) Replace(tr model.Trajectory) (Ref, error) {
	return s.put(tr, opReplace, true)
}

func (s *Store) put(tr model.Trajectory, op byte, allowExisting bool) (Ref, error) {
	if tr.ID == "" {
		return Ref{}, errors.New("store: trajectory needs a non-empty ID")
	}
	if len(tr.Samples) == 0 {
		return Ref{}, fmt.Errorf("store: trajectory %q has no samples", tr.ID)
	}
	sh := s.shardOf(tr.ID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	old, exists := sh.recs[tr.ID]
	if exists && !allowExisting {
		return Ref{}, fmt.Errorf("store: trajectory %q already present", tr.ID)
	}
	sh.scratch = appendRecord(sh.scratch[:0], tr.Samples, s.CoordStep())
	// WAL first: a failed append leaves the store unchanged.
	if s.pers != nil {
		trigger, err := s.pers.append(op, tr.ID, sh.scratch)
		if err != nil {
			return Ref{}, err
		}
		if trigger {
			s.triggerSnapshot()
		}
	}
	ref := Ref{ID: tr.ID, Gen: s.gen.Add(1), N: len(tr.Samples)}
	s.placeLocked(sh, &ref, sh.scratch)
	if exists {
		s.dropLocked(sh, old)
	} else {
		s.count.Add(1)
	}
	sh.recs[tr.ID] = &rec{ref: ref, blk: sh.cur}
	s.liveBytes.Add(int64(len(ref.blob)))
	if s.dcache != nil {
		s.dcache.forget(tr.ID)
	}
	return ref, nil
}

// placeLocked copies the encoded record into the shard's arena and points
// ref.blob at the copy. Caller holds sh.mu.
func (s *Store) placeLocked(sh *shard, ref *Ref, encoded []byte) {
	need := len(encoded)
	if sh.cur == nil || cap(sh.cur.buf)-len(sh.cur.buf) < need {
		if sh.cur != nil && sh.cur.live == 0 {
			// The sealed block holds only dead records; release it.
			s.arenaBytes.Add(-int64(cap(sh.cur.buf)))
		}
		size := s.blockBytes
		if need > size {
			size = need
		}
		sh.cur = &block{buf: make([]byte, 0, size)}
		s.arenaBytes.Add(int64(size))
	}
	off := len(sh.cur.buf)
	sh.cur.buf = append(sh.cur.buf, encoded...)
	ref.blob = sh.cur.buf[off:len(sh.cur.buf):len(sh.cur.buf)]
	sh.cur.live++
}

// dropLocked releases one record's accounting. Caller holds sh.mu and
// removes or overwrites the map entry itself.
func (s *Store) dropLocked(sh *shard, r *rec) {
	s.liveBytes.Add(-int64(len(r.ref.blob)))
	r.blk.live--
	if r.blk.live == 0 && r.blk != sh.cur {
		s.arenaBytes.Add(-int64(cap(r.blk.buf)))
	}
}

// Append extends the resident record for id with a tail of samples, which
// must be finite, time-ordered, and strictly after the record's last
// timestamp. The WAL carries only the encoded tail plus the expected prior
// sample count (so replay over a snapshot that already contains the append
// is a no-op); the in-memory record is re-encoded in full under a fresh
// generation, exactly as Replace would produce it.
func (s *Store) Append(id string, tail []model.Sample) (Ref, error) {
	if id == "" {
		return Ref{}, errors.New("store: trajectory needs a non-empty ID")
	}
	if len(tail) == 0 {
		return Ref{}, fmt.Errorf("store: append to %q has no samples", id)
	}
	sh := s.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	old, ok := sh.recs[id]
	if !ok {
		return Ref{}, fmt.Errorf("store: trajectory %q: %w", id, ErrNotFound)
	}
	oldN := old.ref.N
	buf := make([]model.Sample, oldN+len(tail))
	base, err := decodeInto(old.ref.blob, buf[:oldN])
	if err != nil {
		return Ref{}, fmt.Errorf("store: decode %q: %w", id, err)
	}
	prevT := base[oldN-1].T
	for i, smp := range tail {
		if !smp.Loc.IsFinite() || math.IsNaN(smp.T) || math.IsInf(smp.T, 0) {
			return Ref{}, fmt.Errorf("store: append to %q: sample %d is not finite", id, i)
		}
		if !(smp.T > prevT) {
			return Ref{}, fmt.Errorf("store: append to %q: sample %d (t=%v) not after t=%v", id, i, smp.T, prevT)
		}
		prevT = smp.T
	}
	merged := append(base, tail...)
	step := s.CoordStep()
	// WAL first: only the delta is logged. A failed append leaves the store
	// unchanged.
	if s.pers != nil {
		sh.scratch = appendRecord(sh.scratch[:0], tail, step)
		sh.scratch2 = appendAppendBlob(sh.scratch2[:0], oldN, sh.scratch)
		trigger, err := s.pers.append(opAppend, id, sh.scratch2)
		if err != nil {
			return Ref{}, err
		}
		if trigger {
			s.triggerSnapshot()
		}
	}
	sh.scratch = appendRecord(sh.scratch[:0], merged, step)
	ref := Ref{ID: id, Gen: s.gen.Add(1), N: len(merged)}
	s.placeLocked(sh, &ref, sh.scratch)
	s.dropLocked(sh, old)
	sh.recs[id] = &rec{ref: ref, blk: sh.cur}
	s.liveBytes.Add(int64(len(ref.blob)))
	if s.dcache != nil {
		s.dcache.forget(id)
	}
	return ref, nil
}

// Remove deletes the record with the given ID.
func (s *Store) Remove(id string) error {
	sh := s.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	r, ok := sh.recs[id]
	if !ok {
		return fmt.Errorf("store: trajectory %q: %w", id, ErrNotFound)
	}
	if s.pers != nil {
		trigger, err := s.pers.append(opRemove, id, nil)
		if err != nil {
			return err
		}
		if trigger {
			s.triggerSnapshot()
		}
	}
	delete(sh.recs, id)
	s.dropLocked(sh, r)
	s.count.Add(-1)
	if s.dcache != nil {
		s.dcache.forget(id)
	}
	return nil
}

// applyReplay applies one recovered WAL or snapshot record, bypassing the
// WAL. Add and Replace both upsert — snapshot capture is concurrent with
// WAL appends, so replay must be idempotent.
func (s *Store) applyReplay(op byte, id string, blob []byte) error {
	switch op {
	case opAdd, opReplace:
		n, err := recordCount(blob)
		if err != nil {
			return err
		}
		sh := s.shardOf(id)
		sh.mu.Lock()
		defer sh.mu.Unlock()
		ref := Ref{ID: id, Gen: s.gen.Add(1), N: n}
		s.placeLocked(sh, &ref, blob)
		if old, ok := sh.recs[id]; ok {
			s.dropLocked(sh, old)
		} else {
			s.count.Add(1)
		}
		sh.recs[id] = &rec{ref: ref, blk: sh.cur}
		s.liveBytes.Add(int64(len(ref.blob)))
		return nil
	case opRemove:
		sh := s.shardOf(id)
		sh.mu.Lock()
		defer sh.mu.Unlock()
		if r, ok := sh.recs[id]; ok {
			delete(sh.recs, id)
			s.dropLocked(sh, r)
			s.count.Add(-1)
		}
		return nil
	case opAppend:
		oldN, tailRec, err := splitAppendBlob(blob)
		if err != nil {
			return err
		}
		tailN, err := recordCount(tailRec)
		if err != nil {
			return err
		}
		sh := s.shardOf(id)
		sh.mu.Lock()
		defer sh.mu.Unlock()
		r, ok := sh.recs[id]
		if !ok || r.ref.N != oldN {
			// The append is already reflected in the state replay started
			// from (snapshot capture is concurrent with WAL writes), or a
			// later frame supersedes this record. Skipping is the idempotent
			// move either way.
			return nil
		}
		buf := make([]model.Sample, oldN+tailN)
		if _, err := decodeInto(r.ref.blob, buf[:oldN]); err != nil {
			return err
		}
		if _, err := decodeInto(tailRec, buf[oldN:]); err != nil {
			return err
		}
		// Re-encode with the tail's embedded step — the store step active
		// when the append was logged — so the rebuilt record matches what
		// the live path produced.
		step, err := recordStep(tailRec)
		if err != nil {
			return err
		}
		sh.scratch = appendRecord(sh.scratch[:0], buf, step)
		ref := Ref{ID: id, Gen: s.gen.Add(1), N: len(buf)}
		s.placeLocked(sh, &ref, sh.scratch)
		s.dropLocked(sh, r)
		sh.recs[id] = &rec{ref: ref, blk: sh.cur}
		s.liveBytes.Add(int64(len(ref.blob)))
		return nil
	default:
		return fmt.Errorf("%w: unknown op %d", ErrCorrupt, op)
	}
}

// Resolve returns the resident record handle for id.
func (s *Store) Resolve(id string) (Ref, bool) {
	sh := s.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if r, ok := sh.recs[id]; ok {
		return r.ref, true
	}
	return Ref{}, false
}

// Get decodes the resident trajectory with the given ID. Decodes are served
// from a bounded LRU, so repeated lookups of the same record return the
// same backing array (pointer-stable for the engine's identity-keyed
// derived-state caches). Callers must not mutate the result.
func (s *Store) Get(id string) (model.Trajectory, bool) {
	ref, ok := s.Resolve(id)
	if !ok {
		return model.Trajectory{}, false
	}
	tr, err := s.Cached(ref)
	if err != nil {
		return model.Trajectory{}, false
	}
	return tr, true
}

// Cached decodes ref through the decode LRU (falling back to a fresh
// decode when caching is disabled or the cached generation moved on).
func (s *Store) Cached(ref Ref) (model.Trajectory, error) {
	if s.dcache == nil {
		return ref.Decode()
	}
	return s.dcache.get(ref)
}

// Len returns the number of resident trajectories.
func (s *Store) Len() int { return int(s.count.Load()) }

// IDs returns the resident trajectory IDs, sorted.
func (s *Store) IDs() []string {
	out := make([]string, 0, s.Len())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for id := range sh.recs {
			out = append(out, id)
		}
		sh.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

// ForEach calls fn with every resident record's Ref. Refs are captured
// shard by shard before fn runs, so fn may call back into the store.
func (s *Store) ForEach(fn func(Ref) error) error {
	for _, ref := range s.refs() {
		if err := fn(ref); err != nil {
			return err
		}
	}
	return nil
}

// refs snapshots every resident Ref, sorted by ID.
func (s *Store) refs() []Ref {
	out := make([]Ref, 0, s.Len())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, r := range sh.recs {
			out = append(out, r.ref)
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Bounds returns the spatial bounding rectangle of the resident corpus
// (ok=false when empty). It decodes record coordinate columns into one
// reused scratch buffer — cheap enough for boot-time scale derivation.
func (s *Store) Bounds() (geo.Rect, bool) {
	var (
		bounds  geo.Rect
		any     bool
		scratch []model.Sample
	)
	for _, ref := range s.refs() {
		r, sc, err := recordBounds(ref.blob, scratch)
		scratch = sc
		if err != nil {
			continue // unreachable for records the store encoded
		}
		if !any {
			bounds, any = r, true
		} else {
			bounds = bounds.Union(r)
		}
	}
	return bounds, any
}

// Stats returns a point-in-time footprint and persistence snapshot.
func (s *Store) Stats() Stats {
	st := Stats{
		Records:    s.Len(),
		LiveBytes:  s.liveBytes.Load(),
		ArenaBytes: s.arenaBytes.Load(),
		CoordStep:  s.CoordStep(),
	}
	if s.pers != nil {
		st.Persistent = true
		st.WALBytes, st.WALSeq = s.pers.walStats()
		st.Snapshots = s.pers.snapshots.Load()
		st.SnapshotErrors = s.pers.snapErrs.Load()
		st.SidecarWrites = s.pers.sidecarWrites.Load()
		st.SidecarErrors = s.pers.sidecarErrs.Load()
	}
	if s.recovery != nil {
		st.RecoverySeconds = s.recovery.Duration.Seconds()
		st.WarmProfiles = s.recovery.WarmProfiles
		st.WarmSeconds = s.recovery.WarmDuration.Seconds()
	}
	return st
}

// Recovery returns the Open-time recovery report (ok=false for in-memory
// stores).
func (s *Store) Recovery() (RecoveryInfo, bool) {
	if s.recovery == nil {
		return RecoveryInfo{}, false
	}
	return *s.recovery, true
}

// Close flushes and closes the WAL; further mutations fail with ErrClosed.
// In-memory stores close trivially.
func (s *Store) Close() error {
	if s.pers == nil {
		return nil
	}
	s.snapMu.Lock() // waits out an in-flight snapshot
	defer s.snapMu.Unlock()
	return s.pers.close()
}

// decodeCache is a bounded LRU of decoded trajectories keyed by ID, giving
// Get pointer-stable results across repeated lookups of the same record
// generation.
type decodeCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*decodeEntry
}

type decodeEntry struct {
	gen  uint64
	tr   model.Trajectory
	tick uint64
}

func newDecodeCache(capacity int) *decodeCache {
	return &decodeCache{cap: capacity, entries: make(map[string]*decodeEntry)}
}

var decodeTick atomic.Uint64

func (c *decodeCache) get(ref Ref) (model.Trajectory, error) {
	c.mu.Lock()
	if e, ok := c.entries[ref.ID]; ok && e.gen == ref.Gen {
		e.tick = decodeTick.Add(1)
		tr := e.tr
		c.mu.Unlock()
		return tr, nil
	}
	c.mu.Unlock()

	tr, err := ref.Decode()
	if err != nil {
		return model.Trajectory{}, err
	}

	c.mu.Lock()
	c.entries[ref.ID] = &decodeEntry{gen: ref.Gen, tr: tr, tick: decodeTick.Add(1)}
	if len(c.entries) > c.cap {
		c.evictLocked()
	}
	c.mu.Unlock()
	return tr, nil
}

// evictLocked drops the least recently used entry.
func (c *decodeCache) evictLocked() {
	var (
		victim string
		oldest = ^uint64(0)
	)
	for id, e := range c.entries {
		if e.tick < oldest {
			oldest, victim = e.tick, id
		}
	}
	delete(c.entries, victim)
}

func (c *decodeCache) forget(id string) {
	c.mu.Lock()
	delete(c.entries, id)
	c.mu.Unlock()
}
