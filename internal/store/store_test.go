package store

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/model"
)

// genTrajectory builds a deterministic synthetic trajectory.
func genTrajectory(id string, seed int64, n int) model.Trajectory {
	rng := rand.New(rand.NewSource(seed))
	tr := model.Trajectory{ID: id, Samples: make([]model.Sample, n)}
	x, y := rng.Float64()*1000, rng.Float64()*1000
	t := float64(rng.Intn(1000))
	for i := range tr.Samples {
		tr.Samples[i] = model.Sample{T: t, Loc: geo.Point{X: x, Y: y}}
		t += 1 + float64(rng.Intn(30))
		x += rng.NormFloat64() * 5
		y += rng.NormFloat64() * 5
	}
	return tr
}

func sameTrajectory(t *testing.T, got, want model.Trajectory) {
	t.Helper()
	if got.ID != want.ID {
		t.Fatalf("id %q != %q", got.ID, want.ID)
	}
	if len(got.Samples) != len(want.Samples) {
		t.Fatalf("%s: %d samples, want %d", got.ID, len(got.Samples), len(want.Samples))
	}
	for i := range got.Samples {
		if got.Samples[i] != want.Samples[i] {
			t.Fatalf("%s sample %d: %+v != %+v", got.ID, i, got.Samples[i], want.Samples[i])
		}
	}
}

// sameContent asserts the store holds exactly the given trajectories,
// id-for-id and sample-for-sample.
func sameContent(t *testing.T, s *Store, want map[string]model.Trajectory) {
	t.Helper()
	if s.Len() != len(want) {
		t.Fatalf("store has %d records, want %d", s.Len(), len(want))
	}
	for id, tr := range want {
		got, ok := s.Get(id)
		if !ok {
			t.Fatalf("record %q missing", id)
		}
		sameTrajectory(t, got, tr)
	}
}

func TestStoreMutationAndDecode(t *testing.T) {
	s := New(Options{})
	a := genTrajectory("a", 1, 20)
	b := genTrajectory("b", 2, 5)

	refA, err := s.Add(a)
	if err != nil {
		t.Fatal(err)
	}
	if refA.IsZero() || refA.N != 20 || refA.ID != "a" {
		t.Fatalf("bad ref %+v", refA)
	}
	if _, err := s.Add(a); err == nil {
		t.Fatal("duplicate Add succeeded")
	}
	if _, err := s.Add(b); err != nil {
		t.Fatal(err)
	}
	sameContent(t, s, map[string]model.Trajectory{"a": a, "b": b})

	// Decodes are pointer-stable while cached.
	g1, _ := s.Get("a")
	g2, _ := s.Get("a")
	if &g1.Samples[0] != &g2.Samples[0] {
		t.Fatal("repeated Get returned different backing arrays")
	}

	// Replace bumps the generation and changes what decodes.
	b2 := genTrajectory("b", 3, 9)
	refB2, err := s.Replace(b2)
	if err != nil {
		t.Fatal(err)
	}
	if refB2.Gen == 0 || refB2.N != 9 {
		t.Fatalf("bad ref %+v", refB2)
	}
	sameContent(t, s, map[string]model.Trajectory{"a": a, "b": b2})

	// The old ref still decodes the old content (snapshot semantics).
	old, err := refA.Decode()
	if err != nil {
		t.Fatal(err)
	}
	sameTrajectory(t, old, a)

	if err := s.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove("a"); err == nil {
		t.Fatal("double Remove succeeded")
	}
	sameContent(t, s, map[string]model.Trajectory{"b": b2})

	st := s.Stats()
	if st.Records != 1 || st.LiveBytes <= 0 || st.ArenaBytes < st.LiveBytes {
		t.Fatalf("implausible stats %+v", st)
	}
	if st.Persistent {
		t.Fatal("in-memory store claims persistence")
	}

	ids := s.IDs()
	if len(ids) != 1 || ids[0] != "b" {
		t.Fatalf("IDs = %v", ids)
	}
	bounds, ok := s.Bounds()
	if !ok || bounds.Width() < 0 {
		t.Fatalf("Bounds = %+v, %v", bounds, ok)
	}
}

func TestStoreQuantizedFootprint(t *testing.T) {
	lossless := New(Options{})
	quantized := New(Options{CoordStep: 0.001})
	for i := 0; i < 50; i++ {
		tr := genTrajectory(fmt.Sprintf("t%03d", i), int64(i), 50)
		if _, err := lossless.Add(tr); err != nil {
			t.Fatal(err)
		}
		if _, err := quantized.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	lb, qb := lossless.Stats().LiveBytes, quantized.Stats().LiveBytes
	if qb >= lb {
		t.Fatalf("quantized records (%d B) not smaller than lossless (%d B)", qb, lb)
	}
	// Both are far below the boxed []Sample footprint (24 B/sample payload
	// alone).
	boxed := int64(50 * 50 * 24)
	if lb >= boxed {
		t.Fatalf("lossless columnar (%d B) not below boxed samples (%d B)", lb, boxed)
	}
	// Quantized decode stays within step/2 of the original.
	tr := genTrajectory("t000", 0, 50)
	got, ok := quantized.Get("t000")
	if !ok {
		t.Fatal("t000 missing")
	}
	for i := range got.Samples {
		if d := math.Abs(got.Samples[i].Loc.X - tr.Samples[i].Loc.X); d > 0.0005001 {
			t.Fatalf("sample %d off by %v", i, d)
		}
	}
}

func TestStoreArenaReleasesDeadBlocks(t *testing.T) {
	s := New(Options{Shards: 1, BlockBytes: 1 << 10})
	for i := 0; i < 200; i++ {
		if _, err := s.Add(genTrajectory(fmt.Sprintf("t%03d", i), int64(i), 20)); err != nil {
			t.Fatal(err)
		}
	}
	grown := s.Stats().ArenaBytes
	for i := 0; i < 190; i++ {
		if err := s.Remove(fmt.Sprintf("t%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	shrunk := s.Stats().ArenaBytes
	if shrunk >= grown {
		t.Fatalf("arena did not release dead blocks: %d -> %d", grown, shrunk)
	}
	sameContent(t, s, trajMap(190, 200))
}

func trajMap(lo, hi int) map[string]model.Trajectory {
	out := make(map[string]model.Trajectory)
	for i := lo; i < hi; i++ {
		id := fmt.Sprintf("t%03d", i)
		out[id] = genTrajectory(id, int64(i), 20)
	}
	return out
}
