package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/stslib/sts/internal/model"
)

// openTest opens a persistent store on dir with per-record fsync and
// automatic snapshots disabled, so tests control durability points exactly.
func openTest(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir, Options{FsyncInterval: ExactFsync, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRecoveryWALOnly(t *testing.T) {
	dir := t.TempDir()
	want := make(map[string]model.Trajectory)

	s := openTest(t, dir)
	for i := 0; i < 30; i++ {
		tr := genTrajectory(fmt.Sprintf("t%03d", i), int64(i), 15)
		if _, err := s.Add(tr); err != nil {
			t.Fatal(err)
		}
		want[tr.ID] = tr
	}
	// Interleave every mutation kind.
	if err := s.Remove("t005"); err != nil {
		t.Fatal(err)
	}
	delete(want, "t005")
	rep := genTrajectory("t010", 999, 7)
	if _, err := s.Replace(rep); err != nil {
		t.Fatal(err)
	}
	want["t010"] = rep
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re := openTest(t, dir)
	defer re.Close()
	sameContent(t, re, want)
	info, ok := re.Recovery()
	if !ok || info.WALRecords != 32 || info.SnapshotRecords != 0 {
		t.Fatalf("recovery info %+v, ok=%v", info, ok)
	}
	if info.TruncatedBytes != 0 {
		t.Fatalf("clean shutdown truncated %d bytes", info.TruncatedBytes)
	}
}

func TestRecoverySnapshotPlusWALEqualsMemory(t *testing.T) {
	dir := t.TempDir()
	want := make(map[string]model.Trajectory)

	s := openTest(t, dir)
	for i := 0; i < 40; i++ {
		tr := genTrajectory(fmt.Sprintf("t%03d", i), int64(i), 12)
		if _, err := s.Add(tr); err != nil {
			t.Fatal(err)
		}
		want[tr.ID] = tr
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Mutations after the snapshot land in the WAL tail.
	for i := 40; i < 55; i++ {
		tr := genTrajectory(fmt.Sprintf("t%03d", i), int64(i), 12)
		if _, err := s.Add(tr); err != nil {
			t.Fatal(err)
		}
		want[tr.ID] = tr
	}
	if err := s.Remove("t000"); err != nil {
		t.Fatal(err)
	}
	delete(want, "t000")
	rep := genTrajectory("t041", 4141, 3)
	if _, err := s.Replace(rep); err != nil {
		t.Fatal(err)
	}
	want["t041"] = rep
	sameContent(t, s, want) // in-memory truth before the crash
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re := openTest(t, dir)
	defer re.Close()
	sameContent(t, re, want)
	info, _ := re.Recovery()
	if info.SnapshotRecords != 40 {
		t.Fatalf("expected 40 snapshot records, got %+v", info)
	}
	if info.WALRecords != 17 {
		t.Fatalf("expected 17 wal records, got %+v", info)
	}
}

func TestRecoveryTruncatesTornTail(t *testing.T) {
	for _, tc := range []struct {
		name string
		tear func(t *testing.T, wal string)
	}{
		{"truncated mid-record", func(t *testing.T, wal string) {
			fi, err := os.Stat(wal)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(wal, fi.Size()-7); err != nil {
				t.Fatal(err)
			}
		}},
		{"corrupted crc", func(t *testing.T, wal string) {
			raw, err := os.ReadFile(wal)
			if err != nil {
				t.Fatal(err)
			}
			raw[len(raw)-1] ^= 0xFF // flip a payload byte of the last record
			if err := os.WriteFile(wal, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"garbage appended", func(t *testing.T, wal string) {
			f, err := os.OpenFile(wal, os.O_APPEND|os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte{0xDE, 0xAD, 0xBE}); err != nil {
				t.Fatal(err)
			}
			f.Close()
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			want := make(map[string]model.Trajectory)
			s := openTest(t, dir)
			for i := 0; i < 10; i++ {
				tr := genTrajectory(fmt.Sprintf("t%03d", i), int64(i), 8)
				if _, err := s.Add(tr); err != nil {
					t.Fatal(err)
				}
				want[tr.ID] = tr
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			wal := onlyWAL(t, dir)
			tc.tear(t, wal)

			re := openTest(t, dir)
			defer re.Close()
			info, _ := re.Recovery()
			switch tc.name {
			case "truncated mid-record", "corrupted crc":
				// The last record is gone; the durable prefix survives.
				delete(want, "t009")
				if info.WALRecords != 9 || info.TruncatedBytes == 0 {
					t.Fatalf("recovery info %+v", info)
				}
			case "garbage appended":
				if info.WALRecords != 10 || info.TruncatedBytes != 3 {
					t.Fatalf("recovery info %+v", info)
				}
			}
			sameContent(t, re, want)

			// Recovery truncated the torn tail; a further reopen is clean.
			re.Close()
			re2 := openTest(t, dir)
			defer re2.Close()
			info2, _ := re2.Recovery()
			if info2.TruncatedBytes != 0 {
				t.Fatalf("second recovery still truncating: %+v", info2)
			}
			sameContent(t, re2, want)
		})
	}
}

// onlyWAL returns the path of the single non-empty WAL segment in dir.
func onlyWAL(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var found string
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), "wal-") {
			continue
		}
		fi, err := e.Info()
		if err != nil || fi.Size() == 0 {
			continue
		}
		if found != "" {
			t.Fatalf("multiple non-empty wal segments in %s", dir)
		}
		found = filepath.Join(dir, e.Name())
	}
	if found == "" {
		t.Fatal("no non-empty wal segment")
	}
	return found
}

func TestSnapshotPrunesOldSegments(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	for i := 0; i < 20; i++ {
		if _, err := s.Add(genTrajectory(fmt.Sprintf("t%03d", i), int64(i), 8)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Snapshots != 2 || st.SnapshotErrors != 0 {
		t.Fatalf("snapshot counters %+v", st)
	}
	var wals, snaps int
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		switch {
		case strings.HasPrefix(e.Name(), "wal-"):
			wals++
		case strings.HasPrefix(e.Name(), "snapshot-"):
			snaps++
		}
	}
	if wals != 1 || snaps != 1 {
		t.Fatalf("expected 1 wal + 1 snapshot after pruning, got %d + %d", wals, snaps)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add(genTrajectory("late", 1, 3)); err == nil {
		t.Fatal("mutation after Close succeeded")
	}
}

// TestConcurrentMutationAndSnapshot races mutators against frequent
// snapshots (run under -race), then verifies a reopened store equals the
// surviving in-memory content exactly.
func TestConcurrentMutationAndSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{FsyncInterval: -1, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}

	const (
		workers = 4
		rounds  = 60
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				id := fmt.Sprintf("w%d-t%02d", w, i%10)
				tr := genTrajectory(id, int64(w*1000+i), 6)
				switch i % 3 {
				case 0:
					if _, err := s.Replace(tr); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if _, err := s.Replace(tr); err != nil {
						t.Error(err)
						return
					}
					s.Get(id)
				case 2:
					s.Remove(id) // may or may not be present
				}
			}
		}(w)
	}
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for i := 0; i < 10; i++ {
			if err := s.Snapshot(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	snapWG.Wait()

	// Capture the surviving content, then crash-reopen and compare.
	want := make(map[string]model.Trajectory)
	for _, id := range s.IDs() {
		tr, ok := s.Get(id)
		if !ok {
			t.Fatalf("listed id %q not gettable", id)
		}
		want[id] = tr
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re := openTest(t, dir)
	defer re.Close()
	sameContent(t, re, want)
}
