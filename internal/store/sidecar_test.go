package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"github.com/stslib/sts/internal/model"
)

// sidecarBlob fabricates an opaque derived-state payload: the store never
// interprets it, so tests exercise the framing with synthetic bytes.
func sidecarBlob(id string, n int) []byte {
	b := []byte("profile:" + id + ":")
	for i := 0; i < n; i++ {
		b = append(b, byte(i*7+len(id)))
	}
	return b
}

// registerSidecar points the store's capture callback at a fixed entry set.
func registerSidecar(s *Store, entries []SidecarEntry) {
	s.SetSidecarSource(func() []SidecarEntry { return entries })
}

// TestSidecarRoundTrip pins the happy path: entries captured at snapshot
// time come back verbatim after a reopen, remapped to the recovered
// generations.
func TestSidecarRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	refs := make(map[string]Ref)
	var entries []SidecarEntry
	for i := 0; i < 12; i++ {
		tr := genTrajectory(fmt.Sprintf("t%03d", i), int64(i), 10)
		ref, err := s.Add(tr)
		if err != nil {
			t.Fatal(err)
		}
		refs[tr.ID] = ref
		entries = append(entries, SidecarEntry{ID: tr.ID, Gen: ref.Gen, Blob: sidecarBlob(tr.ID, 40)})
	}
	registerSidecar(s, entries)
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re := openTest(t, dir)
	defer re.Close()
	info, ok := re.Recovery()
	if !ok || info.WarmProfiles != len(entries) {
		t.Fatalf("recovery warm profiles = %d (ok=%v), want %d", info.WarmProfiles, ok, len(entries))
	}
	warm := re.WarmEntries()
	if len(warm) != len(entries) {
		t.Fatalf("warm entries = %d, want %d", len(warm), len(entries))
	}
	byID := make(map[string]SidecarEntry)
	for _, e := range warm {
		byID[e.ID] = e
	}
	for _, want := range entries {
		got, ok := byID[want.ID]
		if !ok {
			t.Fatalf("entry %q missing after reopen", want.ID)
		}
		if !bytes.Equal(got.Blob, want.Blob) {
			t.Fatalf("entry %q blob changed across restart", want.ID)
		}
		ref, ok := re.Resolve(want.ID)
		if !ok || got.Gen != ref.Gen {
			t.Fatalf("entry %q gen %d not remapped to recovered gen %d", want.ID, got.Gen, ref.Gen)
		}
	}
	if again := re.WarmEntries(); again != nil {
		t.Fatalf("second WarmEntries returned %d entries, want nil", len(again))
	}
	st := re.Stats()
	if st.WarmProfiles != len(entries) || st.WarmSeconds < 0 {
		t.Fatalf("stats warm fields %+v", st)
	}
}

// TestSidecarDiscardsChangedRecords pins the content-identity gate:
// entries for records that were replaced, appended to, or removed after
// capture are discarded; entries whose cache generation was already stale
// at capture time are never written.
func TestSidecarDiscardsChangedRecords(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	var entries []SidecarEntry
	for i := 0; i < 6; i++ {
		tr := genTrajectory(fmt.Sprintf("t%03d", i), int64(i), 10)
		ref, err := s.Add(tr)
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, SidecarEntry{ID: tr.ID, Gen: ref.Gen, Blob: sidecarBlob(tr.ID, 16)})
	}
	// A stale-gen entry: replace t000 after capturing its entry, so the
	// cache entry's generation no longer matches at snapshot time.
	if _, err := s.Replace(genTrajectory("t000", 999, 8)); err != nil {
		t.Fatal(err)
	}
	registerSidecar(s, entries)
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot mutations: these land in the WAL tail, so the reopened
	// corpus differs from the sidecar's view of t001/t002.
	if _, err := s.Replace(genTrajectory("t001", 998, 10)); err != nil {
		t.Fatal(err)
	}
	tr, ok := s.Get("t002")
	if !ok {
		t.Fatal("t002 missing")
	}
	tail := tr.Samples[len(tr.Samples)-1]
	tail.T += 30
	if _, err := s.Append("t002", []model.Sample{tail}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re := openTest(t, dir)
	defer re.Close()
	warm := re.WarmEntries()
	got := make(map[string]bool)
	for _, e := range warm {
		got[e.ID] = true
	}
	for _, id := range []string{"t000", "t001", "t002"} {
		if got[id] {
			t.Errorf("entry %q survived despite record change", id)
		}
	}
	for _, id := range []string{"t003", "t004", "t005"} {
		if !got[id] {
			t.Errorf("entry %q for unchanged record discarded", id)
		}
	}
}

// TestSidecarToleratesCorruption pins crash-safety: a torn tail or a
// flipped byte ends the warm load at the last good frame, and a recovery
// with no usable sidecar is simply cold — never an error.
func TestSidecarToleratesCorruption(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	var entries []SidecarEntry
	for i := 0; i < 8; i++ {
		tr := genTrajectory(fmt.Sprintf("t%03d", i), int64(i), 10)
		ref, err := s.Add(tr)
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, SidecarEntry{ID: tr.ID, Gen: ref.Gen, Blob: sidecarBlob(tr.ID, 32)})
	}
	registerSidecar(s, entries)
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, sidecarName)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Torn tail: truncating mid-frame loses at most the torn entries.
	if err := os.WriteFile(path, pristine[:len(pristine)-11], 0o644); err != nil {
		t.Fatal(err)
	}
	re := openTest(t, dir)
	warmTorn := len(re.WarmEntries())
	if warmTorn >= len(entries) || warmTorn < len(entries)-2 {
		t.Fatalf("torn tail loaded %d of %d entries", warmTorn, len(entries))
	}
	re.Close()

	// Byte flip mid-file: the CRC catches it and the load stops there.
	mut := append([]byte(nil), pristine...)
	mut[len(mut)/2] ^= 0xff
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	re = openTest(t, dir)
	if n := len(re.WarmEntries()); n >= len(entries) {
		t.Fatalf("corrupt sidecar loaded all %d entries", n)
	}
	re.Close()

	// Garbage header: fully cold, recovery still fine.
	if err := os.WriteFile(path, []byte("not a sidecar"), 0o644); err != nil {
		t.Fatal(err)
	}
	re = openTest(t, dir)
	if n := len(re.WarmEntries()); n != 0 {
		t.Fatalf("garbage sidecar loaded %d entries", n)
	}
	info, _ := re.Recovery()
	if info.WarmProfiles != 0 {
		t.Fatalf("garbage sidecar reported %d warm profiles", info.WarmProfiles)
	}
	re.Close()
}

// TestSidecarDisabled pins the opt-out: with DisableSidecar neither write
// nor load happens.
func TestSidecarDisabled(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{FsyncInterval: ExactFsync, SnapshotEvery: -1, DisableSidecar: true})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := s.Add(genTrajectory("t0", 1, 10))
	if err != nil {
		t.Fatal(err)
	}
	registerSidecar(s, []SidecarEntry{{ID: "t0", Gen: ref.Gen, Blob: sidecarBlob("t0", 8)}})
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, sidecarName)); !os.IsNotExist(err) {
		t.Fatalf("sidecar written despite DisableSidecar (stat err=%v)", err)
	}
}

// FuzzProfileSidecarRoundTrip hammers the sidecar file reader with
// mutations of a valid file: the load must never panic, never error out
// of recovery, and only ever return entries whose payload matches what a
// pristine write produced for that record.
func FuzzProfileSidecarRoundTrip(f *testing.F) {
	dir, err := os.MkdirTemp("", "sidecar-fuzz")
	if err != nil {
		f.Fatal(err)
	}
	defer os.RemoveAll(dir)
	s, err := Open(dir, Options{FsyncInterval: ExactFsync, SnapshotEvery: -1})
	if err != nil {
		f.Fatal(err)
	}
	blobs := make(map[string][]byte)
	var entries []SidecarEntry
	for i := 0; i < 5; i++ {
		tr := genTrajectory(fmt.Sprintf("t%03d", i), int64(i), 8)
		ref, err := s.Add(tr)
		if err != nil {
			f.Fatal(err)
		}
		blob := sidecarBlob(tr.ID, 24)
		blobs[tr.ID] = blob
		entries = append(entries, SidecarEntry{ID: tr.ID, Gen: ref.Gen, Blob: blob})
	}
	s.SetSidecarSource(func() []SidecarEntry { return entries })
	if err := s.Snapshot(); err != nil {
		f.Fatal(err)
	}
	if err := s.Close(); err != nil {
		f.Fatal(err)
	}
	pristine, err := os.ReadFile(filepath.Join(dir, sidecarName))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(pristine)
	f.Add(pristine[:len(pristine)/2])
	f.Add([]byte{})
	// A hand-built valid-framing file with a bogus entry payload.
	bogus := appendFrame(nil, []byte{sidecarVersion})
	payload := appendUvarintBytes(nil, "t000")
	payload = binary.AppendUvarint(payload, 9999) // wrong sample count
	payload = binary.LittleEndian.AppendUint32(payload, crc32.Checksum([]byte("x"), castagnoli))
	payload = append(payload, "junk"...)
	bogus = appendFrame(bogus, payload)
	f.Add(bogus)

	f.Fuzz(func(t *testing.T, data []byte) {
		fdir := t.TempDir()
		// Copy the corpus files, then drop the fuzzed bytes in as the
		// sidecar: recovery must come up regardless.
		srcEntries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range srcEntries {
			if e.Name() == sidecarName {
				continue
			}
			raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(fdir, e.Name()), raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		if err := os.WriteFile(filepath.Join(fdir, sidecarName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := Open(fdir, Options{FsyncInterval: ExactFsync, SnapshotEvery: -1})
		if err != nil {
			t.Fatalf("recovery failed on fuzzed sidecar: %v", err)
		}
		defer re.Close()
		for _, e := range re.WarmEntries() {
			want, ok := blobs[e.ID]
			if !ok {
				t.Fatalf("warm entry for unknown record %q", e.ID)
			}
			ref, ok := re.Resolve(e.ID)
			if !ok || e.Gen != ref.Gen {
				t.Fatalf("warm entry %q gen %d not the recovered gen", e.ID, e.Gen)
			}
			// A loaded entry passed the content gate; its payload must be the
			// byte-exact captured blob unless the fuzzer forged a matching
			// record checksum for different profile bytes — which the framing
			// CRC makes vanishingly unlikely, and equality is exactly what we
			// assert.
			if !bytes.Equal(e.Blob, want) {
				t.Fatalf("warm entry %q payload differs from capture", e.ID)
			}
		}
	})
}
