package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/model"
)

// extend splits tr into a base of n samples and the remaining tail.
func extend(tr model.Trajectory, n int) (model.Trajectory, []model.Sample) {
	return model.Trajectory{ID: tr.ID, Samples: tr.Samples[:n]}, tr.Samples[n:]
}

// latestWAL returns the highest-sequence WAL segment (possibly empty — the
// live segment right after a snapshot rotation).
func latestWAL(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var last string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "wal-") && e.Name() > last {
			last = e.Name()
		}
	}
	if last == "" {
		t.Fatal("no wal segment")
	}
	return filepath.Join(dir, last)
}

func TestStoreAppend(t *testing.T) {
	s := New(Options{})
	defer s.Close()
	full := genTrajectory("a", 1, 12)
	base, tail := extend(full, 5)
	r0, err := s.Add(base)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := s.Append("a", tail[:3])
	if err != nil {
		t.Fatal(err)
	}
	if r1.N != 8 || r1.Gen <= r0.Gen {
		t.Fatalf("ref after append %+v (was %+v)", r1, r0)
	}
	r2, err := s.Append("a", tail[3:])
	if err != nil {
		t.Fatal(err)
	}
	if r2.N != 12 || r2.Gen <= r1.Gen {
		t.Fatalf("ref after second append %+v", r2)
	}
	sameContent(t, s, map[string]model.Trajectory{"a": full})

	// A stale ref keeps decoding its own generation's bytes.
	old, err := s.Cached(r1)
	if err != nil {
		t.Fatal(err)
	}
	sameTrajectory(t, old, model.Trajectory{ID: "a", Samples: full.Samples[:8]})
}

func TestStoreAppendRejectsInvalid(t *testing.T) {
	s := New(Options{})
	defer s.Close()
	full := genTrajectory("a", 2, 8)
	base, tail := extend(full, 6)
	if _, err := s.Add(base); err != nil {
		t.Fatal(err)
	}
	end := base.Samples[len(base.Samples)-1]
	for name, tc := range map[string]struct {
		id   string
		tail []model.Sample
		want error
	}{
		"missing id": {"nope", tail, ErrNotFound},
		"empty id":   {"", tail, nil},
		"empty tail": {"a", nil, nil},
		"stale time": {"a", []model.Sample{end}, nil},
		"reorder":    {"a", []model.Sample{tail[1], tail[0]}, nil},
		"nan coord":  {"a", []model.Sample{{T: end.T + 1, Loc: geo.Point{X: math.NaN()}}}, nil},
		"inf time":   {"a", []model.Sample{{T: math.Inf(1)}}, nil},
	} {
		_, err := s.Append(tc.id, tc.tail)
		if err == nil {
			t.Errorf("%s: accepted", name)
		} else if tc.want != nil && !errors.Is(err, tc.want) {
			t.Errorf("%s: error %v, want %v", name, err, tc.want)
		}
	}
	// The rejected appends must not have disturbed the resident record.
	sameContent(t, s, map[string]model.Trajectory{"a": base})
}

// TestAppendRecovery replays appends from the WAL, through snapshots, and
// through a post-snapshot WAL tail: the reopened store must always hold the
// fully extended trajectories.
func TestAppendRecovery(t *testing.T) {
	dir := t.TempDir()
	want := make(map[string]model.Trajectory)
	s := openTest(t, dir)
	for i := 0; i < 8; i++ {
		full := genTrajectory(fmt.Sprintf("t%02d", i), int64(i), 12)
		base, tail := extend(full, 4)
		if _, err := s.Add(base); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Append(full.ID, tail[:5]); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if _, err := s.Append(full.ID, tail[5:]); err != nil {
				t.Fatal(err)
			}
			want[full.ID] = full
		} else {
			want[full.ID] = model.Trajectory{ID: full.ID, Samples: full.Samples[:9]}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re := openTest(t, dir)
	sameContent(t, re, want)
	if info, _ := re.Recovery(); info.WALRecords != 20 || info.SnapshotRecords != 0 {
		t.Fatalf("recovery info %+v", info)
	}

	// Snapshot the appended state, extend further into the WAL tail, crash.
	// (Open may also have kicked off a background compaction snapshot; both
	// serialize on the snapshot lock, so content stays exact either way.)
	if err := re.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 8; i += 2 {
		id := fmt.Sprintf("t%02d", i)
		full := genTrajectory(id, int64(i), 12)
		if _, err := re.Append(id, full.Samples[9:]); err != nil {
			t.Fatal(err)
		}
		want[id] = full
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2 := openTest(t, dir)
	defer re2.Close()
	sameContent(t, re2, want)
	if info, _ := re2.Recovery(); info.SnapshotRecords != 8 || info.TruncatedBytes != 0 {
		t.Fatalf("recovery info %+v", info)
	}
}

// TestAppendReplayIdempotent pins the crash-overlap rule: an opAppend frame
// whose base count does not match the resident record (because a snapshot
// captured the post-append state before the crash) must be skipped on
// replay, not applied twice.
func TestAppendReplayIdempotent(t *testing.T) {
	dir := t.TempDir()
	full := genTrajectory("a", 9, 10)
	base, tail := extend(full, 6)
	s := openTest(t, dir)
	if _, err := s.Add(base); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append("a", tail); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(); err != nil { // snapshot already holds the tail
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Re-write the same append frame into the live WAL segment, simulating
	// the window where the snapshot captured state that frames after the
	// rotation point also describe.
	wal := latestWAL(t, dir)
	var payload []byte
	payload = append(payload, opAppend)
	payload = binary.AppendUvarint(payload, uint64(len("a")))
	payload = append(payload, "a"...)
	blob := appendAppendBlob(nil, 6, appendRecord(nil, tail, 0))
	payload = append(payload, blob...)
	f, err := os.OpenFile(wal, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(appendFrame(nil, payload)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re := openTest(t, dir)
	defer re.Close()
	sameContent(t, re, map[string]model.Trajectory{"a": full})
	if info, _ := re.Recovery(); info.TruncatedBytes != 0 {
		t.Fatalf("idempotent skip misread as torn tail: %+v", info)
	}
}

// TestAppendTornTail tears the WAL inside the append frame: the base record
// must survive, the torn tail must be dropped, and a further reopen must be
// clean.
func TestAppendTornTail(t *testing.T) {
	dir := t.TempDir()
	full := genTrajectory("a", 4, 10)
	base, tail := extend(full, 7)
	s := openTest(t, dir)
	if _, err := s.Add(base); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append("a", tail); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	wal := onlyWAL(t, dir)
	fi, err := os.Stat(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(wal, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	re := openTest(t, dir)
	sameContent(t, re, map[string]model.Trajectory{"a": base})
	info, _ := re.Recovery()
	if info.WALRecords != 1 || info.TruncatedBytes == 0 {
		t.Fatalf("recovery info %+v", info)
	}
	re.Close()
	re2 := openTest(t, dir)
	defer re2.Close()
	sameContent(t, re2, map[string]model.Trajectory{"a": base})
}

// TestAppendQuantizedStore appends through a coordinate-quantizing store:
// the merged record re-quantizes with the tail's embedded step on replay.
func TestAppendQuantizedStore(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{FsyncInterval: ExactFsync, SnapshotEvery: -1, CoordStep: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	full := genTrajectory("a", 11, 9)
	for i := range full.Samples { // pre-quantize so equality is exact
		full.Samples[i].Loc.X = math.Round(full.Samples[i].Loc.X*2) / 2
		full.Samples[i].Loc.Y = math.Round(full.Samples[i].Loc.Y*2) / 2
	}
	base, tail := extend(full, 5)
	if _, err := s.Add(base); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append("a", tail); err != nil {
		t.Fatal(err)
	}
	sameContent(t, s, map[string]model.Trajectory{"a": full})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, Options{FsyncInterval: ExactFsync, SnapshotEvery: -1, CoordStep: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	sameContent(t, re, map[string]model.Trajectory{"a": full})
}

// FuzzAppendBlobRoundTrip fuzzes the opAppend blob codec: encode/decode
// round-trips, and arbitrary bytes either decode or fail with ErrCorrupt —
// never panic.
func FuzzAppendBlobRoundTrip(f *testing.F) {
	f.Add(uint16(0), []byte{})
	f.Add(uint16(3), []byte{1, 2, 3})
	f.Add(uint16(65535), []byte{0xFF})
	f.Fuzz(func(t *testing.T, oldN uint16, tail []byte) {
		blob := appendAppendBlob(nil, int(oldN), tail)
		gotN, gotTail, err := splitAppendBlob(blob)
		if len(tail) == 0 {
			if err == nil {
				t.Fatal("empty tail record accepted")
			}
			return
		}
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if gotN != int(oldN) || string(gotTail) != string(tail) {
			t.Fatalf("round trip mismatch: n %d tail %x", gotN, gotTail)
		}

		// Arbitrary prefixes must fail cleanly, not panic.
		for cut := 0; cut < len(blob); cut++ {
			if _, _, err := splitAppendBlob(blob[:cut]); err != nil && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("non-ErrCorrupt error %v", err)
			}
		}
	})
}
