package store

import (
	"encoding/binary"
	"math"
	"testing"

	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/model"
)

func samplesOf(vals ...[3]float64) []model.Sample {
	out := make([]model.Sample, len(vals))
	for i, v := range vals {
		out[i] = model.Sample{T: v[0], Loc: geo.Point{X: v[1], Y: v[2]}}
	}
	return out
}

func TestOrderBitsRoundTripAndOrder(t *testing.T) {
	vals := []float64{math.Inf(-1), -math.MaxFloat64, -1.5, -math.SmallestNonzeroFloat64,
		math.Copysign(0, -1), 0, math.SmallestNonzeroFloat64, 1.0, 1.0000000000000002,
		12345.678, math.MaxFloat64, math.Inf(1)}
	for i, f := range vals {
		if got := unorderBits(orderBits(f)); math.Float64bits(got) != math.Float64bits(f) {
			t.Fatalf("round trip of %v: got %v", f, got)
		}
		if i > 0 && uint64(orderBits(vals[i-1])) >= uint64(orderBits(f)) {
			t.Fatalf("order not preserved between %v and %v", vals[i-1], f)
		}
	}
	// NaN round-trips bit-exactly too (ordering is unspecified).
	nan := math.Float64bits(math.NaN())
	if got := math.Float64bits(unorderBits(orderBits(math.NaN()))); got != nan {
		t.Fatalf("NaN bits changed: %#x != %#x", got, nan)
	}
}

func TestRecordRoundTripLossless(t *testing.T) {
	cases := [][]model.Sample{
		samplesOf([3]float64{0, 0, 0}),
		samplesOf([3]float64{1, 10.5, -3.25}, [3]float64{2, 11.5, -3}, [3]float64{4, 12, 0}),
		// Non-integer timestamps force the float-bit time encoding.
		samplesOf([3]float64{0.5, 1e-300, -1e300}, [3]float64{1.25, math.MaxFloat64, math.SmallestNonzeroFloat64}),
		// Non-monotonic gaps and duplicate timestamps must survive the
		// codec — ordering policy belongs to validation, not storage.
		samplesOf([3]float64{10, 1, 1}, [3]float64{3, 2, 2}, [3]float64{3, 3, 3}),
		// Extreme magnitudes around the integer-time cutoff.
		samplesOf([3]float64{float64(int64(1) << 61), 5, 5}, [3]float64{1e300, 6, 6}),
	}
	for ci, samples := range cases {
		blob := appendRecord(nil, samples, 0)
		got, err := decodeInto(blob, nil)
		if err != nil {
			t.Fatalf("case %d: decode: %v", ci, err)
		}
		if len(got) != len(samples) {
			t.Fatalf("case %d: got %d samples, want %d", ci, len(got), len(samples))
		}
		for i := range got {
			if math.Float64bits(got[i].T) != math.Float64bits(samples[i].T) ||
				math.Float64bits(got[i].Loc.X) != math.Float64bits(samples[i].Loc.X) ||
				math.Float64bits(got[i].Loc.Y) != math.Float64bits(samples[i].Loc.Y) {
				t.Fatalf("case %d sample %d: got %+v, want %+v", ci, i, got[i], samples[i])
			}
		}
		if n, err := recordCount(blob); err != nil || n != len(samples) {
			t.Fatalf("case %d: recordCount = %d, %v", ci, n, err)
		}
	}
}

func TestRecordRoundTripQuantized(t *testing.T) {
	const step = 0.001
	samples := samplesOf(
		[3]float64{0, 100.2345678, -200.7654321},
		[3]float64{30, 101.5, -199.855555},
		[3]float64{60, 103.25, -190},
	)
	blob := appendRecord(nil, samples, step)
	if blob[0]&flagQuantized == 0 {
		t.Fatal("record did not quantize")
	}
	got, err := decodeInto(blob, nil)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	for i := range got {
		if got[i].T != samples[i].T {
			t.Fatalf("sample %d: time %v != %v", i, got[i].T, samples[i].T)
		}
		if dx := math.Abs(got[i].Loc.X - samples[i].Loc.X); dx > step/2*(1+1e-9) {
			t.Fatalf("sample %d: X off by %v > step/2", i, dx)
		}
		if dy := math.Abs(got[i].Loc.Y - samples[i].Loc.Y); dy > step/2*(1+1e-9) {
			t.Fatalf("sample %d: Y off by %v > step/2", i, dy)
		}
	}
}

func TestRecordQuantizationFallsBackLossless(t *testing.T) {
	// A coordinate too large for the fixed-point range reverts the whole
	// record to lossless storage.
	samples := samplesOf([3]float64{0, 1e300, 2}, [3]float64{1, 3, 4})
	blob := appendRecord(nil, samples, 0.001)
	if blob[0]&flagQuantized != 0 {
		t.Fatal("extreme coordinate still quantized")
	}
	got, err := decodeInto(blob, nil)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	for i := range got {
		if got[i] != samples[i] {
			t.Fatalf("sample %d: %+v != %+v", i, got[i], samples[i])
		}
	}
}

func TestDecodeRejectsCorruptRecords(t *testing.T) {
	good := appendRecord(nil, samplesOf([3]float64{1, 2, 3}, [3]float64{4, 5, 6}), 0)
	cases := map[string][]byte{
		"empty":         {},
		"unknown flags": {0xFF, 1, 0},
		"short":         good[:len(good)-1],
		"trailing":      append(append([]byte{}, good...), 0x00),
		"huge count":    {0, 0xFF, 0xFF, 0xFF, 0xFF, 0x07},
	}
	for name, blob := range cases {
		if _, err := decodeInto(blob, nil); err == nil {
			t.Errorf("%s: corrupt record decoded without error", name)
		}
	}
}

// FuzzColumnarRoundTrip fuzzes the codec from two directions: arbitrary
// sample triples (including non-monotonic gaps, duplicate timestamps, and
// extreme coordinates) must round-trip — exactly in lossless mode, within
// step/2 when quantized — and arbitrary bytes fed to the decoder must fail
// cleanly instead of panicking.
func FuzzColumnarRoundTrip(f *testing.F) {
	f.Add([]byte{}, 0.0)
	f.Add(mustBytes(1, 2, 3, 1, 2.5, 3.5), 0.0)
	f.Add(mustBytes(10, 1, 1, 3, 2, 2, 3, 3, 3), 0.001) // gap + duplicate t
	f.Add(mustBytes(0, 1e308, -1e308, 1e12, 1e-300, -0.0), 0.5)
	f.Fuzz(func(t *testing.T, data []byte, step float64) {
		// Direction 1: decoder must never panic on raw bytes.
		if samples, err := decodeInto(data, nil); err == nil {
			// Whatever decoded must re-encode and decode to the same values.
			blob := appendRecord(nil, samples, 0)
			again, err := decodeInto(blob, nil)
			if err != nil {
				t.Fatalf("re-encode of decoded record failed: %v", err)
			}
			for i := range samples {
				if math.Float64bits(again[i].T) != math.Float64bits(samples[i].T) {
					t.Fatalf("re-encode changed sample %d time", i)
				}
			}
		}

		// Direction 2: interpret the bytes as float64 triples and round-trip.
		samples := trianglesFromBytes(data)
		if len(samples) == 0 {
			return
		}
		blob := appendRecord(nil, samples, step)
		got, err := decodeInto(blob, nil)
		if err != nil {
			t.Fatalf("decode of encoded record failed: %v", err)
		}
		if len(got) != len(samples) {
			t.Fatalf("got %d samples, want %d", len(got), len(samples))
		}
		quantized := blob[0]&flagQuantized != 0
		for i := range got {
			if math.Float64bits(got[i].T) != math.Float64bits(samples[i].T) {
				t.Fatalf("sample %d: time %v != %v", i, got[i].T, samples[i].T)
			}
			if !quantized {
				if math.Float64bits(got[i].Loc.X) != math.Float64bits(samples[i].Loc.X) ||
					math.Float64bits(got[i].Loc.Y) != math.Float64bits(samples[i].Loc.Y) {
					t.Fatalf("sample %d: lossless coords changed: %+v != %+v", i, got[i], samples[i])
				}
				continue
			}
			tol := step/2 + math.Abs(samples[i].Loc.X)*1e-15
			if d := math.Abs(got[i].Loc.X - samples[i].Loc.X); !(d <= tol) {
				t.Fatalf("sample %d: X off by %v with step %v", i, d, step)
			}
			tol = step/2 + math.Abs(samples[i].Loc.Y)*1e-15
			if d := math.Abs(got[i].Loc.Y - samples[i].Loc.Y); !(d <= tol) {
				t.Fatalf("sample %d: Y off by %v with step %v", i, d, step)
			}
		}
	})
}

func mustBytes(vals ...float64) []byte {
	out := make([]byte, 0, 8*len(vals))
	for _, v := range vals {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
	}
	return out
}

func trianglesFromBytes(data []byte) []model.Sample {
	var out []model.Sample
	for len(data) >= 24 && len(out) < 1024 {
		t := math.Float64frombits(binary.LittleEndian.Uint64(data))
		x := math.Float64frombits(binary.LittleEndian.Uint64(data[8:]))
		y := math.Float64frombits(binary.LittleEndian.Uint64(data[16:]))
		out = append(out, model.Sample{T: t, Loc: geo.Point{X: x, Y: y}})
		data = data[24:]
	}
	return out
}
