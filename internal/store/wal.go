// Write-ahead log: an append-only sequence of length-prefixed, CRC32C-framed
// mutation records. One frame is
//
//	length  uint32 little-endian, payload size
//	crc     uint32 little-endian, CRC32-Castagnoli of the payload
//	payload op byte (add=1, remove=2, replace=3),
//	        uvarint id length, id bytes,
//	        encoded columnar record (add/replace only)
//
// Snapshot files reuse the same framing (op=add per record), so one reader
// serves both. Fsync policy is configurable: batched on an interval
// (default), per record (ExactFsync), or never (negative interval).
package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// Mutation opcodes.
const (
	opAdd     byte = 1
	opRemove  byte = 2
	opReplace byte = 3
	// opAppend extends a resident record with a tail of samples. Its blob is
	// a uvarint of the expected prior sample count followed by the tail
	// encoded as its own columnar record — the WAL carries only the delta,
	// not the whole re-encoded trajectory.
	opAppend byte = 4
)

// maxFrame caps a frame's payload so corrupt length prefixes cannot drive
// huge allocations during replay.
const maxFrame = 256 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// errTorn marks the point where a WAL tail stops being durable: a short
// frame, an oversized length, or a CRC mismatch. Recovery truncates there.
var errTorn = errors.New("store: torn record")

// appendFrame frames one payload into dst.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
	return append(dst, payload...)
}

// readFrame reads the next frame's payload into buf (grown as needed). It
// returns io.EOF at a clean end of stream and errTorn on a torn or corrupt
// tail.
func readFrame(br *bufio.Reader, buf []byte) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: short header", errTorn)
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	crc := binary.LittleEndian.Uint32(hdr[4:])
	if n > maxFrame {
		return nil, fmt.Errorf("%w: frame length %d", errTorn, n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, fmt.Errorf("%w: short payload", errTorn)
	}
	if crc32.Checksum(buf, castagnoli) != crc {
		return nil, fmt.Errorf("%w: crc mismatch", errTorn)
	}
	return buf, nil
}

// splitPayload decodes a frame payload into its mutation parts.
func splitPayload(payload []byte) (op byte, id string, blob []byte, err error) {
	if len(payload) == 0 {
		return 0, "", nil, fmt.Errorf("%w: empty payload", ErrCorrupt)
	}
	op = payload[0]
	rest := payload[1:]
	idLen, k := binary.Uvarint(rest)
	if k <= 0 || idLen > uint64(len(rest)-k) {
		return 0, "", nil, fmt.Errorf("%w: bad id length", ErrCorrupt)
	}
	rest = rest[k:]
	id = string(rest[:idLen])
	blob = rest[idLen:]
	if id == "" {
		return 0, "", nil, fmt.Errorf("%w: empty id", ErrCorrupt)
	}
	if op == opRemove && len(blob) != 0 {
		return 0, "", nil, fmt.Errorf("%w: remove with record bytes", ErrCorrupt)
	}
	if op == opAppend && len(blob) == 0 {
		return 0, "", nil, fmt.Errorf("%w: append without tail bytes", ErrCorrupt)
	}
	return op, id, blob, nil
}

// appendAppendBlob encodes an opAppend frame blob: the expected prior
// sample count followed by the tail's columnar record.
func appendAppendBlob(dst []byte, oldN int, tailRecord []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(oldN))
	return append(dst, tailRecord...)
}

// splitAppendBlob decodes an opAppend frame blob.
func splitAppendBlob(blob []byte) (oldN int, tail []byte, err error) {
	n, k := binary.Uvarint(blob)
	if k <= 0 || n > uint64(maxFrame) {
		return 0, nil, fmt.Errorf("%w: bad append base count", ErrCorrupt)
	}
	if len(blob) == k {
		return 0, nil, fmt.Errorf("%w: append without tail record", ErrCorrupt)
	}
	return int(n), blob[k:], nil
}

// persistence is the durable half of a Store: the open WAL segment and the
// background fsync loop.
type persistence struct {
	dir           string
	fsyncInterval time.Duration
	snapEvery     int64

	mu       sync.Mutex
	f        *os.File
	seq      uint64
	walBytes int64
	needSync bool
	closed   bool
	payload  []byte
	frame    []byte

	snapshots     atomic.Uint64
	snapErrs      atomic.Uint64
	sidecarWrites atomic.Uint64
	sidecarErrs   atomic.Uint64

	stopSync chan struct{}
	syncDone chan struct{}
}

// append frames and writes one mutation record, applying the fsync policy.
// It reports whether the WAL has grown past the snapshot trigger.
func (p *persistence) append(op byte, id string, blob []byte) (trigger bool, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false, ErrClosed
	}
	p.payload = p.payload[:0]
	p.payload = append(p.payload, op)
	p.payload = binary.AppendUvarint(p.payload, uint64(len(id)))
	p.payload = append(p.payload, id...)
	p.payload = append(p.payload, blob...)
	p.frame = appendFrame(p.frame[:0], p.payload)
	if _, err := p.f.Write(p.frame); err != nil {
		return false, fmt.Errorf("store: wal append: %w", err)
	}
	p.walBytes += int64(len(p.frame))
	switch {
	case p.fsyncInterval == ExactFsync:
		if err := p.f.Sync(); err != nil {
			return false, fmt.Errorf("store: wal fsync: %w", err)
		}
	case p.fsyncInterval > 0:
		p.needSync = true
	}
	return p.snapEvery > 0 && p.walBytes >= p.snapEvery, nil
}

// rotate opens the next WAL segment and returns the superseded file (synced
// and closed best-effort by the caller) with the new sequence number.
func (p *persistence) rotate() (uint64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return 0, ErrClosed
	}
	newSeq := p.seq + 1
	nf, err := createDurable(walPath(p.dir, newSeq))
	if err != nil {
		return 0, err
	}
	old := p.f
	p.f, p.seq, p.walBytes, p.needSync = nf, newSeq, 0, false
	// Sync the superseded segment so everything the snapshot supersedes is
	// also independently durable until the manifest flips.
	old.Sync()
	old.Close()
	return newSeq, nil
}

func (p *persistence) walStats() (bytes int64, seq uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.walBytes, p.seq
}

// syncLoop batches fsyncs on the configured interval.
func (p *persistence) syncLoop() {
	defer close(p.syncDone)
	t := time.NewTicker(p.fsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-p.stopSync:
			return
		case <-t.C:
			p.mu.Lock()
			if p.needSync && !p.closed {
				p.f.Sync()
				p.needSync = false
			}
			p.mu.Unlock()
		}
	}
}

// close stops the sync loop and durably closes the current segment.
func (p *persistence) close() error {
	if p.stopSync != nil {
		close(p.stopSync)
		<-p.syncDone
		p.stopSync = nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	err := p.f.Sync()
	if cerr := p.f.Close(); err == nil {
		err = cerr
	}
	return err
}

func walPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016d", seq))
}

func snapshotPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snapshot-%016d", seq))
}

// createDurable creates a file and syncs its directory so the new name
// itself survives a crash.
func createDurable(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
