// Snapshots and recovery.
//
// A snapshot at sequence S is taken by (1) rotating the WAL to segment S,
// (2) capturing every resident record, (3) writing them to snapshot-S
// (same frame format as the WAL, op=add per record) via a temp file +
// rename, (4) atomically flipping MANIFEST to point at S, and (5) deleting
// segments and snapshots older than S. Capture is concurrent with new
// mutations — those land in segment S and replay as idempotent upserts.
//
// Recovery loads the manifest's snapshot, then replays every WAL segment
// with sequence >= the snapshot's in order. A torn tail (short frame, bad
// CRC) truncates its segment at the last durable record and ends replay.
// The writer then opens a fresh segment, so recovery never appends to a
// truncated file.
package store

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// manifestVersion is the on-disk format version this build writes and the
// newest it can read.
const manifestVersion = 1

// manifest points recovery at the newest durable snapshot.
type manifest struct {
	Version int `json:"version"`
	// Seq is the snapshot's sequence number (0 = no snapshot yet).
	Seq uint64 `json:"seq"`
	// Records is the snapshot's record count, checked on load.
	Records int `json:"records"`
	// CoordStep documents the quantization step active when the snapshot
	// was written (records are self-describing; informational).
	CoordStep float64 `json:"coord_step"`
}

const manifestName = "MANIFEST"

// RecoveryInfo reports what Open reconstructed.
type RecoveryInfo struct {
	// Duration is the wall time of recovery (snapshot load + WAL replay).
	Duration time.Duration
	// SnapshotSeq and SnapshotRecords describe the loaded snapshot (0/0
	// when none existed).
	SnapshotSeq     uint64
	SnapshotRecords int
	// WALSegments and WALRecords count the replayed log.
	WALSegments int
	WALRecords  int
	// TruncatedBytes is the size of the torn WAL tail cut during recovery.
	TruncatedBytes int64
	// WarmProfiles is the number of derived-state sidecar entries that
	// revalidated against the recovered corpus (see sidecar.go);
	// WarmDuration is the wall time of the sidecar load. Both are zero when
	// no sidecar existed or Options.DisableSidecar was set.
	WarmProfiles int
	WarmDuration time.Duration
}

// Open builds a persistent store on dir, recovering any prior state:
// newest valid snapshot first, then the WAL tail in sequence order,
// truncating torn tails at the last durable record. The directory is
// created if missing.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	if opts.FsyncInterval == 0 {
		opts.FsyncInterval = DefaultFsyncInterval
	}
	if opts.SnapshotEvery == 0 {
		opts.SnapshotEvery = DefaultSnapshotEvery
	}
	s := New(opts)
	start := time.Now()
	info := RecoveryInfo{}

	man, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	if man.Seq > 0 {
		n, err := s.loadSnapshot(snapshotPath(dir, man.Seq), man.Records)
		if err != nil {
			return nil, err
		}
		info.SnapshotSeq, info.SnapshotRecords = man.Seq, n
	}

	segs, maxSeq, err := walSegments(dir, man.Seq)
	if err != nil {
		return nil, err
	}
	for _, seg := range segs {
		n, truncated, err := s.replayWAL(seg)
		if err != nil {
			return nil, err
		}
		info.WALSegments++
		info.WALRecords += n
		info.TruncatedBytes += truncated
		if truncated > 0 {
			s.log.Warn("store: truncated torn wal tail", "segment", seg, "bytes", truncated)
			break // later segments (if any) would replay over the hole
		}
	}

	s.sidecarRecovery(dir, &info)

	p := &persistence{
		dir:           dir,
		fsyncInterval: opts.FsyncInterval,
		snapEvery:     opts.SnapshotEvery,
		seq:           maxSeq + 1,
	}
	if man.Seq > p.seq-1 {
		p.seq = man.Seq + 1
	}
	f, err := createDurable(walPath(dir, p.seq))
	if err != nil {
		return nil, fmt.Errorf("store: open wal: %w", err)
	}
	p.f = f
	if p.fsyncInterval > 0 && p.fsyncInterval != ExactFsync {
		p.stopSync = make(chan struct{})
		p.syncDone = make(chan struct{})
		go p.syncLoop()
	}
	s.pers = p
	info.Duration = time.Since(start)
	s.recovery = &info

	// Replayed segments mean the last run ended without a final snapshot;
	// compact them away in the background so the next recovery is one
	// snapshot load.
	if info.WALRecords > 0 {
		s.triggerSnapshot()
	}
	return s, nil
}

// readManifest loads dir's manifest; a missing file selects the zero
// manifest (fresh directory).
func readManifest(dir string) (manifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return manifest{Version: manifestVersion}, nil
	}
	if err != nil {
		return manifest{}, fmt.Errorf("store: read manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return manifest{}, fmt.Errorf("store: parse manifest: %w", err)
	}
	if m.Version > manifestVersion {
		return manifest{}, fmt.Errorf("store: manifest version %d is newer than supported %d", m.Version, manifestVersion)
	}
	return m, nil
}

// writeManifest atomically replaces dir's manifest.
func writeManifest(dir string, m manifest) error {
	raw, err := json.Marshal(m)
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	f, err := os.Open(tmp)
	if err == nil {
		f.Sync()
		f.Close()
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return err
	}
	return syncDir(dir)
}

// walSegments lists dir's WAL segment paths with sequence >= minSeq in
// ascending order, and the highest sequence present (0 when none).
func walSegments(dir string, minSeq uint64) ([]string, uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, fmt.Errorf("store: list %s: %w", dir, err)
	}
	type seg struct {
		seq  uint64
		path string
	}
	var segs []seg
	var maxSeq uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimPrefix(name, "wal-"), 10, 64)
		if err != nil {
			continue
		}
		if seq > maxSeq {
			maxSeq = seq
		}
		if seq >= minSeq {
			segs = append(segs, seg{seq: seq, path: filepath.Join(dir, name)})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	paths := make([]string, len(segs))
	for i, s := range segs {
		paths[i] = s.path
	}
	return paths, maxSeq, nil
}

// loadSnapshot replays a snapshot file into the store. Unlike WAL replay,
// any framing error is fatal: the manifest only points at snapshots that
// were fully written and synced.
func (s *Store) loadSnapshot(path string, wantRecords int) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("store: open snapshot: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	var buf []byte
	n := 0
	for {
		payload, err := readFrame(br, buf)
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, fmt.Errorf("store: snapshot %s record %d: %w", path, n, err)
		}
		buf = payload[:0]
		op, id, blob, err := splitPayload(payload)
		if err != nil {
			return 0, fmt.Errorf("store: snapshot %s record %d: %w", path, n, err)
		}
		if op != opAdd {
			return 0, fmt.Errorf("store: snapshot %s record %d: %w: op %d", path, n, ErrCorrupt, op)
		}
		if err := s.applyReplay(op, id, blob); err != nil {
			return 0, fmt.Errorf("store: snapshot %s record %d: %w", path, n, err)
		}
		n++
	}
	if n != wantRecords {
		return 0, fmt.Errorf("store: snapshot %s: %w: has %d records, manifest says %d", path, ErrCorrupt, n, wantRecords)
	}
	return n, nil
}

// replayWAL replays one segment, truncating a torn tail at the last
// durable record. It returns the replayed record count and the truncated
// byte count.
func (s *Store) replayWAL(path string) (int, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("store: open wal segment: %w", err)
	}
	defer f.Close()
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return 0, 0, err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, 0, err
	}
	br := bufio.NewReaderSize(f, 1<<20)
	var buf []byte
	var good int64
	n := 0
	for {
		payload, err := readFrame(br, buf)
		if err == io.EOF {
			return n, 0, nil
		}
		if errors.Is(err, errTorn) {
			if terr := os.Truncate(path, good); terr != nil {
				return 0, 0, fmt.Errorf("store: truncate torn wal %s: %w", path, terr)
			}
			return n, size - good, nil
		}
		if err != nil {
			return 0, 0, err
		}
		buf = payload[:0]
		op, id, blob, perr := splitPayload(payload)
		if perr != nil {
			// Framed but semantically invalid: treat like a torn tail.
			if terr := os.Truncate(path, good); terr != nil {
				return 0, 0, fmt.Errorf("store: truncate torn wal %s: %w", path, terr)
			}
			return n, size - good, nil
		}
		if err := s.applyReplay(op, id, blob); err != nil {
			return 0, 0, fmt.Errorf("store: wal %s record %d: %w", path, n, err)
		}
		good += int64(8 + len(payload))
		n++
	}
}

// triggerSnapshot starts at most one background snapshot.
func (s *Store) triggerSnapshot() {
	if !s.snapping.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer s.snapping.Store(false)
		if err := s.Snapshot(); err != nil && !errors.Is(err, ErrClosed) {
			s.log.Error("store: background snapshot failed", "err", err)
		}
	}()
}

// Snapshot writes a full columnar dump of the resident corpus, flips the
// manifest to it, and prunes superseded WAL segments and snapshots.
func (s *Store) Snapshot() error {
	if s.pers == nil {
		return errors.New("store: snapshot requires a persistent store (Open)")
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()

	seq, err := s.pers.rotate()
	if err != nil {
		s.pers.snapErrs.Add(1)
		return err
	}
	refs := s.refs()

	if err := writeSnapshot(s.pers.dir, seq, refs); err != nil {
		s.pers.snapErrs.Add(1)
		return err
	}
	if err := writeManifest(s.pers.dir, manifest{
		Version:   manifestVersion,
		Seq:       seq,
		Records:   len(refs),
		CoordStep: s.CoordStep(),
	}); err != nil {
		s.pers.snapErrs.Add(1)
		return fmt.Errorf("store: write manifest: %w", err)
	}
	s.pers.snapshots.Add(1)
	s.writeSidecar(refs)
	pruneObsolete(s.pers.dir, seq, s.log)
	return nil
}

// writeSnapshot durably writes snapshot-seq via a temp file + rename.
func writeSnapshot(dir string, seq uint64, refs []Ref) error {
	final := snapshotPath(dir, seq)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: write snapshot: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	var payload, frame []byte
	for _, ref := range refs {
		payload = payload[:0]
		payload = append(payload, opAdd)
		payload = appendUvarintBytes(payload, ref.ID)
		payload = append(payload, ref.blob...)
		frame = appendFrame(frame[:0], payload)
		if _, err := bw.Write(frame); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("store: write snapshot: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: close snapshot: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: publish snapshot: %w", err)
	}
	return syncDir(dir)
}

// appendUvarintBytes appends a uvarint length prefix and the string bytes.
func appendUvarintBytes(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// pruneObsolete deletes WAL segments and snapshots superseded by the
// snapshot at seq, plus stray temp files. Best effort: failures only log.
func pruneObsolete(dir string, seq uint64, log *slog.Logger) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		log.Warn("store: prune listing failed", "err", err)
		return
	}
	for _, e := range entries {
		name := e.Name()
		var prefix string
		switch {
		case strings.HasSuffix(name, ".tmp"):
			os.Remove(filepath.Join(dir, name))
			continue
		case strings.HasPrefix(name, "wal-"):
			prefix = "wal-"
		case strings.HasPrefix(name, "snapshot-"):
			prefix = "snapshot-"
		default:
			continue
		}
		n, err := strconv.ParseUint(strings.TrimPrefix(name, prefix), 10, 64)
		if err != nil || n >= seq {
			continue
		}
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			log.Warn("store: prune failed", "file", name, "err", err)
		}
	}
}
