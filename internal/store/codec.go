// Columnar trajectory codec: one self-describing record per trajectory.
//
// A record is
//
//	flags   1 byte
//	n       uvarint sample count
//	step    8 bytes little-endian float64, only with flagQuantized
//	times   n zigzag varints, delta-encoded
//	xs      n zigzag varints, delta-encoded
//	ys      n zigzag varints, delta-encoded
//
// Timestamps that are all integer-valued (the common case for sampled
// feeds) are stored as plain int64 seconds (flagIntTime), where consecutive
// deltas varint-encode to a byte or two. Any other timestamps fall back to
// the order-preserving float64 bit transform, which is lossless for every
// float64 (including NaN and the infinities) and keeps deltas of nearby
// values small.
//
// Coordinates are either quantized to fixed-point multiples of a per-record
// step (flagQuantized; the step is embedded so records stay decodable after
// the store's step changes across restarts) or stored losslessly through
// the same bit transform. Quantization is all-or-nothing per record: a
// single coordinate that cannot quantize (non-finite, or a count outside
// the int64 delta range) reverts the whole record to lossless coordinates.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/model"
)

// Record flags.
const (
	// flagQuantized marks coordinates stored as fixed-point step multiples.
	flagQuantized = 1 << 0
	// flagIntTime marks timestamps stored as plain int64 seconds.
	flagIntTime = 1 << 1

	flagsKnown = flagQuantized | flagIntTime
)

// maxQuant bounds the magnitude of a fixed-point coordinate count (and of
// an integer timestamp) so delta arithmetic stays inside int64.
const maxQuant = 1 << 62

// ErrCorrupt reports a record that does not decode. Every decode error
// wraps it.
var ErrCorrupt = errors.New("store: corrupt record")

// orderBits maps a float64 to an int64 such that the mapping is invertible
// for every bit pattern and monotone over the ordered floats when the
// result is compared as a uint64, so deltas of nearby values are small.
func orderBits(f float64) int64 {
	u := math.Float64bits(f)
	if u>>63 != 0 {
		u = ^u
	} else {
		u ^= 1 << 63
	}
	return int64(u)
}

// unorderBits inverts orderBits.
func unorderBits(v int64) float64 {
	u := uint64(v)
	if u>>63 != 0 {
		u ^= 1 << 63
	} else {
		u = ^u
	}
	return math.Float64frombits(u)
}

// quantOK reports whether c quantizes to a representable fixed-point count
// of step.
func quantOK(c, step float64) bool {
	q := math.Round(c / step)
	return !math.IsNaN(q) && math.Abs(q) < maxQuant
}

// intTimeOK reports whether t is an integer-valued float64 small enough to
// store as an int64 second count.
func intTimeOK(t float64) bool {
	return t == math.Trunc(t) && math.Abs(t) < maxQuant
}

// appendRecord encodes samples into dst and returns the extended buffer.
// step > 0 requests fixed-point coordinate quantization (granted per record
// only when every coordinate quantizes); step <= 0 keeps coordinates
// lossless.
func appendRecord(dst []byte, samples []model.Sample, step float64) []byte {
	var flags byte
	if step > 0 && !math.IsInf(step, 0) {
		flags |= flagQuantized
		for _, s := range samples {
			if !quantOK(s.Loc.X, step) || !quantOK(s.Loc.Y, step) {
				flags &^= flagQuantized
				break
			}
		}
	}
	flags |= flagIntTime
	for _, s := range samples {
		if !intTimeOK(s.T) {
			flags &^= flagIntTime
			break
		}
	}

	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, uint64(len(samples)))
	if flags&flagQuantized != 0 {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(step))
	}

	prev := int64(0)
	for _, s := range samples {
		var v int64
		if flags&flagIntTime != 0 {
			v = int64(s.T)
		} else {
			v = orderBits(s.T)
		}
		dst = binary.AppendVarint(dst, v-prev) // deltas may wrap; decode wraps back
		prev = v
	}
	dst = appendCoords(dst, samples, step, flags, false)
	dst = appendCoords(dst, samples, step, flags, true)
	return dst
}

// appendCoords encodes one coordinate column (X, or Y when y is set).
func appendCoords(dst []byte, samples []model.Sample, step float64, flags byte, y bool) []byte {
	prev := int64(0)
	for _, s := range samples {
		c := s.Loc.X
		if y {
			c = s.Loc.Y
		}
		var v int64
		if flags&flagQuantized != 0 {
			v = int64(math.Round(c / step))
		} else {
			v = orderBits(c)
		}
		dst = binary.AppendVarint(dst, v-prev)
		prev = v
	}
	return dst
}

// recordCount returns the sample count of an encoded record without
// decoding it.
func recordCount(blob []byte) (int, error) {
	if len(blob) == 0 {
		return 0, fmt.Errorf("%w: empty", ErrCorrupt)
	}
	n, k := binary.Uvarint(blob[1:])
	if k <= 0 {
		return 0, fmt.Errorf("%w: bad sample count", ErrCorrupt)
	}
	return int(n), nil
}

// recordFirstTime returns the first sample's timestamp of an encoded
// record without decoding it: flags, count, the optional step, and the
// first time varint are all it touches. Retention sweeps use it to skip
// unexpired trajectories without materializing a single sample.
func recordFirstTime(blob []byte) (float64, error) {
	if len(blob) == 0 {
		return 0, fmt.Errorf("%w: empty", ErrCorrupt)
	}
	flags := blob[0]
	b := blob[1:]
	n, k := binary.Uvarint(b)
	if k <= 0 {
		return 0, fmt.Errorf("%w: bad sample count", ErrCorrupt)
	}
	if n == 0 {
		return 0, fmt.Errorf("%w: empty record", ErrCorrupt)
	}
	b = b[k:]
	if flags&flagQuantized != 0 {
		if len(b) < 8 {
			return 0, fmt.Errorf("%w: truncated quantization step", ErrCorrupt)
		}
		b = b[8:]
	}
	v, k := binary.Varint(b)
	if k <= 0 {
		return 0, fmt.Errorf("%w: truncated timestamps", ErrCorrupt)
	}
	if flags&flagIntTime != 0 {
		return float64(v), nil
	}
	return unorderBits(v), nil
}

// recordStep returns the quantization step a record was encoded with
// (0 = lossless coordinates).
func recordStep(blob []byte) (float64, error) {
	if len(blob) == 0 {
		return 0, fmt.Errorf("%w: empty", ErrCorrupt)
	}
	if blob[0]&flagQuantized == 0 {
		return 0, nil
	}
	b := blob[1:]
	_, k := binary.Uvarint(b)
	if k <= 0 || len(b) < k+8 {
		return 0, fmt.Errorf("%w: truncated quantization step", ErrCorrupt)
	}
	step := math.Float64frombits(binary.LittleEndian.Uint64(b[k:]))
	if !(step > 0) || math.IsInf(step, 0) {
		return 0, fmt.Errorf("%w: invalid quantization step %v", ErrCorrupt, step)
	}
	return step, nil
}

// decodeInto decodes a record into dst (reused when its capacity suffices)
// and returns the decoded samples. It never panics on corrupt input.
func decodeInto(blob []byte, dst []model.Sample) ([]model.Sample, error) {
	if len(blob) == 0 {
		return nil, fmt.Errorf("%w: empty", ErrCorrupt)
	}
	flags := blob[0]
	if flags&^byte(flagsKnown) != 0 {
		return nil, fmt.Errorf("%w: unknown flags %#x", ErrCorrupt, flags)
	}
	b := blob[1:]
	n64, k := binary.Uvarint(b)
	if k <= 0 {
		return nil, fmt.Errorf("%w: bad sample count", ErrCorrupt)
	}
	b = b[k:]
	// Every sample takes at least one byte per column, so the count is
	// bounded by the remaining record size — this caps allocation on
	// corrupt counts.
	if n64 > uint64(len(b)) {
		return nil, fmt.Errorf("%w: sample count %d exceeds record size", ErrCorrupt, n64)
	}
	n := int(n64)

	step := 0.0
	if flags&flagQuantized != 0 {
		if len(b) < 8 {
			return nil, fmt.Errorf("%w: truncated quantization step", ErrCorrupt)
		}
		step = math.Float64frombits(binary.LittleEndian.Uint64(b))
		b = b[8:]
		if !(step > 0) || math.IsInf(step, 0) {
			return nil, fmt.Errorf("%w: invalid quantization step %v", ErrCorrupt, step)
		}
	}

	if cap(dst) >= n {
		dst = dst[:n]
	} else {
		dst = make([]model.Sample, n)
	}

	prev := int64(0)
	for i := 0; i < n; i++ {
		d, k := binary.Varint(b)
		if k <= 0 {
			return nil, fmt.Errorf("%w: truncated timestamps", ErrCorrupt)
		}
		b = b[k:]
		prev += d
		if flags&flagIntTime != 0 {
			dst[i].T = float64(prev)
		} else {
			dst[i].T = unorderBits(prev)
		}
	}
	var err error
	if b, err = decodeCoords(b, dst, step, flags, false); err != nil {
		return nil, err
	}
	if b, err = decodeCoords(b, dst, step, flags, true); err != nil {
		return nil, err
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(b))
	}
	return dst, nil
}

// decodeCoords decodes one coordinate column into dst.
func decodeCoords(b []byte, dst []model.Sample, step float64, flags byte, y bool) ([]byte, error) {
	prev := int64(0)
	for i := range dst {
		d, k := binary.Varint(b)
		if k <= 0 {
			return nil, fmt.Errorf("%w: truncated coordinates", ErrCorrupt)
		}
		b = b[k:]
		prev += d
		var c float64
		if flags&flagQuantized != 0 {
			c = float64(prev) * step
		} else {
			c = unorderBits(prev)
		}
		if y {
			dst[i].Loc.Y = c
		} else {
			dst[i].Loc.X = c
		}
	}
	return b, nil
}

// recordBounds returns the spatial bounding rectangle of an encoded record
// by decoding its coordinate columns into scratch registers (no sample
// slice is materialized).
func recordBounds(blob []byte, scratch []model.Sample) (geo.Rect, []model.Sample, error) {
	samples, err := decodeInto(blob, scratch)
	if err != nil {
		return geo.Rect{}, scratch, err
	}
	r := geo.Rect{Min: samples[0].Loc, Max: samples[0].Loc}
	for _, s := range samples[1:] {
		if s.Loc.X < r.Min.X {
			r.Min.X = s.Loc.X
		}
		if s.Loc.X > r.Max.X {
			r.Max.X = s.Loc.X
		}
		if s.Loc.Y < r.Min.Y {
			r.Min.Y = s.Loc.Y
		}
		if s.Loc.Y > r.Max.Y {
			r.Max.Y = s.Loc.Y
		}
	}
	return r, samples, nil
}
