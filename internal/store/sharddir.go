package store

import (
	"fmt"
	"path/filepath"
)

// ShardDir returns the per-shard subdirectory of a sharded engine's data
// directory: <dir>/shard-NNN. The root facade and stsserved both derive
// shard store paths through it, so the on-disk layout of a partitioned
// corpus has exactly one definition — a directory opened with N shards
// must be reopened with the same N (records do not migrate between shard
// stores).
func ShardDir(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d", shard))
}
