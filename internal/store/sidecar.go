// Derived-state sidecar: opportunistic persistence of the engine's profile
// cache next to the corpus snapshot, so a recovered server is warm for
// scoring, not just for data.
//
// The store treats profile payloads as opaque bytes — the engine registers
// a capture callback (SetSidecarSource) and consumes revalidated entries
// after recovery (WarmEntries); internal/core owns the payload codec. Each
// sidecar frame binds its payload to the *content* of the record it was
// derived from (sample count + CRC32-Castagnoli of the encoded record),
// not to the generation number: recovery re-assigns fresh generations on
// replay, so load-time validation matches by content and then remaps the
// entry to the recovered record's current generation. Any record that
// changed since capture — replaced, appended, trimmed, or gone — simply
// fails the match and is discarded; warmth is opportunistic and always
// safe.
//
// The file (profiles.snap) reuses the WAL's CRC32C framing: one version
// frame, then one frame per entry. It is written during snapshot capture
// via temp file + rename and read once at Open. A torn or corrupt tail
// ends the load at the last good frame; a sidecar can never fail recovery.
package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"
)

// sidecarName is the derived-state sidecar's file name. It is constant
// (not sequence-numbered): validation is by record content, so a sidecar
// from any earlier snapshot remains safe, and pruneObsolete never touches
// it.
const sidecarName = "profiles.snap"

// sidecarVersion is the sidecar file format version.
const sidecarVersion = 1

// SidecarEntry is one serialized derived-state payload keyed to a record
// version. On capture the engine supplies the (ID, Gen) its cache key
// holds; on load Gen is the *recovered* record's generation, remapped by
// the store after content validation, so the engine can key its cache
// directly.
type SidecarEntry struct {
	ID   string
	Gen  uint64
	Blob []byte
}

// SidecarCorpus is the optional corpus capability the engine uses to
// persist and recover derived state. *Store implements it.
type SidecarCorpus interface {
	// SetSidecarSource registers the capture callback invoked during
	// snapshot writes. Entries whose generation is no longer current are
	// filtered out by the store.
	SetSidecarSource(fn func() []SidecarEntry)
	// WarmEntries returns the entries revalidated during recovery, at most
	// once: the sidecar payloads whose source records survived intact, each
	// remapped to its record's current generation. Subsequent calls return
	// nil.
	WarmEntries() []SidecarEntry
}

// SetSidecarSource implements SidecarCorpus.
func (s *Store) SetSidecarSource(fn func() []SidecarEntry) {
	s.sideMu.Lock()
	s.sideSrc = fn
	s.sideMu.Unlock()
}

// WarmEntries implements SidecarCorpus.
func (s *Store) WarmEntries() []SidecarEntry {
	s.sideMu.Lock()
	w := s.warm
	s.warm = nil
	s.sideMu.Unlock()
	return w
}

// writeSidecar captures the registered source's entries, filters them to
// generations still current in refs, and durably replaces the sidecar
// file. Best effort: failures log and count, never fail the snapshot.
func (s *Store) writeSidecar(refs []Ref) {
	if s.sidecarOff || s.pers == nil {
		return
	}
	s.sideMu.Lock()
	src := s.sideSrc
	s.sideMu.Unlock()
	if src == nil {
		return
	}
	entries := src()
	if len(entries) == 0 {
		return // keep any prior sidecar: content validation keeps it safe
	}
	byID := make(map[string]Ref, len(refs))
	for _, ref := range refs {
		byID[ref.ID] = ref
	}
	final := filepath.Join(s.pers.dir, sidecarName)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		s.pers.sidecarErrs.Add(1)
		s.log.Warn("store: sidecar write failed", "err", err)
		return
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	var payload, frame []byte
	frame = appendFrame(frame[:0], []byte{sidecarVersion})
	_, err = bw.Write(frame)
	written := 0
	for _, e := range entries {
		if err != nil {
			break
		}
		ref, ok := byID[e.ID]
		if !ok || ref.Gen != e.Gen || len(e.Blob) == 0 {
			continue // cache entry is stale against the captured corpus
		}
		payload = payload[:0]
		payload = appendUvarintBytes(payload, e.ID)
		payload = binary.AppendUvarint(payload, uint64(ref.N))
		payload = binary.LittleEndian.AppendUint32(payload, crc32.Checksum(ref.blob, castagnoli))
		payload = append(payload, e.Blob...)
		frame = appendFrame(frame[:0], payload)
		_, err = bw.Write(frame)
		written++
	}
	if err == nil {
		err = bw.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, final)
	}
	if err == nil {
		err = syncDir(s.pers.dir)
	}
	if err != nil {
		os.Remove(tmp)
		s.pers.sidecarErrs.Add(1)
		s.log.Warn("store: sidecar write failed", "err", err)
		return
	}
	s.pers.sidecarWrites.Add(1)
	s.log.Debug("store: sidecar written", "entries", written)
}

// loadSidecar reads dir's sidecar (if any) and revalidates each entry
// against the recovered corpus: the resident record with the entry's ID
// must have the captured sample count and record-bytes checksum. Valid
// entries are remapped to the recovered generation and staged for
// WarmEntries. Every failure mode — missing file, version skew, torn
// tail, content mismatch — degrades to fewer warm entries, never to an
// error.
func (s *Store) loadSidecar(dir string) (loaded int) {
	f, err := os.Open(filepath.Join(dir, sidecarName))
	if err != nil {
		return 0
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	var buf []byte
	hdr, err := readFrame(br, buf)
	if err != nil || len(hdr) != 1 || hdr[0] != sidecarVersion {
		if err != io.EOF {
			s.log.Warn("store: sidecar header invalid; starting cold")
		}
		return 0
	}
	var warm []SidecarEntry
	for {
		payload, err := readFrame(br, nil)
		if err == io.EOF {
			break
		}
		if err != nil {
			s.log.Warn("store: torn sidecar tail; remaining entries cold", "err", err)
			break
		}
		idLen, k := binary.Uvarint(payload)
		if k <= 0 || idLen > uint64(len(payload)-k) {
			s.log.Warn("store: corrupt sidecar entry; remaining entries cold")
			break
		}
		rest := payload[k:]
		id := string(rest[:idLen])
		rest = rest[idLen:]
		n, k := binary.Uvarint(rest)
		if k <= 0 || len(rest[k:]) < 4 {
			s.log.Warn("store: corrupt sidecar entry; remaining entries cold")
			break
		}
		rest = rest[k:]
		sum := binary.LittleEndian.Uint32(rest)
		blob := rest[4:]
		ref, ok := s.Resolve(id)
		if !ok || uint64(ref.N) != n || crc32.Checksum(ref.blob, castagnoli) != sum {
			continue // record changed (or vanished) since capture
		}
		warm = append(warm, SidecarEntry{
			ID:   id,
			Gen:  ref.Gen,
			Blob: append([]byte(nil), blob...),
		})
	}
	s.sideMu.Lock()
	s.warm = warm
	s.sideMu.Unlock()
	return len(warm)
}

// sidecarRecovery runs the sidecar load and folds its outcome into the
// recovery report.
func (s *Store) sidecarRecovery(dir string, info *RecoveryInfo) {
	if s.sidecarOff {
		return
	}
	start := time.Now()
	info.WarmProfiles = s.loadSidecar(dir)
	info.WarmDuration = time.Since(start)
	if info.WarmProfiles > 0 {
		s.log.Info("store: sidecar warm load",
			"entries", info.WarmProfiles,
			"warm_seconds", fmt.Sprintf("%.3f", info.WarmDuration.Seconds()))
	}
}
