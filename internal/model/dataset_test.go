package model

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/stslib/sts/internal/geo"
)

func TestAlternateSplit(t *testing.T) {
	tr := line("a", 0, 1, 2, 3, 4)
	a, b := AlternateSplit(tr)
	if a.Len() != 3 || b.Len() != 2 {
		t.Fatalf("lengths %d,%d", a.Len(), b.Len())
	}
	for i, want := range []float64{0, 2, 4} {
		if a.Samples[i].T != want {
			t.Errorf("a[%d].T=%v want %v", i, a.Samples[i].T, want)
		}
	}
	for i, want := range []float64{1, 3} {
		if b.Samples[i].T != want {
			t.Errorf("b[%d].T=%v want %v", i, b.Samples[i].T, want)
		}
	}
	if a.ID != tr.ID || b.ID != tr.ID {
		t.Error("split halves lost the object ID")
	}
}

func TestAlternateSplitReconstructs(t *testing.T) {
	f := func(n uint8) bool {
		tr := Trajectory{ID: "q"}
		for i := 0; i < int(n%64); i++ {
			tr.Samples = append(tr.Samples, Sample{T: float64(i)})
		}
		a, b := AlternateSplit(tr)
		if a.Len()+b.Len() != tr.Len() {
			return false
		}
		// Merging the halves by time recovers the original timestamps.
		merged := append(append([]Sample{}, a.Samples...), b.Samples...)
		tr2 := Trajectory{Samples: merged}
		tr2.SortByTime()
		for i := range tr.Samples {
			if tr2.Samples[i].T != tr.Samples[i].T {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitDatasetPairs(t *testing.T) {
	ds := Dataset{line("a", 0, 1, 2), line("b", 5, 6, 7, 8)}
	d1, d2 := SplitDataset(ds)
	if len(d1) != 2 || len(d2) != 2 {
		t.Fatalf("lengths %d,%d", len(d1), len(d2))
	}
	for i := range ds {
		if d1[i].ID != ds[i].ID || d2[i].ID != ds[i].ID {
			t.Errorf("pairing broken at %d", i)
		}
	}
}

func TestDownsample(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := line("a", 0, 1, 2, 3, 4, 5, 6, 7, 8, 9)
	sub := Downsample(tr, 0.5, rng)
	if sub.Len() != 5 {
		t.Errorf("rate 0.5 kept %d of 10", sub.Len())
	}
	if err := sub.Validate(); err != nil {
		t.Errorf("downsampled invalid: %v", err)
	}
	// Every kept sample must exist in the original.
	seen := map[float64]bool{}
	for _, s := range tr.Samples {
		seen[s.T] = true
	}
	for _, s := range sub.Samples {
		if !seen[s.T] {
			t.Errorf("sample at t=%v not in original", s.T)
		}
	}
}

func TestDownsampleEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr := line("a", 0, 1, 2, 3, 4, 5, 6, 7, 8, 9)
	if got := Downsample(tr, 1.0, rng); got.Len() != tr.Len() {
		t.Errorf("rate 1 kept %d", got.Len())
	}
	if got := Downsample(tr, 2.0, rng); got.Len() != tr.Len() {
		t.Errorf("rate >1 kept %d", got.Len())
	}
	// Minimum 2 samples survive even at extreme rates.
	if got := Downsample(tr, 0.0001, rng); got.Len() != 2 {
		t.Errorf("tiny rate kept %d want 2", got.Len())
	}
	if got := Downsample(tr, -1, rng); got.Len() != 2 {
		t.Errorf("negative rate kept %d want 2", got.Len())
	}
	short := line("s", 0, 1)
	if got := Downsample(short, 0.1, rng); got.Len() != 2 {
		t.Errorf("short trajectory kept %d", got.Len())
	}
}

func TestDownsampleNeverIncreasesLength(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(n uint8, rate float64) bool {
		size := int(n%50) + 2
		tr := Trajectory{ID: "q"}
		for i := 0; i < size; i++ {
			tr.Samples = append(tr.Samples, Sample{T: float64(i)})
		}
		r := rate - float64(int(rate)) // fractional part, may be negative
		sub := Downsample(tr, r, rng)
		return sub.Len() <= tr.Len() && sub.Len() >= 2 && sub.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAddNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tr := line("a", 0, 1, 2)
	same := AddNoise(tr, 0, rng)
	for i := range tr.Samples {
		if same.Samples[i] != tr.Samples[i] {
			t.Error("beta=0 changed a sample")
		}
	}
	noisy := AddNoise(tr, 5, rng)
	if noisy.Len() != tr.Len() {
		t.Fatalf("length changed")
	}
	moved := 0
	for i := range tr.Samples {
		if noisy.Samples[i].Loc != tr.Samples[i].Loc {
			moved++
		}
		if noisy.Samples[i].T != tr.Samples[i].T {
			t.Error("noise changed a timestamp")
		}
	}
	if moved == 0 {
		t.Error("beta=5 moved nothing")
	}
	// Original untouched.
	if tr.Samples[0].Loc != (geo.Point{X: 0, Y: 0}) {
		t.Error("AddNoise mutated its input")
	}
}

func TestFilterMinLen(t *testing.T) {
	ds := Dataset{line("a", 0, 1), line("b", 0, 1, 2, 3), line("c", 0)}
	got := ds.FilterMinLen(3)
	if len(got) != 1 || got[0].ID != "b" {
		t.Errorf("FilterMinLen=%v", got)
	}
	if got := ds.FilterMinLen(0); len(got) != 3 {
		t.Errorf("FilterMinLen(0) dropped trajectories")
	}
}

func TestDatasetBounds(t *testing.T) {
	var empty Dataset
	if _, ok := empty.Bounds(); ok {
		t.Error("empty dataset reported bounds")
	}
	ds := Dataset{
		Trajectory{Samples: []Sample{{Loc: geo.Point{X: 1, Y: 2}, T: 0}}},
		Trajectory{Samples: []Sample{{Loc: geo.Point{X: -3, Y: 9}, T: 0}}},
	}
	b, ok := ds.Bounds()
	if !ok || b.Min != (geo.Point{X: -3, Y: 2}) || b.Max != (geo.Point{X: 1, Y: 9}) {
		t.Errorf("Bounds=%+v ok=%v", b, ok)
	}
}

func TestDatasetValidateAndClone(t *testing.T) {
	ds := Dataset{line("a", 0, 1), Trajectory{ID: "bad"}}
	if err := ds.Validate(); err == nil {
		t.Error("Validate passed a dataset with an empty trajectory")
	}
	good := Dataset{line("a", 0, 1)}
	cp := good.Clone()
	cp[0].Samples[0].T = 99
	if good[0].Samples[0].T == 99 {
		t.Error("Clone shares storage")
	}
}

func TestDatasetLevelHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ds := Dataset{line("a", 0, 1, 2, 3, 4, 5, 6, 7, 8, 9), line("b", 0, 2, 4, 6, 8, 10, 12, 14, 16, 18)}
	down := DownsampleDataset(ds, 0.5, rng)
	if len(down) != 2 || down[0].Len() != 5 {
		t.Errorf("DownsampleDataset=%v", down)
	}
	noisy := AddNoiseDataset(ds, 1, rng)
	if len(noisy) != 2 {
		t.Errorf("AddNoiseDataset len=%d", len(noisy))
	}
}

func TestResampleUniform(t *testing.T) {
	tr := line("a", 0, 10, 30)
	out, err := ResampleUniform(tr, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("resampled invalid: %v", err)
	}
	// Samples at 0,5,...,30: 7 samples; end preserved.
	if out.Len() != 7 || out.Start() != 0 || out.End() != 30 {
		t.Fatalf("resampled %v", out.Timestamps())
	}
	// Linear interpolation along the east walk: x == t.
	for _, s := range out.Samples {
		if s.Loc.X != s.T {
			t.Fatalf("sample at t=%v has x=%v", s.T, s.Loc.X)
		}
	}
	// Non-divisible period keeps the final observation.
	out2, err := ResampleUniform(tr, 7)
	if err != nil {
		t.Fatal(err)
	}
	if out2.End() != 30 {
		t.Errorf("end lost: %v", out2.Timestamps())
	}
	if _, err := ResampleUniform(tr, 0); err == nil {
		t.Error("zero period accepted")
	}
	short := line("s", 5)
	if got, err := ResampleUniform(short, 10); err != nil || got.Len() != 1 {
		t.Errorf("short trajectory: %v %v", got, err)
	}
}
