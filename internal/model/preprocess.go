package model

import (
	"fmt"

	"github.com/stslib/sts/internal/geo"
)

// StayPoint is a detected dwell: a region the object stayed inside for a
// minimum duration (Li et al.'s classic definition, used throughout the
// trajectory-mining literature the paper builds on).
type StayPoint struct {
	// Center is the mean location of the samples inside the stay.
	Center geo.Point
	// Start and End bound the stay in time.
	Start, End float64
	// First and Last index the participating samples in the source
	// trajectory (inclusive).
	First, Last int
}

// Duration returns the dwell time in seconds.
func (s StayPoint) Duration() float64 { return s.End - s.Start }

// StayPoints detects dwells: maximal runs of consecutive samples that all
// lie within distThresh meters of the run's first sample and span at
// least timeThresh seconds. Typical thresholds: 30–50 m / 5–20 min for
// GPS, a few meters / a minute for indoor positioning.
func StayPoints(tr Trajectory, distThresh, timeThresh float64) ([]StayPoint, error) {
	if distThresh <= 0 || timeThresh <= 0 {
		return nil, fmt.Errorf("model: thresholds must be positive (got %v, %v)", distThresh, timeThresh)
	}
	var out []StayPoint
	n := tr.Len()
	i := 0
	for i < n {
		anchor := tr.Samples[i].Loc
		j := i + 1
		for j < n && tr.Samples[j].Loc.Dist(anchor) <= distThresh {
			j++
		}
		// Samples [i, j) stay near the anchor.
		if span := tr.Samples[j-1].T - tr.Samples[i].T; j-i >= 2 && span >= timeThresh {
			var cx, cy float64
			for k := i; k < j; k++ {
				cx += tr.Samples[k].Loc.X
				cy += tr.Samples[k].Loc.Y
			}
			m := float64(j - i)
			out = append(out, StayPoint{
				Center: geo.Point{X: cx / m, Y: cy / m},
				Start:  tr.Samples[i].T,
				End:    tr.Samples[j-1].T,
				First:  i,
				Last:   j - 1,
			})
			i = j
			continue
		}
		i++
	}
	return out, nil
}

// SplitByGap splits tr wherever consecutive samples are more than maxGap
// seconds apart — the standard way to cut a device's observation stream
// into sessions/trips before similarity analysis. Segment IDs get a
// "#k" suffix. Segments retain the original sample values.
func SplitByGap(tr Trajectory, maxGap float64) ([]Trajectory, error) {
	if maxGap <= 0 {
		return nil, fmt.Errorf("model: maxGap must be positive, got %v", maxGap)
	}
	if tr.Len() == 0 {
		return nil, nil
	}
	var out []Trajectory
	start := 0
	flush := func(end int) {
		seg := Trajectory{
			ID:      fmt.Sprintf("%s#%d", tr.ID, len(out)),
			Samples: append([]Sample(nil), tr.Samples[start:end]...),
		}
		out = append(out, seg)
	}
	for i := 1; i < tr.Len(); i++ {
		if tr.Samples[i].T-tr.Samples[i-1].T > maxGap {
			flush(i)
			start = i
		}
	}
	flush(tr.Len())
	return out, nil
}

// RemoveStays returns a copy of tr with the interior samples of each
// detected stay collapsed into the stay's first sample — a common
// preprocessing step before route-shape analysis, where dwells otherwise
// dominate point-based distances.
func RemoveStays(tr Trajectory, distThresh, timeThresh float64) (Trajectory, error) {
	stays, err := StayPoints(tr, distThresh, timeThresh)
	if err != nil {
		return Trajectory{}, err
	}
	drop := make(map[int]bool)
	for _, sp := range stays {
		for k := sp.First + 1; k <= sp.Last; k++ {
			drop[k] = true
		}
	}
	out := Trajectory{ID: tr.ID, Samples: make([]Sample, 0, tr.Len()-len(drop))}
	for i, s := range tr.Samples {
		if !drop[i] {
			out.Samples = append(out.Samples, s)
		}
	}
	return out, nil
}
