// Package model defines trajectories — the discrete, noisy, sporadically
// sampled observations of continuous object paths (Definitions 1 and 2 of
// the paper) — together with the dataset-construction operations Section VI
// uses: alternating splits, rate-based down-sampling, and Gaussian location
// noise injection.
package model

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/stslib/sts/internal/geo"
)

// Sample is one observed position (ℓ, t): a location and the timestamp at
// which it was recorded. Timestamps are seconds on an arbitrary but
// consistent clock.
type Sample struct {
	Loc geo.Point
	T   float64
}

// Trajectory is a time-ordered sequence of samples describing the movement
// of one object (Definition 2). ID identifies the underlying object so the
// matching experiments can tell whether two trajectories are twins.
type Trajectory struct {
	ID      string
	Samples []Sample
}

// Common validation errors.
var (
	ErrEmpty     = errors.New("model: trajectory has no samples")
	ErrUnsorted  = errors.New("model: samples are not sorted by time")
	ErrNonFinite = errors.New("model: sample has a non-finite coordinate or timestamp")
	ErrDuplicate = errors.New("model: duplicate timestamp")
)

// Validate checks the structural invariants every algorithm in this module
// relies on: at least one sample, strictly increasing timestamps, and
// finite coordinates.
func (tr Trajectory) Validate() error {
	if len(tr.Samples) == 0 {
		return fmt.Errorf("%w (id %q)", ErrEmpty, tr.ID)
	}
	for i, s := range tr.Samples {
		if !s.Loc.IsFinite() || math.IsNaN(s.T) || math.IsInf(s.T, 0) {
			return fmt.Errorf("%w (id %q, sample %d)", ErrNonFinite, tr.ID, i)
		}
		if i > 0 {
			if s.T < tr.Samples[i-1].T {
				return fmt.Errorf("%w (id %q, sample %d)", ErrUnsorted, tr.ID, i)
			}
			if s.T == tr.Samples[i-1].T {
				return fmt.Errorf("%w (id %q, t=%v)", ErrDuplicate, tr.ID, s.T)
			}
		}
	}
	return nil
}

// Len returns |Tra|, the number of samples.
func (tr Trajectory) Len() int { return len(tr.Samples) }

// Start returns the first timestamp. It panics on an empty trajectory.
func (tr Trajectory) Start() float64 { return tr.Samples[0].T }

// End returns the last timestamp. It panics on an empty trajectory.
func (tr Trajectory) End() float64 { return tr.Samples[len(tr.Samples)-1].T }

// Duration returns End − Start, or 0 for trajectories shorter than 2 samples.
func (tr Trajectory) Duration() float64 {
	if len(tr.Samples) < 2 {
		return 0
	}
	return tr.End() - tr.Start()
}

// PathLength returns the total polyline length in meters.
func (tr Trajectory) PathLength() float64 {
	var d float64
	for i := 1; i < len(tr.Samples); i++ {
		d += tr.Samples[i].Loc.Dist(tr.Samples[i-1].Loc)
	}
	return d
}

// Clone returns a deep copy of tr.
func (tr Trajectory) Clone() Trajectory {
	out := Trajectory{ID: tr.ID, Samples: make([]Sample, len(tr.Samples))}
	copy(out.Samples, tr.Samples)
	return out
}

// SortByTime sorts the samples in place by timestamp (stable).
func (tr *Trajectory) SortByTime() {
	sort.SliceStable(tr.Samples, func(i, j int) bool {
		return tr.Samples[i].T < tr.Samples[j].T
	})
}

// Bounds returns the bounding rectangle of the trajectory's locations.
// It panics on an empty trajectory.
func (tr Trajectory) Bounds() geo.Rect {
	r := geo.Rect{Min: tr.Samples[0].Loc, Max: tr.Samples[0].Loc}
	for _, s := range tr.Samples[1:] {
		r = r.Union(geo.Rect{Min: s.Loc, Max: s.Loc})
	}
	return r
}

// Bracket locates the samples surrounding time t. It returns:
//
//   - exact = the index i with Samples[i].T == t, or -1;
//   - before = the largest i with Samples[i].T < t, or -1;
//   - after = the smallest i with Samples[i].T > t, or len(Samples).
//
// The S-T probability estimator (Eq. 5) dispatches on these three cases.
func (tr Trajectory) Bracket(t float64) (exact, before, after int) {
	n := len(tr.Samples)
	after = sort.Search(n, func(i int) bool { return tr.Samples[i].T >= t })
	exact = -1
	if after < n && tr.Samples[after].T == t {
		exact = after
		after++
	}
	before = -1
	if exact >= 0 {
		before = exact - 1
	} else if after > 0 {
		before = after - 1
	}
	return exact, before, after
}

// InterpolateAt returns the position on the trajectory's polyline at time
// t using linear interpolation between the bracketing samples (the
// assumption EDwP and STED make). ok is false when t lies outside the
// observed interval.
func (tr Trajectory) InterpolateAt(t float64) (p geo.Point, ok bool) {
	if len(tr.Samples) == 0 || t < tr.Start() || t > tr.End() {
		return geo.Point{}, false
	}
	exact, before, after := tr.Bracket(t)
	if exact >= 0 {
		return tr.Samples[exact].Loc, true
	}
	a, b := tr.Samples[before], tr.Samples[after]
	f := (t - a.T) / (b.T - a.T)
	return a.Loc.Lerp(b.Loc, f), true
}

// Speeds returns the speed between every pair of consecutive samples, in
// meters per second — the speed sample set S of Section IV-B. Pairs with a
// zero time gap are skipped. The result has up to Len()-1 entries.
func (tr Trajectory) Speeds() []float64 {
	if len(tr.Samples) < 2 {
		return nil
	}
	out := make([]float64, 0, len(tr.Samples)-1)
	for i := 1; i < len(tr.Samples); i++ {
		dt := tr.Samples[i].T - tr.Samples[i-1].T
		if dt <= 0 {
			continue
		}
		out = append(out, tr.Samples[i].Loc.Dist(tr.Samples[i-1].Loc)/dt)
	}
	return out
}

// Timestamps returns the sample timestamps in order.
func (tr Trajectory) Timestamps() []float64 {
	out := make([]float64, len(tr.Samples))
	for i, s := range tr.Samples {
		out[i] = s.T
	}
	return out
}

// String implements fmt.Stringer with a compact summary.
func (tr Trajectory) String() string {
	if len(tr.Samples) == 0 {
		return fmt.Sprintf("Trajectory(%s, empty)", tr.ID)
	}
	return fmt.Sprintf("Trajectory(%s, %d samples, %.0fs, %.0fm)",
		tr.ID, tr.Len(), tr.Duration(), tr.PathLength())
}
