package model

import (
	"errors"
	"math"
	"testing"

	"github.com/stslib/sts/internal/geo"
)

// line builds a trajectory moving east at 1 m/s, sampled at the given
// times.
func line(id string, times ...float64) Trajectory {
	tr := Trajectory{ID: id}
	for _, t := range times {
		tr.Samples = append(tr.Samples, Sample{Loc: geo.Point{X: t, Y: 0}, T: t})
	}
	return tr
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		tr      Trajectory
		wantErr error
	}{
		{"valid", line("a", 0, 1, 2), nil},
		{"single sample", line("a", 5), nil},
		{"empty", Trajectory{ID: "a"}, ErrEmpty},
		{"unsorted", Trajectory{Samples: []Sample{{T: 2}, {T: 1}}}, ErrUnsorted},
		{"duplicate time", Trajectory{Samples: []Sample{{T: 1}, {T: 1}}}, ErrDuplicate},
		{"nan coordinate", Trajectory{Samples: []Sample{{Loc: geo.Point{X: math.NaN()}, T: 0}}}, ErrNonFinite},
		{"inf time", Trajectory{Samples: []Sample{{T: math.Inf(1)}}}, ErrNonFinite},
		{"nan time", Trajectory{Samples: []Sample{{T: math.NaN()}}}, ErrNonFinite},
	}
	for _, tt := range tests {
		err := tt.tr.Validate()
		if tt.wantErr == nil && err != nil {
			t.Errorf("%s: unexpected error %v", tt.name, err)
		}
		if tt.wantErr != nil && !errors.Is(err, tt.wantErr) {
			t.Errorf("%s: err=%v want %v", tt.name, err, tt.wantErr)
		}
	}
}

func TestDurationAndPathLength(t *testing.T) {
	tr := line("a", 0, 10, 30)
	if got := tr.Duration(); got != 30 {
		t.Errorf("Duration=%v", got)
	}
	if got := tr.PathLength(); got != 30 {
		t.Errorf("PathLength=%v", got)
	}
	if got := line("b", 5).Duration(); got != 0 {
		t.Errorf("single-sample Duration=%v", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	tr := line("a", 0, 1)
	cp := tr.Clone()
	cp.Samples[0].Loc.X = 99
	if tr.Samples[0].Loc.X == 99 {
		t.Error("Clone shares sample storage")
	}
}

func TestSortByTime(t *testing.T) {
	tr := Trajectory{Samples: []Sample{{T: 3}, {T: 1}, {T: 2}}}
	tr.SortByTime()
	for i, want := range []float64{1, 2, 3} {
		if tr.Samples[i].T != want {
			t.Fatalf("after sort, Samples[%d].T=%v", i, tr.Samples[i].T)
		}
	}
}

func TestBounds(t *testing.T) {
	tr := Trajectory{Samples: []Sample{
		{Loc: geo.Point{X: 3, Y: -2}, T: 0},
		{Loc: geo.Point{X: -1, Y: 7}, T: 1},
	}}
	b := tr.Bounds()
	if b.Min != (geo.Point{X: -1, Y: -2}) || b.Max != (geo.Point{X: 3, Y: 7}) {
		t.Errorf("Bounds=%+v", b)
	}
}

func TestBracket(t *testing.T) {
	tr := line("a", 10, 20, 30)
	tests := []struct {
		t                    float64
		exact, before, after int
	}{
		{5, -1, -1, 0}, // before the start
		{10, 0, -1, 1}, // on first sample
		{15, -1, 0, 1}, // between
		{20, 1, 0, 2},  // on middle sample
		{25, -1, 1, 2}, // between
		{30, 2, 1, 3},  // on last sample
		{35, -1, 2, 3}, // after the end
	}
	for _, tt := range tests {
		e, b, a := tr.Bracket(tt.t)
		if e != tt.exact || b != tt.before || a != tt.after {
			t.Errorf("Bracket(%v)=(%d,%d,%d) want (%d,%d,%d)", tt.t, e, b, a, tt.exact, tt.before, tt.after)
		}
	}
}

func TestInterpolateAt(t *testing.T) {
	tr := line("a", 0, 10)
	if p, ok := tr.InterpolateAt(5); !ok || p != (geo.Point{X: 5, Y: 0}) {
		t.Errorf("InterpolateAt(5)=%v,%v", p, ok)
	}
	if p, ok := tr.InterpolateAt(0); !ok || p != (geo.Point{X: 0, Y: 0}) {
		t.Errorf("InterpolateAt(0)=%v,%v", p, ok)
	}
	if _, ok := tr.InterpolateAt(-1); ok {
		t.Error("InterpolateAt before start should fail")
	}
	if _, ok := tr.InterpolateAt(11); ok {
		t.Error("InterpolateAt after end should fail")
	}
	if _, ok := (Trajectory{}).InterpolateAt(0); ok {
		t.Error("InterpolateAt on empty should fail")
	}
}

func TestSpeeds(t *testing.T) {
	tr := Trajectory{Samples: []Sample{
		{Loc: geo.Point{X: 0}, T: 0},
		{Loc: geo.Point{X: 10}, T: 5},  // 2 m/s
		{Loc: geo.Point{X: 10}, T: 10}, // 0 m/s (dwell)
	}}
	got := tr.Speeds()
	if len(got) != 2 || got[0] != 2 || got[1] != 0 {
		t.Errorf("Speeds=%v", got)
	}
	if got := line("b", 5).Speeds(); got != nil {
		t.Errorf("single sample Speeds=%v", got)
	}
}

func TestTimestamps(t *testing.T) {
	tr := line("a", 1, 2, 3)
	got := tr.Timestamps()
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("Timestamps=%v", got)
	}
}

func TestTrajectoryString(t *testing.T) {
	if s := (Trajectory{ID: "x"}).String(); s == "" {
		t.Error("empty String()")
	}
	if s := line("a", 0, 60).String(); s == "" {
		t.Error("String()")
	}
}
