package model

import (
	"math"
	"testing"

	"github.com/stslib/sts/internal/geo"
)

// dwellWalk walks east at 1 m/s for 60 s, dwells near x=60 for 300 s,
// then walks on, sampled every 10 s.
func dwellWalk() Trajectory {
	tr := Trajectory{ID: "d"}
	add := func(x, t float64) {
		tr.Samples = append(tr.Samples, Sample{Loc: geo.Point{X: x, Y: 0}, T: t})
	}
	for t := 0.0; t <= 60; t += 10 {
		add(t, t)
	}
	// Dwell: tiny jitter around x=60 from t=70 to t=360.
	for i, t := 0, 70.0; t <= 360; i, t = i+1, t+30 {
		add(60+float64(i%3), t)
	}
	for t := 370.0; t <= 430; t += 10 {
		add(60+(t-360), t)
	}
	return tr
}

func TestStayPointsDetectsDwell(t *testing.T) {
	tr := dwellWalk()
	stays, err := StayPoints(tr, 10, 120)
	if err != nil {
		t.Fatal(err)
	}
	if len(stays) != 1 {
		t.Fatalf("got %d stays: %+v", len(stays), stays)
	}
	sp := stays[0]
	if sp.Duration() < 250 {
		t.Errorf("dwell duration %v", sp.Duration())
	}
	if math.Abs(sp.Center.X-61) > 3 || math.Abs(sp.Center.Y) > 1 {
		t.Errorf("dwell center %v", sp.Center)
	}
	if sp.First > sp.Last || sp.Last >= tr.Len() {
		t.Errorf("indices %d..%d", sp.First, sp.Last)
	}
}

func TestStayPointsNoneOnConstantMotion(t *testing.T) {
	tr := line("m", 0, 10, 20, 30, 40) // 1 m/s steady
	stays, err := StayPoints(tr, 5, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(stays) != 0 {
		t.Errorf("stays on constant motion: %+v", stays)
	}
}

func TestStayPointsValidation(t *testing.T) {
	tr := line("m", 0, 10)
	if _, err := StayPoints(tr, 0, 10); err == nil {
		t.Error("zero distance threshold accepted")
	}
	if _, err := StayPoints(tr, 10, 0); err == nil {
		t.Error("zero time threshold accepted")
	}
}

func TestSplitByGap(t *testing.T) {
	tr := line("s", 0, 10, 20, 500, 510, 2000)
	segs, err := SplitByGap(tr, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 3 {
		t.Fatalf("got %d segments", len(segs))
	}
	if segs[0].Len() != 3 || segs[1].Len() != 2 || segs[2].Len() != 1 {
		t.Errorf("segment lengths %d %d %d", segs[0].Len(), segs[1].Len(), segs[2].Len())
	}
	if segs[0].ID != "s#0" || segs[2].ID != "s#2" {
		t.Errorf("segment ids %q %q", segs[0].ID, segs[2].ID)
	}
	// Segments are deep copies.
	segs[0].Samples[0].T = -99
	if tr.Samples[0].T == -99 {
		t.Error("segment shares storage with the source")
	}
}

func TestSplitByGapEdgeCases(t *testing.T) {
	if segs, err := SplitByGap(Trajectory{ID: "e"}, 60); err != nil || segs != nil {
		t.Errorf("empty: %v, %v", segs, err)
	}
	tr := line("s", 0, 10)
	if _, err := SplitByGap(tr, 0); err == nil {
		t.Error("zero gap accepted")
	}
	segs, err := SplitByGap(tr, 60)
	if err != nil || len(segs) != 1 || segs[0].Len() != 2 {
		t.Errorf("no-gap trajectory: %v, %v", segs, err)
	}
}

func TestRemoveStays(t *testing.T) {
	tr := dwellWalk()
	out, err := RemoveStays(tr, 10, 120)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() >= tr.Len() {
		t.Fatalf("nothing removed: %d vs %d", out.Len(), tr.Len())
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("cleaned trajectory invalid: %v", err)
	}
	// The walk's moving parts survive.
	if out.Samples[0].T != 0 || out.End() != tr.End() {
		t.Errorf("endpoints changed: %v..%v", out.Samples[0].T, out.End())
	}
	// No stays remain after cleaning.
	stays, err := StayPoints(out, 10, 120)
	if err != nil {
		t.Fatal(err)
	}
	if len(stays) != 0 {
		t.Errorf("stays remain: %+v", stays)
	}
}
