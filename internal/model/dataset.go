package model

import (
	"fmt"
	"math/rand"

	"github.com/stslib/sts/internal/geo"
)

// Dataset is an ordered collection of trajectories. In the matching
// experiments (Section VI-C), two datasets are *paired*: D1[i] and D2[i]
// come from the same object.
type Dataset []Trajectory

// Validate validates every trajectory in the dataset.
func (d Dataset) Validate() error {
	for i, tr := range d {
		if err := tr.Validate(); err != nil {
			return fmt.Errorf("dataset[%d]: %w", i, err)
		}
	}
	return nil
}

// FilterMinLen returns the trajectories with at least n samples. The paper
// removes trajectories shorter than 20 samples from both datasets so that
// sub-trajectories at low sampling rates remain meaningful.
func (d Dataset) FilterMinLen(n int) Dataset {
	out := make(Dataset, 0, len(d))
	for _, tr := range d {
		if tr.Len() >= n {
			out = append(out, tr)
		}
	}
	return out
}

// Bounds returns the bounding rectangle of all locations in the dataset.
// ok is false when the dataset holds no samples at all.
func (d Dataset) Bounds() (r geo.Rect, ok bool) {
	first := true
	for _, tr := range d {
		if tr.Len() == 0 {
			continue
		}
		b := tr.Bounds()
		if first {
			r, first = b, false
		} else {
			r = r.Union(b)
		}
	}
	return r, !first
}

// Clone deep-copies the dataset.
func (d Dataset) Clone() Dataset {
	out := make(Dataset, len(d))
	for i, tr := range d {
		out[i] = tr.Clone()
	}
	return out
}

// AlternateSplit splits tr into two interleaved sub-trajectories, taking
// points alternately (Figure 3 of the paper): even-indexed samples go to
// the first, odd-indexed to the second. The two halves are trajectories of
// the same object observed by two "sensing systems" with disjoint sampling
// times, which is the ground-truth construction for trajectory matching.
func AlternateSplit(tr Trajectory) (a, b Trajectory) {
	a = Trajectory{ID: tr.ID, Samples: make([]Sample, 0, (tr.Len()+1)/2)}
	b = Trajectory{ID: tr.ID, Samples: make([]Sample, 0, tr.Len()/2)}
	for i, s := range tr.Samples {
		if i%2 == 0 {
			a.Samples = append(a.Samples, s)
		} else {
			b.Samples = append(b.Samples, s)
		}
	}
	return a, b
}

// SplitDataset applies AlternateSplit to every trajectory, producing the
// paired datasets D(1) and D(2) of Section VI-C.
func SplitDataset(d Dataset) (d1, d2 Dataset) {
	d1 = make(Dataset, len(d))
	d2 = make(Dataset, len(d))
	for i, tr := range d {
		d1[i], d2[i] = AlternateSplit(tr)
	}
	return d1, d2
}

// Downsample returns a sub-trajectory of tr sampled at the given rate in
// (0, 1]: round(rate·n) samples chosen uniformly at random without
// replacement, preserving time order. At least two samples are always
// kept (one if the trajectory has only one). rate ≥ 1 returns a clone.
func Downsample(tr Trajectory, rate float64, rng *rand.Rand) Trajectory {
	n := tr.Len()
	if rate >= 1 || n <= 2 {
		return tr.Clone()
	}
	if rate < 0 {
		rate = 0
	}
	keep := int(float64(n)*rate + 0.5)
	if keep < 2 {
		keep = 2
	}
	if keep >= n {
		return tr.Clone()
	}
	idx := rng.Perm(n)[:keep]
	// Preserve time order by marking kept indices.
	marked := make([]bool, n)
	for _, i := range idx {
		marked[i] = true
	}
	out := Trajectory{ID: tr.ID, Samples: make([]Sample, 0, keep)}
	for i, m := range marked {
		if m {
			out.Samples = append(out.Samples, tr.Samples[i])
		}
	}
	return out
}

// DownsampleDataset down-samples every trajectory at the given rate.
func DownsampleDataset(d Dataset, rate float64, rng *rand.Rand) Dataset {
	out := make(Dataset, len(d))
	for i, tr := range d {
		out[i] = Downsample(tr, rate, rng)
	}
	return out
}

// AddNoise returns a copy of tr with isotropic Gaussian location noise of
// radius beta meters added to every sample, the distortion protocol of
// Eq. 14:
//
//	x_i = x_i + β·dx, dx ~ N(0,1)
//	y_i = y_i + β·dy, dy ~ N(0,1)
func AddNoise(tr Trajectory, beta float64, rng *rand.Rand) Trajectory {
	out := tr.Clone()
	if beta == 0 {
		return out
	}
	for i := range out.Samples {
		out.Samples[i].Loc.X += beta * rng.NormFloat64()
		out.Samples[i].Loc.Y += beta * rng.NormFloat64()
	}
	return out
}

// AddNoiseDataset applies AddNoise to every trajectory.
func AddNoiseDataset(d Dataset, beta float64, rng *rand.Rand) Dataset {
	out := make(Dataset, len(d))
	for i, tr := range d {
		out[i] = AddNoise(tr, beta, rng)
	}
	return out
}

// ResampleUniform returns tr linearly resampled to a uniform period in
// seconds over its observed window — the calibration to "unified sampling
// strategies" that alignment-based measures assume. Trajectories with
// fewer than two samples are cloned unchanged; a non-positive period
// yields an error.
func ResampleUniform(tr Trajectory, period float64) (Trajectory, error) {
	if period <= 0 {
		return Trajectory{}, fmt.Errorf("model: resample period must be positive, got %v", period)
	}
	if tr.Len() < 2 {
		return tr.Clone(), nil
	}
	out := Trajectory{ID: tr.ID}
	for t := tr.Start(); t <= tr.End(); t += period {
		loc, ok := tr.InterpolateAt(t)
		if !ok {
			break
		}
		out.Samples = append(out.Samples, Sample{Loc: loc, T: t})
	}
	// Always keep the final observation so the window is preserved.
	if last := out.Samples[len(out.Samples)-1]; last.T < tr.End() {
		out.Samples = append(out.Samples, tr.Samples[tr.Len()-1])
	}
	return out, nil
}
