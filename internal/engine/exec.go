package engine

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach is the library's single worker-pool executor: it runs f(0..n-1)
// across up to `workers` goroutines (0 selects GOMAXPROCS), stops claiming
// new indices at the first error or when ctx is cancelled, and waits for
// every in-flight f to return before it does — callers never leak
// goroutines. The first error wins; a cancelled context reports ctx.Err().
//
// Every parallel fan-out in the library (matrix scoring, matching,
// linking, top-k, preparation) routes through this function, so context
// cancellation and deadline propagation behave identically everywhere.
func ForEach(ctx context.Context, n, workers int, f func(i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := f(i); err != nil {
				return err
			}
		}
		return ctx.Err()
	}
	var (
		next     atomic.Int64
		stopped  atomic.Bool
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	done := ctx.Done()
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if stopped.Load() {
					return
				}
				select {
				case <-done:
					return
				default:
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := f(i); err != nil {
					errOnce.Do(func() { firstErr = err })
					stopped.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// matrix fills an n×m matrix with sanitize(f(i, j)), parallelizing over
// rows through ForEach. Long rows re-check the context periodically so a
// cancellation returns promptly even when n is small and m is large.
func matrix(ctx context.Context, n, m, workers int, f func(i, j int) (float64, error)) ([][]float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([][]float64, n)
	err := ForEach(ctx, n, workers, func(i int) error {
		row := make([]float64, m)
		for j := 0; j < m; j++ {
			if j&63 == 63 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			v, err := f(i, j)
			if err != nil {
				return err
			}
			row[j] = sanitize(v)
		}
		out[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// sanitize maps NaN scores (which would poison rankings) to −Inf.
func sanitize(v float64) float64 {
	if math.IsNaN(v) {
		return math.Inf(-1)
	}
	return v
}
