package engine

import (
	"container/list"
	"sync"

	"github.com/stslib/sts/internal/model"
	"github.com/stslib/sts/internal/store"
)

// prepKey identifies one trajectory's derived state (prepared estimator or
// bucketed profile). Corpus trajectories are keyed by {id, n, gen}: the
// store's record generation is unique per (re)encoded record and never
// zero, so replacements can never collide with their predecessors.
// External trajectories (queries, batch datasets) carry gen 0 and pin the
// identity of the backing sample array instead — trajectory IDs alone are
// not unique across datasets (matching experiments reuse an object's ID
// for both halves of a split). Trajectories handed to the engine must not
// be mutated in place afterwards — the standard contract for sharing
// slices across goroutines anyway.
type prepKey struct {
	id    string
	n     int
	gen   uint64
	first *model.Sample
}

func keyOf(tr model.Trajectory) prepKey {
	k := prepKey{id: tr.ID, n: len(tr.Samples)}
	if k.n > 0 {
		k.first = &tr.Samples[0]
	}
	return k
}

func refKey(ref store.Ref) prepKey {
	return prepKey{id: ref.ID, n: ref.N, gen: ref.Gen}
}

// hashKey is FNV-1a over the key's ID mixed with its sample count and
// record generation — the shard selector. The backing-array pointer is
// deliberately left out: it only disambiguates same-ID same-length
// replacements of external trajectories, and hashing it would make shard
// placement depend on allocation addresses.
func hashKey(k prepKey) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(k.id); i++ {
		h ^= uint64(k.id[i])
		h *= prime64
	}
	h ^= uint64(k.n)
	h *= prime64
	h ^= k.gen
	h *= prime64
	return h
}

// CacheStats reports one derived-state cache's counters. Hits+Misses is
// the total number of lookups; Evictions counts entries dropped by the LRU
// bound. The engine keeps one cache per kind of derived state (prepared
// trajectories, and bucketed profiles when profiling is enabled), each
// with its own stats.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	// Size is the current number of cached entries, Cap the configured
	// bound (0 = unbounded).
	Size int
	Cap  int
	// Bytes is the estimated resident heap footprint of the completed
	// cached values (0 when the cache has no size estimator). It makes the
	// compact profile mode's memory claim observable: a float32-backed
	// profile cache reports roughly half the probability storage of a
	// float64-backed one over the same corpus.
	Bytes int64
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// cacheEntry is one cache slot. ready is closed once v/err are set, so
// concurrent requests for the same trajectory block on the single
// in-flight build instead of duplicating it.
type cacheEntry[V any] struct {
	key   prepKey
	ready chan struct{}
	done  bool
	v     V
	err   error
	bytes int64 // size estimate counted into the shard's total
}

// cacheShard is one independently locked slice of the cache: an LRU with
// single-flight semantics and its own counters. Keys are partitioned across
// shards by hash, so concurrent lookups of different trajectories contend
// on different mutexes instead of convoying behind one (the profile cache
// sits on every worker's hot path).
type cacheShard[V any] struct {
	mu      sync.Mutex
	cap     int        // 0 = unbounded
	order   *list.List // front = most recently used; values are *cacheEntry[V]
	entries map[prepKey]*list.Element
	size    func(V) int // nil = no byte accounting

	hits      uint64
	misses    uint64
	evictions uint64
	bytes     int64
}

// cacheShards is the shard count of a sharded cache (a power of two).
const cacheShards = 8

// minShardedCap is the smallest bounded capacity worth splitting: below it
// per-shard capacities would round to a handful of entries and the
// partition — not the LRU policy — would decide what survives. Small caches
// keep one shard and exact global LRU order.
const minShardedCap = 64

// lruCache is a size-bounded, sharded LRU of per-trajectory derived state
// with single-flight semantics and hit/miss/eviction counters. The engine
// instantiates it for *core.Prepared and *core.Profile. All methods are
// safe for concurrent use. The capacity bound is exact (shards split it
// without remainder loss); eviction order is LRU per shard, which
// approximates global LRU for the sharded sizes.
type lruCache[V any] struct {
	shards []*cacheShard[V]
	mask   uint64
	cap    int
}

// newLRUCache builds a cache bounded to capacity entries (0 = unbounded).
// size, when non-nil, estimates one value's resident bytes for the stats'
// footprint gauge.
func newLRUCache[V any](capacity int, size func(V) int) *lruCache[V] {
	n := cacheShards
	if capacity > 0 && capacity < minShardedCap {
		n = 1
	}
	c := &lruCache[V]{shards: make([]*cacheShard[V], n), mask: uint64(n - 1), cap: capacity}
	for i := range c.shards {
		scap := 0
		if capacity > 0 {
			scap = capacity / n
			if i < capacity%n {
				scap++
			}
		}
		c.shards[i] = &cacheShard[V]{
			cap:     scap,
			order:   list.New(),
			entries: make(map[prepKey]*list.Element),
			size:    size,
		}
	}
	return c
}

func (c *lruCache[V]) shard(key prepKey) *cacheShard[V] {
	if len(c.shards) == 1 {
		return c.shards[0]
	}
	return c.shards[hashKey(key)&c.mask]
}

// get returns the derived state for key, building it with build() on a
// miss. Errors are not cached: the failed entry is removed so a later call
// retries, but every waiter of the in-flight attempt sees the error.
func (c *lruCache[V]) get(key prepKey, build func() (V, error)) (V, error) {
	s := c.shard(key)
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		s.hits++
		s.order.MoveToFront(el)
		e := el.Value.(*cacheEntry[V])
		s.mu.Unlock()
		<-e.ready
		return e.v, e.err
	}
	s.misses++
	e := &cacheEntry[V]{key: key, ready: make(chan struct{})}
	s.entries[key] = s.order.PushFront(e)
	s.evictLocked()
	s.mu.Unlock()

	v, err := build()

	s.mu.Lock()
	e.v, e.err = v, err
	e.done = true
	if err != nil {
		if el, ok := s.entries[key]; ok && el.Value.(*cacheEntry[V]) == e {
			s.order.Remove(el)
			delete(s.entries, key)
		}
	} else if s.size != nil {
		e.bytes = int64(s.size(v))
		s.bytes += e.bytes
	}
	s.mu.Unlock()
	close(e.ready)
	return v, err
}

// evictLocked drops least-recently-used *completed* entries until the shard
// fits its bound. In-flight entries are skipped — evicting them would
// strand waiters — so the shard can transiently exceed cap while many
// builds race.
func (s *cacheShard[V]) evictLocked() {
	if s.cap <= 0 {
		return
	}
	for el := s.order.Back(); el != nil && len(s.entries) > s.cap; {
		prev := el.Prev()
		e := el.Value.(*cacheEntry[V])
		if e.done {
			s.order.Remove(el)
			delete(s.entries, e.key)
			s.evictions++
			s.bytes -= e.bytes
		}
		el = prev
	}
}

// peek returns key's completed value without blocking or counting toward
// the hit/miss stats, and the zero V when the entry is absent or still in
// flight. The append path uses it to seize a record's derived state for
// incremental maintenance before the old generation is forgotten.
func (c *lruCache[V]) peek(key prepKey) (V, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		if e := el.Value.(*cacheEntry[V]); e.done && e.err == nil {
			return e.v, true
		}
	}
	var zero V
	return zero, false
}

// put inserts a completed value for key, dropping the least-recently-used
// entries if the shard overflows. An existing entry (completed or in
// flight) wins: the racing build produced the same generation's state, and
// replacing an in-flight entry would strand its waiters.
func (c *lruCache[V]) put(key prepKey, v V) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[key]; ok {
		return
	}
	e := &cacheEntry[V]{key: key, ready: make(chan struct{}), done: true, v: v}
	close(e.ready)
	if s.size != nil {
		e.bytes = int64(s.size(v))
		s.bytes += e.bytes
	}
	s.entries[key] = s.order.PushFront(e)
	s.evictLocked()
}

// each calls fn for every completed, error-free entry. Each shard's
// entries are collected under its lock and fn runs after the shard
// unlocks, so fn may be expensive (the sidecar capture encodes profile
// blobs) without stalling concurrent lookups. Entries completing or
// evicting during the walk may or may not be visited — callers that
// need exactness must revalidate downstream (the store re-filters
// captured entries against the snapshot's refs).
func (c *lruCache[V]) each(fn func(prepKey, V)) {
	for _, s := range c.shards {
		s.mu.Lock()
		keys := make([]prepKey, 0, len(s.entries))
		vals := make([]V, 0, len(s.entries))
		for el := s.order.Front(); el != nil; el = el.Next() {
			if e := el.Value.(*cacheEntry[V]); e.done && e.err == nil {
				keys = append(keys, e.key)
				vals = append(vals, e.v)
			}
		}
		s.mu.Unlock()
		for i := range keys {
			fn(keys[i], vals[i])
		}
	}
}

// forget removes a trajectory's entry (if completed) — corpus Remove and
// Replace call it so stale derived state does not linger at full cache
// capacity.
func (c *lruCache[V]) forget(key prepKey) {
	s := c.shard(key)
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		if e := el.Value.(*cacheEntry[V]); e.done {
			s.order.Remove(el)
			delete(s.entries, key)
			s.bytes -= e.bytes
		}
	}
	s.mu.Unlock()
}

func (c *lruCache[V]) stats() CacheStats {
	out := CacheStats{Cap: c.cap}
	for _, s := range c.shards {
		s.mu.Lock()
		out.Hits += s.hits
		out.Misses += s.misses
		out.Evictions += s.evictions
		out.Size += len(s.entries)
		out.Bytes += s.bytes
		s.mu.Unlock()
	}
	return out
}
