package engine

import (
	"container/list"
	"sync"

	"github.com/stslib/sts/internal/core"
	"github.com/stslib/sts/internal/model"
)

// prepKey identifies one trajectory's prepared state. Trajectory IDs alone
// are not unique across datasets (matching experiments reuse an object's ID
// for both halves of a split), so the key also pins the sample count and
// the identity of the backing sample array. Trajectories handed to the
// engine must not be mutated in place afterwards — the standard contract
// for sharing slices across goroutines anyway.
type prepKey struct {
	id    string
	n     int
	first *model.Sample
}

func keyOf(tr model.Trajectory) prepKey {
	k := prepKey{id: tr.ID, n: len(tr.Samples)}
	if k.n > 0 {
		k.first = &tr.Samples[0]
	}
	return k
}

// CacheStats reports the prepared-trajectory cache counters. Hits+Misses
// is the total number of preparation lookups; Evictions counts entries
// dropped by the LRU bound.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	// Size is the current number of cached entries, Cap the configured
	// bound (0 = unbounded).
	Size int
	Cap  int
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// prepEntry is one cache slot. ready is closed once p/err are set, so
// concurrent requests for the same trajectory block on the single in-flight
// preparation instead of duplicating it.
type prepEntry struct {
	key   prepKey
	ready chan struct{}
	done  bool
	p     *core.Prepared
	err   error
}

// prepCache is a size-bounded LRU of prepared trajectories with
// single-flight semantics and hit/miss/eviction counters. All methods are
// safe for concurrent use.
type prepCache struct {
	mu      sync.Mutex
	cap     int // 0 = unbounded
	order   *list.List // front = most recently used; values are *prepEntry
	entries map[prepKey]*list.Element

	hits      uint64
	misses    uint64
	evictions uint64
}

func newPrepCache(capacity int) *prepCache {
	return &prepCache{cap: capacity, order: list.New(), entries: make(map[prepKey]*list.Element)}
}

// get returns the prepared state for key, preparing it with prepare() on a
// miss. Errors are not cached: the failed entry is removed so a later call
// retries, but every waiter of the in-flight attempt sees the error.
func (c *prepCache) get(key prepKey, prepare func() (*core.Prepared, error)) (*core.Prepared, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.hits++
		c.order.MoveToFront(el)
		e := el.Value.(*prepEntry)
		c.mu.Unlock()
		<-e.ready
		return e.p, e.err
	}
	c.misses++
	e := &prepEntry{key: key, ready: make(chan struct{})}
	c.entries[key] = c.order.PushFront(e)
	c.evictLocked()
	c.mu.Unlock()

	p, err := prepare()

	c.mu.Lock()
	e.p, e.err = p, err
	e.done = true
	if err != nil {
		if el, ok := c.entries[key]; ok && el.Value.(*prepEntry) == e {
			c.order.Remove(el)
			delete(c.entries, key)
		}
	}
	c.mu.Unlock()
	close(e.ready)
	return p, err
}

// evictLocked drops least-recently-used *completed* entries until the cache
// fits its bound. In-flight entries are skipped — evicting them would
// strand waiters — so the cache can transiently exceed cap while many
// preparations race.
func (c *prepCache) evictLocked() {
	if c.cap <= 0 {
		return
	}
	for el := c.order.Back(); el != nil && len(c.entries) > c.cap; {
		prev := el.Prev()
		e := el.Value.(*prepEntry)
		if e.done {
			c.order.Remove(el)
			delete(c.entries, e.key)
			c.evictions++
		}
		el = prev
	}
}

// forget removes a trajectory's entry (if completed) — corpus Remove and
// Replace call it so stale prepared state does not linger at full cache
// capacity.
func (c *prepCache) forget(key prepKey) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok && el.Value.(*prepEntry).done {
		c.order.Remove(el)
		delete(c.entries, key)
	}
	c.mu.Unlock()
}

func (c *prepCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Size:      len(c.entries),
		Cap:       c.cap,
	}
}
