package engine

import (
	"container/list"
	"sync"

	"github.com/stslib/sts/internal/model"
)

// prepKey identifies one trajectory's derived state (prepared estimator or
// bucketed profile). Trajectory IDs alone are not unique across datasets
// (matching experiments reuse an object's ID for both halves of a split),
// so the key also pins the sample count and the identity of the backing
// sample array. Trajectories handed to the engine must not be mutated in
// place afterwards — the standard contract for sharing slices across
// goroutines anyway.
type prepKey struct {
	id    string
	n     int
	first *model.Sample
}

func keyOf(tr model.Trajectory) prepKey {
	k := prepKey{id: tr.ID, n: len(tr.Samples)}
	if k.n > 0 {
		k.first = &tr.Samples[0]
	}
	return k
}

// CacheStats reports one derived-state cache's counters. Hits+Misses is
// the total number of lookups; Evictions counts entries dropped by the LRU
// bound. The engine keeps one cache per kind of derived state (prepared
// trajectories, and bucketed profiles when profiling is enabled), each
// with its own stats.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	// Size is the current number of cached entries, Cap the configured
	// bound (0 = unbounded).
	Size int
	Cap  int
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// cacheEntry is one cache slot. ready is closed once v/err are set, so
// concurrent requests for the same trajectory block on the single
// in-flight build instead of duplicating it.
type cacheEntry[V any] struct {
	key   prepKey
	ready chan struct{}
	done  bool
	v     V
	err   error
}

// lruCache is a size-bounded LRU of per-trajectory derived state with
// single-flight semantics and hit/miss/eviction counters. The engine
// instantiates it for *core.Prepared and *core.Profile. All methods are
// safe for concurrent use.
type lruCache[V any] struct {
	mu      sync.Mutex
	cap     int        // 0 = unbounded
	order   *list.List // front = most recently used; values are *cacheEntry[V]
	entries map[prepKey]*list.Element

	hits      uint64
	misses    uint64
	evictions uint64
}

func newLRUCache[V any](capacity int) *lruCache[V] {
	return &lruCache[V]{cap: capacity, order: list.New(), entries: make(map[prepKey]*list.Element)}
}

// get returns the derived state for key, building it with build() on a
// miss. Errors are not cached: the failed entry is removed so a later call
// retries, but every waiter of the in-flight attempt sees the error.
func (c *lruCache[V]) get(key prepKey, build func() (V, error)) (V, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.hits++
		c.order.MoveToFront(el)
		e := el.Value.(*cacheEntry[V])
		c.mu.Unlock()
		<-e.ready
		return e.v, e.err
	}
	c.misses++
	e := &cacheEntry[V]{key: key, ready: make(chan struct{})}
	c.entries[key] = c.order.PushFront(e)
	c.evictLocked()
	c.mu.Unlock()

	v, err := build()

	c.mu.Lock()
	e.v, e.err = v, err
	e.done = true
	if err != nil {
		if el, ok := c.entries[key]; ok && el.Value.(*cacheEntry[V]) == e {
			c.order.Remove(el)
			delete(c.entries, key)
		}
	}
	c.mu.Unlock()
	close(e.ready)
	return v, err
}

// evictLocked drops least-recently-used *completed* entries until the cache
// fits its bound. In-flight entries are skipped — evicting them would
// strand waiters — so the cache can transiently exceed cap while many
// builds race.
func (c *lruCache[V]) evictLocked() {
	if c.cap <= 0 {
		return
	}
	for el := c.order.Back(); el != nil && len(c.entries) > c.cap; {
		prev := el.Prev()
		e := el.Value.(*cacheEntry[V])
		if e.done {
			c.order.Remove(el)
			delete(c.entries, e.key)
			c.evictions++
		}
		el = prev
	}
}

// forget removes a trajectory's entry (if completed) — corpus Remove and
// Replace call it so stale derived state does not linger at full cache
// capacity.
func (c *lruCache[V]) forget(key prepKey) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok && el.Value.(*cacheEntry[V]).done {
		c.order.Remove(el)
		delete(c.entries, key)
	}
	c.mu.Unlock()
}

func (c *lruCache[V]) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Size:      len(c.entries),
		Cap:       c.cap,
	}
}
