// Package engine is the execution layer under scoring, matching, linking,
// and top-k search: one long-lived owner for prepared-trajectory state and
// one cancellable worker-pool executor, shared by every entry point that
// previously hand-rolled its own goroutine fan-out.
//
// An Engine binds a similarity scorer (typically STS, via core.Measure) to
// a mutable Corpus of trajectories. It owns
//
//   - the prepared-trajectory lifecycle: a size-bounded LRU cache of
//     core.Prepared with hit/miss/eviction counters and single-flight
//     preparation under concurrency;
//   - corpus mutation (Add/Remove/Replace) with incremental updates to an
//     optional spatio-temporal pruner (the inverted index);
//   - the single executor (ForEach) through which all parallel work runs,
//     with context cancellation and deadline propagation.
//
// The eval, linking, and index packages re-express their entry points as
// thin views over this package, so a server can hold one Engine per corpus
// and serve continuous top-k / join queries without re-preparing
// trajectories per request.
package engine

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"github.com/stslib/sts/internal/core"
	"github.com/stslib/sts/internal/model"
	"github.com/stslib/sts/internal/store"
)

// Scorer assigns a similarity score to a pair of trajectories; higher is
// more similar. It is structurally identical to eval.Scorer (this package
// sits below eval, so it declares its own copy; any eval.Scorer value
// satisfies it).
type Scorer interface {
	Name() string
	Score(a, b model.Trajectory) (float64, error)
}

// MeasureScorer is a Scorer backed by a core.Measure. Engines detect it to
// route scoring through the prepared-trajectory cache and
// core.Measure.SimilarityPrepared instead of pairwise Score calls.
// eval.STSScorer implements it.
type MeasureScorer interface {
	Scorer
	Measure() *core.Measure
}

// ProfileScorer is a MeasureScorer that asks for the bucketed-profile
// approximation: when ProfileOptions returns non-nil, engines score its
// pairs with core.SimilarityProfiled over cached per-trajectory profiles
// instead of the exact SimilarityPrepared. eval.STSScorer implements it
// (returning nil unless built profiled). Options.Profile on the engine
// takes precedence when set.
type ProfileScorer interface {
	MeasureScorer
	ProfileOptions() *core.ProfileOptions
}

// Pruner is the candidate-pruning index the engine keeps incrementally
// up to date under corpus mutation. index.Index implements it; the
// interface lives here so engine does not import index (index's TopK is a
// thin view over this package).
type Pruner interface {
	// Insert records the trajectory stored in the given corpus slot.
	Insert(slot int, tr model.Trajectory)
	// Remove forgets the trajectory previously inserted at slot.
	Remove(slot int, tr model.Trajectory)
	// Candidates returns the slots that could plausibly overlap the query
	// in space-time; slots outside the result are never scored by TopK.
	Candidates(query model.Trajectory) []int
}

// DefaultCacheSize bounds the prepared-trajectory LRU when Options.
// CacheSize is zero.
const DefaultCacheSize = 4096

// Options configures an Engine.
type Options struct {
	// Workers bounds scoring parallelism (0 selects GOMAXPROCS).
	Workers int
	// CacheSize bounds the prepared-trajectory LRU cache (0 selects
	// DefaultCacheSize; negative means unbounded).
	CacheSize int
	// Pruner, when set, prunes TopK candidate sets and is kept up to date
	// incrementally by Add/Remove/Replace.
	Pruner Pruner
	// Profile, when set, switches measure-backed scoring to the bucketed
	// S-T profile approximation: each trajectory's sparse profile is built
	// once (cached in a second LRU alongside the prepared state) and pair
	// scoring becomes a sparse dot-product merge. When nil, the scorer's
	// own ProfileOptions (if it is a ProfileScorer) apply; when both are
	// nil, scoring stays exact. Requires a MeasureScorer.
	Profile *core.ProfileOptions
	// DisablePruning forces TopK and MinScore-thresholded queries down the
	// exhaustive path even when the engine could filter-and-refine.
	// Benchmarks and equivalence tests use it to pin the exhaustive
	// baseline; production engines leave it false.
	DisablePruning bool
	// PruneBucketSeconds is the bucket width of the bound profiles an
	// exact (non-profiled) engine derives its admissible upper bounds from
	// (0 selects core.DefaultProfileBucketSeconds). A profiled engine's
	// bounds always reuse its scoring profiles. Ignored when pruning is
	// disabled.
	PruneBucketSeconds float64
	// Corpus is the columnar trajectory store backing the engine (nil
	// selects a fresh lossless in-memory store.New). The engine takes
	// ownership: a recovered store's content is loaded into the corpus at
	// construction, all mutations write through it (reaching its WAL when
	// persistent), and Engine.Close closes it. Callers must not mutate a
	// Corpus behind the engine's back.
	Corpus store.Corpus
}

// Match is one result of Engine.TopK.
type Match struct {
	// ID is the corpus trajectory's ID, Slot its corpus slot.
	ID   string
	Slot int
	// Score is its similarity to the query.
	Score float64
}

// Engine binds a scorer to a corpus. All methods are safe for concurrent
// use; queries observe a consistent snapshot of the corpus taken when they
// start.
type Engine struct {
	scorer   Scorer
	measure  *core.Measure // non-nil when scorer is a MeasureScorer
	workers  int
	cache    *lruCache[*core.Prepared]
	profOpts *core.ProfileOptions // non-nil switches scoring to profiles
	profiles *lruCache[*core.Profile]
	pruner   Pruner
	// boundOpts is the profile width the filter-and-refine path derives its
	// upper bounds from: the scoring profile options when profiled, a
	// dedicated width otherwise. profiles is populated whenever pruning or
	// profiled scoring needs it; noPrune pins every query exhaustive.
	boundOpts core.ProfileOptions
	noPrune   bool
	pstats    pruneCounters

	// corpus is the columnar record store — the single source of truth for
	// trajectory content. slots/byID only map store records to the dense
	// slot numbers the pruner's postings are keyed by; they never hold
	// samples. All engine mutations hold e.mu, so corpus and slots always
	// agree.
	corpus store.Corpus
	mu     sync.RWMutex
	slots  []corpusSlot
	byID   map[string]int
	free   []int

	// warmProfiles counts profiles installed from the store's derived-
	// state sidecar at construction — the engine started scoring-warm,
	// not just data-warm.
	warmProfiles int
}

// corpusSlot holds one corpus entry's record handle; freed slots are
// reused by Add so pruner postings stay small. minT caches the record's
// first (minimum) timestamp, read from the encoded header without a
// full decode, so a retention sweep skips unexpired trajectories in
// O(1) per slot. Append never lowers a record's first timestamp, so
// minT stays valid across appends; Replace and trim recompute it.
type corpusSlot struct {
	ref  store.Ref
	used bool
	minT float64
}

// slotMinT reads a record's first timestamp without decoding its
// samples. A header parse error degrades to -Inf: the sweep then
// decodes that record and surfaces the real error there, so corrupt
// data is never silently retained.
func slotMinT(ref store.Ref) float64 {
	t, err := ref.FirstTime()
	if err != nil {
		return math.Inf(-1)
	}
	return t
}

// New builds an Engine. The scorer is required; a MeasureScorer enables
// the prepared cache and the zero-allocation prepared scoring path.
func New(scorer Scorer, opts Options) (*Engine, error) {
	if scorer == nil {
		return nil, errors.New("engine: scorer is required")
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	capacity := opts.CacheSize
	switch {
	case capacity == 0:
		capacity = DefaultCacheSize
	case capacity < 0:
		capacity = 0 // unbounded
	}
	corpus := opts.Corpus
	if corpus == nil {
		corpus = store.New(store.Options{})
	}
	e := &Engine{
		scorer:  scorer,
		workers: workers,
		cache:   newLRUCache(capacity, (*core.Prepared).MemoryBytes),
		pruner:  opts.Pruner,
		corpus:  corpus,
		byID:    make(map[string]int),
	}
	if ms, ok := scorer.(MeasureScorer); ok {
		e.measure = ms.Measure()
	}
	e.profOpts = opts.Profile
	if e.profOpts == nil {
		if ps, ok := scorer.(ProfileScorer); ok {
			e.profOpts = ps.ProfileOptions()
		}
	}
	if e.profOpts != nil && e.measure == nil {
		return nil, errors.New("engine: Options.Profile requires a measure-backed scorer")
	}
	if w := opts.PruneBucketSeconds; w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		return nil, fmt.Errorf("engine: Options.PruneBucketSeconds must be non-negative and finite, got %v", w)
	}
	e.noPrune = opts.DisablePruning
	if e.profOpts != nil {
		e.boundOpts = *e.profOpts
	} else {
		e.boundOpts = core.ProfileOptions{BucketSeconds: opts.PruneBucketSeconds}
	}
	e.boundOpts.Bounds = true
	// The profile cache backs both profiled scoring and the bound phase of
	// filter-and-refine, so an exact engine with pruning enabled keeps one
	// too.
	if e.measure != nil && (e.profOpts != nil || !e.noPrune) {
		e.profiles = newLRUCache(capacity, (*core.Profile).MemoryBytes)
	}
	// A recovered (or pre-populated) corpus becomes the initial slot set.
	// ForEach yields refs in sorted-ID order, so slot assignment — and with
	// it Match.Slot and tie-breaking — is deterministic across restarts.
	if err := corpus.ForEach(func(ref store.Ref) error {
		slot := e.takeSlotLocked(ref)
		if e.pruner != nil {
			tr, err := ref.Decode()
			if err != nil {
				return err
			}
			e.pruner.Insert(slot, tr)
		}
		return nil
	}); err != nil {
		return nil, fmt.Errorf("engine: load corpus: %w", err)
	}
	e.warmProfiles = e.warmFromSidecar()
	return e, nil
}

// warmFromSidecar installs the corpus's recovered derived-state sidecar
// entries into the profile cache and registers the capture callback the
// store invokes at snapshot time. The store has already revalidated each
// payload against its record's content and remapped it to the recovered
// generation, so validation here is about configuration: a profile only
// warms the cache if it was built with this engine's bound options (the
// record identity is re-checked defensively anyway). Returns the number
// of profiles warm-loaded; no-op for in-memory corpora and engines
// without a profile cache.
func (e *Engine) warmFromSidecar() int {
	sc, ok := e.corpus.(store.SidecarCorpus)
	if !ok || e.measure == nil || e.profiles == nil {
		return 0
	}
	w := e.boundOpts.BucketSeconds
	if w == 0 {
		w = core.DefaultProfileBucketSeconds
	}
	loaded := 0
	for _, ent := range sc.WarmEntries() {
		prof, err := core.DecodeProfile(ent.Blob)
		if err != nil {
			continue
		}
		if prof.ID != ent.ID || prof.Compact() != e.boundOpts.Compact ||
			prof.BucketSeconds != w || !prof.HasBounds() {
			continue
		}
		slot, ok := e.byID[ent.ID]
		if !ok {
			continue
		}
		ref := e.slots[slot].ref
		if ref.Gen != ent.Gen || prof.SampleCount() != ref.N {
			continue
		}
		e.profiles.put(refKey(ref), prof)
		loaded++
	}
	sc.SetSidecarSource(e.captureSidecar)
	return loaded
}

// captureSidecar enumerates the profile cache for the store's snapshot
// writer. Only corpus-record entries are captured — external query
// profiles carry generation 0 and have no record to bind to. The store
// re-filters captured entries against the snapshot's refs, so a stale
// generation here is merely skipped, never persisted.
func (e *Engine) captureSidecar() []store.SidecarEntry {
	var out []store.SidecarEntry
	e.profiles.each(func(k prepKey, p *core.Profile) {
		if k.gen == 0 {
			return
		}
		out = append(out, store.SidecarEntry{ID: k.id, Gen: k.gen, Blob: core.EncodeProfile(p)})
	})
	return out
}

// WarmLoaded reports how many profiles the engine installed from the
// store's derived-state sidecar at construction (0 for cold starts and
// in-memory corpora).
func (e *Engine) WarmLoaded() int { return e.warmProfiles }

// Corpus returns the engine's backing store.
func (e *Engine) Corpus() store.Corpus { return e.corpus }

// StoreStats returns the backing store's footprint and persistence
// counters.
func (e *Engine) StoreStats() store.Stats { return e.corpus.Stats() }

// Recovery returns the backing store's Open-time recovery report
// (ok=false when the corpus is in-memory).
func (e *Engine) Recovery() (store.RecoveryInfo, bool) { return e.corpus.Recovery() }

// Close closes the backing store (flushing its WAL when persistent);
// further corpus mutations fail.
func (e *Engine) Close() error { return e.corpus.Close() }

// Snapshot forces the backing store to capture a full snapshot now —
// including the derived-state sidecar when the store carries one — instead
// of waiting for the WAL-growth trigger. It errors on non-durable corpora.
func (e *Engine) Snapshot() error {
	if sn, ok := e.corpus.(interface{ Snapshot() error }); ok {
		return sn.Snapshot()
	}
	return errors.New("engine: snapshot requires a durable corpus")
}

// Profiled reports whether the engine scores through bucketed profiles.
func (e *Engine) Profiled() bool { return e.profOpts != nil }

// Scorer returns the engine's scorer.
func (e *Engine) Scorer() Scorer { return e.scorer }

// Workers returns the engine's parallelism bound.
func (e *Engine) Workers() int { return e.workers }

// CacheStats returns the prepared-trajectory cache counters.
func (e *Engine) CacheStats() CacheStats { return e.cache.stats() }

// ProfileCacheStats returns the profile cache counters (all zero when the
// engine is not profiled).
func (e *Engine) ProfileCacheStats() CacheStats {
	if e.profiles == nil {
		return CacheStats{}
	}
	return e.profiles.stats()
}

// Len returns the number of trajectories in the corpus, sourced from the
// backing store.
func (e *Engine) Len() int {
	return e.corpus.Len()
}

// Get decodes the corpus trajectory with the given ID from the backing
// store. Repeated lookups of the same record are served from the store's
// decode cache (same backing array); callers must not mutate the result.
func (e *Engine) Get(id string) (model.Trajectory, bool) {
	return e.corpus.Get(id)
}

// IDs returns the corpus trajectory IDs, sorted, from the backing store.
func (e *Engine) IDs() []string {
	return e.corpus.IDs()
}

// Subset resolves corpus trajectories by ID under one consistent snapshot
// (engine mutations are excluded for the duration), preserving the request
// order; an empty ids selects the whole corpus in sorted-ID order. Unknown
// IDs fail the whole call so partial datasets never reach a linking or
// batch-scoring run silently.
func (e *Engine) Subset(ids []string) (model.Dataset, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if len(ids) == 0 {
		ids = e.corpus.IDs()
	}
	out := make(model.Dataset, 0, len(ids))
	for _, id := range ids {
		tr, ok := e.corpus.Get(id)
		if !ok {
			return nil, fmt.Errorf("engine: trajectory %q %w", id, ErrNotFound)
		}
		out = append(out, tr)
	}
	return out, nil
}

// Add inserts a trajectory into the corpus and returns its slot. The
// trajectory must validate and carry a non-empty ID not already present.
// The record is encoded into the store (and its WAL when persistent)
// before any engine state changes; the pruner's postings are updated
// incrementally — no corpus rebuild.
func (e *Engine) Add(tr model.Trajectory) (int, error) {
	if tr.ID == "" {
		return 0, errors.New("engine: corpus trajectories need a non-empty ID")
	}
	if err := tr.Validate(); err != nil {
		return 0, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.byID[tr.ID]; ok {
		return 0, fmt.Errorf("engine: trajectory %q already in corpus (use Replace)", tr.ID)
	}
	ref, err := e.corpus.Add(tr)
	if err != nil {
		return 0, fmt.Errorf("engine: %w", err)
	}
	slot := e.takeSlotLocked(ref)
	if e.pruner != nil {
		e.pruner.Insert(slot, tr)
	}
	return slot, nil
}

// Remove deletes the trajectory with the given ID from the corpus (and its
// WAL when persistent), its pruner postings, and the prepared cache.
func (e *Engine) Remove(id string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	slot, ok := e.byID[id]
	if !ok {
		return fmt.Errorf("engine: trajectory %q %w", id, ErrNotFound)
	}
	// The pruner's postings are keyed by sample content, so removal needs
	// the trajectory decoded; skip the decode entirely without a pruner.
	var old model.Trajectory
	if e.pruner != nil {
		var err error
		if old, err = e.slots[slot].ref.Decode(); err != nil {
			return fmt.Errorf("engine: %w", err)
		}
	}
	if err := e.corpus.Remove(id); err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	e.dropSlotLocked(slot, old)
	return nil
}

// Replace swaps the corpus trajectory with tr.ID for tr, keeping its slot
// when present and adding it otherwise. Stale cache entries and postings
// are dropped incrementally.
func (e *Engine) Replace(tr model.Trajectory) (int, error) {
	if tr.ID == "" {
		return 0, errors.New("engine: corpus trajectories need a non-empty ID")
	}
	if err := tr.Validate(); err != nil {
		return 0, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if slot, ok := e.byID[tr.ID]; ok {
		oldRef := e.slots[slot].ref
		var old model.Trajectory
		if e.pruner != nil {
			var err error
			if old, err = oldRef.Decode(); err != nil {
				return 0, fmt.Errorf("engine: %w", err)
			}
		}
		ref, err := e.corpus.Replace(tr)
		if err != nil {
			return 0, fmt.Errorf("engine: %w", err)
		}
		if e.pruner != nil {
			e.pruner.Remove(slot, old)
			e.pruner.Insert(slot, tr)
		}
		e.forgetDerived(refKey(oldRef))
		e.slots[slot] = corpusSlot{ref: ref, used: true, minT: slotMinT(ref)}
		return slot, nil
	}
	ref, err := e.corpus.Replace(tr)
	if err != nil {
		return 0, fmt.Errorf("engine: %w", err)
	}
	slot := e.takeSlotLocked(ref)
	if e.pruner != nil {
		e.pruner.Insert(slot, tr)
	}
	return slot, nil
}

// takeSlotLocked records ref in a free (or new) slot. Caller holds e.mu.
func (e *Engine) takeSlotLocked(ref store.Ref) int {
	s := corpusSlot{ref: ref, used: true, minT: slotMinT(ref)}
	var slot int
	if n := len(e.free); n > 0 {
		slot = e.free[n-1]
		e.free = e.free[:n-1]
		e.slots[slot] = s
	} else {
		slot = len(e.slots)
		e.slots = append(e.slots, s)
	}
	e.byID[ref.ID] = slot
	return slot
}

// dropSlotLocked frees a slot and its derived state; old is the decoded
// trajectory for the pruner (ignored without one). Caller holds e.mu and
// has already removed the record from the corpus.
func (e *Engine) dropSlotLocked(slot int, old model.Trajectory) {
	ref := e.slots[slot].ref
	if e.pruner != nil {
		e.pruner.Remove(slot, old)
	}
	e.forgetDerived(refKey(ref))
	delete(e.byID, ref.ID)
	e.slots[slot] = corpusSlot{}
	e.free = append(e.free, slot)
}

// ErrNoQuery is returned by TopK when the query trajectory is invalid.
var ErrNoQuery = errors.New("engine: invalid query trajectory")

// ErrNotFound reports a corpus lookup of an unknown trajectory ID; Remove
// and Subset wrap it so callers (the HTTP layer) can map it to a 404
// without string matching.
var ErrNotFound = errors.New("not in corpus")

// candidate is one corpus entry snapshotted for a query. The Ref embeds
// the immutable record bytes, so the query decodes the trajectory as of
// the snapshot even if the corpus mutates underneath.
type candidate struct {
	slot int
	ref  store.Ref
}

// snapshotCandidates snapshots the query's candidate set — the pruner's
// when one is configured, the whole corpus otherwise — under one read
// lock, so later corpus mutations do not affect the query.
func (e *Engine) snapshotCandidates(query model.Trajectory) []candidate {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var cands []candidate
	if e.pruner != nil {
		for _, slot := range e.pruner.Candidates(query) {
			if slot >= 0 && slot < len(e.slots) && e.slots[slot].used {
				cands = append(cands, candidate{slot: slot, ref: e.slots[slot].ref})
			}
		}
	} else {
		cands = make([]candidate, 0, len(e.byID))
		for slot, s := range e.slots {
			if s.used {
				cands = append(cands, candidate{slot: slot, ref: s.ref})
			}
		}
	}
	return cands
}

// canPrune reports whether the engine can run the filter-and-refine query
// path: pruning enabled and a measure-backed scorer with a bound-profile
// cache to derive admissible upper bounds from.
func (e *Engine) canPrune() bool {
	return !e.noPrune && e.measure != nil && e.profiles != nil
}

// prepared returns the cached prepared state for tr, preparing at most
// once concurrently per trajectory.
func (e *Engine) prepared(tr model.Trajectory) (*core.Prepared, error) {
	return e.cache.get(keyOf(tr), func() (*core.Prepared, error) {
		p, err := e.measure.Prepare(tr)
		if err != nil {
			return nil, fmt.Errorf("engine: prepare %q: %w", tr.ID, err)
		}
		return p, nil
	})
}

// profiled returns the cached bucketed profile for tr, building at most
// once concurrently per trajectory. The build routes through the prepared
// cache, so a trajectory's estimator state is shared between the exact and
// profiled paths. Profiled engines score with these profiles; exact ones
// use them only for the filter phase's upper bounds.
func (e *Engine) profiled(tr model.Trajectory) (*core.Profile, error) {
	return e.profiles.get(keyOf(tr), func() (*core.Profile, error) {
		p, err := e.prepared(tr)
		if err != nil {
			return nil, err
		}
		prof, err := e.measure.Profile(p, e.boundOpts)
		if err != nil {
			return nil, fmt.Errorf("engine: profile %q: %w", tr.ID, err)
		}
		return prof, nil
	})
}

// preparedRef is prepared for a corpus record: the columnar record is
// decoded only on a cache miss, immediately before preparation, so cached
// corpus entries never hold boxed samples.
func (e *Engine) preparedRef(ref store.Ref) (*core.Prepared, error) {
	return e.cache.get(refKey(ref), func() (*core.Prepared, error) {
		tr, err := ref.Decode()
		if err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
		p, err := e.measure.Prepare(tr)
		if err != nil {
			return nil, fmt.Errorf("engine: prepare %q: %w", tr.ID, err)
		}
		return p, nil
	})
}

// profiledRef is profiled for a corpus record (decode-on-miss, see
// preparedRef).
func (e *Engine) profiledRef(ref store.Ref) (*core.Profile, error) {
	return e.profiles.get(refKey(ref), func() (*core.Profile, error) {
		p, err := e.preparedRef(ref)
		if err != nil {
			return nil, err
		}
		prof, err := e.measure.Profile(p, e.boundOpts)
		if err != nil {
			return nil, fmt.Errorf("engine: profile %q: %w", ref.ID, err)
		}
		return prof, nil
	})
}

// forgetDerived drops every cached derived state of one trajectory.
func (e *Engine) forgetDerived(key prepKey) {
	e.cache.forget(key)
	if e.profiles != nil {
		e.profiles.forget(key)
	}
}
