// Sharded is the single-process partitioned engine: N independent Engine
// shards — each with its own corpus store, pruning index, and derived-state
// LRUs — behind a coordinator that implements the same Service surface.
// Trajectories are routed to shards by FNV-1a hash of their ID (the same
// idiom the LRU caches shard by), so mutations to different shards never
// touch a shared lock: sharding removes the per-engine write mutex and the
// store coordinator from the global write path.
//
// Queries scatter-gather. TopK visits shards in waves, freezing each
// wave's MinScore floor at the best k-th score gathered so far, so later
// shards filter-and-refine against an ever-tighter threshold — the same
// bound-forwarding the distance-bounded search literature uses for
// distributed pruning. Batch scoring fans contiguous row blocks across
// shards. Results are bit-identical to a single engine over the same
// corpus because every shard runs the same exact-or-certified scoring
// paths; only float-equal score ties can order differently (the
// coordinator breaks them by trajectory ID, a single engine by corpus
// slot — both deterministic).
package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"

	"github.com/stslib/sts/internal/model"
	"github.com/stslib/sts/internal/store"
)

// DefaultFanOut bounds how many shards one query scatters to concurrently
// when ShardedOptions.FanOut is zero. Waves of this width keep a single
// query from oversubscribing every shard's worker pool at once while still
// letting the first wave fill the merge heap fast enough that later waves
// inherit a useful pruning floor.
const DefaultFanOut = 4

// ShardedOptions configures NewSharded.
type ShardedOptions struct {
	// Shards is the partition count; NewSharded requires at least 2 (a
	// single partition is just New).
	Shards int
	// FanOut bounds per-query scatter concurrency (0 selects
	// DefaultFanOut; values above Shards are clamped).
	FanOut int
	// Workers is the coordinator's total parallelism bound, reported by
	// Workers() (0 selects GOMAXPROCS). Per-shard worker budgets are set
	// by ShardOptions; SplitWorkers is the recommended split.
	Workers int
	// ShardOptions returns the Options for shard i — its corpus store
	// (per-shard subdirectory when persistent), pruner, cache capacity,
	// and worker budget. Required. It is called concurrently for all
	// shards, so persistent stores recover in parallel.
	ShardOptions func(shard int) (Options, error)
}

// SplitWorkers divides a total worker budget among the shards of one
// scatter wave: with fanOut shards scoring concurrently, each gets
// total/fanOut (at least 1), so a saturating query uses ~total workers
// regardless of shard count.
func SplitWorkers(total, fanOut int) int {
	if total <= 0 {
		total = runtime.GOMAXPROCS(0)
	}
	if fanOut <= 0 {
		fanOut = DefaultFanOut
	}
	if w := total / fanOut; w > 1 {
		return w
	}
	return 1
}

// ShardStat is one shard's observability snapshot.
type ShardStat struct {
	// Shard is the partition number (0-based), Len its corpus size.
	Shard int
	Len   int

	Cache        CacheStats
	ProfileCache CacheStats
	Prune        PruneStats
	Store        store.Stats
}

// Sharded partitions a corpus across independent Engine shards and
// implements Service by routing mutations and scatter-gathering queries.
// All methods are safe for concurrent use. Consistency is per-shard: a
// query snapshots each shard's corpus when it reaches that shard, so a
// mutation racing a multi-shard query may land in some shards' snapshots
// and not others (each shard's snapshot is still internally consistent).
type Sharded struct {
	scorer  Scorer
	shards  []*Engine
	fanOut  int
	workers int
}

// NewSharded builds a Sharded coordinator over opts.Shards fresh Engine
// shards. Shard construction runs concurrently — persistent stores replay
// their WALs in parallel, so cold-start recovery time is the slowest
// shard's, not the sum. On error, shards already built are closed.
func NewSharded(scorer Scorer, opts ShardedOptions) (*Sharded, error) {
	if scorer == nil {
		return nil, errors.New("engine: scorer is required")
	}
	if opts.Shards < 2 {
		return nil, fmt.Errorf("engine: NewSharded needs at least 2 shards, got %d (use New for one)", opts.Shards)
	}
	if opts.ShardOptions == nil {
		return nil, errors.New("engine: ShardedOptions.ShardOptions is required")
	}
	fanOut := opts.FanOut
	if fanOut <= 0 {
		fanOut = DefaultFanOut
	}
	if fanOut > opts.Shards {
		fanOut = opts.Shards
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	shards := make([]*Engine, opts.Shards)
	if err := ForEach(context.Background(), opts.Shards, opts.Shards, func(i int) error {
		o, err := opts.ShardOptions(i)
		if err != nil {
			return fmt.Errorf("engine: shard %d options: %w", i, err)
		}
		e, err := New(scorer, o)
		if err != nil {
			return fmt.Errorf("engine: shard %d: %w", i, err)
		}
		shards[i] = e
		return nil
	}); err != nil {
		for _, e := range shards {
			if e != nil {
				_ = e.Close()
			}
		}
		return nil, err
	}
	return &Sharded{scorer: scorer, shards: shards, fanOut: fanOut, workers: workers}, nil
}

// shardFor routes a trajectory ID to its owning shard.
func (s *Sharded) shardFor(id string) *Engine { return s.shards[s.shardIndex(id)] }

// shardIndex is the routing hash: FNV-1a over the ID bytes alone. Unlike
// the cache key hash it deliberately excludes sample count and record
// generation — a Replace must land on the shard that holds the record it
// replaces.
func (s *Sharded) shardIndex(id string) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return int(h % uint64(len(s.shards)))
}

// NumShards returns the partition count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// FanOut returns the per-query scatter concurrency bound.
func (s *Sharded) FanOut() int { return s.fanOut }

// Add inserts tr into its owning shard and returns the shard-local slot.
// Only that shard's lock is taken: concurrent Adds of IDs on different
// shards proceed without contention.
func (s *Sharded) Add(tr model.Trajectory) (int, error) {
	if tr.ID == "" {
		return 0, errors.New("engine: corpus trajectories need a non-empty ID")
	}
	return s.shardFor(tr.ID).Add(tr)
}

// Remove deletes id from its owning shard.
func (s *Sharded) Remove(id string) error { return s.shardFor(id).Remove(id) }

// Replace swaps id's trajectory on its owning shard (adding when absent)
// and returns the shard-local slot.
func (s *Sharded) Replace(tr model.Trajectory) (int, error) {
	if tr.ID == "" {
		return 0, errors.New("engine: corpus trajectories need a non-empty ID")
	}
	return s.shardFor(tr.ID).Replace(tr)
}

// Append extends id's trajectory on its owning shard; only that shard's
// lock is taken, so concurrent appends to different shards never contend.
func (s *Sharded) Append(id string, tail []model.Sample) (int, error) {
	return s.shardFor(id).Append(id, tail)
}

// TrimBefore runs the retention sweep on every shard concurrently and sums
// the per-shard stats. Atomicity is per shard (each shard's sweep holds its
// own mutation lock), matching the coordinator's general consistency model.
func (s *Sharded) TrimBefore(cutoff float64) (TrimStats, error) {
	parts := make([]TrimStats, len(s.shards))
	if err := ForEach(context.Background(), len(s.shards), s.fanOut, func(i int) error {
		var err error
		parts[i], err = s.shards[i].TrimBefore(cutoff)
		return err
	}); err != nil {
		return TrimStats{}, err
	}
	var out TrimStats
	for _, p := range parts {
		out.Removed += p.Removed
		out.Trimmed += p.Trimmed
		out.DroppedSamples += p.DroppedSamples
		out.Decoded += p.Decoded
	}
	return out, nil
}

// Get decodes id's trajectory from its owning shard's store.
func (s *Sharded) Get(id string) (model.Trajectory, bool) { return s.shardFor(id).Get(id) }

// Len returns the total corpus size across shards.
func (s *Sharded) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Len()
	}
	return n
}

// IDs returns all corpus trajectory IDs in ascending order — the same
// contract as Engine.IDs, produced by a sorted merge of the per-shard
// (already sorted) ID lists.
func (s *Sharded) IDs() []string {
	parts := make([][]string, len(s.shards))
	total := 0
	for i, sh := range s.shards {
		parts[i] = sh.IDs()
		total += len(parts[i])
	}
	out := make([]string, 0, total)
	heads := make([]int, len(parts))
	for len(out) < total {
		best := -1
		for i, h := range heads {
			if h >= len(parts[i]) {
				continue
			}
			if best < 0 || parts[i][h] < parts[best][heads[best]] {
				best = i
			}
		}
		out = append(out, parts[best][heads[best]])
		heads[best]++
	}
	return out
}

// Subset resolves trajectories by ID, preserving request order; an empty
// ids selects the whole corpus in sorted-ID order (Engine.Subset's
// contract). IDs are grouped by owning shard and resolved with one
// Subset call per shard, so each shard's lookups run under one consistent
// snapshot; cross-shard consistency is not guaranteed under concurrent
// mutation. Unknown IDs fail the whole call with ErrNotFound.
func (s *Sharded) Subset(ids []string) (model.Dataset, error) {
	if len(ids) == 0 {
		ids = s.IDs()
	}
	owner := make([]int, len(ids))
	byShard := make([][]string, len(s.shards))
	for i, id := range ids {
		sh := s.shardIndex(id)
		owner[i] = sh
		byShard[sh] = append(byShard[sh], id)
	}
	parts := make([]model.Dataset, len(s.shards))
	if err := ForEach(context.Background(), len(s.shards), s.fanOut, func(i int) error {
		if len(byShard[i]) == 0 {
			return nil
		}
		var err error
		parts[i], err = s.shards[i].Subset(byShard[i])
		return err
	}); err != nil {
		return nil, err
	}
	out := make(model.Dataset, 0, len(ids))
	heads := make([]int, len(s.shards))
	for i := range ids {
		sh := owner[i]
		out = append(out, parts[sh][heads[sh]])
		heads[sh]++
	}
	return out, nil
}

// worseMergedMatch ranks a strictly below b in the coordinator's merge
// order: lower score, or an equal score with a lexicographically greater
// trajectory ID. Slots are shard-local and therefore meaningless across
// shards, so the merge breaks float-equal ties by ID — stable regardless
// of shard count, wave widths, or arrival order.
func worseMergedMatch(a, b Match) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.ID > b.ID
}

// TopK scatter-gathers the k best matches across shards; see TopKOpts.
func (s *Sharded) TopK(ctx context.Context, query model.Trajectory, k int) ([]Match, error) {
	return s.TopKOpts(ctx, query, TopKOptions{K: k, MinScore: math.Inf(-1)})
}

// TopKOpts answers top-k by visiting shards in waves of FanOut: each wave
// queries its shards concurrently with the MinScore floor frozen at the
// wave's start — the global k-th best gathered so far (never below the
// caller's MinScore) — and merges the per-shard top-k lists into one
// bounded heap. Forwarding the floor is sound because every dropped
// candidate scores strictly below a full heap's k-th best (shard results
// retain floor ties), and it is what makes scatter-gather cheap: by the
// second wave most of each shard's corpus is rejected by the admissible
// upper bounds without exact scoring. Scores are bit-identical to a
// single engine's; ties break by trajectory ID (see worseMergedMatch).
func (s *Sharded) TopKOpts(ctx context.Context, query model.Trajectory, opts TopKOptions) ([]Match, error) {
	k := opts.K
	if k <= 0 {
		return nil, nil
	}
	if err := query.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNoQuery, err)
	}
	minScore := opts.MinScore
	if math.IsNaN(minScore) {
		minScore = math.Inf(-1)
	}
	h := newMatchHeap(k, worseMergedMatch)
	parts := make([][]Match, s.fanOut)
	for start := 0; start < len(s.shards); start += s.fanOut {
		end := start + s.fanOut
		if end > len(s.shards) {
			end = len(s.shards)
		}
		floor := minScore
		if h.full() && h.min().Score > floor {
			floor = h.min().Score
		}
		wave := s.shards[start:end]
		if err := ForEach(ctx, len(wave), len(wave), func(i int) error {
			res, err := wave[i].TopKOpts(ctx, query, TopKOptions{
				K:          k,
				MinScore:   floor,
				Exhaustive: opts.Exhaustive,
			})
			parts[i] = res
			return err
		}); err != nil {
			return nil, err
		}
		for i := range wave {
			for _, m := range parts[i] {
				h.offer(m)
			}
		}
	}
	return h.sorted(), nil
}

// ScoreBatch fans contiguous row blocks across shards, each block scored
// by one shard engine with its own caches and workers; cell values are
// bit-identical to a single engine's ScoreBatch (same kernels, same
// snapshot-free transient data).
func (s *Sharded) ScoreBatch(ctx context.Context, rows, cols model.Dataset, mask [][]bool) ([][]float64, error) {
	return s.fanRows(ctx, rows, func(eng *Engine, lo, hi int) ([][]float64, error) {
		return eng.ScoreBatch(ctx, rows[lo:hi], cols, sliceMask(mask, lo, hi))
	})
}

// ScoreBatchMin is ScoreBatch with a score floor, fanned out the same way;
// every shard filter-and-refines its block against minScore.
func (s *Sharded) ScoreBatchMin(ctx context.Context, rows, cols model.Dataset, mask [][]bool, minScore float64) ([][]float64, error) {
	return s.fanRows(ctx, rows, func(eng *Engine, lo, hi int) ([][]float64, error) {
		return eng.ScoreBatchMin(ctx, rows[lo:hi], cols, sliceMask(mask, lo, hi), minScore)
	})
}

// fanRows partitions rows into one contiguous block per shard (at most
// len(rows) blocks) and runs block b on shard b, at most fanOut blocks
// concurrently; results are reassembled in row order.
func (s *Sharded) fanRows(ctx context.Context, rows model.Dataset, f func(eng *Engine, lo, hi int) ([][]float64, error)) ([][]float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(rows)
	if n == 0 {
		return [][]float64{}, nil
	}
	blocks := len(s.shards)
	if blocks > n {
		blocks = n
	}
	out := make([][]float64, n)
	base, rem := n/blocks, n%blocks
	lo := 0
	bounds := make([][2]int, blocks)
	for b := 0; b < blocks; b++ {
		hi := lo + base
		if b < rem {
			hi++
		}
		bounds[b] = [2]int{lo, hi}
		lo = hi
	}
	if err := ForEach(ctx, blocks, s.fanOut, func(b int) error {
		lo, hi := bounds[b][0], bounds[b][1]
		part, err := f(s.shards[b], lo, hi)
		if err != nil {
			return err
		}
		copy(out[lo:hi], part)
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// sliceMask narrows a row mask to a block (nil stays nil).
func sliceMask(mask [][]bool, lo, hi int) [][]bool {
	if mask == nil {
		return nil
	}
	return mask[lo:hi]
}

// Scorer returns the scorer shared by all shards.
func (s *Sharded) Scorer() Scorer { return s.scorer }

// Workers returns the coordinator's total parallelism bound.
func (s *Sharded) Workers() int { return s.workers }

// Profiled reports whether the shards score through bucketed profiles
// (uniform across shards by construction).
func (s *Sharded) Profiled() bool { return s.shards[0].Profiled() }

// CacheStats sums the prepared-trajectory cache counters over shards; Cap
// is the summed bound (the partition splits one logical capacity).
func (s *Sharded) CacheStats() CacheStats {
	var out CacheStats
	for _, sh := range s.shards {
		out = addCacheStats(out, sh.CacheStats())
	}
	return out
}

// ProfileCacheStats sums the profile cache counters over shards.
func (s *Sharded) ProfileCacheStats() CacheStats {
	var out CacheStats
	for _, sh := range s.shards {
		out = addCacheStats(out, sh.ProfileCacheStats())
	}
	return out
}

func addCacheStats(a, b CacheStats) CacheStats {
	a.Hits += b.Hits
	a.Misses += b.Misses
	a.Evictions += b.Evictions
	a.Size += b.Size
	a.Cap += b.Cap
	a.Bytes += b.Bytes
	return a
}

// PruneStats sums the filter-and-refine counters over shards.
func (s *Sharded) PruneStats() PruneStats {
	var out PruneStats
	for _, sh := range s.shards {
		st := sh.PruneStats()
		out.Considered += st.Considered
		out.BoundPruned += st.BoundPruned
		out.EarlyExited += st.EarlyExited
		out.Refined += st.Refined
	}
	return out
}

// StoreStats aggregates the per-shard store footprints: sizes, byte
// counts, and persistence counters are summed; RecoverySeconds is the
// slowest shard's (recovery runs in parallel); CoordStep and Persistent
// come from shard 0 (uniform across shards by construction).
func (s *Sharded) StoreStats() store.Stats {
	out := s.shards[0].StoreStats()
	for _, sh := range s.shards[1:] {
		st := sh.StoreStats()
		out.Records += st.Records
		out.LiveBytes += st.LiveBytes
		out.ArenaBytes += st.ArenaBytes
		out.WALBytes += st.WALBytes
		out.Snapshots += st.Snapshots
		out.SnapshotErrors += st.SnapshotErrors
		out.WarmProfiles += st.WarmProfiles
		out.SidecarWrites += st.SidecarWrites
		out.SidecarErrors += st.SidecarErrors
		if st.WALSeq > out.WALSeq {
			out.WALSeq = st.WALSeq
		}
		if st.RecoverySeconds > out.RecoverySeconds {
			out.RecoverySeconds = st.RecoverySeconds
		}
		if st.WarmSeconds > out.WarmSeconds {
			out.WarmSeconds = st.WarmSeconds
		}
	}
	return out
}

// Recovery aggregates the shards' Open-time recovery reports: record and
// segment counts are summed, Duration is the slowest shard's (shards
// recover concurrently, so that is the cold-start wall time), SnapshotSeq
// the highest. ok when every persistent shard reported one; false for
// in-memory corpora.
func (s *Sharded) Recovery() (store.RecoveryInfo, bool) {
	var out store.RecoveryInfo
	any := false
	for _, sh := range s.shards {
		info, ok := sh.Recovery()
		if !ok {
			continue
		}
		any = true
		out.SnapshotRecords += info.SnapshotRecords
		out.WALSegments += info.WALSegments
		out.WALRecords += info.WALRecords
		out.TruncatedBytes += info.TruncatedBytes
		out.WarmProfiles += info.WarmProfiles
		if info.Duration > out.Duration {
			out.Duration = info.Duration
		}
		if info.WarmDuration > out.WarmDuration {
			out.WarmDuration = info.WarmDuration
		}
		if info.SnapshotSeq > out.SnapshotSeq {
			out.SnapshotSeq = info.SnapshotSeq
		}
	}
	return out, any
}

// WarmLoaded sums the shards' sidecar warm-load counts.
func (s *Sharded) WarmLoaded() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.WarmLoaded()
	}
	return n
}

// ShardStats returns one observability snapshot per shard, in shard
// order — the per-partition view behind /v1/stats "shards" and the
// shard-labeled metrics.
func (s *Sharded) ShardStats() []ShardStat {
	out := make([]ShardStat, len(s.shards))
	for i, sh := range s.shards {
		out[i] = ShardStat{
			Shard:        i,
			Len:          sh.Len(),
			Cache:        sh.CacheStats(),
			ProfileCache: sh.ProfileCacheStats(),
			Prune:        sh.PruneStats(),
			Store:        sh.StoreStats(),
		}
	}
	return out
}

// Snapshot captures a snapshot (with sidecar) on every shard's store
// concurrently; all errors are joined.
func (s *Sharded) Snapshot() error {
	errs := make([]error, len(s.shards))
	_ = ForEach(context.Background(), len(s.shards), s.fanOut, func(i int) error {
		errs[i] = s.shards[i].Snapshot()
		return nil
	})
	return errors.Join(errs...)
}

// Close closes every shard's store; all errors are joined.
func (s *Sharded) Close() error {
	errs := make([]error, len(s.shards))
	for i, sh := range s.shards {
		errs[i] = sh.Close()
	}
	return errors.Join(errs...)
}
