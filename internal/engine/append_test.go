package engine_test

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"

	"github.com/stslib/sts/internal/core"
	"github.com/stslib/sts/internal/engine"
	"github.com/stslib/sts/internal/index"
	"github.com/stslib/sts/internal/model"
	"github.com/stslib/sts/internal/store"
)

// tailOf extends a walk: k more samples continuing its stride.
func tailOf(tr model.Trajectory, k int) []model.Sample {
	last := tr.Samples[len(tr.Samples)-1]
	prev := tr.Samples[len(tr.Samples)-2]
	dx, dt := last.Loc.X-prev.Loc.X, last.T-prev.T
	out := make([]model.Sample, k)
	for i := range out {
		f := float64(i + 1)
		out[i] = model.Sample{T: last.T + f*dt, Loc: last.Loc}
		out[i].Loc.X += f * dx
	}
	return out
}

// appendOpts builds engine options with a fresh pruning index, optionally
// profiled — every engine in the streaming correctness gate (and the fresh
// reference engine it is compared against) uses identical options.
func appendOpts(t *testing.T, profiled bool) engine.Options {
	t.Helper()
	ix, err := index.New(index.Options{Grid: testGrid(t), TimeBucket: 60, SpatialSlack: 100, TimeSlack: 60})
	if err != nil {
		t.Fatal(err)
	}
	o := engine.Options{Pruner: ix}
	if profiled {
		o.Profile = &core.ProfileOptions{BucketSeconds: 30}
	}
	return o
}

// appendEngines builds the three engine flavors the streaming correctness
// gate covers: exact, profiled, and sharded-profiled, each with its own
// pruning index.
func appendEngines(t *testing.T) map[string]engine.Service {
	t.Helper()
	scorer := testScorer(t)
	mk := func() engine.Options { return appendOpts(t, false) }
	mkProf := func() engine.Options { return appendOpts(t, true) }
	exact, err := engine.New(scorer, mk())
	if err != nil {
		t.Fatal(err)
	}
	profiled, err := engine.New(scorer, mkProf())
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := engine.NewSharded(scorer, engine.ShardedOptions{
		Shards:       3,
		ShardOptions: func(int) (engine.Options, error) { return mkProf(), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = exact.Close()
		_ = profiled.Close()
		_ = sharded.Close()
	})
	return map[string]engine.Service{"exact": exact, "profiled": profiled, "sharded": sharded}
}

// TestEngineAppendMatchesFreshEngine grows a corpus through Append — with
// warm caches, so the incremental derived-state path is exercised — and
// requires every query against it to exactly match a fresh engine built
// from the final trajectories.
func TestEngineAppendMatchesFreshEngine(t *testing.T) {
	base := make([]model.Trajectory, 0, 10)
	for i := 0; i < 10; i++ {
		base = append(base, walk(fmt.Sprintf("t%02d", i), 100+float64(i)*30, 100+float64(i)*11, 4, 15, 6))
	}
	query := walk("q", 160, 120, 4, 15, 10)

	for name, svc := range appendEngines(t) {
		t.Run(name, func(t *testing.T) {
			final := make([]model.Trajectory, len(base))
			for _, tr := range base {
				if _, err := svc.Add(tr); err != nil {
					t.Fatal(err)
				}
			}
			// Warm the derived-state caches so Append has old state to
			// maintain incrementally.
			if _, err := svc.TopK(context.Background(), query, 5); err != nil {
				t.Fatal(err)
			}
			for i, tr := range base {
				tail := tailOf(tr, 1+i%3)
				if _, err := svc.Append(tr.ID, tail); err != nil {
					t.Fatal(err)
				}
				grown := model.Trajectory{ID: tr.ID, Samples: append(append([]model.Sample{}, tr.Samples...), tail...)}
				final[i] = grown
				got, ok := svc.Get(tr.ID)
				if !ok || len(got.Samples) != len(grown.Samples) {
					t.Fatalf("Get(%s) after append: ok=%v n=%d want %d", tr.ID, ok, len(got.Samples), len(grown.Samples))
				}
			}
			if _, err := svc.Append("missing", tailOf(base[0], 1)); err == nil {
				t.Fatal("append to unknown id accepted")
			}

			fresh, err := engine.New(svc.Scorer(), appendOpts(t, svc.Profiled()))
			if err != nil {
				t.Fatal(err)
			}
			defer fresh.Close()
			for _, tr := range final {
				if _, err := fresh.Add(tr); err != nil {
					t.Fatal(err)
				}
			}

			gotTop, err := svc.TopK(context.Background(), query, 8)
			if err != nil {
				t.Fatal(err)
			}
			wantTop, err := fresh.TopK(context.Background(), query, 8)
			if err != nil {
				t.Fatal(err)
			}
			if len(gotTop) != len(wantTop) {
				t.Fatalf("TopK sizes: %d vs %d", len(gotTop), len(wantTop))
			}
			for i := range gotTop {
				if gotTop[i].ID != wantTop[i].ID || gotTop[i].Score != wantTop[i].Score {
					t.Fatalf("TopK[%d]: %+v vs %+v", i, gotTop[i], wantTop[i])
				}
			}

			rows := model.Dataset{query}
			cols, err := svc.Subset(nil)
			if err != nil {
				t.Fatal(err)
			}
			got, err := svc.ScoreBatchMin(context.Background(), rows, cols, nil, 0.01)
			if err != nil {
				t.Fatal(err)
			}
			want, err := fresh.ScoreBatchMin(context.Background(), rows, cols, nil, 0.01)
			if err != nil {
				t.Fatal(err)
			}
			for j := range want[0] {
				if got[0][j] != want[0][j] && !(math.IsInf(got[0][j], -1) && math.IsInf(want[0][j], -1)) {
					t.Fatalf("ScoreBatchMin[%d] (%s): %v vs %v", j, cols[j].ID, got[0][j], want[0][j])
				}
			}
		})
	}
}

// TestEngineTrimBefore pins the retention sweep: whole-trajectory removal,
// head trimming, pruner postings, and stats.
func TestEngineTrimBefore(t *testing.T) {
	for name, svc := range appendEngines(t) {
		t.Run(name, func(t *testing.T) {
			// expired: spans t=0..50; straddler: 0..90 (5 samples before
			// t=60); fresh: 100..145.
			expired := walk("expired", 100, 100, 4, 10, 6)
			straddler := walk("straddler", 200, 200, 4, 10, 10)
			fresh := walk("fresh", 300, 300, 4, 10, 6)
			for i := range fresh.Samples {
				fresh.Samples[i].T += 100
			}
			for _, tr := range []model.Trajectory{expired, straddler, fresh} {
				if _, err := svc.Add(tr); err != nil {
					t.Fatal(err)
				}
			}
			st, err := svc.TrimBefore(60)
			if err != nil {
				t.Fatal(err)
			}
			if st.Removed != 1 || st.Trimmed != 1 || st.DroppedSamples != 6+6 {
				t.Fatalf("trim stats %+v", st)
			}
			if _, ok := svc.Get("expired"); ok {
				t.Fatal("expired trajectory survived")
			}
			got, ok := svc.Get("straddler")
			if !ok || len(got.Samples) != 4 || got.Samples[0].T != 60 {
				t.Fatalf("straddler after trim: ok=%v %+v", ok, got.Samples)
			}
			if got, _ := svc.Get("fresh"); len(got.Samples) != 6 {
				t.Fatal("fresh trajectory touched")
			}
			// Idempotent second sweep.
			st, err = svc.TrimBefore(60)
			if err != nil || st != (engine.TrimStats{}) {
				t.Fatalf("second sweep: %+v, %v", st, err)
			}
			// Queries keep working against trimmed state.
			if _, err := svc.TopK(context.Background(), walk("q", 205, 200, 4, 10, 8), 3); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestConcurrentAppendTrimSnapshot races appends, retention sweeps,
// snapshots, and queries over a persistent store — the engine half of the
// streaming -race stress gate.
func TestConcurrentAppendTrimSnapshot(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(testScorer(t), engine.Options{
		Profile: &core.ProfileOptions{BucketSeconds: 30},
		Corpus:  st,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	trs := make([]model.Trajectory, 8)
	for i := range trs {
		trs[i] = walk(fmt.Sprintf("t%02d", i), 100+float64(i)*40, 100, 4, 10, 6)
		if _, err := e.Add(trs[i]); err != nil {
			t.Fatal(err)
		}
	}
	query := walk("q", 150, 100, 4, 10, 8)
	var wg sync.WaitGroup
	for i := range trs {
		wg.Add(1)
		go func(tr model.Trajectory) {
			defer wg.Done()
			cur := tr
			for r := 0; r < 10; r++ {
				tail := tailOf(cur, 2)
				if _, err := e.Append(tr.ID, tail); err != nil {
					t.Error(err)
					return
				}
				cur = model.Trajectory{ID: tr.ID, Samples: append(append([]model.Sample{}, cur.Samples...), tail...)}
			}
		}(trs[i])
	}
	wg.Add(3)
	go func() {
		defer wg.Done()
		for r := 0; r < 5; r++ {
			if err := st.Snapshot(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for r := 0; r < 5; r++ {
			if _, err := e.TrimBefore(float64(r * 5)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for r := 0; r < 10; r++ {
			if _, err := e.TopK(context.Background(), query, 4); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}
	// Recovery must reproduce the exact post-race corpus.
	want := make(map[string]model.Trajectory)
	for _, id := range e.IDs() {
		tr, _ := e.Get(id)
		want[id] = model.Trajectory{ID: id, Samples: append([]model.Sample{}, tr.Samples...)}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := store.Open(dir, store.Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := engine.New(testScorer(t), engine.Options{Corpus: st2})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if e2.Len() != len(want) {
		t.Fatalf("recovered %d trajectories, want %d", e2.Len(), len(want))
	}
	for id, tr := range want {
		got, ok := e2.Get(id)
		if !ok || len(got.Samples) != len(tr.Samples) {
			t.Fatalf("recovered %q: ok=%v n=%d want %d", id, ok, len(got.Samples), len(tr.Samples))
		}
		for i := range tr.Samples {
			if got.Samples[i] != tr.Samples[i] {
				t.Fatalf("recovered %q sample %d: %+v != %+v", id, i, got.Samples[i], tr.Samples[i])
			}
		}
	}
}
