package engine_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"testing"

	"github.com/stslib/sts/internal/core"
	"github.com/stslib/sts/internal/engine"
	"github.com/stslib/sts/internal/index"
	"github.com/stslib/sts/internal/linking"
	"github.com/stslib/sts/internal/model"
	"github.com/stslib/sts/internal/store"
)

// newShardedPair builds a single engine and a functionally identical
// sharded coordinator; optsFn must return fresh Options on every call so
// each shard gets its own pruner/store/caches.
func newShardedPair(t *testing.T, shards int, optsFn func() engine.Options) (*engine.Engine, *engine.Sharded) {
	t.Helper()
	scorer := testScorer(t)
	single, err := engine.New(scorer, optsFn())
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := engine.NewSharded(scorer, engine.ShardedOptions{
		Shards:       shards,
		ShardOptions: func(int) (engine.Options, error) { return optsFn(), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = single.Close()
		_ = sharded.Close()
	})
	return single, sharded
}

// goldenCorpus is a mixed corpus: a cluster overlapping the golden query
// (positive, distinct scores), exact duplicates of one member (bit-equal
// score ties), and a far group (ties at the zero/no-overlap floor). IDs
// sort in insertion order, so single-engine slot order equals ID order
// and the two tie-break rules agree.
func goldenCorpus() []model.Trajectory {
	var trs []model.Trajectory
	for i := 0; i < 12; i++ {
		trs = append(trs, walk(fmt.Sprintf("near-%02d", i), 100+float64(i)*12, 100+float64(i)*7, 5, 10, 10))
	}
	for i := 0; i < 4; i++ {
		dup := walk(fmt.Sprintf("twin-%02d", i), 130, 110, 5, 10, 10)
		trs = append(trs, dup)
	}
	for i := 0; i < 8; i++ {
		trs = append(trs, walk(fmt.Sprintf("zfar-%02d", i), 950+float64(i)*5, 1000, 5, 10, 10))
	}
	return trs
}

func goldenQuery() model.Trajectory {
	return walk("query", 120, 105, 5, 10, 10)
}

func fillPair(t *testing.T, single, sharded interface {
	Add(model.Trajectory) (int, error)
}, trs []model.Trajectory) {
	t.Helper()
	for _, tr := range trs {
		if _, err := single.Add(tr); err != nil {
			t.Fatal(err)
		}
		if _, err := sharded.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
}

// diffMatches compares two match lists on (ID, Score) with bit-exact
// scores. Slots are intentionally ignored: they are shard-local.
func diffMatches(t *testing.T, label string, got, want []engine.Match) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d matches, want %d\n got=%v\nwant=%v", label, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i].ID != want[i].ID || math.Float64bits(got[i].Score) != math.Float64bits(want[i].Score) {
			t.Fatalf("%s: match %d = {%s %v}, want {%s %v}", label, i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
		}
	}
}

func diffMatrix(t *testing.T, label string, got, want [][]float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s: row %d has %d cols, want %d", label, i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if math.Float64bits(got[i][j]) != math.Float64bits(want[i][j]) {
				t.Fatalf("%s: cell (%d,%d) = %v, want %v", label, i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestShardedTopKEquivalence is the golden suite: for every engine
// configuration (exact, index-pruned, profiled, pruning disabled) the
// sharded coordinator must return the same (ID, Score) sequence as a
// single engine over the same corpus — bit-identical scores, identical
// tie order (the corpus is built so slot order equals ID order).
func TestShardedTopKEquivalence(t *testing.T) {
	configs := []struct {
		name   string
		optsFn func() engine.Options
	}{
		{"exact", func() engine.Options { return engine.Options{} }},
		{"pruned", func() engine.Options {
			ix, err := index.New(index.Options{Grid: testGrid(t), TimeBucket: 60, SpatialSlack: 100, TimeSlack: 60})
			if err != nil {
				t.Fatal(err)
			}
			return engine.Options{Pruner: ix}
		}},
		{"profiled", func() engine.Options {
			return engine.Options{Profile: &core.ProfileOptions{}}
		}},
		{"unpruned", func() engine.Options { return engine.Options{DisablePruning: true} }},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			single, sharded := newShardedPair(t, 4, cfg.optsFn)
			fillPair(t, single, sharded, goldenCorpus())
			query := goldenQuery()
			ctx := context.Background()

			for _, k := range []int{1, 3, 5, 24, 50} {
				for _, opts := range []engine.TopKOptions{
					{K: k, MinScore: math.Inf(-1)},
					{K: k, MinScore: 0.01},
					{K: k, MinScore: math.Inf(-1), Exhaustive: true},
				} {
					label := fmt.Sprintf("k=%d minScore=%v exhaustive=%v", k, opts.MinScore, opts.Exhaustive)
					want, err := single.TopKOpts(ctx, query, opts)
					if err != nil {
						t.Fatalf("%s: single: %v", label, err)
					}
					got, err := sharded.TopKOpts(ctx, query, opts)
					if err != nil {
						t.Fatalf("%s: sharded: %v", label, err)
					}
					diffMatches(t, label, got, want)
				}
			}

			// Invalid queries fail identically.
			if _, err := sharded.TopK(ctx, model.Trajectory{ID: "empty"}, 3); !errors.Is(err, engine.ErrNoQuery) {
				t.Fatalf("invalid query error = %v, want ErrNoQuery", err)
			}
			if res, err := sharded.TopK(ctx, query, 0); err != nil || len(res) != 0 {
				t.Fatalf("k=0 → (%v, %v), want empty", res, err)
			}
		})
	}
}

// TestShardedScoreBatchEquivalence checks that fanned row blocks produce
// bit-identical matrices, with and without a mask and a score floor.
func TestShardedScoreBatchEquivalence(t *testing.T) {
	single, sharded := newShardedPair(t, 4, func() engine.Options { return engine.Options{} })
	ctx := context.Background()

	var rows, cols model.Dataset
	for i := 0; i < 7; i++ {
		rows = append(rows, walk(fmt.Sprintf("r-%d", i), 100+float64(i)*30, 120, 5, 10, 9))
	}
	for j := 0; j < 5; j++ {
		cols = append(cols, walk(fmt.Sprintf("c-%d", j), 110+float64(j)*40, 110, 5, 10, 9))
	}
	mask := make([][]bool, len(rows))
	for i := range mask {
		mask[i] = make([]bool, len(cols))
		for j := range mask[i] {
			mask[i][j] = (i+j)%3 != 0
		}
	}

	for _, tc := range []struct {
		label string
		mask  [][]bool
		min   float64
	}{
		{"unmasked", nil, math.Inf(-1)},
		{"masked", mask, math.Inf(-1)},
		{"min", nil, 0.05},
		{"masked+min", mask, 0.05},
	} {
		want, err := single.ScoreBatchMin(ctx, rows, cols, tc.mask, tc.min)
		if err != nil {
			t.Fatalf("%s: single: %v", tc.label, err)
		}
		got, err := sharded.ScoreBatchMin(ctx, rows, cols, tc.mask, tc.min)
		if err != nil {
			t.Fatalf("%s: sharded: %v", tc.label, err)
		}
		diffMatrix(t, tc.label, got, want)
	}

	want, err := single.ScoreBatch(ctx, rows, cols, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sharded.ScoreBatch(ctx, rows, cols, nil)
	if err != nil {
		t.Fatal(err)
	}
	diffMatrix(t, "ScoreBatch", got, want)

	// Single-row and empty inputs exercise the block-partitioning edges.
	got, err = sharded.ScoreBatch(ctx, rows[:1], cols, nil)
	if err != nil {
		t.Fatal(err)
	}
	diffMatrix(t, "one-row", got, want[:1])
	if out, err := sharded.ScoreBatch(ctx, nil, cols, nil); err != nil || len(out) != 0 {
		t.Fatalf("empty rows → (%v, %v)", out, err)
	}
}

// TestShardedLinkingEquivalence drives the greedy batch linker through
// both implementations — *Sharded satisfies linking.Batcher/MinBatcher
// exactly like *Engine does.
func TestShardedLinkingEquivalence(t *testing.T) {
	single, sharded := newShardedPair(t, 3, func() engine.Options { return engine.Options{} })
	ctx := context.Background()

	var d1, d2 model.Dataset
	for i := 0; i < 6; i++ {
		d1 = append(d1, walk(fmt.Sprintf("a-%d", i), 100+float64(i)*50, 100, 5, 10, 9))
		d2 = append(d2, walk(fmt.Sprintf("b-%d", i), 105+float64(i)*50, 102, 5, 10, 9))
	}
	opts := linking.Options{MinScore: 0.01}

	want, err := linking.GreedyLinkBatch(ctx, single, d1, d2, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := linking.GreedyLinkBatch(ctx, sharded, d1, d2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d links, want %d\n got=%v\nwant=%v", len(got), len(want), got, want)
	}
	for i := range want {
		if got[i].I != want[i].I || got[i].J != want[i].J ||
			math.Float64bits(got[i].Score) != math.Float64bits(want[i].Score) {
			t.Fatalf("link %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestShardedIDsSubsetOrdering pins the Service ordering contracts: IDs
// ascending via sorted merge, Subset preserving request order, empty
// Subset meaning whole-corpus-sorted, unknown IDs failing with
// ErrNotFound.
func TestShardedIDsSubsetOrdering(t *testing.T) {
	single, sharded := newShardedPair(t, 4, func() engine.Options { return engine.Options{} })
	// Insert deliberately out of ID order.
	corpus := goldenCorpus()
	for i, j := 0, len(corpus)-1; i < j; i, j = i+1, j-1 {
		corpus[i], corpus[j] = corpus[j], corpus[i]
	}
	fillPair(t, single, sharded, corpus)

	ids := sharded.IDs()
	if !sort.StringsAreSorted(ids) {
		t.Fatalf("IDs not ascending: %v", ids)
	}
	want := single.IDs()
	if len(ids) != len(want) {
		t.Fatalf("IDs length %d, want %d", len(ids), len(want))
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs[%d] = %s, want %s", i, ids[i], want[i])
		}
	}

	whole, err := sharded.Subset(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(whole) != len(ids) {
		t.Fatalf("Subset(nil) has %d trajectories, want %d", len(whole), len(ids))
	}
	for i, tr := range whole {
		if tr.ID != ids[i] {
			t.Fatalf("Subset(nil)[%d].ID = %s, want %s (sorted order)", i, tr.ID, ids[i])
		}
	}

	// Explicit request order is preserved even when it interleaves shards.
	req := []string{"zfar-03", "near-00", "twin-02", "near-11", "zfar-00"}
	sub, err := sharded.Subset(req)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range sub {
		if tr.ID != req[i] {
			t.Fatalf("Subset[%d].ID = %s, want %s (request order)", i, tr.ID, req[i])
		}
	}

	if _, err := sharded.Subset([]string{"near-00", "missing"}); !errors.Is(err, engine.ErrNotFound) {
		t.Fatalf("Subset with unknown ID: %v, want ErrNotFound", err)
	}
}

// TestShardedMutationRouting checks the routed mutation surface: errors
// match the single engine's sentinels, Replace lands on the owning shard,
// and the per-shard lengths sum to Len.
func TestShardedMutationRouting(t *testing.T) {
	_, sharded := newShardedPair(t, 4, func() engine.Options { return engine.Options{} })
	corpus := goldenCorpus()
	for _, tr := range corpus {
		if _, err := sharded.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sharded.Add(corpus[0]); err == nil {
		t.Error("duplicate Add accepted")
	}
	if _, err := sharded.Add(model.Trajectory{Samples: corpus[0].Samples}); err == nil {
		t.Error("empty-ID Add accepted")
	}
	if err := sharded.Remove("missing"); !errors.Is(err, engine.ErrNotFound) {
		t.Errorf("Remove(missing) = %v, want ErrNotFound", err)
	}
	if got, ok := sharded.Get("twin-01"); !ok || got.ID != "twin-01" {
		t.Fatalf("Get(twin-01) = %v, %v", got, ok)
	}
	if _, ok := sharded.Get("missing"); ok {
		t.Error("Get(missing) found a trajectory")
	}

	// Replace relocates a trajectory's geometry but must stay on the
	// shard that owns the ID — Get must observe the new samples.
	moved := walk("near-05", 900, 900, 5, 10, 10)
	if _, err := sharded.Replace(moved); err != nil {
		t.Fatal(err)
	}
	if got, _ := sharded.Get("near-05"); got.Samples[0].Loc.X != 900 {
		t.Fatalf("Replace not visible: %v", got.Samples[0])
	}
	// Replace of an absent ID adds.
	if _, err := sharded.Replace(walk("fresh", 50, 50, 5, 10, 8)); err != nil {
		t.Fatal(err)
	}
	if err := sharded.Remove("near-00"); err != nil {
		t.Fatal(err)
	}

	wantLen := len(corpus) + 1 - 1
	if sharded.Len() != wantLen {
		t.Fatalf("Len = %d, want %d", sharded.Len(), wantLen)
	}
	sum := 0
	for _, st := range sharded.ShardStats() {
		sum += st.Len
	}
	if sum != wantLen {
		t.Fatalf("sum of shard lengths = %d, want %d", sum, wantLen)
	}
}

// TestShardedStatsAggregation checks that the rolled-up counters equal
// the sum of the per-shard snapshots the server exposes.
func TestShardedStatsAggregation(t *testing.T) {
	_, sharded := newShardedPair(t, 4, func() engine.Options {
		ix, err := index.New(index.Options{Grid: testGrid(t), TimeBucket: 60, SpatialSlack: 100, TimeSlack: 60})
		if err != nil {
			t.Fatal(err)
		}
		return engine.Options{Pruner: ix}
	})
	for _, tr := range goldenCorpus() {
		if _, err := sharded.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	// Small k and a finite floor so each shard's candidate set outsizes k
	// and the filter-and-refine path (the one that counts) engages.
	for i := 0; i < 3; i++ {
		if _, err := sharded.TopKOpts(ctx, goldenQuery(), engine.TopKOptions{K: 2, MinScore: 0.01}); err != nil {
			t.Fatal(err)
		}
	}

	shards := sharded.ShardStats()
	if len(shards) != 4 {
		t.Fatalf("%d shard stats, want 4", len(shards))
	}
	var prune engine.PruneStats
	var cache engine.CacheStats
	var arena int64
	lens := 0
	for i, st := range shards {
		if st.Shard != i {
			t.Fatalf("ShardStats[%d].Shard = %d", i, st.Shard)
		}
		prune.Considered += st.Prune.Considered
		prune.BoundPruned += st.Prune.BoundPruned
		prune.EarlyExited += st.Prune.EarlyExited
		prune.Refined += st.Prune.Refined
		cache.Hits += st.Cache.Hits
		cache.Misses += st.Cache.Misses
		arena += st.Store.ArenaBytes
		lens += st.Len
	}
	if got := sharded.PruneStats(); got != prune {
		t.Fatalf("PruneStats rollup %+v != shard sum %+v", got, prune)
	}
	if got := sharded.CacheStats(); got.Hits != cache.Hits || got.Misses != cache.Misses {
		t.Fatalf("CacheStats rollup %+v != shard sum %+v", got, cache)
	}
	if got := sharded.StoreStats(); got.ArenaBytes != arena {
		t.Fatalf("StoreStats.ArenaBytes rollup %d != shard sum %d", got.ArenaBytes, arena)
	}
	if lens != sharded.Len() {
		t.Fatalf("shard length sum %d != Len %d", lens, sharded.Len())
	}
	if prune.Considered == 0 {
		t.Fatal("pruned queries recorded no considered candidates")
	}
}

// TestShardedTieOrderAcrossShardCounts pins the coordinator's tie-break:
// trajectories with identical geometry score bit-equal, and the merged
// order among them must be ascending ID regardless of how many shards
// the corpus is split into.
func TestShardedTieOrderAcrossShardCounts(t *testing.T) {
	scorer := testScorer(t)
	corpus := goldenCorpus()
	query := goldenQuery()
	ctx := context.Background()

	var baseline []engine.Match
	for _, shards := range []int{2, 3, 5} {
		s, err := engine.NewSharded(scorer, engine.ShardedOptions{
			Shards:       shards,
			ShardOptions: func(int) (engine.Options, error) { return engine.Options{}, nil },
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range corpus {
			if _, err := s.Add(tr); err != nil {
				t.Fatal(err)
			}
		}
		got, err := s.TopK(ctx, query, len(corpus))
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(got); i++ {
			if got[i].Score > got[i-1].Score {
				t.Fatalf("shards=%d: scores not descending at %d: %v", shards, i, got)
			}
			if got[i].Score == got[i-1].Score && got[i].ID <= got[i-1].ID {
				t.Fatalf("shards=%d: tie at %d not ID-ascending: %s then %s", shards, i, got[i-1].ID, got[i].ID)
			}
		}
		if baseline == nil {
			baseline = got
		} else {
			diffMatches(t, fmt.Sprintf("shards=%d vs baseline", shards), got, baseline)
		}
		_ = s.Close()
	}
}

// TestShardedConcurrentStress races cross-shard ingest, removal,
// replacement, snapshots, and scatter-gather queries against persistent
// shard stores; run under -race it guards the lock-free-across-shards
// claim. The final corpus must be internally consistent.
func TestShardedConcurrentStress(t *testing.T) {
	dir := t.TempDir()
	const nShards = 4
	stores := make([]*store.Store, nShards)
	sharded, err := engine.NewSharded(testScorer(t), engine.ShardedOptions{
		Shards: nShards,
		ShardOptions: func(shard int) (engine.Options, error) {
			st, err := store.Open(store.ShardDir(dir, shard), store.Options{})
			if err != nil {
				return engine.Options{}, err
			}
			stores[shard] = st
			return engine.Options{Corpus: st}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sharded.Close() })

	seed := goldenCorpus()
	for _, tr := range seed {
		if _, err := sharded.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	query := goldenQuery()
	ctx := context.Background()
	const rounds = 40

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				id := fmt.Sprintf("stress-%d-%d", g, i)
				if _, err := sharded.Add(walk(id, float64(100+10*g), float64(100+i), 5, 10, 8)); err != nil {
					t.Error(err)
					return
				}
				if _, err := sharded.Replace(walk(id, float64(200+10*g), float64(100+i), 5, 10, 8)); err != nil {
					t.Error(err)
					return
				}
				if i%2 == 0 {
					if err := sharded.Remove(id); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if _, err := sharded.TopKOpts(ctx, query, engine.TopKOptions{K: 5, MinScore: math.Inf(-1)}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rows := model.Dataset{query}
		for i := 0; i < rounds/2; i++ {
			if _, err := sharded.ScoreBatchMin(ctx, rows, model.Dataset{seed[0], seed[1]}, nil, 0.01); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			for _, st := range stores {
				if err := st.Snapshot(); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	wg.Wait()

	ids := sharded.IDs()
	if !sort.StringsAreSorted(ids) {
		t.Fatal("IDs not sorted after stress")
	}
	if len(ids) != sharded.Len() {
		t.Fatalf("len(IDs) = %d, Len = %d", len(ids), sharded.Len())
	}
	// Every surviving odd-round stress ID must still resolve.
	for g := 0; g < 4; g++ {
		for i := 1; i < rounds; i += 2 {
			id := fmt.Sprintf("stress-%d-%d", g, i)
			if tr, ok := sharded.Get(id); !ok || tr.Samples[0].Loc.X != float64(200+10*g) {
				t.Fatalf("Get(%s) = %v, %v after stress", id, tr, ok)
			}
		}
	}
}
