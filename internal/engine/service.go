package engine

import (
	"context"

	"github.com/stslib/sts/internal/model"
	"github.com/stslib/sts/internal/store"
)

// Service is the full corpus-and-query surface an STS serving process
// binds to: corpus mutation, lookups with explicit ordering contracts,
// top-k search, batch scoring, and observability. Two implementations
// exist — the single *Engine and the partitioned *Sharded coordinator —
// and they are interchangeable: the HTTP server, the linking batcher, and
// the root facade all program against Service, so turning sharding on is
// a construction-time decision, not an API change.
//
// Ordering contracts (identical for both implementations, so HTTP
// listings and snapshots are deterministic under sharding):
//
//   - IDs returns trajectory IDs in ascending lexicographic order; the
//     coordinator produces this by sorted merge across shards.
//   - Subset preserves the request order of ids; an empty ids selects the
//     whole corpus in sorted-ID order.
//   - TopK/TopKOpts return matches by descending score. Score ties break
//     by corpus slot on a single engine and by ascending trajectory ID
//     across shards (slots are shard-local); both are deterministic.
type Service interface {
	// Mutation — on the coordinator each call routes to the one shard
	// owning the trajectory ID, so writes to different shards never
	// contend on a shared lock.
	Add(tr model.Trajectory) (int, error)
	Remove(id string) error
	Replace(tr model.Trajectory) (int, error)
	// Append extends a resident trajectory with strictly-later samples,
	// maintaining cached derived state incrementally (the streaming
	// ingestion path); TrimBefore is the retention sweep dropping samples
	// older than the cutoff timestamp.
	Append(id string, tail []model.Sample) (int, error)
	TrimBefore(cutoff float64) (TrimStats, error)

	// Lookup.
	Get(id string) (model.Trajectory, bool)
	Len() int
	IDs() []string
	Subset(ids []string) (model.Dataset, error)

	// Queries.
	TopK(ctx context.Context, query model.Trajectory, k int) ([]Match, error)
	TopKOpts(ctx context.Context, query model.Trajectory, opts TopKOptions) ([]Match, error)
	ScoreBatch(ctx context.Context, rows, cols model.Dataset, mask [][]bool) ([][]float64, error)
	ScoreBatchMin(ctx context.Context, rows, cols model.Dataset, mask [][]bool, minScore float64) ([][]float64, error)

	// Introspection and observability. On the coordinator the counter
	// stats (cache, prune, store) are sums over shards; Recovery reports
	// the slowest shard's wall time with record counts summed.
	Scorer() Scorer
	Workers() int
	Profiled() bool
	CacheStats() CacheStats
	ProfileCacheStats() CacheStats
	PruneStats() PruneStats
	StoreStats() store.Stats
	Recovery() (store.RecoveryInfo, bool)
	// WarmLoaded reports how many profiles were installed from the
	// store's derived-state sidecar at construction (summed over shards;
	// 0 for cold starts and in-memory corpora).
	WarmLoaded() int
	// Snapshot forces an immediate store snapshot (every shard on the
	// coordinator), capturing the derived-state sidecar alongside the
	// corpus; it errors on non-durable corpora.
	Snapshot() error
	Close() error
}

// ShardStater is implemented by Service values that partition the corpus
// and can report per-partition statistics; the HTTP layer type-asserts it
// to emit per-shard /v1/stats sections and shard-labeled metrics without
// the single-engine path knowing sharding exists.
type ShardStater interface {
	ShardStats() []ShardStat
}

var (
	_ Service = (*Engine)(nil)
	_ Service = (*Sharded)(nil)

	_ ShardStater = (*Sharded)(nil)
)
