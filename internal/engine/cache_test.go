package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/stslib/sts/internal/core"
	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/model"
)

// measureScorer adapts a bare core.Measure to the MeasureScorer interface
// without importing eval (which sits above this package).
type measureScorer struct{ m *core.Measure }

func (s measureScorer) Name() string           { return "STS" }
func (s measureScorer) Measure() *core.Measure { return s.m }
func (s measureScorer) Score(a, b model.Trajectory) (float64, error) {
	return s.m.Similarity(a, b)
}

func cacheTestMeasure(t *testing.T) *core.Measure {
	t.Helper()
	g, err := geo.NewGrid(geo.NewRect(geo.Point{X: -50, Y: -50}, geo.Point{X: 600, Y: 600}), 20)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewSTS(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func cacheWalk(id string, x0 float64, n int) model.Trajectory {
	tr := model.Trajectory{ID: id, Samples: make([]model.Sample, n)}
	for i := range tr.Samples {
		f := float64(i)
		tr.Samples[i] = model.Sample{Loc: geo.Point{X: x0 + 4*f, Y: 100}, T: 12 * f}
	}
	return tr
}

// TestCacheSizeOneEquivalence is the eviction-then-rescore equivalence
// check from the issue: a cache bounded to a single entry thrashes —
// every trajectory is evicted and re-prepared between batches — but the
// scores must be bit-identical to an unbounded cache.
func TestCacheSizeOneEquivalence(t *testing.T) {
	m := cacheTestMeasure(t)
	rows := model.Dataset{cacheWalk("r0", 100, 8), cacheWalk("r1", 160, 8), cacheWalk("r2", 220, 8)}
	cols := model.Dataset{cacheWalk("c0", 104, 8), cacheWalk("c1", 400, 8), cacheWalk("c2", 226, 8)}

	run := func(cacheSize int) ([][]float64, CacheStats) {
		t.Helper()
		// Workers:1 keeps LRU traffic deterministic for the Size assertion.
		e, err := New(measureScorer{m}, Options{Workers: 1, CacheSize: cacheSize})
		if err != nil {
			t.Fatal(err)
		}
		var last [][]float64
		for round := 0; round < 3; round++ {
			last, err = e.ScoreBatch(context.Background(), rows, cols, nil)
			if err != nil {
				t.Fatal(err)
			}
		}
		return last, e.CacheStats()
	}

	tiny, tinyStats := run(1)
	unbounded, bigStats := run(-1)
	for i := range tiny {
		for j := range tiny[i] {
			if tiny[i][j] != unbounded[i][j] {
				t.Errorf("scores diverge at [%d][%d]: cache=1 %v, unbounded %v", i, j, tiny[i][j], unbounded[i][j])
			}
		}
	}
	if tinyStats.Evictions == 0 {
		t.Errorf("cache of 1 over 6 trajectories never evicted: %+v", tinyStats)
	}
	if tinyStats.Size > 1 {
		t.Errorf("bounded cache holds %d entries, cap 1", tinyStats.Size)
	}
	if bigStats.Evictions != 0 {
		t.Errorf("unbounded cache evicted: %+v", bigStats)
	}
	// Unbounded: 6 misses in round one, pure hits in the other two rounds.
	if bigStats.Misses != 6 || bigStats.Hits != 12 {
		t.Errorf("unbounded cache stats %+v, want 6 misses / 12 hits", bigStats)
	}
}

func TestCacheSingleFlight(t *testing.T) {
	c := newLRUCache[*core.Prepared](0, nil)
	key := keyOf(cacheWalk("a", 0, 4))
	var calls int32
	var mu sync.Mutex
	prepare := func() (*core.Prepared, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		time.Sleep(20 * time.Millisecond) // widen the race window
		return &core.Prepared{}, nil
	}
	var wg sync.WaitGroup
	const workers = 8
	results := make([]*core.Prepared, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p, err := c.get(key, prepare)
			if err != nil {
				t.Error(err)
			}
			results[w] = p
		}(w)
	}
	wg.Wait()
	if calls != 1 {
		t.Errorf("prepare ran %d times for one key under concurrency", calls)
	}
	for w := 1; w < workers; w++ {
		if results[w] != results[0] {
			t.Errorf("waiter %d got a different prepared instance", w)
		}
	}
	s := c.stats()
	if s.Misses != 1 || s.Hits != workers-1 {
		t.Errorf("stats %+v, want 1 miss / %d hits", s, workers-1)
	}
}

func TestCacheErrorNotCachedAndRetried(t *testing.T) {
	c := newLRUCache[*core.Prepared](4, nil)
	key := keyOf(cacheWalk("a", 0, 4))
	boom := errors.New("boom")
	calls := 0
	prepare := func() (*core.Prepared, error) {
		calls++
		if calls == 1 {
			return nil, boom
		}
		return &core.Prepared{}, nil
	}
	if _, err := c.get(key, prepare); !errors.Is(err, boom) {
		t.Fatalf("first get: %v", err)
	}
	if s := c.stats(); s.Size != 0 {
		t.Fatalf("failed entry cached: %+v", s)
	}
	p, err := c.get(key, prepare)
	if err != nil || p == nil {
		t.Fatalf("retry after error: %v %v", p, err)
	}
	if calls != 2 {
		t.Errorf("prepare calls=%d want 2 (error must not be cached)", calls)
	}
	if s := c.stats(); s.Size != 1 || s.Misses != 2 {
		t.Errorf("stats after retry: %+v", s)
	}
}

func TestCacheForget(t *testing.T) {
	c := newLRUCache[*core.Prepared](4, nil)
	a, b := keyOf(cacheWalk("a", 0, 4)), keyOf(cacheWalk("b", 50, 4))
	ok := func() (*core.Prepared, error) { return &core.Prepared{}, nil }
	if _, err := c.get(a, ok); err != nil {
		t.Fatal(err)
	}
	if _, err := c.get(b, ok); err != nil {
		t.Fatal(err)
	}
	c.forget(a)
	if s := c.stats(); s.Size != 1 {
		t.Fatalf("forget left %d entries", s.Size)
	}
	// Re-getting a forgotten key is a miss, not a hit on stale state.
	if _, err := c.get(a, ok); err != nil {
		t.Fatal(err)
	}
	if s := c.stats(); s.Misses != 3 || s.Hits != 0 {
		t.Errorf("stats %+v, want 3 misses / 0 hits", s)
	}
}

func TestCacheLRUOrderingEvictsColdest(t *testing.T) {
	c := newLRUCache[*core.Prepared](2, nil)
	a, b, d := keyOf(cacheWalk("a", 0, 4)), keyOf(cacheWalk("b", 50, 4)), keyOf(cacheWalk("d", 100, 4))
	ok := func() (*core.Prepared, error) { return &core.Prepared{}, nil }
	mustGet := func(k prepKey) {
		t.Helper()
		if _, err := c.get(k, ok); err != nil {
			t.Fatal(err)
		}
	}
	mustGet(a)
	mustGet(b)
	mustGet(a) // touch a: b is now coldest
	mustGet(d) // evicts b
	s := c.stats()
	if s.Evictions != 1 || s.Size != 2 {
		t.Fatalf("stats %+v, want 1 eviction, size 2", s)
	}
	hitsBefore := s.Hits
	mustGet(a)
	mustGet(d)
	if s := c.stats(); s.Hits != hitsBefore+2 {
		t.Errorf("survivors a/d missed: %+v", s)
	}
	mustGet(b) // must be a miss — it was evicted
	if s := c.stats(); s.Misses != 4 {
		t.Errorf("evicted b re-fetch: %+v, want 4th miss", s)
	}
}
