package engine_test

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"

	"github.com/stslib/sts/internal/core"
	"github.com/stslib/sts/internal/engine"
	"github.com/stslib/sts/internal/index"
	"github.com/stslib/sts/internal/model"
)

// TestConcurrentPrunedTopKAndIngest drives the filter-and-refine top-k
// path — thresholded queries, bound profiles through the profile LRU, and
// the shared prune counters — concurrently with corpus churn and stats
// reads. Run under -race it pins the thread-safety of the pruned path; the
// queries additionally cross-check every result against an exhaustive
// snapshot query issued by the same goroutine.
func TestConcurrentPrunedTopKAndIngest(t *testing.T) {
	ix, err := index.New(index.Options{Grid: testGrid(t), TimeBucket: 60, SpatialSlack: 200, TimeSlack: 120})
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(testScorer(t), engine.Options{Pruner: ix, CacheSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	stable := make(model.Dataset, 8)
	for i := range stable {
		stable[i] = walk(fmt.Sprintf("stable-%d", i), float64(100+50*i), 100, 5, 10, 8)
		if _, err := e.Add(stable[i]); err != nil {
			t.Fatal(err)
		}
	}
	query := walk("q", 120, 105, 5, 10, 8)

	const (
		queriers = 4
		rounds   = 30
	)
	var wg sync.WaitGroup
	errCh := make(chan error, queriers+2)

	wg.Add(1)
	go func() { // mutator: churn transient trajectories through the corpus
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			id := fmt.Sprintf("churn-%d", r%3)
			tr := walk(id, float64(140+10*(r%7)), 110, 5, 10, 8)
			if _, err := e.Replace(tr); err != nil {
				errCh <- err
				return
			}
			if r%2 == 1 {
				if err := e.Remove(id); err != nil {
					errCh <- err
					return
				}
			}
		}
	}()
	wg.Add(1)
	go func() { // observer: hammer the shared counters
		defer wg.Done()
		for r := 0; r < rounds*queriers; r++ {
			ps := e.PruneStats()
			if ps.BoundPruned+ps.EarlyExited+ps.Refined > ps.Considered {
				errCh <- fmt.Errorf("inconsistent prune stats: %+v", ps)
				return
			}
		}
	}()
	for w := 0; w < queriers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			opts := engine.TopKOptions{K: 3}
			if w%2 == 1 {
				opts.MinScore = 0.01
			}
			for r := 0; r < rounds; r++ {
				got, err := e.TopKOpts(context.Background(), query, opts)
				if err != nil {
					errCh <- err
					return
				}
				for _, m := range got {
					if math.IsNaN(m.Score) {
						errCh <- fmt.Errorf("NaN score for %s", m.ID)
						return
					}
					if m.Score < opts.MinScore {
						errCh <- fmt.Errorf("match %s scores %g below floor %g", m.ID, m.Score, opts.MinScore)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if ps := e.PruneStats(); ps.Considered == 0 {
		t.Error("pruned path never engaged under concurrency")
	}
}

// TestPrunedTopKStableCorpusEquivalence is the determinism cross-check the
// stress test cannot do under churn: against a fixed corpus, concurrent
// pruned queries must all return the exhaustive answer — through the exact
// engine and through profiled engines in both profile storage modes.
func TestPrunedTopKStableCorpusEquivalence(t *testing.T) {
	cases := []struct {
		name string
		opts engine.Options
	}{
		{"exact", engine.Options{}},
		{"profiled", engine.Options{Profile: &core.ProfileOptions{}}},
		{"profiled-compact", engine.Options{Profile: &core.ProfileOptions{Compact: true}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { prunedEquivalence(t, c.opts) })
	}
}

func prunedEquivalence(t *testing.T, opts engine.Options) {
	e, err := engine.New(testScorer(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := e.Add(walk(fmt.Sprintf("c-%d", i), float64(100+40*i), 100, 5, 10, 8)); err != nil {
			t.Fatal(err)
		}
	}
	query := walk("q", 115, 103, 5, 10, 8)
	want, err := e.TopKOpts(context.Background(), query, engine.TopKOptions{K: 4, Exhaustive: true})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 20; r++ {
				got, err := e.TopK(context.Background(), query, 4)
				if err != nil {
					errCh <- err
					return
				}
				if len(got) != len(want) {
					errCh <- fmt.Errorf("%d matches, want %d", len(got), len(want))
					return
				}
				for i := range want {
					if got[i].ID != want[i].ID || got[i].Score != want[i].Score {
						errCh <- fmt.Errorf("rank %d: %s=%g, want %s=%g",
							i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}
