package engine_test

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"testing"

	"github.com/stslib/sts/internal/engine"
	"github.com/stslib/sts/internal/model"
)

// TestIDsSorted checks that IDs returns a sorted listing regardless of
// insertion order and of slot reuse after removals.
func TestIDsSorted(t *testing.T) {
	e, err := engine.New(testScorer(t), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"c", "a", "d", "b"} {
		if _, err := e.Add(walk(id, 0, 0, 5, 10, 8)); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"a", "b", "c", "d"}
	if got := e.IDs(); !equalStrings(got, want) {
		t.Fatalf("IDs() = %v, want %v", got, want)
	}
	// Removing and re-adding reuses a low slot for "z"; the listing must
	// stay sorted, not revert to slot order.
	if err := e.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Add(walk("z", 0, 0, 5, 10, 8)); err != nil {
		t.Fatal(err)
	}
	want = []string{"b", "c", "d", "z"}
	if got := e.IDs(); !equalStrings(got, want) {
		t.Fatalf("IDs() after slot reuse = %v, want %v", got, want)
	}
	if e.Len() != 4 {
		t.Fatalf("Len() = %d, want 4", e.Len())
	}
}

func TestSubset(t *testing.T) {
	e, err := engine.New(testScorer(t), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"c", "a", "b"} {
		if _, err := e.Add(walk(id, 0, 0, 5, 10, 8)); err != nil {
			t.Fatal(err)
		}
	}
	// Explicit IDs come back in request order.
	ds, err := e.Subset([]string{"b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 || ds[0].ID != "b" || ds[1].ID != "c" {
		t.Fatalf("Subset([b c]) = %v", dsIDs(ds))
	}
	// Empty selection is the whole corpus in sorted-ID order.
	all, err := e.Subset(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := dsIDs(all); !equalStrings(got, []string{"a", "b", "c"}) {
		t.Fatalf("Subset(nil) = %v", got)
	}
	// Unknown IDs fail the whole call.
	if _, err := e.Subset([]string{"a", "nope"}); err == nil {
		t.Fatal("Subset with unknown ID did not fail")
	}
}

// TestIntrospectionRace exercises Len/IDs/Subset concurrently with corpus
// mutation and queries under -race.
func TestIntrospectionRace(t *testing.T) {
	e, err := engine.New(testScorer(t), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if _, err := e.Add(walk(fmt.Sprintf("base-%02d", i), float64(10*i), 0, 5, 10, 8)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := fmt.Sprintf("mut-%d", g)
			for i := 0; i < 25; i++ {
				if _, err := e.Replace(walk(id, float64(g), 0, 5, 10, 8)); err != nil {
					t.Error(err)
					return
				}
				if err := e.Remove(id); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if n := e.Len(); n < 16 {
					t.Errorf("Len() = %d, want >= 16", n)
					return
				}
				got := e.IDs()
				if !sort.StringsAreSorted(got) {
					t.Errorf("IDs() not sorted: %v", got)
					return
				}
				if _, err := e.Subset(nil); err != nil {
					t.Error(err)
					return
				}
				if _, err := e.TopK(context.Background(), walk("q", 40, 0, 5, 10, 8), 3); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func dsIDs(ds model.Dataset) []string {
	out := make([]string, len(ds))
	for i, tr := range ds {
		out[i] = tr.ID
	}
	return out
}
