package engine_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"github.com/stslib/sts/internal/engine"
	"github.com/stslib/sts/internal/eval"
	"github.com/stslib/sts/internal/linking"
	"github.com/stslib/sts/internal/model"
)

// slowScorer makes every pairwise score take delay, so a cancelled matrix
// that kept running would blow well past the test's deadline.
func slowScorer(delay time.Duration) eval.FuncScorer {
	return eval.FuncScorer{N: "slow", F: func(a, b model.Trajectory) (float64, error) {
		time.Sleep(delay)
		return 1, nil
	}}
}

// checkNoLeaks fails the test if the goroutine count has not returned to
// its starting level shortly after the cancelled call returns — the
// executor contract is that ForEach waits for its workers.
func checkNoLeaks(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(3 * time.Second)
		for {
			if runtime.NumGoroutine() <= before {
				return
			}
			if time.Now().After(deadline) {
				t.Errorf("goroutines leaked after cancellation: %d before, %d after", before, runtime.NumGoroutine())
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// expectCancelled runs f with a context cancelled shortly after the call
// starts, and requires a prompt context.Canceled return with no leaked
// goroutines. The work is sized to take tens of seconds if cancellation
// were ignored.
func expectCancelled(t *testing.T, name string, f func(ctx context.Context) error) {
	t.Helper()
	leaks := checkNoLeaks(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := f(ctx)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("%s: err=%v, want context.Canceled", name, err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("%s: returned after %v, cancellation not prompt", name, elapsed)
	}
	leaks()
}

func cancelDataset(prefix string, n int) model.Dataset {
	ds := make(model.Dataset, n)
	for i := range ds {
		ds[i] = walk(fmt.Sprintf("%s-%d", prefix, i), float64(50+20*i), 100, 5, 10, 6)
	}
	return ds
}

func TestForEachPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := engine.ForEach(ctx, 100, 4, func(i int) error { ran = true; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err=%v", err)
	}
	if ran {
		t.Error("pre-cancelled context still ran work")
	}
}

func TestForEachDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	err := engine.ForEach(ctx, 1000, 4, func(i int) error {
		time.Sleep(5 * time.Millisecond)
		return nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err=%v, want deadline exceeded", err)
	}
}

func TestMatrixScoringCancellation(t *testing.T) {
	d1, d2 := cancelDataset("r", 40), cancelDataset("c", 40)
	s := slowScorer(5 * time.Millisecond) // 1600 pairs ≈ 8s serial if uncancelled
	expectCancelled(t, "ScoreMatrixContext", func(ctx context.Context) error {
		_, err := eval.ScoreMatrixContext(ctx, d1, d2, s, 2)
		return err
	})
}

func TestMatchingCancellation(t *testing.T) {
	d1, d2 := cancelDataset("r", 40), cancelDataset("c", 40)
	s := slowScorer(5 * time.Millisecond)
	expectCancelled(t, "MatchingContext", func(ctx context.Context) error {
		_, err := eval.MatchingContext(ctx, d1, d2, s, 2)
		return err
	})
}

func TestGreedyLinkCancellation(t *testing.T) {
	d1, d2 := cancelDataset("r", 40), cancelDataset("c", 40)
	s := slowScorer(5 * time.Millisecond)
	expectCancelled(t, "GreedyLinkContext", func(ctx context.Context) error {
		_, err := linking.GreedyLinkContext(ctx, d1, d2, s, linking.Options{})
		return err
	})
}

func TestOptimalLinkCancellation(t *testing.T) {
	d1, d2 := cancelDataset("r", 30), cancelDataset("c", 30)
	s := slowScorer(5 * time.Millisecond)
	expectCancelled(t, "OptimalLinkContext", func(ctx context.Context) error {
		_, err := linking.OptimalLinkContext(ctx, d1, d2, s, linking.Options{})
		return err
	})
}

func TestTopKCancellation(t *testing.T) {
	e, err := engine.New(slowScorer(5*time.Millisecond), engine.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range cancelDataset("c", 400) { // ≈ 2s of scoring if uncancelled
		if _, err := e.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	q := walk("q", 100, 100, 5, 10, 6)
	expectCancelled(t, "Engine.TopK", func(ctx context.Context) error {
		_, err := e.TopK(ctx, q, 5)
		return err
	})
}

func TestTopKDeadlineViaEngine(t *testing.T) {
	e, err := engine.New(slowScorer(5*time.Millisecond), engine.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range cancelDataset("c", 400) {
		if _, err := e.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	if _, err := e.TopK(ctx, walk("q", 100, 100, 5, 10, 6), 5); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err=%v, want deadline exceeded", err)
	}
}
