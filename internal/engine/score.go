package engine

import (
	"context"
	"math"

	"github.com/stslib/sts/internal/core"
	"github.com/stslib/sts/internal/model"
)

// ScoreBatch computes scores[i][j] = Score(rows[i], cols[j]) for every
// pair with mask[i][j] true (a nil mask scores everything); masked-out
// pairs get −Inf so they rank last and never link. NaN scores are
// sanitized to −Inf. Scoring runs on the engine's worker pool with ctx
// cancellation.
//
// With a measure-backed scorer, each distinct trajectory is prepared once
// through the engine's LRU cache — repeated batches over the same data hit
// the cache instead of re-estimating speed models — and trajectories that
// appear in no admissible pair are never prepared at all (preparation is
// the dominant per-trajectory cost).
func (e *Engine) ScoreBatch(ctx context.Context, rows, cols model.Dataset, mask [][]bool) ([][]float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if e.measure == nil {
		return e.scoreBatchGeneric(ctx, rows, cols, mask)
	}
	rowNeeded, colNeeded := neededSides(len(rows), len(cols), mask)
	prows := make([]*core.Prepared, len(rows))
	pcols := make([]*core.Prepared, len(cols))
	// One fan-out prepares both sides; the cache dedupes trajectories
	// shared between rows and cols (or with earlier batches).
	if err := ForEach(ctx, len(rows)+len(cols), e.workers, func(i int) error {
		if i < len(rows) {
			if !rowNeeded[i] {
				return nil
			}
			p, err := e.prepared(rows[i])
			if err != nil {
				return err
			}
			prows[i] = p
			return nil
		}
		j := i - len(rows)
		if !colNeeded[j] {
			return nil
		}
		p, err := e.prepared(cols[j])
		if err != nil {
			return err
		}
		pcols[j] = p
		return nil
	}); err != nil {
		return nil, err
	}
	return matrix(ctx, len(rows), len(cols), e.workers, func(i, j int) (float64, error) {
		if mask != nil && !mask[i][j] {
			return math.Inf(-1), nil
		}
		return e.measure.SimilarityPrepared(prows[i], pcols[j])
	})
}

// scoreBatchGeneric is ScoreBatch for plain pairwise scorers (baselines).
func (e *Engine) scoreBatchGeneric(ctx context.Context, rows, cols model.Dataset, mask [][]bool) ([][]float64, error) {
	return matrix(ctx, len(rows), len(cols), e.workers, func(i, j int) (float64, error) {
		if mask != nil && !mask[i][j] {
			return math.Inf(-1), nil
		}
		return e.scorer.Score(rows[i], cols[j])
	})
}

// neededSides marks the rows and columns that appear in at least one
// admissible pair. A nil mask needs everything.
func neededSides(n, m int, mask [][]bool) (rows, cols []bool) {
	rows = make([]bool, n)
	cols = make([]bool, m)
	if mask == nil {
		for i := range rows {
			rows[i] = true
		}
		for j := range cols {
			cols[j] = true
		}
		return rows, cols
	}
	for i := range mask {
		for j, ok := range mask[i] {
			if ok {
				rows[i] = true
				cols[j] = true
			}
		}
	}
	return rows, cols
}

// ScoreMatrix scores rows × cols through a transient engine — the thin
// view eval.ScoreMatrix and friends are built on. The transient engine's
// cache is unbounded: within one call, every distinct trajectory is
// prepared exactly once, matching the pre-engine semantics. Long-lived
// callers that want caching across calls should hold an Engine instead.
func ScoreMatrix(ctx context.Context, s Scorer, rows, cols model.Dataset, mask [][]bool, workers int) ([][]float64, error) {
	e, err := New(s, Options{Workers: workers, CacheSize: -1})
	if err != nil {
		return nil, err
	}
	return e.ScoreBatch(ctx, rows, cols, mask)
}
