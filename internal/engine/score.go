package engine

import (
	"context"
	"fmt"
	"math"
	"runtime"

	"github.com/stslib/sts/internal/core"
	"github.com/stslib/sts/internal/model"
)

// ScoreBatch computes scores[i][j] = Score(rows[i], cols[j]) for every
// pair with mask[i][j] true (a nil mask scores everything); masked-out
// pairs get −Inf so they rank last and never link. NaN scores are
// sanitized to −Inf. Scoring runs on the engine's worker pool with ctx
// cancellation.
//
// With a measure-backed scorer, each distinct trajectory is prepared once
// through the engine's LRU cache — repeated batches over the same data hit
// the cache instead of re-estimating speed models — and trajectories that
// appear in no admissible pair are never prepared at all (preparation is
// the dominant per-trajectory cost). A profiled engine additionally builds
// each trajectory's bucketed S-T profile once (second LRU), collapsing
// every pair evaluation to a sparse dot-product merge.
func (e *Engine) ScoreBatch(ctx context.Context, rows, cols model.Dataset, mask [][]bool) ([][]float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if e.measure == nil {
		return e.scoreBatchGeneric(ctx, rows, cols, mask)
	}
	rowNeeded, colNeeded := neededSides(len(rows), len(cols), mask)
	if e.profOpts != nil {
		prows := make([]*core.Profile, len(rows))
		pcols := make([]*core.Profile, len(cols))
		if err := e.forEachSide(ctx, rows, cols, rowNeeded, colNeeded, func(i int) error {
			p, err := e.profiled(rows[i])
			prows[i] = p
			return err
		}, func(j int) error {
			p, err := e.profiled(cols[j])
			pcols[j] = p
			return err
		}); err != nil {
			return nil, err
		}
		return matrix(ctx, len(rows), len(cols), e.workers, func(i, j int) (float64, error) {
			if mask != nil && !mask[i][j] {
				return math.Inf(-1), nil
			}
			return core.SimilarityProfiled(prows[i], pcols[j])
		})
	}
	prows := make([]*core.Prepared, len(rows))
	pcols := make([]*core.Prepared, len(cols))
	if err := e.forEachSide(ctx, rows, cols, rowNeeded, colNeeded, func(i int) error {
		p, err := e.prepared(rows[i])
		prows[i] = p
		return err
	}, func(j int) error {
		p, err := e.prepared(cols[j])
		pcols[j] = p
		return err
	}); err != nil {
		return nil, err
	}
	return matrix(ctx, len(rows), len(cols), e.workers, func(i, j int) (float64, error) {
		if mask != nil && !mask[i][j] {
			return math.Inf(-1), nil
		}
		return e.measure.SimilarityPrepared(prows[i], pcols[j])
	})
}

// forEachSide runs one fan-out building the needed per-trajectory state of
// both sides; the LRU caches dedupe trajectories shared between rows and
// cols (or with earlier batches).
func (e *Engine) forEachSide(ctx context.Context, rows, cols model.Dataset, rowNeeded, colNeeded []bool, doRow, doCol func(int) error) error {
	return ForEach(ctx, len(rows)+len(cols), e.workers, func(i int) error {
		if i < len(rows) {
			if !rowNeeded[i] {
				return nil
			}
			return doRow(i)
		}
		j := i - len(rows)
		if !colNeeded[j] {
			return nil
		}
		return doCol(j)
	})
}

// scoreBatchGeneric is ScoreBatch for plain pairwise scorers (baselines).
func (e *Engine) scoreBatchGeneric(ctx context.Context, rows, cols model.Dataset, mask [][]bool) ([][]float64, error) {
	return matrix(ctx, len(rows), len(cols), e.workers, func(i, j int) (float64, error) {
		if mask != nil && !mask[i][j] {
			return math.Inf(-1), nil
		}
		return e.scorer.Score(rows[i], cols[j])
	})
}

// neededSides marks the rows and columns that appear in at least one
// admissible pair. A nil mask needs everything.
func neededSides(n, m int, mask [][]bool) (rows, cols []bool) {
	rows = make([]bool, n)
	cols = make([]bool, m)
	if mask == nil {
		for i := range rows {
			rows[i] = true
		}
		for j := range cols {
			cols[j] = true
		}
		return rows, cols
	}
	for i := range mask {
		for j, ok := range mask[i] {
			if ok {
				rows[i] = true
				cols[j] = true
			}
		}
	}
	return rows, cols
}

// ScoreMatrix scores rows × cols without a persistent engine — the thin
// view eval.ScoreMatrix and friends are built on. Within one call every
// distinct trajectory (by identity key, so a trajectory shared between
// rows and cols counts once) is prepared exactly once; trajectories in no
// admissible pair are never prepared. Unlike Engine.ScoreBatch there is no
// LRU, no single-flight channel and no eviction bookkeeping — one-shot
// batches pay only a flat dedup map and the prepared state itself.
// Long-lived callers that want caching across calls should hold an Engine.
//
// A ProfileScorer with non-nil options is scored through bucketed
// profiles: each distinct trajectory's profile is built once in the same
// fan-out and pairs reduce to sparse dot-product merges.
func ScoreMatrix(ctx context.Context, s Scorer, rows, cols model.Dataset, mask [][]bool, workers int) ([][]float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ms, ok := s.(MeasureScorer)
	if !ok {
		return matrix(ctx, len(rows), len(cols), workers, func(i, j int) (float64, error) {
			if mask != nil && !mask[i][j] {
				return math.Inf(-1), nil
			}
			return s.Score(rows[i], cols[j])
		})
	}
	m := ms.Measure()
	var popts *core.ProfileOptions
	if ps, ok := s.(ProfileScorer); ok {
		popts = ps.ProfileOptions()
	}

	// Dedupe the needed trajectories of both sides by identity key.
	rowNeeded, colNeeded := neededSides(len(rows), len(cols), mask)
	uniq := make(model.Dataset, 0, len(rows)+len(cols))
	slotOf := make(map[prepKey]int, len(rows)+len(cols))
	rowSlot := make([]int, len(rows))
	colSlot := make([]int, len(cols))
	assign := func(tr model.Trajectory) int {
		k := keyOf(tr)
		if slot, ok := slotOf[k]; ok {
			return slot
		}
		slot := len(uniq)
		slotOf[k] = slot
		uniq = append(uniq, tr)
		return slot
	}
	for i, tr := range rows {
		rowSlot[i] = -1
		if rowNeeded[i] {
			rowSlot[i] = assign(tr)
		}
	}
	for j, tr := range cols {
		colSlot[j] = -1
		if colNeeded[j] {
			colSlot[j] = assign(tr)
		}
	}

	preps := make([]*core.Prepared, len(uniq))
	var profs []*core.Profile
	if popts != nil {
		profs = make([]*core.Profile, len(uniq))
	}
	if err := ForEach(ctx, len(uniq), workers, func(i int) error {
		p, err := m.Prepare(uniq[i])
		if err != nil {
			return fmt.Errorf("engine: prepare %q: %w", uniq[i].ID, err)
		}
		preps[i] = p
		if popts != nil {
			prof, err := m.Profile(p, *popts)
			if err != nil {
				return fmt.Errorf("engine: profile %q: %w", uniq[i].ID, err)
			}
			profs[i] = prof
		}
		return nil
	}); err != nil {
		return nil, err
	}

	if popts != nil {
		return matrix(ctx, len(rows), len(cols), workers, func(i, j int) (float64, error) {
			if mask != nil && !mask[i][j] {
				return math.Inf(-1), nil
			}
			return core.SimilarityProfiled(profs[rowSlot[i]], profs[colSlot[j]])
		})
	}
	return matrix(ctx, len(rows), len(cols), workers, func(i, j int) (float64, error) {
		if mask != nil && !mask[i][j] {
			return math.Inf(-1), nil
		}
		return m.SimilarityPrepared(preps[rowSlot[i]], preps[colSlot[j]])
	})
}
