package engine_test

import (
	"context"
	"fmt"
	"testing"

	"github.com/stslib/sts/internal/core"
	"github.com/stslib/sts/internal/engine"
	"github.com/stslib/sts/internal/model"
	"github.com/stslib/sts/internal/store"
)

// shiftT returns tr with every timestamp moved by dt seconds.
func shiftT(tr model.Trajectory, dt float64) model.Trajectory {
	out := model.Trajectory{ID: tr.ID, Samples: append([]model.Sample{}, tr.Samples...)}
	for i := range out.Samples {
		out.Samples[i].T += dt
	}
	return out
}

// TestTrimSweepDecodesOnlyExpiring pins the O(expiring) retention sweep:
// slots cache their record's first timestamp, so trajectories wholly at
// or after the cutoff are skipped without decoding, and a sweep with
// nothing to expire decodes zero records.
func TestTrimSweepDecodesOnlyExpiring(t *testing.T) {
	e, err := engine.New(testScorer(t), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	// 3 old trajectories (t=0..50) and 5 fresh ones (t=100..150).
	for i := 0; i < 3; i++ {
		if _, err := e.Add(walk(fmt.Sprintf("old%d", i), 100+float64(i)*20, 100, 4, 10, 6)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if _, err := e.Add(shiftT(walk(fmt.Sprintf("new%d", i), 300+float64(i)*20, 100, 4, 10, 6), 100)); err != nil {
			t.Fatal(err)
		}
	}
	// Nothing expires below t=0: the sweep must not touch a single record.
	st, err := e.TrimBefore(0)
	if err != nil {
		t.Fatal(err)
	}
	if st != (engine.TrimStats{}) {
		t.Fatalf("no-op sweep decoded records: %+v", st)
	}
	// Only the 3 old trajectories start before t=60; the 5 fresh ones must
	// be skipped without a decode.
	st, err = e.TrimBefore(60)
	if err != nil {
		t.Fatal(err)
	}
	if st.Decoded != 3 || st.Removed != 3 || st.Trimmed != 0 {
		t.Fatalf("sweep stats %+v, want 3 decoded = 3 removed", st)
	}
	// Idempotent and still decode-free.
	st, err = e.TrimBefore(60)
	if err != nil || st != (engine.TrimStats{}) {
		t.Fatalf("second sweep: %+v, %v", st, err)
	}
	// A straddler's post-trim minT reflects its new head: a sweep below it
	// decodes nothing, a sweep above it decodes exactly one record.
	if _, err := e.Add(walk("straddler", 500, 100, 4, 10, 12)); err != nil { // t=0..110
		t.Fatal(err)
	}
	st, err = e.TrimBefore(45)
	if err != nil || st.Decoded != 1 || st.Trimmed != 1 || st.DroppedSamples != 5 {
		t.Fatalf("straddle sweep: %+v, %v", st, err)
	}
	if st, err = e.TrimBefore(45); err != nil || st != (engine.TrimStats{}) {
		t.Fatalf("post-straddle sweep decoded: %+v, %v", st, err)
	}
	// Append never lowers a record's first timestamp, so the cached minT
	// stays valid and the sweep stays decode-free.
	tr, _ := e.Get("straddler")
	if _, err := e.Append("straddler", tailOf(tr, 2)); err != nil {
		t.Fatal(err)
	}
	if st, err = e.TrimBefore(45); err != nil || st != (engine.TrimStats{}) {
		t.Fatalf("post-append sweep decoded: %+v, %v", st, err)
	}
}

// TestTrimPreservesDerivedState is the warm-retention gate: a sweep that
// trims straddling trajectories must maintain their cached prepared
// state and profiles incrementally, so a standing query re-evaluated
// after retention causes zero from-scratch builds — and still scores
// bit-identically to a fresh engine over the trimmed corpus.
func TestTrimPreservesDerivedState(t *testing.T) {
	const cutoff = 25.0
	for name, svc := range appendEngines(t) {
		t.Run(name, func(t *testing.T) {
			// 6 straddlers (t=0..90, 3 samples expire) and 2 fresh
			// trajectories, all within the index's spatial slack of the
			// standing query so every one is a candidate.
			var final []model.Trajectory
			for i := 0; i < 6; i++ {
				tr := walk(fmt.Sprintf("s%d", i), 100+float64(i)*10, 100, 4, 10, 10)
				if _, err := svc.Add(tr); err != nil {
					t.Fatal(err)
				}
				final = append(final, model.Trajectory{ID: tr.ID, Samples: append([]model.Sample{}, tr.Samples[3:]...)})
			}
			for i := 0; i < 2; i++ {
				tr := shiftT(walk(fmt.Sprintf("f%d", i), 160+float64(i)*10, 100, 4, 10, 6), 100)
				if _, err := svc.Add(tr); err != nil {
					t.Fatal(err)
				}
				final = append(final, tr)
			}
			query := walk("q", 100, 100, 4, 10, 20) // t=0..190: overlaps everything
			if _, err := svc.TopK(context.Background(), query, 8); err != nil {
				t.Fatal(err)
			}
			prep0, prof0 := svc.CacheStats(), svc.ProfileCacheStats()

			st, err := svc.TrimBefore(cutoff)
			if err != nil {
				t.Fatal(err)
			}
			if st.Trimmed != 6 || st.Removed != 0 || st.Decoded != 6 {
				t.Fatalf("trim stats %+v, want 6 trimmed, 6 decoded", st)
			}

			got, err := svc.TopK(context.Background(), query, 8)
			if err != nil {
				t.Fatal(err)
			}
			// The standing query's re-evaluation must be all cache hits:
			// the sweep trimmed the cached state incrementally instead of
			// dropping it.
			if prep, prof := svc.CacheStats(), svc.ProfileCacheStats(); prep.Misses != prep0.Misses || prof.Misses != prof0.Misses {
				t.Fatalf("re-evaluation rebuilt derived state: prepared misses %d -> %d, profile misses %d -> %d",
					prep0.Misses, prep.Misses, prof0.Misses, prof.Misses)
			}

			fresh, err := engine.New(svc.Scorer(), appendOpts(t, svc.Profiled()))
			if err != nil {
				t.Fatal(err)
			}
			defer fresh.Close()
			for _, tr := range final {
				if _, err := fresh.Add(tr); err != nil {
					t.Fatal(err)
				}
			}
			want, err := fresh.TopK(context.Background(), query, 8)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("TopK sizes after trim: %d vs %d", len(got), len(want))
			}
			for i := range got {
				if got[i].ID != want[i].ID || got[i].Score != want[i].Score {
					t.Fatalf("TopK[%d] after trim: %+v vs fresh %+v", i, got[i], want[i])
				}
			}
		})
	}
}

// warmDir populates a persistent profiled engine, runs a query so every
// corpus profile is cached, snapshots (capturing the sidecar), and
// returns the pre-restart top-k for comparison.
func warmDir(t *testing.T, dir string, opts engine.Options, query model.Trajectory) []engine.Match {
	t.Helper()
	st, err := store.Open(dir, store.Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	opts.Corpus = st
	e, err := engine.New(testScorer(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := e.Add(walk(fmt.Sprintf("t%02d", i), 100+float64(i)*12, 100, 4, 10, 8)); err != nil {
			t.Fatal(err)
		}
	}
	want, err := e.TopK(context.Background(), query, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	return want
}

// TestWarmRestart pins the sidecar round trip end to end: an engine
// reopened over a snapshotted store starts with every corpus profile
// already cached — zero rebuild misses — and answers the standing query
// bit-identically to both its pre-restart self and a cold engine.
func TestWarmRestart(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts engine.Options
	}{
		{"profiled", engine.Options{Profile: &core.ProfileOptions{BucketSeconds: 30}}},
		{"compact", engine.Options{Profile: &core.ProfileOptions{BucketSeconds: 30, Compact: true}}},
		{"exact", engine.Options{}}, // bound profiles only
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			query := walk("q", 120, 100, 4, 10, 8)
			want := warmDir(t, dir, tc.opts, query)

			st, err := store.Open(dir, store.Options{SnapshotEvery: -1})
			if err != nil {
				t.Fatal(err)
			}
			o := tc.opts
			o.Corpus = st
			e, err := engine.New(testScorer(t), o)
			if err != nil {
				t.Fatal(err)
			}
			if e.WarmLoaded() != 10 {
				t.Fatalf("WarmLoaded=%d, want 10", e.WarmLoaded())
			}
			if info, ok := e.Recovery(); !ok || info.WarmProfiles != 10 {
				t.Fatalf("recovery warm profiles: %+v, %v", info, ok)
			}
			if s := e.ProfileCacheStats(); s.Size != 10 || s.Misses != 0 {
				t.Fatalf("profile cache after warm restart: %+v", s)
			}
			got, err := e.TopK(context.Background(), query, 6)
			if err != nil {
				t.Fatal(err)
			}
			// Only the query itself may have missed the caches; all 10
			// corpus profiles must have been served warm.
			if s := e.ProfileCacheStats(); s.Misses > 1 || s.Hits < 10 {
				t.Fatalf("warm query rebuilt corpus profiles: %+v", s)
			}
			for i := range want {
				if got[i].ID != want[i].ID || got[i].Score != want[i].Score {
					t.Fatalf("warm TopK[%d]: %+v vs pre-restart %+v", i, got[i], want[i])
				}
			}
			if err := e.Close(); err != nil {
				t.Fatal(err)
			}

			// A cold engine (sidecar ignored) must agree bit-for-bit.
			st2, err := store.Open(dir, store.Options{SnapshotEvery: -1, DisableSidecar: true})
			if err != nil {
				t.Fatal(err)
			}
			o.Corpus = st2
			cold, err := engine.New(testScorer(t), o)
			if err != nil {
				t.Fatal(err)
			}
			defer cold.Close()
			if cold.WarmLoaded() != 0 {
				t.Fatalf("cold engine warm-loaded %d profiles", cold.WarmLoaded())
			}
			coldTop, err := cold.TopK(context.Background(), query, 6)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if coldTop[i].ID != want[i].ID || coldTop[i].Score != want[i].Score {
					t.Fatalf("cold TopK[%d]: %+v vs %+v", i, coldTop[i], want[i])
				}
			}
		})
	}
}

// TestWarmRestartConfigGate pins the configuration validation: a sidecar
// written under one profile configuration must not warm an engine built
// with another (the profiles would be wrong, not just stale).
func TestWarmRestartConfigGate(t *testing.T) {
	dir := t.TempDir()
	query := walk("q", 120, 100, 4, 10, 8)
	warmDir(t, dir, engine.Options{Profile: &core.ProfileOptions{BucketSeconds: 30}}, query)

	for _, tc := range []struct {
		name string
		opts engine.Options
	}{
		{"width", engine.Options{Profile: &core.ProfileOptions{BucketSeconds: 60}}},
		{"storage", engine.Options{Profile: &core.ProfileOptions{BucketSeconds: 30, Compact: true}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			st, err := store.Open(dir, store.Options{SnapshotEvery: -1})
			if err != nil {
				t.Fatal(err)
			}
			o := tc.opts
			o.Corpus = st
			e, err := engine.New(testScorer(t), o)
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			if e.WarmLoaded() != 0 {
				t.Fatalf("%s mismatch warm-loaded %d profiles", tc.name, e.WarmLoaded())
			}
			if _, err := e.TopK(context.Background(), query, 6); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestWarmRestartSharded pins the per-shard sidecar round trip: each
// shard persists and recovers its own profiles.snap, and the coordinator
// sums the warm-load counts.
func TestWarmRestartSharded(t *testing.T) {
	dir := t.TempDir()
	query := walk("q", 120, 100, 4, 10, 8)
	const shards = 3
	// ShardOptions records the stores it opens (indexed writes from
	// concurrent shard construction are race-free) so the test can
	// snapshot each shard before restarting.
	stores := make([]*store.Store, shards)
	open := func() *engine.Sharded {
		t.Helper()
		s, err := engine.NewSharded(testScorer(t), engine.ShardedOptions{
			Shards: shards,
			ShardOptions: func(shard int) (engine.Options, error) {
				st, err := store.Open(fmt.Sprintf("%s/shard-%d", dir, shard), store.Options{SnapshotEvery: -1})
				if err != nil {
					return engine.Options{}, err
				}
				stores[shard] = st
				return engine.Options{
					Profile: &core.ProfileOptions{BucketSeconds: 30},
					Corpus:  st,
				}, nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s := open()
	for i := 0; i < 12; i++ {
		if _, err := s.Add(walk(fmt.Sprintf("t%02d", i), 100+float64(i)*10, 100, 4, 10, 8)); err != nil {
			t.Fatal(err)
		}
	}
	want, err := s.TopK(context.Background(), query, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range stores {
		if err := st.Snapshot(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := open()
	defer s2.Close()
	if s2.WarmLoaded() != 12 {
		t.Fatalf("sharded WarmLoaded=%d, want 12", s2.WarmLoaded())
	}
	if st := s2.ProfileCacheStats(); st.Size != 12 || st.Misses != 0 {
		t.Fatalf("sharded profile cache after warm restart: %+v", st)
	}
	got, err := s2.TopK(context.Background(), query, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].ID != want[i].ID || got[i].Score != want[i].Score {
			t.Fatalf("sharded warm TopK[%d]: %+v vs %+v", i, got[i], want[i])
		}
	}
}
