// Thresholded (MinScore) matrix scoring: the filter-and-refine analogue of
// ScoreBatch/ScoreMatrix. Entries whose score is provably below the floor
// collapse to −Inf without full scoring — first by the admissible profile
// upper bound, then by early-exited refinement — while every entry at or
// above the floor is bit-identical to its exhaustive counterpart. Greedy
// linking with a rejection threshold consumes these matrices unchanged.
package engine

import (
	"context"
	"fmt"
	"math"
	"runtime"

	"github.com/stslib/sts/internal/core"
	"github.com/stslib/sts/internal/model"
)

// ScoreBatchMin is ScoreBatch with a score floor: pairs whose score falls
// below minScore get −Inf, like masked-out pairs. On a measure-backed
// engine with pruning enabled the floor is enforced by filter-and-refine —
// bounded first, refined with early exit — so most sub-threshold pairs
// never pay full scoring; surviving entries equal ScoreBatch's bit for
// bit. A −Inf floor is ScoreBatch.
func (e *Engine) ScoreBatchMin(ctx context.Context, rows, cols model.Dataset, mask [][]bool, minScore float64) ([][]float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if math.IsNaN(minScore) {
		minScore = math.Inf(-1)
	}
	if math.IsInf(minScore, -1) || !e.canPrune() {
		out, err := e.ScoreBatch(ctx, rows, cols, mask)
		if err != nil {
			return nil, err
		}
		return floorMatrix(out, minScore), nil
	}
	profiled := e.profOpts != nil
	rowNeeded, colNeeded := neededSides(len(rows), len(cols), mask)
	frows := make([]*core.Profile, len(rows))
	fcols := make([]*core.Profile, len(cols))
	var prows []*core.Prepared
	var pcols []*core.Prepared
	if !profiled {
		prows = make([]*core.Prepared, len(rows))
		pcols = make([]*core.Prepared, len(cols))
	}
	if err := e.forEachSide(ctx, rows, cols, rowNeeded, colNeeded, func(i int) error {
		p, err := e.profiled(rows[i])
		if err != nil {
			return err
		}
		frows[i] = p
		if !profiled {
			prows[i], err = e.prepared(rows[i])
		}
		return err
	}, func(j int) error {
		p, err := e.profiled(cols[j])
		if err != nil {
			return err
		}
		fcols[j] = p
		if !profiled {
			pcols[j], err = e.prepared(cols[j])
		}
		return err
	}); err != nil {
		return nil, err
	}
	var st pruneCounters
	defer func() {
		e.pstats.add(st.considered.Load(), st.boundPruned.Load(), st.earlyExited.Load(), st.refined.Load())
	}()
	return matrix(ctx, len(rows), len(cols), e.workers, func(i, j int) (float64, error) {
		if mask != nil && !mask[i][j] {
			return math.Inf(-1), nil
		}
		if profiled {
			return scoreMinPair(nil, nil, nil, frows[i], fcols[j], minScore, &st)
		}
		return scoreMinPair(e.measure, prows[i], pcols[j], frows[i], fcols[j], minScore, &st)
	})
}

// scoreMinPair evaluates one pair under a score floor: bound first, refine
// with early exit only if the bound passes. A nil measure selects the
// profiled scorer (fa/fb are then scoring profiles, pa/pb unused). Returns
// −Inf when the score is provably below minScore; any returned finite
// score is exact (identical to the unthresholded scorer).
func scoreMinPair(m *core.Measure, pa, pb *core.Prepared, fa, fb *core.Profile, minScore float64, st *pruneCounters) (float64, error) {
	st.considered.Add(1)
	var ub float64
	var err error
	if m == nil {
		ub, err = core.UpperBoundProfiled(fa, fb)
	} else {
		ub, err = core.UpperBound(fa, fb)
	}
	if err != nil {
		return 0, err
	}
	if ub < minScore {
		st.boundPruned.Add(1)
		return math.Inf(-1), nil
	}
	if ub == 0 {
		// An admissible zero bound certifies a floating-point-exact zero
		// score, and 0 >= minScore here — keep it, exactly as the
		// exhaustive matrix would.
		st.boundPruned.Add(1)
		return 0, nil
	}
	var v float64
	var ok bool
	if m == nil {
		v, ok, err = core.SimilarityProfiledThreshold(fa, fb, minScore)
	} else {
		v, ok, err = m.RefineThreshold(pa, pb, fa, fb, minScore)
	}
	if err != nil {
		return 0, err
	}
	if !ok {
		st.earlyExited.Add(1)
		return math.Inf(-1), nil
	}
	st.refined.Add(1)
	if v < minScore || math.IsNaN(v) {
		return math.Inf(-1), nil
	}
	return v, nil
}

// ScoreMatrixMin is ScoreMatrix with a score floor — the transient
// filter-and-refine matrix under eval's thresholded entry points. With a
// measure-backed scorer each distinct trajectory is prepared and profiled
// once and every pair is bounded before it is refined; other scorers are
// scored in full and floored afterwards.
func ScoreMatrixMin(ctx context.Context, s Scorer, rows, cols model.Dataset, mask [][]bool, minScore float64, workers int) ([][]float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if math.IsNaN(minScore) {
		minScore = math.Inf(-1)
	}
	ms, measureBacked := s.(MeasureScorer)
	if math.IsInf(minScore, -1) || !measureBacked {
		out, err := ScoreMatrix(ctx, s, rows, cols, mask, workers)
		if err != nil {
			return nil, err
		}
		return floorMatrix(out, minScore), nil
	}
	m := ms.Measure()
	boundOpts := core.ProfileOptions{}
	var popts *core.ProfileOptions
	if ps, ok := s.(ProfileScorer); ok {
		popts = ps.ProfileOptions()
	}
	if popts != nil {
		boundOpts = *popts
	}
	boundOpts.Bounds = true

	rowNeeded, colNeeded := neededSides(len(rows), len(cols), mask)
	uniq := make(model.Dataset, 0, len(rows)+len(cols))
	slotOf := make(map[prepKey]int, len(rows)+len(cols))
	rowSlot := make([]int, len(rows))
	colSlot := make([]int, len(cols))
	assign := func(tr model.Trajectory) int {
		k := keyOf(tr)
		if slot, ok := slotOf[k]; ok {
			return slot
		}
		slot := len(uniq)
		slotOf[k] = slot
		uniq = append(uniq, tr)
		return slot
	}
	for i, tr := range rows {
		rowSlot[i] = -1
		if rowNeeded[i] {
			rowSlot[i] = assign(tr)
		}
	}
	for j, tr := range cols {
		colSlot[j] = -1
		if colNeeded[j] {
			colSlot[j] = assign(tr)
		}
	}

	preps := make([]*core.Prepared, len(uniq))
	profs := make([]*core.Profile, len(uniq))
	if err := ForEach(ctx, len(uniq), workers, func(i int) error {
		p, err := m.Prepare(uniq[i])
		if err != nil {
			return fmt.Errorf("engine: prepare %q: %w", uniq[i].ID, err)
		}
		preps[i] = p
		prof, err := m.Profile(p, boundOpts)
		if err != nil {
			return fmt.Errorf("engine: profile %q: %w", uniq[i].ID, err)
		}
		profs[i] = prof
		return nil
	}); err != nil {
		return nil, err
	}

	var st pruneCounters
	return matrix(ctx, len(rows), len(cols), workers, func(i, j int) (float64, error) {
		if mask != nil && !mask[i][j] {
			return math.Inf(-1), nil
		}
		if popts != nil {
			return scoreMinPair(nil, nil, nil, profs[rowSlot[i]], profs[colSlot[j]], minScore, &st)
		}
		return scoreMinPair(m, preps[rowSlot[i]], preps[colSlot[j]], profs[rowSlot[i]], profs[colSlot[j]], minScore, &st)
	})
}

// floorMatrix maps entries below minScore (and NaN) to −Inf in place.
func floorMatrix(m [][]float64, minScore float64) [][]float64 {
	if math.IsInf(minScore, -1) {
		return m
	}
	for _, row := range m {
		for j, v := range row {
			if v < minScore || math.IsNaN(v) {
				row[j] = math.Inf(-1)
			}
		}
	}
	return m
}
