package engine

import (
	"errors"
	"fmt"

	"github.com/stslib/sts/internal/core"
	"github.com/stslib/sts/internal/model"
)

// Append extends the corpus trajectory id with tail samples, which must be
// strictly after its current last timestamp. The store logs only the
// encoded tail (opAppend); pruner postings move incrementally; and when the
// old generation's prepared state or profile is still cached, the new
// generation's derived state is rebuilt incrementally (core.AppendPrepared
// / core.AppendProfile — bit-identical to a from-scratch build) instead of
// being dropped for the next query to re-derive.
func (e *Engine) Append(id string, tail []model.Sample) (int, error) {
	if id == "" {
		return 0, errors.New("engine: corpus trajectories need a non-empty ID")
	}
	if len(tail) == 0 {
		return 0, fmt.Errorf("engine: append to %q has no samples", id)
	}
	e.mu.Lock()
	slot, ok := e.byID[id]
	if !ok {
		e.mu.Unlock()
		return 0, fmt.Errorf("engine: trajectory %q %w", id, ErrNotFound)
	}
	oldRef := e.slots[slot].ref
	// The pruner's postings are keyed by sample content, so moving them
	// needs the old trajectory decoded — before the corpus mutates, like
	// Remove and Replace.
	var old, grown model.Trajectory
	if e.pruner != nil {
		var err error
		if old, err = oldRef.Decode(); err != nil {
			e.mu.Unlock()
			return 0, fmt.Errorf("engine: %w", err)
		}
		samples := make([]model.Sample, len(old.Samples)+len(tail))
		copy(samples, old.Samples)
		copy(samples[len(old.Samples):], tail)
		grown = model.Trajectory{ID: id, Samples: samples}
	}
	ref, err := e.corpus.Append(id, tail)
	if err != nil {
		e.mu.Unlock()
		return 0, fmt.Errorf("engine: %w", err)
	}
	if e.pruner != nil {
		e.pruner.Remove(slot, old)
		e.pruner.Insert(slot, grown)
	}
	// Seize the superseded generation's derived state for incremental
	// maintenance before forgetting it.
	var oldPrep *core.Prepared
	var oldProf *core.Profile
	if e.measure != nil {
		oldPrep, _ = e.cache.peek(refKey(oldRef))
		if e.profiles != nil {
			oldProf, _ = e.profiles.peek(refKey(oldRef))
		}
	}
	e.forgetDerived(refKey(oldRef))
	e.slots[slot].ref = ref
	e.mu.Unlock()

	// Refresh derived state outside the lock: cache keys are generation-
	// scoped, so if a racing Remove/Replace supersedes ref meanwhile the
	// entries are merely unused, never wrong. Failures here only lose the
	// incremental head start — the next query rebuilds from scratch.
	if oldPrep != nil {
		p, err := e.measure.AppendPrepared(oldPrep, tail)
		if err != nil {
			return slot, nil
		}
		e.cache.put(refKey(ref), p)
		if oldProf != nil {
			if prof, err := e.measure.AppendProfile(oldProf, p, e.boundOpts); err == nil {
				e.profiles.put(refKey(ref), prof)
			}
		}
	}
	return slot, nil
}

// TrimStats reports one retention sweep.
type TrimStats struct {
	// Removed counts trajectories dropped whole (every sample older than
	// the cutoff); Trimmed counts trajectories whose head was cut.
	Removed int `json:"removed"`
	Trimmed int `json:"trimmed"`
	// DroppedSamples counts samples discarded across both kinds.
	DroppedSamples int `json:"dropped_samples"`
}

// TrimBefore drops every sample with timestamp < cutoff from the corpus:
// trajectories that end before the cutoff are removed entirely, ones that
// straddle it are rewritten without their expired head (a Replace in the
// store, so the WAL stays replayable and the next snapshot compacts the
// trimmed records). The sweep holds the engine's mutation lock, acting as
// one atomic retention step against concurrent appends and queries.
func (e *Engine) TrimBefore(cutoff float64) (TrimStats, error) {
	var st TrimStats
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, id := range e.corpus.IDs() {
		slot, ok := e.byID[id]
		if !ok {
			continue
		}
		ref := e.slots[slot].ref
		tr, err := ref.Decode()
		if err != nil {
			return st, fmt.Errorf("engine: %w", err)
		}
		n := len(tr.Samples)
		if n == 0 || !(tr.Samples[0].T < cutoff) {
			continue
		}
		if tr.Samples[n-1].T < cutoff {
			if err := e.corpus.Remove(id); err != nil {
				return st, fmt.Errorf("engine: %w", err)
			}
			e.dropSlotLocked(slot, tr)
			st.Removed++
			st.DroppedSamples += n
			continue
		}
		k := 0
		for k < n && tr.Samples[k].T < cutoff {
			k++
		}
		keep := make([]model.Sample, n-k)
		copy(keep, tr.Samples[k:])
		trimmed := model.Trajectory{ID: id, Samples: keep}
		newRef, err := e.corpus.Replace(trimmed)
		if err != nil {
			return st, fmt.Errorf("engine: %w", err)
		}
		if e.pruner != nil {
			e.pruner.Remove(slot, tr)
			e.pruner.Insert(slot, trimmed)
		}
		e.forgetDerived(refKey(ref))
		e.slots[slot].ref = newRef
		st.Trimmed++
		st.DroppedSamples += k
	}
	return st, nil
}
