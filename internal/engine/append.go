package engine

import (
	"errors"
	"fmt"

	"github.com/stslib/sts/internal/core"
	"github.com/stslib/sts/internal/model"
	"github.com/stslib/sts/internal/store"
)

// Append extends the corpus trajectory id with tail samples, which must be
// strictly after its current last timestamp. The store logs only the
// encoded tail (opAppend); pruner postings move incrementally; and when the
// old generation's prepared state or profile is still cached, the new
// generation's derived state is rebuilt incrementally (core.AppendPrepared
// / core.AppendProfile — bit-identical to a from-scratch build) instead of
// being dropped for the next query to re-derive.
func (e *Engine) Append(id string, tail []model.Sample) (int, error) {
	if id == "" {
		return 0, errors.New("engine: corpus trajectories need a non-empty ID")
	}
	if len(tail) == 0 {
		return 0, fmt.Errorf("engine: append to %q has no samples", id)
	}
	e.mu.Lock()
	slot, ok := e.byID[id]
	if !ok {
		e.mu.Unlock()
		return 0, fmt.Errorf("engine: trajectory %q %w", id, ErrNotFound)
	}
	oldRef := e.slots[slot].ref
	// The pruner's postings are keyed by sample content, so moving them
	// needs the old trajectory decoded — before the corpus mutates, like
	// Remove and Replace.
	var old, grown model.Trajectory
	if e.pruner != nil {
		var err error
		if old, err = oldRef.Decode(); err != nil {
			e.mu.Unlock()
			return 0, fmt.Errorf("engine: %w", err)
		}
		samples := make([]model.Sample, len(old.Samples)+len(tail))
		copy(samples, old.Samples)
		copy(samples[len(old.Samples):], tail)
		grown = model.Trajectory{ID: id, Samples: samples}
	}
	ref, err := e.corpus.Append(id, tail)
	if err != nil {
		e.mu.Unlock()
		return 0, fmt.Errorf("engine: %w", err)
	}
	if e.pruner != nil {
		e.pruner.Remove(slot, old)
		e.pruner.Insert(slot, grown)
	}
	// Seize the superseded generation's derived state for incremental
	// maintenance before forgetting it.
	var oldPrep *core.Prepared
	var oldProf *core.Profile
	if e.measure != nil {
		oldPrep, _ = e.cache.peek(refKey(oldRef))
		if e.profiles != nil {
			oldProf, _ = e.profiles.peek(refKey(oldRef))
		}
	}
	e.forgetDerived(refKey(oldRef))
	e.slots[slot].ref = ref
	e.mu.Unlock()

	// Refresh derived state outside the lock: cache keys are generation-
	// scoped, so if a racing Remove/Replace supersedes ref meanwhile the
	// entries are merely unused, never wrong. Failures here only lose the
	// incremental head start — the next query rebuilds from scratch.
	if oldPrep != nil {
		p, err := e.measure.AppendPrepared(oldPrep, tail)
		if err != nil {
			return slot, nil
		}
		e.cache.put(refKey(ref), p)
		if oldProf != nil {
			if prof, err := e.measure.AppendProfile(oldProf, p, e.boundOpts); err == nil {
				e.profiles.put(refKey(ref), prof)
			}
		}
	}
	return slot, nil
}

// TrimStats reports one retention sweep.
type TrimStats struct {
	// Removed counts trajectories dropped whole (every sample older than
	// the cutoff); Trimmed counts trajectories whose head was cut.
	Removed int `json:"removed"`
	Trimmed int `json:"trimmed"`
	// DroppedSamples counts samples discarded across both kinds.
	DroppedSamples int `json:"dropped_samples"`
	// Decoded counts trajectories the sweep actually decoded. Each slot
	// caches its record's first timestamp, so records wholly at or after
	// the cutoff are skipped without touching their bytes: a sweep costs
	// O(expiring records) decode work, and a no-op sweep decodes nothing.
	Decoded int `json:"decoded"`
}

// trimWork is one straddling trajectory whose superseded derived state
// was seized under the sweep lock for incremental trimming outside it.
type trimWork struct {
	ref     store.Ref // the trimmed record's new ref
	oldPrep *core.Prepared
	oldProf *core.Profile
	drop    int // expired samples cut from the head
}

// TrimBefore drops every sample with timestamp < cutoff from the corpus:
// trajectories that end before the cutoff are removed entirely, ones that
// straddle it are rewritten without their expired head (a Replace in the
// store, so the WAL stays replayable and the next snapshot compacts the
// trimmed records). The sweep holds the engine's mutation lock, acting as
// one atomic retention step against concurrent appends and queries — but
// it only decodes records whose cached first timestamp precedes the
// cutoff (TrimStats.Decoded), so a sweep with nothing to expire touches
// no record bytes. A straddling trajectory's cached derived state is not
// discarded: it is seized under the lock and trimmed incrementally
// outside it (core.TrimPrepared / core.TrimProfile — bit-identical to a
// from-scratch rebuild), so standing queries keep their cache warmth
// across retention.
func (e *Engine) TrimBefore(cutoff float64) (TrimStats, error) {
	var st TrimStats
	var work []trimWork
	e.mu.Lock()
	for slot := range e.slots {
		if !e.slots[slot].used || e.slots[slot].minT >= cutoff {
			continue
		}
		ref := e.slots[slot].ref
		tr, err := ref.Decode()
		if err != nil {
			e.mu.Unlock()
			return st, fmt.Errorf("engine: %w", err)
		}
		st.Decoded++
		n := len(tr.Samples)
		if n == 0 || !(tr.Samples[0].T < cutoff) {
			continue
		}
		if tr.Samples[n-1].T < cutoff {
			if err := e.corpus.Remove(ref.ID); err != nil {
				e.mu.Unlock()
				return st, fmt.Errorf("engine: %w", err)
			}
			e.dropSlotLocked(slot, tr)
			st.Removed++
			st.DroppedSamples += n
			continue
		}
		k := 0
		for k < n && tr.Samples[k].T < cutoff {
			k++
		}
		keep := make([]model.Sample, n-k)
		copy(keep, tr.Samples[k:])
		trimmed := model.Trajectory{ID: ref.ID, Samples: keep}
		newRef, err := e.corpus.Replace(trimmed)
		if err != nil {
			e.mu.Unlock()
			return st, fmt.Errorf("engine: %w", err)
		}
		if e.pruner != nil {
			e.pruner.Remove(slot, tr)
			e.pruner.Insert(slot, trimmed)
		}
		// Seize the superseded generation's derived state before forgetting
		// it — the same incremental-maintenance handoff Append does.
		var oldPrep *core.Prepared
		var oldProf *core.Profile
		if e.measure != nil {
			oldPrep, _ = e.cache.peek(refKey(ref))
			if e.profiles != nil {
				oldProf, _ = e.profiles.peek(refKey(ref))
			}
		}
		e.forgetDerived(refKey(ref))
		e.slots[slot] = corpusSlot{ref: newRef, used: true, minT: keep[0].T}
		st.Trimmed++
		st.DroppedSamples += k
		if oldPrep != nil {
			work = append(work, trimWork{ref: newRef, oldPrep: oldPrep, oldProf: oldProf, drop: k})
		}
	}
	e.mu.Unlock()

	// Rebuild the trimmed derived state outside the lock: cache keys are
	// generation-scoped, so if a racing mutation supersedes a ref meanwhile
	// the entries are merely unused, never wrong. Failures here only lose
	// the incremental head start — the next query rebuilds from scratch.
	for _, w := range work {
		p, err := e.measure.TrimPrepared(w.oldPrep, w.drop)
		if err != nil {
			continue
		}
		e.cache.put(refKey(w.ref), p)
		if w.oldProf != nil {
			if prof, err := e.measure.TrimProfile(w.oldProf, p, e.boundOpts); err == nil {
				e.profiles.put(refKey(w.ref), prof)
			}
		}
	}
	return st, nil
}
