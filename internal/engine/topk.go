// Filter-and-refine top-k: candidates are bounded first with the
// admissible profile upper bounds of core (UpperBound / UpperBoundProfiled),
// then refined exactly in descending-bound order against the running k-th
// best score, so most of the corpus is rejected without paying full
// scoring. The pruned path is an exact optimization — it returns the same
// matches, with bit-identical scores, as the exhaustive path.
package engine

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"github.com/stslib/sts/internal/core"
	"github.com/stslib/sts/internal/model"
)

// TopKOptions parameterizes Engine.TopKOpts.
type TopKOptions struct {
	// K is the number of matches to return; K <= 0 returns nil.
	K int
	// MinScore restricts the result to matches with Score >= MinScore: the
	// result is the K best of the qualifying candidates. It is also the
	// floor of the pruning threshold, so a positive MinScore prunes from
	// the first wave on. The zero value keeps scores >= 0 — every real STS
	// match; pass math.Inf(-1) to also keep the sanitized −Inf non-scores,
	// which is what the plain TopK does.
	MinScore float64
	// Exhaustive forces full scoring of every candidate even when the
	// engine could filter-and-refine (equivalence tests, baselines).
	Exhaustive bool
}

// PruneStats are an engine's cumulative filter-and-refine counters, over
// all pruned queries (TopK and thresholded matrices) since construction.
type PruneStats struct {
	// Considered counts candidates that entered a pruned query.
	Considered uint64
	// BoundPruned counts candidates decided by the upper bound alone —
	// below the running threshold, or certified an exact zero.
	BoundPruned uint64
	// EarlyExited counts refinements abandoned mid-pair once the partial
	// sum plus the remaining bound could not reach the threshold.
	EarlyExited uint64
	// Refined counts refinements that ran to completion.
	Refined uint64
}

// paddedCounter is an atomic counter padded out to its own cache line:
// the four prune counters would otherwise share one line and every worker's
// increment would invalidate it for every other worker (false sharing — the
// counters are logically independent but physically coupled).
type paddedCounter struct {
	atomic.Uint64
	_ [56]byte
}

// pruneCounters is the engine-internal atomic form of PruneStats.
type pruneCounters struct {
	considered  paddedCounter
	boundPruned paddedCounter
	earlyExited paddedCounter
	refined     paddedCounter
}

func (c *pruneCounters) add(considered, boundPruned, earlyExited, refined uint64) {
	if considered != 0 {
		c.considered.Add(considered)
	}
	if boundPruned != 0 {
		c.boundPruned.Add(boundPruned)
	}
	if earlyExited != 0 {
		c.earlyExited.Add(earlyExited)
	}
	if refined != 0 {
		c.refined.Add(refined)
	}
}

// PruneStats returns the engine's cumulative filter-and-refine counters.
func (e *Engine) PruneStats() PruneStats {
	return PruneStats{
		Considered:  e.pstats.considered.Load(),
		BoundPruned: e.pstats.boundPruned.Load(),
		EarlyExited: e.pstats.earlyExited.Load(),
		Refined:     e.pstats.refined.Load(),
	}
}

// TopK scores the query against the corpus — against the pruner's
// candidate set when a pruner is configured, the whole corpus otherwise —
// and returns the k best matches by descending score (ties break by slot,
// so results are deterministic). Scoring runs on the engine's worker pool
// and honors ctx cancellation and deadlines; corpus mutations during the
// query do not affect the snapshot being scored. Measure-backed engines
// answer through the filter-and-refine path (identical results, far fewer
// exact scorings) unless pruning is disabled.
func (e *Engine) TopK(ctx context.Context, query model.Trajectory, k int) ([]Match, error) {
	return e.TopKOpts(ctx, query, TopKOptions{K: k, MinScore: math.Inf(-1)})
}

// TopKOpts is TopK with explicit options (score floor, forced-exhaustive).
func (e *Engine) TopKOpts(ctx context.Context, query model.Trajectory, opts TopKOptions) ([]Match, error) {
	k := opts.K
	if k <= 0 {
		return nil, nil
	}
	if err := query.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNoQuery, err)
	}
	minScore := opts.MinScore
	if math.IsNaN(minScore) {
		minScore = math.Inf(-1)
	}
	cands := e.snapshotCandidates(query)
	if len(cands) == 0 {
		return nil, nil
	}
	// With every candidate in the result anyway, bounds cannot save work.
	trivial := len(cands) <= k && math.IsInf(minScore, -1)
	if opts.Exhaustive || trivial || !e.canPrune() {
		return e.topKExhaustive(ctx, query, cands, k, minScore)
	}
	return e.topKPruned(ctx, query, cands, k, minScore)
}

// topKExhaustive scores every candidate, keeping the legacy fully-scored
// path bit-for-bit (it is the equivalence oracle for the pruned path).
func (e *Engine) topKExhaustive(ctx context.Context, query model.Trajectory, cands []candidate, k int, minScore float64) ([]Match, error) {
	scores := make([]float64, len(cands))
	var scoreOne func(i int) error
	if e.profOpts != nil {
		fq, err := e.profiled(query)
		if err != nil {
			return nil, err
		}
		scoreOne = func(i int) error {
			fc, err := e.profiledRef(cands[i].ref)
			if err != nil {
				return err
			}
			v, err := core.SimilarityProfiled(fq, fc)
			if err != nil {
				return err
			}
			scores[i] = sanitize(v)
			return nil
		}
	} else if e.measure != nil {
		pq, err := e.prepared(query)
		if err != nil {
			return nil, err
		}
		scoreOne = func(i int) error {
			pc, err := e.preparedRef(cands[i].ref)
			if err != nil {
				return err
			}
			v, err := e.measure.SimilarityPrepared(pq, pc)
			if err != nil {
				return err
			}
			scores[i] = sanitize(v)
			return nil
		}
	} else {
		scoreOne = func(i int) error {
			tr, err := cands[i].ref.Decode()
			if err != nil {
				return fmt.Errorf("engine: %w", err)
			}
			v, err := e.scorer.Score(query, tr)
			if err != nil {
				return err
			}
			scores[i] = sanitize(v)
			return nil
		}
	}
	if err := ForEach(ctx, len(cands), e.workers, scoreOne); err != nil {
		return nil, err
	}
	matches := make([]Match, 0, len(cands))
	for i, c := range cands {
		if scores[i] >= minScore {
			matches = append(matches, Match{ID: c.ref.ID, Slot: c.slot, Score: scores[i]})
		}
	}
	sort.Slice(matches, func(a, b int) bool {
		if matches[a].Score != matches[b].Score {
			return matches[a].Score > matches[b].Score
		}
		return matches[a].Slot < matches[b].Slot
	})
	if len(matches) > k {
		matches = matches[:k]
	}
	return matches, nil
}

// Refinement outcomes of one candidate within a wave.
const (
	resPruned    int8 = iota // bound below the wave threshold, never refined
	resExited                // refinement abandoned; score < threshold
	resScored                // refined to completion; score is exact
	resCertified             // zero bound certifies an exact zero score
)

// topKPruned is the filter-and-refine top-k. Phase 1 bounds every
// candidate in parallel; phase 2 refines candidates in descending-bound
// order, in worker-sized waves, against the threshold frozen at each
// wave's start (the k-th best score so far, floored by minScore). Because
// the bounds are admissible and every surviving refinement is exact and
// bit-identical to the exhaustive scorer, the result equals
// topKExhaustive's on the same snapshot; because candidates are
// bound-ordered, the first bound below the threshold prunes the whole
// remaining tail. Wave thresholds are frozen before the wave runs, so
// results are independent of scheduling (workers only change how much
// pruning is achieved, never the answer).
func (e *Engine) topKPruned(ctx context.Context, query model.Trajectory, cands []candidate, k int, minScore float64) ([]Match, error) {
	profiled := e.profOpts != nil
	fq, err := e.profiled(query)
	if err != nil {
		return nil, err
	}
	var pq *core.Prepared
	if !profiled {
		// Already prepared as a side effect of profiling; cache hit.
		if pq, err = e.prepared(query); err != nil {
			return nil, err
		}
	}

	// Phase 1: admissible upper bounds for every candidate.
	ubs := make([]float64, len(cands))
	profs := make([]*core.Profile, len(cands))
	if err := ForEach(ctx, len(cands), e.workers, func(i int) error {
		fc, err := e.profiledRef(cands[i].ref)
		if err != nil {
			return err
		}
		profs[i] = fc
		var ub float64
		if profiled {
			ub, err = core.UpperBoundProfiled(fq, fc)
		} else {
			ub, err = core.UpperBound(fq, fc)
		}
		if err != nil {
			return err
		}
		ubs[i] = ub
		return nil
	}); err != nil {
		return nil, err
	}

	idx := make([]int, len(cands))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if ubs[idx[a]] != ubs[idx[b]] {
			return ubs[idx[a]] > ubs[idx[b]]
		}
		return cands[idx[a]].slot < cands[idx[b]].slot
	})

	// Phase 2: wave refinement against the running k-th best.
	var bp, ee, rf uint64
	defer func() { e.pstats.add(uint64(len(cands)), bp, ee, rf) }()
	h := newTopKHeap(k)
	states := make([]int8, len(cands))
	scores := make([]float64, len(cands))
	pos := 0
	// The first wave must fill the heap before the threshold means
	// anything, so it spans at least k candidates.
	wave := e.workers
	if wave < k {
		wave = k
	}
	for pos < len(idx) {
		theta := minScore
		if h.full() {
			theta = h.min().Score
		}
		// Bound-ordered candidates: once the best remaining bound is below
		// the threshold, so is every later one.
		if ubs[idx[pos]] < theta {
			bp += uint64(len(idx) - pos)
			break
		}
		end := pos + wave
		if end > len(idx) {
			end = len(idx)
		}
		batch := idx[pos:end]
		if err := ForEach(ctx, len(batch), e.workers, func(bi int) error {
			ci := batch[bi]
			switch {
			case ubs[ci] < theta:
				states[ci] = resPruned
			case ubs[ci] == 0:
				// An admissible zero bound certifies the exact score is a
				// floating-point-exact zero — no refinement needed.
				states[ci], scores[ci] = resCertified, 0
			default:
				var v float64
				var ok bool
				var err error
				if profiled {
					v, ok, err = core.SimilarityProfiledThreshold(fq, profs[ci], theta)
				} else {
					pc, perr := e.preparedRef(cands[ci].ref)
					if perr != nil {
						return perr
					}
					v, ok, err = e.measure.RefineThreshold(pq, pc, fq, profs[ci], theta)
				}
				if err != nil {
					return err
				}
				if !ok {
					states[ci] = resExited
				} else {
					states[ci], scores[ci] = resScored, sanitize(v)
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
		// Merge sequentially in bound order so the heap evolves
		// deterministically.
		for _, ci := range batch {
			switch states[ci] {
			case resPruned:
				bp++
				continue
			case resExited:
				ee++
				continue
			case resScored:
				rf++
			case resCertified:
				bp++
			}
			if scores[ci] >= minScore {
				h.offer(Match{ID: cands[ci].ref.ID, Slot: cands[ci].slot, Score: scores[ci]})
			}
		}
		pos = end
		wave = e.workers
	}
	return h.sorted(), nil
}

// topKHeap is a bounded min-heap of the k best matches seen so far under a
// total order supplied as a strict "ranks worse than" comparator: the root
// is the current k-th best, i.e. the pruning threshold. The pruned top-k
// uses the exhaustive path's exact ordering (score desc, slot asc); the
// sharded coordinator merges shard results with an ID tie-break instead.
type topKHeap struct {
	k     int
	worse func(a, b Match) bool
	m     []Match
}

func newTopKHeap(k int) *topKHeap {
	return &topKHeap{k: k, worse: worseMatch, m: make([]Match, 0, k)}
}

// newMatchHeap is newTopKHeap with an explicit comparator.
func newMatchHeap(k int, worse func(a, b Match) bool) *topKHeap {
	return &topKHeap{k: k, worse: worse, m: make([]Match, 0, k)}
}

func (h *topKHeap) full() bool { return len(h.m) == h.k }

// min returns the worst retained match; callers must ensure the heap is
// non-empty.
func (h *topKHeap) min() Match { return h.m[0] }

// worseMatch reports whether a ranks strictly below b: lower score, or an
// equal score with a higher slot. It is the negation of the result sort
// order, so heap membership matches the exhaustive truncation exactly.
func worseMatch(a, b Match) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Slot > b.Slot
}

// offer inserts m if the heap has room or m outranks the current worst.
func (h *topKHeap) offer(m Match) {
	if len(h.m) < h.k {
		h.m = append(h.m, m)
		h.up(len(h.m) - 1)
		return
	}
	if !h.worse(h.m[0], m) {
		return
	}
	h.m[0] = m
	h.down(0)
}

func (h *topKHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.worse(h.m[i], h.m[p]) {
			return
		}
		h.m[i], h.m[p] = h.m[p], h.m[i]
		i = p
	}
}

func (h *topKHeap) down(i int) {
	n := len(h.m)
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if r := c + 1; r < n && h.worse(h.m[r], h.m[c]) {
			c = r
		}
		if !h.worse(h.m[c], h.m[i]) {
			return
		}
		h.m[i], h.m[c] = h.m[c], h.m[i]
		i = c
	}
}

// sorted drains the heap into a best-first slice (the reverse of the
// heap's comparator order). The heap is consumed.
func (h *topKHeap) sorted() []Match {
	out := make([]Match, len(h.m))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = h.m[0]
		last := len(h.m) - 1
		h.m[0] = h.m[last]
		h.m = h.m[:last]
		h.down(0)
	}
	return out
}
