package engine_test

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"

	"github.com/stslib/sts/internal/core"
	"github.com/stslib/sts/internal/engine"
	"github.com/stslib/sts/internal/eval"
	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/index"
	"github.com/stslib/sts/internal/model"
)

func testGrid(t *testing.T) *geo.Grid {
	t.Helper()
	g, err := geo.NewGrid(geo.NewRect(geo.Point{X: -100, Y: -100}, geo.Point{X: 1100, Y: 1100}), 25)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testScorer(t *testing.T) *eval.STSScorer {
	t.Helper()
	m, err := core.NewSTS(testGrid(t), 10)
	if err != nil {
		t.Fatal(err)
	}
	return eval.NewSTSScorer("STS", m)
}

// walk builds a straight trajectory of n samples starting at (x0, y0),
// advancing dx meters and dt seconds per sample.
func walk(id string, x0, y0, dx, dt float64, n int) model.Trajectory {
	tr := model.Trajectory{ID: id, Samples: make([]model.Sample, n)}
	for i := range tr.Samples {
		f := float64(i)
		tr.Samples[i] = model.Sample{Loc: geo.Point{X: x0 + f*dx, Y: y0}, T: f * dt}
	}
	return tr
}

func TestCorpusMutation(t *testing.T) {
	e, err := engine.New(testScorer(t), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := walk("a", 0, 0, 5, 10, 8)
	b := walk("b", 500, 500, 5, 10, 8)
	if _, err := e.Add(a); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Add(b); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Add(a); err == nil {
		t.Error("duplicate ID accepted")
	}
	if _, err := e.Add(model.Trajectory{Samples: a.Samples}); err == nil {
		t.Error("empty ID accepted")
	}
	if e.Len() != 2 {
		t.Fatalf("Len=%d want 2", e.Len())
	}
	if got, ok := e.Get("b"); !ok || got.ID != "b" {
		t.Errorf("Get(b)=%v,%v", got, ok)
	}
	if err := e.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if err := e.Remove("a"); err == nil {
		t.Error("double Remove succeeded")
	}
	if _, ok := e.Get("a"); ok {
		t.Error("removed trajectory still present")
	}
	newB := walk("b", 600, 600, 5, 10, 8)
	if _, err := e.Replace(newB); err != nil {
		t.Fatal(err)
	}
	if got, _ := e.Get("b"); got.Samples[0].Loc.X != 600 {
		t.Errorf("Replace did not swap trajectory: %v", got.Samples[0])
	}
	if _, err := e.Replace(walk("c", 0, 0, 5, 10, 8)); err != nil {
		t.Fatalf("Replace as insert: %v", err)
	}
	if e.Len() != 2 {
		t.Fatalf("Len=%d want 2 after replace-insert", e.Len())
	}
	ids := e.IDs()
	if len(ids) != 2 {
		t.Fatalf("IDs=%v", ids)
	}
}

func TestTopKMatchesDirectScoring(t *testing.T) {
	s := testScorer(t)
	e, err := engine.New(s, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	query := walk("q", 100, 100, 8, 15, 12)
	corpus := []model.Trajectory{
		walk("same", 104, 102, 8, 17, 10), // co-located with the query
		walk("near", 160, 100, 8, 15, 10), // same corridor, offset
		walk("far", 900, 900, 8, 15, 10),  // opposite corner
		walk("slow", 100, 140, 2, 40, 10), // crosses the query's area late
	}
	for _, tr := range corpus {
		if _, err := e.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	matches, err := e.TopK(context.Background(), query, len(corpus))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != len(corpus) {
		t.Fatalf("got %d matches want %d", len(matches), len(corpus))
	}
	if matches[0].ID != "same" {
		t.Errorf("best match %q want \"same\" (matches=%v)", matches[0].ID, matches)
	}
	for i, m := range matches {
		tr, _ := e.Get(m.ID)
		want, err := s.Score(query, tr)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(m.Score-want) > 1e-12 {
			t.Errorf("match %d (%s): engine score %v, direct score %v", i, m.ID, m.Score, want)
		}
		if i > 0 && matches[i-1].Score < m.Score {
			t.Errorf("matches not sorted: %v", matches)
		}
	}
	top2, err := e.TopK(context.Background(), query, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(top2) != 2 || top2[0] != matches[0] || top2[1] != matches[1] {
		t.Errorf("k truncation: %v vs %v", top2, matches[:2])
	}
}

func TestTopKWithIndexPrunerTracksMutation(t *testing.T) {
	ix, err := index.New(index.Options{Grid: testGrid(t), TimeBucket: 60, SpatialSlack: 100, TimeSlack: 60})
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(testScorer(t), engine.Options{Pruner: ix})
	if err != nil {
		t.Fatal(err)
	}
	near := walk("near", 100, 100, 5, 10, 8)
	far := walk("far", 1000, 1000, 5, 10, 8)
	if _, err := e.Add(near); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Add(far); err != nil {
		t.Fatal(err)
	}
	query := walk("q", 110, 105, 5, 10, 8)

	matches, err := e.TopK(context.Background(), query, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || matches[0].ID != "near" {
		t.Fatalf("pruned top-k %v, want just \"near\"", matches)
	}

	// Remove must drop the posting — the pruned candidate set goes empty.
	if err := e.Remove("near"); err != nil {
		t.Fatal(err)
	}
	matches, err = e.TopK(context.Background(), query, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Fatalf("after Remove: %v, want none", matches)
	}

	// Replace moves "far" next to the query; its postings must follow.
	if _, err := e.Replace(walk("far", 120, 110, 5, 10, 8)); err != nil {
		t.Fatal(err)
	}
	matches, err = e.TopK(context.Background(), query, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || matches[0].ID != "far" {
		t.Fatalf("after Replace: %v, want relocated \"far\"", matches)
	}
}

func TestScoreBatchMaskSkipsPreparation(t *testing.T) {
	e, err := engine.New(testScorer(t), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rows := model.Dataset{walk("r0", 100, 100, 5, 10, 8), walk("r1", 200, 200, 5, 10, 8)}
	cols := model.Dataset{walk("c0", 105, 100, 5, 10, 8), walk("c1", 800, 800, 5, 10, 8)}
	mask := [][]bool{{true, false}, {false, false}} // r1 and c1 never admissible
	m, err := e.ScoreBatch(context.Background(), rows, cols, mask)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(m[0][0], -1) {
		t.Errorf("admissible pair scored -Inf")
	}
	for _, ij := range [][2]int{{0, 1}, {1, 0}, {1, 1}} {
		if !math.IsInf(m[ij[0]][ij[1]], -1) {
			t.Errorf("masked pair [%d][%d]=%v, want -Inf", ij[0], ij[1], m[ij[0]][ij[1]])
		}
	}
	// Only r0 and c0 appear in admissible pairs, so only they are prepared.
	if stats := e.CacheStats(); stats.Misses != 2 {
		t.Errorf("prepared %d trajectories for a mask needing 2 (stats %+v)", stats.Misses, stats)
	}
}

// TestConcurrentQueriesAndMutation exercises the documented concurrency
// contract under the race detector: TopK/ScoreBatch snapshots must stay
// consistent while Add/Remove/Replace churn the corpus and the index.
func TestConcurrentQueriesAndMutation(t *testing.T) {
	ix, err := index.New(index.Options{Grid: testGrid(t), TimeBucket: 60, SpatialSlack: 200, TimeSlack: 120})
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(testScorer(t), engine.Options{Pruner: ix, CacheSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	stable := make(model.Dataset, 6)
	for i := range stable {
		stable[i] = walk(fmt.Sprintf("stable-%d", i), float64(100+60*i), 100, 5, 10, 8)
		if _, err := e.Add(stable[i]); err != nil {
			t.Fatal(err)
		}
	}
	query := walk("q", 130, 105, 5, 10, 8)

	const (
		queriers = 4
		rounds   = 40
	)
	var wg sync.WaitGroup
	errCh := make(chan error, queriers+1)

	wg.Add(1)
	go func() { // mutator: churn transient trajectories through the corpus
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			id := fmt.Sprintf("churn-%d", r%3)
			tr := walk(id, float64(150+10*(r%7)), 110, 5, 10, 8)
			if _, err := e.Replace(tr); err != nil {
				errCh <- err
				return
			}
			if r%2 == 1 {
				if err := e.Remove(id); err != nil {
					errCh <- err
					return
				}
			}
		}
	}()
	for w := 0; w < queriers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if w%2 == 0 {
					matches, err := e.TopK(context.Background(), query, 3)
					if err != nil {
						errCh <- err
						return
					}
					for _, m := range matches {
						if math.IsNaN(m.Score) {
							errCh <- fmt.Errorf("NaN score for %s", m.ID)
							return
						}
					}
				} else {
					if _, err := e.ScoreBatch(context.Background(), model.Dataset{query}, stable, nil); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if stats := e.CacheStats(); stats.Hits == 0 {
		t.Errorf("no cache hits across %d concurrent queries (stats %+v)", queriers*rounds, stats)
	}
}
