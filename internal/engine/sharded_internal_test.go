package engine

import (
	"math/rand"
	"testing"
)

// TestMatchHeapMergeOrderInvariance pins the coordinator's merge
// determinism at the mechanism: the same multiset of matches, offered in
// any arrival order (waves complete in nondeterministic interleavings),
// must produce the same sorted top-k under worseMergedMatch — descending
// score, float-equal ties ascending by trajectory ID.
func TestMatchHeapMergeOrderInvariance(t *testing.T) {
	matches := []Match{
		{ID: "a", Slot: 9, Score: 0.9},
		{ID: "b", Slot: 3, Score: 0.5},
		{ID: "c", Slot: 7, Score: 0.5},
		{ID: "d", Slot: 1, Score: 0.5},
		{ID: "e", Slot: 5, Score: 0.5},
		{ID: "f", Slot: 0, Score: 0.3},
		{ID: "g", Slot: 2, Score: 0.1},
		{ID: "h", Slot: 8, Score: 0.1},
		{ID: "i", Slot: 4, Score: 0},
		{ID: "j", Slot: 6, Score: 0},
	}
	for _, k := range []int{1, 4, 5, 10, 20} {
		var want []Match
		for seed := int64(0); seed < 8; seed++ {
			perm := append([]Match(nil), matches...)
			rand.New(rand.NewSource(seed)).Shuffle(len(perm), func(i, j int) {
				perm[i], perm[j] = perm[j], perm[i]
			})
			h := newMatchHeap(k, worseMergedMatch)
			for _, m := range perm {
				h.offer(m)
			}
			got := h.sorted()
			for i := 1; i < len(got); i++ {
				if got[i].Score > got[i-1].Score ||
					(got[i].Score == got[i-1].Score && got[i].ID <= got[i-1].ID) {
					t.Fatalf("k=%d seed=%d: order violated at %d: %v", k, seed, i, got)
				}
			}
			if want == nil {
				want = got
				wantLen := k
				if wantLen > len(matches) {
					wantLen = len(matches)
				}
				if len(want) != wantLen {
					t.Fatalf("k=%d: %d results, want %d", k, len(want), wantLen)
				}
				continue
			}
			for i := range want {
				if got[i].ID != want[i].ID || got[i].Score != want[i].Score {
					t.Fatalf("k=%d seed=%d: result %d = %+v, want %+v (arrival-order dependent)", k, seed, i, got[i], want[i])
				}
			}
		}
	}
}

// TestWorseMergedMatch pins the comparator itself.
func TestWorseMergedMatch(t *testing.T) {
	cases := []struct {
		a, b Match
		want bool
	}{
		{Match{ID: "x", Score: 0.1}, Match{ID: "y", Score: 0.2}, true},
		{Match{ID: "x", Score: 0.2}, Match{ID: "y", Score: 0.1}, false},
		{Match{ID: "b", Score: 0.5}, Match{ID: "a", Score: 0.5}, true},
		{Match{ID: "a", Score: 0.5}, Match{ID: "b", Score: 0.5}, false},
	}
	for _, c := range cases {
		if got := worseMergedMatch(c.a, c.b); got != c.want {
			t.Errorf("worseMergedMatch(%+v, %+v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// TestShardIndexStability pins the routing hash: FNV-1a over the ID bytes
// alone, so the same ID always lands on the same shard for a given shard
// count, and routing is independent of sample count or generation.
func TestShardIndexStability(t *testing.T) {
	s := &Sharded{shards: make([]*Engine, 8)}
	ids := []string{"", "a", "ped-0001", "taxi/42", "近接"}
	for _, id := range ids {
		first := s.shardIndex(id)
		if first < 0 || first >= 8 {
			t.Fatalf("shardIndex(%q) = %d out of range", id, first)
		}
		for i := 0; i < 3; i++ {
			if got := s.shardIndex(id); got != first {
				t.Fatalf("shardIndex(%q) unstable: %d then %d", id, first, got)
			}
		}
	}
	// Known FNV-1a vector: "a" hashes to 0xaf63dc4c8601ec8c.
	if got := s.shardIndex("a"); got != int(uint64(0xaf63dc4c8601ec8c)%8) {
		t.Fatalf("shardIndex(\"a\") = %d, want FNV-1a residue %d", got, uint64(0xaf63dc4c8601ec8c)%8)
	}
}
