package kde

import (
	"fmt"

	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/model"
)

// SpeedModel is the personalized speed probability distribution of one
// object, estimated from its own trajectory (Section IV-B). It exposes the
// transition probability of Eq. 7:
//
//	P(ℓ′, t′ | ℓ, t) = h · Q̂( dis(ℓ, ℓ′) / |t − t′| ).
//
// The model is immutable and safe for concurrent use.
type SpeedModel struct {
	est *Estimator
}

// NewSpeedModel estimates the speed distribution of tr. Trajectories with
// fewer than two samples (or with all-zero time gaps) carry no speed
// information; an error is returned so callers can fall back to a global
// model or a point estimate.
func NewSpeedModel(tr model.Trajectory) (*SpeedModel, error) {
	return NewSpeedModelKernel(tr, Gaussian)
}

// NewSpeedModelKernel estimates the speed distribution of tr with an
// explicit kernel (Silverman bandwidth either way). The paper's estimator
// works with any non-negative kernel; the Gaussian is its running
// example.
func NewSpeedModelKernel(tr model.Trajectory, k Kernel) (*SpeedModel, error) {
	speeds := tr.Speeds()
	if len(speeds) == 0 {
		return nil, fmt.Errorf("kde: trajectory %q has no usable speed samples: %w", tr.ID, ErrNoSamples)
	}
	est, err := NewWithKernel(speeds, SilvermanBandwidth(speeds), k)
	if err != nil {
		return nil, err
	}
	return &SpeedModel{est: est}, nil
}

// NewPooledSpeedModel estimates a single *global* speed distribution from
// the speed samples of every trajectory in the dataset. This is the
// universal model the STS-G ablation variant uses in Section VI-C, and the
// assumption most prior work makes.
func NewPooledSpeedModel(ds model.Dataset) (*SpeedModel, error) {
	var all []float64
	for _, tr := range ds {
		all = append(all, tr.Speeds()...)
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("kde: dataset has no usable speed samples: %w", ErrNoSamples)
	}
	est, err := New(all)
	if err != nil {
		return nil, err
	}
	return &SpeedModel{est: est}, nil
}

// Estimator exposes the underlying density estimator.
func (m *SpeedModel) Estimator() *Estimator { return m.est }

// Transition returns the transition probability of moving from location a
// at time ta to location b at time tb (Eq. 7). The time interval is
// |ta − tb|, so the transition is symmetric in time direction, matching the
// paper. A zero time interval returns 1 if the locations coincide within
// numerical noise and 0 otherwise (the object cannot move in zero time).
func (m *SpeedModel) Transition(a geo.Point, ta float64, b geo.Point, tb float64) float64 {
	dt := ta - tb
	if dt < 0 {
		dt = -dt
	}
	d := a.Dist(b)
	if dt == 0 {
		if d == 0 {
			return 1
		}
		return 0
	}
	return m.est.MassFast(d / dt)
}

// TransitionRadial is the radial form of Transition — the same probability
// expressed over the separation distance d and time interval dt directly.
// Speed transitions depend only on d/dt, so the model satisfies
// stprob.RadialTransition, which unlocks the lattice-offset memoization of
// the S-T probability estimator.
func (m *SpeedModel) TransitionRadial(d, dt float64) float64 {
	if dt < 0 {
		dt = -dt
	}
	if dt == 0 {
		if d == 0 {
			return 1
		}
		return 0
	}
	return m.est.MassFast(d / dt)
}

// MaxSpeed returns a speed beyond which this object's transition
// probability is small enough to ignore when truncating candidate cells:
// twice the 99th-percentile speed, capped at the kernel's hard support
// edge. Cells only reachable above this speed contribute negligibly to
// the normalized distribution.
func (m *SpeedModel) MaxSpeed() float64 {
	q := 2 * m.est.Quantile(0.99)
	if hard := m.est.MaxSupport(); q > hard || q <= 0 {
		return hard
	}
	return q
}
