package kde

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGaussianKernel(t *testing.T) {
	if got := GaussianKernel(0); math.Abs(got-1/math.Sqrt(2*math.Pi)) > 1e-12 {
		t.Errorf("K(0)=%v", got)
	}
	if GaussianKernel(1) != GaussianKernel(-1) {
		t.Error("kernel not symmetric")
	}
	if GaussianKernel(10) >= GaussianKernel(1) {
		t.Error("kernel not decreasing")
	}
}

func TestSilvermanBandwidth(t *testing.T) {
	// Hand-computed: samples {1,2,3}, σ̂=√(2/3), n=3,
	// h=(4σ̂⁵/(3·3))^0.2.
	samples := []float64{1, 2, 3}
	std := math.Sqrt(2.0 / 3.0)
	want := math.Pow(4*math.Pow(std, 5)/9, 0.2)
	if got := SilvermanBandwidth(samples); math.Abs(got-want) > 1e-12 {
		t.Errorf("h=%v want %v", got, want)
	}
}

func TestSilvermanBandwidthDegenerate(t *testing.T) {
	if got := SilvermanBandwidth(nil); got != 0 {
		t.Errorf("empty: h=%v", got)
	}
	// Constant samples: σ̂=0 must still yield a positive bandwidth.
	if got := SilvermanBandwidth([]float64{5, 5, 5}); got <= 0 {
		t.Errorf("constant samples: h=%v", got)
	}
	// All-zero samples: absolute epsilon floor.
	if got := SilvermanBandwidth([]float64{0, 0}); got <= 0 {
		t.Errorf("zero samples: h=%v", got)
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(nil); !errors.Is(err, ErrNoSamples) {
		t.Errorf("New(nil): %v", err)
	}
	for _, h := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewWithBandwidth([]float64{1}, h); err == nil {
			t.Errorf("bandwidth %v accepted", h)
		}
	}
}

func TestDensityIntegratesToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	samples := make([]float64, 200)
	for i := range samples {
		samples[i] = rng.NormFloat64()*2 + 10
	}
	e, err := New(samples)
	if err != nil {
		t.Fatal(err)
	}
	// Trapezoid rule over the support.
	lo, hi := 10-12.0, 10+12.0
	const steps = 4000
	dx := (hi - lo) / steps
	var integral float64
	for i := 0; i <= steps; i++ {
		w := 1.0
		if i == 0 || i == steps {
			w = 0.5
		}
		integral += w * e.Density(lo+float64(i)*dx) * dx
	}
	if math.Abs(integral-1) > 0.01 {
		t.Errorf("density integrates to %v", integral)
	}
}

func TestDensityPeaksNearSamples(t *testing.T) {
	e, err := New([]float64{1, 1.1, 0.9, 5})
	if err != nil {
		t.Fatal(err)
	}
	if e.Density(1) <= e.Density(3) {
		t.Error("density near cluster not higher than in the gap")
	}
	if e.Density(100) > 1e-9 {
		t.Error("density far from samples not negligible")
	}
}

func TestMassFastMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	samples := make([]float64, 60)
	for i := range samples {
		samples[i] = math.Abs(rng.NormFloat64()*1.5 + 8)
	}
	e, err := New(samples)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		v := rng.Float64()*25 - 2
		exact := e.Mass(v)
		fast := e.MassFast(v)
		if math.Abs(exact-fast) > 1e-4 {
			t.Fatalf("MassFast(%v)=%v exact=%v", v, fast, exact)
		}
	}
}

func TestMassFastOutOfRangeIsZero(t *testing.T) {
	e, err := New([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.MassFast(1e9); got != 0 {
		t.Errorf("MassFast far right=%v", got)
	}
	if got := e.MassFast(-1e9); got != 0 {
		t.Errorf("MassFast far left=%v", got)
	}
}

func TestMassBounded(t *testing.T) {
	e, err := New([]float64{3, 3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	f := func(v float64) bool {
		v = math.Mod(v, 100)
		m := e.Mass(v)
		return m >= 0 && m <= GaussianKernel(0)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	e, err := New([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {-1, 1}, {2, 5},
	}
	for _, tt := range tests {
		if got := e.Quantile(tt.q); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Quantile(%v)=%v want %v", tt.q, got, tt.want)
		}
	}
}

func TestAccessors(t *testing.T) {
	e, err := NewWithBandwidth([]float64{2, 4}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if e.Bandwidth() != 0.5 || e.NumSamples() != 2 || e.Mean() != 3 {
		t.Errorf("accessors: h=%v n=%v mean=%v", e.Bandwidth(), e.NumSamples(), e.Mean())
	}
	if e.Std() != 1 {
		t.Errorf("Std=%v", e.Std())
	}
	if e.MaxSupport() <= 4 {
		t.Errorf("MaxSupport=%v", e.MaxSupport())
	}
}

func TestEpanechnikovKernel(t *testing.T) {
	if got := EpanechnikovKernel(0); got != 0.75 {
		t.Errorf("K(0)=%v", got)
	}
	if EpanechnikovKernel(1.01) != 0 || EpanechnikovKernel(-1.01) != 0 {
		t.Error("support exceeds |u|<=1")
	}
	if EpanechnikovKernel(0.5) != EpanechnikovKernel(-0.5) {
		t.Error("not symmetric")
	}
}

func TestEpanechnikovEstimatorIntegratesToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	samples := make([]float64, 100)
	for i := range samples {
		samples[i] = rng.NormFloat64() + 5
	}
	e, err := NewWithKernel(samples, 0.5, Epanechnikov)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := 0.0, 10.0
	const steps = 4000
	dx := (hi - lo) / steps
	var integral float64
	for i := 0; i <= steps; i++ {
		w := 1.0
		if i == 0 || i == steps {
			w = 0.5
		}
		integral += w * e.Density(lo+float64(i)*dx) * dx
	}
	if math.Abs(integral-1) > 0.01 {
		t.Errorf("Epanechnikov density integrates to %v", integral)
	}
	if e.Kernel().Name != "epanechnikov" {
		t.Errorf("Kernel()=%v", e.Kernel().Name)
	}
}

func TestNewWithKernelValidation(t *testing.T) {
	if _, err := NewWithKernel([]float64{1}, 1, Kernel{}); err == nil {
		t.Error("kernel without function accepted")
	}
	if _, err := NewWithKernel([]float64{1}, 1, Kernel{Func: GaussianKernel}); err == nil {
		t.Error("kernel without cutoff accepted")
	}
}

func TestEpanechnikovMassFastMatchesExact(t *testing.T) {
	samples := []float64{1, 1.5, 2, 2.5, 3}
	e, err := NewWithKernel(samples, 0.4, Epanechnikov)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 500; i++ {
		v := rng.Float64()*4 - 0.5
		if diff := math.Abs(e.Mass(v) - e.MassFast(v)); diff > 2e-3 {
			t.Fatalf("MassFast(%v) differs by %v", v, diff)
		}
	}
}
