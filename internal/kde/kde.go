// Package kde implements the kernel density estimation machinery of
// Section IV-B: a non-parametric estimate of an object's *personalized*
// speed distribution, built only from the speed samples of that object's
// own trajectory, with a Gaussian kernel and Silverman's rule-of-thumb
// bandwidth. The transition probability of moving between two locations in
// a time interval is then the kernel-density mass at the implied speed
// (Eq. 7).
package kde

import (
	"errors"
	"math"
	"sort"
)

// ErrNoSamples is returned when a density is requested from an estimator
// built with no samples.
var ErrNoSamples = errors.New("kde: no samples")

// invSqrt2Pi = 1/√(2π), the Gaussian kernel normalizing constant.
const invSqrt2Pi = 0.3989422804014327

// GaussianKernel is the standard normal density, the kernel K(·) used
// throughout the paper.
func GaussianKernel(u float64) float64 {
	return invSqrt2Pi * math.Exp(-0.5*u*u)
}

// EpanechnikovKernel is the mean-square-error-optimal compact-support
// kernel, K(u) = 3/4·(1−u²) on |u| ≤ 1. The paper's estimator accepts any
// non-negative kernel; this is the classic alternative to the Gaussian.
func EpanechnikovKernel(u float64) float64 {
	if u < -1 || u > 1 {
		return 0
	}
	return 0.75 * (1 - u*u)
}

// Kernel bundles a kernel function with the radius of its support in
// bandwidth units (the window outside which contributions are negligible
// or exactly zero).
type Kernel struct {
	Name   string
	Func   func(u float64) float64
	Cutoff float64
}

// Predefined kernels.
var (
	Gaussian     = Kernel{Name: "gaussian", Func: GaussianKernel, Cutoff: 8}
	Epanechnikov = Kernel{Name: "epanechnikov", Func: EpanechnikovKernel, Cutoff: 1}
)

// SilvermanBandwidth returns the rule-of-thumb bandwidth the paper adopts,
//
//	h = (4σ̂⁵ / (3n))^{1/5},
//
// where σ̂ is the sample standard deviation. When the samples are (nearly)
// degenerate — σ̂ ≈ 0, as for an object moving at perfectly constant
// speed — Silverman's rule collapses to zero and the speed density
// becomes a spike so thin that the grid-quantized transition evaluation
// can miss it entirely, zeroing the whole measure. We therefore floor the
// bandwidth at 5% of the mean magnitude: observed speeds are ratios of
// noisy distances over timestamps and always carry at least a few percent
// of measurement spread, so the floor encodes instrument reality rather
// than a numerical fudge.
func SilvermanBandwidth(samples []float64) float64 {
	n := len(samples)
	if n == 0 {
		return 0
	}
	mean, std := meanStd(samples)
	h := math.Pow(4*math.Pow(std, 5)/(3*float64(n)), 0.2)
	floor := 0.05 * math.Abs(mean)
	if floor == 0 {
		floor = 1e-6
	}
	if h < floor {
		h = floor
	}
	return h
}

func meanStd(xs []float64) (mean, std float64) {
	n := float64(len(xs))
	for _, x := range xs {
		mean += x
	}
	mean /= n
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	if len(xs) > 1 {
		std = math.Sqrt(ss / n)
	}
	return mean, std
}

// Estimator is a one-dimensional kernel density estimator Q̂ over a fixed
// sample set (Gaussian kernel unless constructed with NewWithKernel). It
// is immutable after construction and safe for concurrent use.
type Estimator struct {
	samples []float64 // sorted ascending
	h       float64
	mean    float64
	std     float64
	kern    Kernel

	// Tabulated mass values for MassFast: table[i] = Mass(tabMin + i·tabStep).
	table           []float64
	tabMin, tabStep float64
	tabMax          float64
}

// New builds an estimator over samples with Silverman's bandwidth. It
// copies the sample slice. An error is returned for an empty sample set.
func New(samples []float64) (*Estimator, error) {
	return NewWithBandwidth(samples, SilvermanBandwidth(samples))
}

// NewWithBandwidth builds an estimator with an explicit bandwidth h > 0
// and the Gaussian kernel.
func NewWithBandwidth(samples []float64, h float64) (*Estimator, error) {
	return NewWithKernel(samples, h, Gaussian)
}

// NewWithKernel builds an estimator with an explicit bandwidth and
// kernel. The kernel may be any non-negative function (the generality the
// paper's Section IV-B claims); Kernel.Cutoff bounds its support.
func NewWithKernel(samples []float64, h float64, k Kernel) (*Estimator, error) {
	if len(samples) == 0 {
		return nil, ErrNoSamples
	}
	if h <= 0 || math.IsNaN(h) || math.IsInf(h, 0) {
		return nil, errors.New("kde: bandwidth must be positive and finite")
	}
	if k.Func == nil || k.Cutoff <= 0 {
		return nil, errors.New("kde: kernel must have a function and a positive cutoff")
	}
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	mean, std := meanStd(s)
	e := &Estimator{samples: s, h: h, mean: mean, std: std, kern: k}
	e.buildTable()
	return e, nil
}

// tableBins is the resolution of the tabulated fast path. The kernel is
// smooth at scale h and the table spans the support with step ≤ h/4, so
// linear interpolation error is far below any ranking-relevant signal.
const tableBins = 2048

// buildTable precomputes Mass over the kernel support for MassFast.
//
// The table is filled sample-major ("scatter"): each sample adds its kernel
// contribution to every node inside its support window. The sum per node is
// the same one massExact computes, reassociated, so table values agree with
// massExact to within floating-point reassociation error (≈1e-13 relative;
// the equivalence test pins this). For the Gaussian kernel the sweep uses
// the exact recurrence
//
//	K(u+s) = K(u) · exp(−u·s − s²/2),
//
// whose second factor itself advances by the constant ratio exp(−s²), so
// filling the whole window costs two multiplications per node instead of
// one exp — table construction is on the preparation path of every
// trajectory and used to dominate matrix-scoring setup. The sweep runs as
// four independent lanes of stride s = 4·step (see scatterGaussian): the
// two-multiply recurrence is a serial dependency chain, and splitting it
// into lanes breaks the chain so the multiplies pipeline. Each lane also
// takes a quarter of the steps, which *tightens* the rounding drift.
func (e *Estimator) buildTable() {
	cutoff := e.kern.Cutoff
	e.tabMin = e.samples[0] - cutoff*e.h
	e.tabMax = e.samples[len(e.samples)-1] + cutoff*e.h
	span := e.tabMax - e.tabMin
	if span <= 0 {
		span = e.h
		e.tabMax = e.tabMin + span
	}
	bins := tableBins
	if minBins := int(span/(e.h/4)) + 2; minBins > bins {
		bins = minBins
	}
	const maxBins = 1 << 16
	if bins > maxBins {
		bins = maxBins
	}
	e.tabStep = span / float64(bins-1)
	e.table = make([]float64, bins)
	w := cutoff * e.h
	gaussian := e.kern.Name == Gaussian.Name
	for _, s := range e.samples {
		// Nodes with |node − s| ≤ cutoff·h. Boundary membership differs
		// from Density's half-open window only where the kernel is ≤K(cutoff),
		// far below every tolerance in use.
		lo := int(math.Ceil((s - w - e.tabMin) / e.tabStep))
		if lo < 0 {
			lo = 0
		}
		hi := int(math.Floor((s + w - e.tabMin) / e.tabStep))
		if hi > bins-1 {
			hi = bins - 1
		}
		if lo > hi {
			continue
		}
		u := (e.tabMin + float64(lo)*e.tabStep - s) / e.h
		c := e.tabStep / e.h
		if gaussian {
			scatterGaussian(e.table[lo:hi+1], u, c)
		} else {
			for i := lo; i <= hi; i++ {
				e.table[i] += e.kern.Func(u) / invSqrt2Pi
				u += c
			}
		}
	}
	// table[i] holds Σ K(u)/invSqrt2Pi; scale by the kernel constant and
	// 1/|S| to obtain Mass = h·Q̂.
	scale := invSqrt2Pi / float64(len(e.samples))
	for i := range e.table {
		e.table[i] *= scale
	}
}

// scatterGaussian adds exp(−(u+i·c)²/2) to t[i] for i in [0, len(t)).
//
// The straightforward sweep is a serial two-multiply recurrence per node
// (k *= m; m *= q), so its throughput is pinned by multiply latency. Here
// the nodes are split into four interleaved lanes of stride s = 4c; within
// a lane the same exact recurrence holds with s in place of c
//
//	k ← k · M,  M ← M · exp(−s²),
//
// so the four chains are independent and pipeline, and each runs a quarter
// of the steps (less accumulated rounding than the serial sweep). Short
// windows fall back to the serial recurrence.
func scatterGaussian(t []float64, u, c float64) {
	n := len(t)
	if n < 8 {
		k := math.Exp(-0.5 * u * u)
		m := math.Exp(-u*c - 0.5*c*c)
		q := math.Exp(-c * c)
		for i := range t {
			t[i] += k
			k *= m
			m *= q
		}
		return
	}
	s := 4 * c
	// Lane seeds: kernel values at u, u+c, u+2c, u+3c, derived from k0 by
	// the single-step recurrence (exact, same as the serial sweep computes).
	q1 := math.Exp(-c * c)
	m1 := math.Exp(-u*c - 0.5*c*c)
	k0 := math.Exp(-0.5 * u * u)
	k1 := k0 * m1
	m2 := m1 * q1
	k2 := k1 * m2
	k3 := k2 * m2 * q1
	// Per-lane stride multipliers M_j = exp(−(u+j·c)·s − s²/2) and their
	// common ratio Q = exp(−s²).
	hs2 := 0.5 * s * s
	mm0 := math.Exp(-u*s - hs2)
	mm1 := math.Exp(-(u+c)*s - hs2)
	mm2 := math.Exp(-(u+2*c)*s - hs2)
	mm3 := math.Exp(-(u+3*c)*s - hs2)
	qq := math.Exp(-s * s)
	i := 0
	for ; i+4 <= n; i += 4 {
		t[i] += k0
		t[i+1] += k1
		t[i+2] += k2
		t[i+3] += k3
		k0 *= mm0
		mm0 *= qq
		k1 *= mm1
		mm1 *= qq
		k2 *= mm2
		mm2 *= qq
		k3 *= mm3
		mm3 *= qq
	}
	for ; i < n; i++ {
		uu := u + float64(i)*c
		t[i] += math.Exp(-0.5 * uu * uu)
	}
}

// Bandwidth returns the bandwidth h in use.
func (e *Estimator) Bandwidth() float64 { return e.h }

// NumSamples returns |S|.
func (e *Estimator) NumSamples() int { return len(e.samples) }

// Mean returns the sample mean.
func (e *Estimator) Mean() float64 { return e.mean }

// Std returns the (population) sample standard deviation.
func (e *Estimator) Std() float64 { return e.std }

// Density evaluates the kernel density estimate Q̂(v) of Eq. 6:
//
//	Q̂(v) = 1/(h|S|) · Σ_{v'∈S} K((v − v')/h).
//
// Samples farther than 8h from v contribute less than 1e-14 of the kernel
// peak and are skipped; the sorted sample array makes that window a binary
// search.
func (e *Estimator) Density(v float64) float64 {
	cutoff := e.kern.Cutoff
	lo := sort.SearchFloat64s(e.samples, v-cutoff*e.h)
	hi := sort.SearchFloat64s(e.samples, v+cutoff*e.h)
	var sum float64
	for _, s := range e.samples[lo:hi] {
		sum += e.kern.Func((v - s) / e.h)
	}
	return sum / (e.h * float64(len(e.samples)))
}

// Mass evaluates h·Q̂(v) = 1/|S| · Σ K((v−v')/h), the dimensionless
// "probability of the speed" the paper uses as the transition probability
// in Eq. 7. Its value lies in [0, K(0)] ⊂ [0, 0.3990).
func (e *Estimator) Mass(v float64) float64 {
	return e.massExact(v)
}

func (e *Estimator) massExact(v float64) float64 {
	return e.Density(v) * e.h
}

// MassFast evaluates Mass via the precomputed table with linear
// interpolation. It is the hot path of the S-T probability estimator: a
// similarity computation evaluates the transition mass millions of times,
// and the exact sum over samples would dominate the runtime.
func (e *Estimator) MassFast(v float64) float64 {
	if v <= e.tabMin || v >= e.tabMax {
		return 0
	}
	pos := (v - e.tabMin) / e.tabStep
	i := int(pos)
	if i >= len(e.table)-1 {
		return e.table[len(e.table)-1]
	}
	f := pos - float64(i)
	return e.table[i]*(1-f) + e.table[i+1]*f
}

// Quantile returns the q-th sample quantile (q in [0,1]) by linear
// interpolation of the order statistics. Used to bound plausible speeds
// when truncating the transition-probability support.
func (e *Estimator) Quantile(q float64) float64 {
	if q <= 0 {
		return e.samples[0]
	}
	if q >= 1 {
		return e.samples[len(e.samples)-1]
	}
	pos := q * float64(len(e.samples)-1)
	i := int(pos)
	f := pos - float64(i)
	if i+1 >= len(e.samples) {
		return e.samples[len(e.samples)-1]
	}
	return e.samples[i]*(1-f) + e.samples[i+1]*f
}

// Kernel returns the kernel in use.
func (e *Estimator) Kernel() Kernel { return e.kern }

// MaxSupport returns a speed beyond which the density is negligible: the
// largest sample plus the kernel's cutoff radius in bandwidths.
func (e *Estimator) MaxSupport() float64 {
	return e.samples[len(e.samples)-1] + e.kern.Cutoff*e.h
}
