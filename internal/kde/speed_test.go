package kde

import (
	"errors"
	"testing"

	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/model"
)

// walker builds a trajectory moving east at the given constant speed with
// the given time step.
func walker(speed, step float64, n int) model.Trajectory {
	tr := model.Trajectory{ID: "w"}
	for i := 0; i < n; i++ {
		t := float64(i) * step
		tr.Samples = append(tr.Samples, model.Sample{Loc: geo.Point{X: speed * t}, T: t})
	}
	return tr
}

func TestNewSpeedModel(t *testing.T) {
	m, err := NewSpeedModel(walker(2, 10, 20))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Estimator().Mean(); got != 2 {
		t.Errorf("mean speed %v want 2", got)
	}
}

func TestNewSpeedModelErrors(t *testing.T) {
	if _, err := NewSpeedModel(model.Trajectory{}); !errors.Is(err, ErrNoSamples) {
		t.Errorf("empty: %v", err)
	}
	single := model.Trajectory{Samples: []model.Sample{{T: 0}}}
	if _, err := NewSpeedModel(single); !errors.Is(err, ErrNoSamples) {
		t.Errorf("single sample: %v", err)
	}
}

func TestTransitionPrefersPlausibleSpeed(t *testing.T) {
	// Object walks at ~1.5 m/s. Moving 15 m in 10 s (1.5 m/s) must be far
	// more probable than 150 m in 10 s (15 m/s).
	m, err := NewSpeedModel(walker(1.5, 10, 30))
	if err != nil {
		t.Fatal(err)
	}
	a := geo.Point{X: 0}
	plausible := m.Transition(a, 0, geo.Point{X: 15}, 10)
	absurd := m.Transition(a, 0, geo.Point{X: 150}, 10)
	if plausible <= absurd {
		t.Errorf("plausible=%v absurd=%v", plausible, absurd)
	}
	if plausible <= 0 {
		t.Error("plausible transition has zero probability")
	}
}

func TestTransitionTimeSymmetric(t *testing.T) {
	m, err := NewSpeedModel(walker(1, 5, 10))
	if err != nil {
		t.Fatal(err)
	}
	a, b := geo.Point{X: 0}, geo.Point{X: 7}
	forward := m.Transition(a, 0, b, 6)
	backward := m.Transition(a, 6, b, 0)
	if forward != backward {
		t.Errorf("forward=%v backward=%v", forward, backward)
	}
}

func TestTransitionZeroInterval(t *testing.T) {
	m, err := NewSpeedModel(walker(1, 5, 10))
	if err != nil {
		t.Fatal(err)
	}
	p := geo.Point{X: 3}
	if got := m.Transition(p, 7, p, 7); got != 1 {
		t.Errorf("same place, same time: %v want 1", got)
	}
	if got := m.Transition(p, 7, geo.Point{X: 8}, 7); got != 0 {
		t.Errorf("different place, same time: %v want 0", got)
	}
}

func TestPooledSpeedModel(t *testing.T) {
	ds := model.Dataset{walker(1, 10, 10), walker(3, 10, 10)}
	m, err := NewPooledSpeedModel(ds)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Estimator().Mean(); got != 2 {
		t.Errorf("pooled mean %v want 2", got)
	}
	if m.Estimator().NumSamples() != 18 {
		t.Errorf("pooled samples %d want 18", m.Estimator().NumSamples())
	}
}

func TestPooledSpeedModelErrors(t *testing.T) {
	if _, err := NewPooledSpeedModel(nil); !errors.Is(err, ErrNoSamples) {
		t.Errorf("empty dataset: %v", err)
	}
}

func TestMaxSpeedBoundsSupport(t *testing.T) {
	m, err := NewSpeedModel(walker(2, 10, 30))
	if err != nil {
		t.Fatal(err)
	}
	ms := m.MaxSpeed()
	if ms < 2 {
		t.Errorf("MaxSpeed=%v below the only observed speed", ms)
	}
	if ms > m.Estimator().MaxSupport()+1e-12 {
		t.Errorf("MaxSpeed=%v exceeds hard support %v", ms, m.Estimator().MaxSupport())
	}
}

func TestNewSpeedModelKernel(t *testing.T) {
	tr := walker(2, 10, 20)
	m, err := NewSpeedModelKernel(tr, Epanechnikov)
	if err != nil {
		t.Fatal(err)
	}
	if m.Estimator().Kernel().Name != "epanechnikov" {
		t.Errorf("kernel %q", m.Estimator().Kernel().Name)
	}
	// The transition still prefers the plausible speed.
	a := geo.Point{X: 0}
	if m.Transition(a, 0, geo.Point{X: 20, Y: 0}, 10) <= m.Transition(a, 0, geo.Point{X: 200, Y: 0}, 10) {
		t.Error("Epanechnikov speed model lost discrimination")
	}
}
