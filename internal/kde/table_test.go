package kde

import (
	"math"
	"math/rand"
	"testing"
)

func TestScatterTableMatchesMassExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, k := range []Kernel{Gaussian, Epanechnikov} {
		samples := make([]float64, 300)
		for i := range samples {
			samples[i] = 8 + 3*rng.NormFloat64()
		}
		e, err := NewWithKernel(samples, SilvermanBandwidth(samples), k)
		if err != nil {
			t.Fatal(err)
		}
		var worst float64
		for i, got := range e.table {
			want := e.massExact(e.tabMin + float64(i)*e.tabStep)
			if d := math.Abs(got - want); d > worst {
				worst = d
			}
		}
		t.Logf("kernel=%s bins=%d worst=%g", k.Name, len(e.table), worst)
		if worst > 1e-12 {
			t.Fatalf("kernel %s: table deviates from massExact by %g", k.Name, worst)
		}
	}
}
