package eval

import (
	"context"
	"math"

	"github.com/stslib/sts/internal/engine"
	"github.com/stslib/sts/internal/model"
)

// MatrixScorer is an optional Scorer extension for measures that can score
// a whole dataset-against-dataset matrix more efficiently than pair by
// pair (e.g. STS, which prepares per-trajectory state once).
type MatrixScorer interface {
	Scorer
	ScoreMatrix(rows, cols model.Dataset, workers int) ([][]float64, error)
}

// MaskedMatrixScorer is an optional extension for scorers that can skip
// masked-out pairs cheaply — in particular by not preparing trajectories
// that appear in no admissible pair at all.
type MaskedMatrixScorer interface {
	Scorer
	ScoreMatrixMasked(rows, cols model.Dataset, mask [][]bool, workers int) ([][]float64, error)
}

// ContextMatrixScorer is the cancellable form of MatrixScorer +
// MaskedMatrixScorer. STSScorer implements it by routing through the
// engine; the context-taking entry points prefer it when available.
type ContextMatrixScorer interface {
	Scorer
	ScoreMatrixContext(ctx context.Context, rows, cols model.Dataset, mask [][]bool, workers int) ([][]float64, error)
}

// ScoreMatrixMasked computes scores[i][j] = Score(rows[i], cols[j]) for
// every pair with mask[i][j] true; masked-out pairs get −Inf (rank last,
// never link). A nil mask scores everything, exactly like ScoreMatrix.
// Pre-filters such as the FTL feasibility check belong here: masking
// before scoring skips the expensive similarity entirely instead of
// discarding its result afterwards.
func ScoreMatrixMasked(rows, cols model.Dataset, s Scorer, mask [][]bool, workers int) ([][]float64, error) {
	return ScoreMatrixMaskedContext(context.Background(), rows, cols, s, mask, workers)
}

// ScoreMatrixMaskedContext is ScoreMatrixMasked with cancellation: the
// scoring fan-out runs on the engine executor and aborts promptly when ctx
// is cancelled or its deadline passes.
func ScoreMatrixMaskedContext(ctx context.Context, rows, cols model.Dataset, s Scorer, mask [][]bool, workers int) ([][]float64, error) {
	if cs, ok := s.(ContextMatrixScorer); ok {
		return cs.ScoreMatrixContext(ctx, rows, cols, mask, workers)
	}
	if mask != nil {
		if ms, ok := s.(MaskedMatrixScorer); ok {
			m, err := ms.ScoreMatrixMasked(rows, cols, mask, workers)
			return sanitizeMatrix(m), err
		}
	} else if ms, ok := s.(MatrixScorer); ok {
		m, err := ms.ScoreMatrix(rows, cols, workers)
		return sanitizeMatrix(m), err
	}
	return engine.ScoreMatrix(ctx, s, rows, cols, mask, workers)
}

// ScoreMatrixMin is ScoreMatrixMasked with a score floor: pairs scoring
// below minScore get −Inf, exactly like masked-out pairs. Measure-backed
// scorers (STS) enforce the floor bound-first — each pair is checked
// against an admissible profile upper bound and refined with early exit
// only if the bound passes — so sub-threshold pairs are mostly rejected
// without full scoring, while every surviving entry is bit-identical to
// the exhaustive matrix. A −Inf floor is plain ScoreMatrixMasked.
func ScoreMatrixMin(rows, cols model.Dataset, s Scorer, mask [][]bool, minScore float64, workers int) ([][]float64, error) {
	return ScoreMatrixMinContext(context.Background(), rows, cols, s, mask, minScore, workers)
}

// ScoreMatrixMinContext is ScoreMatrixMin with cancellation.
func ScoreMatrixMinContext(ctx context.Context, rows, cols model.Dataset, s Scorer, mask [][]bool, minScore float64, workers int) ([][]float64, error) {
	if _, ok := s.(engine.MeasureScorer); ok {
		return engine.ScoreMatrixMin(ctx, s, rows, cols, mask, minScore, workers)
	}
	// Generic scorers keep their matrix extensions; the floor is applied
	// after the fact (there is no bound to prune with).
	m, err := ScoreMatrixMaskedContext(ctx, rows, cols, s, mask, workers)
	if err != nil {
		return nil, err
	}
	if !math.IsInf(minScore, -1) {
		for _, row := range m {
			for j, v := range row {
				if v < minScore || math.IsNaN(v) {
					row[j] = math.Inf(-1)
				}
			}
		}
	}
	return m, nil
}

// ScoreMatrix computes scores[i][j] = Score(rows[i], cols[j]) for every
// pair, in parallel across `workers` goroutines (0 selects GOMAXPROCS).
// Scorers implementing a matrix extension are given the whole matrix at
// once; everything else routes through the shared engine executor.
func ScoreMatrix(rows, cols model.Dataset, s Scorer, workers int) ([][]float64, error) {
	return ScoreMatrixContext(context.Background(), rows, cols, s, workers)
}

// ScoreMatrixContext is ScoreMatrix with cancellation.
func ScoreMatrixContext(ctx context.Context, rows, cols model.Dataset, s Scorer, workers int) ([][]float64, error) {
	return ScoreMatrixMaskedContext(ctx, rows, cols, s, nil, workers)
}

// sanitizeMatrix maps NaN entries to −Inf in place and returns m.
func sanitizeMatrix(m [][]float64) [][]float64 {
	for i := range m {
		for j := range m[i] {
			m[i][j] = sanitize(m[i][j])
		}
	}
	return m
}

// parallelFor runs f(0..n-1) across workers goroutines (0 selects
// GOMAXPROCS) on the engine executor and returns the first error.
func parallelFor(n, workers int, f func(i int) error) error {
	return engine.ForEach(context.Background(), n, workers, f)
}
