package eval

import (
	"math"
	"runtime"
	"sync"

	"github.com/stslib/sts/internal/model"
)

// MatrixScorer is an optional Scorer extension for measures that can score
// a whole dataset-against-dataset matrix more efficiently than pair by
// pair (e.g. STS, which prepares per-trajectory state once).
type MatrixScorer interface {
	Scorer
	ScoreMatrix(rows, cols model.Dataset, workers int) ([][]float64, error)
}

// MaskedMatrixScorer is an optional extension for scorers that can skip
// masked-out pairs cheaply — in particular by not preparing trajectories
// that appear in no admissible pair at all.
type MaskedMatrixScorer interface {
	Scorer
	ScoreMatrixMasked(rows, cols model.Dataset, mask [][]bool, workers int) ([][]float64, error)
}

// ScoreMatrixMasked computes scores[i][j] = Score(rows[i], cols[j]) for
// every pair with mask[i][j] true; masked-out pairs get −Inf (rank last,
// never link). A nil mask scores everything, exactly like ScoreMatrix.
// Pre-filters such as the FTL feasibility check belong here: masking
// before scoring skips the expensive similarity entirely instead of
// discarding its result afterwards.
func ScoreMatrixMasked(rows, cols model.Dataset, s Scorer, mask [][]bool, workers int) ([][]float64, error) {
	if mask == nil {
		return ScoreMatrix(rows, cols, s, workers)
	}
	if ms, ok := s.(MaskedMatrixScorer); ok {
		m, err := ms.ScoreMatrixMasked(rows, cols, mask, workers)
		if err != nil {
			return nil, err
		}
		for i := range m {
			for j := range m[i] {
				m[i][j] = sanitize(m[i][j])
			}
		}
		return m, nil
	}
	return parallelMatrix(len(rows), len(cols), workers, func(i, j int) (float64, error) {
		if !mask[i][j] {
			return math.Inf(-1), nil
		}
		v, err := s.Score(rows[i], cols[j])
		return sanitize(v), err
	})
}

// ScoreMatrix computes scores[i][j] = Score(rows[i], cols[j]) for every
// pair, in parallel across `workers` goroutines (0 selects GOMAXPROCS).
// Scorers implementing MatrixScorer are given the whole matrix at once.
func ScoreMatrix(rows, cols model.Dataset, s Scorer, workers int) ([][]float64, error) {
	if ms, ok := s.(MatrixScorer); ok {
		m, err := ms.ScoreMatrix(rows, cols, workers)
		if err != nil {
			return nil, err
		}
		for i := range m {
			for j := range m[i] {
				m[i][j] = sanitize(m[i][j])
			}
		}
		return m, nil
	}
	return parallelMatrix(len(rows), len(cols), workers, func(i, j int) (float64, error) {
		v, err := s.Score(rows[i], cols[j])
		return sanitize(v), err
	})
}

// parallelMatrix fills an n×m matrix with f(i, j), parallelizing over
// rows. The first error aborts the computation.
func parallelMatrix(n, m, workers int, f func(i, j int) (float64, error)) ([][]float64, error) {
	out := make([][]float64, n)
	err := parallelFor(n, workers, func(i int) error {
		row := make([]float64, m)
		for j := 0; j < m; j++ {
			v, err := f(i, j)
			if err != nil {
				return err
			}
			row[j] = v
		}
		out[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// parallelFor runs f(0..n-1) across workers goroutines (0 selects
// GOMAXPROCS) and returns the first error encountered.
func parallelFor(n, workers int, f func(i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		next     int
	)
	claim := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr != nil || next >= n {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i, ok := claim()
				if !ok {
					return
				}
				if err := f(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
