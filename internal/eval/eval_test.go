package eval

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/model"
)

// tagged builds a one-sample trajectory carrying a numeric tag in its X
// coordinate, for scorers that compare tags.
func tagged(id string, tag float64) model.Trajectory {
	return model.Trajectory{ID: id, Samples: []model.Sample{{Loc: geo.Point{X: tag}, T: 0}}}
}

// tagCloseness scores two tagged trajectories by how close their tags are.
var tagCloseness = FuncScorer{N: "tag", F: func(a, b model.Trajectory) (float64, error) {
	return -math.Abs(a.Samples[0].Loc.X - b.Samples[0].Loc.X), nil
}}

func TestRankOf(t *testing.T) {
	tests := []struct {
		name   string
		scores []float64
		truth  int
		want   float64
	}{
		{"clear winner", []float64{0.9, 0.1, 0.2}, 0, 1},
		{"clear loser", []float64{0.9, 0.1, 0.2}, 1, 3},
		{"middle", []float64{0.9, 0.1, 0.2}, 2, 2},
		{"two-way tie for first", []float64{0.9, 0.9, 0.2}, 0, 1.5},
		{"all tied", []float64{0.5, 0.5, 0.5}, 1, 2},
		{"single", []float64{0.3}, 0, 1},
	}
	for _, tt := range tests {
		if got := RankOf(tt.scores, tt.truth); got != tt.want {
			t.Errorf("%s: RankOf=%v want %v", tt.name, got, tt.want)
		}
	}
}

func TestMatchingPerfectScorer(t *testing.T) {
	var d1, d2 model.Dataset
	for i := 0; i < 6; i++ {
		d1 = append(d1, tagged("a", float64(i*10)))
		d2 = append(d2, tagged("b", float64(i*10)+0.1))
	}
	res, err := Matching(d1, d2, tagCloseness, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Precision != 1 || res.MeanRank != 1 {
		t.Errorf("precision=%v meanRank=%v", res.Precision, res.MeanRank)
	}
	if len(res.Ranks) != 6 {
		t.Errorf("ranks=%v", res.Ranks)
	}
}

func TestMatchingAdversarialScorer(t *testing.T) {
	// A scorer that prefers the *farthest* tag ranks the twin last.
	worst := FuncScorer{N: "worst", F: func(a, b model.Trajectory) (float64, error) {
		return math.Abs(a.Samples[0].Loc.X - b.Samples[0].Loc.X), nil
	}}
	var d1, d2 model.Dataset
	for i := 0; i < 4; i++ {
		d1 = append(d1, tagged("a", float64(i)))
		d2 = append(d2, tagged("b", float64(i)))
	}
	res, err := Matching(d1, d2, worst, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Precision != 0 {
		t.Errorf("precision=%v want 0", res.Precision)
	}
	if res.MeanRank <= 2 {
		t.Errorf("meanRank=%v", res.MeanRank)
	}
}

func TestMatchingErrors(t *testing.T) {
	d := model.Dataset{tagged("a", 1)}
	if _, err := Matching(d, model.Dataset{}, tagCloseness, 1); !errors.Is(err, ErrSizeMismatch) {
		t.Errorf("size mismatch: %v", err)
	}
	if _, err := Matching(model.Dataset{}, model.Dataset{}, tagCloseness, 1); err == nil {
		t.Error("empty datasets accepted")
	}
	failing := FuncScorer{N: "fail", F: func(a, b model.Trajectory) (float64, error) {
		return 0, errors.New("boom")
	}}
	if _, err := Matching(d, d, failing, 1); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("scorer error not propagated: %v", err)
	}
}

func TestScoreMatrixParallelMatchesSerial(t *testing.T) {
	var rows, cols model.Dataset
	for i := 0; i < 9; i++ {
		rows = append(rows, tagged("r", float64(i)))
		cols = append(cols, tagged("c", float64(i*2)))
	}
	serial, err := ScoreMatrix(rows, cols, tagCloseness, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := ScoreMatrix(rows, cols, tagCloseness, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		for j := range serial[i] {
			if serial[i][j] != parallel[i][j] {
				t.Fatalf("matrix differs at %d,%d", i, j)
			}
		}
	}
}

func TestScoreMatrixSanitizesNaN(t *testing.T) {
	nanScorer := FuncScorer{N: "nan", F: func(a, b model.Trajectory) (float64, error) {
		return math.NaN(), nil
	}}
	m, err := ScoreMatrix(model.Dataset{tagged("a", 1)}, model.Dataset{tagged("b", 2)}, nanScorer, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(m[0][0], -1) {
		t.Errorf("NaN not sanitized: %v", m[0][0])
	}
}

func TestFromDistance(t *testing.T) {
	s := FromDistance("d", func(a, b model.Trajectory) float64 {
		return math.Abs(a.Samples[0].Loc.X - b.Samples[0].Loc.X)
	})
	if s.Name() != "d" {
		t.Error("name")
	}
	near, _ := s.Score(tagged("a", 0), tagged("b", 1))
	far, _ := s.Score(tagged("a", 0), tagged("b", 10))
	if near <= far {
		t.Errorf("near=%v far=%v (negation broken)", near, far)
	}
}

func TestFromDistanceNaNBecomesNegInf(t *testing.T) {
	for name, d := range map[string]float64{"nan": math.NaN(), "+inf": math.Inf(1)} {
		s := FromDistance("d", func(a, b model.Trajectory) float64 { return d })
		v, err := s.Score(tagged("a", 0), tagged("b", 1))
		if err != nil {
			t.Fatal(err)
		}
		if !math.IsInf(v, -1) {
			t.Errorf("%s distance scored %v, want -Inf (ranks last instead of poisoning comparisons)", name, v)
		}
	}
}

func TestParallelForPropagatesError(t *testing.T) {
	err := parallelFor(100, 4, func(i int) error {
		if i == 37 {
			return errors.New("item 37 failed")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "37") {
		t.Errorf("err=%v", err)
	}
}

func TestParallelForZeroItems(t *testing.T) {
	if err := parallelFor(0, 4, func(i int) error { return errors.New("never") }); err != nil {
		t.Errorf("err=%v", err)
	}
}

func TestRandomPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds := model.Dataset{tagged("a", 0), tagged("b", 1), tagged("c", 2)}
	pairs, err := RandomPairs(ds, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 50 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	for _, p := range pairs {
		if p.A.ID == p.B.ID {
			t.Fatal("pair of a trajectory with itself")
		}
	}
	if _, err := RandomPairs(ds[:1], 5, rng); err == nil {
		t.Error("single-trajectory dataset accepted")
	}
}

func TestCrossSimilarityDeviation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Long tagged trajectories so down-sampling has something to drop.
	mk := func(id string, tag float64) model.Trajectory {
		tr := model.Trajectory{ID: id}
		for i := 0; i < 30; i++ {
			tr.Samples = append(tr.Samples, model.Sample{Loc: geo.Point{X: tag}, T: float64(i)})
		}
		return tr
	}
	pairs := []Pair{{A: mk("a", 1), B: mk("b", 2)}, {A: mk("c", 5), B: mk("d", 9)}}
	// A scorer invariant to sampling has zero deviation.
	invariant := FuncScorer{N: "inv", F: func(a, b model.Trajectory) (float64, error) {
		return 1 / (1 + math.Abs(a.Samples[0].Loc.X-b.Samples[0].Loc.X)), nil
	}}
	dev, used, err := CrossSimilarityDeviation(pairs, invariant, 0.5, rng, 1)
	if err != nil {
		t.Fatal(err)
	}
	if used != 2 || dev != 0 {
		t.Errorf("invariant scorer: dev=%v used=%d", dev, used)
	}
	// A length-sensitive scorer has positive deviation.
	lengthy := FuncScorer{N: "len", F: func(a, b model.Trajectory) (float64, error) {
		return float64(a.Len() + b.Len()), nil
	}}
	dev, used, err = CrossSimilarityDeviation(pairs, lengthy, 0.5, rng, 1)
	if err != nil {
		t.Fatal(err)
	}
	if used != 2 || dev <= 0 {
		t.Errorf("length-sensitive scorer: dev=%v used=%d", dev, used)
	}
}

func TestCrossSimilaritySweepMatchesSingle(t *testing.T) {
	mk := func(id string, tag float64) model.Trajectory {
		tr := model.Trajectory{ID: id}
		for i := 0; i < 30; i++ {
			tr.Samples = append(tr.Samples, model.Sample{Loc: geo.Point{X: tag}, T: float64(i)})
		}
		return tr
	}
	pairs := []Pair{{A: mk("a", 1), B: mk("b", 2)}}
	lengthy := FuncScorer{N: "len", F: func(a, b model.Trajectory) (float64, error) {
		return float64(a.Len() + b.Len()), nil
	}}
	devs, err := CrossSimilaritySweep(pairs, lengthy, []float64{0.3, 0.6}, rand.New(rand.NewSource(3)), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(devs) != 2 {
		t.Fatalf("got %d deviations", len(devs))
	}
	// Heavier down-sampling → larger deviation for a length-sensitive
	// scorer.
	if devs[0] <= devs[1] {
		t.Errorf("deviation not decreasing in rate: %v", devs)
	}
}

func TestCrossSimilarityAllZeroBaselines(t *testing.T) {
	zero := FuncScorer{N: "zero", F: func(a, b model.Trajectory) (float64, error) {
		return 0, nil
	}}
	mk := func(id string) model.Trajectory {
		tr := model.Trajectory{ID: id}
		for i := 0; i < 10; i++ {
			tr.Samples = append(tr.Samples, model.Sample{T: float64(i)})
		}
		return tr
	}
	pairs := []Pair{{A: mk("a"), B: mk("b")}}
	if _, _, err := CrossSimilarityDeviation(pairs, zero, 0.5, rand.New(rand.NewSource(4)), 1); err == nil {
		t.Error("all-zero baselines should error")
	}
	if _, err := CrossSimilaritySweep(pairs, zero, []float64{0.5}, rand.New(rand.NewSource(5)), 1); err == nil {
		t.Error("all-zero baselines should error (sweep)")
	}
}

func TestBootstrapCI(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	values := make([]float64, 200)
	for i := range values {
		values[i] = 5 + rng.NormFloat64()
	}
	lo, hi, err := BootstrapCI(values, 500, 0.95, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !(lo < 5 && 5 < hi) {
		t.Errorf("CI [%v, %v] does not cover the true mean", lo, hi)
	}
	if hi-lo > 1 {
		t.Errorf("CI [%v, %v] too wide for n=200", lo, hi)
	}
	// Degenerate inputs.
	if _, _, err := BootstrapCI(nil, 100, 0.95, rng); err == nil {
		t.Error("empty values accepted")
	}
	if _, _, err := BootstrapCI(values, 0, 0.95, rng); err == nil {
		t.Error("zero iters accepted")
	}
	if _, _, err := BootstrapCI(values, 100, 1.5, rng); err == nil {
		t.Error("conf > 1 accepted")
	}
	// Constant values: zero-width interval.
	c := []float64{3, 3, 3}
	lo, hi, err = BootstrapCI(c, 100, 0.9, rng)
	if err != nil || lo != 3 || hi != 3 {
		t.Errorf("constant CI [%v, %v], err %v", lo, hi, err)
	}
}
