package eval

import (
	"math"
	"sync/atomic"
	"testing"

	"github.com/stslib/sts/internal/core"
	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/model"
)

// countingScorer counts Score invocations, to prove masked pairs are
// never scored.
type countingScorer struct {
	calls atomic.Int64
}

func (c *countingScorer) Name() string { return "counting" }

func (c *countingScorer) Score(a, b model.Trajectory) (float64, error) {
	c.calls.Add(1)
	return a.Samples[0].Loc.X * b.Samples[0].Loc.X, nil
}

func TestScoreMatrixMaskedSkipsMaskedPairs(t *testing.T) {
	rows := model.Dataset{tagged("r0", 1), tagged("r1", 2)}
	cols := model.Dataset{tagged("c0", 3), tagged("c1", 5), tagged("c2", 7)}
	mask := [][]bool{
		{true, false, true},
		{false, false, true},
	}
	sc := &countingScorer{}
	m, err := ScoreMatrixMasked(rows, cols, sc, mask, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := sc.calls.Load(); got != 3 {
		t.Errorf("scored %d pairs, want 3 (the unmasked ones)", got)
	}
	for i := range mask {
		for j := range mask[i] {
			if mask[i][j] {
				want := rows[i].Samples[0].Loc.X * cols[j].Samples[0].Loc.X
				if m[i][j] != want {
					t.Errorf("m[%d][%d]=%v want %v", i, j, m[i][j], want)
				}
			} else if !math.IsInf(m[i][j], -1) {
				t.Errorf("masked m[%d][%d]=%v want -Inf", i, j, m[i][j])
			}
		}
	}
}

func TestScoreMatrixMaskedNilMaskMatchesScoreMatrix(t *testing.T) {
	rows := model.Dataset{tagged("r0", 1), tagged("r1", 2)}
	cols := model.Dataset{tagged("c0", 3), tagged("c1", 5)}
	a, err := ScoreMatrixMasked(rows, cols, tagCloseness, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ScoreMatrix(rows, cols, tagCloseness, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Errorf("[%d][%d]: masked-nil %v != plain %v", i, j, a[i][j], b[i][j])
			}
		}
	}
}

// stsPair builds a pair of small trajectories with enough motion for a
// personalized speed model.
func stsWalk(id string, y float64) model.Trajectory {
	tr := model.Trajectory{ID: id}
	for k := 0; k < 6; k++ {
		tr.Samples = append(tr.Samples, model.Sample{
			Loc: geo.Point{X: float64(k) * 12, Y: y + 0.5*float64(k%3)},
			T:   float64(k) * 10,
		})
	}
	return tr
}

// TestSTSScorerParallelMatrixDeterministic scores the same matrix with one
// and with eight workers through one shared scorer: with -race this hammers
// the pooled zero-allocation scratch, and the comparison pins bit-for-bit
// determinism of the fast path under concurrency.
func TestSTSScorerParallelMatrixDeterministic(t *testing.T) {
	grid, err := geo.NewGrid(geo.Rect{Min: geo.Point{X: -10, Y: -10}, Max: geo.Point{X: 120, Y: 120}}, 5)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewSTS(grid, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSTSScorer("STS", m)
	var rows, cols model.Dataset
	for k := 0; k < 6; k++ {
		rows = append(rows, stsWalk("r", float64(k*15)))
		cols = append(cols, stsWalk("c", float64(k*15)+1))
	}
	serial, err := ScoreMatrix(rows, cols, s, 1)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		parallel, err := ScoreMatrix(rows, cols, s, 8)
		if err != nil {
			t.Fatal(err)
		}
		for i := range serial {
			for j := range serial[i] {
				if serial[i][j] != parallel[i][j] {
					t.Fatalf("trial %d: [%d][%d] serial %v != parallel %v",
						trial, i, j, serial[i][j], parallel[i][j])
				}
			}
		}
	}
}

// TestSTSScorerMaskedMatchesUnmasked pins the masked fast path of the STS
// scorer to the plain matrix at every unmasked position.
func TestSTSScorerMaskedMatchesUnmasked(t *testing.T) {
	grid, err := geo.NewGrid(geo.Rect{Min: geo.Point{X: -10, Y: -10}, Max: geo.Point{X: 120, Y: 120}}, 5)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewSTS(grid, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSTSScorer("STS", m)
	rows := model.Dataset{stsWalk("r0", 0), stsWalk("r1", 30), stsWalk("r2", 60)}
	cols := model.Dataset{stsWalk("c0", 1), stsWalk("c1", 31)}
	mask := [][]bool{
		{true, true},
		{false, true},
		{false, false}, // r2 appears in no pair: must not even be prepared
	}
	got, err := ScoreMatrixMasked(rows, cols, s, mask, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ScoreMatrix(rows, cols, s, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range mask {
		for j := range mask[i] {
			if mask[i][j] {
				if got[i][j] != want[i][j] {
					t.Errorf("[%d][%d]: masked %v != unmasked %v", i, j, got[i][j], want[i][j])
				}
			} else if !math.IsInf(got[i][j], -1) {
				t.Errorf("masked [%d][%d]=%v want -Inf", i, j, got[i][j])
			}
		}
	}
}
