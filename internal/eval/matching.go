package eval

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"time"

	"github.com/stslib/sts/internal/model"
)

// MatchResult reports one trajectory-matching run (Section VI-B): for
// every trajectory of D(1), the rank of its true twin among all of D(2)
// by descending similarity.
type MatchResult struct {
	// Ranks[i] is the rank of D2[i] when D2 is sorted by similarity to
	// D1[i], 1-based. Ties are resolved to the expected rank under random
	// tie-breaking: 1 + (#strictly better) + (#ties)/2.
	Ranks []float64
	// Precision is Eq. 11: the fraction of rows whose true twin ranks
	// first.
	Precision float64
	// MeanRank is Eq. 12: the average of Ranks.
	MeanRank float64
	// Elapsed is the wall-clock time spent scoring the full matrix,
	// which the grid-size experiments (Figure 12) report.
	Elapsed time.Duration
}

// ErrSizeMismatch is returned when the paired datasets differ in length.
var ErrSizeMismatch = errors.New("eval: paired datasets must be the same length")

// Matching runs the trajectory-matching experiment: d1[i] and d2[i] are
// trajectories of the same object (e.g. the two halves of an alternating
// split); every trajectory of d1 is scored against every trajectory of
// d2, and the rank of the true twin is recorded.
func Matching(d1, d2 model.Dataset, s Scorer, workers int) (MatchResult, error) {
	return MatchingContext(context.Background(), d1, d2, s, workers)
}

// MatchingContext is Matching with cancellation: the full-matrix scoring
// runs on the engine executor and aborts promptly when ctx is cancelled or
// its deadline passes.
func MatchingContext(ctx context.Context, d1, d2 model.Dataset, s Scorer, workers int) (MatchResult, error) {
	if len(d1) != len(d2) {
		return MatchResult{}, ErrSizeMismatch
	}
	if len(d1) == 0 {
		return MatchResult{}, errors.New("eval: empty datasets")
	}
	start := time.Now()
	scores, err := ScoreMatrixContext(ctx, d1, d2, s, workers)
	if err != nil {
		return MatchResult{}, err
	}
	res := MatchResult{Ranks: make([]float64, len(d1)), Elapsed: time.Since(start)}
	hits := 0
	var total float64
	for i, row := range scores {
		r := RankOf(row, i)
		res.Ranks[i] = r
		if r <= 1 {
			hits++
		}
		total += r
	}
	res.Precision = float64(hits) / float64(len(d1))
	res.MeanRank = total / float64(len(d1))
	return res, nil
}

// RankOf returns the rank of entry `truth` within scores by descending
// value, resolving ties to the expected rank under a random permutation:
// 1 + (#strictly greater) + (#equal, excluding truth)/2.
func RankOf(scores []float64, truth int) float64 {
	target := scores[truth]
	greater, ties := 0, 0
	for j, v := range scores {
		if j == truth {
			continue
		}
		switch {
		case v > target:
			greater++
		case v == target:
			ties++
		}
	}
	return 1 + float64(greater) + float64(ties)/2
}

// PrecisionAtK returns the fraction of rows whose true twin ranks within
// the top k — the precision@k generalization of Eq. 11 (which is k = 1).
func (r MatchResult) PrecisionAtK(k int) float64 {
	if len(r.Ranks) == 0 || k < 1 {
		return 0
	}
	hits := 0
	for _, rank := range r.Ranks {
		if rank <= float64(k) {
			hits++
		}
	}
	return float64(hits) / float64(len(r.Ranks))
}

// BootstrapCI returns a bootstrap confidence interval for the mean of the
// per-row ranks (or any per-row statistic): iters resampled means, with
// the (1−conf)/2 and 1−(1−conf)/2 quantiles reported. Small matching
// corpora make point estimates noisy; the interval says how noisy.
func BootstrapCI(values []float64, iters int, conf float64, rng *rand.Rand) (lo, hi float64, err error) {
	if len(values) == 0 {
		return 0, 0, errors.New("eval: no values to bootstrap")
	}
	if iters < 1 || conf <= 0 || conf >= 1 {
		return 0, 0, errors.New("eval: need iters >= 1 and 0 < conf < 1")
	}
	means := make([]float64, iters)
	for b := 0; b < iters; b++ {
		var sum float64
		for range values {
			sum += values[rng.Intn(len(values))]
		}
		means[b] = sum / float64(len(values))
	}
	sort.Float64s(means)
	alpha := (1 - conf) / 2
	loIdx := int(alpha * float64(iters))
	hiIdx := int((1 - alpha) * float64(iters))
	if hiIdx >= iters {
		hiIdx = iters - 1
	}
	return means[loIdx], means[hiIdx], nil
}
