package eval

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRankOfProperties(t *testing.T) {
	// Ranks stay within [1, n] and the best strictly-greatest entry has
	// rank exactly 1.
	bounded := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = rng.Float64()
		}
		truth := rng.Intn(n)
		r := RankOf(scores, truth)
		return r >= 1 && r <= float64(n)
	}
	if err := quick.Check(bounded, &quick.Config{MaxCount: 200}); err != nil {
		t.Errorf("bounded: %v", err)
	}
	sumInvariant := func(seed int64) bool {
		// Over all choices of truth, ranks must sum to n(n+1)/2: the
		// expected-rank tie convention preserves the rank total.
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(15)
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = float64(rng.Intn(5)) // force ties
		}
		var sum float64
		for truth := 0; truth < n; truth++ {
			sum += RankOf(scores, truth)
		}
		want := float64(n*(n+1)) / 2
		return sum > want-1e-9 && sum < want+1e-9
	}
	if err := quick.Check(sumInvariant, &quick.Config{MaxCount: 200}); err != nil {
		t.Errorf("rank-sum invariant: %v", err)
	}
}

func TestParallelForCoversAllIndices(t *testing.T) {
	f := func(nRaw uint8, workersRaw uint8) bool {
		n := int(nRaw % 64)
		workers := int(workersRaw%8) + 1
		hit := make([]bool, n)
		err := parallelFor(n, workers, func(i int) error {
			hit[i] = true
			return nil
		})
		if err != nil {
			return false
		}
		for _, h := range hit {
			if !h {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
