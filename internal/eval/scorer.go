// Package eval implements the evaluation protocol of Section VI: the
// trajectory-matching task with its precision (Eq. 11) and mean rank
// (Eq. 12) metrics, the cross-similarity deviation (Eq. 13), and the
// scoring entry points the experiments are built on — thin views over the
// engine package's cancellable executor and prepared-trajectory cache.
package eval

import (
	"context"
	"math"

	"github.com/stslib/sts/internal/core"
	"github.com/stslib/sts/internal/engine"
	"github.com/stslib/sts/internal/model"
)

// Scorer assigns a similarity score to a pair of trajectories. Higher
// scores mean more similar. Implementations must be safe for concurrent
// use; the harness fans out over goroutines. Any Scorer also satisfies
// engine.Scorer (the interfaces are structurally identical).
type Scorer interface {
	// Name identifies the measure in experiment output ("STS", "CATS" …).
	Name() string
	// Score returns the similarity of a and b.
	Score(a, b model.Trajectory) (float64, error)
}

// FuncScorer adapts a similarity function to the Scorer interface.
type FuncScorer struct {
	N string
	F func(a, b model.Trajectory) (float64, error)
}

// Name implements Scorer.
func (s FuncScorer) Name() string { return s.N }

// Score implements Scorer.
func (s FuncScorer) Score(a, b model.Trajectory) (float64, error) { return s.F(a, b) }

// FromDistance adapts a distance function (smaller = more similar) to a
// Scorer by negation. Infinite and NaN distances both map to −Inf scores,
// which rank last: an undefined distance is a non-match, and letting a
// degenerate baseline's NaN propagate would poison greedy linking's
// max-score selection (NaN compares false with everything, so it would
// survive every threshold).
func FromDistance(name string, f func(a, b model.Trajectory) float64) Scorer {
	return FuncScorer{N: name, F: func(a, b model.Trajectory) (float64, error) {
		d := f(a, b)
		if math.IsNaN(d) || math.IsInf(d, 1) {
			return math.Inf(-1), nil
		}
		return -d, nil
	}}
}

// STSScorer wraps a core.Measure, routing matrix scoring through the
// engine so that per-trajectory preparation (personalized speed model,
// observed-timestamp distributions) happens once per distinct trajectory
// rather than once per pair. It implements MatrixScorer,
// MaskedMatrixScorer, ContextMatrixScorer, and engine.MeasureScorer.
type STSScorer struct {
	name string
	m    *core.Measure
}

// NewSTSScorer names and wraps a measure.
func NewSTSScorer(name string, m *core.Measure) *STSScorer {
	return &STSScorer{name: name, m: m}
}

// Name implements Scorer.
func (s *STSScorer) Name() string { return s.name }

// Measure exposes the wrapped measure (it also makes STSScorer an
// engine.MeasureScorer, enabling the engine's prepared-cache fast path).
func (s *STSScorer) Measure() *core.Measure { return s.m }

// Score implements Scorer for one-off pairs.
func (s *STSScorer) Score(a, b model.Trajectory) (float64, error) {
	return s.m.Similarity(a, b)
}

// ScoreMatrixContext implements ContextMatrixScorer: a transient engine
// prepares each distinct trajectory once and fans scoring out on the
// shared cancellable executor.
func (s *STSScorer) ScoreMatrixContext(ctx context.Context, rows, cols model.Dataset, mask [][]bool, workers int) ([][]float64, error) {
	return engine.ScoreMatrix(ctx, s, rows, cols, mask, workers)
}

// ScoreMatrix implements MatrixScorer with per-trajectory preparation.
func (s *STSScorer) ScoreMatrix(rows, cols model.Dataset, workers int) ([][]float64, error) {
	return s.ScoreMatrixContext(context.Background(), rows, cols, nil, workers)
}

// ScoreMatrixMasked implements MaskedMatrixScorer: trajectories that
// appear in no admissible pair are never prepared (preparation — speed
// model estimation and observed-distribution construction — is the
// dominant per-trajectory cost), and masked-out pairs are never scored.
func (s *STSScorer) ScoreMatrixMasked(rows, cols model.Dataset, mask [][]bool, workers int) ([][]float64, error) {
	return s.ScoreMatrixContext(context.Background(), rows, cols, mask, workers)
}

// sanitize maps NaN scores (which would poison rankings) to −Inf.
func sanitize(v float64) float64 {
	if math.IsNaN(v) {
		return math.Inf(-1)
	}
	return v
}
