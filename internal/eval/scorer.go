// Package eval implements the evaluation protocol of Section VI: the
// trajectory-matching task with its precision (Eq. 11) and mean rank
// (Eq. 12) metrics, the cross-similarity deviation (Eq. 13), and the
// scoring entry points the experiments are built on — thin views over the
// engine package's cancellable executor and prepared-trajectory cache.
package eval

import (
	"context"
	"math"

	"github.com/stslib/sts/internal/core"
	"github.com/stslib/sts/internal/engine"
	"github.com/stslib/sts/internal/model"
)

// Scorer assigns a similarity score to a pair of trajectories. Higher
// scores mean more similar. Implementations must be safe for concurrent
// use; the harness fans out over goroutines. Any Scorer also satisfies
// engine.Scorer (the interfaces are structurally identical).
type Scorer interface {
	// Name identifies the measure in experiment output ("STS", "CATS" …).
	Name() string
	// Score returns the similarity of a and b.
	Score(a, b model.Trajectory) (float64, error)
}

// FuncScorer adapts a similarity function to the Scorer interface.
type FuncScorer struct {
	N string
	F func(a, b model.Trajectory) (float64, error)
}

// Name implements Scorer.
func (s FuncScorer) Name() string { return s.N }

// Score implements Scorer.
func (s FuncScorer) Score(a, b model.Trajectory) (float64, error) { return s.F(a, b) }

// FromDistance adapts a distance function (smaller = more similar) to a
// Scorer by negation. Infinite and NaN distances both map to −Inf scores,
// which rank last: an undefined distance is a non-match, and letting a
// degenerate baseline's NaN propagate would poison greedy linking's
// max-score selection (NaN compares false with everything, so it would
// survive every threshold).
func FromDistance(name string, f func(a, b model.Trajectory) float64) Scorer {
	return FuncScorer{N: name, F: func(a, b model.Trajectory) (float64, error) {
		d := f(a, b)
		if math.IsNaN(d) || math.IsInf(d, 1) {
			return math.Inf(-1), nil
		}
		return -d, nil
	}}
}

// STSScorer wraps a core.Measure, routing matrix scoring through the
// engine so that per-trajectory preparation (personalized speed model,
// observed-timestamp distributions) happens once per distinct trajectory
// rather than once per pair. It implements MatrixScorer,
// MaskedMatrixScorer, ContextMatrixScorer, engine.MeasureScorer, and
// engine.ProfileScorer.
type STSScorer struct {
	name    string
	m       *core.Measure
	profile *core.ProfileOptions
}

// NewSTSScorer names and wraps a measure; scoring is exact (Eq. 10).
func NewSTSScorer(name string, m *core.Measure) *STSScorer {
	return &STSScorer{name: name, m: m}
}

// NewSTSScorerProfiled names and wraps a measure with the bucketed S-T
// profile approximation: every scoring path (one-off pairs, matrices,
// engine top-k) builds each trajectory's sparse profile once and scores
// pairs as sparse dot-product merges — an O(N)→O(1) amortization of the
// per-trajectory STP work across an N-pair workload, at an accuracy set by
// opts.BucketSeconds.
func NewSTSScorerProfiled(name string, m *core.Measure, opts core.ProfileOptions) *STSScorer {
	return &STSScorer{name: name, m: m, profile: &opts}
}

// Name implements Scorer.
func (s *STSScorer) Name() string { return s.name }

// Measure exposes the wrapped measure (it also makes STSScorer an
// engine.MeasureScorer, enabling the engine's prepared-cache fast path).
func (s *STSScorer) Measure() *core.Measure { return s.m }

// ProfileOptions implements engine.ProfileScorer: non-nil when the scorer
// was built with NewSTSScorerProfiled, switching engines and matrix entry
// points to profiled scoring.
func (s *STSScorer) ProfileOptions() *core.ProfileOptions { return s.profile }

// Score implements Scorer for one-off pairs, honoring the profiled mode so
// rankings agree with the matrix and engine paths.
func (s *STSScorer) Score(a, b model.Trajectory) (float64, error) {
	if s.profile == nil {
		return s.m.Similarity(a, b)
	}
	pa, err := s.m.Prepare(a)
	if err != nil {
		return 0, err
	}
	pb, err := s.m.Prepare(b)
	if err != nil {
		return 0, err
	}
	fa, err := s.m.Profile(pa, *s.profile)
	if err != nil {
		return 0, err
	}
	fb, err := s.m.Profile(pb, *s.profile)
	if err != nil {
		return 0, err
	}
	return core.SimilarityProfiled(fa, fb)
}

// ScoreMatrixContext implements ContextMatrixScorer: a transient engine
// prepares each distinct trajectory once and fans scoring out on the
// shared cancellable executor.
func (s *STSScorer) ScoreMatrixContext(ctx context.Context, rows, cols model.Dataset, mask [][]bool, workers int) ([][]float64, error) {
	return engine.ScoreMatrix(ctx, s, rows, cols, mask, workers)
}

// ScoreMatrix implements MatrixScorer with per-trajectory preparation.
func (s *STSScorer) ScoreMatrix(rows, cols model.Dataset, workers int) ([][]float64, error) {
	return s.ScoreMatrixContext(context.Background(), rows, cols, nil, workers)
}

// ScoreMatrixMasked implements MaskedMatrixScorer: trajectories that
// appear in no admissible pair are never prepared (preparation — speed
// model estimation and observed-distribution construction — is the
// dominant per-trajectory cost), and masked-out pairs are never scored.
func (s *STSScorer) ScoreMatrixMasked(rows, cols model.Dataset, mask [][]bool, workers int) ([][]float64, error) {
	return s.ScoreMatrixContext(context.Background(), rows, cols, mask, workers)
}

// sanitize maps NaN scores (which would poison rankings) to −Inf.
func sanitize(v float64) float64 {
	if math.IsNaN(v) {
		return math.Inf(-1)
	}
	return v
}
