// Package eval implements the evaluation protocol of Section VI: the
// trajectory-matching task with its precision (Eq. 11) and mean rank
// (Eq. 12) metrics, the cross-similarity deviation (Eq. 13), and the
// parallel scoring machinery the experiments are built on.
package eval

import (
	"fmt"
	"math"

	"github.com/stslib/sts/internal/core"
	"github.com/stslib/sts/internal/model"
)

// Scorer assigns a similarity score to a pair of trajectories. Higher
// scores mean more similar. Implementations must be safe for concurrent
// use; the harness fans out over goroutines.
type Scorer interface {
	// Name identifies the measure in experiment output ("STS", "CATS" …).
	Name() string
	// Score returns the similarity of a and b.
	Score(a, b model.Trajectory) (float64, error)
}

// FuncScorer adapts a similarity function to the Scorer interface.
type FuncScorer struct {
	N string
	F func(a, b model.Trajectory) (float64, error)
}

// Name implements Scorer.
func (s FuncScorer) Name() string { return s.N }

// Score implements Scorer.
func (s FuncScorer) Score(a, b model.Trajectory) (float64, error) { return s.F(a, b) }

// FromDistance adapts a distance function (smaller = more similar) to a
// Scorer by negation. Infinite distances map to −Inf scores, which rank
// last, matching the intuition that an undefined distance is a non-match.
func FromDistance(name string, f func(a, b model.Trajectory) float64) Scorer {
	return FuncScorer{N: name, F: func(a, b model.Trajectory) (float64, error) {
		return -f(a, b), nil
	}}
}

// STSScorer wraps a core.Measure, caching the per-trajectory preparation
// (personalized speed model, observed-timestamp distributions) so that
// scoring a full n×m matrix prepares each trajectory once rather than
// n+m times. It implements MatrixScorer.
type STSScorer struct {
	name string
	m    *core.Measure
}

// NewSTSScorer names and wraps a measure.
func NewSTSScorer(name string, m *core.Measure) *STSScorer {
	return &STSScorer{name: name, m: m}
}

// Name implements Scorer.
func (s *STSScorer) Name() string { return s.name }

// Measure exposes the wrapped measure.
func (s *STSScorer) Measure() *core.Measure { return s.m }

// Score implements Scorer for one-off pairs.
func (s *STSScorer) Score(a, b model.Trajectory) (float64, error) {
	return s.m.Similarity(a, b)
}

// ScoreMatrix implements MatrixScorer with per-trajectory preparation.
func (s *STSScorer) ScoreMatrix(rows, cols model.Dataset, workers int) ([][]float64, error) {
	prows, err := s.prepareAll(rows)
	if err != nil {
		return nil, err
	}
	pcols, err := s.prepareAll(cols)
	if err != nil {
		return nil, err
	}
	return parallelMatrix(len(rows), len(cols), workers, func(i, j int) (float64, error) {
		return s.m.SimilarityPrepared(prows[i], pcols[j])
	})
}

// ScoreMatrixMasked implements MaskedMatrixScorer: trajectories that
// appear in no admissible pair are never prepared (preparation — speed
// model estimation and observed-distribution construction — is the
// dominant per-trajectory cost), and masked-out pairs are never scored.
func (s *STSScorer) ScoreMatrixMasked(rows, cols model.Dataset, mask [][]bool, workers int) ([][]float64, error) {
	if mask == nil {
		return s.ScoreMatrix(rows, cols, workers)
	}
	rowNeeded := make([]bool, len(rows))
	colNeeded := make([]bool, len(cols))
	for i := range mask {
		for j, ok := range mask[i] {
			if ok {
				rowNeeded[i] = true
				colNeeded[j] = true
			}
		}
	}
	prows, err := s.prepareWhere(rows, rowNeeded)
	if err != nil {
		return nil, err
	}
	pcols, err := s.prepareWhere(cols, colNeeded)
	if err != nil {
		return nil, err
	}
	return parallelMatrix(len(rows), len(cols), workers, func(i, j int) (float64, error) {
		if !mask[i][j] {
			return math.Inf(-1), nil
		}
		return s.m.SimilarityPrepared(prows[i], pcols[j])
	})
}

func (s *STSScorer) prepareWhere(ds model.Dataset, needed []bool) ([]*core.Prepared, error) {
	out := make([]*core.Prepared, len(ds))
	err := parallelFor(len(ds), 0, func(i int) error {
		if !needed[i] {
			return nil
		}
		p, err := s.m.Prepare(ds[i])
		if err != nil {
			return fmt.Errorf("eval: prepare %q: %w", ds[i].ID, err)
		}
		out[i] = p
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (s *STSScorer) prepareAll(ds model.Dataset) ([]*core.Prepared, error) {
	out := make([]*core.Prepared, len(ds))
	err := parallelFor(len(ds), 0, func(i int) error {
		p, err := s.m.Prepare(ds[i])
		if err != nil {
			return fmt.Errorf("eval: prepare %q: %w", ds[i].ID, err)
		}
		out[i] = p
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// sanitize maps NaN scores (which would poison rankings) to −Inf.
func sanitize(v float64) float64 {
	if math.IsNaN(v) {
		return math.Inf(-1)
	}
	return v
}
