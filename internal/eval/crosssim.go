package eval

import (
	"errors"
	"math"
	"math/rand"

	"github.com/stslib/sts/internal/model"
)

// Pair is one (Tra1, Tra2) pair in the cross-similarity-deviation
// protocol of Section VI-D.
type Pair struct {
	A, B model.Trajectory
}

// RandomPairs draws n distinct-index pairs from ds uniformly at random.
// An error is returned if ds has fewer than two trajectories.
func RandomPairs(ds model.Dataset, n int, rng *rand.Rand) ([]Pair, error) {
	if len(ds) < 2 {
		return nil, errors.New("eval: need at least two trajectories to form pairs")
	}
	out := make([]Pair, 0, n)
	for len(out) < n {
		i := rng.Intn(len(ds))
		j := rng.Intn(len(ds))
		if i == j {
			continue
		}
		out = append(out, Pair{A: ds[i], B: ds[j]})
	}
	return out, nil
}

// CrossSimilarityDeviation evaluates Eq. 13 averaged over pairs: for each
// pair, Tra2 is down-sampled at rate alpha and the relative change of the
// measured similarity is recorded,
//
//	| d(Tra1, Tra2′) − d(Tra1, Tra2) | / | d(Tra1, Tra2) |.
//
// A smaller deviation means the measure is more stable under re-sampling,
// i.e. closer to a property of the underlying paths rather than of the
// sampling process. Pairs whose baseline similarity is numerically zero
// carry no signal and are skipped; the number of contributing pairs is
// returned alongside the average.
func CrossSimilarityDeviation(pairs []Pair, s Scorer, alpha float64, rng *rand.Rand, workers int) (avg float64, used int, err error) {
	type result struct {
		dev float64
		ok  bool
	}
	// Down-sampling must happen up front: rng is not safe for concurrent
	// use inside the parallel loop.
	subs := make([]model.Trajectory, len(pairs))
	for i, p := range pairs {
		subs[i] = model.Downsample(p.B, alpha, rng)
	}
	results := make([]result, len(pairs))
	err = parallelFor(len(pairs), workers, func(i int) error {
		base, err := s.Score(pairs[i].A, pairs[i].B)
		if err != nil {
			return err
		}
		sub, err := s.Score(pairs[i].A, subs[i])
		if err != nil {
			return err
		}
		base, sub = sanitize(base), sanitize(sub)
		if math.IsInf(base, 0) || math.IsInf(sub, 0) || math.Abs(base) < 1e-12 {
			return nil
		}
		results[i] = result{dev: math.Abs(sub-base) / math.Abs(base), ok: true}
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	var total float64
	for _, r := range results {
		if r.ok {
			total += r.dev
			used++
		}
	}
	if used == 0 {
		return 0, 0, errors.New("eval: no pair produced a usable baseline similarity")
	}
	return total / float64(used), used, nil
}

// CrossSimilaritySweep evaluates the cross-similarity deviation at every
// sampling rate in alphas, computing each pair's baseline similarity
// d(Tra1, Tra2) exactly once and reusing it across rates. The result has
// one average per alpha, in order.
func CrossSimilaritySweep(pairs []Pair, s Scorer, alphas []float64, rng *rand.Rand, workers int) ([]float64, error) {
	// Pre-draw every down-sampled variant so the rng stays single-threaded.
	subs := make([][]model.Trajectory, len(alphas))
	for ai, alpha := range alphas {
		subs[ai] = make([]model.Trajectory, len(pairs))
		for i, p := range pairs {
			subs[ai][i] = model.Downsample(p.B, alpha, rng)
		}
	}
	bases := make([]float64, len(pairs))
	if err := parallelFor(len(pairs), workers, func(i int) error {
		v, err := s.Score(pairs[i].A, pairs[i].B)
		if err != nil {
			return err
		}
		bases[i] = sanitize(v)
		return nil
	}); err != nil {
		return nil, err
	}
	out := make([]float64, len(alphas))
	for ai := range alphas {
		devs := make([]float64, len(pairs))
		ok := make([]bool, len(pairs))
		if err := parallelFor(len(pairs), workers, func(i int) error {
			base := bases[i]
			if math.IsInf(base, 0) || math.Abs(base) < 1e-12 {
				return nil
			}
			v, err := s.Score(pairs[i].A, subs[ai][i])
			if err != nil {
				return err
			}
			v = sanitize(v)
			if math.IsInf(v, 0) {
				return nil
			}
			devs[i] = math.Abs(v-base) / math.Abs(base)
			ok[i] = true
			return nil
		}); err != nil {
			return nil, err
		}
		var total float64
		used := 0
		for i := range devs {
			if ok[i] {
				total += devs[i]
				used++
			}
		}
		if used == 0 {
			return nil, errors.New("eval: no pair produced a usable baseline similarity")
		}
		out[ai] = total / float64(used)
	}
	return out, nil
}
