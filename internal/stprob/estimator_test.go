package stprob

import (
	"math"
	"testing"

	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/kde"
	"github.com/stslib/sts/internal/model"
)

// testGrid covers a 100x100 m area with 5 m cells.
func testGrid(t *testing.T) *geo.Grid {
	t.Helper()
	g, err := geo.NewGrid(geo.NewRect(geo.Point{X: -20, Y: -20}, geo.Point{X: 120, Y: 120}), 5)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// eastWalk returns a trajectory walking east at speed m/s sampled every
// step seconds, n samples.
func eastWalk(speed, step float64, n int) model.Trajectory {
	tr := model.Trajectory{ID: "e"}
	for i := 0; i < n; i++ {
		tt := float64(i) * step
		tr.Samples = append(tr.Samples, model.Sample{Loc: geo.Point{X: speed * tt, Y: 50}, T: tt})
	}
	return tr
}

func testEstimator(t *testing.T, tr model.Trajectory) *Estimator {
	t.Helper()
	sm, err := kde.NewSpeedModel(tr)
	if err != nil {
		t.Fatal(err)
	}
	return &Estimator{
		Grid:     testGrid(t),
		Noise:    GaussianNoise{Sigma: 3},
		Trans:    sm.Transition,
		MaxSpeed: sm.MaxSpeed(),
	}
}

func TestObservedDistNormalizedAndCentered(t *testing.T) {
	tr := eastWalk(1, 10, 8)
	e := testEstimator(t, tr)
	// Keep the observation off cell corners so the mode is unique.
	obs := geo.Point{X: 42.5, Y: 52.5}
	d := e.ObservedDist(obs)
	if d.IsZero() {
		t.Fatal("observed distribution is zero")
	}
	if math.Abs(d.Sum()-1) > 1e-9 {
		t.Errorf("Sum=%v", d.Sum())
	}
	// The most probable cell is the one containing the observation.
	best, bestP := -1, 0.0
	for i, c := range d.Cells {
		if d.Probs[i] > bestP {
			best, bestP = c, d.Probs[i]
		}
	}
	if best != e.Grid.Cell(obs) {
		t.Errorf("mode at cell %d, observation in cell %d", best, e.Grid.Cell(obs))
	}
}

func TestDistAtObservedTimestamp(t *testing.T) {
	tr := eastWalk(1, 10, 8)
	e := testEstimator(t, tr)
	d, err := e.DistAt(tr, 20) // exactly the third sample
	if err != nil {
		t.Fatal(err)
	}
	want := e.ObservedDist(tr.Samples[2].Loc)
	if len(d.Cells) != len(want.Cells) {
		t.Fatalf("support %d vs %d", len(d.Cells), len(want.Cells))
	}
	for i := range d.Cells {
		if d.Cells[i] != want.Cells[i] || math.Abs(d.Probs[i]-want.Probs[i]) > 1e-12 {
			t.Fatalf("differs at %d", i)
		}
	}
}

func TestDistAtOutsideWindowIsZero(t *testing.T) {
	tr := eastWalk(1, 10, 8)
	e := testEstimator(t, tr)
	for _, tt := range []float64{-5, 71} {
		d, err := e.DistAt(tr, tt)
		if err != nil {
			t.Fatal(err)
		}
		if !d.IsZero() {
			t.Errorf("DistAt(%v) not zero", tt)
		}
	}
}

func TestDistAtBetweenIsNormalizedAndLocalized(t *testing.T) {
	tr := eastWalk(1, 20, 5) // samples at 0,20,40,60,80 s at x=0,20,40,60,80
	e := testEstimator(t, tr)
	d, err := e.DistAt(tr, 30) // midway between x=20 and x=40
	if err != nil {
		t.Fatal(err)
	}
	if d.IsZero() {
		t.Fatal("between distribution is zero")
	}
	if math.Abs(d.Sum()-1) > 1e-9 {
		t.Errorf("Sum=%v", d.Sum())
	}
	// Expected position ~ (30, 50): the probability-weighted centroid
	// must land nearby.
	var cx, cy float64
	for i, c := range d.Cells {
		p := e.Grid.Center(c)
		cx += p.X * d.Probs[i]
		cy += p.Y * d.Probs[i]
	}
	if math.Abs(cx-30) > 8 || math.Abs(cy-50) > 8 {
		t.Errorf("centroid (%v,%v) far from expected (30,50)", cx, cy)
	}
}

func TestDistAtNoTransitionError(t *testing.T) {
	tr := eastWalk(1, 10, 4)
	e := &Estimator{Grid: testGrid(t), Noise: GaussianNoise{Sigma: 3}}
	// Observed timestamps do not need a transition model...
	if _, err := e.DistAt(tr, 10); err != nil {
		t.Errorf("observed timestamp: %v", err)
	}
	// ...but in-between times do.
	if _, err := e.DistAt(tr, 15); err != ErrNoTransition {
		t.Errorf("between: err=%v want ErrNoTransition", err)
	}
}

func TestTruncatedMatchesExact(t *testing.T) {
	tr := eastWalk(1.2, 15, 6)
	sm, err := kde.NewSpeedModel(tr)
	if err != nil {
		t.Fatal(err)
	}
	grid := testGrid(t)
	trunc := &Estimator{Grid: grid, Noise: GaussianNoise{Sigma: 3}, Trans: sm.Transition, MaxSpeed: sm.MaxSpeed()}
	exact := &Estimator{Grid: grid, Noise: GaussianNoise{Sigma: 3}, Trans: sm.Transition, Exact: true}
	for _, tt := range []float64{7, 22, 40, 68} {
		dt, err := trunc.DistAt(tr, tt)
		if err != nil {
			t.Fatal(err)
		}
		de, err := exact.DistAt(tr, tt)
		if err != nil {
			t.Fatal(err)
		}
		// Compare over the union of supports: the truncated distribution
		// must agree with the exact one everywhere to within the mass the
		// truncation discards.
		cells := map[int]bool{}
		for _, c := range dt.Cells {
			cells[c] = true
		}
		for _, c := range de.Cells {
			cells[c] = true
		}
		for c := range cells {
			if diff := math.Abs(dt.Prob(c) - de.Prob(c)); diff > 5e-3 {
				t.Errorf("t=%v cell %d: truncated %v exact %v", tt, c, dt.Prob(c), de.Prob(c))
			}
		}
	}
}

func TestSTPSingleCell(t *testing.T) {
	tr := eastWalk(1, 10, 6)
	e := testEstimator(t, tr)
	cell := e.Grid.Cell(geo.Point{X: 20, Y: 50})
	p, err := e.STP(tr, cell, 20)
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0 || p > 1 {
		t.Errorf("STP=%v", p)
	}
	// A cell far away carries ~no probability.
	farCell := e.Grid.Cell(geo.Point{X: 110, Y: -10})
	pf, err := e.STP(tr, farCell, 20)
	if err != nil {
		t.Fatal(err)
	}
	if pf > 1e-9 {
		t.Errorf("far STP=%v", pf)
	}
}

func TestMaxCandidateCellsCap(t *testing.T) {
	tr := eastWalk(1, 30, 4)
	sm, err := kde.NewSpeedModel(tr)
	if err != nil {
		t.Fatal(err)
	}
	e := &Estimator{
		Grid:              testGrid(t),
		Noise:             GaussianNoise{Sigma: 3},
		Trans:             sm.Transition,
		MaxSpeed:          sm.MaxSpeed(),
		MaxCandidateCells: 4,
	}
	d, err := e.DistAt(tr, 45)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Cells) > 4 {
		t.Errorf("candidate cap violated: %d cells", len(d.Cells))
	}
	if !d.IsZero() && math.Abs(d.Sum()-1) > 1e-9 {
		t.Errorf("capped distribution not normalized: %v", d.Sum())
	}
}

func TestMaxSupportCellsCap(t *testing.T) {
	e := &Estimator{
		Grid:            testGrid(t),
		Noise:           GaussianNoise{Sigma: 10},
		MaxSupportCells: 5,
	}
	d := e.ObservedDist(geo.Point{X: 50, Y: 50})
	if len(d.Cells) != 5 {
		t.Errorf("support cap: %d cells want 5", len(d.Cells))
	}
	if math.Abs(d.Sum()-1) > 1e-9 {
		t.Errorf("Sum=%v", d.Sum())
	}
}

func TestBrownianTransition(t *testing.T) {
	bt := BrownianTransition(2)
	a := geo.Point{}
	if got := bt(a, 0, a, 0); got != 1 {
		t.Errorf("zero interval, same place: %v", got)
	}
	if got := bt(a, 0, geo.Point{X: 5}, 0); got != 0 {
		t.Errorf("zero interval, moved: %v", got)
	}
	near := bt(a, 0, geo.Point{X: 2}, 10)
	far := bt(a, 0, geo.Point{X: 50}, 10)
	if !(near > far && far >= 0) {
		t.Errorf("near=%v far=%v", near, far)
	}
	// Longer interval spreads the bridge: the same displacement becomes
	// more probable.
	short := bt(a, 0, geo.Point{X: 20}, 5)
	long := bt(a, 0, geo.Point{X: 20}, 50)
	if long <= short {
		t.Errorf("short=%v long=%v", short, long)
	}
}

func TestCandidateFallbackWhenDisksDisjoint(t *testing.T) {
	// Two observations 80 m apart, 10 s between them, but the speed model
	// says ~0.1 m/s: reachability disks cannot intersect, so the
	// estimator must fall back to the interpolated position.
	tr := model.Trajectory{ID: "jump", Samples: []model.Sample{
		{Loc: geo.Point{X: 0, Y: 50}, T: 0},
		{Loc: geo.Point{X: 1, Y: 50}, T: 10},  // 0.1 m/s
		{Loc: geo.Point{X: 81, Y: 50}, T: 20}, // 8 m/s jump
	}}
	sm, err := kde.NewSpeedModel(tr)
	if err != nil {
		t.Fatal(err)
	}
	e := &Estimator{
		Grid:     testGrid(t),
		Noise:    GaussianNoise{Sigma: 3},
		Trans:    sm.Transition,
		MaxSpeed: 0.5, // deliberately inconsistent with the jump
	}
	d, err := e.DistAt(tr, 15)
	if err != nil {
		t.Fatal(err)
	}
	// The estimator must not panic and must return a (possibly zero)
	// well-formed distribution.
	if !d.IsZero() && math.Abs(d.Sum()-1) > 1e-9 {
		t.Errorf("fallback distribution not normalized: %v", d.Sum())
	}
}
