package stprob

import (
	"math"
	"sort"
)

// Dist is a sparse, normalized probability distribution over grid cells:
// the discrete representation of STP(·, t, Tra) restricted to its support.
// Cells are sorted ascending; Probs[i] is the probability of Cells[i]. The
// zero value is the all-zero distribution (an object known to be absent,
// the third case of Eq. 5).
type Dist struct {
	Cells []int
	Probs []float64
}

// IsZero reports whether the distribution carries no mass.
func (d Dist) IsZero() bool { return len(d.Cells) == 0 }

// Prob returns the probability of cell idx (0 when idx is outside the
// support).
func (d Dist) Prob(idx int) float64 {
	i := sort.SearchInts(d.Cells, idx)
	if i < len(d.Cells) && d.Cells[i] == idx {
		return d.Probs[i]
	}
	return 0
}

// Sum returns the total mass (1 for a normalized non-zero distribution, 0
// for the zero distribution, up to floating-point error).
func (d Dist) Sum() float64 {
	var s float64
	for _, p := range d.Probs {
		s += p
	}
	return s
}

// normalize scales the probabilities to sum to 1 in place. A zero-mass
// input becomes the zero distribution.
func (d *Dist) normalize() {
	total := d.Sum()
	if total <= 0 {
		d.Cells = nil
		d.Probs = nil
		return
	}
	inv := 1 / total
	if math.IsInf(inv, 0) {
		// total is denormal (deep noise/transition tails), so its reciprocal
		// overflows. Per-element division stays finite.
		for i := range d.Probs {
			d.Probs[i] /= total
		}
		return
	}
	for i := range d.Probs {
		d.Probs[i] *= inv
	}
}

// sortedInPlace ensures cells are in ascending order without allocating:
// the constructors emit cells in row-major (already ascending) order, so
// the common case is a linear scan; the fallback is an in-place joint
// insertion sort of both slices.
func (d *Dist) sortedInPlace() {
	if sort.IntsAreSorted(d.Cells) {
		return
	}
	for i := 1; i < len(d.Cells); i++ {
		c, p := d.Cells[i], d.Probs[i]
		j := i - 1
		for j >= 0 && d.Cells[j] > c {
			d.Cells[j+1] = d.Cells[j]
			d.Probs[j+1] = d.Probs[j]
			j--
		}
		d.Cells[j+1] = c
		d.Probs[j+1] = p
	}
}

// sorted ensures cells are in ascending order, sorting both slices
// together if needed.
func (d *Dist) sorted() {
	if sort.IntsAreSorted(d.Cells) {
		return
	}
	idx := make([]int, len(d.Cells))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return d.Cells[idx[a]] < d.Cells[idx[b]] })
	cells := make([]int, len(d.Cells))
	probs := make([]float64, len(d.Probs))
	for i, k := range idx {
		cells[i] = d.Cells[k]
		probs[i] = d.Probs[k]
	}
	d.Cells, d.Probs = cells, probs
}
