package stprob

import (
	"math"
	"testing"

	"github.com/stslib/sts/internal/geo"
)

func TestGaussianNoiseWeight(t *testing.T) {
	g := GaussianNoise{Sigma: 3}
	obs := geo.Point{X: 10, Y: 10}
	if got := g.Weight(obs, obs); got != 1 {
		t.Errorf("weight at the observation = %v want 1", got)
	}
	near := g.Weight(geo.Point{X: 11, Y: 10}, obs)
	far := g.Weight(geo.Point{X: 20, Y: 10}, obs)
	if !(1 > near && near > far && far > 0) {
		t.Errorf("weights not decreasing: near=%v far=%v", near, far)
	}
	// One sigma out: exp(-1/2).
	oneSigma := g.Weight(geo.Point{X: 13, Y: 10}, obs)
	if math.Abs(oneSigma-math.Exp(-0.5)) > 1e-12 {
		t.Errorf("weight at 1 sigma = %v", oneSigma)
	}
}

func TestGaussianNoiseIsotropic(t *testing.T) {
	g := GaussianNoise{Sigma: 2}
	obs := geo.Point{}
	a := g.Weight(geo.Point{X: 3, Y: 0}, obs)
	b := g.Weight(geo.Point{X: 0, Y: 3}, obs)
	c := g.Weight(geo.Point{X: 3 / math.Sqrt2, Y: 3 / math.Sqrt2}, obs)
	if math.Abs(a-b) > 1e-12 || math.Abs(a-c) > 1e-12 {
		t.Errorf("not isotropic: %v %v %v", a, b, c)
	}
}

func TestGaussianNoiseSupportRadius(t *testing.T) {
	if got := (GaussianNoise{Sigma: 3}).SupportRadius(); got != 3*DefaultTruncSigmas {
		t.Errorf("default truncation: %v", got)
	}
	if got := (GaussianNoise{Sigma: 3, TruncSigmas: 2}).SupportRadius(); got != 6 {
		t.Errorf("explicit truncation: %v", got)
	}
}

func TestUniformNoise(t *testing.T) {
	u := UniformNoise{Radius: 5}
	obs := geo.Point{}
	if u.Weight(geo.Point{X: 4}, obs) != 1 {
		t.Error("inside radius should weigh 1")
	}
	if u.Weight(geo.Point{X: 6}, obs) != 0 {
		t.Error("outside radius should weigh 0")
	}
	if u.SupportRadius() != 5 {
		t.Error("support radius")
	}
}

func TestPointNoise(t *testing.T) {
	p := PointNoise{}
	if p.SupportRadius() != 0 {
		t.Error("point noise must have zero support radius")
	}
	if p.Weight(geo.Point{X: 1}, geo.Point{}) != 1 {
		t.Error("point noise weight must be constant")
	}
}
