package stprob

import (
	"errors"
	"math"
	"sort"
	"sync"

	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/model"
)

// Transition is the transition probability P(ℓ′, t′ | ℓ, t) of an object
// moving from location a at time ta to location b at time tb. The
// personalized KDE speed model of Section IV-B (kde.SpeedModel.Transition),
// the pooled/global variant, the frequency-based Markov model
// (markov.TransitionModel.ProbPoints), and the Brownian-bridge random walk
// all satisfy this signature.
type Transition func(a geo.Point, ta float64, b geo.Point, tb float64) float64

// BrownianTransition returns the Gaussian-random-walk transition of a
// Brownian motion with diffusion scale sigmaM (m/√s):
//
//	P(b, tb | a, ta) ∝ exp(−d² / (2·σm²·|Δt|)).
//
// The paper notes the Brownian bridge is the special case of STS's
// estimation when the speed distribution is assumed Gaussian; this
// constructor makes that special case available for comparison.
func BrownianTransition(sigmaM float64) Transition {
	radial := BrownianRadial(sigmaM)
	return func(a geo.Point, ta float64, b geo.Point, tb float64) float64 {
		return radial(a.Dist(b), math.Abs(ta-tb))
	}
}

// BrownianRadial is the radial form of BrownianTransition, suitable for the
// memoized fast path (see RadialTransition).
func BrownianRadial(sigmaM float64) RadialTransition {
	return func(d, dt float64) float64 {
		if dt == 0 {
			if d == 0 {
				return 1
			}
			return 0
		}
		v := sigmaM * sigmaM * dt
		return math.Exp(-d * d / (2 * v))
	}
}

// Estimator computes the spatial-temporal probability STP(r, t, Tra) of
// Eq. 5 for one trajectory: the probability that the object is at grid
// cell r at time t.
//
// The estimator is configured once and then queried; it is safe for
// concurrent use as long as its fields are not mutated.
type Estimator struct {
	// Grid is the spatial partitioning R.
	Grid *geo.Grid
	// Noise is the location-noise distribution f of the sensing system.
	Noise NoiseModel
	// Trans is the transition model (Eq. 7 by default).
	Trans Transition
	// Radial, when non-nil, declares that Trans is radially symmetric and
	// supplies its radial form: Trans(a, ta, b, tb) must equal
	// Radial(dis(a, b), |ta−tb|). It enables the lattice-offset
	// memoization of BetweenDist; Trans remains required either way.
	Radial RadialTransition
	// MaxSpeed bounds the object's plausible speed in m/s, used only to
	// truncate the candidate-cell set between observations. Zero disables
	// speed-based truncation (candidates fall back to the noise support
	// around both bracketing observations, grown to keep them connected).
	MaxSpeed float64
	// Exact disables support truncation entirely: every sum ranges over
	// all |R| cells, exactly as written in Eq. 4. Exponentially slower on
	// large grids; used by tests and the truncation ablation bench.
	Exact bool
	// MaxCandidateCells, when positive, caps the number of candidate
	// cells evaluated between observations; the cells nearest the
	// time-interpolated position are kept. Ignored in Exact mode.
	MaxCandidateCells int
	// MaxSupportCells, when positive, caps the support of an
	// observation's noise distribution; the highest-weight cells are
	// kept (for a radial noise model, the cells nearest the
	// observation). Ignored in Exact mode.
	MaxSupportCells int
	// SpeedSlack, when positive, compensates for the quantization of
	// locations to cell centers when evaluating transitions: the
	// displacement between two cells is probed at d, d−SpeedSlack and
	// d+SpeedSlack (clamped at 0) and the best value is used. Without it,
	// a grid of cell size c can only realize speeds that are multiples of
	// ~c/Δt, and an object whose personalized speed distribution is
	// narrower than that quantum (near-constant speed) would get an
	// all-zero in-between distribution. Half the grid cell size is the
	// natural value.
	SpeedSlack float64
}

// ErrNoTransition is returned when an Estimator is queried without a
// transition model.
var ErrNoTransition = errors.New("stprob: estimator has no transition model")

// ObservedDist returns the normalized location distribution of a single
// observation: f(r, ℓ) over the noise support, the first case of Eq. 5.
func (e *Estimator) ObservedDist(obs geo.Point) Dist {
	var cells []int
	if e.Exact {
		cells = e.Grid.AllCells()
	} else {
		cells = e.Grid.CellsWithin(nil, obs, e.Noise.SupportRadius())
	}
	d := Dist{Cells: cells, Probs: make([]float64, len(cells))}
	for i, c := range cells {
		d.Probs[i] = e.Noise.Weight(e.Grid.Center(c), obs)
	}
	if !e.Exact && e.MaxSupportCells > 0 && len(d.Cells) > e.MaxSupportCells {
		d = topKByWeight(d, e.MaxSupportCells)
	}
	d.sorted()
	d.normalize()
	return d
}

// topKByWeight keeps the k highest-weight cells of d. Ties in weight are
// broken by ascending cell index, so truncation is deterministic across
// runs (repeated linking produces identical supports).
func topKByWeight(d Dist, k int) Dist {
	idx := make([]int, len(d.Cells))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := d.Probs[idx[a]], d.Probs[idx[b]]
		if pa != pb {
			return pa > pb
		}
		return d.Cells[idx[a]] < d.Cells[idx[b]]
	})
	out := Dist{Cells: make([]int, k), Probs: make([]float64, k)}
	for i := 0; i < k; i++ {
		out.Cells[i] = d.Cells[idx[i]]
		out.Probs[i] = d.Probs[idx[i]]
	}
	return out
}

// DistAt returns the normalized spatial-temporal probability distribution
// of the object's location at time t given trajectory tr — the full
// STP(·, t, Tra) of Eq. 5:
//
//   - at an observed timestamp, the noise distribution of that observation;
//   - strictly between two observations, the Markov interpolation of
//     Eq. 4 (the denominator is constant over r and cancels under
//     normalization, the simplification Algorithm 1 exploits);
//   - outside the observation interval, the zero distribution.
func (e *Estimator) DistAt(tr model.Trajectory, t float64) (Dist, error) {
	if tr.Len() == 0 || t < tr.Start() || t > tr.End() {
		return Dist{}, nil
	}
	exact, before, after := tr.Bracket(t)
	if exact >= 0 {
		return e.ObservedDist(tr.Samples[exact].Loc), nil
	}
	if e.Trans == nil {
		return Dist{}, ErrNoTransition
	}
	prev := tr.Samples[before]
	next := tr.Samples[after]
	return e.BetweenDist(prev, next, e.ObservedDist(prev.Loc), e.ObservedDist(next.Loc), t)
}

// wsPool backs the allocating BetweenDist convenience wrapper; hot callers
// (core.Prepared) thread their own Workspace through BetweenDistWS instead.
var wsPool = sync.Pool{New: func() any { return new(Workspace) }}

// BetweenDist evaluates Eq. 4 for t strictly inside (prev.T, next.T),
// given the (normalized) noise distributions of the two bracketing
// observations. Callers that evaluate many timestamps against the same
// trajectory should cache those distributions (core.Prepared does); DistAt
// rebuilds them on every call.
//
// The returned distribution owns its slices. Callers scoring in a loop
// should use BetweenDistWS with a reusable Workspace to avoid the copy and
// the per-call allocations.
func (e *Estimator) BetweenDist(prev, next model.Sample, suppPrev, suppNext Dist, t float64) (Dist, error) {
	ws := wsPool.Get().(*Workspace)
	d, err := e.BetweenDistWS(ws, prev, next, suppPrev, suppNext, t)
	if err == nil && !d.IsZero() {
		d = Dist{
			Cells: append([]int(nil), d.Cells...),
			Probs: append([]float64(nil), d.Probs...),
		}
	}
	wsPool.Put(ws)
	return d, err
}

// BetweenDistWS is BetweenDist with caller-provided scratch: the returned
// Dist aliases ws and is valid only until the next call with the same
// workspace. When the estimator has a Radial transition, the evaluation
// memoizes transition masses per distinct lattice offset — the candidate and
// support cells live on a regular lattice, so dis(center(c), center(s))
// depends only on Δcol² + Δrow², and the two time intervals are fixed
// within one call — collapsing the |cand|·(|suppPrev|+|suppNext|) transition
// evaluations (sqrt + KDE lookup + speed-slack probes) to one per distinct
// squared offset.
func (e *Estimator) BetweenDistWS(ws *Workspace, prev, next model.Sample, suppPrev, suppNext Dist, t float64) (Dist, error) {
	if e.Trans == nil {
		return Dist{}, ErrNoTransition
	}
	cand := e.candidateCellsWS(ws, prev, next, t)
	ws.probs = ensureFloats(ws.probs, len(cand))
	probs := ws.probs
	d := Dist{Cells: cand, Probs: probs}

	if e.Radial != nil && e.betweenRadial(ws, d, prev, next, suppPrev, suppNext, t) {
		// memoized path done
	} else {
		e.betweenGeneric(ws, d, prev, next, suppPrev, suppNext, t)
	}
	d.sortedInPlace()
	d.normalize()
	return d, nil
}

// betweenRadial fills d.Probs via the lattice-offset memo tables. It
// reports false (leaving d untouched) when the offset range is too large to
// memoize densely; the caller then falls back to the generic path.
func (e *Estimator) betweenRadial(ws *Workspace, d Dist, prev, next model.Sample, suppPrev, suppNext Dist, t float64) bool {
	nx := e.Grid.Cols()
	cand := d.Cells

	// Lattice coordinates of the support cells (zero-weight cells dropped,
	// weights compacted alongside), and the bounding boxes that size the
	// memo tables.
	ws.spCols = ensureInts(ws.spCols, len(suppPrev.Cells))
	ws.spRows = ensureInts(ws.spRows, len(suppPrev.Cells))
	ws.spW = ensureFloats(ws.spW, len(suppPrev.Cells))
	np, spMinC, spMaxC, spMinR, spMaxR := compactLattice(ws.spCols, ws.spRows, ws.spW, suppPrev, nx)
	ws.snCols = ensureInts(ws.snCols, len(suppNext.Cells))
	ws.snRows = ensureInts(ws.snRows, len(suppNext.Cells))
	ws.snW = ensureFloats(ws.snW, len(suppNext.Cells))
	nn, snMinC, snMaxC, snMinR, snMaxR := compactLattice(ws.snCols, ws.snRows, ws.snW, suppNext, nx)

	cMinC, cMaxC, cMinR, cMaxR := latticeBounds(cand, nx)
	maxQ := maxSquaredOffset(cMinC, cMaxC, cMinR, cMaxR, spMinC, spMaxC, spMinR, spMaxR)
	if qb := maxSquaredOffset(cMinC, cMaxC, cMinR, cMaxR, snMinC, snMaxC, snMinR, snMaxR); qb > maxQ {
		maxQ = qb
	}
	if maxQ >= memoLimit {
		return false
	}
	ws.beginMemo(maxQ)

	cs := e.Grid.CellSize()
	dt1 := t - prev.T
	dt2 := next.T - t
	epoch := ws.epoch
	memoA, memoB := ws.memoA, ws.memoB
	// Slicing every per-support array to the compacted length lets the
	// compiler prove the hot-loop indexing in range (one bounds check per
	// support set instead of three per iteration).
	spCols, spRows, spW := ws.spCols[:np], ws.spRows[:np], ws.spW[:np]
	snCols, snRows, snW := ws.snCols[:nn], ws.snRows[:nn], ws.snW[:nn]
	probs := d.Probs

	for i, c := range cand {
		ccol := c % nx
		crow := c / nx
		// Σ_j f(r_j, ℓ_i) · P(r_c, t | r_j, t_i)
		sumA := e.accumRadial(memoA, epoch, spCols, spRows, spW, ccol, crow, cs, dt1)
		if sumA == 0 {
			probs[i] = 0
			continue
		}
		// Σ_k f(r_k, ℓ_{i+1}) · P(r_k, t_{i+1} | r_c, t)
		sumB := e.accumRadial(memoB, epoch, snCols, snRows, snW, ccol, crow, cs, dt2)
		probs[i] = sumA * sumB
	}
	return true
}

// accumRadial computes Σ_j w[j] · Radial(cs·√((ccol−cols[j])² + (crow−rows[j])²), dt)
// over one compacted support set, memoizing per squared lattice offset —
// the innermost gather-multiply-accumulate of every in-between evaluation.
//
// The loop is unrolled four wide with independent partial sums: a single
// accumulator serializes on floating-point add latency, while four chains
// keep the multiply-add units busy (memo lookups in steady state are pure
// loads of value-and-stamp entries sharing a cache line). rows and w are
// pinned to len(cols) up front so the unrolled body carries no bounds
// checks on the support arrays; the memo indexing is data-dependent
// (q ≤ maxQ sized the table) and keeps its check.
func (e *Estimator) accumRadial(memo []memoEntry, epoch uint32, cols, rows []int, w []float64, ccol, crow int, cs, dt float64) float64 {
	n := len(cols)
	if len(rows) < n || len(w) < n {
		return 0 // unreachable: callers compact all three to one length
	}
	rows = rows[:n]
	w = w[:n]
	var s0, s1, s2, s3 float64
	j := 0
	for ; j+4 <= n; j += 4 {
		dc0, dr0 := ccol-cols[j], crow-rows[j]
		dc1, dr1 := ccol-cols[j+1], crow-rows[j+1]
		dc2, dr2 := ccol-cols[j+2], crow-rows[j+2]
		dc3, dr3 := ccol-cols[j+3], crow-rows[j+3]
		q0 := dc0*dc0 + dr0*dr0
		q1 := dc1*dc1 + dr1*dr1
		q2 := dc2*dc2 + dr2*dr2
		q3 := dc3*dc3 + dr3*dr3
		m0 := memo[q0]
		if m0.stamp != epoch {
			m0 = memoEntry{v: e.radialTransition(cs*math.Sqrt(float64(q0)), dt), stamp: epoch}
			memo[q0] = m0
		}
		m1 := memo[q1]
		if m1.stamp != epoch {
			m1 = memoEntry{v: e.radialTransition(cs*math.Sqrt(float64(q1)), dt), stamp: epoch}
			memo[q1] = m1
		}
		m2 := memo[q2]
		if m2.stamp != epoch {
			m2 = memoEntry{v: e.radialTransition(cs*math.Sqrt(float64(q2)), dt), stamp: epoch}
			memo[q2] = m2
		}
		m3 := memo[q3]
		if m3.stamp != epoch {
			m3 = memoEntry{v: e.radialTransition(cs*math.Sqrt(float64(q3)), dt), stamp: epoch}
			memo[q3] = m3
		}
		s0 += w[j] * m0.v
		s1 += w[j+1] * m1.v
		s2 += w[j+2] * m2.v
		s3 += w[j+3] * m3.v
	}
	for ; j < n; j++ {
		dc := ccol - cols[j]
		dr := crow - rows[j]
		q := dc*dc + dr*dr
		m := memo[q]
		if m.stamp != epoch {
			m = memoEntry{v: e.radialTransition(cs*math.Sqrt(float64(q)), dt), stamp: epoch}
			memo[q] = m
		}
		s0 += w[j] * m.v
	}
	return (s0 + s1) + (s2 + s3)
}

// betweenGeneric is the unmemoized evaluation for transition models that
// depend on absolute locations (frequency Markov, custom Trans): the
// original double loop of Eq. 4, with workspace-backed center scratch.
func (e *Estimator) betweenGeneric(ws *Workspace, d Dist, prev, next model.Sample, suppPrev, suppNext Dist, t float64) {
	ws.prevCenters = e.cellCentersWS(ws.prevCenters, suppPrev.Cells)
	ws.nextCenters = e.cellCentersWS(ws.nextCenters, suppNext.Cells)
	prevCenters := ws.prevCenters
	nextCenters := ws.nextCenters

	for i, c := range d.Cells {
		rc := e.Grid.Center(c)
		var sumA float64
		for j, pc := range prevCenters {
			if w := suppPrev.Probs[j]; w != 0 {
				sumA += w * e.transition(pc, prev.T, rc, t)
			}
		}
		if sumA == 0 {
			d.Probs[i] = 0
			continue
		}
		var sumB float64
		for k, nc := range nextCenters {
			if w := suppNext.Probs[k]; w != 0 {
				sumB += w * e.transition(rc, t, nc, next.T)
			}
		}
		d.Probs[i] = sumA * sumB
	}
}

// compactLattice decomposes the support's cells into lattice coordinates,
// dropping zero-weight cells so the hot loops of betweenRadial need no
// weight test, and compacting the weights alongside. It returns the number
// of cells kept and their bounding box.
func compactLattice(cols, rows []int, w []float64, supp Dist, nx int) (n, minC, maxC, minR, maxR int) {
	minC, minR = math.MaxInt, math.MaxInt
	maxC, maxR = math.MinInt, math.MinInt
	for i, c := range supp.Cells {
		p := supp.Probs[i]
		if p == 0 {
			continue
		}
		col := c % nx
		row := c / nx
		cols[n] = col
		rows[n] = row
		w[n] = p
		n++
		if col < minC {
			minC = col
		}
		if col > maxC {
			maxC = col
		}
		if row < minR {
			minR = row
		}
		if row > maxR {
			maxR = row
		}
	}
	return n, minC, maxC, minR, maxR
}

// latticeBounds returns the bounding box of cells in lattice coordinates.
func latticeBounds(cells []int, nx int) (minC, maxC, minR, maxR int) {
	minC, minR = math.MaxInt, math.MaxInt
	maxC, maxR = math.MinInt, math.MinInt
	for _, c := range cells {
		col := c % nx
		row := c / nx
		if col < minC {
			minC = col
		}
		if col > maxC {
			maxC = col
		}
		if row < minR {
			minR = row
		}
		if row > maxR {
			maxR = row
		}
	}
	return minC, maxC, minR, maxR
}

// maxSquaredOffset bounds Δcol² + Δrow² between any cell of box a and any
// cell of box b. Empty boxes (max < min) yield 0.
func maxSquaredOffset(aMinC, aMaxC, aMinR, aMaxR, bMinC, bMaxC, bMinR, bMaxR int) int {
	if aMaxC < aMinC || bMaxC < bMinC {
		return 0
	}
	dc := aMaxC - bMinC
	if v := bMaxC - aMinC; v > dc {
		dc = v
	}
	if dc < 0 {
		dc = 0
	}
	dr := aMaxR - bMinR
	if v := bMaxR - aMinR; v > dr {
		dr = v
	}
	if dr < 0 {
		dr = 0
	}
	return dc*dc + dr*dr
}

// transition evaluates the transition model, probing with SpeedSlack to
// bridge the grid's speed quantization. Probing is a rescue path: it only
// runs when the direct evaluation is zero, so objects with ordinary speed
// spread (whose kernel support covers the speed quantum) never pay for
// it, while near-constant-speed objects stay measurable.
func (e *Estimator) transition(a geo.Point, ta float64, b geo.Point, tb float64) float64 {
	best := e.Trans(a, ta, b, tb)
	slack := e.SpeedSlack
	if best > 0 || slack <= 0 {
		return best
	}
	d := a.Dist(b)
	var dir geo.Point
	if d > 0 {
		dir = b.Sub(a).Scale(1 / d)
	} else {
		dir = geo.Point{X: 1}
	}
	for _, dd := range [2]float64{d - slack, d + slack} {
		if dd < 0 {
			dd = 0
		}
		probe := a.Add(dir.Scale(dd))
		if v := e.Trans(a, ta, probe, tb); v > best {
			best = v
		}
	}
	return best
}

// radialTransition is the radial form of transition: the same
// SpeedSlack-probing rescue, expressed purely in distances.
func (e *Estimator) radialTransition(d, dt float64) float64 {
	best := e.Radial(d, dt)
	slack := e.SpeedSlack
	if best > 0 || slack <= 0 {
		return best
	}
	for _, dd := range [2]float64{d - slack, d + slack} {
		if dd < 0 {
			dd = 0
		}
		if v := e.Radial(dd, dt); v > best {
			best = v
		}
	}
	return best
}

// cellCentersWS materializes cell centers into a reusable buffer.
func (e *Estimator) cellCentersWS(dst []geo.Point, cells []int) []geo.Point {
	if cap(dst) < len(cells) {
		dst = make([]geo.Point, len(cells))
	}
	dst = dst[:len(cells)]
	for i, c := range cells {
		dst[i] = e.Grid.Center(c)
	}
	return dst
}

// candidateCellsWS selects the cells that can carry non-negligible mass at
// time t between observations prev and next, into ws.cells. In Exact mode
// this is all of R. Otherwise the object must be reachable from *both*
// noisy observations, so the candidates are the cells within
//
//	noiseRadius + MaxSpeed·(t − t_prev)   of prev.Loc, and
//	noiseRadius + MaxSpeed·(t_next − t)   of next.Loc.
//
// With no speed bound the radii degrade to the noise support around each
// observation plus the inter-observation gap, which always connects the
// two disks.
func (e *Estimator) candidateCellsWS(ws *Workspace, prev, next model.Sample, t float64) []int {
	if e.Exact {
		n := e.Grid.N()
		ws.cells = ensureInts(ws.cells, n)
		for i := range ws.cells {
			ws.cells[i] = i
		}
		return ws.cells
	}
	nr := e.Noise.SupportRadius()
	if nr <= 0 {
		// Point-mass noise still needs at least one-cell support for the
		// in-between location; use half a cell so the candidate disks are
		// non-degenerate.
		nr = e.Grid.CellSize() / 2
	}
	var rPrev, rNext float64
	if e.MaxSpeed > 0 {
		rPrev = nr + e.MaxSpeed*(t-prev.T)
		rNext = nr + e.MaxSpeed*(next.T-t)
	} else {
		gap := prev.Loc.Dist(next.Loc)
		rPrev = nr + gap
		rNext = nr + gap
	}
	// Enumerate within the smaller disk, filter by the other.
	aLoc, aR, bLoc, bR := prev.Loc, rPrev, next.Loc, rNext
	if bR < aR {
		aLoc, aR, bLoc, bR = bLoc, bR, aLoc, aR
	}
	cand := e.Grid.CellsWithin(ws.cells[:0], aLoc, aR)
	ws.cells = cand
	out := cand[:0]
	// Filter by squared distance: CellsWithin enumerates cells the same way,
	// and skipping the sqrt per cell keeps this scan off the hot-loop
	// profile (the membership predicate d² ≤ r² is sqrt-free and exact for
	// the non-negative radii in play).
	bRR := bR * bR
	for _, c := range cand {
		if e.Grid.Center(c).Dist2(bLoc) <= bRR {
			out = append(out, c)
		}
	}
	f := (t - prev.T) / (next.T - prev.T)
	mid := prev.Loc.Lerp(next.Loc, f)
	if len(out) == 0 {
		// The disks do not intersect (observations inconsistent with the
		// speed bound). Fall back to the noise support around the
		// time-interpolated position so the distribution stays usable.
		out = e.Grid.CellsWithin(out, mid, nr)
		ws.cells = out
	}
	if e.MaxCandidateCells > 0 && len(out) > e.MaxCandidateCells {
		out = nearestCellsWS(ws, e.Grid, out, mid, e.MaxCandidateCells)
	}
	return out
}

// nearestCellsWS keeps the k cells of cand whose centers are nearest to p,
// in ascending index order, truncating cand in place. Selection is a
// deterministic O(n) partial partition on (squared distance, cell) rather
// than a full sort — squaring preserves the distance order and skips a
// sqrt per candidate; distance ties break toward the lower cell index so
// repeated runs keep identical supports.
func nearestCellsWS(ws *Workspace, g *geo.Grid, cand []int, p geo.Point, k int) []int {
	ws.dists = ensureFloats(ws.dists, len(cand))
	dists := ws.dists
	// Center(c).Dist2(p), with the center expressed directly in lattice
	// coordinates: c's center is origin + (col+0.5, row+0.5)·cellSize, so the
	// deltas are affine in (col, row) and the per-cell work is one divmod and
	// two multiply-adds — no method calls inside the scan.
	cs := g.CellSize()
	nx := g.Cols()
	ox := g.Bounds().Min.X + 0.5*cs - p.X
	oy := g.Bounds().Min.Y + 0.5*cs - p.Y
	for i, c := range cand {
		row := c / nx
		col := c - row*nx
		dx := ox + float64(col)*cs
		dy := oy + float64(row)*cs
		dists[i] = dx*dx + dy*dy
	}
	quickselectByDist(cand, dists, k)
	out := cand[:k]
	sort.Ints(out)
	return out
}

// quickselectByDist partially partitions the parallel slices (cells, dists)
// so that the k entries with the smallest (dist, cell) order come first.
// Median-of-three pivoting keeps the expected cost linear and deterministic
// for a given input.
func quickselectByDist(cells []int, dists []float64, k int) {
	lo, hi := 0, len(cells)-1
	for lo < hi {
		// Median-of-three pivot of (dist, cell), moved to lo.
		mid := lo + (hi-lo)/2
		if lessDist(dists[mid], cells[mid], dists[lo], cells[lo]) {
			swapDist(cells, dists, lo, mid)
		}
		if lessDist(dists[hi], cells[hi], dists[lo], cells[lo]) {
			swapDist(cells, dists, lo, hi)
		}
		if lessDist(dists[mid], cells[mid], dists[hi], cells[hi]) {
			swapDist(cells, dists, mid, hi)
		}
		pd, pc := dists[hi], cells[hi]
		i := lo
		for j := lo; j < hi; j++ {
			if lessDist(dists[j], cells[j], pd, pc) {
				swapDist(cells, dists, i, j)
				i++
			}
		}
		swapDist(cells, dists, i, hi)
		switch {
		case i == k || i == k-1:
			return
		case i < k:
			lo = i + 1
		default:
			hi = i - 1
		}
	}
}

func lessDist(d1 float64, c1 int, d2 float64, c2 int) bool {
	if d1 != d2 {
		return d1 < d2
	}
	return c1 < c2
}

func swapDist(cells []int, dists []float64, i, j int) {
	cells[i], cells[j] = cells[j], cells[i]
	dists[i], dists[j] = dists[j], dists[i]
}

// STP returns the scalar spatial-temporal probability STP(r, t, Tra) of
// Eq. 5 for a single cell. It is a convenience wrapper over DistAt; callers
// evaluating many cells at one timestamp should use DistAt directly.
func (e *Estimator) STP(tr model.Trajectory, cell int, t float64) (float64, error) {
	d, err := e.DistAt(tr, t)
	if err != nil {
		return 0, err
	}
	return d.Prob(cell), nil
}
