package stprob

import (
	"errors"
	"math"
	"sort"

	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/model"
)

// Transition is the transition probability P(ℓ′, t′ | ℓ, t) of an object
// moving from location a at time ta to location b at time tb. The
// personalized KDE speed model of Section IV-B (kde.SpeedModel.Transition),
// the pooled/global variant, the frequency-based Markov model
// (markov.TransitionModel.ProbPoints), and the Brownian-bridge random walk
// all satisfy this signature.
type Transition func(a geo.Point, ta float64, b geo.Point, tb float64) float64

// BrownianTransition returns the Gaussian-random-walk transition of a
// Brownian motion with diffusion scale sigmaM (m/√s):
//
//	P(b, tb | a, ta) ∝ exp(−d² / (2·σm²·|Δt|)).
//
// The paper notes the Brownian bridge is the special case of STS's
// estimation when the speed distribution is assumed Gaussian; this
// constructor makes that special case available for comparison.
func BrownianTransition(sigmaM float64) Transition {
	return func(a geo.Point, ta float64, b geo.Point, tb float64) float64 {
		dt := math.Abs(ta - tb)
		d := a.Dist(b)
		if dt == 0 {
			if d == 0 {
				return 1
			}
			return 0
		}
		v := sigmaM * sigmaM * dt
		return math.Exp(-d * d / (2 * v))
	}
}

// Estimator computes the spatial-temporal probability STP(r, t, Tra) of
// Eq. 5 for one trajectory: the probability that the object is at grid
// cell r at time t.
//
// The estimator is configured once and then queried; it is safe for
// concurrent use as long as its fields are not mutated.
type Estimator struct {
	// Grid is the spatial partitioning R.
	Grid *geo.Grid
	// Noise is the location-noise distribution f of the sensing system.
	Noise NoiseModel
	// Trans is the transition model (Eq. 7 by default).
	Trans Transition
	// MaxSpeed bounds the object's plausible speed in m/s, used only to
	// truncate the candidate-cell set between observations. Zero disables
	// speed-based truncation (candidates fall back to the noise support
	// around both bracketing observations, grown to keep them connected).
	MaxSpeed float64
	// Exact disables support truncation entirely: every sum ranges over
	// all |R| cells, exactly as written in Eq. 4. Exponentially slower on
	// large grids; used by tests and the truncation ablation bench.
	Exact bool
	// MaxCandidateCells, when positive, caps the number of candidate
	// cells evaluated between observations; the cells nearest the
	// time-interpolated position are kept. Ignored in Exact mode.
	MaxCandidateCells int
	// MaxSupportCells, when positive, caps the support of an
	// observation's noise distribution; the highest-weight cells are
	// kept (for a radial noise model, the cells nearest the
	// observation). Ignored in Exact mode.
	MaxSupportCells int
	// SpeedSlack, when positive, compensates for the quantization of
	// locations to cell centers when evaluating transitions: the
	// displacement between two cells is probed at d, d−SpeedSlack and
	// d+SpeedSlack (clamped at 0) and the best value is used. Without it,
	// a grid of cell size c can only realize speeds that are multiples of
	// ~c/Δt, and an object whose personalized speed distribution is
	// narrower than that quantum (near-constant speed) would get an
	// all-zero in-between distribution. Half the grid cell size is the
	// natural value.
	SpeedSlack float64
}

// ErrNoTransition is returned when an Estimator is queried without a
// transition model.
var ErrNoTransition = errors.New("stprob: estimator has no transition model")

// ObservedDist returns the normalized location distribution of a single
// observation: f(r, ℓ) over the noise support, the first case of Eq. 5.
func (e *Estimator) ObservedDist(obs geo.Point) Dist {
	var cells []int
	if e.Exact {
		cells = e.Grid.AllCells()
	} else {
		cells = e.Grid.CellsWithin(nil, obs, e.Noise.SupportRadius())
	}
	d := Dist{Cells: cells, Probs: make([]float64, len(cells))}
	for i, c := range cells {
		d.Probs[i] = e.Noise.Weight(e.Grid.Center(c), obs)
	}
	if !e.Exact && e.MaxSupportCells > 0 && len(d.Cells) > e.MaxSupportCells {
		d = topKByWeight(d, e.MaxSupportCells)
	}
	d.sorted()
	d.normalize()
	return d
}

// topKByWeight keeps the k highest-weight cells of d.
func topKByWeight(d Dist, k int) Dist {
	idx := make([]int, len(d.Cells))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return d.Probs[idx[a]] > d.Probs[idx[b]] })
	out := Dist{Cells: make([]int, k), Probs: make([]float64, k)}
	for i := 0; i < k; i++ {
		out.Cells[i] = d.Cells[idx[i]]
		out.Probs[i] = d.Probs[idx[i]]
	}
	return out
}

// DistAt returns the normalized spatial-temporal probability distribution
// of the object's location at time t given trajectory tr — the full
// STP(·, t, Tra) of Eq. 5:
//
//   - at an observed timestamp, the noise distribution of that observation;
//   - strictly between two observations, the Markov interpolation of
//     Eq. 4 (the denominator is constant over r and cancels under
//     normalization, the simplification Algorithm 1 exploits);
//   - outside the observation interval, the zero distribution.
func (e *Estimator) DistAt(tr model.Trajectory, t float64) (Dist, error) {
	if tr.Len() == 0 || t < tr.Start() || t > tr.End() {
		return Dist{}, nil
	}
	exact, before, after := tr.Bracket(t)
	if exact >= 0 {
		return e.ObservedDist(tr.Samples[exact].Loc), nil
	}
	if e.Trans == nil {
		return Dist{}, ErrNoTransition
	}
	prev := tr.Samples[before]
	next := tr.Samples[after]
	return e.BetweenDist(prev, next, e.ObservedDist(prev.Loc), e.ObservedDist(next.Loc), t)
}

// BetweenDist evaluates Eq. 4 for t strictly inside (prev.T, next.T),
// given the (normalized) noise distributions of the two bracketing
// observations. Callers that evaluate many timestamps against the same
// trajectory should cache those distributions (core.Prepared does); DistAt
// rebuilds them on every call.
func (e *Estimator) BetweenDist(prev, next model.Sample, suppPrev, suppNext Dist, t float64) (Dist, error) {
	if e.Trans == nil {
		return Dist{}, ErrNoTransition
	}
	cand := e.candidateCells(prev, next, t)

	prevCenters := e.cellCenters(suppPrev.Cells)
	nextCenters := e.cellCenters(suppNext.Cells)

	d := Dist{Cells: cand, Probs: make([]float64, len(cand))}
	for i, c := range cand {
		rc := e.Grid.Center(c)
		// Σ_j f(r_j, ℓ_i) · P(r_c, t | r_j, t_i)
		var sumA float64
		for j, pc := range prevCenters {
			if w := suppPrev.Probs[j]; w != 0 {
				sumA += w * e.transition(pc, prev.T, rc, t)
			}
		}
		if sumA == 0 {
			continue
		}
		// Σ_k f(r_k, ℓ_{i+1}) · P(r_k, t_{i+1} | r_c, t)
		var sumB float64
		for k, nc := range nextCenters {
			if w := suppNext.Probs[k]; w != 0 {
				sumB += w * e.transition(rc, t, nc, next.T)
			}
		}
		d.Probs[i] = sumA * sumB
	}
	d.sorted()
	d.normalize()
	return d, nil
}

// transition evaluates the transition model, probing with SpeedSlack to
// bridge the grid's speed quantization. Probing is a rescue path: it only
// runs when the direct evaluation is zero, so objects with ordinary speed
// spread (whose kernel support covers the speed quantum) never pay for
// it, while near-constant-speed objects stay measurable.
func (e *Estimator) transition(a geo.Point, ta float64, b geo.Point, tb float64) float64 {
	best := e.Trans(a, ta, b, tb)
	slack := e.SpeedSlack
	if best > 0 || slack <= 0 {
		return best
	}
	d := a.Dist(b)
	var dir geo.Point
	if d > 0 {
		dir = b.Sub(a).Scale(1 / d)
	} else {
		dir = geo.Point{X: 1}
	}
	for _, dd := range [2]float64{d - slack, d + slack} {
		if dd < 0 {
			dd = 0
		}
		probe := a.Add(dir.Scale(dd))
		if v := e.Trans(a, ta, probe, tb); v > best {
			best = v
		}
	}
	return best
}

// cellCenters materializes the centers of a cell list.
func (e *Estimator) cellCenters(cells []int) []geo.Point {
	out := make([]geo.Point, len(cells))
	for i, c := range cells {
		out[i] = e.Grid.Center(c)
	}
	return out
}

// candidateCells selects the cells that can carry non-negligible mass at
// time t between observations prev and next. In Exact mode this is all of
// R. Otherwise the object must be reachable from *both* noisy
// observations, so the candidates are the cells within
//
//	noiseRadius + MaxSpeed·(t − t_prev)   of prev.Loc, and
//	noiseRadius + MaxSpeed·(t_next − t)   of next.Loc.
//
// With no speed bound the radii degrade to the noise support around each
// observation plus the inter-observation gap, which always connects the
// two disks.
func (e *Estimator) candidateCells(prev, next model.Sample, t float64) []int {
	if e.Exact {
		return e.Grid.AllCells()
	}
	nr := e.Noise.SupportRadius()
	if nr <= 0 {
		// Point-mass noise still needs at least one-cell support for the
		// in-between location; use half a cell so the candidate disks are
		// non-degenerate.
		nr = e.Grid.CellSize() / 2
	}
	var rPrev, rNext float64
	if e.MaxSpeed > 0 {
		rPrev = nr + e.MaxSpeed*(t-prev.T)
		rNext = nr + e.MaxSpeed*(next.T-t)
	} else {
		gap := prev.Loc.Dist(next.Loc)
		rPrev = nr + gap
		rNext = nr + gap
	}
	// Enumerate within the smaller disk, filter by the other.
	aLoc, aR, bLoc, bR := prev.Loc, rPrev, next.Loc, rNext
	if bR < aR {
		aLoc, aR, bLoc, bR = bLoc, bR, aLoc, aR
	}
	cand := e.Grid.CellsWithin(nil, aLoc, aR)
	out := cand[:0]
	for _, c := range cand {
		if e.Grid.Center(c).Dist(bLoc) <= bR {
			out = append(out, c)
		}
	}
	f := (t - prev.T) / (next.T - prev.T)
	mid := prev.Loc.Lerp(next.Loc, f)
	if len(out) == 0 {
		// The disks do not intersect (observations inconsistent with the
		// speed bound). Fall back to the noise support around the
		// time-interpolated position so the distribution stays usable.
		out = e.Grid.CellsWithin(out, mid, nr)
	}
	if e.MaxCandidateCells > 0 && len(out) > e.MaxCandidateCells {
		out = nearestCells(e.Grid, out, mid, e.MaxCandidateCells)
	}
	return out
}

// nearestCells keeps the k cells of cand whose centers are nearest to p,
// returned in ascending index order.
func nearestCells(g *geo.Grid, cand []int, p geo.Point, k int) []int {
	type cd struct {
		cell int
		d    float64
	}
	all := make([]cd, len(cand))
	for i, c := range cand {
		all[i] = cd{cell: c, d: g.Center(c).Dist(p)}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].d < all[j].d })
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].cell
	}
	sort.Ints(out)
	return out
}

// STP returns the scalar spatial-temporal probability STP(r, t, Tra) of
// Eq. 5 for a single cell. It is a convenience wrapper over DistAt; callers
// evaluating many cells at one timestamp should use DistAt directly.
func (e *Estimator) STP(tr model.Trajectory, cell int, t float64) (float64, error) {
	d, err := e.DistAt(tr, t)
	if err != nil {
		return 0, err
	}
	return d.Prob(cell), nil
}
