package stprob

import "github.com/stslib/sts/internal/geo"

// RadialTransition is the radially symmetric form of a transition model:
// a transition probability that depends only on the separation distance
// between the two locations and on the time interval,
//
//	P(b, tb | a, ta) = f(dis(a, b), |ta − tb|).
//
// The KDE speed models of Eq. 7 and the Brownian random walk are radial;
// the frequency-based Markov transitions are not (they depend on the
// absolute cells). A radial transition unlocks the lattice-offset
// memoization of BetweenDist: cell centers live on a regular lattice, so
// the distance between two centers depends only on the integer offset
// (Δcol, Δrow) — in fact only on Δcol² + Δrow² — and within one
// interpolation the two time intervals are fixed, collapsing the
// candidate×support transition evaluations to one per distinct offset.
type RadialTransition func(d, dt float64) float64

// TransitionSpec bundles a transition model with its optional radial fast
// path and the speed bound used for support truncation.
type TransitionSpec struct {
	// Trans is the transition probability (required for interpolation).
	Trans Transition
	// Radial, when non-nil, must agree with Trans — same probability, in
	// the radial form — and enables the memoized evaluation.
	Radial RadialTransition
	// MaxSpeed bounds the object's plausible speed in m/s (0 = unknown).
	MaxSpeed float64
}

// memoLimit caps the size of the dense offset-memo tables (entries). With
// the squared lattice offset as the key, the tables need maxΔcol² + maxΔrow²
// entries; pathological geometries (exact mode over a multi-thousand-cell-
// wide grid) would blow that up, so beyond the limit BetweenDist falls back
// to the unmemoized evaluation rather than allocate hundreds of megabytes.
const memoLimit = 1 << 22

// Workspace holds the reusable scratch buffers of one in-between
// distribution evaluation, so steady-state scoring performs no heap
// allocations. The zero value is ready to use. A Workspace is not safe for
// concurrent use; callers thread one per goroutine (core pools them).
//
// Dist values returned by the *WS estimator methods alias the workspace and
// remain valid only until the next call with the same workspace.
type Workspace struct {
	// cells/probs back the returned Dist.
	cells []int
	probs []float64
	// dists is the distance scratch of the nearest-cells truncation.
	dists []float64
	// spCols/spRows and snCols/snRows are the lattice coordinates of the
	// prev- and next-side support cells, compacted to nonzero weights with
	// spW/snW carrying the weights at matching indexes.
	spCols, spRows []int
	snCols, snRows []int
	spW, snW       []float64
	// centers is the center scratch of the generic (non-radial) path.
	prevCenters, nextCenters []geo.Point
	// memoA/memoB are the offset-keyed transition memo tables for the
	// prev→candidate and candidate→next time intervals, epoch-stamped so
	// clearing between calls is O(1).
	memoA, memoB []memoEntry
	epoch        uint32
}

// memoEntry is one slot of an offset-keyed transition memo table. Value and
// stamp live side by side so the hot-loop lookup (which always reads both)
// touches one cache line instead of gathering from two parallel arrays.
type memoEntry struct {
	v     float64
	stamp uint32
}

// nextPow2 rounds n up to the next power of two, so scratch capacities form
// a small set of stable sizes: a workload alternating between a shrinking
// and a regrowing support would otherwise reallocate on every regrow
// (cap(s) < n each time the larger size comes back).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// ensureInts grows an int scratch slice to length n.
func ensureInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n, nextPow2(n))
	}
	return s[:n]
}

// ensureFloats grows a float scratch slice to length n.
func ensureFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n, nextPow2(n))
	}
	return s[:n]
}

// beginMemo prepares both memo tables for a fresh evaluation with squared
// offsets up to maxQ, reusing the previous allocation when large enough and
// invalidating old entries in O(1) via the epoch stamp.
func (ws *Workspace) beginMemo(maxQ int) {
	n := maxQ + 1
	if len(ws.memoA) < n {
		n = nextPow2(n)
		ws.memoA = make([]memoEntry, n)
		ws.memoB = make([]memoEntry, n)
		ws.epoch = 0
	}
	ws.epoch++
	if ws.epoch == 0 { // uint32 wraparound: stamps are stale, wipe them
		clear(ws.memoA)
		clear(ws.memoB)
		ws.epoch = 1
	}
}
