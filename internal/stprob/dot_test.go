package stprob

import (
	"math"
	"math/rand"
	"testing"
)

// naiveDot is the straight-line scalar reference for the shaped kernels: a
// three-way-switch merge with float64 accumulation and no unrolling or
// slice pinning. The BCE-shaped Dot implementations must agree with it to
// within reassociation-free tolerance (they do not reorder the
// accumulation, so the float64 kernel must match to ~1 ulp per term).
func naiveDot(aCells []int, aProbs []float64, bCells []int, bProbs []float64) float64 {
	var s float64
	i, j := 0, 0
	for i < len(aCells) && j < len(bCells) {
		switch {
		case aCells[i] < bCells[j]:
			i++
		case aCells[i] > bCells[j]:
			j++
		default:
			s += aProbs[i] * bProbs[j]
			i++
			j++
		}
	}
	return s
}

// randDist draws a sorted sparse distribution over [0, space) with the
// given support size; overlap with a partner is arranged by the shared
// cell space.
func randDist(r *rand.Rand, n, space int) Dist {
	if n == 0 {
		return Dist{}
	}
	seen := make(map[int]bool, n)
	d := Dist{}
	for len(d.Cells) < n {
		c := r.Intn(space)
		if seen[c] {
			continue
		}
		seen[c] = true
		d.Cells = append(d.Cells, c)
		d.Probs = append(d.Probs, r.Float64())
	}
	d.sorted()
	d.normalize()
	return d
}

func toDist32(d Dist) Dist32 {
	out := Dist32{Cells: d.Cells, Probs: make([]float32, len(d.Probs))}
	for i, p := range d.Probs {
		out.Probs[i] = float32(p)
	}
	return out
}

// TestDotMatchesScalarReference drives the shaped kernels against the naive
// scalar loop across the structural edge cases the pinning and branch-lean
// advance must not change: empty and singleton supports, disjoint supports,
// full aliasing (a distribution dotted with itself), and dense overlap.
func TestDotMatchesScalarReference(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	cases := []struct {
		name string
		a, b Dist
	}{
		{"both empty", Dist{}, Dist{}},
		{"one empty", Dist{}, randDist(r, 5, 40)},
		{"singletons matching", Dist{Cells: []int{3}, Probs: []float64{1}}, Dist{Cells: []int{3}, Probs: []float64{1}}},
		{"singletons disjoint", Dist{Cells: []int{3}, Probs: []float64{1}}, Dist{Cells: []int{9}, Probs: []float64{1}}},
		{"disjoint supports", Dist{Cells: []int{0, 2, 4}, Probs: []float64{0.2, 0.3, 0.5}},
			Dist{Cells: []int{1, 3, 5}, Probs: []float64{0.1, 0.4, 0.5}}},
	}
	for i := 0; i < 200; i++ {
		a := randDist(r, r.Intn(30), 60)
		b := randDist(r, r.Intn(30), 60)
		cases = append(cases, struct {
			name string
			a, b Dist
		}{"random", a, b})
		// Aliased: same backing arrays on both sides of the merge.
		cases = append(cases, struct {
			name string
			a, b Dist
		}{"aliased", a, a})
	}
	for _, c := range cases {
		want := naiveDot(c.a.Cells, c.a.Probs, c.b.Cells, c.b.Probs)
		if got := c.a.Dot(c.b); math.Abs(got-want) > 1e-12 {
			t.Errorf("%s: Dot=%v scalar=%v (|Δ|=%g)", c.name, got, want, math.Abs(got-want))
		}
		// Compact kernel: the stored probabilities are rounded to float32, so
		// the reference is the naive loop over the *widened stored* values
		// (exact to ~1 ulp), and against the original float64 values the
		// deviation budget is the per-value rounding, ≤ 2⁻²⁴ relative per
		// term — the compact mode's documented precision budget.
		a32, b32 := toDist32(c.a), toDist32(c.b)
		want32 := naiveDot(a32.Cells, a32.Dist().Probs, b32.Cells, b32.Dist().Probs)
		if got := a32.Dot(b32); math.Abs(got-want32) > 1e-12 {
			t.Errorf("%s: Dot32=%v scalar(widened)=%v", c.name, got, want32)
		}
		if got := a32.Dot(b32); math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
			t.Errorf("%s: Dot32=%v vs float64 scalar %v exceeds precision budget", c.name, got, want)
		}
	}
}

// FuzzDotMatchesScalarReference lets the fuzzer mutate support sizes, the
// shared cell space (controlling overlap density) and the seed; the shaped
// kernels must track the scalar reference everywhere.
func FuzzDotMatchesScalarReference(f *testing.F) {
	f.Add(int64(1), 5, 7, 20)
	f.Add(int64(42), 0, 3, 5)
	f.Add(int64(9), 33, 33, 34)
	f.Fuzz(func(t *testing.T, seed int64, na, nb, space int) {
		if na < 0 || nb < 0 || na > 200 || nb > 200 || space < na || space < nb || space > 4000 {
			t.Skip()
		}
		r := rand.New(rand.NewSource(seed))
		a, b := randDist(r, na, space), randDist(r, nb, space)
		want := naiveDot(a.Cells, a.Probs, b.Cells, b.Probs)
		if got := a.Dot(b); math.Abs(got-want) > 1e-12 {
			t.Fatalf("Dot=%v scalar=%v", got, want)
		}
		a32, b32 := toDist32(a), toDist32(b)
		if got := a32.Dot(b32); math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
			t.Fatalf("Dot32=%v vs float64 scalar %v exceeds precision budget", got, want)
		}
	})
}
