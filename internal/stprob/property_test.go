package stprob

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/kde"
	"github.com/stslib/sts/internal/model"
)

// randomWalkTrajectory derives a plausible random trajectory from a seed.
func randomWalkTrajectory(seed int64) model.Trajectory {
	rng := rand.New(rand.NewSource(seed))
	n := 3 + rng.Intn(8)
	tr := model.Trajectory{ID: "rw"}
	t := rng.Float64() * 50
	p := geo.Point{X: 20 + rng.Float64()*60, Y: 20 + rng.Float64()*60}
	for i := 0; i < n; i++ {
		tr.Samples = append(tr.Samples, model.Sample{Loc: p, T: t})
		t += 5 + rng.Float64()*20
		p.X += rng.NormFloat64() * 8
		p.Y += rng.NormFloat64() * 8
	}
	return tr
}

// TestDistAtAlwaysNormalizedOrZero: whatever the trajectory and query
// time, the returned distribution either carries no mass or sums to 1.
func TestDistAtAlwaysNormalizedOrZero(t *testing.T) {
	g, err := geo.NewGrid(geo.NewRect(geo.Point{X: -40, Y: -40}, geo.Point{X: 140, Y: 140}), 5)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, tRaw float64) bool {
		tr := randomWalkTrajectory(seed)
		sm, err := kde.NewSpeedModel(tr)
		if err != nil {
			return false
		}
		e := &Estimator{Grid: g, Noise: GaussianNoise{Sigma: 4}, Trans: sm.Transition, MaxSpeed: sm.MaxSpeed()}
		// Query anywhere in and slightly beyond the observation window.
		span := tr.End() - tr.Start()
		q := tr.Start() + math.Mod(math.Abs(tRaw), 1.4)*span - 0.2*span
		d, err := e.DistAt(tr, q)
		if err != nil {
			return false
		}
		if d.IsZero() {
			return true
		}
		sum := d.Sum()
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		for _, p := range d.Probs {
			if p < 0 || p > 1+1e-12 || math.IsNaN(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestDistAtSupportSorted: cells of any returned distribution are strictly
// ascending, the invariant Dot relies on.
func TestDistAtSupportSorted(t *testing.T) {
	g, err := geo.NewGrid(geo.NewRect(geo.Point{X: -40, Y: -40}, geo.Point{X: 140, Y: 140}), 5)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		tr := randomWalkTrajectory(seed)
		sm, err := kde.NewSpeedModel(tr)
		if err != nil {
			return false
		}
		e := &Estimator{Grid: g, Noise: GaussianNoise{Sigma: 4}, Trans: sm.Transition, MaxSpeed: sm.MaxSpeed()}
		mid := (tr.Start() + tr.End()) / 2
		d, err := e.DistAt(tr, mid)
		if err != nil {
			return false
		}
		for i := 1; i < len(d.Cells); i++ {
			if d.Cells[i] <= d.Cells[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestObservedDistConcentratesWithSmallSigma: shrinking the noise scale
// concentrates the observed distribution (its max probability grows).
func TestObservedDistConcentratesWithSmallSigma(t *testing.T) {
	g, err := geo.NewGrid(geo.NewRect(geo.Point{X: -40, Y: -40}, geo.Point{X: 140, Y: 140}), 5)
	if err != nil {
		t.Fatal(err)
	}
	obs := geo.Point{X: 52, Y: 47}
	maxProb := func(sigma float64) float64 {
		e := &Estimator{Grid: g, Noise: GaussianNoise{Sigma: sigma}}
		d := e.ObservedDist(obs)
		var m float64
		for _, p := range d.Probs {
			if p > m {
				m = p
			}
		}
		return m
	}
	if !(maxProb(1) > maxProb(5) && maxProb(5) > maxProb(20)) {
		t.Errorf("mode not monotone in sigma: %v %v %v", maxProb(1), maxProb(5), maxProb(20))
	}
}
