package stprob

// This file holds the sparse dot-product kernels: the innermost arithmetic
// of every profiled pair score (one Dot per shared bucket) and of the
// co-location probability of Eq. 9. Both variants are written for
// bounds-check elimination: the prob arrays are pinned to the cell arrays'
// lengths up front, so inside the merge the cursor comparisons that guard
// the loop also prove every index in range (`go build -gcflags=-d=ssa/check_bce`
// reports no checks in the loop bodies; scripts/check_bce.sh gates this).
//
// The cursor advance is written as two independent `<=` conditions instead
// of a three-way switch: each compiles to a flag-setting compare the
// branch predictor handles independently, and on the frequent cell-match
// step both advance without a second branch round.

// Dot returns Σ_r d[r]·e[r], the co-location probability of two normalized
// location distributions at one timestamp (Eq. 9). Both distributions must
// have their cells sorted ascending, which every constructor in this
// package guarantees.
func (d Dist) Dot(e Dist) float64 {
	dc, ec := d.Cells, e.Cells
	if len(d.Probs) < len(dc) || len(e.Probs) < len(ec) {
		return 0 // unreachable: Dist invariants pair every cell with a prob
	}
	dp := d.Probs[:len(dc)]
	ep := e.Probs[:len(ec)]
	var s float64
	i, j := 0, 0
	for i < len(dc) && j < len(ec) {
		a, b := dc[i], ec[j]
		if a == b {
			s += dp[i] * ep[j]
		}
		if a <= b {
			i++
		}
		if b <= a {
			j++
		}
	}
	return s
}

// Dist32 is the float32-backed form of Dist, the storage mode of compact
// S-T profiles (core.ProfileOptions.Compact): cells stay full-width ints,
// probabilities are stored in float32 — halving the dominant memory cost of
// a cached profile — and all arithmetic over them runs in float64.
type Dist32 struct {
	Cells []int
	Probs []float32
}

// IsZero reports whether the distribution carries no mass.
func (d Dist32) IsZero() bool { return len(d.Cells) == 0 }

// Sum returns the total mass, accumulated in float64.
func (d Dist32) Sum() float64 {
	var s float64
	for _, p := range d.Probs {
		s += float64(p)
	}
	return s
}

// Dist widens d to a float64-backed Dist with fresh storage, for
// introspection paths that predate the compact mode.
func (d Dist32) Dist() Dist {
	if d.IsZero() {
		return Dist{}
	}
	src := d.Probs
	probs := make([]float64, len(src))
	for i, p := range src {
		probs[i] = float64(p)
	}
	return Dist{Cells: d.Cells, Probs: probs}
}

// Dot returns Σ_r d[r]·e[r] over two compact distributions. Each product
// widens its float32 operands to float64 and the accumulation runs entirely
// in float64, so the only precision loss against the float64 kernel is the
// one-time rounding of each stored probability (≤ 2⁻²⁴ relative per value —
// the compact mode's documented deviation budget derives from exactly this
// term).
func (d Dist32) Dot(e Dist32) float64 {
	dc, ec := d.Cells, e.Cells
	if len(d.Probs) < len(dc) || len(e.Probs) < len(ec) {
		return 0 // unreachable: Dist32 invariants pair every cell with a prob
	}
	dp := d.Probs[:len(dc)]
	ep := e.Probs[:len(ec)]
	var s float64
	i, j := 0, 0
	for i < len(dc) && j < len(ec) {
		a, b := dc[i], ec[j]
		if a == b {
			s += float64(dp[i]) * float64(ep[j])
		}
		if a <= b {
			i++
		}
		if b <= a {
			j++
		}
	}
	return s
}
