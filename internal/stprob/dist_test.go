package stprob

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDistProb(t *testing.T) {
	d := Dist{Cells: []int{2, 5, 9}, Probs: []float64{0.2, 0.5, 0.3}}
	if got := d.Prob(5); got != 0.5 {
		t.Errorf("Prob(5)=%v", got)
	}
	if got := d.Prob(3); got != 0 {
		t.Errorf("Prob(3)=%v", got)
	}
	if got := d.Prob(9); got != 0.3 {
		t.Errorf("Prob(9)=%v", got)
	}
}

func TestDistSumAndIsZero(t *testing.T) {
	var zero Dist
	if !zero.IsZero() || zero.Sum() != 0 {
		t.Error("zero value not zero")
	}
	d := Dist{Cells: []int{1, 2}, Probs: []float64{0.4, 0.6}}
	if d.IsZero() || math.Abs(d.Sum()-1) > 1e-12 {
		t.Errorf("Sum=%v", d.Sum())
	}
}

// bruteDot computes the dot product through a map.
func bruteDot(a, b Dist) float64 {
	m := map[int]float64{}
	for i, c := range a.Cells {
		m[c] = a.Probs[i]
	}
	var s float64
	for i, c := range b.Cells {
		s += m[c] * b.Probs[i]
	}
	return s
}

func TestDotMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		mk := func() Dist {
			n := rng.Intn(20)
			seen := map[int]bool{}
			var d Dist
			for len(d.Cells) < n {
				c := rng.Intn(30)
				if seen[c] {
					continue
				}
				seen[c] = true
				d.Cells = append(d.Cells, c)
				d.Probs = append(d.Probs, rng.Float64())
			}
			d.sorted()
			return d
		}
		a, b := mk(), mk()
		got := a.Dot(b)
		want := bruteDot(a, b)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d: Dot=%v brute=%v", trial, got, want)
		}
	}
}

func TestDotSymmetric(t *testing.T) {
	f := func(cellsA, cellsB []uint8) bool {
		mk := func(cells []uint8) Dist {
			seen := map[int]bool{}
			var d Dist
			for i, c := range cells {
				cc := int(c % 40)
				if seen[cc] {
					continue
				}
				seen[cc] = true
				d.Cells = append(d.Cells, cc)
				d.Probs = append(d.Probs, float64(i%7)+0.5)
			}
			d.sorted()
			return d
		}
		a, b := mk(cellsA), mk(cellsB)
		return math.Abs(a.Dot(b)-b.Dot(a)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalize(t *testing.T) {
	d := Dist{Cells: []int{1, 2, 3}, Probs: []float64{1, 2, 1}}
	d.normalize()
	if math.Abs(d.Sum()-1) > 1e-12 {
		t.Errorf("Sum=%v after normalize", d.Sum())
	}
	if math.Abs(d.Probs[1]-0.5) > 1e-12 {
		t.Errorf("Probs=%v", d.Probs)
	}
	// Zero mass collapses to the zero distribution.
	z := Dist{Cells: []int{1}, Probs: []float64{0}}
	z.normalize()
	if !z.IsZero() {
		t.Error("zero-mass distribution did not collapse")
	}
}

func TestSorted(t *testing.T) {
	d := Dist{Cells: []int{9, 1, 5}, Probs: []float64{0.9, 0.1, 0.5}}
	d.sorted()
	want := []int{1, 5, 9}
	for i, c := range d.Cells {
		if c != want[i] {
			t.Fatalf("Cells=%v", d.Cells)
		}
		if d.Probs[i] != float64(c)/10 {
			t.Fatalf("probs lost pairing: %v", d.Probs)
		}
	}
	// Already sorted input is untouched (fast path).
	e := Dist{Cells: []int{1, 2}, Probs: []float64{0.5, 0.5}}
	e.sorted()
	if e.Cells[0] != 1 || e.Cells[1] != 2 {
		t.Error("sorted() disturbed a sorted dist")
	}
}

func TestTopKByWeight(t *testing.T) {
	d := Dist{Cells: []int{1, 2, 3, 4}, Probs: []float64{0.1, 0.4, 0.2, 0.3}}
	top := topKByWeight(d, 2)
	if len(top.Cells) != 2 {
		t.Fatalf("kept %d", len(top.Cells))
	}
	got := map[int]bool{top.Cells[0]: true, top.Cells[1]: true}
	if !got[2] || !got[4] {
		t.Errorf("kept cells %v want {2,4}", top.Cells)
	}
}
