// Package stprob implements the spatial-temporal probability estimation of
// Section IV: the probability distribution of an object's location over
// grid cells at an arbitrary time t, given its trajectory, under location
// noise (Eq. 3–5) and a pluggable transition model (Eq. 7).
package stprob

import (
	"math"

	"github.com/stslib/sts/internal/geo"
)

// NoiseModel describes the location-noise distribution f of the sensing
// system: given that the object was *observed* at obs, Weight returns the
// unnormalized likelihood that its true position is at cell center c.
// Weights are normalized per observation by the estimator (Algorithm 1
// normalizes in exactly the same way), so only relative values matter.
//
// SupportRadius bounds the support: cells farther than SupportRadius from
// the observation carry negligible mass and may be skipped. A radius of 0
// means the observation is exact (a point mass on its cell).
type NoiseModel interface {
	Weight(c, obs geo.Point) float64
	SupportRadius() float64
}

// GaussianNoise is the Gaussian location-noise model of Eq. 3, the standard
// model for GPS and WiFi-fingerprint localization error. Sigma is the noise
// scale in meters. TruncSigmas controls support truncation: cells beyond
// TruncSigmas·Sigma are treated as zero (a value of 4 keeps all but ~3e-4
// of an axis mass; 0 selects the default).
//
// Note: the paper's Eq. 3 prints exp(−dis(ℓ,r)/(2σ²)); the standard
// bivariate Gaussian uses the squared distance, exp(−dis²/(2σ²)). We use
// the squared form. Because Algorithm 1 normalizes the weights per
// timestamp, both choices induce very similar rankings; the squared form is
// the one every cited localization reference actually uses.
type GaussianNoise struct {
	Sigma       float64
	TruncSigmas float64
}

// DefaultTruncSigmas is the support-truncation radius in sigmas used when
// GaussianNoise.TruncSigmas is zero.
const DefaultTruncSigmas = 4.0

// Weight implements NoiseModel.
func (g GaussianNoise) Weight(c, obs geo.Point) float64 {
	d := c.Dist(obs)
	return math.Exp(-d * d / (2 * g.Sigma * g.Sigma))
}

// SupportRadius implements NoiseModel.
func (g GaussianNoise) SupportRadius() float64 {
	k := g.TruncSigmas
	if k <= 0 {
		k = DefaultTruncSigmas
	}
	return k * g.Sigma
}

// UniformNoise spreads the observation uniformly over all cells within
// Radius meters — a worst-case noise model with bounded support.
type UniformNoise struct {
	Radius float64
}

// Weight implements NoiseModel.
func (u UniformNoise) Weight(c, obs geo.Point) float64 {
	if c.Dist(obs) <= u.Radius {
		return 1
	}
	return 0
}

// SupportRadius implements NoiseModel.
func (u UniformNoise) SupportRadius() float64 { return u.Radius }

// PointNoise treats every observation as exact: the full probability mass
// sits on the cell containing the observed location. This is the noise
// model of the STS-N ablation variant ("each location is regarded as a
// deterministic spatial point instead of a probability distribution").
type PointNoise struct{}

// Weight implements NoiseModel. With a zero support radius the estimator
// only ever evaluates the observation's own cell, so the weight is
// constant.
func (PointNoise) Weight(c, obs geo.Point) float64 { return 1 }

// SupportRadius implements NoiseModel.
func (PointNoise) SupportRadius() float64 { return 0 }
