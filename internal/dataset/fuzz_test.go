package dataset

import (
	"strings"
	"testing"
)

// FuzzRead feeds arbitrary bytes to the CSV decoder: whatever the input,
// Read must either return an error or a dataset that validates, and a
// successful parse must survive a write/read round trip.
func FuzzRead(f *testing.F) {
	f.Add("id,t,x,y\na,0,1,2\na,5,3,4\n")
	f.Add("id,t,x,y\n")
	f.Add("")
	f.Add("id,t,x,y\nb,1e300,-1e300,0\n")
	f.Add("id,t,x,y\na,nan,1,1\n")
	f.Add("id,t,x,y\na,0,1\n")
	f.Add("not,a,header,row\nx,y,z,w\n")
	f.Add("id,t,x,y\n\"a\"\"b\",1,2,3\n")
	f.Fuzz(func(t *testing.T, input string) {
		ds, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		if vErr := ds.Validate(); vErr != nil {
			t.Fatalf("Read accepted an invalid dataset: %v", vErr)
		}
		var sb strings.Builder
		if err := Write(&sb, ds); err != nil {
			t.Fatalf("Write failed on parsed dataset: %v", err)
		}
		back, err := Read(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(back) != len(ds) {
			t.Fatalf("round trip changed trajectory count: %d vs %d", len(back), len(ds))
		}
	})
}
