// Package dataset reads and writes trajectory datasets as CSV, the
// interchange format the command-line tools use.
//
// The format is one sample per row with a header:
//
//	id,t,x,y
//	taxi-0001,0.0,1200.5,900.25
//
// Rows of the same id must be contiguous or will be grouped. Sample
// time-ordering is validated on load: out-of-order samples are sorted by
// default, or rejected with an error naming the trajectory and offending
// timestamp when ReadOptions.RejectUnsorted is set. Duplicate timestamps
// within a trajectory are always rejected — downstream S-T probability
// interpolation is undefined on them.
package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"

	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/model"
)

// Write encodes ds to w in CSV form.
func Write(w io.Writer, ds model.Dataset) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "t", "x", "y"}); err != nil {
		return fmt.Errorf("dataset: write header: %w", err)
	}
	row := make([]string, 4)
	for _, tr := range ds {
		for _, s := range tr.Samples {
			row[0] = tr.ID
			row[1] = strconv.FormatFloat(s.T, 'g', -1, 64)
			row[2] = strconv.FormatFloat(s.Loc.X, 'g', -1, 64)
			row[3] = strconv.FormatFloat(s.Loc.Y, 'g', -1, 64)
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("dataset: write row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFile writes ds to the named file, creating or truncating it.
func WriteFile(path string, ds model.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, ds); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Writer encodes trajectories to CSV one at a time, so producers of large
// corpora (stsgen's synthetic mode, snapshot exports) never hold the whole
// dataset in memory. The header is written lazily before the first
// trajectory; call Flush once at the end.
type Writer struct {
	cw     *csv.Writer
	row    []string
	headed bool
}

// NewWriter returns a Writer encoding to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{cw: csv.NewWriter(w), row: make([]string, 4)}
}

// Write appends one trajectory's samples.
func (w *Writer) Write(tr model.Trajectory) error {
	if !w.headed {
		if err := w.cw.Write([]string{"id", "t", "x", "y"}); err != nil {
			return fmt.Errorf("dataset: write header: %w", err)
		}
		w.headed = true
	}
	for _, s := range tr.Samples {
		w.row[0] = tr.ID
		w.row[1] = strconv.FormatFloat(s.T, 'g', -1, 64)
		w.row[2] = strconv.FormatFloat(s.Loc.X, 'g', -1, 64)
		w.row[3] = strconv.FormatFloat(s.Loc.Y, 'g', -1, 64)
		if err := w.cw.Write(w.row); err != nil {
			return fmt.Errorf("dataset: write row: %w", err)
		}
	}
	return nil
}

// Flush writes any buffered rows through (and the header, for an empty
// stream) and reports the first error of the whole write sequence.
func (w *Writer) Flush() error {
	if !w.headed {
		if err := w.cw.Write([]string{"id", "t", "x", "y"}); err != nil {
			return fmt.Errorf("dataset: write header: %w", err)
		}
		w.headed = true
	}
	w.cw.Flush()
	return w.cw.Error()
}

// ReadOptions configures the time-ordering policy of the readers.
type ReadOptions struct {
	// RejectUnsorted returns an error for trajectories whose samples are
	// out of time order, instead of the default of sorting them. Strict
	// ingestion catches corrupted or mis-merged feeds at the boundary,
	// where the trajectory and timestamps can still be named, rather than
	// as undefined S-T interpolation downstream.
	RejectUnsorted bool
}

// Normalize applies the ordering policy and the structural validation to a
// freshly decoded trajectory, wrapping violations in errors that name the
// trajectory and the offending timestamps. Every ingestion boundary — the
// CSV and JSON readers here, and the HTTP server's trajectory endpoints —
// routes through it so "strict" means the same thing everywhere.
func Normalize(tr *model.Trajectory, opts ReadOptions) error {
	for i := 1; i < len(tr.Samples); i++ {
		if tr.Samples[i].T < tr.Samples[i-1].T {
			if opts.RejectUnsorted {
				return fmt.Errorf("dataset: trajectory %q: sample %d out of time order (t=%v precedes t=%v); sort the input or load without strict ordering",
					tr.ID, i, tr.Samples[i].T, tr.Samples[i-1].T)
			}
			tr.SortByTime()
			break
		}
	}
	if err := tr.Validate(); err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	return nil
}

// Read decodes a dataset from r. Trajectories appear in order of first
// occurrence of their id; each trajectory's samples are sorted by time.
func Read(r io.Reader) (model.Dataset, error) {
	return ReadWith(r, ReadOptions{})
}

// ReadWith is Read with an explicit time-ordering policy.
func ReadWith(r io.Reader, opts ReadOptions) (model.Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	header, err := cr.Read()
	if err == io.EOF {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("dataset: read header: %w", err)
	}
	if header[0] != "id" || header[1] != "t" || header[2] != "x" || header[3] != "y" {
		return nil, fmt.Errorf("dataset: unexpected header %v, want [id t x y]", header)
	}
	index := make(map[string]int)
	var ds model.Dataset
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		t, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: bad t %q: %w", line, rec[1], err)
		}
		x, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: bad x %q: %w", line, rec[2], err)
		}
		y, err := strconv.ParseFloat(rec[3], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: bad y %q: %w", line, rec[3], err)
		}
		i, ok := index[rec[0]]
		if !ok {
			i = len(ds)
			index[rec[0]] = i
			ds = append(ds, model.Trajectory{ID: rec[0]})
		}
		ds[i].Samples = append(ds[i].Samples, model.Sample{Loc: geo.Point{X: x, Y: y}, T: t})
	}
	for i := range ds {
		if err := Normalize(&ds[i], opts); err != nil {
			return nil, err
		}
	}
	return ds, nil
}

// Stream decodes trajectories from r one at a time, calling fn as soon as
// each trajectory's rows end, so ingestion peaks at one trajectory of
// boxed samples instead of the whole dataset (the cold-boot path of a
// store-backed server). Unlike ReadWith, rows of the same id must be
// contiguous: an id that re-appears after other ids is an error (grouping
// it would require buffering everything). Each trajectory is normalized
// (ordering policy + validation) before fn sees it; an error from fn
// aborts the stream.
func Stream(r io.Reader, opts ReadOptions, fn func(model.Trajectory) error) error {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err == io.EOF {
		return nil
	}
	if err != nil {
		return fmt.Errorf("dataset: read header: %w", err)
	}
	if header[0] != "id" || header[1] != "t" || header[2] != "x" || header[3] != "y" {
		return fmt.Errorf("dataset: unexpected header %v, want [id t x y]", header)
	}
	seen := make(map[string]bool)
	var cur model.Trajectory
	emit := func() error {
		if cur.ID == "" {
			return nil
		}
		if err := Normalize(&cur, opts); err != nil {
			return err
		}
		if err := fn(cur); err != nil {
			return err
		}
		cur = model.Trajectory{}
		return nil
	}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("dataset: line %d: %w", line, err)
		}
		t, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return fmt.Errorf("dataset: line %d: bad t %q: %w", line, rec[1], err)
		}
		x, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return fmt.Errorf("dataset: line %d: bad x %q: %w", line, rec[2], err)
		}
		y, err := strconv.ParseFloat(rec[3], 64)
		if err != nil {
			return fmt.Errorf("dataset: line %d: bad y %q: %w", line, rec[3], err)
		}
		if rec[0] != cur.ID {
			if seen[rec[0]] {
				return fmt.Errorf("dataset: line %d: rows of trajectory %q are not contiguous (streaming ingestion requires grouped rows; use Read for scattered ids)", line, rec[0])
			}
			if err := emit(); err != nil {
				return err
			}
			cur.ID = string([]byte(rec[0])) // rec is reused; force a copy
			seen[cur.ID] = true
		}
		cur.Samples = append(cur.Samples, model.Sample{Loc: geo.Point{X: x, Y: y}, T: t})
	}
	return emit()
}

// StreamFile is Stream over the named file.
func StreamFile(path string, opts ReadOptions, fn func(model.Trajectory) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return Stream(f, opts, fn)
}

// ReadFile reads a dataset from the named file.
func ReadFile(path string) (model.Dataset, error) {
	return ReadFileWith(path, ReadOptions{})
}

// ReadFileWith is ReadFile with an explicit time-ordering policy.
func ReadFileWith(path string, opts ReadOptions) (model.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadWith(f, opts)
}
