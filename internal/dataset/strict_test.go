package dataset

import (
	"strings"
	"testing"
)

const unsortedCSV = "id,t,x,y\n" +
	"a,10,1,1\n" +
	"a,5,2,2\n" +
	"a,20,3,3\n"

const unsortedJSON = `[{"id":"a","samples":[[10,1,1],[5,2,2],[20,3,3]]}]`

func TestReadSortsOutOfOrderByDefault(t *testing.T) {
	ds, err := Read(strings.NewReader(unsortedCSV))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 || ds[0].Len() != 3 {
		t.Fatalf("got %v", ds)
	}
	for i := 1; i < ds[0].Len(); i++ {
		if ds[0].Samples[i].T < ds[0].Samples[i-1].T {
			t.Fatalf("samples not sorted: %v", ds[0].Samples)
		}
	}
}

func TestReadWithRejectUnsorted(t *testing.T) {
	_, err := ReadWith(strings.NewReader(unsortedCSV), ReadOptions{RejectUnsorted: true})
	if err == nil {
		t.Fatal("out-of-order samples accepted in strict mode")
	}
	for _, want := range []string{`"a"`, "out of time order", "t=5"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not name %q", err, want)
		}
	}
}

func TestReadJSONWithRejectUnsorted(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(unsortedJSON)); err != nil {
		t.Fatalf("lenient JSON read: %v", err)
	}
	_, err := ReadJSONWith(strings.NewReader(unsortedJSON), ReadOptions{RejectUnsorted: true})
	if err == nil {
		t.Fatal("out-of-order samples accepted in strict mode")
	}
	if !strings.Contains(err.Error(), "out of time order") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestReadRejectsDuplicateTimestampsEitherWay(t *testing.T) {
	dup := "id,t,x,y\na,5,1,1\na,5,2,2\n"
	for _, opts := range []ReadOptions{{}, {RejectUnsorted: true}} {
		if _, err := ReadWith(strings.NewReader(dup), opts); err == nil {
			t.Errorf("duplicate timestamps accepted with %+v", opts)
		}
	}
}

func TestSortedInputPassesStrict(t *testing.T) {
	sorted := "id,t,x,y\na,1,1,1\na,2,2,2\n"
	ds, err := ReadWith(strings.NewReader(sorted), ReadOptions{RejectUnsorted: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 || ds[0].Len() != 2 {
		t.Fatalf("got %v", ds)
	}
}
