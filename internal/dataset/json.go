package dataset

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/model"
)

// jsonTrajectory is the compact wire form: one object per trajectory with
// samples as [t, x, y] triples.
type jsonTrajectory struct {
	ID      string       `json:"id"`
	Samples [][3]float64 `json:"samples"`
}

// WriteJSON encodes ds as a JSON array of {id, samples:[[t,x,y]…]}
// objects — a convenient interchange form for web tooling; CSV (Write)
// stays the canonical format for large corpora.
func WriteJSON(w io.Writer, ds model.Dataset) error {
	out := make([]jsonTrajectory, len(ds))
	for i, tr := range ds {
		jt := jsonTrajectory{ID: tr.ID, Samples: make([][3]float64, tr.Len())}
		for j, s := range tr.Samples {
			jt.Samples[j] = [3]float64{s.T, s.Loc.X, s.Loc.Y}
		}
		out[i] = jt
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("dataset: encode json: %w", err)
	}
	return nil
}

// ReadJSON decodes a dataset written by WriteJSON. Samples are sorted by
// time and validated.
func ReadJSON(r io.Reader) (model.Dataset, error) {
	return ReadJSONWith(r, ReadOptions{})
}

// ReadJSONWith is ReadJSON with an explicit time-ordering policy: out-of-
// order samples are sorted by default, or rejected with an error naming
// the trajectory when opts.RejectUnsorted is set.
func ReadJSONWith(r io.Reader, opts ReadOptions) (model.Dataset, error) {
	var in []jsonTrajectory
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("dataset: decode json: %w", err)
	}
	ds := make(model.Dataset, len(in))
	for i, jt := range in {
		tr := model.Trajectory{ID: jt.ID, Samples: make([]model.Sample, len(jt.Samples))}
		for j, s := range jt.Samples {
			tr.Samples[j] = model.Sample{T: s[0], Loc: geo.Point{X: s[1], Y: s[2]}}
		}
		if err := Normalize(&tr, opts); err != nil {
			return nil, err
		}
		ds[i] = tr
	}
	return ds, nil
}

// WriteJSONFile writes ds to the named file as JSON.
func WriteJSONFile(path string, ds model.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteJSON(f, ds); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadJSONFile reads a JSON dataset from the named file.
func ReadJSONFile(path string) (model.Dataset, error) {
	return ReadJSONFileWith(path, ReadOptions{})
}

// ReadJSONFileWith is ReadJSONFile with an explicit time-ordering policy.
func ReadJSONFileWith(path string, opts ReadOptions) (model.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSONWith(f, opts)
}
