package dataset

import (
	"path/filepath"
	"strings"
	"testing"

	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/model"
)

func sample(x, y, t float64) model.Sample {
	return model.Sample{Loc: geo.Point{X: x, Y: y}, T: t}
}

func testDataset() model.Dataset {
	return model.Dataset{
		{ID: "a", Samples: []model.Sample{sample(1, 2, 0), sample(3.5, -4.25, 15)}},
		{ID: "b", Samples: []model.Sample{sample(100, 200, 7)}},
	}
}

func TestRoundTrip(t *testing.T) {
	ds := testDataset()
	var sb strings.Builder
	if err := Write(&sb, ds); err != nil {
		t.Fatal(err)
	}
	got, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ds) {
		t.Fatalf("got %d trajectories", len(got))
	}
	for i := range ds {
		if got[i].ID != ds[i].ID || got[i].Len() != ds[i].Len() {
			t.Fatalf("trajectory %d mismatch", i)
		}
		for j := range ds[i].Samples {
			if got[i].Samples[j] != ds[i].Samples[j] {
				t.Fatalf("sample %d/%d: %v vs %v", i, j, got[i].Samples[j], ds[i].Samples[j])
			}
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ds.csv")
	ds := testDataset()
	if err := WriteFile(path, ds); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != "a" {
		t.Fatalf("got %v", got)
	}
}

func TestReadSortsOutOfOrderRows(t *testing.T) {
	in := "id,t,x,y\na,10,1,1\na,5,0,0\n"
	ds, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if ds[0].Samples[0].T != 5 || ds[0].Samples[1].T != 10 {
		t.Errorf("rows not sorted: %v", ds[0].Samples)
	}
}

func TestReadGroupsInterleavedIDs(t *testing.T) {
	in := "id,t,x,y\na,0,0,0\nb,0,9,9\na,1,1,1\n"
	ds, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 || ds[0].ID != "a" || ds[0].Len() != 2 || ds[1].ID != "b" {
		t.Errorf("grouping failed: %v", ds)
	}
}

func TestReadErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"bad header", "foo,bar,baz,qux\n"},
		{"bad t", "id,t,x,y\na,xx,1,1\n"},
		{"bad x", "id,t,x,y\na,0,xx,1\n"},
		{"bad y", "id,t,x,y\na,0,1,xx\n"},
		{"wrong field count", "id,t,x,y\na,0,1\n"},
		{"duplicate timestamps", "id,t,x,y\na,0,1,1\na,0,2,2\n"},
	}
	for _, tt := range tests {
		if _, err := Read(strings.NewReader(tt.in)); err == nil {
			t.Errorf("%s: no error", tt.name)
		}
	}
}

func TestReadEmpty(t *testing.T) {
	ds, err := Read(strings.NewReader(""))
	if err != nil || ds != nil {
		t.Errorf("empty input: %v, %v", ds, err)
	}
	ds, err = Read(strings.NewReader("id,t,x,y\n"))
	if err != nil || len(ds) != 0 {
		t.Errorf("header only: %v, %v", ds, err)
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.csv")); err == nil {
		t.Error("missing file: no error")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	ds := testDataset()
	var sb strings.Builder
	if err := WriteJSON(&sb, ds); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ds) {
		t.Fatalf("got %d trajectories", len(got))
	}
	for i := range ds {
		if got[i].ID != ds[i].ID || got[i].Len() != ds[i].Len() {
			t.Fatalf("trajectory %d mismatch", i)
		}
		for j := range ds[i].Samples {
			if got[i].Samples[j] != ds[i].Samples[j] {
				t.Fatalf("sample %d/%d differs", i, j)
			}
		}
	}
}

func TestJSONFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ds.json")
	if err := WriteJSONFile(path, testDataset()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d", len(got))
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Error("malformed json accepted")
	}
	// Unsorted samples are repaired; duplicates rejected.
	in := `[{"id":"a","samples":[[10,1,1],[5,0,0]]}]`
	ds, err := ReadJSON(strings.NewReader(in))
	if err != nil || ds[0].Samples[0].T != 5 {
		t.Errorf("sorting on read: %v %v", ds, err)
	}
	dup := `[{"id":"a","samples":[[5,1,1],[5,0,0]]}]`
	if _, err := ReadJSON(strings.NewReader(dup)); err == nil {
		t.Error("duplicate timestamps accepted")
	}
	empty := `[{"id":"a","samples":[]}]`
	if _, err := ReadJSON(strings.NewReader(empty)); err == nil {
		t.Error("empty trajectory accepted")
	}
}
