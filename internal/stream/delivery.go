package stream

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"time"
)

// deliver is one watch's delivery loop: drain the bounded queue, POST each
// alert to the watch's webhook, retry transient failures with capped
// jittered exponential backoff, and dead-letter alerts that exhaust their
// attempts. It exits when the watch is deleted or the registry closes.
func (r *Registry) deliver(ws *watchState) {
	defer r.wg.Done()
	client := &http.Client{Timeout: r.opts.WebhookTimeout}
	for {
		select {
		case <-ws.stop:
			return
		case a := <-ws.queue:
			r.deliverOne(client, ws, a)
		}
	}
}

// deliverOne pushes one alert through the retry schedule. The webhook URL
// is re-read from the watch config per attempt, so a Set that retargets
// the watch redirects in-flight retries too.
func (r *Registry) deliverOne(client *http.Client, ws *watchState, a Alert) {
	backoff := r.opts.BaseBackoff
	for attempt := 1; ; attempt++ {
		url := ws.config().Webhook
		if url == "" {
			// Retargeted to "no webhook" mid-flight: the alert is already
			// counted; nothing left to deliver.
			return
		}
		if err := post(client, url, a); err == nil {
			ws.delivered.Add(1)
			return
		}
		if attempt >= r.opts.MaxAttempts {
			ws.deadLettered.Add(1)
			return
		}
		ws.retries.Add(1)
		// Full jitter on the current rung: sleep U[backoff/2, backoff],
		// then double toward the cap. Decorrelates retry storms across
		// watches without stretching the worst case.
		sleep := backoff/2 + time.Duration(rand.Int64N(int64(backoff/2)+1))
		select {
		case <-ws.stop:
			return
		case <-time.After(sleep):
		}
		backoff *= 2
		if backoff > r.opts.MaxBackoff {
			backoff = r.opts.MaxBackoff
		}
	}
}

// post sends one alert as a JSON POST; any non-2xx status is a failure.
func post(client *http.Client, url string, a Alert) error {
	body, err := json.Marshal(a)
	if err != nil {
		return err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("webhook returned %d", resp.StatusCode)
	}
	return nil
}
