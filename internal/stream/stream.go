// Package stream is the live-subscription subsystem over the engine:
// standing co-location queries ("alert when any trajectory co-locates with
// a watchlist member above θ") evaluated on every append, with webhook
// alert delivery and the streaming bookkeeping (append high-water mark)
// the retention sweep keys off.
//
// A Registry holds named watches. The ingestion path calls OnAppend with
// each freshly grown trajectory; the registry scores it against every
// watch's member subset through the engine's thresholded batch path
// (ScoreBatchMin), so the filter-and-refine upper bound disposes of
// certified sub-threshold pairs without full scoring — a standing query
// costs what the PR-5 pruning lets it cost, not |members| full STS
// evaluations. Pairs that clear θ become Alerts: counted, handed to the
// synchronous OnAlert hook when one is set, and queued to the watch's
// webhook deliverer (delivery.go) when the watch names one.
//
// Watch configurations persist to watches.json in the registry directory
// (persist.go) and survive restarts; per-watch counters are process-local.
package stream

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"context"

	"github.com/stslib/sts/internal/engine"
	"github.com/stslib/sts/internal/model"
)

// ErrNotFound reports a watch name absent from the registry.
var ErrNotFound = errors.New("watch not found")

// Watch is one standing co-location query: alert whenever an appended
// trajectory's STS score against any member reaches Theta.
type Watch struct {
	// Name identifies the watch; Set upserts by it.
	Name string `json:"name"`
	// Members are the corpus trajectory IDs watched. Members absent from
	// the corpus at evaluation time are skipped, not errors — a watch may
	// be registered before its members are ingested.
	Members []string `json:"members"`
	// Theta is the alert threshold: scores >= Theta fire (0 < Theta <= 1,
	// matching the STS co-location probability's range).
	Theta float64 `json:"theta"`
	// Webhook, when non-empty, is the URL alerts are POSTed to as JSON,
	// with bounded queueing and capped exponential-backoff retry. Empty
	// records and counts alerts without delivering them.
	Webhook string `json:"webhook,omitempty"`
	// DebounceSeconds overrides the registry's per-pair alert debounce for
	// this watch: once a (trajectory, member) pair fires, further alerts
	// for the same pair are suppressed until the trajectory's stream clock
	// advances past the window. 0 inherits Options.AlertDebounceSeconds; a
	// negative value disables debouncing for this watch. Measured in
	// stream time (sample timestamps), not wall time, so replays behave
	// identically to live ingestion.
	DebounceSeconds float64 `json:"debounce_seconds,omitempty"`
}

func (w Watch) validate() error {
	if w.Name == "" {
		return errors.New("stream: watch needs a name")
	}
	if len(w.Members) == 0 {
		return fmt.Errorf("stream: watch %q needs at least one member", w.Name)
	}
	seen := make(map[string]bool, len(w.Members))
	for _, m := range w.Members {
		if m == "" {
			return fmt.Errorf("stream: watch %q has an empty member id", w.Name)
		}
		if seen[m] {
			return fmt.Errorf("stream: watch %q repeats member %q", w.Name, m)
		}
		seen[m] = true
	}
	if !(w.Theta > 0 && w.Theta <= 1) {
		return fmt.Errorf("stream: watch %q theta %v outside (0, 1]", w.Name, w.Theta)
	}
	if math.IsNaN(w.DebounceSeconds) || math.IsInf(w.DebounceSeconds, 0) {
		return fmt.Errorf("stream: watch %q debounce %v is not finite", w.Name, w.DebounceSeconds)
	}
	return nil
}

// Alert is one standing-query hit: the appended trajectory id scored s >=
// theta against the watch member at trajectory length N.
type Alert struct {
	Watch  string  `json:"watch"`
	ID     string  `json:"id"`
	Member string  `json:"member"`
	Score  float64 `json:"score"`
	// N is the appended trajectory's sample count at evaluation, LastT its
	// last sample timestamp — together they pin which prefix of the stream
	// fired, since the trajectory keeps growing after the alert.
	N     int     `json:"n"`
	LastT float64 `json:"last_t"`
}

// WatchStats is one watch's configuration and counters.
type WatchStats struct {
	Name    string  `json:"name"`
	Members int     `json:"members"`
	Theta   float64 `json:"theta"`
	Webhook string  `json:"webhook,omitempty"`
	// Evals counts standing evaluations run (one per append with at least
	// one resident member); Pairs the candidate pairs scored across them;
	// Subthreshold the pairs disposed of below theta (certified by the
	// upper bound or refined under it — either way, no alert).
	Evals        uint64 `json:"evals"`
	Pairs        uint64 `json:"pairs"`
	Subthreshold uint64 `json:"subthreshold"`
	// Alerts counts pairs that cleared theta and fired; Suppressed counts
	// pairs that cleared theta but fell inside the per-pair debounce
	// window. Delivered/Retries/DeadLettered count webhook outcomes;
	// Dropped counts alerts shed because the delivery queue was full;
	// QueueLen is the current backlog.
	Alerts       uint64 `json:"alerts"`
	Suppressed   uint64 `json:"suppressed"`
	Delivered    uint64 `json:"delivered"`
	Retries      uint64 `json:"retries"`
	DeadLettered uint64 `json:"dead_lettered"`
	Dropped      uint64 `json:"dropped"`
	QueueLen     int    `json:"queue_len"`
}

// Stats is the registry-wide roll-up: totals over watches plus the
// append-side counters and the standing-evaluation latency histogram.
type Stats struct {
	// Appends counts OnAppend calls; AppendedSamples the samples they
	// carried; HighWater is the max sample timestamp seen (the retention
	// sweep's clock), NaN before the first append.
	Appends         uint64
	AppendedSamples uint64
	HighWater       float64

	Evals        uint64
	Pairs        uint64
	Subthreshold uint64
	Alerts       uint64
	Suppressed   uint64
	Delivered    uint64
	Retries      uint64
	DeadLettered uint64
	Dropped      uint64

	// EvalSeconds is the standing-evaluation latency histogram (one
	// observation per watch evaluation).
	EvalSeconds HistogramSnapshot

	// Watches are the per-watch breakdowns, sorted by name.
	Watches []WatchStats
}

// Options configures a Registry. The zero value evaluates watches with no
// persistence and default delivery tuning.
type Options struct {
	// Dir, when non-empty, persists watch configurations to
	// Dir/watches.json (written atomically on every Set/Delete, loaded by
	// NewRegistry).
	Dir string
	// QueueSize bounds each watch's webhook delivery queue; alerts beyond
	// it are dropped and counted (0 selects 256).
	QueueSize int
	// WebhookTimeout bounds each delivery attempt (0 selects 5s).
	WebhookTimeout time.Duration
	// MaxAttempts bounds delivery attempts per alert before it is
	// dead-lettered (0 selects 5).
	MaxAttempts int
	// BaseBackoff is the first retry delay, doubled per attempt with
	// jitter up to MaxBackoff (0 selects 100ms and 5s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// OnAlert, when set, is called synchronously with every alert, before
	// any webhook queueing — the in-process subscription hook (tests, the
	// smoke harness, embedding applications).
	OnAlert func(Alert)
	// AlertDebounceSeconds is the default per-pair alert debounce window
	// in stream time: once a (trajectory, member) pair fires, it stays
	// silent until the trajectory's last sample timestamp has advanced by
	// at least this much. 0 disables debouncing; Watch.DebounceSeconds
	// overrides per watch. Suppressed alerts are counted, not delivered.
	AlertDebounceSeconds float64
}

// watchState is one watch's runtime: config and debounce memory under mu,
// lock-free counters, and the delivery queue its deliverer goroutine
// drains.
type watchState struct {
	mu  sync.Mutex
	cfg Watch
	// lastFired maps each alerted (trajectory, member) pair to the stream
	// timestamp it last fired at — the debounce memory. Entries whose
	// window has lapsed are pruned opportunistically on insert.
	lastFired map[pairKey]float64

	evals, pairs, subthr        atomic.Uint64
	alerts, suppressed          atomic.Uint64
	delivered, retries          atomic.Uint64
	deadLettered, droppedAlerts atomic.Uint64
	queue                       chan Alert
	stop                        chan struct{}
}

// pairKey identifies one (appended trajectory, watch member) alert pair.
type pairKey struct{ id, member string }

// debounceLapsed reports whether the pair may fire at stream time t given
// window d, recording the firing when it may. Caller guarantees d > 0.
func (ws *watchState) debounceLapsed(id, member string, t, d float64) bool {
	key := pairKey{id: id, member: member}
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if prev, ok := ws.lastFired[key]; ok && t-prev < d {
		return false
	}
	if ws.lastFired == nil {
		ws.lastFired = make(map[pairKey]float64)
	} else if len(ws.lastFired) >= 4096 {
		// Bound the memory: entries whose window has already lapsed can
		// never suppress again.
		for k, prev := range ws.lastFired {
			if t-prev >= d {
				delete(ws.lastFired, k)
			}
		}
	}
	ws.lastFired[key] = t
	return true
}

func (ws *watchState) config() Watch {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return ws.cfg
}

// Registry is the standing-query subsystem over one engine service. All
// methods are safe for concurrent use.
type Registry struct {
	eng  engine.Service
	opts Options

	mu      sync.RWMutex
	watches map[string]*watchState
	closed  bool
	wg      sync.WaitGroup

	appends         atomic.Uint64
	appendedSamples atomic.Uint64
	highWater       atomicFloat64
	evalHist        histogram
}

// NewRegistry builds a Registry over eng, loading persisted watches from
// opts.Dir when set (starting their deliverers).
func NewRegistry(eng engine.Service, opts Options) (*Registry, error) {
	if eng == nil {
		return nil, errors.New("stream: engine service is required")
	}
	if opts.QueueSize <= 0 {
		opts.QueueSize = 256
	}
	if opts.WebhookTimeout <= 0 {
		opts.WebhookTimeout = 5 * time.Second
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 5
	}
	if opts.BaseBackoff <= 0 {
		opts.BaseBackoff = 100 * time.Millisecond
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 5 * time.Second
	}
	if d := opts.AlertDebounceSeconds; d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
		return nil, fmt.Errorf("stream: AlertDebounceSeconds must be non-negative and finite, got %v", d)
	}
	r := &Registry{eng: eng, opts: opts, watches: make(map[string]*watchState)}
	r.highWater.store(math.NaN())
	if opts.Dir != "" {
		persisted, err := loadWatches(opts.Dir)
		if err != nil {
			return nil, err
		}
		for _, w := range persisted {
			if err := w.validate(); err != nil {
				return nil, fmt.Errorf("stream: persisted %w", err)
			}
			r.watches[w.Name] = r.newState(w)
		}
	}
	return r, nil
}

func (r *Registry) newState(w Watch) *watchState {
	ws := &watchState{
		cfg:   w,
		queue: make(chan Alert, r.opts.QueueSize),
		stop:  make(chan struct{}),
	}
	r.wg.Add(1)
	go r.deliver(ws)
	return ws
}

// Set upserts a watch. An existing watch keeps its counters and queued
// alerts; only the configuration swaps (the deliverer reads the webhook
// per attempt, so retargeting takes effect on the next delivery).
func (r *Registry) Set(w Watch) error {
	if err := w.validate(); err != nil {
		return err
	}
	// Copy the member list so callers mutating their slice later cannot
	// race the evaluator.
	w.Members = append([]string(nil), w.Members...)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return errors.New("stream: registry is closed")
	}
	if ws, ok := r.watches[w.Name]; ok {
		ws.mu.Lock()
		ws.cfg = w
		ws.mu.Unlock()
	} else {
		r.watches[w.Name] = r.newState(w)
	}
	return r.persistLocked()
}

// Delete removes a watch, stopping its deliverer (queued alerts are
// abandoned, not dead-lettered).
func (r *Registry) Delete(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	ws, ok := r.watches[name]
	if !ok {
		return fmt.Errorf("stream: %q: %w", name, ErrNotFound)
	}
	delete(r.watches, name)
	close(ws.stop)
	return r.persistLocked()
}

// Get returns one watch's configuration.
func (r *Registry) Get(name string) (Watch, bool) {
	r.mu.RLock()
	ws, ok := r.watches[name]
	r.mu.RUnlock()
	if !ok {
		return Watch{}, false
	}
	return ws.config(), true
}

// List returns every watch's stats, sorted by name.
func (r *Registry) List() []WatchStats {
	r.mu.RLock()
	states := make([]*watchState, 0, len(r.watches))
	for _, ws := range r.watches {
		states = append(states, ws)
	}
	r.mu.RUnlock()
	out := make([]WatchStats, len(states))
	for i, ws := range states {
		out[i] = ws.snapshot()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (ws *watchState) snapshot() WatchStats {
	cfg := ws.config()
	return WatchStats{
		Name:         cfg.Name,
		Members:      len(cfg.Members),
		Theta:        cfg.Theta,
		Webhook:      cfg.Webhook,
		Evals:        ws.evals.Load(),
		Pairs:        ws.pairs.Load(),
		Subthreshold: ws.subthr.Load(),
		Alerts:       ws.alerts.Load(),
		Suppressed:   ws.suppressed.Load(),
		Delivered:    ws.delivered.Load(),
		Retries:      ws.retries.Load(),
		DeadLettered: ws.deadLettered.Load(),
		Dropped:      ws.droppedAlerts.Load(),
		QueueLen:     len(ws.queue),
	}
}

// HighWater returns the max sample timestamp across everything OnAppend
// has seen — the streaming clock a wall-time-free retention sweep trims
// against. ok is false before the first append.
func (r *Registry) HighWater() (t float64, ok bool) {
	v := r.highWater.load()
	return v, !math.IsNaN(v)
}

// OnAppend evaluates every watch against the freshly appended trajectory
// tr (its full grown state), returning the alerts fired. appended is the
// tail length of the append, for the ingest counters. The evaluation runs
// through the engine's thresholded batch scorer, so sub-threshold members
// are disposed of by the admissible upper bound wherever possible.
func (r *Registry) OnAppend(ctx context.Context, tr model.Trajectory, appended int) ([]Alert, error) {
	r.appends.Add(1)
	if appended > 0 {
		r.appendedSamples.Add(uint64(appended))
	}
	if n := len(tr.Samples); n > 0 {
		r.highWater.max(tr.Samples[n-1].T)
	}
	r.mu.RLock()
	states := make([]*watchState, 0, len(r.watches))
	for _, ws := range r.watches {
		states = append(states, ws)
	}
	r.mu.RUnlock()
	if len(states) == 0 {
		return nil, nil
	}

	var fired []Alert
	for _, ws := range states {
		cfg := ws.config()
		cols := make(model.Dataset, 0, len(cfg.Members))
		names := make([]string, 0, len(cfg.Members))
		for _, m := range cfg.Members {
			if m == tr.ID {
				continue // a member's own appends never self-alert
			}
			if mt, ok := r.eng.Get(m); ok {
				cols = append(cols, mt)
				names = append(names, m)
			}
		}
		if len(cols) == 0 {
			continue
		}
		ws.evals.Add(1)
		start := time.Now()
		scores, err := r.eng.ScoreBatchMin(ctx, model.Dataset{tr}, cols, nil, cfg.Theta)
		r.evalHist.observe(time.Since(start).Seconds())
		if err != nil {
			return fired, fmt.Errorf("stream: watch %q: %w", cfg.Name, err)
		}
		ws.pairs.Add(uint64(len(cols)))
		lastT := tr.Samples[len(tr.Samples)-1].T
		debounce := cfg.DebounceSeconds
		if debounce == 0 {
			debounce = r.opts.AlertDebounceSeconds
		}
		for j, s := range scores[0] {
			if math.IsInf(s, -1) || math.IsNaN(s) || s < cfg.Theta {
				ws.subthr.Add(1)
				continue
			}
			if debounce > 0 && !ws.debounceLapsed(tr.ID, names[j], lastT, debounce) {
				ws.suppressed.Add(1)
				continue
			}
			a := Alert{
				Watch:  cfg.Name,
				ID:     tr.ID,
				Member: names[j],
				Score:  s,
				N:      len(tr.Samples),
				LastT:  lastT,
			}
			ws.alerts.Add(1)
			fired = append(fired, a)
			if r.opts.OnAlert != nil {
				r.opts.OnAlert(a)
			}
			if cfg.Webhook != "" {
				select {
				case ws.queue <- a:
				default:
					ws.droppedAlerts.Add(1)
				}
			}
		}
	}
	return fired, nil
}

// Stats returns the registry-wide roll-up.
func (r *Registry) Stats() Stats {
	watches := r.List()
	st := Stats{
		Appends:         r.appends.Load(),
		AppendedSamples: r.appendedSamples.Load(),
		HighWater:       r.highWater.load(),
		EvalSeconds:     r.evalHist.snapshot(),
		Watches:         watches,
	}
	for _, w := range watches {
		st.Evals += w.Evals
		st.Pairs += w.Pairs
		st.Subthreshold += w.Subthreshold
		st.Alerts += w.Alerts
		st.Suppressed += w.Suppressed
		st.Delivered += w.Delivered
		st.Retries += w.Retries
		st.DeadLettered += w.DeadLettered
		st.Dropped += w.Dropped
	}
	return st
}

// Close stops every deliverer (abandoning queued alerts) and waits for
// them to exit. The registry rejects Set afterwards; OnAppend still
// evaluates nothing because the watch map is empty.
func (r *Registry) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	for name, ws := range r.watches {
		close(ws.stop)
		delete(r.watches, name)
	}
	r.mu.Unlock()
	r.wg.Wait()
	return nil
}

// atomicFloat64 is a float64 with atomic load/store/monotonic-max, for the
// append high-water mark (bit-cast through uint64).
type atomicFloat64 struct{ bits atomic.Uint64 }

func (a *atomicFloat64) load() float64   { return math.Float64frombits(a.bits.Load()) }
func (a *atomicFloat64) store(v float64) { a.bits.Store(math.Float64bits(v)) }

func (a *atomicFloat64) max(v float64) {
	for {
		old := a.bits.Load()
		cur := math.Float64frombits(old)
		if !math.IsNaN(cur) && cur >= v {
			return
		}
		if a.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// evalBuckets are the standing-evaluation latency histogram bounds in
// seconds (same shape as the server's request histogram: sub-millisecond
// cached evaluations through multi-second cold ones).
var evalBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5,
}

// histogram is a fixed-bucket latency histogram over evalBuckets.
type histogram struct {
	mu       sync.Mutex
	buckets  [len0]uint64
	overflow uint64
	sum      float64
	count    uint64
}

const len0 = 13 // len(evalBuckets); arrays need a constant

// HistogramSnapshot is one histogram read: cumulative-style raw bucket
// counts aligned with Bounds, plus the overflow (+Inf) count.
type HistogramSnapshot struct {
	Bounds   []float64
	Counts   []uint64
	Overflow uint64
	Sum      float64
	Count    uint64
}

func (h *histogram) observe(secs float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	placed := false
	for i, le := range evalBuckets {
		if secs <= le {
			h.buckets[i]++
			placed = true
			break
		}
	}
	if !placed {
		h.overflow++
	}
	h.sum += secs
	h.count++
}

func (h *histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := HistogramSnapshot{
		Bounds:   evalBuckets,
		Counts:   append([]uint64(nil), h.buckets[:]...),
		Overflow: h.overflow,
		Sum:      h.sum,
		Count:    h.count,
	}
	return out
}
