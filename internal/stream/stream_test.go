package stream_test

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/stslib/sts/internal/core"
	"github.com/stslib/sts/internal/engine"
	"github.com/stslib/sts/internal/eval"
	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/index"
	"github.com/stslib/sts/internal/model"
	"github.com/stslib/sts/internal/store"
	"github.com/stslib/sts/internal/stream"
)

func testGrid(t *testing.T) *geo.Grid {
	t.Helper()
	g, err := geo.NewGrid(geo.NewRect(geo.Point{X: -100, Y: -100}, geo.Point{X: 1100, Y: 1100}), 25)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testScorer(t *testing.T) *eval.STSScorer {
	t.Helper()
	m, err := core.NewSTS(testGrid(t), 10)
	if err != nil {
		t.Fatal(err)
	}
	return eval.NewSTSScorer("STS", m)
}

// walk builds a straight trajectory of n samples starting at (x0, y0),
// advancing dx meters and dt seconds per sample.
func walk(id string, x0, y0, dx, dt float64, n int) model.Trajectory {
	tr := model.Trajectory{ID: id, Samples: make([]model.Sample, n)}
	for i := range tr.Samples {
		f := float64(i)
		tr.Samples[i] = model.Sample{Loc: geo.Point{X: x0 + f*dx, Y: y0}, T: f * dt}
	}
	return tr
}

// tailOf extends a walk with k more samples continuing its stride.
func tailOf(tr model.Trajectory, k int) []model.Sample {
	last := tr.Samples[len(tr.Samples)-1]
	prev := tr.Samples[len(tr.Samples)-2]
	dx, dt := last.Loc.X-prev.Loc.X, last.T-prev.T
	out := make([]model.Sample, k)
	for i := range out {
		f := float64(i + 1)
		out[i] = model.Sample{T: last.T + f*dt, Loc: last.Loc}
		out[i].Loc.X += f * dx
	}
	return out
}

// streamOpts builds engine options with a fresh pruning index, optionally
// profiled.
func streamOpts(t *testing.T, profiled bool) engine.Options {
	t.Helper()
	ix, err := index.New(index.Options{Grid: testGrid(t), TimeBucket: 60, SpatialSlack: 100, TimeSlack: 60})
	if err != nil {
		t.Fatal(err)
	}
	o := engine.Options{Pruner: ix}
	if profiled {
		o.Profile = &core.ProfileOptions{BucketSeconds: 30}
	}
	return o
}

// streamEngines builds the three engine flavors the streaming golden gate
// covers.
func streamEngines(t *testing.T) map[string]engine.Service {
	t.Helper()
	scorer := testScorer(t)
	exact, err := engine.New(scorer, streamOpts(t, false))
	if err != nil {
		t.Fatal(err)
	}
	profiled, err := engine.New(scorer, streamOpts(t, true))
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := engine.NewSharded(scorer, engine.ShardedOptions{
		Shards:       3,
		ShardOptions: func(int) (engine.Options, error) { return streamOpts(t, true), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = exact.Close()
		_ = profiled.Close()
		_ = sharded.Close()
	})
	return map[string]engine.Service{"exact": exact, "profiled": profiled, "sharded": sharded}
}

// TestStandingAlertsMatchOffline is the streaming correctness gate: every
// alert fired by the live append path must exactly match an offline
// thresholded re-evaluation of the same corpus state at the same theta —
// same members, same scores, no extras, no misses — on the exact,
// profiled, and sharded engines.
func TestStandingAlertsMatchOffline(t *testing.T) {
	const theta = 0.01
	base := make([]model.Trajectory, 0, 8)
	for i := 0; i < 8; i++ {
		// Interleaved lanes: some pairs co-locate, most do not.
		base = append(base, walk(fmt.Sprintf("t%02d", i), 100+float64(i%3)*8, 100+float64(i/3)*300, 4, 15, 6))
	}
	members := []string{"t00", "t01", "t02", "ghost"} // ghost is never ingested

	for name, svc := range streamEngines(t) {
		t.Run(name, func(t *testing.T) {
			for _, tr := range base {
				if _, err := svc.Add(tr); err != nil {
					t.Fatal(err)
				}
			}
			reg, err := stream.NewRegistry(svc, stream.Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer reg.Close()
			if err := reg.Set(stream.Watch{Name: "lane", Members: members, Theta: theta}); err != nil {
				t.Fatal(err)
			}

			// Shadow corpus replay: after every live append, rebuild a fresh
			// reference engine from the shadow state and re-evaluate the
			// standing query offline.
			shadow := make(map[string]model.Trajectory, len(base))
			for _, tr := range base {
				shadow[tr.ID] = tr
			}
			for round := 0; round < 3; round++ {
				for _, tr := range base {
					cur := shadow[tr.ID]
					tail := tailOf(cur, 1+round%2)
					if _, err := svc.Append(tr.ID, tail); err != nil {
						t.Fatal(err)
					}
					grown := model.Trajectory{ID: tr.ID, Samples: append(append([]model.Sample{}, cur.Samples...), tail...)}
					shadow[tr.ID] = grown

					got, err := reg.OnAppend(context.Background(), grown, len(tail))
					if err != nil {
						t.Fatal(err)
					}
					want := offlineAlerts(t, svc, shadow, grown, members, theta)
					if len(got) != len(want) {
						t.Fatalf("append %s round %d: %d alerts, want %d\n got %+v\nwant %+v",
							tr.ID, round, len(got), len(want), got, want)
					}
					for i := range want {
						if got[i].Member != want[i].Member || got[i].Score != want[i].Score {
							t.Fatalf("append %s round %d alert %d: got %+v want %+v", tr.ID, round, i, got[i], want[i])
						}
						if got[i].ID != tr.ID || got[i].N != len(grown.Samples) {
							t.Fatalf("alert metadata: %+v", got[i])
						}
					}
				}
			}
			st := reg.Stats()
			if st.Appends != 24 || st.Evals != 24 {
				t.Fatalf("stats: %+v", st)
			}
			if st.Pairs == 0 || st.Alerts == 0 || st.Subthreshold == 0 {
				t.Fatalf("expected a mix of alerts and sub-threshold pairs: %+v", st)
			}
			if st.Pairs != st.Alerts+st.Subthreshold {
				t.Fatalf("pair accounting: %d != %d + %d", st.Pairs, st.Alerts, st.Subthreshold)
			}
			if hw, ok := reg.HighWater(); !ok || hw <= 0 {
				t.Fatalf("high water: %v %v", hw, ok)
			}
			if st.EvalSeconds.Count != st.Evals {
				t.Fatalf("eval histogram count %d, want %d", st.EvalSeconds.Count, st.Evals)
			}
		})
	}
}

// offlineAlerts re-derives the expected alerts for one append event from a
// fresh engine built over the shadow corpus — the offline ground truth the
// streaming path must match bit for bit.
func offlineAlerts(t *testing.T, svc engine.Service, shadow map[string]model.Trajectory, grown model.Trajectory, members []string, theta float64) []stream.Alert {
	t.Helper()
	fresh, err := engine.New(svc.Scorer(), streamOpts(t, svc.Profiled()))
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	for _, tr := range shadow {
		if _, err := fresh.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	var cols model.Dataset
	var names []string
	for _, m := range members {
		if m == grown.ID {
			continue
		}
		if mt, ok := fresh.Get(m); ok {
			cols = append(cols, mt)
			names = append(names, m)
		}
	}
	if len(cols) == 0 {
		return nil
	}
	scores, err := fresh.ScoreBatchMin(context.Background(), model.Dataset{grown}, cols, nil, theta)
	if err != nil {
		t.Fatal(err)
	}
	var out []stream.Alert
	for j, s := range scores[0] {
		if math.IsInf(s, -1) || math.IsNaN(s) || s < theta {
			continue
		}
		out = append(out, stream.Alert{Watch: "lane", ID: grown.ID, Member: names[j], Score: s, N: len(grown.Samples)})
	}
	return out
}

// TestAlertDebounce pins the per-pair debounce: a pair that clears theta
// fires once, then stays silent until the trajectory's stream clock
// advances past the window. The window resolves per watch (0 inherits the
// registry default, negative disables), suppressed alerts are counted but
// never delivered to webhooks, and the registry roll-up sums per-watch
// suppression.
func TestAlertDebounce(t *testing.T) {
	var sinkHits atomic.Uint64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sinkHits.Add(1)
	}))
	defer srv.Close()

	eng, err := engine.New(testScorer(t), streamOpts(t, false))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	a := walk("a", 100, 100, 4, 15, 6) // last sample at t=75, stride 15s
	b := walk("b", 102, 100, 4, 15, 6)
	for _, tr := range []model.Trajectory{a, b} {
		if _, err := eng.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	reg, err := stream.NewRegistry(eng, stream.Options{AlertDebounceSeconds: 40})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	for _, w := range []stream.Watch{
		{Name: "def", Members: []string{"b"}, Theta: 0.001, Webhook: srv.URL},
		{Name: "burst", Members: []string{"b"}, Theta: 0.001, DebounceSeconds: 14},
		{Name: "off", Members: []string{"b"}, Theta: 0.001, DebounceSeconds: -1},
		{Name: "slow", Members: []string{"b"}, Theta: 0.001, DebounceSeconds: 1000},
	} {
		if err := reg.Set(w); err != nil {
			t.Fatal(err)
		}
	}

	// Five appends of one sample each: stream clock hits 90, 105, 120,
	// 135, 150. With the 40s default only 90 and 135 clear the window;
	// the 14s override clears every 15s stride; negative never debounces;
	// the 1000s window fires exactly once.
	firedBy := make(map[string]int)
	cur := a
	for i := 0; i < 5; i++ {
		tail := tailOf(cur, 1)
		if _, err := eng.Append("a", tail); err != nil {
			t.Fatal(err)
		}
		cur = model.Trajectory{ID: "a", Samples: append(append([]model.Sample{}, cur.Samples...), tail...)}
		alerts, err := reg.OnAppend(context.Background(), cur, len(tail))
		if err != nil {
			t.Fatal(err)
		}
		for _, al := range alerts {
			firedBy[al.Watch]++
		}
	}

	wantFired := map[string]int{"def": 2, "burst": 5, "off": 5, "slow": 1}
	wantSupp := map[string]uint64{"def": 3, "burst": 0, "off": 0, "slow": 4}
	for name, want := range wantFired {
		if firedBy[name] != want {
			t.Fatalf("watch %s fired %d alerts, want %d (all: %v)", name, firedBy[name], want, firedBy)
		}
	}
	for _, ws := range reg.List() {
		if ws.Suppressed != wantSupp[ws.Name] {
			t.Fatalf("watch %s suppressed %d, want %d", ws.Name, ws.Suppressed, wantSupp[ws.Name])
		}
		if ws.Alerts != uint64(wantFired[ws.Name]) {
			t.Fatalf("watch %s alert counter %d, want %d", ws.Name, ws.Alerts, wantFired[ws.Name])
		}
	}
	st := reg.Stats()
	if st.Suppressed != 7 || st.Alerts != 13 {
		t.Fatalf("roll-up suppressed=%d alerts=%d, want 7/13", st.Suppressed, st.Alerts)
	}

	// Suppressed alerts must never reach the webhook: only "def"'s two
	// fired alerts are queued for delivery.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && sinkHits.Load() < 2 {
		time.Sleep(2 * time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond) // would catch a third, spurious delivery
	if got := sinkHits.Load(); got != 2 {
		t.Fatalf("webhook delivered %d alerts, want 2", got)
	}
}

func TestDebounceValidation(t *testing.T) {
	svc, err := engine.New(testScorer(t), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1)} {
		if _, err := stream.NewRegistry(svc, stream.Options{AlertDebounceSeconds: bad}); err == nil {
			t.Fatalf("registry accepted AlertDebounceSeconds=%v", bad)
		}
	}
	reg, err := stream.NewRegistry(svc, stream.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		w := stream.Watch{Name: "w", Members: []string{"a"}, Theta: 0.5, DebounceSeconds: bad}
		if err := reg.Set(w); err == nil {
			t.Fatalf("watch accepted DebounceSeconds=%v", bad)
		}
	}
}

func TestWatchValidationAndCRUD(t *testing.T) {
	svc, err := engine.New(testScorer(t), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	reg, err := stream.NewRegistry(svc, stream.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	bad := []stream.Watch{
		{Name: "", Members: []string{"a"}, Theta: 0.5},
		{Name: "w", Members: nil, Theta: 0.5},
		{Name: "w", Members: []string{""}, Theta: 0.5},
		{Name: "w", Members: []string{"a", "a"}, Theta: 0.5},
		{Name: "w", Members: []string{"a"}, Theta: 0},
		{Name: "w", Members: []string{"a"}, Theta: 1.5},
		{Name: "w", Members: []string{"a"}, Theta: math.NaN()},
	}
	for i, w := range bad {
		if err := reg.Set(w); err == nil {
			t.Fatalf("bad watch %d accepted: %+v", i, w)
		}
	}

	if err := reg.Set(stream.Watch{Name: "b", Members: []string{"x"}, Theta: 0.2}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Set(stream.Watch{Name: "a", Members: []string{"x", "y"}, Theta: 0.4}); err != nil {
		t.Fatal(err)
	}
	// Upsert replaces config in place.
	if err := reg.Set(stream.Watch{Name: "b", Members: []string{"x", "y", "z"}, Theta: 0.3}); err != nil {
		t.Fatal(err)
	}
	ws := reg.List()
	if len(ws) != 2 || ws[0].Name != "a" || ws[1].Name != "b" {
		t.Fatalf("list: %+v", ws)
	}
	if ws[1].Members != 3 || ws[1].Theta != 0.3 {
		t.Fatalf("upsert did not replace config: %+v", ws[1])
	}
	if got, ok := reg.Get("a"); !ok || got.Theta != 0.4 {
		t.Fatalf("get: %+v %v", got, ok)
	}
	if err := reg.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if err := reg.Delete("a"); err == nil {
		t.Fatal("double delete accepted")
	}
	if _, ok := reg.Get("a"); ok {
		t.Fatal("deleted watch still present")
	}
}

// TestWebhookDelivery pins the delivery loop: transient failures retry
// with backoff until success, persistent failures dead-letter after
// MaxAttempts, and the counters record each outcome.
func TestWebhookDelivery(t *testing.T) {
	var flakyHits, sinkHits atomic.Uint64
	mux := http.NewServeMux()
	mux.HandleFunc("/flaky", func(w http.ResponseWriter, r *http.Request) {
		if flakyHits.Add(1) <= 2 {
			http.Error(w, "not yet", http.StatusServiceUnavailable)
			return
		}
		sinkHits.Add(1)
	})
	mux.HandleFunc("/dead", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "never", http.StatusInternalServerError)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	eng, err := engine.New(testScorer(t), streamOpts(t, false))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	a := walk("a", 100, 100, 4, 15, 6)
	b := walk("b", 102, 100, 4, 15, 6)
	for _, tr := range []model.Trajectory{a, b} {
		if _, err := eng.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	reg, err := stream.NewRegistry(eng, stream.Options{
		MaxAttempts: 3,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  4 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	for _, w := range []stream.Watch{
		{Name: "flaky", Members: []string{"b"}, Theta: 0.001, Webhook: srv.URL + "/flaky"},
		{Name: "dead", Members: []string{"b"}, Theta: 0.001, Webhook: srv.URL + "/dead"},
	} {
		if err := reg.Set(w); err != nil {
			t.Fatal(err)
		}
	}

	tail := tailOf(a, 2)
	if _, err := eng.Append("a", tail); err != nil {
		t.Fatal(err)
	}
	grown, _ := eng.Get("a")
	alerts, err := reg.OnAppend(context.Background(), grown, len(tail))
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 2 {
		t.Fatalf("expected one alert per watch, got %+v", alerts)
	}

	deadline := time.Now().Add(10 * time.Second)
	var flaky, dead stream.WatchStats
	for time.Now().Before(deadline) {
		byName := make(map[string]stream.WatchStats)
		for _, w := range reg.List() {
			byName[w.Name] = w
		}
		flaky, dead = byName["flaky"], byName["dead"]
		if flaky.Delivered == 1 && dead.DeadLettered == 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if flaky.Delivered != 1 || flaky.Retries != 2 || flaky.DeadLettered != 0 {
		t.Fatalf("flaky watch: %+v", flaky)
	}
	if sinkHits.Load() != 1 {
		t.Fatalf("webhook sink hit %d times", sinkHits.Load())
	}
	if dead.Delivered != 0 || dead.DeadLettered != 1 || dead.Retries != 2 {
		t.Fatalf("dead watch: %+v", dead)
	}
}

func TestWatchPersistence(t *testing.T) {
	dir := t.TempDir()
	svc, err := engine.New(testScorer(t), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	reg, err := stream.NewRegistry(svc, stream.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []stream.Watch{
		{Name: "keep", Members: []string{"a", "b"}, Theta: 0.25, Webhook: "http://sink.example/hook"},
		{Name: "drop", Members: []string{"c"}, Theta: 0.5},
	} {
		if err := reg.Set(w); err != nil {
			t.Fatal(err)
		}
	}
	if err := reg.Delete("drop"); err != nil {
		t.Fatal(err)
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	reg2, err := stream.NewRegistry(svc, stream.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Close()
	ws := reg2.List()
	if len(ws) != 1 || ws[0].Name != "keep" || ws[0].Members != 2 {
		t.Fatalf("restart lost watch config: %+v", ws)
	}
	got, ok := reg2.Get("keep")
	if !ok || got.Theta != 0.25 || got.Webhook != "http://sink.example/hook" ||
		len(got.Members) != 2 || got.Members[0] != "a" || got.Members[1] != "b" {
		t.Fatalf("restart mangled watch: %+v", got)
	}
}

// TestConcurrentAppendWatch races appends + standing evaluation against
// watch registration, deletion, and stats reads — the stream half of the
// streaming -race stress gate.
func TestConcurrentAppendWatch(t *testing.T) {
	eng, err := engine.New(testScorer(t), streamOpts(t, true))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	trs := make([]model.Trajectory, 6)
	for i := range trs {
		trs[i] = walk(fmt.Sprintf("t%02d", i), 100+float64(i)*6, 100, 4, 15, 6)
		if _, err := eng.Add(trs[i]); err != nil {
			t.Fatal(err)
		}
	}
	reg, err := stream.NewRegistry(eng, stream.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	if err := reg.Set(stream.Watch{Name: "w0", Members: []string{"t00", "t01"}, Theta: 0.001}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := range trs {
		wg.Add(1)
		go func(tr model.Trajectory) {
			defer wg.Done()
			cur := tr
			for r := 0; r < 8; r++ {
				tail := tailOf(cur, 1)
				if _, err := eng.Append(tr.ID, tail); err != nil {
					t.Error(err)
					return
				}
				cur = model.Trajectory{ID: tr.ID, Samples: append(append([]model.Sample{}, cur.Samples...), tail...)}
				if _, err := reg.OnAppend(context.Background(), cur, len(tail)); err != nil {
					t.Error(err)
					return
				}
			}
		}(trs[i])
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for r := 0; r < 10; r++ {
			name := fmt.Sprintf("w%d", 1+r%3)
			if err := reg.Set(stream.Watch{Name: name, Members: []string{"t02", "t03"}, Theta: 0.01}); err != nil {
				t.Error(err)
				return
			}
			if r%3 == 2 {
				_ = reg.Delete(name) // racing deletes may miss; only data races matter here
			}
		}
	}()
	go func() {
		defer wg.Done()
		for r := 0; r < 20; r++ {
			reg.List()
			reg.Stats()
			reg.HighWater()
		}
	}()
	wg.Wait()
	st := reg.Stats()
	if st.Appends != 48 {
		t.Fatalf("appends: %+v", st)
	}
}

// TestConcurrentTrimAppendEvalSnapshot is the retention half of the
// streaming -race gate: retention sweeps (TrimBefore) race appends,
// standing-query evaluation (with a debounce window, so the per-pair
// memory is hammered from every appender), snapshots of the backing
// store, and stats reads — all against one persistent profiled engine.
func TestConcurrentTrimAppendEvalSnapshot(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	opts := streamOpts(t, true)
	opts.Corpus = st
	eng, err := engine.New(testScorer(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	trs := make([]model.Trajectory, 6)
	for i := range trs {
		trs[i] = walk(fmt.Sprintf("t%02d", i), 100+float64(i)*6, 100, 4, 15, 6)
		if _, err := eng.Add(trs[i]); err != nil {
			t.Fatal(err)
		}
	}
	reg, err := stream.NewRegistry(eng, stream.Options{AlertDebounceSeconds: 20})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	if err := reg.Set(stream.Watch{Name: "w0", Members: []string{"t00", "t01", "t02"}, Theta: 0.001}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := range trs {
		wg.Add(1)
		go func(tr model.Trajectory) {
			defer wg.Done()
			cur := tr
			for r := 0; r < 8; r++ {
				tail := tailOf(cur, 1)
				if _, err := eng.Append(tr.ID, tail); err != nil {
					t.Error(err)
					return
				}
				cur = model.Trajectory{ID: tr.ID, Samples: append(append([]model.Sample{}, cur.Samples...), tail...)}
				if _, err := reg.OnAppend(context.Background(), cur, len(tail)); err != nil {
					t.Error(err)
					return
				}
			}
		}(trs[i])
	}
	wg.Add(3)
	go func() {
		// Retention sweeps with a rising cutoff that only ever trims
		// heads: every trajectory keeps its tail past t=75, so appenders
		// never lose their target.
		defer wg.Done()
		for r := 0; r < 12; r++ {
			if _, err := eng.TrimBefore(float64(5 * (r % 8))); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for r := 0; r < 6; r++ {
			if err := st.Snapshot(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for r := 0; r < 20; r++ {
			reg.Stats()
			eng.StoreStats()
			eng.ProfileCacheStats()
		}
	}()
	wg.Wait()

	if st := reg.Stats(); st.Appends != 48 {
		t.Fatalf("appends: %+v", st)
	}
	// Standing evals score decoded member copies as external data, so they
	// warm only gen-0 entries the sidecar skips; a resident top-k query
	// builds the persistable per-ref profiles before the final snapshot.
	if _, err := eng.TopK(context.Background(), walk("q", 100, 100, 4, 15, 10), 6); err != nil {
		t.Fatal(err)
	}
	// The final snapshot-side state must reopen warm and intact.
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := store.Open(dir, store.Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	opts2 := streamOpts(t, true)
	opts2.Corpus = st2
	eng2, err := engine.New(testScorer(t), opts2)
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	if eng2.Len() != len(trs) {
		t.Fatalf("reopened corpus has %d trajectories, want %d", eng2.Len(), len(trs))
	}
	if eng2.WarmLoaded() == 0 {
		t.Fatal("reopen after snapshot loaded no warm profiles")
	}
}
