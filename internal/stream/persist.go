package stream

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
)

// watchFileName is the persisted watch-configuration file inside
// Options.Dir.
const watchFileName = "watches.json"

// watchFile is the on-disk shape: a versioned envelope so the format can
// grow fields without breaking older files.
type watchFile struct {
	Version int     `json:"version"`
	Watches []Watch `json:"watches"`
}

// loadWatches reads the persisted watch configurations from dir. A missing
// file is an empty registry, not an error.
func loadWatches(dir string) ([]Watch, error) {
	raw, err := os.ReadFile(filepath.Join(dir, watchFileName))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("stream: read %s: %w", watchFileName, err)
	}
	var f watchFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("stream: parse %s: %w", watchFileName, err)
	}
	return f.Watches, nil
}

// persistLocked writes the current watch set to Dir/watches.json via
// tmp+rename (with fsync), so a crash mid-write leaves the previous file
// intact. Callers hold r.mu. A registry without a Dir persists nothing.
func (r *Registry) persistLocked() error {
	if r.opts.Dir == "" {
		return nil
	}
	watches := make([]Watch, 0, len(r.watches))
	for _, ws := range r.watches {
		watches = append(watches, ws.config())
	}
	sort.Slice(watches, func(i, j int) bool { return watches[i].Name < watches[j].Name })
	raw, err := json.MarshalIndent(watchFile{Version: 1, Watches: watches}, "", "  ")
	if err != nil {
		return fmt.Errorf("stream: encode %s: %w", watchFileName, err)
	}
	if err := os.MkdirAll(r.opts.Dir, 0o755); err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	path := filepath.Join(r.opts.Dir, watchFileName)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(raw, '\n'), 0o644); err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	if f, err := os.Open(tmp); err == nil {
		f.Sync()
		f.Close()
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	if d, err := os.Open(r.opts.Dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
