package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"zero", Point{}, Point{}, 0},
		{"unit x", Point{0, 0}, Point{1, 0}, 1},
		{"unit y", Point{0, 0}, Point{0, 1}, 1},
		{"345", Point{0, 0}, Point{3, 4}, 5},
		{"negative", Point{-3, -4}, Point{0, 0}, 5},
	}
	for _, tt := range tests {
		if got := tt.p.Dist(tt.q); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("%s: Dist=%v want %v", tt.name, got, tt.want)
		}
	}
}

func TestDistProperties(t *testing.T) {
	clamp := func(v float64) float64 { return math.Mod(v, 1e6) }
	symmetric := func(px, py, qx, qy float64) bool {
		p, q := Point{clamp(px), clamp(py)}, Point{clamp(qx), clamp(qy)}
		return p.Dist(q) == q.Dist(p)
	}
	if err := quick.Check(symmetric, nil); err != nil {
		t.Errorf("symmetry: %v", err)
	}
	nonNegative := func(px, py, qx, qy float64) bool {
		return Point{clamp(px), clamp(py)}.Dist(Point{clamp(qx), clamp(qy)}) >= 0
	}
	if err := quick.Check(nonNegative, nil); err != nil {
		t.Errorf("non-negativity: %v", err)
	}
	triangle := func(ax, ay, bx, by, cx, cy float64) bool {
		// Constrain magnitudes so float error stays bounded.
		clamp := func(v float64) float64 { return math.Mod(v, 1e6) }
		a := Point{clamp(ax), clamp(ay)}
		b := Point{clamp(bx), clamp(by)}
		c := Point{clamp(cx), clamp(cy)}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-6
	}
	if err := quick.Check(triangle, nil); err != nil {
		t.Errorf("triangle inequality: %v", err)
	}
}

func TestLerp(t *testing.T) {
	p, q := Point{0, 0}, Point{10, 20}
	if got := p.Lerp(q, 0); got != p {
		t.Errorf("Lerp(0)=%v want %v", got, p)
	}
	if got := p.Lerp(q, 1); got != q {
		t.Errorf("Lerp(1)=%v want %v", got, q)
	}
	if got := p.Lerp(q, 0.5); got != (Point{5, 10}) {
		t.Errorf("Lerp(0.5)=%v", got)
	}
}

func TestVectorOps(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -4}
	if got := p.Add(q); got != (Point{4, -2}) {
		t.Errorf("Add=%v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 6}) {
		t.Errorf("Sub=%v", got)
	}
	if got := p.Scale(3); got != (Point{3, 6}) {
		t.Errorf("Scale=%v", got)
	}
}

func TestIsFinite(t *testing.T) {
	if !(Point{1, 2}).IsFinite() {
		t.Error("finite point reported non-finite")
	}
	for _, p := range []Point{
		{math.NaN(), 0}, {0, math.NaN()},
		{math.Inf(1), 0}, {0, math.Inf(-1)},
	} {
		if p.IsFinite() {
			t.Errorf("%v reported finite", p)
		}
	}
}

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(Point{5, -1}, Point{-2, 7})
	if r.Min != (Point{-2, -1}) || r.Max != (Point{5, 7}) {
		t.Errorf("NewRect=%+v", r)
	}
	if r.Width() != 7 || r.Height() != 8 {
		t.Errorf("Width=%v Height=%v", r.Width(), r.Height())
	}
}

func TestRectContains(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{10, 10})
	for _, p := range []Point{{0, 0}, {10, 10}, {5, 5}, {0, 10}} {
		if !r.Contains(p) {
			t.Errorf("Contains(%v)=false", p)
		}
	}
	for _, p := range []Point{{-0.1, 5}, {5, 10.1}, {11, 11}} {
		if r.Contains(p) {
			t.Errorf("Contains(%v)=true", p)
		}
	}
}

func TestRectExpandUnionClampCenter(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{10, 10})
	e := r.Expand(2)
	if e.Min != (Point{-2, -2}) || e.Max != (Point{12, 12}) {
		t.Errorf("Expand=%+v", e)
	}
	u := r.Union(NewRect(Point{8, 8}, Point{20, 5}))
	if u.Min != (Point{0, 0}) || u.Max != (Point{20, 10}) {
		t.Errorf("Union=%+v", u)
	}
	if got := r.Clamp(Point{-5, 20}); got != (Point{0, 10}) {
		t.Errorf("Clamp=%v", got)
	}
	if got := r.Clamp(Point{5, 5}); got != (Point{5, 5}) {
		t.Errorf("Clamp interior=%v", got)
	}
	if got := r.Center(); got != (Point{5, 5}) {
		t.Errorf("Center=%v", got)
	}
}

func TestPointSegmentDist(t *testing.T) {
	a, b := Point{0, 0}, Point{10, 0}
	tests := []struct {
		p        Point
		wantD    float64
		wantFrac float64
	}{
		{Point{5, 3}, 3, 0.5},     // above the middle
		{Point{-5, 0}, 5, 0},      // before the start
		{Point{15, 0}, 5, 1},      // past the end
		{Point{0, 0}, 0, 0},       // on an endpoint
		{Point{10, 0}, 0, 1},      // on the other endpoint
		{Point{2.5, -4}, 4, 0.25}, // below
	}
	for _, tt := range tests {
		d, f := PointSegmentDist(tt.p, a, b)
		if !almostEqual(d, tt.wantD, 1e-12) || !almostEqual(f, tt.wantFrac, 1e-12) {
			t.Errorf("PointSegmentDist(%v)=(%v,%v) want (%v,%v)", tt.p, d, f, tt.wantD, tt.wantFrac)
		}
	}
	// Degenerate segment.
	d, f := PointSegmentDist(Point{3, 4}, Point{0, 0}, Point{0, 0})
	if !almostEqual(d, 5, 1e-12) || f != 0 {
		t.Errorf("degenerate segment: (%v,%v)", d, f)
	}
}

func TestPointSegmentDistNeverExceedsEndpoints(t *testing.T) {
	f := func(px, py, ax, ay, bx, by float64) bool {
		clamp := func(v float64) float64 { return math.Mod(v, 1e4) }
		p := Point{clamp(px), clamp(py)}
		a := Point{clamp(ax), clamp(ay)}
		b := Point{clamp(bx), clamp(by)}
		d, frac := PointSegmentDist(p, a, b)
		if frac < 0 || frac > 1 {
			return false
		}
		return d <= p.Dist(a)+1e-9 && d <= p.Dist(b)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
