// Package geo provides the planar geometric primitives the STS library is
// built on: points, rectangles, distances, and the equal-size grid
// partitioning of the area of interest described in Section IV-A of the
// paper.
//
// All coordinates are planar and expressed in meters. Callers working with
// geodetic data (latitude/longitude) should project it first; for the small
// areas the paper evaluates (a city, a shopping mall) an equirectangular
// projection around the dataset centroid is adequate.
package geo

import "math"

// Point is a location in the plane, in meters.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q in meters.
// math.Sqrt is used instead of math.Hypot: coordinates are meters, far
// from overflow, and Dist is the innermost call of the estimator's hot
// loops where Hypot's extra care costs several times the whole operation.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Dist2 returns the squared Euclidean distance between p and q. Radius
// membership tests and nearest-neighbor selections compare distances
// against each other or against a squared radius, where the monotone
// square root buys nothing — dropping it keeps those scans sqrt-free.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point {
	return Point{p.X + q.X, p.Y + q.Y}
}

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Point {
	return Point{p.X - q.X, p.Y - q.Y}
}

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point {
	return Point{p.X * s, p.Y * s}
}

// Lerp linearly interpolates between p (f=0) and q (f=1).
func (p Point) Lerp(q Point, f float64) Point {
	return Point{p.X + (q.X-p.X)*f, p.Y + (q.Y-p.Y)*f}
}

// IsFinite reports whether both coordinates are finite numbers.
func (p Point) IsFinite() bool {
	return !math.IsNaN(p.X) && !math.IsInf(p.X, 0) &&
		!math.IsNaN(p.Y) && !math.IsInf(p.Y, 0)
}

// Rect is an axis-aligned rectangle. Min is the lower-left corner and Max
// the upper-right corner; Min components must not exceed Max components.
type Rect struct {
	Min, Max Point
}

// NewRect returns the rectangle spanning the two corner points in any order.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Point{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Contains reports whether p lies inside r (inclusive of edges).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Expand returns r grown by m meters on every side.
func (r Rect) Expand(m float64) Rect {
	return Rect{
		Min: Point{r.Min.X - m, r.Min.Y - m},
		Max: Point{r.Max.X + m, r.Max.Y + m},
	}
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// Clamp returns the point in r closest to p.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Max(r.Min.X, math.Min(r.Max.X, p.X)),
		Y: math.Max(r.Min.Y, math.Min(r.Max.Y, p.Y)),
	}
}

// Center returns the midpoint of r.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// PointSegmentDist returns the distance from p to the segment ab, together
// with the interpolation fraction f in [0,1] of the closest point on ab.
func PointSegmentDist(p, a, b Point) (dist, frac float64) {
	d := b.Sub(a)
	l2 := d.X*d.X + d.Y*d.Y
	if l2 == 0 {
		return p.Dist(a), 0
	}
	f := ((p.X-a.X)*d.X + (p.Y-a.Y)*d.Y) / l2
	f = math.Max(0, math.Min(1, f))
	return p.Dist(a.Lerp(b, f)), f
}
