package geo

import (
	"errors"
	"fmt"
	"math"
)

// Grid partitions a rectangular area of interest into disjoint, equal-sized
// square cells, the set R = {r_1 ... r_n} of Section IV-A. The center of a
// cell stands in for the cell's location, exactly as the paper does
// ("without loss of generality, we use the central of grids to denote their
// locations").
//
// Cells are identified by a dense integer index in [0, N()), laid out
// row-major from the lower-left corner. A Grid is immutable after creation
// and safe for concurrent use.
type Grid struct {
	bounds   Rect
	cellSize float64
	nx, ny   int
}

// ErrGridTooLarge is returned when the requested cell size would produce an
// unreasonable number of cells.
var ErrGridTooLarge = errors.New("geo: grid would exceed the cell budget")

// maxCells bounds the total cell count so a typo in cell size cannot
// allocate gigabytes. 16M cells is far beyond anything the experiments use.
const maxCells = 16 << 20

// NewGrid partitions bounds into square cells of the given size in meters.
// The grid always covers bounds entirely: the last row/column may extend
// past bounds.Max. cellSize must be positive.
func NewGrid(bounds Rect, cellSize float64) (*Grid, error) {
	if cellSize <= 0 || math.IsNaN(cellSize) || math.IsInf(cellSize, 0) {
		return nil, fmt.Errorf("geo: invalid cell size %v", cellSize)
	}
	if bounds.Width() < 0 || bounds.Height() < 0 {
		return nil, fmt.Errorf("geo: invalid bounds %+v", bounds)
	}
	nx := int(math.Ceil(bounds.Width() / cellSize))
	ny := int(math.Ceil(bounds.Height() / cellSize))
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	if nx > maxCells || ny > maxCells || nx*ny > maxCells {
		return nil, fmt.Errorf("%w: %dx%d cells of %vm over %+v", ErrGridTooLarge, nx, ny, cellSize, bounds)
	}
	return &Grid{bounds: bounds, cellSize: cellSize, nx: nx, ny: ny}, nil
}

// Bounds returns the area of interest the grid was built over.
func (g *Grid) Bounds() Rect { return g.bounds }

// CellSize returns the side length of each cell in meters.
func (g *Grid) CellSize() float64 { return g.cellSize }

// Cols returns the number of cell columns.
func (g *Grid) Cols() int { return g.nx }

// Rows returns the number of cell rows.
func (g *Grid) Rows() int { return g.ny }

// N returns the total number of cells |R|.
func (g *Grid) N() int { return g.nx * g.ny }

// clampCol maps an x coordinate to a valid column, clamping points outside
// the bounds to the border cells.
func (g *Grid) clampCol(x float64) int {
	c := int(math.Floor((x - g.bounds.Min.X) / g.cellSize))
	if c < 0 {
		return 0
	}
	if c >= g.nx {
		return g.nx - 1
	}
	return c
}

func (g *Grid) clampRow(y float64) int {
	r := int(math.Floor((y - g.bounds.Min.Y) / g.cellSize))
	if r < 0 {
		return 0
	}
	if r >= g.ny {
		return g.ny - 1
	}
	return r
}

// Cell returns the index of the cell containing p. Points outside the
// bounds are clamped to the nearest border cell, so Cell is total.
func (g *Grid) Cell(p Point) int {
	return g.clampRow(p.Y)*g.nx + g.clampCol(p.X)
}

// Center returns the center point of cell idx. It panics if idx is out of
// range, mirroring slice indexing semantics.
func (g *Grid) Center(idx int) Point {
	if idx < 0 || idx >= g.N() {
		panic(fmt.Sprintf("geo: cell index %d out of range [0,%d)", idx, g.N()))
	}
	col := idx % g.nx
	row := idx / g.nx
	return Point{
		X: g.bounds.Min.X + (float64(col)+0.5)*g.cellSize,
		Y: g.bounds.Min.Y + (float64(row)+0.5)*g.cellSize,
	}
}

// CellsWithin appends to dst the indices of all cells whose center lies
// within radius of p, and returns the extended slice. It is the support
// query used to truncate the noise and transition sums: for a Gaussian
// noise model, cells beyond a few sigma carry negligible probability mass.
// A non-positive radius yields just the cell containing p.
func (g *Grid) CellsWithin(dst []int, p Point, radius float64) []int {
	if radius <= 0 {
		return append(dst, g.Cell(p))
	}
	c0 := g.clampCol(p.X - radius)
	c1 := g.clampCol(p.X + radius)
	r0 := g.clampRow(p.Y - radius)
	r1 := g.clampRow(p.Y + radius)
	rr := radius * radius
	for row := r0; row <= r1; row++ {
		cy := g.bounds.Min.Y + (float64(row)+0.5)*g.cellSize
		dy := cy - p.Y
		for col := c0; col <= c1; col++ {
			cx := g.bounds.Min.X + (float64(col)+0.5)*g.cellSize
			dx := cx - p.X
			if dx*dx+dy*dy <= rr {
				dst = append(dst, row*g.nx+col)
			}
		}
	}
	if len(dst) == 0 {
		dst = append(dst, g.Cell(p))
	}
	return dst
}

// CellRangeWithin returns the clamped column and row ranges [c0,c1]×[r0,r1]
// of the cells intersecting the axis-aligned square of half-width radius
// around p — the rectangular superset of CellsWithin's disc. Callers that
// difference consecutive probe areas (the index's candidate scan) prefer
// the rectangle: set differences of clamped ranges stay unions of ranges.
func (g *Grid) CellRangeWithin(p Point, radius float64) (c0, c1, r0, r1 int) {
	if radius < 0 {
		radius = 0
	}
	return g.clampCol(p.X - radius), g.clampCol(p.X + radius),
		g.clampRow(p.Y - radius), g.clampRow(p.Y + radius)
}

// AllCells returns the indices of every cell, for exact (untruncated)
// evaluation of the paper's sums over R.
func (g *Grid) AllCells() []int {
	out := make([]int, g.N())
	for i := range out {
		out[i] = i
	}
	return out
}

// String implements fmt.Stringer.
func (g *Grid) String() string {
	return fmt.Sprintf("Grid(%dx%d cells of %.3gm)", g.nx, g.ny, g.cellSize)
}
