package geo

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func mustGrid(t *testing.T, bounds Rect, cell float64) *Grid {
	t.Helper()
	g, err := NewGrid(bounds, cell)
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	return g
}

func TestNewGridDimensions(t *testing.T) {
	tests := []struct {
		name           string
		bounds         Rect
		cell           float64
		wantNX, wantNY int
	}{
		{"exact fit", NewRect(Point{0, 0}, Point{10, 10}), 1, 10, 10},
		{"rounds up", NewRect(Point{0, 0}, Point{10.5, 10}), 1, 11, 10},
		{"single cell", NewRect(Point{0, 0}, Point{1, 1}), 5, 1, 1},
		{"degenerate bounds", NewRect(Point{3, 3}, Point{3, 3}), 1, 1, 1},
	}
	for _, tt := range tests {
		g := mustGrid(t, tt.bounds, tt.cell)
		if g.Cols() != tt.wantNX || g.Rows() != tt.wantNY {
			t.Errorf("%s: %dx%d want %dx%d", tt.name, g.Cols(), g.Rows(), tt.wantNX, tt.wantNY)
		}
		if g.N() != tt.wantNX*tt.wantNY {
			t.Errorf("%s: N=%d", tt.name, g.N())
		}
	}
}

func TestNewGridErrors(t *testing.T) {
	b := NewRect(Point{0, 0}, Point{10, 10})
	for _, cell := range []float64{0, -1} {
		if _, err := NewGrid(b, cell); err == nil {
			t.Errorf("cell=%v: no error", cell)
		}
	}
	// Huge grid rejected.
	_, err := NewGrid(NewRect(Point{0, 0}, Point{1e9, 1e9}), 0.001)
	if !errors.Is(err, ErrGridTooLarge) {
		t.Errorf("huge grid: err=%v want ErrGridTooLarge", err)
	}
}

func TestCellCenterRoundTrip(t *testing.T) {
	g := mustGrid(t, NewRect(Point{-50, -30}, Point{70, 90}), 7)
	for idx := 0; idx < g.N(); idx++ {
		c := g.Center(idx)
		if got := g.Cell(c); got != idx {
			t.Fatalf("Cell(Center(%d))=%d", idx, got)
		}
	}
}

func TestCellClampsOutside(t *testing.T) {
	g := mustGrid(t, NewRect(Point{0, 0}, Point{10, 10}), 1)
	if got := g.Cell(Point{-100, -100}); got != 0 {
		t.Errorf("far SW clamps to %d want 0", got)
	}
	if got := g.Cell(Point{100, 100}); got != g.N()-1 {
		t.Errorf("far NE clamps to %d want %d", got, g.N()-1)
	}
}

func TestCenterPanicsOutOfRange(t *testing.T) {
	g := mustGrid(t, NewRect(Point{0, 0}, Point{10, 10}), 1)
	for _, idx := range []int{-1, g.N()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Center(%d) did not panic", idx)
				}
			}()
			g.Center(idx)
		}()
	}
}

// bruteCellsWithin recomputes CellsWithin by scanning every cell.
func bruteCellsWithin(g *Grid, p Point, radius float64) []int {
	var out []int
	for idx := 0; idx < g.N(); idx++ {
		if g.Center(idx).Dist(p) <= radius {
			out = append(out, idx)
		}
	}
	if len(out) == 0 {
		out = []int{g.Cell(p)}
	}
	return out
}

func TestCellsWithinMatchesBruteForce(t *testing.T) {
	g := mustGrid(t, NewRect(Point{0, 0}, Point{40, 30}), 2.5)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		p := Point{X: rng.Float64()*60 - 10, Y: rng.Float64()*50 - 10}
		radius := rng.Float64() * 15
		got := g.CellsWithin(nil, p, radius)
		want := bruteCellsWithin(g, p, radius)
		if !sort.IntsAreSorted(got) {
			t.Fatalf("trial %d: result not sorted", trial)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d (p=%v r=%v): %d cells want %d", trial, p, radius, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: cell %d differs: %d vs %d", trial, i, got[i], want[i])
			}
		}
	}
}

func TestCellsWithinZeroRadius(t *testing.T) {
	g := mustGrid(t, NewRect(Point{0, 0}, Point{10, 10}), 1)
	p := Point{4.2, 7.9}
	got := g.CellsWithin(nil, p, 0)
	if len(got) != 1 || got[0] != g.Cell(p) {
		t.Errorf("zero radius: %v want [%d]", got, g.Cell(p))
	}
}

func TestCellsWithinAppendsToDst(t *testing.T) {
	g := mustGrid(t, NewRect(Point{0, 0}, Point{10, 10}), 1)
	dst := []int{-7}
	got := g.CellsWithin(dst, Point{5, 5}, 1)
	if got[0] != -7 || len(got) < 2 {
		t.Errorf("dst not preserved: %v", got)
	}
}

func TestAllCells(t *testing.T) {
	g := mustGrid(t, NewRect(Point{0, 0}, Point{5, 4}), 1)
	all := g.AllCells()
	if len(all) != g.N() {
		t.Fatalf("AllCells len=%d want %d", len(all), g.N())
	}
	for i, c := range all {
		if c != i {
			t.Fatalf("AllCells[%d]=%d", i, c)
		}
	}
}

func TestGridCellQuick(t *testing.T) {
	g := mustGrid(t, NewRect(Point{0, 0}, Point{100, 100}), 3)
	// Every point inside the bounds maps to a cell whose center is within
	// half a cell diagonal.
	f := func(x, y float64) bool {
		p := g.Bounds().Clamp(Point{x, y})
		idx := g.Cell(p)
		if idx < 0 || idx >= g.N() {
			return false
		}
		maxDist := g.CellSize() * 0.7072 // half diagonal + epsilon
		return g.Center(idx).Dist(p) <= maxDist
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestGridString(t *testing.T) {
	g := mustGrid(t, NewRect(Point{0, 0}, Point{30, 20}), 10)
	got := g.String()
	if got != "Grid(3x2 cells of 10m)" {
		t.Errorf("String()=%q", got)
	}
}
