package linking

import (
	"context"
	"fmt"
	"math"

	"github.com/stslib/sts/internal/eval"
	"github.com/stslib/sts/internal/model"
)

// OptimalLink links two trajectory sets one-to-one maximizing the *total*
// similarity of the assignment, using the Hungarian algorithm (Kuhn–
// Munkres, in the O(n³) Jonker-style potential formulation). Compared to
// GreedyLink it trades speed for global optimality: a greedy assignment
// can lock a trajectory to its locally best partner and force a chain of
// bad links downstream; the optimal assignment cannot.
//
// Pairs rejected by the threshold or the feasibility pre-filter are given
// −∞ utility and are dropped from the result if chosen anyway (which only
// happens when a row has no feasible partner at all).
func OptimalLink(d1, d2 model.Dataset, scorer eval.Scorer, opts Options) ([]Link, error) {
	return OptimalLinkContext(context.Background(), d1, d2, scorer, opts)
}

// OptimalLinkContext is OptimalLink with cancellation: scoring runs on the
// engine executor and aborts promptly when ctx is cancelled. (The O(n·m²)
// assignment itself is not interruptible; it is cheap next to scoring.)
func OptimalLinkContext(ctx context.Context, d1, d2 model.Dataset, scorer eval.Scorer, opts Options) ([]Link, error) {
	if len(d1) == 0 || len(d2) == 0 {
		return nil, ErrEmptyInput
	}
	minGap := opts.MinGap
	if opts.MaxSpeed > 0 && minGap <= 0 {
		minGap = 1
	}
	scores, err := eval.ScoreMatrixContext(ctx, d1, d2, scorer, opts.Workers)
	if err != nil {
		return nil, fmt.Errorf("linking: %w", err)
	}
	// Build the utility matrix with vetoes applied.
	const veto = math.MaxFloat64 / 4
	n, m := len(d1), len(d2)
	util := make([][]float64, n)
	for i := range util {
		util[i] = make([]float64, m)
		for j := range util[i] {
			s := scores[i][j]
			ok := s >= opts.MinScore && !math.IsInf(s, -1)
			if ok && opts.MaxSpeed > 0 {
				ok = Feasible(d1[i], d2[j], opts.MaxSpeed, minGap)
			}
			if ok {
				util[i][j] = s
			} else {
				util[i][j] = -veto
			}
		}
	}
	assign := hungarianMax(util)
	var links []Link
	for i, j := range assign {
		if j < 0 || util[i][j] <= -veto/2 {
			continue
		}
		links = append(links, Link{I: i, J: j, Score: scores[i][j]})
	}
	// Sort by descending score for parity with GreedyLink's contract.
	for a := 1; a < len(links); a++ {
		for b := a; b > 0 && links[b].Score > links[b-1].Score; b-- {
			links[b], links[b-1] = links[b-1], links[b]
		}
	}
	return links, nil
}

// hungarianMax solves the rectangular assignment problem maximizing total
// utility. It returns, for each row, the assigned column (or -1 when rows
// outnumber columns and the row stays unassigned). Implementation: the
// standard O(n·m²) shortest-augmenting-path algorithm with row/column
// potentials, run on costs = −utility.
func hungarianMax(util [][]float64) []int {
	n := len(util)
	if n == 0 {
		return nil
	}
	m := len(util[0])
	transposed := false
	if n > m {
		// The algorithm below assumes rows ≤ columns; transpose if not.
		t := make([][]float64, m)
		for j := range t {
			t[j] = make([]float64, n)
			for i := 0; i < n; i++ {
				t[j][i] = util[i][j]
			}
		}
		util, n, m = t, m, len(t[0])
		transposed = true
	}

	cost := func(i, j int) float64 { return -util[i][j] }

	// Potentials and matching, 1-indexed internally per the classic
	// formulation; p[j] = row matched to column j.
	u := make([]float64, n+1)
	v := make([]float64, m+1)
	p := make([]int, m+1)
	way := make([]int, m+1)
	for i := range p {
		p[i] = 0
	}
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, m+1)
		used := make([]bool, m+1)
		for j := range minv {
			minv[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := math.Inf(1)
			j1 := 0
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				cur := cost(i0-1, j-1) - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	rowOf := make([]int, n) // rowOf[i] = column assigned to row i
	for i := range rowOf {
		rowOf[i] = -1
	}
	for j := 1; j <= m; j++ {
		if p[j] > 0 {
			rowOf[p[j]-1] = j - 1
		}
	}
	if !transposed {
		return rowOf
	}
	// Undo the transpose: rowOf currently maps columns → rows.
	out := make([]int, m)
	for i := range out {
		out[i] = -1
	}
	for col, row := range rowOf {
		if row >= 0 {
			out[row] = col
		}
	}
	return out
}
