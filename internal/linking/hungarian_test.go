package linking

import (
	"math"
	"math/rand"
	"testing"

	"github.com/stslib/sts/internal/eval"
	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/model"
)

func TestHungarianMaxSimpleSquare(t *testing.T) {
	// Utility matrix with an obvious optimum on the anti-diagonal.
	util := [][]float64{
		{1, 10},
		{10, 1},
	}
	got := hungarianMax(util)
	if got[0] != 1 || got[1] != 0 {
		t.Errorf("assignment %v want [1 0]", got)
	}
}

func TestHungarianMaxBeatsGreedyTrap(t *testing.T) {
	// Greedy takes (0,0)=9 and is forced into (1,1)=0 (total 9); the
	// optimum is (0,1)+(1,0) = 8+8 = 16.
	util := [][]float64{
		{9, 8},
		{8, 0},
	}
	got := hungarianMax(util)
	if got[0] != 1 || got[1] != 0 {
		t.Errorf("assignment %v want [1 0]", got)
	}
}

func TestHungarianMaxRectangular(t *testing.T) {
	// More rows than columns: one row stays unassigned.
	util := [][]float64{
		{5, 1},
		{6, 2},
		{7, 8},
	}
	got := hungarianMax(util)
	assignedCols := map[int]bool{}
	count := 0
	for _, j := range got {
		if j >= 0 {
			if assignedCols[j] {
				t.Fatalf("column %d assigned twice: %v", j, got)
			}
			assignedCols[j] = true
			count++
		}
	}
	if count != 2 {
		t.Fatalf("assigned %d rows want 2: %v", count, got)
	}
	// Optimal total: rows 1 and 2 on columns 0 and 1 → 6+8 = 14.
	total := 0.0
	for i, j := range got {
		if j >= 0 {
			total += util[i][j]
		}
	}
	if total != 14 {
		t.Errorf("total utility %v want 14 (%v)", total, got)
	}
}

// bruteForceBest enumerates all assignments of rows to distinct columns
// and returns the maximum total utility.
func bruteForceBest(util [][]float64) float64 {
	n, m := len(util), len(util[0])
	cols := make([]int, m)
	for j := range cols {
		cols[j] = j
	}
	best := math.Inf(-1)
	var rec func(row int, used []bool, total float64, assigned int)
	rec = func(row int, used []bool, total float64, assigned int) {
		want := n
		if m < n {
			want = m
		}
		if row == n {
			if assigned == want && total > best {
				best = total
			}
			return
		}
		// Skip this row (only allowed when rows outnumber columns).
		if n > m {
			rec(row+1, used, total, assigned)
		}
		for j := 0; j < m; j++ {
			if used[j] {
				continue
			}
			used[j] = true
			rec(row+1, used, total+util[row][j], assigned+1)
			used[j] = false
		}
	}
	rec(0, make([]bool, m), 0, 0)
	return best
}

func TestHungarianMaxMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(5)
		m := 1 + rng.Intn(5)
		util := make([][]float64, n)
		for i := range util {
			util[i] = make([]float64, m)
			for j := range util[i] {
				util[i][j] = math.Round(rng.Float64()*100) / 10
			}
		}
		got := hungarianMax(util)
		var total float64
		seen := map[int]bool{}
		for i, j := range got {
			if j < 0 {
				continue
			}
			if seen[j] {
				t.Fatalf("trial %d: column %d reused (%v)", trial, j, got)
			}
			seen[j] = true
			total += util[i][j]
		}
		want := bruteForceBest(util)
		if math.Abs(total-want) > 1e-9 {
			t.Fatalf("trial %d (%dx%d): hungarian %v vs brute force %v (%v)", trial, n, m, total, want, util)
		}
	}
}

func TestOptimalLinkBeatsGreedyOnTrap(t *testing.T) {
	// Construct trajectories whose tag similarities form the greedy trap
	// above: greedy total 9, optimal total 16.
	mk := func(id string, y float64) model.Trajectory {
		return walkAt(id, geo.Point{Y: y}, 1, 0, 10)
	}
	d1 := model.Dataset{mk("r0", 0), mk("r1", 1)}
	d2 := model.Dataset{mk("c0", 10), mk("c1", 20)}
	scorer := eval.FuncScorer{N: "trap", F: func(a, b model.Trajectory) (float64, error) {
		key := [2]float64{a.Samples[0].Loc.Y, b.Samples[0].Loc.Y}
		switch key {
		case [2]float64{0, 10}:
			return 9, nil
		case [2]float64{0, 20}:
			return 8, nil
		case [2]float64{1, 10}:
			return 8, nil
		default:
			return 0, nil
		}
	}}
	opts := Options{MinScore: math.Inf(-1), Workers: 1}
	greedy, err := GreedyLink(d1, d2, scorer, opts)
	if err != nil {
		t.Fatal(err)
	}
	optimal, err := OptimalLink(d1, d2, scorer, opts)
	if err != nil {
		t.Fatal(err)
	}
	sum := func(ls []Link) (s float64) {
		for _, l := range ls {
			s += l.Score
		}
		return s
	}
	if sum(optimal) <= sum(greedy) {
		t.Errorf("optimal total %v not above greedy total %v", sum(optimal), sum(greedy))
	}
	if sum(optimal) != 16 {
		t.Errorf("optimal total %v want 16", sum(optimal))
	}
}

func TestOptimalLinkRespectsVetoes(t *testing.T) {
	mk := func(id string, y float64) model.Trajectory {
		return walkAt(id, geo.Point{Y: y}, 1, 0, 10)
	}
	d1 := model.Dataset{mk("a", 0)}
	d2 := model.Dataset{mk("b", 100)}
	links, err := OptimalLink(d1, d2, tagScorer, Options{MinScore: -1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(links) != 0 {
		t.Errorf("vetoed pair linked: %v", links)
	}
	if _, err := OptimalLink(nil, d2, tagScorer, Options{}); err == nil {
		t.Error("empty input accepted")
	}
}
