package linking

import (
	"errors"
	"math"
	"testing"

	"github.com/stslib/sts/internal/eval"
	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/model"
)

// walkAt builds a trajectory at constant velocity, sampled at the given
// times, passing through origin at t=0.
func walkAt(id string, origin geo.Point, vx float64, times ...float64) model.Trajectory {
	tr := model.Trajectory{ID: id}
	for _, t := range times {
		tr.Samples = append(tr.Samples, model.Sample{
			Loc: geo.Point{X: origin.X + vx*t, Y: origin.Y},
			T:   t,
		})
	}
	return tr
}

func TestMergeByTime(t *testing.T) {
	a := walkAt("a", geo.Point{}, 1, 0, 10, 20)
	b := walkAt("b", geo.Point{}, 1, 5, 15)
	m := MergeByTime(a, b)
	if m.Len() != 5 {
		t.Fatalf("merged %d samples", m.Len())
	}
	want := []float64{0, 5, 10, 15, 20}
	for i, s := range m.Samples {
		if s.T != want[i] {
			t.Fatalf("merged[%d].T=%v want %v", i, s.T, want[i])
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("merged invalid: %v", err)
	}
	// Empty operands.
	if got := MergeByTime(a, model.Trajectory{}); got.Len() != a.Len() {
		t.Error("merge with empty lost samples")
	}
}

func TestFeasible(t *testing.T) {
	// Same walk at 1 m/s, offset sampling: always feasible at 2 m/s.
	a := walkAt("a", geo.Point{}, 1, 0, 10, 20)
	b := walkAt("b", geo.Point{}, 1, 5, 15)
	if !Feasible(a, b, 2, 0.5) {
		t.Error("co-moving pair judged infeasible")
	}
	// Two objects 100 m apart sampled 1 s apart: needs 100 m/s.
	c := walkAt("c", geo.Point{Y: 100}, 1, 1, 11)
	if Feasible(a, c, 2, 0.5) {
		t.Error("distant pair judged feasible")
	}
	// The minGap exemption forgives near-simultaneous noisy samples.
	d := walkAt("d", geo.Point{Y: 3}, 1, 0.01, 10.01)
	if !Feasible(a, d, 2, 0.5) {
		t.Error("noise at tiny delta-t not exempted")
	}
}

// tagScorer links by closeness of the trajectories' origins.
var tagScorer = eval.FuncScorer{N: "tag", F: func(a, b model.Trajectory) (float64, error) {
	return -math.Abs(a.Samples[0].Loc.Y - b.Samples[0].Loc.Y), nil
}}

func TestGreedyLinkRecoversIdentity(t *testing.T) {
	var d1, d2 model.Dataset
	for i := 0; i < 5; i++ {
		d1 = append(d1, walkAt("a", geo.Point{Y: float64(i * 10)}, 1, 0, 10, 20))
		d2 = append(d2, walkAt("b", geo.Point{Y: float64(i*10) + 1}, 1, 5, 15))
	}
	links, err := GreedyLink(d1, d2, tagScorer, Options{MinScore: math.Inf(-1), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(links) != 5 {
		t.Fatalf("got %d links", len(links))
	}
	p, r := Accuracy(links, 5)
	if p != 1 || r != 1 {
		t.Errorf("precision=%v recall=%v", p, r)
	}
	// Links sorted descending by score.
	for i := 1; i < len(links); i++ {
		if links[i].Score > links[i-1].Score {
			t.Error("links not sorted")
		}
	}
}

func TestGreedyLinkOneToOne(t *testing.T) {
	// Two rows both closest to the same column: only one may take it.
	d1 := model.Dataset{
		walkAt("a0", geo.Point{Y: 0}, 1, 0, 10),
		walkAt("a1", geo.Point{Y: 0.1}, 1, 0, 10),
	}
	d2 := model.Dataset{
		walkAt("b0", geo.Point{Y: 0}, 1, 5, 15),
		walkAt("b1", geo.Point{Y: 50}, 1, 5, 15),
	}
	links, err := GreedyLink(d1, d2, tagScorer, Options{MinScore: math.Inf(-1), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	seenJ := map[int]bool{}
	for _, l := range links {
		if seenJ[l.J] {
			t.Fatal("column linked twice")
		}
		seenJ[l.J] = true
	}
}

func TestGreedyLinkMinScore(t *testing.T) {
	d1 := model.Dataset{walkAt("a", geo.Point{Y: 0}, 1, 0, 10)}
	d2 := model.Dataset{walkAt("b", geo.Point{Y: 100}, 1, 5, 15)}
	links, err := GreedyLink(d1, d2, tagScorer, Options{MinScore: -1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(links) != 0 {
		t.Errorf("threshold did not reject: %v", links)
	}
}

func TestGreedyLinkFeasibilityFilter(t *testing.T) {
	// The tag scorer says these two are a great match (same Y), but the
	// merged trajectory needs 100 m/s: the feasibility filter must veto.
	d1 := model.Dataset{walkAt("a", geo.Point{Y: 0}, 0, 0, 10)}
	far := model.Trajectory{ID: "b", Samples: []model.Sample{
		{Loc: geo.Point{X: 1000, Y: 0}, T: 1},
		{Loc: geo.Point{X: 1000, Y: 0}, T: 11},
	}}
	d2 := model.Dataset{far}
	links, err := GreedyLink(d1, d2, tagScorer, Options{MinScore: math.Inf(-1), MaxSpeed: 10, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(links) != 0 {
		t.Errorf("infeasible pair linked: %v", links)
	}
}

func TestGreedyLinkDoesNotScoreInfeasiblePairs(t *testing.T) {
	// One stationary pair at the origin, one trajectory parked 1 km away:
	// the far pairs fail the 10 m/s feasibility check and must never reach
	// the scorer.
	d1 := model.Dataset{walkAt("a", geo.Point{Y: 0}, 0, 0, 10)}
	far := model.Trajectory{ID: "far", Samples: []model.Sample{
		{Loc: geo.Point{X: 1000}, T: 1},
		{Loc: geo.Point{X: 1000}, T: 11},
	}}
	near := walkAt("near", geo.Point{Y: 1}, 0, 5, 15)
	d2 := model.Dataset{far, near}
	scored := 0
	counter := eval.FuncScorer{N: "count", F: func(a, b model.Trajectory) (float64, error) {
		scored++
		return 1, nil
	}}
	links, err := GreedyLink(d1, d2, counter, Options{MaxSpeed: 10, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if scored != 1 {
		t.Errorf("scored %d pairs, want 1 (the feasible one)", scored)
	}
	if len(links) != 1 || links[0].J != 1 {
		t.Errorf("links=%v want the near pair", links)
	}
}

func TestGreedyLinkDeterministicTies(t *testing.T) {
	// Every pair scores identically: greedy must resolve ties by (I, J),
	// linking the diagonal, on every run.
	constScorer := eval.FuncScorer{N: "const", F: func(a, b model.Trajectory) (float64, error) {
		return 0.5, nil
	}}
	var d1, d2 model.Dataset
	for i := 0; i < 4; i++ {
		d1 = append(d1, walkAt("a", geo.Point{Y: float64(i)}, 1, 0, 10))
		d2 = append(d2, walkAt("b", geo.Point{Y: float64(i)}, 1, 5, 15))
	}
	for trial := 0; trial < 5; trial++ {
		links, err := GreedyLink(d1, d2, constScorer, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(links) != 4 {
			t.Fatalf("got %d links", len(links))
		}
		for k, l := range links {
			if l.I != k || l.J != k {
				t.Fatalf("trial %d: link %d is (%d,%d), want diagonal", trial, k, l.I, l.J)
			}
		}
	}
}

func TestFeasibleDoesNotAllocate(t *testing.T) {
	a := walkAt("a", geo.Point{}, 1, 0, 10, 20, 30, 40)
	b := walkAt("b", geo.Point{}, 1, 5, 15, 25, 35)
	allocs := testing.AllocsPerRun(100, func() {
		Feasible(a, b, 2, 0.5)
	})
	if allocs != 0 {
		t.Errorf("Feasible allocates %v times per call, want 0", allocs)
	}
}

func TestGreedyLinkErrors(t *testing.T) {
	d := model.Dataset{walkAt("a", geo.Point{}, 1, 0, 10)}
	if _, err := GreedyLink(nil, d, tagScorer, Options{}); !errors.Is(err, ErrEmptyInput) {
		t.Errorf("empty d1: %v", err)
	}
	if _, err := GreedyLink(d, nil, tagScorer, Options{}); !errors.Is(err, ErrEmptyInput) {
		t.Errorf("empty d2: %v", err)
	}
}

func TestAccuracyEdgeCases(t *testing.T) {
	if p, r := Accuracy(nil, 0); p != 0 || r != 0 {
		t.Errorf("empty: %v %v", p, r)
	}
	if p, r := Accuracy(nil, 5); p != 0 || r != 0 {
		t.Errorf("no links: %v %v", p, r)
	}
	links := []Link{{I: 0, J: 0}, {I: 1, J: 2}}
	p, r := Accuracy(links, 4)
	if p != 0.5 || r != 0.25 {
		t.Errorf("precision=%v recall=%v", p, r)
	}
}
