// Package linking implements trajectory linking — deciding which
// trajectories, collected by different sensing systems, belong to the
// same object. It is the flagship application of spatial-temporal
// similarity (Section II of the STS paper and its references [1], [22],
// [23]).
//
// Two families are provided:
//
//   - a similarity-based linker that turns any pairwise similarity
//     measure into an assignment between two trajectory sets, with
//     greedy one-to-one matching and a rejection threshold;
//   - the velocity-feasibility compatibility check of FTL (Wu et al.,
//     ICDE 2016) and ST-Link/SLIM: two trajectories can only belong to
//     the same object if the merged sequence never requires moving
//     faster than a speed bound. STS replaces the global bound with a
//     personalized speed distribution; the FTL-style check remains
//     useful as a cheap pre-filter.
package linking

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"github.com/stslib/sts/internal/engine"
	"github.com/stslib/sts/internal/eval"
	"github.com/stslib/sts/internal/model"
)

// Feasible reports whether trajectories a and b could have been produced
// by one object whose speed never exceeds maxSpeed (m/s) — the mutual
// compatibility test of FTL with a global velocity threshold. Samples
// closer in time than minGap seconds are exempted (location noise makes
// instantaneous speeds unbounded as Δt → 0).
//
// The check walks both (time-sorted) sample sequences with two cursors
// instead of materializing the merged trajectory, so it allocates nothing:
// it runs as a pre-filter over every candidate pair in GreedyLink, where a
// per-pair copy of both trajectories would dominate the filter's cost.
// Ordering matches MergeByTime (ties keep a's sample first).
func Feasible(a, b model.Trajectory, maxSpeed, minGap float64) bool {
	i, j := 0, 0
	var prev model.Sample
	have := false
	for i < a.Len() || j < b.Len() {
		var cur model.Sample
		if j >= b.Len() || (i < a.Len() && a.Samples[i].T <= b.Samples[j].T) {
			cur = a.Samples[i]
			i++
		} else {
			cur = b.Samples[j]
			j++
		}
		if have {
			dt := cur.T - prev.T
			if dt >= minGap {
				d := cur.Loc.Dist(prev.Loc)
				if d/dt > maxSpeed {
					return false
				}
			}
		}
		prev = cur
		have = true
	}
	return true
}

// MergeByTime interleaves the samples of a and b into one time-sorted
// sequence (the "merged trajectory" of FTL and of STS's Eq. 10). Samples
// with identical timestamps keep a's first.
func MergeByTime(a, b model.Trajectory) model.Trajectory {
	out := model.Trajectory{
		ID:      a.ID + "+" + b.ID,
		Samples: make([]model.Sample, 0, a.Len()+b.Len()),
	}
	i, j := 0, 0
	for i < a.Len() && j < b.Len() {
		if a.Samples[i].T <= b.Samples[j].T {
			out.Samples = append(out.Samples, a.Samples[i])
			i++
		} else {
			out.Samples = append(out.Samples, b.Samples[j])
			j++
		}
	}
	out.Samples = append(out.Samples, a.Samples[i:]...)
	out.Samples = append(out.Samples, b.Samples[j:]...)
	return out
}

// Link is one matched pair produced by the linker.
type Link struct {
	// I and J index the trajectory in the first and second set.
	I, J int
	// Score is the similarity that produced the link.
	Score float64
}

// Options configures the linker.
type Options struct {
	// MinScore rejects links whose similarity falls below it. With the
	// default 0, any positive similarity can link.
	MinScore float64
	// MaxSpeed, when positive, enables the FTL feasibility pre-filter:
	// pairs whose merged trajectory requires exceeding this speed are
	// never scored. MinGap is the Δt exemption of the filter (default
	// 1 s when MaxSpeed is set).
	MaxSpeed float64
	MinGap   float64
	// Workers bounds scoring parallelism (0 = GOMAXPROCS).
	Workers int
}

// ErrEmptyInput is returned when either trajectory set is empty.
var ErrEmptyInput = errors.New("linking: empty trajectory set")

// GreedyLink links two trajectory sets one-to-one: the optional FTL
// feasibility pre-filter first masks out incompatible pairs, the
// similarity of the surviving pairs is computed (masked pairs are never
// scored — with an STS scorer, trajectories feasible with nothing are not
// even prepared), and pairs are accepted best-first, skipping trajectories
// already linked — the standard greedy assignment used by linkage systems
// when a full optimal assignment is unnecessary. Returned links are sorted
// by descending score; equal scores break ties by (I, J), so the linking
// is deterministic.
func GreedyLink(d1, d2 model.Dataset, scorer eval.Scorer, opts Options) ([]Link, error) {
	return GreedyLinkContext(context.Background(), d1, d2, scorer, opts)
}

// GreedyLinkContext is GreedyLink with cancellation: the feasibility
// pre-filter and the scoring matrix both run on the engine executor, so
// cancelling ctx aborts the linking promptly at either stage.
func GreedyLinkContext(ctx context.Context, d1, d2 model.Dataset, scorer eval.Scorer, opts Options) ([]Link, error) {
	if len(d1) == 0 || len(d2) == 0 {
		return nil, ErrEmptyInput
	}
	mask, err := feasibilityMask(ctx, d1, d2, opts)
	if err != nil {
		return nil, fmt.Errorf("linking: %w", err)
	}
	var scores [][]float64
	if opts.MinScore > 0 {
		// The rejection threshold doubles as a pruning floor: pairs provably
		// below it collapse to −Inf without full scoring, and greedySelect
		// drops them exactly as it would drop their sub-threshold scores.
		scores, err = eval.ScoreMatrixMinContext(ctx, d1, d2, scorer, mask, opts.MinScore, opts.Workers)
	} else {
		scores, err = eval.ScoreMatrixMaskedContext(ctx, d1, d2, scorer, mask, opts.Workers)
	}
	if err != nil {
		return nil, fmt.Errorf("linking: %w", err)
	}
	return greedySelect(scores, mask, opts.MinScore), nil
}

// Batcher scores rows × cols under a mask on some execution substrate.
// *engine.Engine implements it; GreedyLinkBatch uses it so a long-lived
// server links through the engine's prepared/profile LRU caches instead of
// re-preparing every trajectory per request.
type Batcher interface {
	ScoreBatch(ctx context.Context, rows, cols model.Dataset, mask [][]bool) ([][]float64, error)
}

// MinBatcher is an optional Batcher extension for substrates that can
// enforce a score floor while scoring — *engine.Engine implements it with
// the filter-and-refine matrix. GreedyLinkBatch routes a positive MinScore
// through it so sub-threshold pairs are pruned instead of fully scored;
// the links produced are identical either way.
type MinBatcher interface {
	Batcher
	ScoreBatchMin(ctx context.Context, rows, cols model.Dataset, mask [][]bool, minScore float64) ([][]float64, error)
}

// GreedyLinkBatch is GreedyLinkContext with the scoring delegated to a
// Batcher: same FTL feasibility pre-filter, same masked scoring semantics,
// same deterministic greedy selection — but per-trajectory preparation is
// cached across calls when the Batcher is an engine. The serving layer's
// /v1/link endpoint runs through this entry point.
func GreedyLinkBatch(ctx context.Context, b Batcher, d1, d2 model.Dataset, opts Options) ([]Link, error) {
	if len(d1) == 0 || len(d2) == 0 {
		return nil, ErrEmptyInput
	}
	mask, err := feasibilityMask(ctx, d1, d2, opts)
	if err != nil {
		return nil, fmt.Errorf("linking: %w", err)
	}
	var scores [][]float64
	if mb, ok := b.(MinBatcher); ok && opts.MinScore > 0 {
		scores, err = mb.ScoreBatchMin(ctx, d1, d2, mask, opts.MinScore)
	} else {
		scores, err = b.ScoreBatch(ctx, d1, d2, mask)
	}
	if err != nil {
		return nil, fmt.Errorf("linking: %w", err)
	}
	return greedySelect(scores, mask, opts.MinScore), nil
}

// greedySelect turns a scored (and optionally masked) matrix into a
// one-to-one assignment, accepting pairs best-first and skipping
// trajectories already linked. Equal scores break ties by (I, J), so the
// linking is deterministic.
func greedySelect(scores [][]float64, mask [][]bool, minScore float64) []Link {
	type cand struct {
		i, j int
		s    float64
	}
	var cands []cand
	for i := range scores {
		for j := range scores[i] {
			if mask != nil && !mask[i][j] {
				continue
			}
			if scores[i][j] < minScore {
				continue
			}
			cands = append(cands, cand{i, j, scores[i][j]})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].s != cands[b].s {
			return cands[a].s > cands[b].s
		}
		if cands[a].i != cands[b].i {
			return cands[a].i < cands[b].i
		}
		return cands[a].j < cands[b].j
	})
	usedI := make([]bool, len(scores))
	cols := 0
	if len(scores) > 0 {
		cols = len(scores[0])
	}
	usedJ := make([]bool, cols)
	var links []Link
	for _, c := range cands {
		if usedI[c.i] || usedJ[c.j] {
			continue
		}
		usedI[c.i] = true
		usedJ[c.j] = true
		links = append(links, Link{I: c.i, J: c.j, Score: c.s})
	}
	return links
}

// feasibilityMask builds the FTL pre-filter mask (nil when the filter is
// disabled), parallelizing the pairwise feasibility checks over rows on
// the engine executor.
func feasibilityMask(ctx context.Context, d1, d2 model.Dataset, opts Options) ([][]bool, error) {
	if opts.MaxSpeed <= 0 {
		return nil, nil
	}
	minGap := opts.MinGap
	if minGap <= 0 {
		minGap = 1
	}
	mask := make([][]bool, len(d1))
	err := engine.ForEach(ctx, len(d1), opts.Workers, func(i int) error {
		row := make([]bool, len(d2))
		for j := range d2 {
			row[j] = Feasible(d1[i], d2[j], opts.MaxSpeed, minGap)
		}
		mask[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return mask, nil
}

// Accuracy evaluates a linking against the ground truth that d1[i] and
// d2[i] observe the same object: the fraction of true pairs recovered
// (recall) and the fraction of produced links that are correct
// (precision).
func Accuracy(links []Link, n int) (precision, recall float64) {
	if n == 0 {
		return 0, 0
	}
	correct := 0
	for _, l := range links {
		if l.I == l.J {
			correct++
		}
	}
	if len(links) > 0 {
		precision = float64(correct) / float64(len(links))
	}
	recall = float64(correct) / float64(n)
	return precision, recall
}
