package linking

import (
	"context"
	"testing"

	"github.com/stslib/sts/internal/core"
	"github.com/stslib/sts/internal/engine"
	"github.com/stslib/sts/internal/eval"
	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/model"
)

// TestGreedyLinkBatchMatchesContext checks that linking through an
// engine's ScoreBatch (the serving path) produces exactly the links of the
// transient GreedyLinkContext path, pre-filter and thresholds included.
func TestGreedyLinkBatchMatchesContext(t *testing.T) {
	grid, err := geo.NewGrid(geo.NewRect(geo.Point{X: -100, Y: -100}, geo.Point{X: 400, Y: 100}), 10)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewSTS(grid, 5)
	if err != nil {
		t.Fatal(err)
	}
	scorer := eval.NewSTSScorer("STS", m)

	ds1 := model.Dataset{
		walkAt("a", geo.Point{}, 1, 0, 10, 20, 30, 40),
		walkAt("b", geo.Point{Y: 50}, 1.5, 0, 10, 20, 30, 40),
		walkAt("c", geo.Point{Y: -50}, 0.5, 0, 10, 20, 30, 40),
	}
	ds2 := model.Dataset{
		walkAt("c2", geo.Point{Y: -50}, 0.5, 5, 15, 25, 35),
		walkAt("a2", geo.Point{}, 1, 5, 15, 25, 35),
		walkAt("b2", geo.Point{Y: 50}, 1.5, 5, 15, 25, 35),
	}

	opts := Options{MaxSpeed: 3, MinGap: 1}
	want, err := GreedyLinkContext(context.Background(), ds1, ds2, scorer, opts)
	if err != nil {
		t.Fatal(err)
	}

	eng, err := engine.New(scorer, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := GreedyLinkBatch(context.Background(), eng, ds1, ds2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("GreedyLinkBatch: %d links, GreedyLinkContext: %d", len(got), len(want))
	}
	for i := range got {
		if got[i].I != want[i].I || got[i].J != want[i].J || got[i].Score != want[i].Score {
			t.Fatalf("link %d: batch %+v, context %+v", i, got[i], want[i])
		}
	}
	if len(got) == 0 {
		t.Fatal("no links produced; test is vacuous")
	}
	// Empty inputs fail the same way.
	if _, err := GreedyLinkBatch(context.Background(), eng, nil, ds2, opts); err != ErrEmptyInput {
		t.Fatalf("empty d1: err=%v", err)
	}
}
