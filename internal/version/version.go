// Package version stamps the repository's binaries from the build info the
// Go toolchain embeds — no ldflags plumbing needed. All four commands
// (stsmatch, stsbench, stsgen, stsserved) expose it behind -version, and
// stsserved surfaces it in /v1/stats so a fleet's deployed revisions can
// be audited over HTTP.
package version

import (
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
)

var once = sync.OnceValue(compute)

// String returns a human-readable build stamp, e.g.
//
//	(devel) rev 1a2b3c4d5e6f (modified) go1.24.0
//
// assembled from runtime/debug.ReadBuildInfo: the main module version,
// the VCS revision (truncated to 12 hex digits) with a dirty-tree marker,
// and the toolchain. Binaries built outside a module or VCS checkout
// degrade gracefully to whatever parts are known.
func String() string { return once() }

func compute() string {
	var parts []string
	if bi, ok := debug.ReadBuildInfo(); ok {
		if v := bi.Main.Version; v != "" {
			parts = append(parts, v)
		}
		var rev, modified string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					modified = " (modified)"
				}
			}
		}
		if rev != "" {
			if len(rev) > 12 {
				rev = rev[:12]
			}
			parts = append(parts, "rev "+rev+modified)
		}
	}
	parts = append(parts, runtime.Version())
	return strings.Join(parts, " ")
}
