package version

import (
	"runtime"
	"strings"
	"testing"
)

func TestStringNonEmptyAndStable(t *testing.T) {
	v := String()
	if v == "" {
		t.Fatal("version.String() is empty")
	}
	if !strings.Contains(v, runtime.Version()) {
		t.Fatalf("version.String() = %q, missing toolchain %q", v, runtime.Version())
	}
	if v2 := String(); v2 != v {
		t.Fatalf("version.String() not stable: %q then %q", v, v2)
	}
}
