package markov

import (
	"errors"
	"math"
	"testing"

	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/model"
)

func grid10(t *testing.T) *geo.Grid {
	t.Helper()
	g, err := geo.NewGrid(geo.NewRect(geo.Point{}, geo.Point{X: 100, Y: 100}), 10)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// hop builds a trajectory visiting the centers of the given cells in
// order, one second apart.
func hop(g *geo.Grid, cells ...int) model.Trajectory {
	tr := model.Trajectory{ID: "h"}
	for i, c := range cells {
		tr.Samples = append(tr.Samples, model.Sample{Loc: g.Center(c), T: float64(i)})
	}
	return tr
}

func TestTrainErrors(t *testing.T) {
	g := grid10(t)
	if _, err := Train(g, nil, 1); !errors.Is(err, ErrNoData) {
		t.Errorf("empty dataset: %v", err)
	}
	single := model.Dataset{hop(g, 5)}
	if _, err := Train(g, single, 1); !errors.Is(err, ErrNoData) {
		t.Errorf("no transitions: %v", err)
	}
}

func TestProbFavorsObservedTransitions(t *testing.T) {
	g := grid10(t)
	// Cell 0 transitions to 1 three times and to 10 once.
	ds := model.Dataset{hop(g, 0, 1), hop(g, 0, 1), hop(g, 0, 1), hop(g, 0, 10)}
	m, err := Train(g, ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	p01 := m.Prob(0, 1)
	p010 := m.Prob(0, 10)
	pUnseen := m.Prob(0, 55)
	if !(p01 > p010 && p010 > pUnseen && pUnseen >= 0) {
		t.Errorf("p01=%v p0_10=%v unseen=%v", p01, p010, pUnseen)
	}
}

func TestProbRowApproximatelyNormalized(t *testing.T) {
	g := grid10(t)
	ds := model.Dataset{hop(g, 0, 1, 2, 3, 0, 1, 0, 2)}
	m, err := Train(g, ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for c := 0; c < g.N(); c++ {
		total += m.Prob(0, c)
	}
	if math.Abs(total-1) > 0.05 {
		t.Errorf("row 0 sums to %v", total)
	}
}

func TestProbUnseenRowIsUniform(t *testing.T) {
	g := grid10(t)
	ds := model.Dataset{hop(g, 0, 1)}
	m, err := Train(g, ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / float64(g.N())
	if got := m.Prob(42, 7); got != want {
		t.Errorf("unseen row: %v want %v", got, want)
	}
}

func TestProbPointsMatchesProb(t *testing.T) {
	g := grid10(t)
	ds := model.Dataset{hop(g, 0, 1, 2)}
	m, err := Train(g, ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, b := g.Center(0), g.Center(1)
	if m.ProbPoints(a, 0, b, 99) != m.Prob(0, 1) {
		t.Error("ProbPoints differs from Prob (must ignore time)")
	}
}

func TestEntropy(t *testing.T) {
	g := grid10(t)
	// Deterministic row: entropy 0. Spread row: entropy > 0.
	ds := model.Dataset{hop(g, 0, 1, 0, 1), hop(g, 5, 6), hop(g, 5, 15), hop(g, 5, 4)}
	m, err := Train(g, ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Entropy(0); got != 0 {
		t.Errorf("deterministic row entropy=%v", got)
	}
	if got := m.Entropy(5); got <= 0 {
		t.Errorf("spread row entropy=%v", got)
	}
	// Unseen row: maximum entropy log N.
	if got := m.Entropy(77); math.Abs(got-math.Log(float64(g.N()))) > 1e-12 {
		t.Errorf("unseen row entropy=%v", got)
	}
}

func TestObservedRows(t *testing.T) {
	g := grid10(t)
	ds := model.Dataset{hop(g, 0, 1, 2)}
	m, err := Train(g, ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.ObservedRows(); got != 2 {
		t.Errorf("ObservedRows=%d want 2", got)
	}
}

func TestNegativeAlphaClamped(t *testing.T) {
	g := grid10(t)
	ds := model.Dataset{hop(g, 0, 1)}
	m, err := Train(g, ds, -5)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Prob(0, 1); got != 1 {
		t.Errorf("alpha<0 should behave as 0: p=%v", got)
	}
}
