// Package markov implements the frequency-based, first-order Markov grid
// transition model that much prior work (APM and the uncertain-trajectory
// query literature the paper cites as [24], [25], [34]) uses to estimate
// object locations. It is the substrate behind the STS-F ablation variant:
// transition probabilities between grid cells are estimated from the
// frequency of observed transitions in historical data, *universally* for
// all objects, in contrast to STS's personalized speed model.
package markov

import (
	"errors"
	"math"

	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/model"
)

// TransitionModel is a frequency-based grid-to-grid transition model.
// Counts are collected per consecutive sample pair; probabilities are
// row-normalized with Laplace smoothing over the destination cells that
// were ever observed, plus a configurable self-transition floor so unseen
// cells do not make whole trajectories impossible.
type TransitionModel struct {
	grid *geo.Grid
	// rows maps a source cell to its observed destination counts.
	rows map[int]map[int]float64
	// rowTotal caches the total outgoing count per source cell.
	rowTotal map[int]float64
	// alpha is the Laplace smoothing pseudo-count.
	alpha float64
	// uniform is the fallback probability used for source cells never
	// observed in the training data: 1/N over the whole grid.
	uniform float64
}

// ErrNoData is returned when Train is given a dataset with no transitions.
var ErrNoData = errors.New("markov: no transitions in training data")

// Train builds a transition model over grid from the consecutive-sample
// transitions of every trajectory in ds. alpha is the Laplace smoothing
// pseudo-count (a typical value is 1).
func Train(grid *geo.Grid, ds model.Dataset, alpha float64) (*TransitionModel, error) {
	if alpha < 0 {
		alpha = 0
	}
	m := &TransitionModel{
		grid:     grid,
		rows:     make(map[int]map[int]float64),
		rowTotal: make(map[int]float64),
		alpha:    alpha,
		uniform:  1 / float64(grid.N()),
	}
	n := 0
	for _, tr := range ds {
		for i := 1; i < tr.Len(); i++ {
			from := grid.Cell(tr.Samples[i-1].Loc)
			to := grid.Cell(tr.Samples[i].Loc)
			row := m.rows[from]
			if row == nil {
				row = make(map[int]float64)
				m.rows[from] = row
			}
			row[to]++
			m.rowTotal[from]++
			n++
		}
	}
	if n == 0 {
		return nil, ErrNoData
	}
	return m, nil
}

// Prob returns the estimated probability of transiting from cell `from` to
// cell `to`, independent of the time interval (the frequency-based models
// in the prior work are time-homogeneous per step). Rows never observed in
// training fall back to a uniform distribution.
func (m *TransitionModel) Prob(from, to int) float64 {
	row, ok := m.rows[from]
	if !ok {
		return m.uniform
	}
	total := m.rowTotal[from]
	k := float64(len(row)) + 1 // +1 virtual mass for "anywhere else"
	denom := total + m.alpha*k
	if c, ok := row[to]; ok {
		return (c + m.alpha) / denom
	}
	// Unseen destination: the single smoothing pseudo-count spread over
	// all cells not in the row.
	rest := float64(m.grid.N() - len(row))
	if rest <= 0 {
		return 0
	}
	return m.alpha / denom / rest
}

// ProbPoints adapts Prob to point arguments, satisfying the transition
// interface stprob expects. The time arguments are ignored (frequency
// models are time-agnostic), which is exactly the weakness STS's
// personalized spatio-temporal model addresses.
func (m *TransitionModel) ProbPoints(a geo.Point, ta float64, b geo.Point, tb float64) float64 {
	return m.Prob(m.grid.Cell(a), m.grid.Cell(b))
}

// Entropy returns the Shannon entropy (nats) of the outgoing distribution
// of cell `from` over its observed destinations, a diagnostic for how
// deterministic the learned mobility is.
func (m *TransitionModel) Entropy(from int) float64 {
	row, ok := m.rows[from]
	if !ok {
		return math.Log(float64(m.grid.N()))
	}
	total := m.rowTotal[from]
	var h float64
	for _, c := range row {
		p := c / total
		h -= p * math.Log(p)
	}
	return h
}

// ObservedRows returns the number of source cells with at least one
// observed transition.
func (m *TransitionModel) ObservedRows() int { return len(m.rows) }
