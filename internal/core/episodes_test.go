package core

import (
	"testing"

	"github.com/stslib/sts/internal/geo"
)

func prepare2(t *testing.T, m *Measure, a, b walkSpec) (*Prepared, *Prepared) {
	t.Helper()
	pa, err := m.Prepare(walk(a.id, a.origin, a.vx, a.vy, a.step, a.phase, a.n))
	if err != nil {
		t.Fatal(err)
	}
	pb, err := m.Prepare(walk(b.id, b.origin, b.vx, b.vy, b.step, b.phase, b.n))
	if err != nil {
		t.Fatal(err)
	}
	return pa, pb
}

type walkSpec struct {
	id          string
	origin      geo.Point
	vx, vy      float64
	step, phase float64
	n           int
}

func TestContactEpisodesDetectsCoMovement(t *testing.T) {
	g := testGrid(t)
	m := mustSTS(t, g, 3)
	// Same corridor, asynchronous sampling: contact throughout.
	pa, pb := prepare2(t, m,
		walkSpec{"a", geo.Point{Y: 100}, 1.2, 0, 13, 0, 12},
		walkSpec{"b", geo.Point{Y: 100}, 1.2, 0, 17, 5, 9},
	)
	eps, err := ContactEpisodes(pa, pb, 5, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) == 0 {
		t.Fatal("no contact episodes for co-moving objects")
	}
	var total float64
	for _, e := range eps {
		if e.End < e.Start {
			t.Fatalf("inverted episode %+v", e)
		}
		if e.Peak < e.Mean {
			t.Fatalf("peak below mean: %+v", e)
		}
		total += e.Duration()
	}
	overlap := pb.Tr.End() - pb.Tr.Start()
	if total < overlap/3 {
		t.Errorf("contact covers only %v of %v seconds", total, overlap)
	}
}

func TestContactEpisodesEmptyForSeparatedObjects(t *testing.T) {
	g := testGrid(t)
	m := mustSTS(t, g, 3)
	pa, pb := prepare2(t, m,
		walkSpec{"a", geo.Point{Y: 40}, 1.2, 0, 13, 0, 12},
		walkSpec{"c", geo.Point{Y: 200}, 1.2, 0, 17, 5, 9},
	)
	eps, err := ContactEpisodes(pa, pb, 5, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) != 0 {
		t.Errorf("episodes for objects 160 m apart: %+v", eps)
	}
}

func TestContactEpisodesDisjointWindows(t *testing.T) {
	g := testGrid(t)
	m := mustSTS(t, g, 3)
	pa, pb := prepare2(t, m,
		walkSpec{"a", geo.Point{Y: 100}, 1, 0, 10, 0, 5},
		walkSpec{"b", geo.Point{Y: 100}, 1, 0, 10, 1000, 5},
	)
	eps, err := ContactEpisodes(pa, pb, 5, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if eps != nil {
		t.Errorf("episodes across disjoint time windows: %+v", eps)
	}
}

func TestContactEpisodesValidation(t *testing.T) {
	g := testGrid(t)
	m := mustSTS(t, g, 3)
	pa, pb := prepare2(t, m,
		walkSpec{"a", geo.Point{Y: 100}, 1, 0, 10, 0, 5},
		walkSpec{"b", geo.Point{Y: 100}, 1, 0, 10, 3, 5},
	)
	if _, err := ContactEpisodes(pa, pb, 0, 0.1); err == nil {
		t.Error("zero step accepted")
	}
	if _, err := ContactEpisodes(pa, pb, -1, 0.1); err == nil {
		t.Error("negative step accepted")
	}
}

func TestContactEpisodesSplitByGap(t *testing.T) {
	g := testGrid(t)
	m := mustSTS(t, g, 3)
	// b walks with a, then detours 100 m north, then rejoins: two
	// episodes separated by the detour.
	a := walk("a", geo.Point{Y: 100}, 1, 0, 10, 0, 19) // t in [0,180]
	b := a.Clone()
	b.ID = "b"
	for i := range b.Samples {
		ti := b.Samples[i].T
		if ti > 60 && ti < 120 {
			b.Samples[i].Loc.Y += 100
		}
		b.Samples[i].T += 2 // asynchronous
	}
	pa, err := m.Prepare(a)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := m.Prepare(b)
	if err != nil {
		t.Fatal(err)
	}
	eps, err := ContactEpisodes(pa, pb, 4, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) < 2 {
		t.Fatalf("detour not detected: %d episodes (%+v)", len(eps), eps)
	}
	// No episode may span the detour's core.
	for _, e := range eps {
		if e.Start < 80 && e.End > 100 {
			t.Errorf("episode %+v spans the detour", e)
		}
	}
}

// TestSpeedSlackRescuesConstantSpeed is the regression test for the grid
// speed-quantization blind spot: at constant object speed, the
// personalized speed support is narrower than the cell/Δt speed quantum
// and the textbook evaluation zeroes every in-between co-location. The
// default SpeedSlack must keep the co-moving pair's contact visible.
func TestSpeedSlackRescuesConstantSpeed(t *testing.T) {
	g := testGrid(t)
	spec1 := walkSpec{"a", geo.Point{Y: 100}, 1.2, 0, 13, 0, 12}
	spec2 := walkSpec{"b", geo.Point{Y: 100}, 1.2, 0, 17, 5, 9}

	withSlack := mustSTS(t, g, 3)
	pa, pb := prepare2(t, withSlack, spec1, spec2)
	var nonZero int
	for tt := 5.0; tt <= 140; tt += 5 {
		cp, err := CoLocation(pa, pb, tt)
		if err != nil {
			t.Fatal(err)
		}
		if cp > 1e-6 {
			nonZero++
		}
	}
	if nonZero < 20 {
		t.Errorf("with slack, only %d/28 probe times show co-location", nonZero)
	}
}
