// Incremental maintenance of prepared state and bucketed profiles under
// sample appends — the streaming path's alternative to re-deriving a
// trajectory's state from scratch on every extension.
//
// Both entry points are bit-identical to a full rebuild of the extended
// trajectory (the append goldens pin this):
//
//   - AppendPrepared reuses the old per-observation noise distributions
//     verbatim — they depend only on the measure's grid, noise model, and
//     support cap, never on the transition estimator — and computes fresh
//     ones only for the tail. The transition spec is re-derived, since a
//     personalized speed model gains speed observations with every append.
//   - AppendProfile copies every prefix bucket entry a rebuild provably
//     reproduces unchanged and recomputes the rest: buckets at or after the
//     previous last observation always, plus — only when the transition
//     provider is trajectory-dependent (personalized KDE) — the
//     interpolated (weightless) prefix buckets, whose Markov estimates
//     shift with the new speed samples. Weight-carrying buckets are exact
//     cached noise distributions either way and are never re-derived. With
//     a trajectory-independent provider (global speed, frequency
//     transitions, fixed transition) the whole prefix is copied and the
//     incremental build costs O(tail) interpolations.
//
// Bound metadata (reach envelopes, observation runs, entry stats) is
// rebuilt through the same buildBoundData pass a fresh profile gets: it is
// linear in samples and buckets with no interpolation work, and reusing the
// one code path keeps admissibility and bit-identity trivially.
package core

import (
	"errors"
	"fmt"

	"github.com/stslib/sts/internal/model"
	"github.com/stslib/sts/internal/stprob"
)

// providerStable reports whether a transition provider's spec is
// independent of the trajectory it is asked about, making interpolated
// profile entries stable under appends. Unknown providers are conservatively
// treated as trajectory-dependent.
func providerStable(p TransitionProvider) bool {
	switch v := p.(type) {
	case GlobalSpeed, FrequencyTransitions, FixedTransition:
		return true
	case StripRadial:
		return providerStable(v.Provider)
	default:
		return false
	}
}

// AppendPrepared extends a prepared trajectory with tail samples, reusing
// the cached noise distributions of the existing observations. The result
// is bit-identical to Prepare of the concatenated trajectory. The tail must
// be strictly after the existing samples; old is not mutated.
func (m *Measure) AppendPrepared(old *Prepared, tail []model.Sample) (*Prepared, error) {
	if old == nil || old.Tr.Len() == 0 {
		return nil, errors.New("core: AppendPrepared needs a non-empty prepared trajectory")
	}
	if len(tail) == 0 {
		return nil, errors.New("core: AppendPrepared needs at least one tail sample")
	}
	n := old.Tr.Len()
	samples := make([]model.Sample, n+len(tail))
	copy(samples, old.Tr.Samples)
	copy(samples[n:], tail)
	tr := model.Trajectory{ID: old.Tr.ID, Samples: samples}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	spec, err := m.provider.For(tr)
	if err != nil {
		return nil, fmt.Errorf("core: transition model for %q: %w", tr.ID, err)
	}
	est := &stprob.Estimator{
		Grid:              m.grid,
		Noise:             m.noise,
		Trans:             spec.Trans,
		Radial:            spec.Radial,
		MaxSpeed:          spec.MaxSpeed,
		Exact:             m.exact,
		MaxCandidateCells: m.maxCand,
		MaxSupportCells:   m.maxSupp,
		SpeedSlack:        m.slack,
	}
	p := &Prepared{Tr: tr, est: est, obs: make([]stprob.Dist, len(samples))}
	copy(p.obs, old.obs)
	for i := n; i < len(samples); i++ {
		p.obs[i] = est.ObservedDist(samples[i].Loc)
	}
	return p, nil
}

// AppendProfile builds the profile of an extended trajectory from the
// profile of its prefix: p must be the prepared state of the full
// trajectory (typically from AppendPrepared) and old the profile of its
// first old.SampleCount() samples, built with the same bucket width and
// storage mode. The result is bit-identical to Measure.Profile(p, opts);
// only the buckets a rebuild could change are recomputed (see the package
// comment for the exact recompute set).
func (m *Measure) AppendProfile(old *Profile, p *Prepared, opts ProfileOptions) (*Profile, error) {
	w, err := opts.bucketWidth()
	if err != nil {
		return nil, err
	}
	if p == nil || p.Tr.Len() == 0 {
		return nil, errors.New("core: AppendProfile needs a non-empty prepared trajectory")
	}
	if old == nil || old.ID != p.Tr.ID || old.BucketSeconds != w ||
		old.compact != opts.Compact || old.n <= 0 || old.n >= p.Tr.Len() {
		return nil, errors.New("core: AppendProfile needs the profile of a strict prefix of the prepared trajectory (same ID, bucket width, and storage mode)")
	}
	start, end := p.Tr.Start(), p.Tr.End()
	b0, b1 := bucketIndex(start, w), bucketIndex(end, w)
	if nb := b1 - b0 + 1; nb > maxProfileBuckets {
		return nil, fmt.Errorf("core: profile of %q would span %d buckets (max %d); widen ProfileOptions.BucketSeconds",
			p.Tr.ID, nb, maxProfileBuckets)
	}
	// Buckets strictly before the one holding the previous last observation
	// keep their sample sets and (clamped) representative times under the
	// append; whether their values survive too depends on the provider.
	bTail := bucketIndex(p.Tr.Samples[old.n-1].T, w)
	stable := providerStable(m.provider)
	prof := &Profile{ID: p.Tr.ID, BucketSeconds: w, n: p.Tr.Len(), compact: opts.Compact}
	ws := scratchPool.Get().(*pairScratch)
	defer scratchPool.Put(ws)
	si, oi := 0, 0
	for b := b0; b <= b1; b++ {
		bucketEnd := float64(b+1) * w
		var weight int32
		first := -1
		for si < len(p.Tr.Samples) && p.Tr.Samples[si].T < bucketEnd {
			if weight == 0 {
				first = si
			}
			weight++
			si++
		}
		for oi < len(old.buckets) && old.buckets[oi] < b {
			oi++
		}
		hasOld := oi < len(old.buckets) && old.buckets[oi] == b
		if b < bTail && (weight > 0 || stable) {
			// A rebuild reproduces this prefix entry unchanged: mirror it
			// verbatim, including its absence (an all-zero distribution is
			// trimmed away by both builds).
			if hasOld {
				if old.weights[oi] != weight {
					return nil, fmt.Errorf("core: AppendProfile: bucket %d weight %d != profile's %d; old profile is not a prefix of %q",
						b, weight, old.weights[oi], p.Tr.ID)
				}
				copyProfileEntry(prof, old, oi)
			}
			continue
		}
		// Recomputed bucket: touched by the appended samples, or an
		// interpolated estimate that moved with the trajectory-dependent
		// transition model.
		var d stprob.Dist
		if weight > 0 {
			d = p.obs[first]
		} else {
			t := (float64(b) + 0.5) * w
			if t < start {
				t = start
			} else if t > end {
				t = end
			}
			var derr error
			d, derr = p.distAtWS(&ws.a, t)
			if derr != nil {
				return nil, derr
			}
		}
		appendProfileEntry(prof, b, weight, d)
	}
	finishProfileViews(prof)
	if opts.Bounds {
		m.buildBoundData(prof, p)
	}
	return prof, nil
}

// copyProfileEntry appends old's i-th entry to prof's backing arrays
// verbatim. Views are rebuilt by finishProfileViews.
func copyProfileEntry(prof, old *Profile, i int) {
	if old.compact {
		d := old.dists32[i]
		prof.cells = append(prof.cells, d.Cells...)
		prof.probs32 = append(prof.probs32, d.Probs...)
		prof.dists32 = append(prof.dists32, stprob.Dist32{Cells: d.Cells, Probs: d.Probs})
	} else {
		d := old.dists[i]
		prof.cells = append(prof.cells, d.Cells...)
		prof.probs = append(prof.probs, d.Probs...)
		prof.dists = append(prof.dists, stprob.Dist{Cells: d.Cells, Probs: d.Probs})
	}
	prof.buckets = append(prof.buckets, old.buckets[i])
	prof.weights = append(prof.weights, old.weights[i])
}

// appendProfileEntry appends one freshly computed bucket entry, trimming
// zero-probability cells exactly as Measure.Profile does (in compact mode
// the zero test runs on the stored float32 value). All-zero distributions
// append nothing. Views are rebuilt by finishProfileViews.
func appendProfileEntry(prof *Profile, b int64, weight int32, d stprob.Dist) {
	off := len(prof.cells)
	if prof.compact {
		for k, c := range d.Cells {
			if pv := float32(d.Probs[k]); pv > 0 {
				prof.cells = append(prof.cells, c)
				prof.probs32 = append(prof.probs32, pv)
			}
		}
	} else {
		for k, c := range d.Cells {
			if pv := d.Probs[k]; pv > 0 {
				prof.cells = append(prof.cells, c)
				prof.probs = append(prof.probs, pv)
			}
		}
	}
	if len(prof.cells) == off {
		return
	}
	prof.buckets = append(prof.buckets, b)
	prof.weights = append(prof.weights, weight)
	if prof.compact {
		prof.dists32 = append(prof.dists32, stprob.Dist32{
			Cells: prof.cells[off:len(prof.cells):len(prof.cells)],
			Probs: prof.probs32[off:len(prof.probs32):len(prof.probs32)],
		})
	} else {
		prof.dists = append(prof.dists, stprob.Dist{
			Cells: prof.cells[off:len(prof.cells):len(prof.cells)],
			Probs: prof.probs[off:len(prof.probs):len(prof.probs)],
		})
	}
}

// finishProfileViews rebuilds every entry's distribution view over the
// final backing arrays, so all entries share one allocation even after the
// appends above grew the arrays past earlier views.
func finishProfileViews(prof *Profile) {
	off := 0
	for i := range prof.dists {
		n := len(prof.dists[i].Cells)
		prof.dists[i] = stprob.Dist{
			Cells: prof.cells[off : off+n : off+n],
			Probs: prof.probs[off : off+n : off+n],
		}
		off += n
	}
	for i := range prof.dists32 {
		n := len(prof.dists32[i].Cells)
		prof.dists32[i] = stprob.Dist32{
			Cells: prof.cells[off : off+n : off+n],
			Probs: prof.probs32[off : off+n : off+n],
		}
		off += n
	}
}
