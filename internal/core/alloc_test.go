package core

import (
	"testing"

	"github.com/stslib/sts/internal/geo"
)

// TestSimilarityPreparedZeroAllocs pins the steady-state allocation contract
// of prepared scoring: after the first call has sized the pooled workspace,
// repeated pair evaluations perform no heap allocations. The pairing
// deliberately alternates between a long, spread-out pair (large supports,
// large memo offsets) and a short compact one — the shrink-then-regrow
// pattern that used to reallocate scratch on every regrow before the
// capacities were rounded to powers of two.
func TestSimilarityPreparedZeroAllocs(t *testing.T) {
	g := testGrid(t)
	m := mustSTS(t, g, 3)
	big1 := walk("A", geo.Point{Y: 60}, 1.4, 0.2, 12, 0, 14)
	big2 := walk("B", geo.Point{Y: 63}, 1.4, 0.1, 12, 5, 12)
	small1 := walk("c", geo.Point{X: 100, Y: 100}, 0.4, 0, 8, 0, 3)
	small2 := walk("d", geo.Point{X: 101, Y: 100}, 0.4, 0, 8, 2, 3)
	pb1, err := m.Prepare(big1)
	if err != nil {
		t.Fatal(err)
	}
	pb2, err := m.Prepare(big2)
	if err != nil {
		t.Fatal(err)
	}
	ps1, err := m.Prepare(small1)
	if err != nil {
		t.Fatal(err)
	}
	ps2, err := m.Prepare(small2)
	if err != nil {
		t.Fatal(err)
	}
	score := func() {
		if _, err := m.SimilarityPrepared(pb1, pb2); err != nil {
			t.Fatal(err)
		}
		if _, err := m.SimilarityPrepared(ps1, ps2); err != nil {
			t.Fatal(err)
		}
		if _, err := m.SimilarityPrepared(pb1, pb2); err != nil {
			t.Fatal(err)
		}
	}
	score() // warm the pooled workspace to its steady-state capacities
	if allocs := testing.AllocsPerRun(50, score); allocs != 0 {
		t.Errorf("steady-state prepared scoring allocates %.1f allocs/op, want 0", allocs)
	}
}
