package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/model"
)

func mustProfile(t *testing.T, m *Measure, tr model.Trajectory, opts ProfileOptions) *Profile {
	t.Helper()
	p, err := m.Prepare(tr)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := m.Profile(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	return prof
}

// checkProfileInvariants asserts the structural contract of a Profile:
// strictly ascending buckets, weights summing to at most the sample count
// (buckets whose distribution is zero — e.g. observations outside the grid
// — are dropped with their weight, matching their zero contribution to the
// exact score), every entry non-zero with sorted cells, and the backing
// arrays exactly tiled by the entries' views.
func checkProfileInvariants(t *testing.T, prof *Profile) {
	t.Helper()
	var wsum, cells int
	var prev int64
	for i := 0; i < prof.NumBuckets(); i++ {
		b, w, d := prof.EntryAt(i)
		if i > 0 && b <= prev {
			t.Fatalf("entry %d: bucket %d not after %d", i, b, prev)
		}
		prev = b
		wsum += w
		if len(d.Cells) == 0 {
			t.Fatalf("entry %d (bucket %d): zero distribution kept", i, b)
		}
		if len(d.Cells) != len(d.Probs) {
			t.Fatalf("entry %d: %d cells vs %d probs", i, len(d.Cells), len(d.Probs))
		}
		if !sort.IntsAreSorted(d.Cells) {
			t.Fatalf("entry %d (bucket %d): cells not sorted: %v", i, b, d.Cells)
		}
		var sum float64
		for j, p := range d.Probs {
			if p <= 0 {
				t.Fatalf("entry %d cell %d: prob %v not positive", i, d.Cells[j], p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("entry %d (bucket %d): probs sum to %v", i, b, sum)
		}
		cells += len(d.Cells)
	}
	if wsum > prof.SampleCount() {
		t.Fatalf("weights sum to %d > sample count %d", wsum, prof.SampleCount())
	}
	if cells != prof.MemoryCells() {
		t.Fatalf("entries hold %d cells, MemoryCells=%d", cells, prof.MemoryCells())
	}
}

func TestProfileInvariants(t *testing.T) {
	g := testGrid(t)
	m := mustSTS(t, g, 3)
	a := walk("a", geo.Point{Y: 100}, 1.2, 0.3, 13, 0, 12)
	for _, w := range []float64{0, 5, 30, 1000} {
		prof := mustProfile(t, m, a, ProfileOptions{BucketSeconds: w})
		checkProfileInvariants(t, prof)
		// This walk stays inside the grid, so no observation is dropped and
		// every timestamp of Eq. 10's average is accounted for.
		var wsum int
		for i := 0; i < prof.NumBuckets(); i++ {
			_, weight, _ := prof.EntryAt(i)
			wsum += weight
		}
		if wsum != prof.SampleCount() {
			t.Errorf("width %v: weights sum to %d, sample count %d", w, wsum, prof.SampleCount())
		}
		want := w
		if want == 0 {
			want = DefaultProfileBucketSeconds
		}
		if prof.BucketSeconds != want {
			t.Errorf("width %v: BucketSeconds=%v", w, prof.BucketSeconds)
		}
		if prof.ID != "a" {
			t.Errorf("ID=%q", prof.ID)
		}
		if prof.NumBuckets() == 0 {
			t.Errorf("width %v: empty profile", w)
		}
	}
}

func TestProfileValidation(t *testing.T) {
	g := testGrid(t)
	m := mustSTS(t, g, 3)
	a, err := m.Prepare(walk("a", geo.Point{Y: 100}, 1, 0, 10, 0, 8))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []float64{-1, math.NaN(), math.Inf(1)} {
		if _, err := m.Profile(a, ProfileOptions{BucketSeconds: w}); err == nil {
			t.Errorf("width %v accepted", w)
		}
	}
	if _, err := m.Profile(nil, ProfileOptions{}); err == nil {
		t.Error("nil prepared accepted")
	}
	// A pathological width against the trajectory's span must be refused,
	// not materialized.
	if _, err := m.Profile(a, ProfileOptions{BucketSeconds: 1e-9}); err == nil {
		t.Error("sub-nanosecond bucket width accepted")
	}
}

func TestSimilarityProfiledValidation(t *testing.T) {
	g := testGrid(t)
	m := mustSTS(t, g, 3)
	tr := walk("a", geo.Point{Y: 100}, 1, 0, 10, 0, 8)
	p30 := mustProfile(t, m, tr, ProfileOptions{BucketSeconds: 30})
	p10 := mustProfile(t, m, tr, ProfileOptions{BucketSeconds: 10})
	if _, err := SimilarityProfiled(p30, nil); err == nil {
		t.Error("nil profile accepted")
	}
	if _, err := SimilarityProfiled(p30, p10); err == nil {
		t.Error("mismatched bucket widths accepted")
	}
	if v, err := m.SimilarityProfiled(p30, p30); err != nil || v <= 0 {
		t.Errorf("self-similarity = %v, %v", v, err)
	}
}

func TestSimilarityProfiledSymmetricAndBounded(t *testing.T) {
	g := testGrid(t)
	m := mustSTS(t, g, 3)
	a := walk("a", geo.Point{Y: 100}, 1, 0, 10, 0, 10)
	b := walk("b", geo.Point{Y: 105}, 1, 0.1, 15, 3, 8)
	pa := mustProfile(t, m, a, ProfileOptions{})
	pb := mustProfile(t, m, b, ProfileOptions{})
	ab, err := SimilarityProfiled(pa, pb)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := SimilarityProfiled(pb, pa)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ab-ba) > 1e-12 {
		t.Errorf("profiled STS(a,b)=%v STS(b,a)=%v", ab, ba)
	}
	if ab < 0 || ab > 1 {
		t.Errorf("profiled STS=%v outside [0,1]", ab)
	}
}

func TestSimilarityProfiledDisjointTimesIsZero(t *testing.T) {
	g := testGrid(t)
	m := mustSTS(t, g, 3)
	pa := mustProfile(t, m, walk("a", geo.Point{Y: 100}, 1, 0, 10, 0, 5), ProfileOptions{})
	pb := mustProfile(t, m, walk("b", geo.Point{Y: 100}, 1, 0, 10, 1000, 5), ProfileOptions{})
	v, err := SimilarityProfiled(pa, pb)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Errorf("disjoint time windows: profiled STS=%v want 0", v)
	}
}

// TestProfileSingleObservationBucketsExact pins the representation choice
// that makes convergence work: a bucket holding exactly one observation is
// represented at that observation's timestamp with its exact noise
// distribution, so with one sample per bucket on both sides the profiled
// score equals the exact score at the shared timestamps.
func TestProfileSingleObservationBucketsExact(t *testing.T) {
	g := testGrid(t)
	m := mustSTS(t, g, 3)
	// Both trajectories sampled at the same timestamps, one per 10 s bucket.
	a := walk("a", geo.Point{Y: 100}, 1, 0, 10, 2, 8)
	b := walk("b", geo.Point{Y: 103}, 1, 0, 10, 2, 8)
	exact, err := m.Similarity(a, b)
	if err != nil {
		t.Fatal(err)
	}
	pa := mustProfile(t, m, a, ProfileOptions{BucketSeconds: 10})
	pb := mustProfile(t, m, b, ProfileOptions{BucketSeconds: 10})
	prof, err := SimilarityProfiled(pa, pb)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact-prof) > 1e-12 {
		t.Errorf("aligned single-sample buckets: exact %v vs profiled %v", exact, prof)
	}
}

// FuzzProfileEntries drives Profile over randomized trajectories and bucket
// widths, asserting the sorted-cells invariant Dist.Dot depends on for every
// entry, plus the rest of the structural contract, and that the two-cursor
// merge of SimilarityProfiled agrees with a naive map-based evaluation.
func FuzzProfileEntries(f *testing.F) {
	f.Add(int64(1), 30.0)
	f.Add(int64(7), 5.0)
	f.Add(int64(42), 120.0)
	g, err := geo.NewGrid(geo.NewRect(geo.Point{X: -30, Y: -30}, geo.Point{X: 230, Y: 230}), 5)
	if err != nil {
		f.Fatal(err)
	}
	m, err := NewSTS(g, 3)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, seed int64, width float64) {
		if width <= 0 || math.IsNaN(width) || math.IsInf(width, 0) {
			t.Skip()
		}
		if width < 1 {
			width = 1 // keep bucket counts sane against ~200 s spans
		}
		r := rand.New(rand.NewSource(seed))
		mk := func(id string) model.Trajectory {
			return walk(id,
				geo.Point{X: r.Float64() * 200, Y: r.Float64() * 200},
				r.Float64()*2-1, r.Float64()*2-1,
				5+r.Float64()*20, r.Float64()*10, 4+r.Intn(8))
		}
		a, b := mk("a"), mk("b")
		opts := ProfileOptions{BucketSeconds: width}
		pa, pb := mustProfile(t, m, a, opts), mustProfile(t, m, b, opts)
		checkProfileInvariants(t, pa)
		checkProfileInvariants(t, pb)

		got, err := SimilarityProfiled(pa, pb)
		if err != nil {
			t.Fatal(err)
		}
		// Naive reference: index one side's entries by bucket, accumulate
		// dot products cell-by-cell through a map.
		bDists := make(map[int64]int)
		for i := 0; i < pb.NumBuckets(); i++ {
			bucket, _, _ := pb.EntryAt(i)
			bDists[bucket] = i
		}
		var total float64
		for i := 0; i < pa.NumBuckets(); i++ {
			bucket, wa, da := pa.EntryAt(i)
			j, ok := bDists[bucket]
			if !ok {
				continue
			}
			_, wb, db := pb.EntryAt(j)
			probs := make(map[int]float64, len(da.Cells))
			for k, c := range da.Cells {
				probs[c] = da.Probs[k]
			}
			var dot float64
			for k, c := range db.Cells {
				dot += probs[c] * db.Probs[k]
			}
			total += float64(wa+wb) * dot
		}
		want := total / float64(pa.SampleCount()+pb.SampleCount())
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("merge scoring %v vs naive %v (seed %d width %v)", got, want, seed, width)
		}
	})
}
