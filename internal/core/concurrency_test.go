package core

import (
	"sync"
	"testing"

	"github.com/stslib/sts/internal/geo"
)

// TestConcurrentSimilarity exercises a shared Measure and shared Prepared
// values from many goroutines; with -race this guards the documented
// concurrency-safety of the measure.
func TestConcurrentSimilarity(t *testing.T) {
	g := testGrid(t)
	m := mustSTS(t, g, 3)
	a := walk("a", geo.Point{Y: 100}, 1.1, 0, 12, 0, 9)
	b := walk("b", geo.Point{Y: 101}, 1.1, 0, 17, 4, 8)
	pa, err := m.Prepare(a)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := m.Prepare(b)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.SimilarityPrepared(pa, pb)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				got, err := m.SimilarityPrepared(pa, pb)
				if err != nil {
					errs <- err
					return
				}
				if got != want {
					t.Errorf("concurrent result %v differs from %v", got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
