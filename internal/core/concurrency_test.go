package core

import (
	"sync"
	"testing"

	"github.com/stslib/sts/internal/geo"
)

// TestConcurrentSimilarityStress hammers one shared Measure and a pool of
// shared Prepared values from many goroutines at once, interleaving
// SimilarityPrepared, CoLocation and DistAt so the pooled evaluation
// scratch (pairScratch / stprob.Workspace, including the lattice-offset
// memo tables and their epoch stamps) is recycled across goroutines under
// contention. With -race this guards the zero-allocation fast path; the
// value checks guard its determinism.
func TestConcurrentSimilarityStress(t *testing.T) {
	g := testGrid(t)
	m := mustSTS(t, g, 3)
	var prep []*Prepared
	for k := 0; k < 4; k++ {
		tr := walk("tr", geo.Point{Y: 90 + 5*float64(k)}, 1.0+0.1*float64(k), 0, 14, float64(k), 9)
		p, err := m.Prepare(tr)
		if err != nil {
			t.Fatal(err)
		}
		prep = append(prep, p)
	}
	type ref struct {
		sim float64
		cp  float64
	}
	var want [4][4]ref
	for i := range prep {
		for j := range prep {
			sim, err := m.SimilarityPrepared(prep[i], prep[j])
			if err != nil {
				t.Fatal(err)
			}
			tMid := (prep[i].Tr.Start() + prep[i].Tr.End()) / 2
			cp, err := CoLocation(prep[i], prep[j], tMid)
			if err != nil {
				t.Fatal(err)
			}
			want[i][j] = ref{sim, cp}
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 10; iter++ {
				i := (w + iter) % len(prep)
				j := (w * 3) % len(prep)
				sim, err := m.SimilarityPrepared(prep[i], prep[j])
				if err != nil {
					t.Error(err)
					return
				}
				if sim != want[i][j].sim {
					t.Errorf("concurrent sim(%d,%d)=%v want %v", i, j, sim, want[i][j].sim)
					return
				}
				tMid := (prep[i].Tr.Start() + prep[i].Tr.End()) / 2
				cp, err := CoLocation(prep[i], prep[j], tMid)
				if err != nil {
					t.Error(err)
					return
				}
				if cp != want[i][j].cp {
					t.Errorf("concurrent cp(%d,%d)=%v want %v", i, j, cp, want[i][j].cp)
					return
				}
				if _, err := prep[i].DistAt(tMid + 0.5); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestConcurrentSimilarity exercises a shared Measure and shared Prepared
// values from many goroutines; with -race this guards the documented
// concurrency-safety of the measure.
func TestConcurrentSimilarity(t *testing.T) {
	g := testGrid(t)
	m := mustSTS(t, g, 3)
	a := walk("a", geo.Point{Y: 100}, 1.1, 0, 12, 0, 9)
	b := walk("b", geo.Point{Y: 101}, 1.1, 0, 17, 4, 8)
	pa, err := m.Prepare(a)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := m.Prepare(b)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.SimilarityPrepared(pa, pb)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				got, err := m.SimilarityPrepared(pa, pb)
				if err != nil {
					errs <- err
					return
				}
				if got != want {
					t.Errorf("concurrent result %v differs from %v", got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
