// Package core implements STS, the Spatial-Temporal Similarity measure of
// Section V: the average co-location probability of two trajectories over
// the timestamps of their merged trajectory, computed from the
// spatial-temporal probability distributions of Section IV.
//
// The package also provides the three ablation variants evaluated in
// Section VI-C: STS-N (no noise model), STS-G (one global speed
// distribution for all objects), and STS-F (frequency-based grid
// transitions shared by all objects).
package core

import (
	"errors"
	"fmt"
	"sync"

	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/kde"
	"github.com/stslib/sts/internal/markov"
	"github.com/stslib/sts/internal/model"
	"github.com/stslib/sts/internal/stprob"
)

// TransitionProvider supplies the transition model used for one
// trajectory's S-T probability estimation — the transition probability, its
// optional radial fast-path form, and an upper bound on the object's
// plausible speed (m/s, 0 for unknown) used only to truncate candidate
// supports (see stprob.TransitionSpec).
//
// The provider abstraction is what separates STS from its ablation
// variants: the full measure builds a personalized KDE speed model from
// the trajectory itself; STS-G shares one pooled model; STS-F substitutes
// frequency-based grid transitions.
type TransitionProvider interface {
	For(tr model.Trajectory) (stprob.TransitionSpec, error)
}

// PersonalizedSpeed builds a fresh KDE speed model for each trajectory —
// the transition estimator of the full STS measure (Section IV-B).
type PersonalizedSpeed struct{}

// For implements TransitionProvider. Trajectories too short to carry speed
// information (fewer than two samples) get a zero transition model; they
// have no in-between timestamps to interpolate anyway.
func (PersonalizedSpeed) For(tr model.Trajectory) (stprob.TransitionSpec, error) {
	sm, err := kde.NewSpeedModel(tr)
	if err != nil {
		if errors.Is(err, kde.ErrNoSamples) {
			return stprob.TransitionSpec{Trans: zeroTransition}, nil
		}
		return stprob.TransitionSpec{}, err
	}
	return stprob.TransitionSpec{
		Trans:    sm.Transition,
		Radial:   sm.TransitionRadial,
		MaxSpeed: sm.MaxSpeed(),
	}, nil
}

// GlobalSpeed applies one pooled speed model to every trajectory — the
// STS-G ablation ("a constant global speed distribution for all objects").
type GlobalSpeed struct {
	Model *kde.SpeedModel
}

// For implements TransitionProvider.
func (g GlobalSpeed) For(tr model.Trajectory) (stprob.TransitionSpec, error) {
	if g.Model == nil {
		return stprob.TransitionSpec{}, errors.New("core: GlobalSpeed provider has no model")
	}
	return stprob.TransitionSpec{
		Trans:    g.Model.Transition,
		Radial:   g.Model.TransitionRadial,
		MaxSpeed: g.Model.MaxSpeed(),
	}, nil
}

// FrequencyTransitions applies a frequency-based Markov grid-transition
// model to every trajectory — the STS-F ablation, the estimator used by
// prior work such as APM. MaxSpeed bounds support truncation; it is
// typically the pooled maximum speed of the training dataset (0 disables
// speed-based truncation). Markov transitions depend on the absolute
// cells, so no radial fast path exists.
type FrequencyTransitions struct {
	Model    *markov.TransitionModel
	MaxSpeed float64
}

// For implements TransitionProvider.
func (f FrequencyTransitions) For(tr model.Trajectory) (stprob.TransitionSpec, error) {
	if f.Model == nil {
		return stprob.TransitionSpec{}, errors.New("core: FrequencyTransitions provider has no model")
	}
	return stprob.TransitionSpec{Trans: f.Model.ProbPoints, MaxSpeed: f.MaxSpeed}, nil
}

// FixedTransition applies one externally supplied transition model to
// every trajectory — e.g. the Brownian random walk of stprob.
// BrownianTransition, which the paper identifies as the special case of
// STS's estimation under a Gaussian speed assumption. Radial, when set,
// must agree with Trans and enables the memoized evaluation (e.g.
// stprob.BrownianRadial for the Brownian walk).
type FixedTransition struct {
	Trans    stprob.Transition
	Radial   stprob.RadialTransition
	MaxSpeed float64
}

// For implements TransitionProvider.
func (f FixedTransition) For(tr model.Trajectory) (stprob.TransitionSpec, error) {
	if f.Trans == nil {
		return stprob.TransitionSpec{}, errors.New("core: FixedTransition provider has no transition")
	}
	return stprob.TransitionSpec{Trans: f.Trans, Radial: f.Radial, MaxSpeed: f.MaxSpeed}, nil
}

// StripRadial wraps a provider and discards its radial fast path, forcing
// the generic per-location transition evaluation. Equivalence tests and
// ablation benches use it to pin the lattice-offset-memoized path against
// the original one.
type StripRadial struct {
	Provider TransitionProvider
}

// For implements TransitionProvider.
func (s StripRadial) For(tr model.Trajectory) (stprob.TransitionSpec, error) {
	spec, err := s.Provider.For(tr)
	spec.Radial = nil
	return spec, err
}

// zeroTransition is the transition model of a trajectory that carries no
// mobility information: all movement is impossible.
func zeroTransition(a geo.Point, ta float64, b geo.Point, tb float64) float64 { return 0 }

// Options configures a Measure. Grid is required; zero-value fields take
// the documented defaults.
type Options struct {
	// Grid is the spatial partitioning R (required).
	Grid *geo.Grid
	// Noise is the sensing system's location-noise model. Default:
	// Gaussian with sigma equal to the grid cell size, following the
	// paper's guidance that the grid size should match the location error.
	Noise stprob.NoiseModel
	// Provider selects the transition estimator. Default:
	// PersonalizedSpeed (the full STS measure).
	Provider TransitionProvider
	// Exact disables support truncation so every sum ranges over all |R|
	// cells, exactly as written in Eq. 4 and Algorithm 1.
	Exact bool
	// MaxCandidateCells caps the in-between candidate support per
	// timestamp (0 selects DefaultMaxCandidateCells; negative disables
	// the cap). It bounds the worst-case cost of a similarity evaluation
	// without measurably moving rankings.
	MaxCandidateCells int
	// MaxSupportCells caps an observation's noise-distribution support
	// (0 selects DefaultMaxSupportCells; negative disables the cap).
	MaxSupportCells int
	// SpeedSlack compensates for the grid's quantization of speeds when
	// evaluating transitions (see stprob.Estimator.SpeedSlack). 0 selects
	// half the grid cell size; negative disables it, recovering the
	// textbook evaluation where cell centers are the only locations.
	// Exact mode always disables it.
	SpeedSlack float64
}

// DefaultMaxCandidateCells is the default cap on the candidate support of
// an in-between location distribution.
const DefaultMaxCandidateCells = 512

// DefaultMaxSupportCells is the default cap on the support of one
// observation's noise distribution. With the default 4-sigma truncation
// and a grid size equal to the noise scale (the paper's recommended
// setting), the full support is ~50 cells, below this cap; the cap only
// engages when the grid is much finer than the noise.
const DefaultMaxSupportCells = 96

// Measure computes the spatial-temporal similarity STS(Tra, Tra′) of
// Eq. 10. A Measure is immutable after construction and safe for
// concurrent use.
type Measure struct {
	grid     *geo.Grid
	noise    stprob.NoiseModel
	provider TransitionProvider
	exact    bool
	maxCand  int
	maxSupp  int
	slack    float64
}

// New builds a Measure from opts.
func New(opts Options) (*Measure, error) {
	if opts.Grid == nil {
		return nil, errors.New("core: Options.Grid is required")
	}
	noise := opts.Noise
	if noise == nil {
		noise = stprob.GaussianNoise{Sigma: opts.Grid.CellSize()}
	}
	provider := opts.Provider
	if provider == nil {
		provider = PersonalizedSpeed{}
	}
	maxCand := opts.MaxCandidateCells
	switch {
	case maxCand == 0:
		maxCand = DefaultMaxCandidateCells
	case maxCand < 0:
		maxCand = 0
	}
	maxSupp := opts.MaxSupportCells
	switch {
	case maxSupp == 0:
		maxSupp = DefaultMaxSupportCells
	case maxSupp < 0:
		maxSupp = 0
	}
	slack := opts.SpeedSlack
	switch {
	case opts.Exact || slack < 0:
		slack = 0
	case slack == 0:
		slack = opts.Grid.CellSize() / 2
	}
	return &Measure{grid: opts.Grid, noise: noise, provider: provider, exact: opts.Exact, maxCand: maxCand, maxSupp: maxSupp, slack: slack}, nil
}

// NewSTS returns the full STS measure: Gaussian noise of scale sigma and a
// personalized KDE speed model per trajectory.
func NewSTS(grid *geo.Grid, sigma float64) (*Measure, error) {
	return New(Options{Grid: grid, Noise: stprob.GaussianNoise{Sigma: sigma}})
}

// NewSTSN returns the STS-N ablation: observations are deterministic
// points (no noise model); the transition estimator is unchanged.
func NewSTSN(grid *geo.Grid) (*Measure, error) {
	return New(Options{Grid: grid, Noise: stprob.PointNoise{}})
}

// NewSTSG returns the STS-G ablation: one pooled speed model, estimated
// from the whole dataset, is shared by all objects.
func NewSTSG(grid *geo.Grid, sigma float64, pooled *kde.SpeedModel) (*Measure, error) {
	return New(Options{
		Grid:     grid,
		Noise:    stprob.GaussianNoise{Sigma: sigma},
		Provider: GlobalSpeed{Model: pooled},
	})
}

// NewSTSF returns the STS-F ablation: frequency-based grid transitions
// trained on historical data are shared by all objects.
func NewSTSF(grid *geo.Grid, sigma float64, freq *markov.TransitionModel, maxSpeed float64) (*Measure, error) {
	return New(Options{
		Grid:     grid,
		Noise:    stprob.GaussianNoise{Sigma: sigma},
		Provider: FrequencyTransitions{Model: freq, MaxSpeed: maxSpeed},
	})
}

// Grid returns the spatial partitioning in use.
func (m *Measure) Grid() *geo.Grid { return m.grid }

// Prepared caches the per-trajectory state needed to evaluate STS against
// many partners: the trajectory's estimator (with its personalized
// transition model) and the normalized noise distributions at its own
// observed timestamps, which are reused in every pairing.
type Prepared struct {
	Tr  model.Trajectory
	est *stprob.Estimator
	// obs[i] is the noise distribution at Tr.Samples[i].
	obs []stprob.Dist
}

// MemoryBytes estimates the prepared state's resident heap footprint: the
// trajectory's samples plus the cached per-observation noise distributions
// (its dominant term). Cache observability sums it per cached entry.
func (p *Prepared) MemoryBytes() int {
	const (
		sampleSize = 24 // geo.Point + T
		distSize   = 48 // slice header pair (cells, probs)
	)
	b := len(p.Tr.Samples)*sampleSize + len(p.obs)*distSize
	for _, d := range p.obs {
		b += len(d.Cells) * (8 + 8)
	}
	return b
}

// Prepare validates tr and builds its cached estimator state.
func (m *Measure) Prepare(tr model.Trajectory) (*Prepared, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	spec, err := m.provider.For(tr)
	if err != nil {
		return nil, fmt.Errorf("core: transition model for %q: %w", tr.ID, err)
	}
	est := &stprob.Estimator{
		Grid:              m.grid,
		Noise:             m.noise,
		Trans:             spec.Trans,
		Radial:            spec.Radial,
		MaxSpeed:          spec.MaxSpeed,
		Exact:             m.exact,
		MaxCandidateCells: m.maxCand,
		MaxSupportCells:   m.maxSupp,
		SpeedSlack:        m.slack,
	}
	p := &Prepared{Tr: tr, est: est, obs: make([]stprob.Dist, tr.Len())}
	for i, s := range tr.Samples {
		p.obs[i] = est.ObservedDist(s.Loc)
	}
	return p, nil
}

// DistAt returns the trajectory's normalized location distribution at time
// t, serving observed timestamps from the cache and reusing the cached
// noise distributions of the bracketing observations for in-between times.
func (p *Prepared) DistAt(t float64) (stprob.Dist, error) {
	if p.Tr.Len() == 0 || t < p.Tr.Start() || t > p.Tr.End() {
		return stprob.Dist{}, nil
	}
	exact, before, after := p.Tr.Bracket(t)
	if exact >= 0 {
		return p.obs[exact], nil
	}
	return p.est.BetweenDist(p.Tr.Samples[before], p.Tr.Samples[after],
		p.obs[before], p.obs[after], t)
}

// distAtWS is DistAt with caller-provided scratch: in-between results alias
// ws and stay valid only until its next use; observed-timestamp results
// alias the (immutable) preparation cache.
func (p *Prepared) distAtWS(ws *stprob.Workspace, t float64) (stprob.Dist, error) {
	if p.Tr.Len() == 0 || t < p.Tr.Start() || t > p.Tr.End() {
		return stprob.Dist{}, nil
	}
	exact, before, after := p.Tr.Bracket(t)
	if exact >= 0 {
		return p.obs[exact], nil
	}
	return p.est.BetweenDistWS(ws, p.Tr.Samples[before], p.Tr.Samples[after],
		p.obs[before], p.obs[after], t)
}

// pairScratch is the reusable evaluation state of one similarity
// computation: one workspace per side, because Algorithm 1 needs both
// location distributions alive at once to take their dot product.
type pairScratch struct {
	a, b stprob.Workspace
}

// scratchPool recycles pairScratch values across SimilarityPrepared calls,
// so steady-state matrix scoring performs no per-pair heap allocations
// while staying safe under concurrent scoring goroutines.
var scratchPool = sync.Pool{New: func() any { return new(pairScratch) }}

// CoLocation returns CP(t | Tra1, Tra2) of Eq. 9 — the probability that
// the two objects are in the same grid cell at time t — implementing
// Algorithm 1: both location distributions are normalized and their
// element-wise product is summed over the grid.
func CoLocation(a, b *Prepared, t float64) (float64, error) {
	ws := scratchPool.Get().(*pairScratch)
	cp, err := coLocationWS(ws, a, b, t)
	scratchPool.Put(ws)
	return cp, err
}

// coLocationWS is CoLocation on caller-provided scratch.
func coLocationWS(ws *pairScratch, a, b *Prepared, t float64) (float64, error) {
	da, err := a.distAtWS(&ws.a, t)
	if err != nil {
		return 0, err
	}
	if da.IsZero() {
		return 0, nil
	}
	db, err := b.distAtWS(&ws.b, t)
	if err != nil {
		return 0, err
	}
	return da.Dot(db), nil
}

// SimilarityPrepared returns STS(Tra, Tra′) of Eq. 10: the average of the
// co-location probabilities at all timestamps of the two trajectories.
func (m *Measure) SimilarityPrepared(a, b *Prepared) (float64, error) {
	n := a.Tr.Len() + b.Tr.Len()
	if n == 0 {
		return 0, errors.New("core: both trajectories are empty")
	}
	ws := scratchPool.Get().(*pairScratch)
	defer scratchPool.Put(ws)
	var total float64
	for _, s := range a.Tr.Samples {
		cp, err := coLocationWS(ws, a, b, s.T)
		if err != nil {
			return 0, err
		}
		total += cp
	}
	for _, s := range b.Tr.Samples {
		cp, err := coLocationWS(ws, a, b, s.T)
		if err != nil {
			return 0, err
		}
		total += cp
	}
	return total / float64(n), nil
}

// Similarity is the convenience form of SimilarityPrepared for one-off
// comparisons: it prepares both trajectories and evaluates Eq. 10.
func (m *Measure) Similarity(a, b model.Trajectory) (float64, error) {
	pa, err := m.Prepare(a)
	if err != nil {
		return 0, err
	}
	pb, err := m.Prepare(b)
	if err != nil {
		return 0, err
	}
	return m.SimilarityPrepared(pa, pb)
}
