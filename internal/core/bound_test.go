package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/model"
)

// admissibleEps absorbs the floating-point slack the admissibility
// assertions allow: bounds are inflated by boundInflate, so any violation
// beyond this is a real (not rounding) bug.
const admissibleEps = 1e-12

// checkAdmissible asserts the full bound contract on one prepared/profiled
// pair: UpperBound dominates the exact score, UpperBoundProfiled dominates
// the profiled score, zero bounds certify exact zeros, and the thresholded
// scorers are bit-identical on completion and sound on early exit.
func checkAdmissible(t *testing.T, m *Measure, a, b *Prepared, pa, pb *Profile) {
	t.Helper()
	exact, err := m.SimilarityPrepared(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ub, err := UpperBound(pa, pb)
	if err != nil {
		t.Fatal(err)
	}
	if ub < exact-admissibleEps {
		t.Fatalf("UpperBound %v < exact %v", ub, exact)
	}
	if ub == 0 && exact != 0 {
		t.Fatalf("zero UpperBound but exact %v", exact)
	}
	prof, err := SimilarityProfiled(pa, pb)
	if err != nil {
		t.Fatal(err)
	}
	ubp, err := UpperBoundProfiled(pa, pb)
	if err != nil {
		t.Fatal(err)
	}
	if ubp < prof-admissibleEps {
		t.Fatalf("UpperBoundProfiled %v < profiled %v", ubp, prof)
	}
	if ubp == 0 && prof != 0 {
		t.Fatalf("zero UpperBoundProfiled but profiled %v", prof)
	}

	for _, theta := range []float64{math.Inf(-1), 0, exact / 2, exact, exact * 1.0001, ub, ub * 2} {
		got, ok, err := m.SimilarityPreparedThreshold(a, b, theta)
		if err != nil {
			t.Fatal(err)
		}
		if ok && got != exact {
			t.Fatalf("theta %v: SimilarityPreparedThreshold completed with %v, exact %v", theta, got, exact)
		}
		if !ok && !(exact < theta) {
			t.Fatalf("theta %v: early exit (bound %v) but exact %v reaches it", theta, got, exact)
		}
		got, ok, err = m.RefineThreshold(a, b, pa, pb, theta)
		if err != nil {
			t.Fatal(err)
		}
		if ok && got != exact {
			t.Fatalf("theta %v: RefineThreshold completed with %v, exact %v", theta, got, exact)
		}
		if !ok && !(exact < theta) {
			t.Fatalf("theta %v: RefineThreshold exit (bound %v) but exact %v reaches it", theta, got, exact)
		}
		gotP, okP, err := SimilarityProfiledThreshold(pa, pb, theta)
		if err != nil {
			t.Fatal(err)
		}
		if okP && gotP != prof {
			t.Fatalf("theta %v: SimilarityProfiledThreshold completed with %v, profiled %v", theta, gotP, prof)
		}
		if !okP && !(prof < theta) {
			t.Fatalf("theta %v: profiled exit (bound %v) but profiled %v reaches it", theta, gotP, prof)
		}
	}
}

func TestUpperBoundAdmissibleOnWalks(t *testing.T) {
	g := testGrid(t)
	cases := []struct{ a, b model.Trajectory }{
		// near-parallel overlapping walks
		{walk("a", geo.Point{Y: 100}, 1, 0, 10, 0, 10), walk("b", geo.Point{Y: 103}, 1, 0.1, 15, 3, 8)},
		// same path, shifted in time
		{walk("a", geo.Point{Y: 100}, 1, 0, 10, 0, 10), walk("b", geo.Point{Y: 100}, 1, 0, 10, 45, 10)},
		// spatially far apart
		{walk("a", geo.Point{Y: 20}, 1, 0, 10, 0, 10), walk("b", geo.Point{X: 150, Y: 180}, -1, 0, 10, 0, 10)},
		// temporally disjoint
		{walk("a", geo.Point{Y: 100}, 1, 0, 10, 0, 5), walk("b", geo.Point{Y: 100}, 1, 0, 10, 1000, 5)},
		// identical
		{walk("a", geo.Point{Y: 100}, 1, 1, 7, 2, 12), walk("b", geo.Point{Y: 100}, 1, 1, 7, 2, 12)},
		// single samples
		{walk("a", geo.Point{Y: 100}, 0, 0, 10, 5, 1), walk("b", geo.Point{Y: 101}, 0, 0, 10, 5, 1)},
	}
	for _, sigma := range []float64{1.5, 3} {
		m := mustSTS(t, g, sigma)
		for ci, c := range cases {
			for _, w := range []float64{5, 30, 240} {
				a, err := m.Prepare(c.a)
				if err != nil {
					t.Fatal(err)
				}
				b, err := m.Prepare(c.b)
				if err != nil {
					t.Fatal(err)
				}
				opts := ProfileOptions{Bounds: true, BucketSeconds: w}
				pa, err := m.Profile(a, opts)
				if err != nil {
					t.Fatal(err)
				}
				pb, err := m.Profile(b, opts)
				if err != nil {
					t.Fatal(err)
				}
				t.Logf("sigma %v case %d width %v", sigma, ci, w)
				checkAdmissible(t, m, a, b, pa, pb)
			}
		}
	}
}

// TestUpperBoundExactMode pins the unbounded-envelope path: in Exact mode
// supports span the whole grid, so the bound must still dominate.
func TestUpperBoundExactMode(t *testing.T) {
	g, err := geo.NewGrid(geo.NewRect(geo.Point{}, geo.Point{X: 60, Y: 60}), 6)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Options{Grid: g, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.Prepare(walk("a", geo.Point{X: 10, Y: 10}, 1, 0.5, 10, 0, 6))
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Prepare(walk("b", geo.Point{X: 14, Y: 12}, 1, 0.4, 12, 5, 5))
	if err != nil {
		t.Fatal(err)
	}
	pa, err := m.Profile(a, ProfileOptions{Bounds: true, BucketSeconds: 20})
	if err != nil {
		t.Fatal(err)
	}
	pb, err := m.Profile(b, ProfileOptions{Bounds: true, BucketSeconds: 20})
	if err != nil {
		t.Fatal(err)
	}
	checkAdmissible(t, m, a, b, pa, pb)
}

func TestUpperBoundValidation(t *testing.T) {
	g := testGrid(t)
	m := mustSTS(t, g, 3)
	tr := walk("a", geo.Point{Y: 100}, 1, 0, 10, 0, 8)
	p30 := mustProfile(t, m, tr, ProfileOptions{Bounds: true, BucketSeconds: 30})
	p10 := mustProfile(t, m, tr, ProfileOptions{Bounds: true, BucketSeconds: 10})
	if _, err := UpperBound(p30, nil); err == nil {
		t.Error("nil profile accepted")
	}
	if _, err := UpperBound(p30, p10); err == nil {
		t.Error("mismatched widths accepted")
	}
	if _, err := UpperBoundProfiled(p30, p10); err == nil {
		t.Error("mismatched widths accepted by profiled bound")
	}
	if ub, err := UpperBound(p30, p30); err != nil || ub <= 0 {
		t.Errorf("self bound = %v, %v", ub, err)
	}
	bare := mustProfile(t, m, tr, ProfileOptions{BucketSeconds: 30})
	if _, err := UpperBound(bare, bare); err == nil {
		t.Error("profile built without Bounds accepted")
	}
}

// FuzzUpperBoundAdmissible drives the bounds over randomized trajectory
// pairs and bucket widths: UpperBound must dominate the exact STS score and
// UpperBoundProfiled the profiled score, always; thresholded scoring must be
// exact on completion and sound on exit. Seeds cover the mall-like
// (fine grid, slow walks) and taxi-like (coarse grid, fast sparse sampling)
// regimes of the experiment fixtures.
func FuzzUpperBoundAdmissible(f *testing.F) {
	// mall-like: ~1 m/s walks, dense sampling, fine buckets
	f.Add(int64(1), 30.0, 1.5, false)
	f.Add(int64(7), 5.0, 3.0, false)
	// taxi-like: fast, sporadic sampling, coarse buckets
	f.Add(int64(42), 120.0, 15.0, true)
	f.Add(int64(1234), 240.0, 50.0, true)
	f.Fuzz(func(t *testing.T, seed int64, width, sigma float64, fast bool) {
		if width < 1 || width > 1e4 || math.IsNaN(width) {
			t.Skip()
		}
		if sigma < 0.5 || sigma > 100 || math.IsNaN(sigma) {
			t.Skip()
		}
		g, err := geo.NewGrid(geo.NewRect(geo.Point{X: -50, Y: -50}, geo.Point{X: 450, Y: 450}), math.Max(2, sigma))
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewSTS(g, sigma)
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(seed))
		speed := 1.5
		if fast {
			speed = 12
		}
		mk := func(id string) model.Trajectory {
			tr := model.Trajectory{ID: id}
			tt := r.Float64() * 100
			p := geo.Point{X: r.Float64() * 400, Y: r.Float64() * 400}
			n := 2 + r.Intn(12)
			for i := 0; i < n; i++ {
				tr.Samples = append(tr.Samples, model.Sample{T: tt, Loc: p})
				dt := 1 + r.Float64()*60 // sporadic gaps
				tt += dt
				p = p.Add(geo.Point{X: (r.Float64()*2 - 1) * speed * dt, Y: (r.Float64()*2 - 1) * speed * dt})
			}
			return tr
		}
		a, err := m.Prepare(mk("a"))
		if err != nil {
			t.Fatal(err)
		}
		b, err := m.Prepare(mk("b"))
		if err != nil {
			t.Fatal(err)
		}
		opts := ProfileOptions{Bounds: true, BucketSeconds: width}
		pa, err := m.Profile(a, opts)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := m.Profile(b, opts)
		if err != nil {
			t.Fatal(err)
		}
		checkAdmissible(t, m, a, b, pa, pb)

		// The compact storage mode must satisfy the identical bound contract:
		// rounding each stored probability to float32 may move the profiled
		// score, but entry stats are recomputed from the stored values, so
		// boundInflate still absorbs the remaining accumulation slack.
		copts := opts
		copts.Compact = true
		ca, err := m.Profile(a, copts)
		if err != nil {
			t.Fatal(err)
		}
		cb, err := m.Profile(b, copts)
		if err != nil {
			t.Fatal(err)
		}
		checkAdmissible(t, m, a, b, ca, cb)
		prof, err := SimilarityProfiled(pa, pb)
		if err != nil {
			t.Fatal(err)
		}
		cprof, err := SimilarityProfiled(ca, cb)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(prof - cprof); d > 1e-6*(1+math.Abs(prof)) {
			t.Fatalf("compact profiled score %v deviates from float64 %v by %g", cprof, prof, d)
		}

		// Incremental maintenance must be indistinguishable from the
		// rebuild: regrow a from a random prefix by appending its tail,
		// require the resulting profile to be bit-identical to pa, and
		// re-run the whole bound contract against it.
		if n := a.Tr.Len(); n >= 3 {
			cut := 1 + r.Intn(n-1)
			head, err := m.Prepare(model.Trajectory{ID: a.Tr.ID, Samples: a.Tr.Samples[:cut]})
			if err != nil {
				t.Fatal(err)
			}
			ph, err := m.Profile(head, opts)
			if err != nil {
				t.Fatal(err)
			}
			grown, err := m.AppendPrepared(head, a.Tr.Samples[cut:])
			if err != nil {
				t.Fatal(err)
			}
			pg, err := m.AppendProfile(ph, grown, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(pg, pa) {
				t.Fatalf("incremental profile differs from rebuild (cut %d of %d)", cut, n)
			}
			checkAdmissible(t, m, grown, b, pg, pb)
		}
	})
}

// TestCompactModeMismatchRejected pins the storage-mode guard: a compact
// profile can never be scored or bounded against a float64 one — the merge
// kernels are mode-specific and silent widening would hide the mismatch.
func TestCompactModeMismatchRejected(t *testing.T) {
	g := testGrid(t)
	m := mustSTS(t, g, 3)
	tr := walk("a", geo.Point{Y: 100}, 1, 0, 10, 0, 8)
	p64 := mustProfile(t, m, tr, ProfileOptions{Bounds: true, BucketSeconds: 30})
	p32 := mustProfile(t, m, tr, ProfileOptions{Bounds: true, BucketSeconds: 30, Compact: true})
	if !p32.Compact() || p64.Compact() {
		t.Fatalf("Compact() flags wrong: f64=%v compact=%v", p64.Compact(), p32.Compact())
	}
	if _, err := SimilarityProfiled(p64, p32); err == nil {
		t.Error("mixed storage modes accepted by SimilarityProfiled")
	}
	if _, err := UpperBoundProfiled(p64, p32); err == nil {
		t.Error("mixed storage modes accepted by UpperBoundProfiled")
	}
	if _, _, err := SimilarityProfiledThreshold(p64, p32, 0.5); err == nil {
		t.Error("mixed storage modes accepted by SimilarityProfiledThreshold")
	}
}
