package core

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/stprob"
)

// This file implements the filter half of the filter-and-refine query path:
// admissible upper bounds on STS computed from profile metadata, and
// thresholded ("refine only while it can still matter") exact scoring.
//
// The bound argument, in brief (DESIGN.md §11 spells it out): every location
// distribution is normalized, so each probability is ≤ 1 and each
// distribution's total mass is ≤ 1. For an observation s of Tra1 at time t,
//
//	CP(t) = Σ_r P1(r, t)·P2(r, t) ≤ Σ_{r ∈ supp(P2(·,t))} P1(r, t),
//
// and supp(P2(·, t)) is provably contained in the partner's per-bucket reach
// envelope env2(bucket(t)) — the truncation geometry of
// stprob.Estimator.candidateCellsWS evaluated over the whole bucket instead
// of one timestamp. Summing over Tra1's observations per bucket turns the
// right-hand side into "mass of the bucket's summed observation
// distributions inside the partner's envelope box", which needs only the
// profile, not the estimator. Timestamps whose bucket falls outside the
// partner's bucket range contribute exactly zero (bucketIndex is monotone,
// so an out-of-range bucket implies an out-of-span timestamp).

// boundInflate pads upper bounds and early-exit comparisons against
// floating-point rounding: the bounds are admissible in real arithmetic, and
// this relative margin dominates the summation error of any realistic
// trajectory length, so pruned query paths return exactly the same results
// as exhaustive ones.
const boundInflate = 1 + 1e-9

// cellBox is an inclusive axis-aligned cell range in lattice coordinates.
type cellBox struct{ c0, c1, r0, r1 int32 }

func emptyBox() cellBox { return cellBox{c0: 1, c1: 0} }

// universalBox contains every cell of any grid.
func universalBox() cellBox { return cellBox{0, math.MaxInt32, 0, math.MaxInt32} }

func (b cellBox) empty() bool { return b.c0 > b.c1 || b.r0 > b.r1 }

func (b cellBox) union(o cellBox) cellBox {
	if b.empty() {
		return o
	}
	if o.empty() {
		return b
	}
	return cellBox{
		c0: min32(b.c0, o.c0), c1: max32(b.c1, o.c1),
		r0: min32(b.r0, o.r0), r1: max32(b.r1, o.r1),
	}
}

func (b cellBox) intersect(o cellBox) cellBox {
	return cellBox{
		c0: max32(b.c0, o.c0), c1: min32(b.c1, o.c1),
		r0: max32(b.r0, o.r0), r1: min32(b.r1, o.r1),
	}
}

func (b cellBox) intersects(o cellBox) bool { return !b.intersect(o).empty() }

// contains reports o ⊆ b (an empty o is contained in anything).
func (b cellBox) contains(o cellBox) bool {
	if o.empty() {
		return true
	}
	return b.c0 <= o.c0 && o.c1 <= b.c1 && b.r0 <= o.r0 && o.r1 <= b.r1
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

func rangeBox(g *geo.Grid, p geo.Point, radius float64) cellBox {
	c0, c1, r0, r1 := g.CellRangeWithin(p, radius)
	return cellBox{int32(c0), int32(c1), int32(r0), int32(r1)}
}

// distStats returns the support bounding box, maximum probability and total
// mass of a distribution (zero-probability cells excluded from the box).
func distStats(d stprob.Dist, nx int) (box cellBox, maxP, sum float64) {
	box = emptyBox()
	for k, c := range d.Cells {
		p := d.Probs[k]
		if p <= 0 {
			continue
		}
		sum += p
		if p > maxP {
			maxP = p
		}
		col, row := int32(c%nx), int32(c/nx)
		box = box.union(cellBox{col, col, row, row})
	}
	return box, maxP, sum
}

// distStats32 is distStats over a compact distribution. Max and sum are
// computed from the widened stored float32 values (each exactly
// representable in float64), so the profiled bound stays admissible over
// the values scoring actually reads.
func distStats32(d stprob.Dist32, nx int) (box cellBox, maxP, sum float64) {
	box = emptyBox()
	for k, c := range d.Cells {
		p := float64(d.Probs[k])
		if p <= 0 {
			continue
		}
		sum += p
		if p > maxP {
			maxP = p
		}
		col, row := int32(c%nx), int32(c/nx)
		box = box.union(cellBox{col, col, row, row})
	}
	return box, maxP, sum
}

// sumObsDists sums a run of observation distributions. A run with a single
// mass-carrying distribution aliases it (the Prepared cache is immutable);
// otherwise the result owns its storage.
func sumObsDists(obs []stprob.Dist) stprob.Dist {
	var acc stprob.Dist
	for _, d := range obs {
		switch {
		case d.IsZero():
		case acc.IsZero():
			acc = d
		default:
			acc = mergeSum(acc, d)
		}
	}
	return acc
}

// mergeSum returns the cell-wise sum of two sorted sparse distributions,
// always into fresh storage.
func mergeSum(a, b stprob.Dist) stprob.Dist {
	out := stprob.Dist{
		Cells: make([]int, 0, len(a.Cells)+len(b.Cells)),
		Probs: make([]float64, 0, len(a.Cells)+len(b.Cells)),
	}
	i, j := 0, 0
	for i < len(a.Cells) && j < len(b.Cells) {
		switch {
		case a.Cells[i] < b.Cells[j]:
			out.Cells = append(out.Cells, a.Cells[i])
			out.Probs = append(out.Probs, a.Probs[i])
			i++
		case a.Cells[i] > b.Cells[j]:
			out.Cells = append(out.Cells, b.Cells[j])
			out.Probs = append(out.Probs, b.Probs[j])
			j++
		default:
			out.Cells = append(out.Cells, a.Cells[i])
			out.Probs = append(out.Probs, a.Probs[i]+b.Probs[j])
			i++
			j++
		}
	}
	out.Cells = append(out.Cells, a.Cells[i:]...)
	out.Probs = append(out.Probs, a.Probs[i:]...)
	out.Cells = append(out.Cells, b.Cells[j:]...)
	out.Probs = append(out.Probs, b.Probs[j:]...)
	return out
}

// buildBoundData derives the filter-and-refine metadata of a freshly built
// profile: per-entry stats and suffix weights (profiled bound), observation
// runs with summed distributions (exact bound numerators), and per-bucket
// reach envelopes (exact bound denominators' spatial filter).
func (m *Measure) buildBoundData(prof *Profile, p *Prepared) {
	g := m.grid
	prof.nx = g.Cols()
	w := prof.BucketSeconds
	samples := p.Tr.Samples
	prof.b0 = bucketIndex(p.Tr.Start(), w)
	prof.b1 = bucketIndex(p.Tr.End(), w)

	ne := len(prof.buckets)
	prof.entryBox = make([]cellBox, ne)
	prof.entryMax = make([]float64, ne)
	prof.entrySum = make([]float64, ne)
	prof.sufW = make([]int64, ne+1)
	for i := ne - 1; i >= 0; i-- {
		prof.sufW[i] = prof.sufW[i+1] + int64(prof.weights[i])
	}
	for i := 0; i < ne; i++ {
		var box cellBox
		var maxP, sum float64
		if prof.compact {
			box, maxP, sum = distStats32(prof.dists32[i], prof.nx)
		} else {
			box, maxP, sum = distStats(prof.dists[i], prof.nx)
		}
		prof.entryBox[i] = box
		prof.entryMax[i] = maxP
		prof.entrySum[i] = sum
		if maxP > prof.maxEntryMax {
			prof.maxEntryMax = maxP
		}
		if sum > prof.maxEntrySum {
			prof.maxEntrySum = sum
		}
	}

	// Observation runs grouped by bucketIndex(T). The grouping must use
	// bucketIndex (not the profile loop's bucket-end comparison): floor and
	// float division are monotone, so a run whose bucket falls outside the
	// partner's [b0, b1] provably lies outside the partner's span and can be
	// skipped without touching the score.
	for si := 0; si < len(samples); {
		b := bucketIndex(samples[si].T, w)
		sj := si + 1
		for sj < len(samples) && bucketIndex(samples[sj].T, w) == b {
			sj++
		}
		if sum := sumObsDists(p.obs[si:sj]); !sum.IsZero() {
			box, _, mass := distStats(sum, prof.nx)
			prof.bndBuckets = append(prof.bndBuckets, b)
			prof.bndFirst = append(prof.bndFirst, int32(si))
			prof.bndCount = append(prof.bndCount, int32(sj-si))
			prof.bndDist = append(prof.bndDist, sum)
			prof.bndBox = append(prof.bndBox, box)
			prof.bndMass = append(prof.bndMass, mass)
		}
		si = sj
	}

	if p.est.Exact {
		prof.unbounded = true // supports span the whole grid
		return
	}

	// Reach envelopes, mirroring stprob.Estimator.candidateCellsWS: between
	// observations the support is contained in the intersection of the two
	// reachability disks' cell boxes (radii taken at the bucket's extreme
	// times, so the box covers every timestamp in the bucket), unioned with
	// the noise box around the time-interpolated position (the estimator's
	// disjoint-disk fallback). Observed timestamps contribute their exact
	// support boxes. Radii and interpolation fractions are padded a hair so
	// float rounding of bucket edges can never exclude a reachable cell.
	nb := int(prof.b1 - prof.b0 + 1)
	env := make([]cellBox, nb)
	for i := range env {
		env[i] = emptyBox()
	}
	for i, b := range prof.bndBuckets {
		k := b - prof.b0
		env[k] = env[k].union(prof.bndBox[i])
	}
	nr := m.noise.SupportRadius()
	if nr <= 0 {
		nr = g.CellSize() / 2
	}
	v := p.est.MaxSpeed
	const padRel = 1e-9
	for i := 0; i+1 < len(samples); i++ {
		prev, next := samples[i], samples[i+1]
		if !(next.T > prev.T) {
			continue // no strictly-in-between timestamps
		}
		gap := prev.Loc.Dist(next.Loc)
		span := next.T - prev.T
		sb0 := bucketIndex(prev.T, w)
		sb1 := bucketIndex(next.T, w)
		for b := sb0; b <= sb1; b++ {
			tlo := math.Max(prev.T, float64(b)*w)
			thi := math.Min(next.T, float64(b+1)*w)
			pad := padRel * (w + span)
			var rPrev, rNext float64
			if v > 0 {
				rPrev = nr + v*math.Min(span, thi-prev.T+pad)
				rNext = nr + v*math.Min(span, next.T-tlo+pad)
			} else {
				rPrev = nr + gap
				rNext = nr + gap
			}
			box := rangeBox(g, prev.Loc, rPrev).intersect(rangeBox(g, next.Loc, rNext))
			flo := math.Max(0, (tlo-prev.T)/span-padRel)
			fhi := math.Min(1, (thi-prev.T)/span+padRel)
			fb := rangeBox(g, prev.Loc.Lerp(next.Loc, flo), nr).
				union(rangeBox(g, prev.Loc.Lerp(next.Loc, fhi), nr))
			k := b - prof.b0
			env[k] = env[k].union(box).union(fb)
		}
	}
	prof.env = env
}

// envAt returns the reach envelope of bucket b, which must lie in
// [p.b0, p.b1].
func (p *Profile) envAt(b int64) cellBox {
	if p.unbounded {
		return universalBox()
	}
	return p.env[b-p.b0]
}

// massInBox returns the mass of d inside box, using the precomputed support
// box and total mass to resolve the disjoint and fully-covered cases in
// O(1).
func massInBox(d stprob.Dist, dbox cellBox, mass float64, box cellBox, nx int) float64 {
	if !box.intersects(dbox) {
		return 0
	}
	if box.contains(dbox) {
		return mass
	}
	var s float64
	for k, c := range d.Cells {
		col, row := int32(c%nx), int32(c/nx)
		if box.c0 <= col && col <= box.c1 && box.r0 <= row && row <= box.r1 {
			s += d.Probs[k]
		}
	}
	return s
}

func checkBoundPair(a, b *Profile) error {
	if a == nil || b == nil {
		return errors.New("core: bound needs two profiles")
	}
	if a.BucketSeconds != b.BucketSeconds {
		return fmt.Errorf("core: profile bucket widths differ (%v vs %v)", a.BucketSeconds, b.BucketSeconds)
	}
	if a.compact != b.compact {
		return errors.New("core: profile storage modes differ (compact vs float64)")
	}
	if a.sufW == nil || b.sufW == nil {
		return errors.New("core: profiles carry no bound data")
	}
	if a.n+b.n == 0 {
		return errors.New("core: both trajectories are empty")
	}
	return nil
}

// UpperBound returns an admissible upper bound on the exact
// SimilarityPrepared score of the two profiled trajectories:
// UpperBound(a, b) ≥ STS(Tra_a, Tra_b) always. A zero bound additionally
// certifies that the exact score is exactly zero (no support cell is ever
// shared). Cost is one pass over the profiles' observation-run metadata — no
// estimator work.
func UpperBound(a, b *Profile) (float64, error) {
	if err := checkBoundPair(a, b); err != nil {
		return 0, err
	}
	total := sideBound(a, b) + sideBound(b, a)
	if total <= 0 {
		return 0, nil
	}
	return total * boundInflate / float64(a.n+b.n), nil
}

// sideBound bounds Σ_{s ∈ Tra_a} CP(s): per observation run, the mass of
// a's summed observation distributions inside b's reach envelope.
func sideBound(a, b *Profile) float64 {
	var t float64
	for i, bb := range a.bndBuckets {
		if bb < b.b0 || bb > b.b1 {
			continue // outside b's span: CP is identically zero there
		}
		t += massInBox(a.bndDist[i], a.bndBox[i], a.bndMass[i], b.envAt(bb), a.nx)
	}
	return t
}

// UpperBoundProfiled returns an admissible upper bound on
// SimilarityProfiled(a, b), the refinement target of the profiled engine:
// per shared bucket, Dot(d_a, d_b) ≤ min(max_a·mass_b, max_b·mass_a), and
// zero when the support boxes are disjoint. A zero bound certifies a
// floating-point-exact zero profiled score. O(1) per shared bucket.
func UpperBoundProfiled(a, b *Profile) (float64, error) {
	if err := checkBoundPair(a, b); err != nil {
		return 0, err
	}
	var total float64
	i, j := 0, 0
	for i < len(a.buckets) && j < len(b.buckets) {
		switch {
		case a.buckets[i] < b.buckets[j]:
			i++
		case a.buckets[i] > b.buckets[j]:
			j++
		default:
			if w := a.weights[i] + b.weights[j]; w > 0 && a.entryBox[i].intersects(b.entryBox[j]) {
				m := a.entryMax[i] * b.entrySum[j]
				if alt := b.entryMax[j] * a.entrySum[i]; alt < m {
					m = alt
				}
				total += float64(w) * m
			}
			i++
			j++
		}
	}
	if total <= 0 {
		return 0, nil
	}
	return total * boundInflate / float64(a.n+b.n), nil
}

// SimilarityPreparedThreshold is SimilarityPrepared with an early exit: it
// returns (score, true, nil) with the exact score — bit-identical to
// SimilarityPrepared — when the score reaches theta or the pair is scored to
// completion, and (bound, false, nil) as soon as the running partial sum
// plus the remaining timestamps' trivial bound (CP ≤ 1 each) proves the
// score cannot reach theta; bound is then an admissible upper bound on the
// true score, itself below theta. A non-positive theta never exits early.
func (m *Measure) SimilarityPreparedThreshold(a, b *Prepared, theta float64) (float64, bool, error) {
	n := a.Tr.Len() + b.Tr.Len()
	if n == 0 {
		return 0, false, errors.New("core: both trajectories are empty")
	}
	thetaN := theta * float64(n)
	ws := scratchPool.Get().(*pairScratch)
	defer scratchPool.Put(ws)
	var acc float64
	rem := float64(n)
	for _, side := range [2]*Prepared{a, b} {
		for _, s := range side.Tr.Samples {
			if (acc+rem)*boundInflate < thetaN {
				return (acc + rem) * boundInflate / float64(n), false, nil
			}
			cp, err := coLocationWS(ws, a, b, s.T)
			if err != nil {
				return 0, false, err
			}
			acc += cp
			rem--
		}
	}
	return acc / float64(n), true, nil
}

// SimilarityProfiledThreshold is SimilarityProfiled with an early exit fed
// by the profiles' suffix weights: once the running total plus
// (remaining timestamp weight)·(best possible per-timestamp co-location)
// provably stays below theta, the merge stops. Completion is bit-identical
// to SimilarityProfiled; an early exit returns (bound, false, nil) with an
// admissible upper bound on the profiled score.
func SimilarityProfiledThreshold(a, b *Profile, theta float64) (float64, bool, error) {
	if err := checkBoundPair(a, b); err != nil {
		return 0, false, err
	}
	n := a.n + b.n
	thetaN := theta * float64(n)
	perT := a.maxEntryMax * b.maxEntrySum
	if alt := b.maxEntryMax * a.maxEntrySum; alt < perT {
		perT = alt
	}
	var total float64
	i, j := 0, 0
	for i < len(a.buckets) && j < len(b.buckets) {
		switch {
		case a.buckets[i] < b.buckets[j]:
			i++
		case a.buckets[i] > b.buckets[j]:
			j++
		default:
			rem := float64(a.sufW[i]+b.sufW[j]) * perT
			if (total+rem)*boundInflate < thetaN {
				return (total + rem) * boundInflate / float64(n), false, nil
			}
			if w := a.weights[i] + b.weights[j]; w > 0 {
				if a.compact {
					total += float64(w) * a.dists32[i].Dot(b.dists32[j])
				} else {
					total += float64(w) * a.dists[i].Dot(b.dists[j])
				}
			}
			i++
			j++
		}
	}
	return total / float64(n), true, nil
}

// refineScratch is the pooled evaluation state of one RefineThreshold call.
type refineScratch struct {
	ps   pairScratch
	ubs  []float64
	sufs []float64
}

var refinePool = sync.Pool{New: func() any { return new(refineScratch) }}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// RefineThreshold is the engine-grade thresholded exact scorer: it uses the
// pair's profiles to compute per-observation-run upper-bound terms, skips
// runs that provably contribute an exact zero, and early-exits as soon as
// the partial sum plus the remaining runs' bound cannot reach theta.
// Observation runs are processed in timestamp order (a's samples, then b's),
// so a completed refinement returns the bit-identical SimilarityPrepared
// score; an early exit returns (bound, false, nil) with an admissible upper
// bound below theta. pa/pb must be profiles of a/b under the same measure.
func (m *Measure) RefineThreshold(a, b *Prepared, pa, pb *Profile, theta float64) (float64, bool, error) {
	if err := checkBoundPair(pa, pb); err != nil {
		return 0, false, err
	}
	if pa.n != a.Tr.Len() || pb.n != b.Tr.Len() {
		return 0, false, errors.New("core: RefineThreshold profiles do not match the prepared trajectories")
	}
	n := a.Tr.Len() + b.Tr.Len()
	thetaN := theta * float64(n)
	rs := refinePool.Get().(*refineScratch)
	defer refinePool.Put(rs)
	na := len(pa.bndBuckets)
	nt := na + len(pb.bndBuckets)
	rs.ubs = growFloats(rs.ubs, nt)
	rs.sufs = growFloats(rs.sufs, nt+1)
	for i, bb := range pa.bndBuckets {
		if bb < pb.b0 || bb > pb.b1 {
			rs.ubs[i] = 0
			continue
		}
		rs.ubs[i] = massInBox(pa.bndDist[i], pa.bndBox[i], pa.bndMass[i], pb.envAt(bb), pa.nx)
	}
	for j, bb := range pb.bndBuckets {
		if bb < pa.b0 || bb > pa.b1 {
			rs.ubs[na+j] = 0
			continue
		}
		rs.ubs[na+j] = massInBox(pb.bndDist[j], pb.bndBox[j], pb.bndMass[j], pa.envAt(bb), pb.nx)
	}
	rs.sufs[nt] = 0
	for i := nt - 1; i >= 0; i-- {
		rs.sufs[i] = rs.sufs[i+1] + rs.ubs[i]
	}
	var acc float64
	for i := 0; i < nt; i++ {
		if rs.sufs[i] == 0 {
			break // every remaining run contributes a floating-point-exact zero
		}
		if (acc+rs.sufs[i])*boundInflate < thetaN {
			return (acc + rs.sufs[i]) * boundInflate / float64(n), false, nil
		}
		if rs.ubs[i] == 0 {
			continue // this run's co-locations are all exactly zero
		}
		var side *Prepared
		var first, count int
		if i < na {
			side, first, count = a, int(pa.bndFirst[i]), int(pa.bndCount[i])
		} else {
			side, first, count = b, int(pb.bndFirst[i-na]), int(pb.bndCount[i-na])
		}
		for _, s := range side.Tr.Samples[first : first+count] {
			cp, err := coLocationWS(&rs.ps, a, b, s.T)
			if err != nil {
				return 0, false, err
			}
			acc += cp
		}
	}
	return acc / float64(n), true, nil
}
