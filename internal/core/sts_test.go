package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/kde"
	"github.com/stslib/sts/internal/markov"
	"github.com/stslib/sts/internal/model"
	"github.com/stslib/sts/internal/stprob"
)

func testGrid(t *testing.T) *geo.Grid {
	t.Helper()
	g, err := geo.NewGrid(geo.NewRect(geo.Point{X: -30, Y: -30}, geo.Point{X: 230, Y: 230}), 5)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// walk returns a trajectory along the given heading at speed m/s, sampled
// every step seconds with optional phase offset, n samples.
func walk(id string, origin geo.Point, vx, vy, step, phase float64, n int) model.Trajectory {
	tr := model.Trajectory{ID: id}
	for i := 0; i < n; i++ {
		tt := phase + float64(i)*step
		tr.Samples = append(tr.Samples, model.Sample{
			Loc: geo.Point{X: origin.X + vx*tt, Y: origin.Y + vy*tt},
			T:   tt,
		})
	}
	return tr
}

func mustSTS(t *testing.T, g *geo.Grid, sigma float64) *Measure {
	t.Helper()
	m, err := NewSTS(g, sigma)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("New without grid should fail")
	}
	g := testGrid(t)
	m, err := New(Options{Grid: g})
	if err != nil {
		t.Fatal(err)
	}
	if m.Grid() != g {
		t.Error("Grid() accessor")
	}
}

func TestSimilarityCoLocatedBeatsSeparate(t *testing.T) {
	g := testGrid(t)
	m := mustSTS(t, g, 3)
	// Two objects on the same path, observed asynchronously.
	a := walk("a", geo.Point{Y: 100}, 1.2, 0, 13, 0, 12)
	b := walk("b", geo.Point{Y: 100}, 1.2, 0, 17, 5, 9)
	// A third object 80 m north.
	c := walk("c", geo.Point{Y: 180}, 1.2, 0, 17, 5, 9)

	same, err := m.Similarity(a, b)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := m.Similarity(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if !(same > diff) {
		t.Errorf("co-located %v <= separate %v", same, diff)
	}
	if same <= 0 {
		t.Error("co-located similarity is zero")
	}
}

func TestSimilaritySymmetric(t *testing.T) {
	g := testGrid(t)
	m := mustSTS(t, g, 3)
	a := walk("a", geo.Point{Y: 100}, 1, 0, 10, 0, 10)
	b := walk("b", geo.Point{Y: 105}, 1, 0.1, 15, 3, 8)
	ab, err := m.Similarity(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := m.Similarity(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ab-ba) > 1e-12 {
		t.Errorf("STS(a,b)=%v STS(b,a)=%v", ab, ba)
	}
}

func TestSimilarityBounds(t *testing.T) {
	g := testGrid(t)
	m := mustSTS(t, g, 3)
	rng := rand.New(rand.NewSource(9))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func(id string) model.Trajectory {
			return walk(id,
				geo.Point{X: r.Float64() * 200, Y: r.Float64() * 200},
				r.Float64()*2-1, r.Float64()*2-1,
				5+r.Float64()*20, r.Float64()*10, 4+r.Intn(8))
		}
		a, b := mk("a"), mk("b")
		v, err := m.Similarity(a, b)
		if err != nil {
			return false
		}
		return v >= 0 && v <= 1
	}
	cfg := &quick.Config{MaxCount: 20, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSimilarityDisjointTimesIsZero(t *testing.T) {
	g := testGrid(t)
	m := mustSTS(t, g, 3)
	a := walk("a", geo.Point{Y: 100}, 1, 0, 10, 0, 5)    // t in [0,40]
	b := walk("b", geo.Point{Y: 100}, 1, 0, 10, 1000, 5) // t in [1000,1040]
	v, err := m.Similarity(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Errorf("disjoint time windows: STS=%v want 0", v)
	}
}

func TestSimilarityRejectsInvalidTrajectory(t *testing.T) {
	g := testGrid(t)
	m := mustSTS(t, g, 3)
	good := walk("a", geo.Point{Y: 100}, 1, 0, 10, 0, 5)
	bad := model.Trajectory{ID: "bad", Samples: []model.Sample{{T: 2}, {T: 1}}}
	if _, err := m.Similarity(good, bad); err == nil {
		t.Error("unsorted trajectory accepted")
	}
	if _, err := m.Similarity(model.Trajectory{}, good); err == nil {
		t.Error("empty trajectory accepted")
	}
}

func TestPreparedMatchesOneShot(t *testing.T) {
	g := testGrid(t)
	m := mustSTS(t, g, 3)
	a := walk("a", geo.Point{Y: 100}, 1.1, 0, 12, 0, 9)
	b := walk("b", geo.Point{Y: 102}, 1.1, 0, 19, 4, 7)
	oneShot, err := m.Similarity(a, b)
	if err != nil {
		t.Fatal(err)
	}
	pa, err := m.Prepare(a)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := m.Prepare(b)
	if err != nil {
		t.Fatal(err)
	}
	prepared, err := m.SimilarityPrepared(pa, pb)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(oneShot-prepared) > 1e-12 {
		t.Errorf("one-shot %v vs prepared %v", oneShot, prepared)
	}
}

func TestCoLocationBounds(t *testing.T) {
	g := testGrid(t)
	m := mustSTS(t, g, 3)
	a := walk("a", geo.Point{Y: 100}, 1, 0, 10, 0, 8)
	b := walk("b", geo.Point{Y: 100}, 1, 0, 14, 3, 6)
	pa, _ := m.Prepare(a)
	pb, _ := m.Prepare(b)
	for _, tt := range []float64{0, 5, 17, 33, 70, -10} {
		cp, err := CoLocation(pa, pb, tt)
		if err != nil {
			t.Fatal(err)
		}
		if cp < 0 || cp > 1 {
			t.Errorf("CP(%v)=%v out of [0,1]", tt, cp)
		}
	}
}

func TestSingleSampleTrajectory(t *testing.T) {
	g := testGrid(t)
	m := mustSTS(t, g, 3)
	single := model.Trajectory{ID: "s", Samples: []model.Sample{{Loc: geo.Point{X: 50, Y: 100}, T: 10}}}
	other := walk("o", geo.Point{Y: 100}, 1, 0, 5, 0, 12)
	v, err := m.Similarity(single, other)
	if err != nil {
		t.Fatalf("single-sample trajectory: %v", err)
	}
	if v < 0 || v > 1 {
		t.Errorf("similarity %v out of range", v)
	}
}

func TestVariantsProduceDifferentMeasures(t *testing.T) {
	g := testGrid(t)
	a := walk("a", geo.Point{Y: 100}, 1.2, 0, 13, 0, 10)
	b := walk("b", geo.Point{Y: 100}, 1.2, 0, 17, 5, 8)
	ds := model.Dataset{a, b}

	full := mustSTS(t, g, 3)
	noNoise, err := NewSTSN(g)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := kde.NewPooledSpeedModel(ds)
	if err != nil {
		t.Fatal(err)
	}
	global, err := NewSTSG(g, 3, pooled)
	if err != nil {
		t.Fatal(err)
	}
	freq, err := markov.Train(g, ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	freqM, err := NewSTSF(g, 3, freq, pooled.MaxSpeed())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		m    *Measure
	}{{"STS", full}, {"STS-N", noNoise}, {"STS-G", global}, {"STS-F", freqM}} {
		v, err := tc.m.Similarity(a, b)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if v < 0 || v > 1 {
			t.Errorf("%s similarity %v out of range", tc.name, v)
		}
	}
}

func TestVariantConstructorErrors(t *testing.T) {
	g := testGrid(t)
	if _, err := NewSTSG(g, 3, nil); err == nil {
		// NewSTSG succeeds at construction; the error surfaces at Prepare.
		m, _ := NewSTSG(g, 3, nil)
		a := walk("a", geo.Point{Y: 100}, 1, 0, 10, 0, 5)
		if _, err := m.Prepare(a); err == nil {
			t.Error("STS-G without a model prepared successfully")
		}
	}
	m, err := NewSTSF(g, 3, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := walk("a", geo.Point{Y: 100}, 1, 0, 10, 0, 5)
	if _, err := m.Prepare(a); err == nil {
		t.Error("STS-F without a model prepared successfully")
	}
}

func TestExactModeAgreesOnRanking(t *testing.T) {
	// A coarse grid keeps the exact mode affordable.
	g, err := geo.NewGrid(geo.NewRect(geo.Point{X: -20, Y: -20}, geo.Point{X: 120, Y: 120}), 10)
	if err != nil {
		t.Fatal(err)
	}
	// Slack off so truncated and exact evaluate the same formula.
	fast, err := New(Options{Grid: g, Noise: stprob.GaussianNoise{Sigma: 5}, SpeedSlack: -1})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := New(Options{Grid: g, Noise: stprob.GaussianNoise{Sigma: 5}, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	a := walk("a", geo.Point{Y: 50}, 1, 0, 15, 0, 6)
	b := walk("b", geo.Point{Y: 50}, 1, 0, 21, 4, 5)
	c := walk("c", geo.Point{Y: 90}, 1, 0, 21, 4, 5)

	fab, _ := fast.Similarity(a, b)
	fac, _ := fast.Similarity(a, c)
	eab, _ := exact.Similarity(a, b)
	eac, _ := exact.Similarity(a, c)
	if (fab > fac) != (eab > eac) {
		t.Errorf("ranking differs: fast (%v,%v), exact (%v,%v)", fab, fac, eab, eac)
	}
	// The truncated twin score should be close to the exact one.
	if eab > 0 && math.Abs(fab-eab)/eab > 0.1 {
		t.Errorf("twin score: fast %v vs exact %v", fab, eab)
	}
}
