package core

import (
	"errors"
	"fmt"
	"math"

	"github.com/stslib/sts/internal/stprob"
)

// ProfileOptions configures the bucketed S-T profile approximation of
// SimilarityProfiled: time is quantized into fixed-width buckets and each
// trajectory's location distributions are precomputed once per bucket, so
// pair scoring becomes a sparse dot-product join instead of re-running the
// Markov interpolation of Eq. 4 for every pair.
type ProfileOptions struct {
	// BucketSeconds is the width of one time bucket. It is the accuracy ↔
	// speed knob: profiled scores converge to the exact SimilarityPrepared
	// values as BucketSeconds → 0 and get cheaper (fewer buckets per
	// trajectory) as it grows. Zero selects DefaultProfileBucketSeconds;
	// negative or non-finite values are rejected.
	BucketSeconds float64
	// Bounds additionally precomputes the filter-and-refine bound state
	// (reach envelopes, per-bucket mass summaries — see bound.go), which
	// UpperBound and the thresholded scorers require. Off by default: pure
	// profiled scoring never reads it, and skipping it keeps transient
	// profile builds cheap. The engine opts in for its cached profiles.
	Bounds bool
	// Compact stores the profile's probabilities in float32 instead of
	// float64, halving the dominant memory cost of a cached profile (the
	// probability backing array; cells and bound metadata are unaffected).
	// Scoring still accumulates in float64 — the only loss against the
	// float64 mode is the one-time rounding of each stored probability, so
	// compact scores deviate from float64-profiled scores by well under
	// 1e-6 relative (DESIGN.md §12 documents the budget; the convergence
	// suites gate it). Profiles of different storage modes cannot be scored
	// against each other.
	Compact bool
}

// DefaultProfileBucketSeconds is the default profile bucket width. It sits
// at the scale of typical sampling gaps (15 s taxi GPS, ~25 s mall WiFi),
// so weight-carrying buckets mostly hold a single observation and the
// quantization error stays within one inter-sample interpolation step.
const DefaultProfileBucketSeconds = 30

// maxProfileBuckets bounds the bucket count of one profile. A pathological
// width (microseconds against an hours-long trajectory) would otherwise
// materialize millions of distributions; beyond the bound Profile returns
// an error instead of exhausting memory.
const maxProfileBuckets = 1 << 20

// bucketWidth resolves the configured width, validating it.
func (o ProfileOptions) bucketWidth() (float64, error) {
	w := o.BucketSeconds
	if w == 0 {
		w = DefaultProfileBucketSeconds
	}
	if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		return 0, fmt.Errorf("core: ProfileOptions.BucketSeconds must be positive and finite, got %v", o.BucketSeconds)
	}
	return w, nil
}

// Profile is one trajectory's sparse spatial-temporal profile: for every
// time bucket intersecting the trajectory's active span, the normalized
// location distribution STP(·, t_b, Tra) at the bucket's representative
// time, plus the number of the trajectory's own observations in the bucket
// (the timestamp weight of Eq. 10's average). Buckets whose distribution is
// zero are omitted — they can never contribute co-location mass.
//
// Profiles are immutable after construction and safe for concurrent use;
// their distributions own their storage (two shared backing arrays), so a
// profile stays valid independently of the Prepared it was built from.
type Profile struct {
	// ID is the source trajectory's ID.
	ID string
	// BucketSeconds is the bucket width the profile was built with. Only
	// profiles with identical widths can be scored against each other.
	BucketSeconds float64

	n       int     // the trajectory's sample count, Eq. 10's per-side weight
	buckets []int64 // sorted ascending
	weights []int32 // own-observation count per bucket
	// Exactly one storage mode is populated: dists/probs for the float64
	// default, dists32/probs32 when built with ProfileOptions.Compact.
	dists   []stprob.Dist
	dists32 []stprob.Dist32
	compact bool
	// cells/probs back every entry's Dist, keeping the profile compact
	// (two allocations instead of two per bucket).
	cells   []int
	probs   []float64
	probs32 []float32

	// Filter-and-refine bound state (see bound.go). nx decomposes cell
	// indices into lattice coordinates; b0/b1 is the bucket range of the
	// active span [Start, End].
	nx     int
	b0, b1 int64
	// env[b-b0] is the reach envelope of bucket b: a cell box provably
	// containing the support of STP(·, t, Tra) for every t in the bucket.
	// nil when unbounded (Exact mode: the support is the whole grid).
	env       []cellBox
	unbounded bool
	// Observation runs grouped by bucketIndex(T): bndDist[i] is the sum of
	// the (normalized) noise distributions of the run's observations, the
	// per-bucket numerator of the upper bound's mass-in-envelope terms.
	// Single-observation runs alias the Prepared cache.
	bndBuckets []int64
	bndFirst   []int32
	bndCount   []int32
	bndDist    []stprob.Dist
	bndBox     []cellBox
	bndMass    []float64
	// Per scoring entry: support box, max probability and total mass of
	// dists[i], plus suffix timestamp weights — the O(1) ingredients of the
	// profiled bound and its early-exit variant.
	entryBox    []cellBox
	entryMax    []float64
	entrySum    []float64
	sufW        []int64 // sufW[i] = Σ_{j≥i} weights[j]; len = len(weights)+1
	maxEntryMax float64
	maxEntrySum float64
}

// SampleCount returns the source trajectory's number of observations.
func (p *Profile) SampleCount() int { return p.n }

// NumBuckets returns the number of (non-zero) bucket entries.
func (p *Profile) NumBuckets() int { return len(p.buckets) }

// EntryAt returns the i-th bucket entry: the bucket index, the number of
// the trajectory's own observations in it, and the location distribution
// at its representative time. For a float64 profile the Dist aliases the
// profile's backing arrays and must not be mutated; for a compact profile
// the probabilities are widened into fresh storage.
func (p *Profile) EntryAt(i int) (bucket int64, weight int, d stprob.Dist) {
	if p.compact {
		return p.buckets[i], int(p.weights[i]), p.dists32[i].Dist()
	}
	return p.buckets[i], int(p.weights[i]), p.dists[i]
}

// MemoryCells returns the total number of (cell, prob) pairs the profile
// stores — its dominant memory cost.
func (p *Profile) MemoryCells() int { return len(p.cells) }

// Compact reports whether the profile stores float32 probabilities.
func (p *Profile) Compact() bool { return p.compact }

// HasBounds reports whether the profile carries filter-and-refine bound
// state (built with ProfileOptions.Bounds), which UpperBound and the
// thresholded scorers require.
func (p *Profile) HasBounds() bool { return p.sufW != nil }

// MemoryBytes estimates the profile's resident heap footprint: the shared
// cell/probability backing arrays (the dominant term — float32 storage
// halves the probability half), the per-entry metadata, and the
// filter-and-refine bound state when present. Cache observability sums it
// per cached profile, so the compact mode's footprint claim is measurable
// from /v1/stats rather than asserted.
func (p *Profile) MemoryBytes() int {
	const (
		intSize  = 8
		f64Size  = 8
		f32Size  = 4
		distSize = 48 // slice header pair (cells, probs)
		boxSize  = 16
	)
	b := len(p.cells)*intSize + len(p.probs)*f64Size + len(p.probs32)*f32Size
	b += len(p.buckets)*8 + len(p.weights)*4
	b += (len(p.dists) + len(p.dists32)) * distSize
	b += len(p.env) * boxSize
	b += len(p.bndBuckets)*8 + len(p.bndFirst)*4 + len(p.bndCount)*4 + len(p.bndMass)*f64Size
	b += len(p.bndBox) * boxSize
	for i, d := range p.bndDist {
		b += distSize
		// Multi-observation runs own their summed storage; single runs alias
		// the Prepared cache and cost only their headers.
		if i < len(p.bndCount) && p.bndCount[i] > 1 {
			b += len(d.Cells) * (intSize + f64Size)
		}
	}
	b += len(p.entryBox)*boxSize + len(p.entryMax)*f64Size + len(p.entrySum)*f64Size + len(p.sufW)*8
	return b
}

// bucketIndex quantizes a timestamp onto the bucket axis shared by all
// profiles of one width (floor, so negative timestamps bucket correctly).
func bucketIndex(t, w float64) int64 {
	return int64(math.Floor(t / w))
}

// Profile builds the bucketed S-T profile of a prepared trajectory. Every
// bucket overlapping [Start, End] gets one distribution:
//
//   - a bucket holding own observations is represented at its first
//     observation's timestamp, reusing the exact (cached) noise
//     distribution — weight-carrying buckets are therefore exact;
//   - an empty bucket is represented at its center (clamped to the active
//     span), one Markov interpolation of Eq. 4.
//
// The per-trajectory cost is O(span / BucketSeconds) interpolations, paid
// once; scoring the trajectory against any partner afterwards touches only
// the precomputed distributions.
func (m *Measure) Profile(p *Prepared, opts ProfileOptions) (*Profile, error) {
	w, err := opts.bucketWidth()
	if err != nil {
		return nil, err
	}
	if p == nil || p.Tr.Len() == 0 {
		return nil, errors.New("core: Profile needs a non-empty prepared trajectory")
	}
	start, end := p.Tr.Start(), p.Tr.End()
	b0, b1 := bucketIndex(start, w), bucketIndex(end, w)
	if nb := b1 - b0 + 1; nb > maxProfileBuckets {
		return nil, fmt.Errorf("core: profile of %q would span %d buckets (max %d); widen ProfileOptions.BucketSeconds",
			p.Tr.ID, nb, maxProfileBuckets)
	}
	prof := &Profile{ID: p.Tr.ID, BucketSeconds: w, n: p.Tr.Len(), compact: opts.Compact}
	ws := scratchPool.Get().(*pairScratch)
	defer scratchPool.Put(ws)
	si := 0 // cursor over the trajectory's samples
	for b := b0; b <= b1; b++ {
		bucketEnd := float64(b+1) * w
		// Count own observations in this bucket; the first one becomes the
		// representative time with its exact cached noise distribution.
		var weight int32
		var d stprob.Dist
		var derr error
		for si < len(p.Tr.Samples) && p.Tr.Samples[si].T < bucketEnd {
			if weight == 0 {
				d = p.obs[si]
			}
			weight++
			si++
		}
		if weight == 0 {
			t := (float64(b) + 0.5) * w
			if t < start {
				t = start
			} else if t > end {
				t = end
			}
			d, derr = p.distAtWS(&ws.a, t)
			if derr != nil {
				return nil, derr
			}
		}
		// Copy the distribution, trimming explicit zero-probability cells:
		// they contribute nothing to any dot product but would be paid for
		// in memory and merge work on every pair evaluation. In compact mode
		// the zero test runs on the *stored* float32 value, so deep-tail
		// probabilities that round to zero are trimmed too and every stored
		// probability stays strictly positive.
		off := len(prof.cells)
		if opts.Compact {
			for k, c := range d.Cells {
				if pv := float32(d.Probs[k]); pv > 0 {
					prof.cells = append(prof.cells, c)
					prof.probs32 = append(prof.probs32, pv)
				}
			}
		} else {
			for k, c := range d.Cells {
				if pv := d.Probs[k]; pv > 0 {
					prof.cells = append(prof.cells, c)
					prof.probs = append(prof.probs, pv)
				}
			}
		}
		if len(prof.cells) == off {
			continue // distribution is all-zero mass
		}
		prof.buckets = append(prof.buckets, b)
		prof.weights = append(prof.weights, weight)
		if opts.Compact {
			prof.dists32 = append(prof.dists32, stprob.Dist32{
				Cells: prof.cells[off:len(prof.cells):len(prof.cells)],
				Probs: prof.probs32[off:len(prof.probs32):len(prof.probs32)],
			})
		} else {
			prof.dists = append(prof.dists, stprob.Dist{
				Cells: prof.cells[off:len(prof.cells):len(prof.cells)],
				Probs: prof.probs[off:len(prof.probs):len(prof.probs)],
			})
		}
	}
	// Appends may have grown the backing arrays past earlier views; rebuild
	// the views over the final arrays so all entries share one allocation.
	off := 0
	for i := range prof.dists {
		n := len(prof.dists[i].Cells)
		prof.dists[i] = stprob.Dist{
			Cells: prof.cells[off : off+n : off+n],
			Probs: prof.probs[off : off+n : off+n],
		}
		off += n
	}
	for i := range prof.dists32 {
		n := len(prof.dists32[i].Cells)
		prof.dists32[i] = stprob.Dist32{
			Cells: prof.cells[off : off+n : off+n],
			Probs: prof.probs32[off : off+n : off+n],
		}
		off += n
	}
	if opts.Bounds {
		m.buildBoundData(prof, p)
	}
	return prof, nil
}

// SimilarityProfiled returns the bucketed approximation of STS(Tra, Tra′)
// of Eq. 10: each observation's co-location probability is evaluated at
// its bucket's representative times instead of its own timestamp, so the
// whole pair score collapses to a two-cursor merge over the profiles'
// bucket intersection with one sparse Dist.Dot per shared bucket — no
// estimator work, no allocations. The approximation converges to
// SimilarityPrepared as ProfileOptions.BucketSeconds → 0.
func (m *Measure) SimilarityProfiled(a, b *Profile) (float64, error) {
	return SimilarityProfiled(a, b)
}

// SimilarityProfiled is the measure-independent form of
// Measure.SimilarityProfiled: profiles carry everything scoring needs.
func SimilarityProfiled(a, b *Profile) (float64, error) {
	if a == nil || b == nil {
		return 0, errors.New("core: SimilarityProfiled needs two profiles")
	}
	if a.BucketSeconds != b.BucketSeconds {
		return 0, fmt.Errorf("core: profile bucket widths differ (%v vs %v)", a.BucketSeconds, b.BucketSeconds)
	}
	if a.compact != b.compact {
		return 0, errors.New("core: profile storage modes differ (compact vs float64)")
	}
	n := a.n + b.n
	if n == 0 {
		return 0, errors.New("core: both trajectories are empty")
	}
	var total float64
	if a.compact {
		total = mergeDots32(a.buckets, b.buckets, a.weights, b.weights, a.dists32, b.dists32)
	} else {
		total = mergeDots(a.buckets, b.buckets, a.weights, b.weights, a.dists, b.dists)
	}
	return total / float64(n), nil
}
