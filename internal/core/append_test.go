package core

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/kde"
	"github.com/stslib/sts/internal/model"
)

// randTraj draws a sporadically sampled random walk with n samples.
func randTraj(r *rand.Rand, id string, n int) model.Trajectory {
	tr := model.Trajectory{ID: id}
	tt := r.Float64() * 50
	p := geo.Point{X: 50 + r.Float64()*100, Y: 50 + r.Float64()*100}
	for i := 0; i < n; i++ {
		tr.Samples = append(tr.Samples, model.Sample{T: tt, Loc: p})
		dt := 1 + r.Float64()*45
		tt += dt
		p = p.Add(geo.Point{X: (r.Float64()*2 - 1) * 2 * dt, Y: (r.Float64()*2 - 1) * 2 * dt})
	}
	return tr
}

// requirePreparedIdentical asserts AppendPrepared produced exactly the
// state Prepare derives from the full trajectory.
func requirePreparedIdentical(t *testing.T, got, want *Prepared) {
	t.Helper()
	if !reflect.DeepEqual(got.Tr, want.Tr) {
		t.Fatalf("trajectories differ: %+v vs %+v", got.Tr, want.Tr)
	}
	if got.est.MaxSpeed != want.est.MaxSpeed {
		t.Fatalf("MaxSpeed %v != %v", got.est.MaxSpeed, want.est.MaxSpeed)
	}
	if len(got.obs) != len(want.obs) {
		t.Fatalf("obs count %d != %d", len(got.obs), len(want.obs))
	}
	for i := range got.obs {
		if !reflect.DeepEqual(got.obs[i].Cells, want.obs[i].Cells) ||
			!reflect.DeepEqual(got.obs[i].Probs, want.obs[i].Probs) {
			t.Fatalf("obs[%d] differs", i)
		}
	}
}

// requireProfilesIdentical asserts bit-identity of every field, including
// the bound metadata — the contract AppendProfile documents.
func requireProfilesIdentical(t *testing.T, got, want *Profile) {
	t.Helper()
	if reflect.DeepEqual(got, want) {
		return
	}
	// Narrow the failure for a readable message.
	if !reflect.DeepEqual(got.buckets, want.buckets) {
		t.Fatalf("buckets differ:\n got %v\nwant %v", got.buckets, want.buckets)
	}
	if !reflect.DeepEqual(got.weights, want.weights) {
		t.Fatalf("weights differ:\n got %v\nwant %v", got.weights, want.weights)
	}
	for i := range want.dists {
		if !reflect.DeepEqual(got.dists[i], want.dists[i]) {
			t.Fatalf("dists[%d] (bucket %d) differs", i, want.buckets[i])
		}
	}
	for i := range want.dists32 {
		if !reflect.DeepEqual(got.dists32[i], want.dists32[i]) {
			t.Fatalf("dists32[%d] (bucket %d) differs", i, want.buckets[i])
		}
	}
	t.Fatalf("bound metadata differs:\n got %+v\nwant %+v", got, want)
}

// measuresUnderTest builds one measure per transition-provider family: the
// personalized KDE (trajectory-dependent, forces interpolated-prefix
// recomputation) and a pooled global model (trajectory-independent, the
// copy-everything fast path).
func measuresUnderTest(t *testing.T, seed model.Dataset) map[string]*Measure {
	t.Helper()
	g := testGrid(t)
	personal := mustSTS(t, g, 3)
	pooled, err := kde.NewPooledSpeedModel(seed)
	if err != nil {
		t.Fatal(err)
	}
	global, err := NewSTSG(g, 3, pooled)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*Measure{"personalized": personal, "global": global}
}

// TestAppendMatchesRebuild drives randomized append sequences: a
// trajectory grows chunk by chunk, and after every chunk the incrementally
// maintained prepared state and profile must be bit-identical to a
// from-scratch rebuild of the grown trajectory — across provider families,
// storage modes, and with bound metadata on.
func TestAppendMatchesRebuild(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	seedDS := model.Dataset{randTraj(r, "s1", 12), randTraj(r, "s2", 9)}
	for name, m := range measuresUnderTest(t, seedDS) {
		t.Run(name, func(t *testing.T) {
			for trial := 0; trial < 6; trial++ {
				full := randTraj(r, "tr", 6+r.Intn(14))
				cut := 1 + r.Intn(len(full.Samples)-1)
				cur := model.Trajectory{ID: full.ID, Samples: full.Samples[:cut]}
				p, err := m.Prepare(cur)
				if err != nil {
					t.Fatal(err)
				}
				opts := ProfileOptions{Bounds: true, BucketSeconds: 30}
				copts := ProfileOptions{Bounds: true, BucketSeconds: 30, Compact: true}
				prof := mustProfile(t, m, cur, opts)
				cprof := mustProfile(t, m, cur, copts)
				for cut < len(full.Samples) {
					k := 1 + r.Intn(3)
					if cut+k > len(full.Samples) {
						k = len(full.Samples) - cut
					}
					tail := full.Samples[cut : cut+k]
					cut += k
					grown := model.Trajectory{ID: full.ID, Samples: full.Samples[:cut]}

					p, err = m.AppendPrepared(p, tail)
					if err != nil {
						t.Fatal(err)
					}
					want, err := m.Prepare(grown)
					if err != nil {
						t.Fatal(err)
					}
					requirePreparedIdentical(t, p, want)

					prof, err = m.AppendProfile(prof, p, opts)
					if err != nil {
						t.Fatal(err)
					}
					requireProfilesIdentical(t, prof, mustProfile(t, m, grown, opts))
					cprof, err = m.AppendProfile(cprof, p, copts)
					if err != nil {
						t.Fatal(err)
					}
					requireProfilesIdentical(t, cprof, mustProfile(t, m, grown, copts))
				}
			}
		})
	}
}

// TestAppendBoundsStayAdmissible runs the full bound contract against a
// profile that went through several incremental appends: the incremental
// path must keep certified-zero filtering and thresholded refinement sound.
func TestAppendBoundsStayAdmissible(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	g := testGrid(t)
	m := mustSTS(t, g, 3)
	opts := ProfileOptions{Bounds: true, BucketSeconds: 30}
	other := randTraj(r, "other", 10)
	b, err := m.Prepare(other)
	if err != nil {
		t.Fatal(err)
	}
	pb := mustProfile(t, m, other, opts)
	full := randTraj(r, "grower", 12)
	a, err := m.Prepare(model.Trajectory{ID: full.ID, Samples: full.Samples[:3]})
	if err != nil {
		t.Fatal(err)
	}
	pa, err := m.Profile(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 3; cut < len(full.Samples); cut += 3 {
		end := cut + 3
		if end > len(full.Samples) {
			end = len(full.Samples)
		}
		a, err = m.AppendPrepared(a, full.Samples[cut:end])
		if err != nil {
			t.Fatal(err)
		}
		pa, err = m.AppendProfile(pa, a, opts)
		if err != nil {
			t.Fatal(err)
		}
		checkAdmissible(t, m, a, b, pa, pb)
	}
}

// TestAppendValidation pins the error paths: empty tails, non-increasing
// timestamps, and profile/prepared mismatches must be rejected.
func TestAppendValidation(t *testing.T) {
	g := testGrid(t)
	m := mustSTS(t, g, 3)
	tr := walk("a", geo.Point{Y: 100}, 1, 0, 10, 0, 8)
	p, err := m.Prepare(tr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.AppendPrepared(p, nil); err == nil {
		t.Error("empty tail accepted")
	}
	if _, err := m.AppendPrepared(nil, tr.Samples); err == nil {
		t.Error("nil prepared accepted")
	}
	stale := tr.Samples[len(tr.Samples)-1] // same timestamp as current end
	if _, err := m.AppendPrepared(p, []model.Sample{stale}); err == nil {
		t.Error("non-increasing tail accepted")
	}
	prof := mustProfile(t, m, tr, ProfileOptions{BucketSeconds: 30})
	if _, err := m.AppendProfile(prof, p, ProfileOptions{BucketSeconds: 30}); err == nil {
		t.Error("profile of the full trajectory accepted as prefix")
	}
	tail := model.Sample{T: tr.End() + 5, Loc: tr.Samples[0].Loc}
	grown, err := m.AppendPrepared(p, []model.Sample{tail})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.AppendProfile(prof, grown, ProfileOptions{BucketSeconds: 60}); err == nil {
		t.Error("mismatched bucket width accepted")
	}
	if _, err := m.AppendProfile(prof, grown, ProfileOptions{BucketSeconds: 30, Compact: true}); err == nil {
		t.Error("mismatched storage mode accepted")
	}
	if got, err := m.AppendProfile(prof, grown, ProfileOptions{BucketSeconds: 30}); err != nil {
		t.Errorf("valid append rejected: %v", err)
	} else {
		requireProfilesIdentical(t, got, mustProfile(t, m, model.Trajectory{ID: tr.ID, Samples: grown.Tr.Samples}, ProfileOptions{BucketSeconds: 30}))
	}
}
