package core

import "github.com/stslib/sts/internal/stprob"

// This file holds the bucket-merge kernels of profiled scoring: the sorted
// intersection of two profiles' bucket axes, dispatching one sparse dot
// product per shared bucket. Like stprob's dot kernels, both variants are
// shaped for bounds-check elimination — the weight and distribution arrays
// are pinned to the bucket arrays' lengths up front, so the merge cursors'
// loop guards prove every index in range (scripts/check_bce.sh gates this) —
// and the cursor advance uses the branch-lean two-condition form instead of
// a three-way switch.

// mergeDots merges two float64-backed profiles: Σ over shared buckets of
// (wa+wb)·⟨da, db⟩, skipping zero-weight buckets.
func mergeDots(ab, bb []int64, aw, bw []int32, ad, bd []stprob.Dist) float64 {
	if len(aw) < len(ab) || len(ad) < len(ab) || len(bw) < len(bb) || len(bd) < len(bb) {
		return 0 // unreachable: profile invariants keep the axes aligned
	}
	aw = aw[:len(ab)]
	ad = ad[:len(ab)]
	bw = bw[:len(bb)]
	bd = bd[:len(bb)]
	var total float64
	i, j := 0, 0
	for i < len(ab) && j < len(bb) {
		x, y := ab[i], bb[j]
		if x == y {
			if w := aw[i] + bw[j]; w > 0 {
				total += float64(w) * ad[i].Dot(bd[j])
			}
		}
		if x <= y {
			i++
		}
		if y <= x {
			j++
		}
	}
	return total
}

// mergeDots32 is the compact-mode twin of mergeDots: same merge shape, with
// the per-bucket dot running over float32-backed distributions (float64
// accumulation inside Dist32.Dot).
func mergeDots32(ab, bb []int64, aw, bw []int32, ad, bd []stprob.Dist32) float64 {
	if len(aw) < len(ab) || len(ad) < len(ab) || len(bw) < len(bb) || len(bd) < len(bb) {
		return 0 // unreachable: profile invariants keep the axes aligned
	}
	aw = aw[:len(ab)]
	ad = ad[:len(ab)]
	bw = bw[:len(bb)]
	bd = bd[:len(bb)]
	var total float64
	i, j := 0, 0
	for i < len(ab) && j < len(bb) {
		x, y := ab[i], bb[j]
		if x == y {
			if w := aw[i] + bw[j]; w > 0 {
				total += float64(w) * ad[i].Dot(bd[j])
			}
		}
		if x <= y {
			i++
		}
		if y <= x {
			j++
		}
	}
	return total
}
