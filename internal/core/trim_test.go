package core

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/model"
)

// trimRegimes are the two sampling regimes of the experiment fixtures:
// mall-like (slow dense walks, fine buckets) and taxi-like (fast sporadic
// sampling, coarse buckets). Retention cutoffs behave differently in the
// two — mall buckets hold several observations, taxi buckets mostly one —
// so the goldens cover both.
var trimRegimes = []struct {
	name   string
	speed  float64
	maxGap float64
	bucket float64
}{
	{name: "mall", speed: 1.5, maxGap: 20, bucket: 30},
	{name: "taxi", speed: 12, maxGap: 60, bucket: 120},
}

// regimeTraj draws a sporadically sampled random walk in a regime.
func regimeTraj(r *rand.Rand, id string, n int, speed, maxGap float64) model.Trajectory {
	tr := model.Trajectory{ID: id}
	tt := r.Float64() * 50
	p := geo.Point{X: 50 + r.Float64()*100, Y: 50 + r.Float64()*100}
	for i := 0; i < n; i++ {
		tr.Samples = append(tr.Samples, model.Sample{T: tt, Loc: p})
		dt := 1 + r.Float64()*(maxGap-1)
		tt += dt
		p = p.Add(geo.Point{X: (r.Float64()*2 - 1) * speed * dt, Y: (r.Float64()*2 - 1) * speed * dt})
	}
	return tr
}

// TestTrimProfileMatchesRebuild drives randomized retention trims: a
// trajectory shrinks from the head cut by cut, and after every cut the
// incrementally trimmed prepared state and profile must be bit-identical
// to a from-scratch rebuild of the surviving suffix — across provider
// families, sampling regimes, storage modes, and with bound metadata on.
// The cut sequence covers cuts that straddle a bucket (old and new head in
// the same bucket), land exactly on a bucket boundary, and expire
// everything but the final sample.
func TestTrimProfileMatchesRebuild(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	seedDS := model.Dataset{randTraj(r, "s1", 12), randTraj(r, "s2", 9)}
	for name, m := range measuresUnderTest(t, seedDS) {
		t.Run(name, func(t *testing.T) {
			for _, reg := range trimRegimes {
				t.Run(reg.name, func(t *testing.T) {
					opts := ProfileOptions{Bounds: true, BucketSeconds: reg.bucket}
					copts := ProfileOptions{Bounds: true, BucketSeconds: reg.bucket, Compact: true}
					for trial := 0; trial < 6; trial++ {
						full := regimeTraj(r, "tr", 8+r.Intn(12), reg.speed, reg.maxGap)
						p, err := m.Prepare(full)
						if err != nil {
							t.Fatal(err)
						}
						prof := mustProfile(t, m, full, opts)
						cprof := mustProfile(t, m, full, copts)
						cut := 0
						for cut < len(full.Samples)-1 {
							k := 1 + r.Intn(3)
							if cut+k >= len(full.Samples) {
								k = len(full.Samples) - 1 - cut
							}
							cut += k
							kept := model.Trajectory{ID: full.ID, Samples: full.Samples[cut:]}

							p, err = m.TrimPrepared(p, k)
							if err != nil {
								t.Fatal(err)
							}
							want, err := m.Prepare(kept)
							if err != nil {
								t.Fatal(err)
							}
							requirePreparedIdentical(t, p, want)

							prof, err = m.TrimProfile(prof, p, opts)
							if err != nil {
								t.Fatal(err)
							}
							requireProfilesIdentical(t, prof, mustProfile(t, m, kept, opts))
							cprof, err = m.TrimProfile(cprof, p, copts)
							if err != nil {
								t.Fatal(err)
							}
							requireProfilesIdentical(t, cprof, mustProfile(t, m, kept, copts))
						}
					}
				})
			}
		})
	}
}

// TestTrimProfileBoundaryCuts pins the two degenerate cutoffs explicitly:
// a cut landing exactly on a bucket boundary (the new head starts a fresh
// bucket, the straddle bucket disappears entirely) and an all-but-one trim
// in a single step.
func TestTrimProfileBoundaryCuts(t *testing.T) {
	g := testGrid(t)
	m := mustSTS(t, g, 3)
	const w = 30.0
	// Samples at t = 0, 30, 60, ...: every sample starts its own bucket, so
	// any cut is an exact bucket-boundary cut.
	tr := walk("a", geo.Point{Y: 100}, 1, 0, w, 0, 8)
	opts := ProfileOptions{Bounds: true, BucketSeconds: w}
	for _, drop := range []int{1, 3, len(tr.Samples) - 1} {
		p, err := m.Prepare(tr)
		if err != nil {
			t.Fatal(err)
		}
		prof := mustProfile(t, m, tr, opts)
		p, err = m.TrimPrepared(p, drop)
		if err != nil {
			t.Fatal(err)
		}
		kept := model.Trajectory{ID: tr.ID, Samples: tr.Samples[drop:]}
		requirePreparedIdentical(t, p, mustPrepare(t, m, kept))
		got, err := m.TrimProfile(prof, p, opts)
		if err != nil {
			t.Fatal(err)
		}
		requireProfilesIdentical(t, got, mustProfile(t, m, kept, opts))
	}
}

func mustPrepare(t *testing.T, m *Measure, tr model.Trajectory) *Prepared {
	t.Helper()
	p, err := m.Prepare(tr)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestTrimBoundsStayAdmissible runs the full bound contract against a
// profile that went through several incremental trims: the incremental
// path must keep certified-zero filtering and thresholded refinement sound.
func TestTrimBoundsStayAdmissible(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	g := testGrid(t)
	m := mustSTS(t, g, 3)
	opts := ProfileOptions{Bounds: true, BucketSeconds: 30}
	other := randTraj(r, "other", 10)
	b, err := m.Prepare(other)
	if err != nil {
		t.Fatal(err)
	}
	pb := mustProfile(t, m, other, opts)
	full := randTraj(r, "shrinker", 12)
	a, err := m.Prepare(full)
	if err != nil {
		t.Fatal(err)
	}
	pa, err := m.Profile(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	for a.Tr.Len() > 3 {
		a, err = m.TrimPrepared(a, 2)
		if err != nil {
			t.Fatal(err)
		}
		pa, err = m.TrimProfile(pa, a, opts)
		if err != nil {
			t.Fatal(err)
		}
		checkAdmissible(t, m, a, b, pa, pb)
	}
}

// TestTrimValidation pins the error paths: out-of-range drops and
// profile/prepared mismatches must be rejected.
func TestTrimValidation(t *testing.T) {
	g := testGrid(t)
	m := mustSTS(t, g, 3)
	tr := walk("a", geo.Point{Y: 100}, 1, 0, 10, 0, 8)
	p, err := m.Prepare(tr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.TrimPrepared(p, 0); err == nil {
		t.Error("zero drop accepted")
	}
	if _, err := m.TrimPrepared(p, tr.Len()); err == nil {
		t.Error("drop of every sample accepted")
	}
	if _, err := m.TrimPrepared(nil, 1); err == nil {
		t.Error("nil prepared accepted")
	}
	prof := mustProfile(t, m, tr, ProfileOptions{BucketSeconds: 30})
	if _, err := m.TrimProfile(prof, p, ProfileOptions{BucketSeconds: 30}); err == nil {
		t.Error("profile of the untrimmed trajectory accepted as supersequence")
	}
	trimmed, err := m.TrimPrepared(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.TrimProfile(prof, trimmed, ProfileOptions{BucketSeconds: 60}); err == nil {
		t.Error("mismatched bucket width accepted")
	}
	if _, err := m.TrimProfile(prof, trimmed, ProfileOptions{BucketSeconds: 30, Compact: true}); err == nil {
		t.Error("mismatched storage mode accepted")
	}
	if got, err := m.TrimProfile(prof, trimmed, ProfileOptions{BucketSeconds: 30}); err != nil {
		t.Errorf("valid trim rejected: %v", err)
	} else {
		requireProfilesIdentical(t, got, mustProfile(t, m, trimmed.Tr, ProfileOptions{BucketSeconds: 30}))
	}
}

// TestProfileCodecRoundTrip pins the sidecar payload codec: encoding and
// decoding a profile reproduces every field bit-identically — across
// provider families, storage modes, and with bound metadata on and off.
// (Decoded bound distributions own their storage where the original
// aliased the Prepared cache; reflect.DeepEqual compares values, which is
// the contract warm-loaded profiles rely on.)
func TestProfileCodecRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	seedDS := model.Dataset{randTraj(r, "s1", 12), randTraj(r, "s2", 9)}
	for name, m := range measuresUnderTest(t, seedDS) {
		t.Run(name, func(t *testing.T) {
			for trial := 0; trial < 4; trial++ {
				tr := randTraj(r, "tr", 4+r.Intn(10))
				for _, opts := range []ProfileOptions{
					{BucketSeconds: 30},
					{BucketSeconds: 30, Compact: true},
					{BucketSeconds: 30, Bounds: true},
					{BucketSeconds: 30, Bounds: true, Compact: true},
					{BucketSeconds: 120, Bounds: true},
				} {
					want := mustProfile(t, m, tr, opts)
					got, err := DecodeProfile(EncodeProfile(want))
					if err != nil {
						t.Fatalf("decode (opts %+v): %v", opts, err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("round trip not identical (opts %+v):\n got %+v\nwant %+v", opts, got, want)
					}
				}
			}
		})
	}
}

// TestProfileCodecRejectsCorruption walks every truncation point and a
// sweep of byte flips over a valid encoding: the decoder must return an
// error or a decodable profile, never panic.
func TestProfileCodecRejectsCorruption(t *testing.T) {
	g := testGrid(t)
	m := mustSTS(t, g, 3)
	tr := walk("a", geo.Point{Y: 100}, 1, 0, 10, 0, 8)
	blob := EncodeProfile(mustProfile(t, m, tr, ProfileOptions{Bounds: true, BucketSeconds: 30}))
	for cut := 0; cut < len(blob); cut++ {
		if _, err := DecodeProfile(blob[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(blob))
		}
	}
	for i := 0; i < len(blob); i++ {
		mut := append([]byte(nil), blob...)
		mut[i] ^= 0x5b
		p, err := DecodeProfile(mut) // must not panic; error or success both fine
		_ = p
		_ = err
	}
	if _, err := DecodeProfile(nil); err == nil {
		t.Error("empty blob accepted")
	}
	if _, err := DecodeProfile([]byte{99}); err == nil {
		t.Error("unknown version accepted")
	}
}

// FuzzDecodeProfile hammers the decoder with arbitrary bytes: it must
// never panic or allocate beyond the blob's own size class, and anything
// it does accept must re-encode without panicking.
func FuzzDecodeProfile(f *testing.F) {
	g, err := geo.NewGrid(geo.NewRect(geo.Point{X: -30, Y: -30}, geo.Point{X: 230, Y: 230}), 5)
	if err != nil {
		f.Fatal(err)
	}
	m, err := NewSTS(g, 3)
	if err != nil {
		f.Fatal(err)
	}
	tr := walk("a", geo.Point{Y: 100}, 1, 0, 10, 0, 8)
	p, err := m.Prepare(tr)
	if err != nil {
		f.Fatal(err)
	}
	for _, opts := range []ProfileOptions{
		{BucketSeconds: 30},
		{BucketSeconds: 30, Bounds: true},
		{BucketSeconds: 30, Bounds: true, Compact: true},
	} {
		prof, err := m.Profile(p, opts)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(EncodeProfile(prof))
	}
	f.Add([]byte{profileCodecVersion, 0})
	f.Fuzz(func(t *testing.T, blob []byte) {
		prof, err := DecodeProfile(blob)
		if err != nil {
			return
		}
		_ = EncodeProfile(prof)
	})
}
