package core

import (
	"errors"
	"math"
)

// Episode is a maximal time interval during which two objects' co-location
// probability stayed at or above a threshold — a "contact episode" in the
// contact-tracing reading of the paper's introduction.
type Episode struct {
	// Start and End bound the episode in seconds.
	Start, End float64
	// Peak is the highest co-location probability observed inside it.
	Peak float64
	// Mean is the average co-location probability over its grid of
	// evaluation points.
	Mean float64
}

// Duration returns the episode length in seconds.
func (e Episode) Duration() float64 { return e.End - e.Start }

// ContactEpisodes scans the overlap of two prepared trajectories' time
// windows on a uniform step and returns the maximal intervals where
// CP(t | Tra1, Tra2) ≥ threshold. The scan augments Eq. 10's
// timestamp-only evaluation: because STP is defined at *any* time
// (Eq. 5), the co-location probability is a continuous function of t and
// can be probed between observations, which is what turns a similarity
// measure into actionable "when were they together" intervals.
//
// step must be positive; threshold should be calibrated against the
// measure's self-similarity scale (co-location probabilities are diluted
// by the noise model's support size; see the quickstart example).
func ContactEpisodes(a, b *Prepared, step, threshold float64) ([]Episode, error) {
	if step <= 0 || math.IsNaN(step) {
		return nil, errors.New("core: step must be positive")
	}
	if a.Tr.Len() == 0 || b.Tr.Len() == 0 {
		return nil, errors.New("core: empty trajectory")
	}
	lo := math.Max(a.Tr.Start(), b.Tr.Start())
	hi := math.Min(a.Tr.End(), b.Tr.End())
	if lo > hi {
		return nil, nil
	}
	var (
		episodes []Episode
		open     bool
		cur      Episode
		sum      float64
		count    int
	)
	flush := func(end float64) {
		if !open {
			return
		}
		cur.End = end
		if count > 0 {
			cur.Mean = sum / float64(count)
		}
		episodes = append(episodes, cur)
		open = false
		sum, count = 0, 0
	}
	prevT := lo
	for t := lo; ; t += step {
		if t > hi {
			break
		}
		cp, err := CoLocation(a, b, t)
		if err != nil {
			return nil, err
		}
		if cp >= threshold {
			if !open {
				open = true
				cur = Episode{Start: t, Peak: cp}
			}
			if cp > cur.Peak {
				cur.Peak = cp
			}
			sum += cp
			count++
		} else {
			flush(prevT)
		}
		prevT = t
	}
	flush(math.Min(prevT, hi))
	return episodes, nil
}
