package core

import (
	"math"
	"testing"

	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/kde"
	"github.com/stslib/sts/internal/model"
	"github.com/stslib/sts/internal/stprob"
)

// This file cross-checks the optimized estimator against a naive
// reference implementation transcribed directly from the paper's
// formulas (Eq. 3, Eq. 4, Eq. 5, Algorithm 1 and Eq. 10), with every sum
// ranging over the full grid and no shared code with the production path
// beyond the speed model.

// naiveNoise evaluates Eq. 3 (squared-distance Gaussian, unnormalized).
func naiveNoise(r, obs geo.Point, sigma float64) float64 {
	d := r.Dist(obs)
	return math.Exp(-d * d / (2 * sigma * sigma))
}

// naiveSTP returns the normalized STP(·, t, Tra) over all cells (Eq. 5).
func naiveSTP(g *geo.Grid, sm *kde.SpeedModel, tr model.Trajectory, t, sigma float64) []float64 {
	out := make([]float64, g.N())
	if tr.Len() == 0 || t < tr.Start() || t > tr.End() {
		return out
	}
	exact, before, after := tr.Bracket(t)
	if exact >= 0 {
		obs := tr.Samples[exact].Loc
		for c := 0; c < g.N(); c++ {
			out[c] = naiveNoise(g.Center(c), obs, sigma)
		}
		return normalize(out)
	}
	prev, next := tr.Samples[before], tr.Samples[after]
	// Eq. 4 numerator for every candidate cell r_i; the denominator is
	// constant over cells and cancels under normalization.
	for ri := 0; ri < g.N(); ri++ {
		rc := g.Center(ri)
		var sumA float64
		for rj := 0; rj < g.N(); rj++ {
			w := naiveNoise(g.Center(rj), prev.Loc, sigma)
			sumA += w * sm.Transition(g.Center(rj), prev.T, rc, t)
		}
		var sumB float64
		for rk := 0; rk < g.N(); rk++ {
			w := naiveNoise(g.Center(rk), next.Loc, sigma)
			sumB += w * sm.Transition(rc, t, g.Center(rk), next.T)
		}
		out[ri] = sumA * sumB
	}
	return normalize(out)
}

func normalize(xs []float64) []float64 {
	var total float64
	for _, x := range xs {
		total += x
	}
	if total <= 0 {
		return xs
	}
	for i := range xs {
		xs[i] /= total
	}
	return xs
}

// naiveCP implements Algorithm 1 at one timestamp: normalized location
// distributions of both trajectories multiplied cell-wise and summed.
func naiveCP(g *geo.Grid, smA, smB *kde.SpeedModel, a, b model.Trajectory, t, sigma float64) float64 {
	da := naiveSTP(g, smA, a, t, sigma)
	db := naiveSTP(g, smB, b, t, sigma)
	var cp float64
	for c := 0; c < g.N(); c++ {
		cp += da[c] * db[c]
	}
	return cp
}

// naiveSTS implements Eq. 10.
func naiveSTS(g *geo.Grid, a, b model.Trajectory, sigma float64) float64 {
	smA, err := kde.NewSpeedModel(a)
	if err != nil {
		panic(err)
	}
	smB, err := kde.NewSpeedModel(b)
	if err != nil {
		panic(err)
	}
	var total float64
	for _, s := range a.Samples {
		total += naiveCP(g, smA, smB, a, b, s.T, sigma)
	}
	for _, s := range b.Samples {
		total += naiveCP(g, smA, smB, a, b, s.T, sigma)
	}
	return total / float64(a.Len()+b.Len())
}

// TestExactModeMatchesNaiveAlgorithm1 compares the production measure in
// Exact mode against the naive transcription on a small grid. The two
// share only the KDE speed model; grid iteration, noise handling,
// normalization and the Eq. 10 averaging are implemented independently.
func TestExactModeMatchesNaiveAlgorithm1(t *testing.T) {
	g, err := geo.NewGrid(geo.NewRect(geo.Point{X: -10, Y: -10}, geo.Point{X: 60, Y: 60}), 5)
	if err != nil {
		t.Fatal(err)
	}
	const sigma = 4.0
	a := walk("a", geo.Point{Y: 20}, 0.9, 0.1, 11, 0, 5)
	b := walk("b", geo.Point{Y: 22}, 0.9, 0.1, 14, 3, 4)

	m, err := New(Options{Grid: g, Noise: stprob.GaussianNoise{Sigma: sigma}, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Similarity(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := naiveSTS(g, a, b, sigma)
	if math.Abs(got-want) > 1e-6*math.Max(1, math.Abs(want)) {
		t.Errorf("exact measure %v vs naive Algorithm 1 %v", got, want)
	}
	if want <= 0 {
		t.Fatalf("naive STS is zero; test setup lost its signal")
	}
}

// TestTruncatedCloseToNaive bounds the truncation error of the default
// (fast) configuration against the naive reference.
func TestTruncatedCloseToNaive(t *testing.T) {
	g, err := geo.NewGrid(geo.NewRect(geo.Point{X: -10, Y: -10}, geo.Point{X: 60, Y: 60}), 5)
	if err != nil {
		t.Fatal(err)
	}
	const sigma = 4.0
	a := walk("a", geo.Point{Y: 20}, 0.9, 0.1, 11, 0, 5)
	b := walk("b", geo.Point{Y: 22}, 0.9, 0.1, 14, 3, 4)

	// SpeedSlack is a deliberate deviation from the textbook evaluation;
	// disable it so this test isolates the support truncation.
	m, err := New(Options{Grid: g, Noise: stprob.GaussianNoise{Sigma: sigma}, SpeedSlack: -1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Similarity(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := naiveSTS(g, a, b, sigma)
	if rel := math.Abs(got-want) / want; rel > 0.05 {
		t.Errorf("truncated %v vs naive %v (rel err %.3f)", got, want, rel)
	}
}
