// Incremental maintenance of prepared state and bucketed profiles under
// retention trims — the mirror image of append.go for the other end of the
// trajectory: dropping an expired head instead of growing the tail.
//
// Both entry points are bit-identical to a full rebuild of the trimmed
// trajectory (the trim goldens pin this):
//
//   - TrimPrepared drops the expired samples and their cached noise
//     distributions and reuses the surviving ones verbatim — like appends,
//     observation distributions depend only on the measure's grid, noise
//     model, and support cap, never on the transition estimator. The
//     transition spec is re-derived, since a personalized speed model loses
//     speed observations with every trim.
//   - TrimProfile drops every bucket before the one holding the new first
//     observation, always recomputes that boundary bucket (its weight and
//     representative observation change with the cut), and copies the rest:
//     buckets after the boundary keep their sample sets, their exact cached
//     representatives, and — because their centers lie past the new start —
//     their unclamped interpolation times. Only with a trajectory-dependent
//     transition provider (personalized KDE) are the interpolated
//     (weightless) suffix buckets recomputed, their Markov estimates having
//     shifted with the lost speed samples. With a trajectory-independent
//     provider the incremental trim costs O(boundary bucket).
//
// Bound metadata is rebuilt through the same buildBoundData pass a fresh
// profile gets, exactly as AppendProfile does: linear in samples and
// buckets, no interpolation work, and one code path to keep admissible.
package core

import (
	"errors"
	"fmt"

	"github.com/stslib/sts/internal/model"
	"github.com/stslib/sts/internal/stprob"
)

// TrimPrepared drops the first drop samples of a prepared trajectory,
// reusing the cached noise distributions of the surviving observations. The
// result is bit-identical to Prepare of the trimmed trajectory. drop must
// leave at least one sample; old is not mutated.
func (m *Measure) TrimPrepared(old *Prepared, drop int) (*Prepared, error) {
	if old == nil || old.Tr.Len() == 0 {
		return nil, errors.New("core: TrimPrepared needs a non-empty prepared trajectory")
	}
	if drop <= 0 || drop >= old.Tr.Len() {
		return nil, fmt.Errorf("core: TrimPrepared of %q must drop between 1 and %d samples, got %d",
			old.Tr.ID, old.Tr.Len()-1, drop)
	}
	n := old.Tr.Len() - drop
	samples := make([]model.Sample, n)
	copy(samples, old.Tr.Samples[drop:])
	tr := model.Trajectory{ID: old.Tr.ID, Samples: samples}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	spec, err := m.provider.For(tr)
	if err != nil {
		return nil, fmt.Errorf("core: transition model for %q: %w", tr.ID, err)
	}
	est := &stprob.Estimator{
		Grid:              m.grid,
		Noise:             m.noise,
		Trans:             spec.Trans,
		Radial:            spec.Radial,
		MaxSpeed:          spec.MaxSpeed,
		Exact:             m.exact,
		MaxCandidateCells: m.maxCand,
		MaxSupportCells:   m.maxSupp,
		SpeedSlack:        m.slack,
	}
	p := &Prepared{Tr: tr, est: est, obs: make([]stprob.Dist, n)}
	copy(p.obs, old.obs[drop:])
	return p, nil
}

// TrimProfile builds the profile of a head-trimmed trajectory from the
// profile of the original: p must be the prepared state of the trimmed
// trajectory (typically from TrimPrepared) and old the profile of a strict
// supersequence ending in exactly p's samples, built with the same bucket
// width and storage mode. The result is bit-identical to
// Measure.Profile(p, opts); only the buckets a rebuild could change are
// recomputed (see the file comment for the exact recompute set).
func (m *Measure) TrimProfile(old *Profile, p *Prepared, opts ProfileOptions) (*Profile, error) {
	w, err := opts.bucketWidth()
	if err != nil {
		return nil, err
	}
	if p == nil || p.Tr.Len() == 0 {
		return nil, errors.New("core: TrimProfile needs a non-empty prepared trajectory")
	}
	if old == nil || old.ID != p.Tr.ID || old.BucketSeconds != w ||
		old.compact != opts.Compact || old.n <= p.Tr.Len() {
		return nil, errors.New("core: TrimProfile needs the profile of a strict supersequence of the prepared trajectory (same ID, bucket width, and storage mode)")
	}
	start, end := p.Tr.Start(), p.Tr.End()
	b0, b1 := bucketIndex(start, w), bucketIndex(end, w)
	if nb := b1 - b0 + 1; nb > maxProfileBuckets {
		return nil, fmt.Errorf("core: profile of %q would span %d buckets (max %d); widen ProfileOptions.BucketSeconds",
			p.Tr.ID, nb, maxProfileBuckets)
	}
	// b0 is the boundary bucket: it holds the new first observation and may
	// have held expired ones, so its weight and representative change with
	// the cut. Samples are time-sorted, so no expired sample can reach a
	// later bucket; buckets past b0 keep their sample sets, and their empty
	// buckets' representative centers exceed the new start (no clamping
	// change) — a rebuild reproduces them unchanged unless the transition
	// model itself moved.
	stable := providerStable(m.provider)
	prof := &Profile{ID: p.Tr.ID, BucketSeconds: w, n: p.Tr.Len(), compact: opts.Compact}
	ws := scratchPool.Get().(*pairScratch)
	defer scratchPool.Put(ws)
	si, oi := 0, 0
	for b := b0; b <= b1; b++ {
		bucketEnd := float64(b+1) * w
		var weight int32
		first := -1
		for si < len(p.Tr.Samples) && p.Tr.Samples[si].T < bucketEnd {
			if weight == 0 {
				first = si
			}
			weight++
			si++
		}
		for oi < len(old.buckets) && old.buckets[oi] < b {
			oi++
		}
		hasOld := oi < len(old.buckets) && old.buckets[oi] == b
		if b > b0 && (weight > 0 || stable) {
			// A rebuild reproduces this suffix entry unchanged: mirror it
			// verbatim, including its absence (an all-zero distribution is
			// trimmed away by both builds).
			if hasOld {
				if old.weights[oi] != weight {
					return nil, fmt.Errorf("core: TrimProfile: bucket %d weight %d != profile's %d; old profile is not a supersequence of %q",
						b, weight, old.weights[oi], p.Tr.ID)
				}
				copyProfileEntry(prof, old, oi)
			}
			continue
		}
		// Recomputed bucket: the boundary bucket the cut ran through, or an
		// interpolated estimate that moved with the trajectory-dependent
		// transition model.
		var d stprob.Dist
		if weight > 0 {
			d = p.obs[first]
		} else {
			t := (float64(b) + 0.5) * w
			if t < start {
				t = start
			} else if t > end {
				t = end
			}
			var derr error
			d, derr = p.distAtWS(&ws.a, t)
			if derr != nil {
				return nil, derr
			}
		}
		appendProfileEntry(prof, b, weight, d)
	}
	finishProfileViews(prof)
	if opts.Bounds {
		m.buildBoundData(prof, p)
	}
	return prof, nil
}
